// Multi-endpoint failover: a Pool fans a session out over several
// independent fudjd instances, pushing the coordination the
// shared-nothing deployment model refuses to centralize into the
// client. The correctness problem is that almost everything a client
// leans on is per-instance state: idempotency keys replay only against
// the instance that recorded them, and session-scoped DDL (CREATE
// JOIN, SELECT ... INTO) lives in one instance's catalog. The pool
// therefore treats the instance ID (HeaderInstance) as the scope of
// everything it knows:
//
//   - Keys are minted per (logical query, instance) — a retry against
//     the same instance reuses the key and replays; failover to a new
//     instance re-keys, so ExecCount stays ≤ 1 per (instance, key)
//     while the trailer row-count cross-check guards the result.
//   - Session DDL that succeeded is journaled client-side and replayed
//     on first contact with a new instance, so the session survives
//     its server.
//   - Every query ships HeaderExpectInstance; a restarted server
//     refuses with a retryable mismatch naming its new identity, so
//     the pool resynchronizes without a probe round trip per query.
//
// Availability is the circuit breaker: consecutive transport/corrupt
// failures open an endpoint's breaker (skip it entirely), and a timed
// half-open probe of /v1/ready closes it when the instance returns. A
// draining instance is special-cased — its shed envelope is an
// announcement, not a fault, so the pool fails over to a peer
// immediately instead of climbing a backoff ladder against a server
// that already said goodbye.
package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/sched"
	"fudj/internal/serve"
	"fudj/internal/sqlparse"
	"fudj/internal/trace"
)

// PoolConfig shapes one Pool.
type PoolConfig struct {
	// Endpoints are the fudjd base URLs, e.g.
	// {"http://h1:7531", "http://h2:7531"}. Required, at least one.
	Endpoints []string
	// Session names the server-side session re-established on every
	// instance the pool touches. Empty selects "default".
	Session string
	// QueryPrefix namespaces this pool's idempotency keys inside the
	// session (see Config.QueryPrefix). Empty selects "p<Seed>".
	QueryPrefix string
	// MaxAttempts bounds tries per logical query across all endpoints.
	// <=0 selects 4 per endpoint (minimum 8).
	MaxAttempts int
	// BackoffBase seeds the exponential backoff. <=0 selects 50ms.
	BackoffBase time.Duration
	// BackoffMax caps one backoff wait. <=0 selects 2s.
	BackoffMax time.Duration
	// AttemptTimeout bounds a single attempt end-to-end. 0 means the
	// caller's context is the only bound.
	AttemptTimeout time.Duration
	// Seed feeds endpoint selection and backoff jitter (deterministic
	// tests). 0 selects 1.
	Seed int64
	// Clock supplies breaker timing (tests inject a fake). Default wall.
	Clock trace.Clock
	// BreakerThreshold is the consecutive transport/corrupt-frame
	// failure count that opens an endpoint's breaker. <=0 selects 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before a
	// half-open probe. <=0 selects 250ms.
	BreakerCooldown time.Duration
	// HTTPClient overrides the transport, shared by all endpoints.
	HTTPClient *http.Client
}

// journalEntry is one session-scoped DDL statement the pool must
// replay onto any instance it meets, so the session's objects exist
// wherever the session's queries land.
type journalEntry struct {
	sql     string
	logical int64  // the statement's logical ID: replay reuses its key
	name    string // the catalog object it creates
	isJoin  bool   // join definition vs dataset
}

// endpoint is one pool member: a single-attempt client plus the
// breaker and instance state the pool keeps about it.
type endpoint struct {
	url string
	c   *Client

	// mu serializes instance discovery and journal replay: exactly one
	// goroutine re-establishes the session on a fresh instance while
	// the rest queue behind it.
	mu             sync.Mutex
	instance       string // last known instance ID ("" = never met)
	journalApplied int    // journal entries known applied to instance

	// Breaker state, guarded by the pool's mu.
	consecFails int
	open        bool
	openUntil   time.Time
	opens       int64
	closes      int64
}

// PoolStats is a pool activity snapshot; Metrics flattens it under
// serve.ha.* names.
type PoolStats struct {
	Failovers      int64 // queries that moved to a peer after a failure
	DrainFailovers int64 // failovers triggered by a draining instance
	Rekeys         int64 // idempotency keys re-minted for a new instance
	BreakerOpens   int64
	BreakerCloses  int64
	Probes         int64 // readiness probes (half-open + first contact)
	JournalReplays int64 // DDL statements replayed onto new instances
	Endpoints      []EndpointStats
}

// EndpointStats is one endpoint's row in PoolStats.
type EndpointStats struct {
	URL         string
	Instance    string
	State       string // "closed", "open", or "half-open"
	ConsecFails int
	Opens       int64
	Closes      int64
}

// Metrics flattens the counters under serve.ha.* metric names.
func (st PoolStats) Metrics() map[string]int64 {
	return map[string]int64{
		"serve.ha.failovers":       st.Failovers,
		"serve.ha.drain_failovers": st.DrainFailovers,
		"serve.ha.rekeys":          st.Rekeys,
		"serve.ha.breaker_opens":   st.BreakerOpens,
		"serve.ha.breaker_closes":  st.BreakerCloses,
		"serve.ha.probes":          st.Probes,
		"serve.ha.journal_replays": st.JournalReplays,
	}
}

// Pool is a failover connection to several fudjd instances. Safe for
// concurrent use.
type Pool struct {
	cfg   PoolConfig
	clock trace.Clock
	eps   []*endpoint

	mu      sync.Mutex
	rng     *rand.Rand
	cursor  int // sticky: the endpoint queries currently route to
	nextID  int64
	journal []journalEntry
	stats   PoolStats
}

// NewPool builds a pool. It does not dial; the first Query does.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if len(cfg.Endpoints) == 0 {
		return nil, errors.New("client: PoolConfig.Endpoints is required")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4 * len(cfg.Endpoints)
		if cfg.MaxAttempts < 8 {
			cfg.MaxAttempts = 8
		}
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.QueryPrefix == "" {
		cfg.QueryPrefix = "p" + strconv.FormatInt(cfg.Seed, 10)
	}
	if cfg.Clock == nil {
		cfg.Clock = trace.WallClock{}
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 250 * time.Millisecond
	}
	p := &Pool{
		cfg:   cfg,
		clock: cfg.Clock,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	for i, u := range cfg.Endpoints {
		c, err := New(Config{
			BaseURL:        u,
			Session:        cfg.Session,
			QueryPrefix:    cfg.QueryPrefix,
			MaxAttempts:    1, // the pool owns the retry loop
			BackoffBase:    cfg.BackoffBase,
			BackoffMax:     cfg.BackoffMax,
			AttemptTimeout: cfg.AttemptTimeout,
			Seed:           cfg.Seed + int64(i) + 1,
			HTTPClient:     cfg.HTTPClient,
		})
		if err != nil {
			return nil, fmt.Errorf("client: pool endpoint %d: %w", i, err)
		}
		p.eps = append(p.eps, &endpoint{url: c.base, c: c})
	}
	// Seeded-deterministic starting endpoint: spreads a fleet of pools
	// across the instances without any shared state.
	p.cursor = p.rng.Intn(len(p.eps))
	return p, nil
}

// Close releases every endpoint's idle connections.
func (p *Pool) Close() {
	for _, ep := range p.eps {
		ep.c.Close()
	}
}

// Stats snapshots the pool's failover and breaker activity.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	st := p.stats
	now := p.clock.Now()
	for _, ep := range p.eps {
		state := "closed"
		if ep.open {
			state = "open"
			if !now.Before(ep.openUntil) {
				state = "half-open"
			}
		}
		st.Endpoints = append(st.Endpoints, EndpointStats{
			URL: ep.url, State: state, ConsecFails: ep.consecFails,
			Opens: ep.opens, Closes: ep.closes,
		})
	}
	p.mu.Unlock()
	for i, ep := range p.eps {
		ep.mu.Lock()
		st.Endpoints[i].Instance = ep.instance
		ep.mu.Unlock()
	}
	return st
}

// Query executes one statement against the pool, failing over between
// endpoints until it succeeds, turns out non-retryable, or the attempt
// budget runs out. The statement's idempotency key is scoped to the
// instance each attempt lands on, so a replay can only come from the
// instance that executed it.
func (p *Pool) Query(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	var qo queryOpts
	for _, o := range opts {
		o(&qo)
	}
	p.mu.Lock()
	p.nextID++
	logical := p.nextID
	p.mu.Unlock()

	var (
		lastErr  error
		lastEp   *endpoint
		prevInst string
		lastKey  string
	)
	for attempt := 1; attempt <= p.cfg.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		ep, probe := p.pick()
		if ep == nil {
			// Every breaker is open and cooling down: wait out the
			// earliest cooldown (bounded), then re-pick.
			if err := p.sleep(ctx, p.cooldownWait()); err != nil {
				break
			}
			continue
		}
		if probe && !p.probe(ctx, ep) {
			lastErr = coalesceErr(lastErr, &serve.TransportError{
				Op: "probe " + ep.url, Err: errors.New("not ready"),
			})
			continue
		}
		if lastEp != nil && ep != lastEp {
			p.count(func(st *PoolStats) { st.Failovers++ })
		}
		lastEp = ep

		inst, err := p.ensure(ctx, ep)
		var res *Result
		if err == nil {
			if prevInst != "" && inst != prevInst {
				p.count(func(st *PoolStats) { st.Rekeys++ })
			}
			prevInst = inst
			lastKey = p.keyFor(logical, inst)
			res, err = ep.c.attempt(ctx, sql, lastKey, inst, qo)
		}
		if err == nil {
			p.onSuccess(ep)
			p.journalOnSuccess(sql, logical, ep)
			res.Attempts = attempt
			res.Endpoint = ep.url
			return res, nil
		}
		lastErr = err

		if ctx.Err() != nil {
			break
		}
		var im *serve.InstanceMismatchError
		if errors.As(err, &im) {
			// The instance changed between our last contact and this
			// query: adopt the identity it named and retry — ensure will
			// replay the journal, keyFor will re-key. Not a fault, so no
			// breaker hit and no backoff.
			ep.adoptInstance(im.Got)
			continue
		}
		if !cluster.IsRetryable(err) {
			return nil, err
		}
		if isDrainShed(err) {
			// The instance announced it is going away: stop routing to
			// it until its cooldown (stretched to any retry-after hint)
			// and try a peer immediately — backing off here would just
			// idle against a server that already refused us.
			p.tripDrain(ep, err)
			continue
		}
		p.recordFailure(ep)
		// A peer might answer right now; only back off once a full
		// sweep of the pool has failed.
		if attempt%len(p.eps) == 0 {
			if err := p.sleep(ctx, p.backoffWait(attempt/len(p.eps), lastErr)); err != nil {
				break
			}
		}
	}
	if ctx.Err() != nil {
		if lastKey != "" && lastEp != nil {
			lastEp.c.cancelRemote(lastKey)
		}
		msg := "no attempt completed"
		if lastErr != nil {
			msg = lastErr.Error()
		}
		return nil, fmt.Errorf("client: pool query %d: %w (last attempt: %s)", logical, ctx.Err(), msg)
	}
	if lastErr == nil {
		lastErr = errors.New("client: pool query: attempt budget exhausted")
	}
	return nil, lastErr
}

// keyFor mints the idempotency key for a logical query against one
// instance: deterministic, so a retry against the same instance
// replays, and instance-scoped, so a failover re-executes under a
// fresh key instead of colliding with a stranger's replay record.
func (p *Pool) keyFor(logical int64, instance string) string {
	return fmt.Sprintf("%s-%d@%s", p.cfg.QueryPrefix, logical, instance)
}

// pick selects the endpoint to try: round-robin from the sticky
// cursor over endpoints that are routable — breaker closed, or open
// with an elapsed cooldown (returned with probe=true: the caller must
// half-open probe it before use). Half-open endpoints compete with
// closed ones on purpose: a recovered instance must win the cursor
// back eventually even while its peers stay healthy, or an opened
// breaker would never close. A failed probe re-arms the cooldown, so
// the trial costs one readiness round trip per cooldown at most.
// (nil, false) means every breaker is open and cooling.
func (p *Pool) pick() (ep *endpoint, probe bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	n := len(p.eps)
	for i := 0; i < n; i++ {
		cand := p.eps[(p.cursor+i)%n]
		if !cand.open || !now.Before(cand.openUntil) {
			p.cursor = (p.cursor + i) % n
			return cand, cand.open
		}
	}
	return nil, false
}

// probe half-opens ep's breaker: one /v1/ready round trip. Ready
// closes the breaker (and adopts the answering instance — a restart
// may have changed it); anything else re-opens it for another
// cooldown.
func (p *Pool) probe(ctx context.Context, ep *endpoint) bool {
	p.count(func(st *PoolStats) { st.Probes++ })
	ready, inst, err := ep.c.Ready(ctx)
	p.mu.Lock()
	if err == nil && ready {
		ep.open = false
		ep.consecFails = 0
		ep.closes++
		p.stats.BreakerCloses++
		p.mu.Unlock()
		if inst != "" {
			ep.adoptInstance(inst)
		}
		return true
	}
	ep.openUntil = p.clock.Now().Add(p.cfg.BreakerCooldown)
	p.mu.Unlock()
	return false
}

// ensure returns ep's instance ID, discovering it (one readiness round
// trip) on first contact and replaying any journaled session DDL the
// instance has not seen. Serialized per endpoint, so a fresh instance
// is re-established exactly once however many queries race to it.
func (p *Pool) ensure(ctx context.Context, ep *endpoint) (string, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.instance == "" {
		p.count(func(st *PoolStats) { st.Probes++ })
		ready, inst, err := ep.c.Ready(ctx)
		if err != nil {
			return "", err
		}
		if !ready {
			// Alive but draining: the same announcement a query would
			// get, surfaced the same way so Query fails over.
			return "", &serve.ShedError{Err: &sched.AdmissionError{Reason: sched.ReasonDraining}}
		}
		if inst == "" {
			return "", &serve.TransportError{Op: "probe " + ep.url, Err: errors.New("server reported no instance ID")}
		}
		ep.instance = inst
		ep.journalApplied = 0
	}
	entries := p.journalSnapshot()
	for i := ep.journalApplied; i < len(entries); i++ {
		e := entries[i]
		// Reuse the statement's original logical key, scoped to this
		// instance: if the statement already executed here (we created
		// it through this very instance), the attempt replays instead
		// of re-executing.
		_, err := ep.c.attempt(ctx, e.sql, p.keyFor(e.logical, ep.instance), ep.instance, queryOpts{})
		if err != nil {
			var im *serve.InstanceMismatchError
			if errors.As(err, &im) {
				ep.instance = im.Got
				ep.journalApplied = 0
				return "", err // retryable: Query loops back into ensure
			}
			if cluster.IsRetryable(err) {
				return "", err
			}
			// Non-retryable replay failure — usually "already exists"
			// after an attempt whose response was lost. If the catalog
			// has the object, the session state is established; only a
			// genuinely missing object fails the query.
			if p.objectExists(ctx, ep, e) {
				ep.journalApplied = i + 1
				continue
			}
			return "", fmt.Errorf("client: re-establish session on %s: %w", ep.url, err)
		}
		ep.journalApplied = i + 1
		p.count(func(st *PoolStats) { st.JournalReplays++ })
	}
	return ep.instance, nil
}

// adoptInstance records a newly learned instance identity, resetting
// journal progress when it changed (a new instance has seen nothing).
func (ep *endpoint) adoptInstance(inst string) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.instance != inst {
		ep.instance = inst
		ep.journalApplied = 0
	}
}

// journalOnSuccess records session-scoped DDL that succeeded against
// src, so later instances can be brought up to date. The executing
// endpoint's watermark advances past the new entry — it just ran the
// statement, so replaying it back (a guaranteed replay-cache hit, but
// a round trip all the same) would be pure overhead. DROP JOIN erases
// the matching journaled CREATE instead of being journaled itself —
// replaying a create/drop pair onto a fresh instance would be churn —
// and every endpoint watermark past the erased index shifts down with
// the entries it was counting, so no endpoint skips an entry it has
// not seen. Watermark adjustments happen outside p.mu (ep.mu nests
// the other way in ensure).
func (p *Pool) journalOnSuccess(sql string, logical int64, src *endpoint) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return
	}
	appended, removed := -1, -1
	p.mu.Lock()
	switch st := stmt.(type) {
	case *sqlparse.Select:
		if st.Into != "" {
			p.journal = append(p.journal, journalEntry{sql: sql, logical: logical, name: st.Into})
			appended = len(p.journal) - 1
		}
	case *sqlparse.CreateJoin:
		p.journal = append(p.journal, journalEntry{sql: sql, logical: logical, name: st.Name, isJoin: true})
		appended = len(p.journal) - 1
	case *sqlparse.DropJoin:
		for i := len(p.journal) - 1; i >= 0; i-- {
			if p.journal[i].isJoin && p.journal[i].name == st.Name {
				p.journal = append(p.journal[:i], p.journal[i+1:]...)
				removed = i
				break
			}
		}
	}
	p.mu.Unlock()
	if appended >= 0 && src != nil {
		src.mu.Lock()
		if src.journalApplied == appended {
			src.journalApplied = appended + 1
		}
		src.mu.Unlock()
	}
	if removed >= 0 {
		for _, ep := range p.eps {
			ep.mu.Lock()
			if ep.journalApplied > removed {
				ep.journalApplied--
			}
			ep.mu.Unlock()
		}
	}
}

func (p *Pool) journalSnapshot() []journalEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]journalEntry, len(p.journal))
	copy(out, p.journal)
	return out
}

// objectExists consults ep's catalog for a journal entry's object.
func (p *Pool) objectExists(ctx context.Context, ep *endpoint, e journalEntry) bool {
	datasets, joins, err := ep.c.Catalog(ctx)
	if err != nil {
		return false
	}
	names := datasets
	if e.isJoin {
		names = joins
	}
	for _, n := range names {
		if n == e.name {
			return true
		}
	}
	return false
}

// isDrainShed reports whether err is an instance announcing its own
// departure (a shed envelope whose admission reason is draining).
func isDrainShed(err error) bool {
	var adm *sched.AdmissionError
	return errors.As(err, &adm) && adm.Reason == sched.ReasonDraining
}

// onSuccess clears ep's failure streak.
func (p *Pool) onSuccess(ep *endpoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ep.consecFails = 0
}

// recordFailure notes a transport/corrupt-frame failure against ep,
// opening its breaker at the threshold and moving the cursor to a
// peer either way.
func (p *Pool) recordFailure(ep *endpoint) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ep.consecFails++
	if ep.consecFails >= p.cfg.BreakerThreshold && !ep.open {
		ep.open = true
		ep.openUntil = p.clock.Now().Add(p.cfg.BreakerCooldown)
		ep.opens++
		p.stats.BreakerOpens++
	}
	p.advanceLocked(ep)
}

// tripDrain opens ep's breaker immediately — one draining shed is an
// announcement, not a failure streak — stretching the cooldown to any
// server retry-after hint, and moves the cursor to a peer.
func (p *Pool) tripDrain(ep *endpoint, err error) {
	cooldown := p.cfg.BreakerCooldown
	if hint, ok := serve.RetryAfter(err); ok && hint > cooldown {
		cooldown = hint
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.DrainFailovers++
	if !ep.open {
		ep.open = true
		ep.opens++
		p.stats.BreakerOpens++
	}
	ep.openUntil = p.clock.Now().Add(cooldown)
	ep.consecFails = 0
	p.advanceLocked(ep)
}

// advanceLocked moves the sticky cursor off ep. Callers hold p.mu.
func (p *Pool) advanceLocked(ep *endpoint) {
	if p.eps[p.cursor] == ep {
		p.cursor = (p.cursor + 1) % len(p.eps)
	}
}

// cooldownWait is how long until the earliest open breaker half-opens,
// clamped to [1ms, BreakerCooldown] so a wall/fake clock disagreement
// cannot stall the loop.
func (p *Pool) cooldownWait() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	wait := p.cfg.BreakerCooldown
	for _, ep := range p.eps {
		if d := ep.openUntil.Sub(now); d < wait {
			wait = d
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return wait
}

// backoffWait computes the pool's between-sweep wait (see
// backoffWaitLocked for the hint contract).
func (p *Pool) backoffWait(sweep int, err error) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return backoffWaitLocked(p.rng, p.cfg.BackoffBase, p.cfg.BackoffMax, sweep, err)
}

// sleep waits d or until ctx dies.
func (p *Pool) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (p *Pool) count(f func(*PoolStats)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	f(&p.stats)
}

func coalesceErr(a, b error) error {
	if b != nil {
		return b
	}
	return a
}

// Metrics fetches a /metrics snapshot from the first reachable
// endpoint (cursor order).
func (p *Pool) Metrics(ctx context.Context) (serve.MetricsSnapshot, error) {
	var lastErr error
	for _, ep := range p.epsInOrder() {
		snap, err := ep.c.Metrics(ctx)
		if err == nil {
			return snap, nil
		}
		lastErr = err
	}
	return serve.MetricsSnapshot{}, lastErr
}

// Catalog fetches the dataset and join listings from the first
// reachable endpoint (cursor order).
func (p *Pool) Catalog(ctx context.Context) (datasets, joins []string, err error) {
	var lastErr error
	for _, ep := range p.epsInOrder() {
		datasets, joins, err := ep.c.Catalog(ctx)
		if err == nil {
			return datasets, joins, nil
		}
		lastErr = err
	}
	return nil, nil, lastErr
}

// epsInOrder lists endpoints starting at the sticky cursor, closed
// breakers first.
func (p *Pool) epsInOrder() []*endpoint {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.eps)
	var closed, opened []*endpoint
	for i := 0; i < n; i++ {
		ep := p.eps[(p.cursor+i)%n]
		if ep.open {
			opened = append(opened, ep)
		} else {
			closed = append(closed, ep)
		}
	}
	return append(closed, opened...)
}
