// Package client is the retrying fudj network client. It speaks the
// internal/serve frame protocol against a fudjd server and restores
// the in-process programming model on the far side of the socket:
// queries return *engine.Result, failures decode to the same concrete
// error taxonomy, and fudj.IsRetryable classifies them identically.
//
// Robustness contract:
//
//   - Deadline propagation: each attempt forwards the context's
//     remaining budget in X-Fudj-Deadline-Ms, so the server derives its
//     query context from the client's deadline rather than guessing.
//   - Retry: retryable failures (transport faults, corrupt frames,
//     admission sheds, barrier losses) are retried with jittered
//     exponential backoff; a server-supplied retry-after hint is
//     honored as the floor of the wait. Non-retryable errors
//     (timeouts, resource overruns, UDF panics, parse errors) are
//     returned on the first attempt, never retried.
//   - Idempotency: every logical query carries a client-chosen query
//     ID; all attempts reuse it, so a retry whose original response
//     was lost replays the server's recorded response instead of
//     executing the statement twice.
//   - Cancellation: when the caller's context is canceled mid-query
//     the client aborts the attempt, sends a best-effort /v1/cancel so
//     the server-side execution stops too, and surfaces an error
//     wrapping context.Canceled.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/engine"
	"fudj/internal/sched"
	"fudj/internal/serve"
	"fudj/internal/types"
)

// Config shapes one Client.
type Config struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:7531".
	// Required.
	BaseURL string
	// Session names the server-side session. Empty selects "default".
	Session string
	// QueryPrefix namespaces this client's idempotency keys inside the
	// session. Two concurrent clients sharing a session MUST use
	// distinct prefixes or their replay records collide. Empty selects
	// "q<Seed>".
	QueryPrefix string
	// MaxAttempts bounds tries per query (first attempt included).
	// <=0 selects 4. 1 disables retry.
	MaxAttempts int
	// BackoffBase seeds the exponential backoff. <=0 selects 50ms.
	BackoffBase time.Duration
	// BackoffMax caps one backoff wait. <=0 selects 2s.
	BackoffMax time.Duration
	// AttemptTimeout bounds a single attempt end-to-end, so a stalled
	// connection turns into a retryable transport error instead of a
	// hang. 0 means the caller's context is the only bound.
	AttemptTimeout time.Duration
	// Seed feeds the backoff jitter PRNG (deterministic tests).
	// 0 selects 1.
	Seed int64
	// HTTPClient overrides the transport (tests inject a chaos one).
	HTTPClient *http.Client
}

// Result is one successful query's outcome.
type Result struct {
	*engine.Result
	// TraceLines is the server-rendered span tree (WithTrace only).
	TraceLines []string
	// Attempts is how many tries this query took.
	Attempts int
	// Replayed reports that the server answered from its idempotent
	// replay cache (an earlier attempt's recorded response) rather
	// than a fresh execution.
	Replayed bool
	// Instance is the serving instance's stable ID (HeaderInstance) —
	// the scope of this query's idempotency key and session state.
	Instance string
	// Endpoint is the base URL that answered (pool queries only; a
	// single-endpoint client leaves it empty).
	Endpoint string
}

// QueryOption tweaks one Query call.
type QueryOption func(*queryOpts)

type queryOpts struct {
	priority sched.Priority
	hasPrio  bool
	traced   bool
}

// WithPriority sets the admission priority for this query.
func WithPriority(p sched.Priority) QueryOption {
	return func(o *queryOpts) { o.priority = p; o.hasPrio = true }
}

// WithTrace asks the server to render the execution span tree into the
// result's TraceLines.
func WithTrace() QueryOption {
	return func(o *queryOpts) { o.traced = true }
}

// Client is a retrying connection to one fudjd server. Safe for
// concurrent use.
type Client struct {
	cfg  Config
	base string
	hc   *http.Client

	mu     sync.Mutex
	rng    *rand.Rand
	nextID int64
}

// New builds a client. It does not dial; the first Query does.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: Config.BaseURL is required")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("client: bad BaseURL %q", cfg.BaseURL)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.QueryPrefix == "" {
		cfg.QueryPrefix = "q" + strconv.FormatInt(cfg.Seed, 10)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		cfg:  cfg,
		base: strings.TrimRight(cfg.BaseURL, "/"),
		hc:   hc,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// Close releases idle connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// Query executes one statement, retrying retryable failures until ctx
// or the attempt budget runs out. The returned error decodes to the
// same concrete taxonomy type the in-process engine would return.
func (c *Client) Query(ctx context.Context, sql string, opts ...QueryOption) (*Result, error) {
	var qo queryOpts
	for _, o := range opts {
		o(&qo)
	}
	c.mu.Lock()
	c.nextID++
	queryID := fmt.Sprintf("%s-%d", c.cfg.QueryPrefix, c.nextID)
	c.mu.Unlock()

	var lastErr error
	for attempt := 1; ; attempt++ {
		res, err := c.attempt(ctx, sql, queryID, "", qo)
		if err == nil {
			res.Attempts = attempt
			return res, nil
		}
		lastErr = err

		// The caller gave up: stop the server-side execution too, and
		// surface the cancellation rather than the attempt's wreckage.
		// The attempt error is deliberately flattened to text — wrapping
		// a retryable transport error here would reclassify the caller's
		// own cancellation as retryable.
		if ctx.Err() != nil {
			c.cancelRemote(queryID)
			return nil, fmt.Errorf("client: query %s: %w (last attempt: %s)", queryID, ctx.Err(), err.Error())
		}
		if !cluster.IsRetryable(err) || attempt >= c.cfg.MaxAttempts {
			return nil, err
		}
		if err := c.backoff(ctx, attempt, err); err != nil {
			c.cancelRemote(queryID)
			return nil, fmt.Errorf("client: query %s: %w (last attempt: %s)", queryID, ctx.Err(), lastErr.Error())
		}
	}
}

// backoff sleeps the wait backoffWait computes for `attempt`. Returns
// ctx's error if the context dies first.
func (c *Client) backoff(ctx context.Context, attempt int, err error) error {
	t := time.NewTimer(c.backoffWait(attempt, err))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// backoffWait computes the wait before retrying `attempt`. Without a
// server hint it is jittered exponential backoff on [d/2, d] where d
// is the capped exponential for this attempt. A server retry-after
// hint riding on err is the *exact minimum* whenever present: the wait
// is hint plus jitter on [0, d/2] — never below the hint (the server
// knows when it will take work again; sleeping less just buys another
// refusal) and never stripped of jitter (a fleet of clients all
// sleeping exactly the hint would resubmit in lockstep).
func (c *Client) backoffWait(attempt int, err error) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return backoffWaitLocked(c.rng, c.cfg.BackoffBase, c.cfg.BackoffMax, attempt, err)
}

// backoffWaitLocked is the shared wait computation for Client and Pool
// (each passes its own seeded rng, which the caller's lock guards).
func backoffWaitLocked(rng *rand.Rand, base, max time.Duration, attempt int, err error) time.Duration {
	d := max
	if attempt <= 32 {
		d = base << (attempt - 1)
		if d > max || d <= 0 {
			d = max
		}
	}
	jitter := time.Duration(rng.Int63n(int64(d/2) + 1))
	if hint, ok := serve.RetryAfter(err); ok {
		return hint + jitter
	}
	return d/2 + jitter
}

// attempt runs one try of one query. A non-empty expect ships
// HeaderExpectInstance, so a server that is not the named instance
// refuses before touching its replay cache (the pool's failover
// handshake).
func (c *Client) attempt(parent context.Context, sql, queryID, expect string, qo queryOpts) (*Result, error) {
	ctx := parent
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", strings.NewReader(sql))
	if err != nil {
		return nil, &serve.TransportError{Op: "build request", Err: err}
	}
	req.Header.Set(serve.HeaderProto, strconv.Itoa(serve.ProtoVersion))
	if c.cfg.Session != "" {
		req.Header.Set(serve.HeaderSession, c.cfg.Session)
	}
	req.Header.Set(serve.HeaderQueryID, queryID)
	if expect != "" {
		req.Header.Set(serve.HeaderExpectInstance, expect)
	}
	// Deadline propagation: ship the remaining budget, not the
	// absolute instant, so client/server clock skew cannot distort it.
	if dl, ok := parent.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(serve.HeaderDeadlineMs, strconv.FormatInt(ms, 10))
	}
	if qo.hasPrio {
		req.Header.Set(serve.HeaderPriority, qo.priority.String())
	}
	if qo.traced {
		req.Header.Set(serve.HeaderTrace, "1")
	}

	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, &serve.TransportError{Op: "send query", Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, &serve.TransportError{
			Op:  "send query",
			Err: fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body)),
		}
	}
	if v := resp.Header.Get(serve.HeaderProto); v != "" && v != strconv.Itoa(serve.ProtoVersion) {
		return nil, &serve.RemoteError{
			Code:    serve.CodeProto,
			Message: fmt.Sprintf("server speaks protocol %s, client %d", v, serve.ProtoVersion),
		}
	}
	res, err := decodeResponse(resp.Body)
	if err != nil {
		return nil, err
	}
	res.Instance = resp.Header.Get(serve.HeaderInstance)
	return res, nil
}

// Ready probes the server's /v1/ready readiness endpoint. It reports
// whether the server is accepting new queries and which instance
// answered; err is non-nil only when no well-formed answer came back
// at all (a draining server's 503 is a valid "not ready", not an
// error). The pool's circuit breaker half-open probe calls this.
func (c *Client) Ready(ctx context.Context) (ready bool, instance string, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/ready", nil)
	if err != nil {
		return false, "", &serve.TransportError{Op: "build request", Err: err}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, "", &serve.TransportError{Op: "get /v1/ready", Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return false, "", &serve.TransportError{Op: "get /v1/ready", Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	var out struct {
		Ready    bool   `json:"ready"`
		Instance string `json:"instance"`
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	if err != nil {
		return false, "", &serve.TransportError{Op: "get /v1/ready", Err: err}
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return false, "", &serve.TransportError{Op: "decode /v1/ready", Err: err}
	}
	return out.Ready, out.Instance, nil
}

// decodeResponse consumes a frame stream into a Result, or the decoded
// query error.
func decodeResponse(r io.Reader) (*Result, error) {
	fr := serve.NewFrameReader(r)
	var (
		schema *types.Schema
		rows   []types.Record
	)
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				// The stream ended before a trailer or error frame: the
				// connection died mid-response.
				return nil, &serve.TransportError{Op: "read response", Err: io.ErrUnexpectedEOF}
			}
			var corrupt *serve.CorruptFrameError
			if errors.As(err, &corrupt) {
				return nil, corrupt
			}
			return nil, &serve.TransportError{Op: "read response", Err: err}
		}
		switch typ {
		case serve.FrameSchema:
			schema, err = serve.DecodeSchemaFrame(payload)
			if err != nil {
				return nil, &serve.TransportError{Op: "decode schema", Err: err}
			}
		case serve.FrameBatch:
			recs, err := types.DecodeRecords(payload)
			if err != nil {
				return nil, &serve.TransportError{Op: "decode batch", Err: err}
			}
			rows = append(rows, recs...)
		case serve.FrameError:
			var env serve.Envelope
			if err := json.Unmarshal(payload, &env); err != nil {
				return nil, &serve.TransportError{Op: "decode error envelope", Err: err}
			}
			return nil, serve.DecodeError(env)
		case serve.FrameTrailer:
			t, err := serve.DecodeTrailerFrame(payload)
			if err != nil {
				return nil, &serve.TransportError{Op: "decode trailer", Err: err}
			}
			if schema == nil {
				return nil, &serve.TransportError{Op: "read response", Err: errors.New("trailer before schema")}
			}
			if t.Rows != len(rows) {
				return nil, &serve.CorruptFrameError{
					Type: serve.FrameTrailer, Length: len(payload),
					Reason: fmt.Sprintf("trailer row count %d != %d received", t.Rows, len(rows)),
				}
			}
			return &Result{
				Result: &engine.Result{
					Schema:  schema,
					Rows:    rows,
					Plan:    t.Plan,
					Elapsed: time.Duration(t.ElapsedNs),
					Join:    t.Join,
					Cluster: t.Cluster,
					Faults:  t.Faults,
					Memory:  t.Memory,
					Sched:   t.Sched,
					Metrics: t.Metrics,
				},
				TraceLines: t.Trace,
				Replayed:   t.Replayed,
			}, nil
		}
	}
}

// cancelRemote tells the server to cancel queryID's execution. Best
// effort with its own short budget; the caller is already on the way
// out.
func (c *Client) cancelRemote(queryID string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	sess := c.cfg.Session
	if sess == "" {
		sess = "default"
	}
	u := fmt.Sprintf("%s/v1/cancel?session=%s&query=%s", c.base, url.QueryEscape(sess), url.QueryEscape(queryID))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Metrics fetches the server's /metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (serve.MetricsSnapshot, error) {
	var snap serve.MetricsSnapshot
	err := c.getJSON(ctx, "/metrics", &snap)
	return snap, err
}

// Catalog fetches the server's dataset and join listings.
func (c *Client) Catalog(ctx context.Context) (datasets, joins []string, err error) {
	var out struct {
		Datasets []string `json:"datasets"`
		Joins    []string `json:"joins"`
	}
	if err := c.getJSON(ctx, "/v1/catalog", &out); err != nil {
		return nil, nil, err
	}
	return out.Datasets, out.Joins, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return &serve.TransportError{Op: "build request", Err: err}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &serve.TransportError{Op: "get " + path, Err: err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &serve.TransportError{Op: "get " + path, Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return &serve.TransportError{Op: "get " + path, Err: err}
	}
	if err := json.Unmarshal(body, v); err != nil {
		return &serve.TransportError{Op: "decode " + path, Err: err}
	}
	return nil
}
