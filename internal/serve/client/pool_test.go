package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"fudj/internal/sched"
	"fudj/internal/serve"
)

var poolEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// manualClock is a hand-advanced trace.Clock for breaker timing tests.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// readyServer is a stub fudjd answering only the readiness probe.
func readyServer(t *testing.T, instance string, ready *bool) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/ready" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set(serve.HeaderInstance, instance)
		w.Header().Set("Content-Type", "application/json")
		ok := *ready
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{"ready": ok, "draining": !ok, "instance": instance})
	}))
	t.Cleanup(srv.Close)
	return srv
}

func newTestPool(t *testing.T, clock *manualClock, endpoints ...string) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{
		Endpoints:        endpoints,
		Seed:             1,
		Clock:            clock,
		BreakerThreshold: 3,
		BreakerCooldown:  250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPoolSeededSelectionDeterministic(t *testing.T) {
	eps := []string{"http://a:1", "http://b:1", "http://c:1"}
	a := newTestPool(t, &manualClock{now: poolEpoch}, eps...)
	b := newTestPool(t, &manualClock{now: poolEpoch}, eps...)
	if a.cursor != b.cursor {
		t.Fatalf("same seed, different starting endpoints: %d vs %d", a.cursor, b.cursor)
	}
	epA, _ := a.pick()
	epB, _ := b.pick()
	if epA.url != epB.url {
		t.Fatalf("same seed picked %s vs %s", epA.url, epB.url)
	}
}

func TestPoolBreakerOpensAtThresholdAndFailsOver(t *testing.T) {
	clock := &manualClock{now: poolEpoch}
	p := newTestPool(t, clock, "http://a:1", "http://b:1")
	first, _ := p.pick()

	// Below the threshold the endpoint stays routable (cursor moves off
	// it, but it is not open).
	p.recordFailure(first)
	p.recordFailure(first)
	if first.open {
		t.Fatal("breaker opened below threshold")
	}
	p.recordFailure(first)
	if !first.open {
		t.Fatal("breaker must open at the threshold")
	}
	// pick must now route to the peer, not the open endpoint.
	for i := 0; i < 4; i++ {
		ep, probe := p.pick()
		if probe || ep == first {
			t.Fatalf("pick routed to the open endpoint (probe=%v)", probe)
		}
	}
	st := p.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
	if st.Metrics()["serve.ha.breaker_opens"] != 1 {
		t.Fatal("serve.ha.breaker_opens not surfaced")
	}
}

func TestPoolBreakerHalfOpenProbeCloses(t *testing.T) {
	ready := true
	backend := readyServer(t, "inst-1", &ready)
	clock := &manualClock{now: poolEpoch}
	p := newTestPool(t, clock, backend.URL)
	ep, _ := p.pick()

	for i := 0; i < 3; i++ {
		p.recordFailure(ep)
	}
	if !ep.open {
		t.Fatal("breaker must be open")
	}
	// Cooling down: nothing routable, not even a probe.
	if got, _ := p.pick(); got != nil {
		t.Fatal("open breaker inside cooldown must not be picked")
	}
	// Past the cooldown the endpoint is offered as a half-open probe.
	clock.advance(300 * time.Millisecond)
	got, probe := p.pick()
	if got != ep || !probe {
		t.Fatalf("expected half-open probe offer, got (%v, %v)", got, probe)
	}
	if !p.probe(context.Background(), ep) {
		t.Fatal("probe against a ready server must close the breaker")
	}
	if ep.open || ep.consecFails != 0 {
		t.Fatal("breaker not reset after successful probe")
	}
	if inst := p.Stats().Endpoints[0].Instance; inst != "inst-1" {
		t.Fatalf("probe did not adopt instance: %q", inst)
	}
	if st := p.Stats(); st.BreakerCloses != 1 || st.Probes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolBreakerProbeAgainstDrainingReopens(t *testing.T) {
	ready := false
	backend := readyServer(t, "inst-1", &ready)
	clock := &manualClock{now: poolEpoch}
	p := newTestPool(t, clock, backend.URL)
	ep, _ := p.pick()
	for i := 0; i < 3; i++ {
		p.recordFailure(ep)
	}
	clock.advance(300 * time.Millisecond)
	if p.probe(context.Background(), ep) {
		t.Fatal("probe against a draining server must fail")
	}
	if !ep.open {
		t.Fatal("breaker must stay open after a failed probe")
	}
	// The failed probe re-arms the cooldown from now.
	if got, _ := p.pick(); got != nil {
		t.Fatal("failed probe must re-enter cooldown")
	}
	clock.advance(300 * time.Millisecond)
	ready = true
	if _, probe := p.pick(); !probe {
		t.Fatal("cooldown elapsed again: expected another probe offer")
	}
	if !p.probe(context.Background(), ep) {
		t.Fatal("probe against the recovered server must close the breaker")
	}
}

func TestPoolTripDrainFailsOverImmediately(t *testing.T) {
	clock := &manualClock{now: poolEpoch}
	p := newTestPool(t, clock, "http://a:1", "http://b:1")
	ep, _ := p.pick()
	hint := 700 * time.Millisecond
	p.tripDrain(ep, &serve.ShedError{
		RetryAfter: hint,
		Err:        &sched.AdmissionError{Reason: sched.ReasonDraining},
	})
	if !ep.open {
		t.Fatal("draining endpoint must open immediately (no failure streak)")
	}
	// The cooldown is stretched to the server's own retry-after hint.
	if got := ep.openUntil.Sub(poolEpoch); got != hint {
		t.Fatalf("openUntil %v after trip, want the %v hint", got, hint)
	}
	// And the very next pick is the peer — no backoff in between.
	next, probe := p.pick()
	if probe || next == ep {
		t.Fatal("pick after a drain trip must be the peer, immediately")
	}
	st := p.Stats()
	if st.DrainFailovers != 1 || st.BreakerOpens != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPoolJournal(t *testing.T) {
	p := newTestPool(t, &manualClock{now: poolEpoch}, "http://a:1")
	p.journalOnSuccess("SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)", 1, nil)
	p.journalOnSuccess(`CREATE JOIN myjoin(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`, 2, nil)
	p.journalOnSuccess("SELECT p.id INTO hits FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)", 3, nil)
	entries := p.journalSnapshot()
	if len(entries) != 2 {
		t.Fatalf("journal holds %d entries, want 2 (plain SELECT is not session DDL)", len(entries))
	}
	if !entries[0].isJoin || entries[0].name != "myjoin" || entries[0].logical != 2 {
		t.Fatalf("entry 0: %+v", entries[0])
	}
	if entries[1].isJoin || entries[1].name != "hits" || entries[1].logical != 3 {
		t.Fatalf("entry 1: %+v", entries[1])
	}
	// DROP JOIN erases the matching CREATE rather than being journaled.
	p.journalOnSuccess("DROP JOIN myjoin", 4, nil)
	entries = p.journalSnapshot()
	if len(entries) != 1 || entries[0].name != "hits" {
		t.Fatalf("after drop: %+v", entries)
	}
}

func TestPoolJournalWatermarks(t *testing.T) {
	p := newTestPool(t, &manualClock{now: poolEpoch}, "http://a:1", "http://b:1")
	src, other := p.eps[0], p.eps[1]
	createSQL := func(name string) string {
		return "CREATE JOIN " + name + `(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`
	}
	// The endpoint that executed a statement must not replay it back to
	// itself: its watermark rides the append.
	p.journalOnSuccess(createSQL("j1"), 1, src)
	p.journalOnSuccess(createSQL("j2"), 2, src)
	if src.journalApplied != 2 {
		t.Fatalf("executing endpoint watermark %d, want 2", src.journalApplied)
	}
	if other.journalApplied != 0 {
		t.Fatalf("peer watermark %d, want 0 (it has seen nothing)", other.journalApplied)
	}
	// A peer that replayed only j1 (watermark 1) must still owe j2 after
	// j1's entry is erased by a DROP — the indexes it was counting
	// shifted down, and so must the watermark.
	other.journalApplied = 1
	p.journalOnSuccess("DROP JOIN j1", 3, src)
	entries := p.journalSnapshot()
	if len(entries) != 1 || entries[0].name != "j2" {
		t.Fatalf("after drop: %+v", entries)
	}
	if other.journalApplied != 0 {
		t.Fatalf("peer watermark %d after drop, want 0 (still owes j2)", other.journalApplied)
	}
	if src.journalApplied != 1 {
		t.Fatalf("executing endpoint watermark %d after drop, want 1", src.journalApplied)
	}
}

func TestPoolIsDrainShed(t *testing.T) {
	drain := &serve.ShedError{Err: &sched.AdmissionError{Reason: sched.ReasonDraining}}
	if !isDrainShed(drain) {
		t.Fatal("draining shed not classified")
	}
	busy := &serve.ShedError{Err: &sched.AdmissionError{Reason: sched.ReasonQueueFull}}
	if isDrainShed(busy) {
		t.Fatal("queue-full shed misclassified as draining")
	}
	if isDrainShed(&serve.TransportError{Op: "x"}) {
		t.Fatal("transport error misclassified as draining")
	}
}
