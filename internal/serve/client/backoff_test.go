package client

import (
	"testing"
	"time"

	"fudj/internal/sched"
	"fudj/internal/serve"
)

func newBackoffClient(t *testing.T, seed int64) *Client {
	t.Helper()
	c, err := New(Config{
		BaseURL:     "http://127.0.0.1:1",
		Seed:        seed,
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func shedWithHint(hint time.Duration) error {
	return &serve.ShedError{
		RetryAfter: hint,
		Err:        &sched.AdmissionError{Reason: sched.ReasonQueueFull},
	}
}

// expWait is the capped exponential for an attempt under the test
// client's base/max config.
func expWait(attempt int) time.Duration {
	d := 100 * time.Millisecond << (attempt - 1)
	if d > time.Second {
		d = time.Second
	}
	return d
}

func TestBackoffWithoutHintIsJitteredExponential(t *testing.T) {
	c := newBackoffClient(t, 7)
	err := &serve.TransportError{Op: "send query"}
	for attempt := 1; attempt <= 8; attempt++ {
		for i := 0; i < 50; i++ {
			d := expWait(attempt)
			got := c.backoffWait(attempt, err)
			if got < d/2 || got > d {
				t.Fatalf("attempt %d: wait %v outside [%v, %v]", attempt, got, d/2, d)
			}
		}
	}
}

func TestBackoffHintIsExactMinimum(t *testing.T) {
	// The server hint must bound the wait from below whenever present —
	// jitter rides above it, never under it — including when the hint
	// is *smaller* than the exponential wait (the old code ignored the
	// hint then, over-waiting on late attempts against a server that
	// said "250ms is enough").
	for _, hint := range []time.Duration{20 * time.Millisecond, 250 * time.Millisecond, 3 * time.Second} {
		c := newBackoffClient(t, 42)
		err := shedWithHint(hint)
		for attempt := 1; attempt <= 8; attempt++ {
			for i := 0; i < 50; i++ {
				got := c.backoffWait(attempt, err)
				if got < hint {
					t.Fatalf("hint %v attempt %d: wait %v below the hint", hint, attempt, got)
				}
				if max := hint + expWait(attempt)/2; got > max {
					t.Fatalf("hint %v attempt %d: wait %v above hint+jitter ceiling %v", hint, attempt, got, max)
				}
			}
		}
	}
}

func TestBackoffHintSmallerThanExponentialWins(t *testing.T) {
	// Pin the satellite regression precisely: on a late attempt the
	// exponential floor (max/2 = 500ms) exceeds a 100ms hint, and the
	// fixed code must be able to wait less than that floor — the hint
	// plus its jitter, not the exponential.
	c := newBackoffClient(t, 3)
	hint := 100 * time.Millisecond
	err := shedWithHint(hint)
	sawBelowExpFloor := false
	for i := 0; i < 200; i++ {
		got := c.backoffWait(8, err) // expWait(8) = 1s, floor 500ms
		if got < hint || got > hint+500*time.Millisecond {
			t.Fatalf("wait %v outside [%v, %v]", got, hint, hint+500*time.Millisecond)
		}
		if got < 500*time.Millisecond {
			sawBelowExpFloor = true
		}
	}
	if !sawBelowExpFloor {
		t.Fatal("hint never undercut the exponential floor: hint is not being honored as the minimum")
	}
}

func TestBackoffDeterministicSeed(t *testing.T) {
	a := newBackoffClient(t, 99)
	b := newBackoffClient(t, 99)
	err := shedWithHint(250 * time.Millisecond)
	for attempt := 1; attempt <= 6; attempt++ {
		wa := a.backoffWait(attempt, err)
		wb := b.backoffWait(attempt, err)
		if wa != wb {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", attempt, wa, wb)
		}
	}
}

func TestBackoffJitterDesynchronizes(t *testing.T) {
	// Two clients with different seeds must not back off in lockstep
	// when given the same hint — the whole point of jittering above it.
	a := newBackoffClient(t, 1)
	b := newBackoffClient(t, 2)
	err := shedWithHint(250 * time.Millisecond)
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if a.backoffWait(attempt, err) != b.backoffWait(attempt, err) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}
