package serve

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"fudj/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "name", Kind: types.KindString},
	)
}

func testRows(n int) []types.Record {
	rows := make([]types.Record, n)
	for i := range rows {
		rows[i] = types.Record{types.NewInt64(int64(i)), types.NewString("row")}
	}
	return rows
}

// drain reads every frame in buf, returning types and payloads.
func drainFrames(t *testing.T, buf []byte) (typs []byte, payloads [][]byte) {
	t.Helper()
	fr := NewFrameReader(bytes.NewReader(buf))
	for {
		typ, payload, err := fr.Next()
		if err == io.EOF {
			return typs, payloads
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		typs = append(typs, typ)
		payloads = append(payloads, payload)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	schema := testSchema()
	rows := testRows(10)
	var stream []byte
	stream = append(stream, EncodeSchemaFrame(schema)...)
	stream = append(stream, EncodeBatchFrames(rows)...)
	stream = append(stream, EncodeTrailerFrame(Trailer{Rows: len(rows), ElapsedNs: 42})...)

	typs, payloads := drainFrames(t, stream)
	if len(typs) < 3 || typs[0] != FrameSchema || typs[len(typs)-1] != FrameTrailer {
		t.Fatalf("unexpected frame sequence %v", typs)
	}
	gotSchema, err := DecodeSchemaFrame(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.Len() != 2 || gotSchema.Fields[0].Name != "id" || gotSchema.Fields[1].Kind != types.KindString {
		t.Fatalf("schema did not round-trip: %+v", gotSchema)
	}
	var got []types.Record
	for i, typ := range typs {
		if typ != FrameBatch {
			continue
		}
		recs, err := types.DecodeRecords(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, recs...)
	}
	if len(got) != len(rows) {
		t.Fatalf("got %d rows, want %d", len(got), len(rows))
	}
	trailer, err := DecodeTrailerFrame(payloads[len(payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if trailer.Rows != 10 || trailer.ElapsedNs != 42 {
		t.Fatalf("trailer did not round-trip: %+v", trailer)
	}
}

func TestFrameBatchChunking(t *testing.T) {
	rows := testRows(3 * batchMaxRecords)
	stream := EncodeBatchFrames(rows)
	typs, payloads := drainFrames(t, stream)
	if len(typs) < 3 {
		t.Fatalf("expected at least 3 batch frames for %d rows, got %d", len(rows), len(typs))
	}
	total := 0
	for i := range typs {
		recs, err := types.DecodeRecords(payloads[i])
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
	}
	if total != len(rows) {
		t.Fatalf("chunked batches carried %d rows, want %d", total, len(rows))
	}
}

func TestFrameCRCDetectsCorruption(t *testing.T) {
	frame := EncodeTrailerFrame(Trailer{Rows: 7})
	// Flip one payload byte: every payload position must be caught.
	for i := frameHeaderSize; i < len(frame); i++ {
		damaged := make([]byte, len(frame))
		copy(damaged, frame)
		damaged[i] ^= 0x01
		_, _, err := NewFrameReader(bytes.NewReader(damaged)).Next()
		var corrupt *CorruptFrameError
		if !errors.As(err, &corrupt) {
			t.Fatalf("flip at %d: got %v, want CorruptFrameError", i, err)
		}
		if !corrupt.Retryable() {
			t.Fatal("corrupt frames must be retryable")
		}
	}
}

func TestFrameUnknownTypeAndOversize(t *testing.T) {
	bad := AppendFrame(nil, 99, []byte("x"))
	_, _, err := NewFrameReader(bytes.NewReader(bad)).Next()
	var corrupt *CorruptFrameError
	if !errors.As(err, &corrupt) {
		t.Fatalf("unknown type: got %v", err)
	}

	// A corrupted length prefix must error before allocating.
	huge := make([]byte, frameHeaderSize)
	huge[0] = FrameBatch
	binary.LittleEndian.PutUint32(huge[1:5], MaxFramePayload+1)
	_, _, err = NewFrameReader(bytes.NewReader(huge)).Next()
	if !errors.As(err, &corrupt) {
		t.Fatalf("oversize length: got %v", err)
	}
}

func TestFrameTruncationIsUnexpectedEOF(t *testing.T) {
	frame := EncodeTrailerFrame(Trailer{Rows: 1})
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize + 1, len(frame) - 1} {
		_, _, err := NewFrameReader(bytes.NewReader(frame[:cut])).Next()
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	// A clean end of stream is io.EOF, not an error in disguise.
	if _, _, err := NewFrameReader(bytes.NewReader(nil)).Next(); err != io.EOF {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestMarkReplayed(t *testing.T) {
	schema := testSchema()
	rows := testRows(5)
	var stream []byte
	stream = append(stream, EncodeSchemaFrame(schema)...)
	stream = append(stream, EncodeBatchFrames(rows)...)
	stream = append(stream, EncodeTrailerFrame(Trailer{Rows: len(rows), ElapsedNs: 42})...)

	marked := MarkReplayed(stream)
	typs, payloads := drainFrames(t, marked) // CRCs must still verify
	if typs[0] != FrameSchema || typs[len(typs)-1] != FrameTrailer {
		t.Fatalf("frame sequence changed: %v", typs)
	}
	tr, err := DecodeTrailerFrame(payloads[len(payloads)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Replayed {
		t.Fatal("trailer not marked replayed")
	}
	if tr.Rows != len(rows) || tr.ElapsedNs != 42 {
		t.Fatalf("trailer fields mangled: %+v", tr)
	}
	// Non-trailer frames pass through byte-identical.
	prefixLen := len(stream) - len(EncodeTrailerFrame(Trailer{Rows: len(rows), ElapsedNs: 42}))
	if !bytes.Equal(marked[:prefixLen], stream[:prefixLen]) {
		t.Fatal("data frames were rewritten")
	}
	// The original stream is untouched (records are shared, not copied).
	origTyps, origPayloads := drainFrames(t, stream)
	origTr, err := DecodeTrailerFrame(origPayloads[len(origTyps)-1])
	if err != nil {
		t.Fatal(err)
	}
	if origTr.Replayed {
		t.Fatal("MarkReplayed mutated its input")
	}

	// An error response has no trailer: returned unchanged.
	errStream := EncodeErrorFrame(Envelope{Code: CodeInternal, Message: "boom"})
	if got := MarkReplayed(errStream); !bytes.Equal(got, errStream) {
		t.Fatal("error stream should pass through unchanged")
	}
	// Garbage passes through rather than panicking.
	junk := []byte{1, 2, 3}
	if got := MarkReplayed(junk); !bytes.Equal(got, junk) {
		t.Fatal("unparseable stream should pass through unchanged")
	}
}
