package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/engine"
	"fudj/internal/sched"
)

// TestErrorTaxonomyRoundTrip is the wrap-fidelity audit for the whole
// structured error taxonomy: every error must keep its concrete type
// reachable by errors.As and its retryability classification stable
// (1) through fmt.Errorf %w wrap chains in process, and (2) through
// the wire envelope (encode → JSON → decode). The single intended
// divergence — drain sheds become retryable at the network boundary —
// is asserted explicitly.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		err  error
		// retryable is the in-process classification.
		retryable bool
		// wireRetryable is the classification after the wire round
		// trip. Equal to retryable for the whole taxonomy except drain.
		wireRetryable bool
		// check asserts the concrete type survived with its fields, on
		// both the wrapped in-process chain and the decoded remote err.
		check func(t *testing.T, err error)
	}{
		{
			name:          "admission queue full",
			err:           &sched.AdmissionError{Reason: sched.ReasonQueueFull, Priority: sched.PriorityHigh, Queued: 8, Running: 4},
			retryable:     true,
			wireRetryable: true,
			check: func(t *testing.T, err error) {
				var adm *sched.AdmissionError
				if !errors.As(err, &adm) {
					t.Fatal("AdmissionError lost")
				}
				if adm.Reason != sched.ReasonQueueFull || adm.Priority != sched.PriorityHigh || adm.Queued != 8 || adm.Running != 4 {
					t.Fatalf("fields lost: %+v", adm)
				}
			},
		},
		{
			name:          "admission pool exhausted",
			err:           &sched.AdmissionError{Reason: sched.ReasonPoolExhausted, WantBytes: 1 << 20, FreeBytes: 512},
			retryable:     true,
			wireRetryable: true,
			check: func(t *testing.T, err error) {
				var adm *sched.AdmissionError
				if !errors.As(err, &adm) {
					t.Fatal("AdmissionError lost")
				}
				if adm.WantBytes != 1<<20 || adm.FreeBytes != 512 {
					t.Fatalf("byte fields lost: %+v", adm)
				}
			},
		},
		{
			name: "admission draining",
			err:  &sched.AdmissionError{Reason: sched.ReasonDraining},
			// The deliberate divergence: non-retryable in process (this
			// scheduler never admits again), retryable over the wire
			// (the daemon restarts; back off and resubmit).
			retryable:     false,
			wireRetryable: true,
			check: func(t *testing.T, err error) {
				var adm *sched.AdmissionError
				if !errors.As(err, &adm) {
					t.Fatal("AdmissionError lost")
				}
				if adm.Reason != sched.ReasonDraining {
					t.Fatalf("reason lost: %+v", adm)
				}
			},
		},
		{
			name:          "timeout",
			err:           &engine.TimeoutError{Timeout: 3 * time.Second, Err: context.DeadlineExceeded},
			retryable:     false,
			wireRetryable: false,
			check: func(t *testing.T, err error) {
				var tmo *engine.TimeoutError
				if !errors.As(err, &tmo) {
					t.Fatal("TimeoutError lost")
				}
				if tmo.Timeout != 3*time.Second {
					t.Fatalf("timeout lost: %+v", tmo)
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatal("DeadlineExceeded not in chain")
				}
			},
		},
		{
			name:          "barrier loss",
			err:           &cluster.BarrierLossError{Barrier: cluster.BarrierShuffle, Nodes: []int{1}, Parts: []int{2, 3}},
			retryable:     true,
			wireRetryable: true,
			check: func(t *testing.T, err error) {
				var bl *cluster.BarrierLossError
				if !errors.As(err, &bl) {
					t.Fatal("BarrierLossError lost")
				}
				if bl.Barrier != cluster.BarrierShuffle || len(bl.Nodes) != 1 || len(bl.Parts) != 2 {
					t.Fatalf("fields lost: %+v", bl)
				}
			},
		},
		{
			name:          "resource",
			err:           &core.ResourceError{Join: "spatial", Phase: "combine", Partition: 3, Bytes: 4096, Budget: 1024},
			retryable:     false,
			wireRetryable: false,
			check: func(t *testing.T, err error) {
				var re *core.ResourceError
				if !errors.As(err, &re) {
					t.Fatal("ResourceError lost")
				}
				if re.Join != "spatial" || re.Phase != "combine" || re.Partition != 3 || re.Bytes != 4096 || re.Budget != 1024 {
					t.Fatalf("fields lost: %+v", re)
				}
			},
		},
		{
			name:          "udf panic",
			err:           &core.UDFError{Join: "textsim", Phase: "assign", Partition: 1, Record: 9, Panic: "boom"},
			retryable:     false,
			wireRetryable: false,
			check: func(t *testing.T, err error) {
				var ue *core.UDFError
				if !errors.As(err, &ue) {
					t.Fatal("UDFError lost")
				}
				if ue.Join != "textsim" || ue.Record != 9 || fmt.Sprint(ue.Panic) != "boom" {
					t.Fatalf("fields lost: %+v", ue)
				}
			},
		},
		{
			name:          "fault",
			err:           &cluster.FaultError{Kind: cluster.FaultCrash, Node: 2, Part: 5, Attempt: 1},
			retryable:     true,
			wireRetryable: true,
			check: func(t *testing.T, err error) {
				var fe *cluster.FaultError
				if !errors.As(err, &fe) {
					t.Fatal("FaultError lost")
				}
				if fe.Kind != cluster.FaultCrash || fe.Node != 2 || fe.Part != 5 {
					t.Fatalf("fields lost: %+v", fe)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name+"/in-process", func(t *testing.T) {
			// Two layers of %w, the way engine code actually wraps.
			wrapped := fmt.Errorf("query 7: %w", fmt.Errorf("step fudj: %w", tc.err))
			if got := cluster.IsRetryable(wrapped); got != tc.retryable {
				t.Fatalf("IsRetryable(wrapped) = %v, want %v", got, tc.retryable)
			}
			tc.check(t, wrapped)
		})
		t.Run(tc.name+"/wire", func(t *testing.T) {
			// Encode the same wrapped chain, push it through JSON the
			// way a frame payload travels, decode on the "client".
			wrapped := fmt.Errorf("query 7: %w", tc.err)
			env := EncodeError(wrapped, 250*time.Millisecond)
			payload, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			var decoded Envelope
			if err := json.Unmarshal(payload, &decoded); err != nil {
				t.Fatal(err)
			}
			remote := DecodeError(decoded)
			if got := cluster.IsRetryable(remote); got != tc.wireRetryable {
				t.Fatalf("IsRetryable(remote) = %v, want %v", got, tc.wireRetryable)
			}
			tc.check(t, remote)
		})
	}
}

// TestShedRetryAfterHint asserts the server hint rides the decoded
// error and is readable through RetryAfter.
func TestShedRetryAfterHint(t *testing.T) {
	env := EncodeError(&sched.AdmissionError{Reason: sched.ReasonDraining}, 300*time.Millisecond)
	if !env.Retryable || env.RetryAfterMs != 300 {
		t.Fatalf("shed envelope %+v", env)
	}
	err := DecodeError(env)
	d, ok := RetryAfter(err)
	if !ok || d != 300*time.Millisecond {
		t.Fatalf("RetryAfter = %v, %v", d, ok)
	}
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatal("decoded drain refusal must be a ShedError")
	}
}

// TestRemoteErrorFallback: errors outside the taxonomy keep the
// server's retryability verdict.
func TestRemoteErrorFallback(t *testing.T) {
	env := EncodeError(errors.New("no such dataset"), 0)
	if env.Code != CodeInternal || env.Retryable {
		t.Fatalf("fallback envelope %+v", env)
	}
	err := DecodeError(env)
	var rem *RemoteError
	if !errors.As(err, &rem) {
		t.Fatalf("decoded %T", err)
	}
	if cluster.IsRetryable(err) {
		t.Fatal("non-retryable verdict lost")
	}
}
