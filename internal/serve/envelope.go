// Error envelopes: the serialized form of the engine's structured
// error taxonomy. A query failure crosses the socket as an Envelope
// (one JSON object inside a FrameError frame) and is decoded back into
// the *same concrete error types* the in-process engine returns —
// *sched.AdmissionError, *engine.TimeoutError,
// *cluster.BarrierLossError, *core.ResourceError, *core.UDFError,
// *cluster.FaultError — so errors.As and fudj.IsRetryable classify a
// remote failure exactly as they would a local one.
//
// The single deliberate divergence is drain shedding: in process,
// AdmissionError{ReasonDraining} is non-retryable ("this scheduler
// will never admit again"), but at the network boundary the same
// refusal IS worth retrying — the daemon restarts, or a load balancer
// fails the client over — so the server marks drain sheds retryable
// and supplies a retry-after hint. The decoded error is a *ShedError
// (retryable) wrapping the original *sched.AdmissionError, so
// errors.As still surfaces the reason while fudj.IsRetryable follows
// the network-level classification.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/engine"
	"fudj/internal/sched"
)

// Envelope error codes.
const (
	CodeAdmission   = "admission"
	CodeTimeout     = "timeout"
	CodeBarrierLoss = "barrier_loss"
	CodeResource    = "resource"
	CodeUDF         = "udf"
	CodeFault       = "fault"
	CodeParse       = "parse"
	CodeProto       = "proto"
	CodeInstance    = "instance"
	CodeInternal    = "internal"
)

// Envelope is the wire form of one structured error. Exactly one of
// the detail fields is set for taxonomy errors; generic errors carry
// only code/message/retryable.
type Envelope struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Retryable    bool   `json:"retryable"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`

	Admission *AdmissionDetail `json:"admission,omitempty"`
	Timeout   *TimeoutDetail   `json:"timeout,omitempty"`
	Barrier   *BarrierDetail   `json:"barrier,omitempty"`
	Resource  *ResourceDetail  `json:"resource,omitempty"`
	UDF       *UDFDetail       `json:"udf,omitempty"`
	Fault     *FaultDetail     `json:"fault,omitempty"`
	Instance  *InstanceDetail  `json:"instance,omitempty"`
}

// InstanceDetail mirrors InstanceMismatchError.
type InstanceDetail struct {
	Want string `json:"want"`
	Got  string `json:"got"`
}

// AdmissionDetail mirrors sched.AdmissionError.
type AdmissionDetail struct {
	Reason    int   `json:"reason"`
	Priority  int   `json:"priority"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	WantBytes int64 `json:"want_bytes,omitempty"`
	FreeBytes int64 `json:"free_bytes,omitempty"`
	Canceled  bool  `json:"canceled,omitempty"` // Err was a context error
}

// TimeoutDetail mirrors engine.TimeoutError.
type TimeoutDetail struct {
	TimeoutNs int64 `json:"timeout_ns"`
}

// BarrierDetail mirrors cluster.BarrierLossError.
type BarrierDetail struct {
	Barrier int   `json:"barrier"`
	Nodes   []int `json:"nodes"`
	Parts   []int `json:"parts"`
}

// ResourceDetail mirrors core.ResourceError.
type ResourceDetail struct {
	Join      string `json:"join,omitempty"`
	Phase     string `json:"phase"`
	Partition int    `json:"partition"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget"`
}

// UDFDetail mirrors core.UDFError. The panic value is stringified; the
// stack stays server-side (it names server goroutines, not client
// state) except for its first line.
type UDFDetail struct {
	Join      string `json:"join"`
	Phase     string `json:"phase"`
	Partition int    `json:"partition"`
	Record    int    `json:"record"`
	Panic     string `json:"panic"`
}

// FaultDetail mirrors cluster.FaultError.
type FaultDetail struct {
	Kind    int `json:"kind"`
	Node    int `json:"node"`
	Part    int `json:"part"`
	Attempt int `json:"attempt"`
}

// ShedError is a server refusal decoded on the client: retryable at
// the network boundary (back off RetryAfter, then resubmit — possibly
// against a restarted server), whatever the wrapped in-process
// classification was. Unwrap exposes the original *sched.AdmissionError
// so callers can still read the shed reason with errors.As.
type ShedError struct {
	RetryAfter time.Duration
	Err        error
}

// Error implements the error interface.
func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: shed (retry after %v): %v", e.RetryAfter, e.Err)
}

// Unwrap exposes the wrapped refusal.
func (e *ShedError) Unwrap() error { return e.Err }

// Retryable marks the network-level shed as transient.
func (e *ShedError) Retryable() bool { return true }

// InstanceMismatchError reports that the instance answering an
// endpoint is not the one the client named in X-Fudj-Expect-Instance —
// the daemon restarted, or a balancer moved the address. It is
// retryable, and deliberately cheap: the server refuses before any
// execution or replay-cache lookup, so the client can re-key its
// idempotency scope and replay its session journal against the new
// instance (Got carries its ID), then resubmit.
type InstanceMismatchError struct {
	Want string // the instance the client expected
	Got  string // the instance that actually answered
}

// Error implements the error interface.
func (e *InstanceMismatchError) Error() string {
	return fmt.Sprintf("serve: instance changed: expected %s, got %s", e.Want, e.Got)
}

// Retryable marks the mismatch as transient: resubmit after re-keying.
func (e *InstanceMismatchError) Retryable() bool { return true }

// RemoteError is the decoded form of an error outside the structured
// taxonomy (planner errors, catalog misses, protocol misuse). The
// server's retryability verdict travels with it.
type RemoteError struct {
	Code      string
	Message   string
	Retry     bool
	RetryWait time.Duration
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("serve: remote %s error: %s", e.Code, e.Message)
}

// Retryable reports the server's classification.
func (e *RemoteError) Retryable() bool { return e.Retry }

// TransportError is a network-layer failure between client and server:
// dial refused, connection reset mid-response, a stalled read hitting
// its budget, or a corrupt frame. All are retryable — the query may
// never have run, or ran and only the response was lost; either way
// the idempotent resubmission key makes the retry safe.
type TransportError struct {
	Op  string
	Err error
}

// Error implements the error interface.
func (e *TransportError) Error() string { return fmt.Sprintf("serve: %s: %v", e.Op, e.Err) }

// Unwrap exposes the underlying network error.
func (e *TransportError) Unwrap() error { return e.Err }

// Retryable marks transport failures as transient.
func (e *TransportError) Retryable() bool { return true }

// RetryAfter extracts the server-supplied retry hint from a decoded
// error chain, when one is present.
func RetryAfter(err error) (time.Duration, bool) {
	var shed *ShedError
	if errors.As(err, &shed) && shed.RetryAfter > 0 {
		return shed.RetryAfter, true
	}
	var rem *RemoteError
	if errors.As(err, &rem) && rem.RetryWait > 0 {
		return rem.RetryWait, true
	}
	return 0, false
}

// EncodeError builds the envelope for one query failure. retryAfter is
// the server's hint for sheds (zero omits it). The retryable bit is the
// in-process classification — except drain sheds, which the network
// layer deliberately marks retryable (see the package comment).
func EncodeError(err error, retryAfter time.Duration) Envelope {
	env := Envelope{Code: CodeInternal, Message: err.Error(), Retryable: cluster.IsRetryable(err)}

	var adm *sched.AdmissionError
	var tmo *engine.TimeoutError
	var bl *cluster.BarrierLossError
	var re *core.ResourceError
	var ue *core.UDFError
	var fe *cluster.FaultError
	var im *InstanceMismatchError
	switch {
	case errors.As(err, &adm):
		env.Code = CodeAdmission
		env.Admission = &AdmissionDetail{
			Reason:    int(adm.Reason),
			Priority:  int(adm.Priority),
			Queued:    adm.Queued,
			Running:   adm.Running,
			WantBytes: adm.WantBytes,
			FreeBytes: adm.FreeBytes,
			Canceled:  adm.Err != nil,
		}
		// Every shed gets the server's retry-after hint, and a drain
		// shed is upgraded to retryable at the network boundary.
		env.Retryable = true
		if retryAfter > 0 {
			env.RetryAfterMs = retryAfter.Milliseconds()
		}
	case errors.As(err, &tmo):
		env.Code = CodeTimeout
		env.Timeout = &TimeoutDetail{TimeoutNs: int64(tmo.Timeout)}
		env.Retryable = false
	case errors.As(err, &bl):
		env.Code = CodeBarrierLoss
		env.Barrier = &BarrierDetail{Barrier: int(bl.Barrier), Nodes: bl.Nodes, Parts: bl.Parts}
		env.Retryable = true
	case errors.As(err, &re):
		env.Code = CodeResource
		env.Resource = &ResourceDetail{
			Join: re.Join, Phase: re.Phase, Partition: re.Partition,
			Bytes: re.Bytes, Budget: re.Budget,
		}
		env.Retryable = false
	case errors.As(err, &ue):
		env.Code = CodeUDF
		env.UDF = &UDFDetail{
			Join: ue.Join, Phase: ue.Phase, Partition: ue.Partition,
			Record: ue.Record, Panic: fmt.Sprint(ue.Panic),
		}
		env.Retryable = false
	case errors.As(err, &fe):
		env.Code = CodeFault
		env.Fault = &FaultDetail{Kind: int(fe.Kind), Node: fe.Node, Part: fe.Part, Attempt: fe.Attempt}
		env.Retryable = true
	case errors.As(err, &im):
		env.Code = CodeInstance
		env.Instance = &InstanceDetail{Want: im.Want, Got: im.Got}
		env.Retryable = true
	}
	return env
}

// DecodeError rebuilds the concrete error a client should see from an
// envelope. Taxonomy errors come back as their original types;
// admission refusals are wrapped in a retryable *ShedError carrying
// the server's retry-after hint; everything else decodes to a
// *RemoteError holding the server's retryability verdict.
func DecodeError(env Envelope) error {
	retryAfter := time.Duration(env.RetryAfterMs) * time.Millisecond
	switch env.Code {
	case CodeAdmission:
		if env.Admission != nil {
			adm := &sched.AdmissionError{
				Reason:    sched.Reason(env.Admission.Reason),
				Priority:  sched.Priority(env.Admission.Priority),
				Queued:    env.Admission.Queued,
				Running:   env.Admission.Running,
				WantBytes: env.Admission.WantBytes,
				FreeBytes: env.Admission.FreeBytes,
			}
			if env.Admission.Canceled {
				adm.Err = context.Canceled
			}
			return &ShedError{RetryAfter: retryAfter, Err: adm}
		}
	case CodeTimeout:
		if env.Timeout != nil {
			return &engine.TimeoutError{
				Timeout: time.Duration(env.Timeout.TimeoutNs),
				Err:     context.DeadlineExceeded,
			}
		}
	case CodeBarrierLoss:
		if env.Barrier != nil {
			return &cluster.BarrierLossError{
				Barrier: cluster.Barrier(env.Barrier.Barrier),
				Nodes:   env.Barrier.Nodes,
				Parts:   env.Barrier.Parts,
			}
		}
	case CodeResource:
		if env.Resource != nil {
			return &core.ResourceError{
				Join: env.Resource.Join, Phase: env.Resource.Phase,
				Partition: env.Resource.Partition,
				Bytes:     env.Resource.Bytes, Budget: env.Resource.Budget,
			}
		}
	case CodeUDF:
		if env.UDF != nil {
			return &core.UDFError{
				Join: env.UDF.Join, Phase: env.UDF.Phase,
				Partition: env.UDF.Partition, Record: env.UDF.Record,
				Panic: env.UDF.Panic,
			}
		}
	case CodeFault:
		if env.Fault != nil {
			return &cluster.FaultError{
				Kind: cluster.FaultKind(env.Fault.Kind), Node: env.Fault.Node,
				Part: env.Fault.Part, Attempt: env.Fault.Attempt,
			}
		}
	case CodeInstance:
		if env.Instance != nil {
			return &InstanceMismatchError{Want: env.Instance.Want, Got: env.Instance.Got}
		}
	}
	return &RemoteError{Code: env.Code, Message: env.Message, Retry: env.Retryable, RetryWait: retryAfter}
}
