// The fudjd HTTP daemon: query execution over the frame protocol,
// observability endpoints, per-connection limits, session expiry, and
// graceful drain. See protocol.go for the wire format and envelope.go
// for error fidelity.
package serve

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fudj/internal/engine"
	"fudj/internal/sched"
	"fudj/internal/sqlparse"
	"fudj/internal/trace"
)

// Config shapes one Server.
type Config struct {
	// DB is the engine instance to serve. Required.
	DB *engine.Database
	// Clock supplies timestamps (tests inject a fake). Default wall.
	Clock trace.Clock
	// MaxConns caps concurrently served connections; excess accepts
	// block in the listener. <=0 selects 256.
	MaxConns int
	// ReadHeaderTimeout bounds header reads on each request (slowloris
	// protection). <=0 selects 5s.
	ReadHeaderTimeout time.Duration
	// IdleTimeout closes keep-alive connections after inactivity.
	// <=0 selects 60s.
	IdleTimeout time.Duration
	// MaxSQLBytes bounds one request's statement text. <=0 selects 1MiB.
	MaxSQLBytes int64
	// MaxQueryTime is the server-side ceiling on any query's execution
	// time, whatever deadline the client sent. <=0 means no ceiling.
	MaxQueryTime time.Duration
	// SessionIdle is the idle expiry for sessions. <=0 selects
	// DefaultSessionIdle.
	SessionIdle time.Duration
	// ReplayCap bounds per-session idempotent replay records. <=0
	// selects DefaultReplayCap.
	ReplayCap int
	// ReplayBytes bounds per-session recorded response bytes retained
	// for replay. <=0 selects DefaultReplayBytes.
	ReplayBytes int64
	// RetryAfter is the hint attached to shed refusals. <=0 selects
	// 250ms.
	RetryAfter time.Duration
	// InstanceID is the stable identity stamped on every response
	// (HeaderInstance). Replay records and session catalogs live and
	// die with one instance, so the ID tells clients which replay
	// scope they are talking to. Empty mints a random ID at startup —
	// exactly what a restart wants, since the restarted process shares
	// nothing with its predecessor. Tests set it for determinism.
	InstanceID string
	// ErrorLog receives http.Server internals; nil discards them (chaos
	// runs make the default stderr log very noisy).
	ErrorLog *log.Logger
}

// Counters is the server's own activity snapshot, published under
// "server" in /metrics.
type Counters struct {
	Queries   int64 `json:"queries"`   // query requests accepted
	Executed  int64 `json:"executed"`  // fresh executions started
	Replayed  int64 `json:"replayed"`  // responses served from the replay cache
	Completed int64 `json:"completed"` // executions that produced a result
	Failed    int64 `json:"failed"`    // executions that produced an error frame
	Refused   int64 `json:"refused"`   // requests refused while draining
	Canceled  int64 `json:"canceled"`  // queries canceled via /v1/cancel
	BytesOut  int64 `json:"bytes_out"` // response frame bytes written
}

// liveQuery is one in-flight query's row in the live view.
type liveQuery struct {
	id      int64
	session string
	queryID string
	sql     string
	prio    sched.Priority
	started time.Time
	cancel  context.CancelFunc
}

// Server serves one Database over the fudj wire protocol.
type Server struct {
	cfg      Config
	db       *engine.Database
	clock    trace.Clock
	sessions *sessions
	instance string
	mux      *http.ServeMux
	hs       *http.Server

	mu       sync.Mutex
	draining bool
	stopped  bool
	fresh    map[net.Conn]struct{}
	nextID   int64
	live     map[int64]*liveQuery
	counters Counters
	stopOnce sync.Once
	stopCh   chan struct{}
}

// New builds a server around cfg.DB.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("serve: Config.DB is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = trace.WallClock{}
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 256
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	if cfg.MaxSQLBytes <= 0 {
		cfg.MaxSQLBytes = 1 << 20
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 250 * time.Millisecond
	}
	if cfg.InstanceID == "" {
		cfg.InstanceID = mintInstanceID()
	}
	s := &Server{
		cfg:      cfg,
		db:       cfg.DB,
		clock:    cfg.Clock,
		sessions: newSessions(cfg.SessionIdle, cfg.ReplayCap, cfg.ReplayBytes),
		instance: cfg.InstanceID,
		mux:      http.NewServeMux(),
		fresh:    make(map[net.Conn]struct{}),
		live:     make(map[int64]*liveQuery),
		stopCh:   make(chan struct{}),
	}
	s.mux.HandleFunc("/v1/query", s.handleQuery)
	s.mux.HandleFunc("/v1/cancel", s.handleCancel)
	s.mux.HandleFunc("/v1/queries", s.handleQueries)
	s.mux.HandleFunc("/v1/catalog", s.handleCatalog)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/health", s.handleHealth)
	s.mux.HandleFunc("/v1/ready", s.handleReady)
	errorLog := cfg.ErrorLog
	if errorLog == nil {
		errorLog = log.New(io.Discard, "", 0)
	}
	s.hs = &http.Server{
		Handler:           s.stampInstance(s.mux),
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		IdleTimeout:       cfg.IdleTimeout,
		MaxHeaderBytes:    64 << 10,
		ErrorLog:          errorLog,
		ConnState:         s.trackConn,
	}
	return s, nil
}

// mintInstanceID draws a fresh 8-byte random identity. crypto/rand is
// deliberate (not the engine's seeded streams): the whole point is
// that two instances — including one process restarted in place —
// never collide, whatever seeds they were configured with.
func mintInstanceID() string {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a fixed fallback
		// still beats an empty ID (mismatch detection degrades, the
		// server itself keeps working).
		return "fudjd-0"
	}
	return "fudjd-" + hex.EncodeToString(b[:])
}

// InstanceID reports the stable identity this server stamps on every
// response.
func (s *Server) InstanceID() string { return s.instance }

// stampInstance wraps the mux so every response — query frames, JSON
// endpoints, even method-not-allowed errors — carries HeaderInstance.
func (s *Server) stampInstance(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderInstance, s.instance)
		next.ServeHTTP(w, r)
	})
}

// trackConn watches connection state transitions so Shutdown can reap
// connections that never carried a request. Client transports dial
// spare keep-alive connections and park them unused; net/http's
// Shutdown gives such a StateNew connection a five-second grace before
// treating it as idle, so without this a daemon stop stalls on
// connections with nothing to lose.
func (s *Server) trackConn(c net.Conn, st http.ConnState) {
	switch st {
	case http.StateNew:
		s.mu.Lock()
		if s.stopped {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.fresh[c] = struct{}{}
		s.mu.Unlock()
	case http.StateActive, http.StateIdle, http.StateHijacked, http.StateClosed:
		s.mu.Lock()
		delete(s.fresh, c)
		s.mu.Unlock()
	}
}

// Serve accepts connections on l (bounded by MaxConns) until Shutdown.
// It always returns a non-nil error, http.ErrServerClosed after a
// clean Shutdown — the same contract as http.Server.Serve.
//
//fudjvet:ignore ctxplumb -- mirrors http.Server.Serve: cancellation arrives via Shutdown/stopCh, not a ctx parameter
func (s *Server) Serve(l net.Listener) error {
	go s.janitor()
	return s.hs.Serve(&limitListener{Listener: l, sem: make(chan struct{}, s.cfg.MaxConns)})
}

// janitor periodically expires idle sessions until Shutdown.
func (s *Server) janitor() {
	interval := s.sessions.idle / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			s.ExpireIdle(s.clock.Now())
		}
	}
}

// ExpireIdle sweeps sessions idle at `now`: their SELECT INTO datasets
// and CREATE JOIN definitions are dropped from the shared catalog and
// their replay records released. Returns the number of sessions
// expired. The janitor calls this on a timer; tests call it directly
// with a future instant.
func (s *Server) ExpireIdle(now time.Time) int {
	expired := s.sessions.expired(now)
	for _, sess := range expired {
		for _, name := range sess.datasets {
			// Best effort: the dataset may have been dropped or renamed
			// by a later statement.
			_ = s.db.Catalog().DropDataset(name)
		}
		for _, name := range sess.joins {
			_ = s.db.Catalog().DropJoin(name)
		}
	}
	return len(expired)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops query admission: new /v1/query requests are
// refused with a retryable envelope carrying the retry-after hint,
// queued queries are shed the same way, and in-flight queries run to
// completion (past ctx's deadline they are cancelled instead). The
// observability endpoints stay reachable throughout — call Shutdown
// after Drain returns to close the listener. Returns nil on a clean
// drain, or ctx's error when queries had to be cancelled.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	return s.db.Drain(ctx)
}

// Shutdown closes the listener and waits for active requests, then
// stops the session janitor. Connections that never carried a request
// (a client pool's unused spares) are closed immediately rather than
// waiting out net/http's grace period for them.
func (s *Server) Shutdown(ctx context.Context) error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.mu.Lock()
	s.stopped = true
	for c := range s.fresh {
		c.Close()
	}
	s.fresh = make(map[net.Conn]struct{})
	s.mu.Unlock()
	return s.hs.Shutdown(ctx)
}

// Counters returns the server activity snapshot.
func (s *Server) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters
}

// ExecCount reports how many times the given idempotency key actually
// executed (0 = unknown session or key) — the invariant the chaos
// suite asserts stays at 1 however many times the client retried. A
// pure read: it never creates a session or refreshes its idle stamp.
func (s *Server) ExecCount(session, queryID string) int {
	return s.sessions.execCount(session, queryID)
}

// ExecCounts reports every tracked query ID's execution count under a
// session — the HA chaos suite's per-(instance, query-id) invariant
// sweep. A pure read like ExecCount.
func (s *Server) ExecCounts(session string) map[string]int {
	return s.sessions.execCounts(session)
}

// registerLive adds an in-flight query to the live view.
func (s *Server) registerLive(sessID, queryID, sql string, prio sched.Priority, cancel context.CancelFunc) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := s.nextID
	s.live[id] = &liveQuery{
		id: id, session: sessID, queryID: queryID, sql: sql,
		prio: prio, started: s.clock.Now(), cancel: cancel,
	}
	return id
}

func (s *Server) unregisterLive(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, id)
}

func (s *Server) count(f func(*Counters)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.counters)
}

// frameSink accumulates the full response stream for the replay cache
// while forwarding frames to the client as long as the connection
// lives. A client write failure stops forwarding but never recording:
// the finished record is what makes the lost response retryable.
type frameSink struct {
	buf      []byte
	w        http.ResponseWriter
	flush    func()
	clientOK bool
}

func newFrameSink(w http.ResponseWriter) *frameSink {
	fs := &frameSink{w: w, clientOK: true, flush: func() {}}
	if f, ok := w.(http.Flusher); ok {
		fs.flush = f.Flush
	}
	return fs
}

// emit records one or more concatenated frames and forwards them.
func (fs *frameSink) emit(frames []byte) {
	if len(frames) == 0 {
		return
	}
	fs.buf = append(fs.buf, frames...)
	if fs.clientOK {
		if _, err := fs.w.Write(frames); err != nil {
			fs.clientOK = false
			return
		}
		fs.flush()
	}
}

// handleQuery is POST /v1/query: the whole query lifecycle.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set(HeaderProto, strconv.Itoa(ProtoVersion))
	w.Header().Set("Content-Type", "application/x-fudj-frames")

	writeErr := func(env Envelope) {
		w.Write(EncodeErrorFrame(env))
	}
	if v := r.Header.Get(HeaderProto); v != "" && v != strconv.Itoa(ProtoVersion) {
		writeErr(Envelope{
			Code:      CodeProto,
			Message:   fmt.Sprintf("protocol version %s not supported (server speaks %d)", v, ProtoVersion),
			Retryable: false,
		})
		return
	}
	// Instance check, before any session or replay-cache state is
	// touched: a client that expected a different instance is carrying
	// idempotency keys and session DDL that mean nothing here. The
	// refusal is retryable — the client re-keys, replays its session
	// journal, and resubmits.
	if want := r.Header.Get(HeaderExpectInstance); want != "" && want != s.instance {
		writeErr(EncodeError(&InstanceMismatchError{Want: want, Got: s.instance}, 0))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSQLBytes+1))
	if err != nil {
		writeErr(Envelope{Code: CodeProto, Message: "read request: " + err.Error(), Retryable: true})
		return
	}
	if int64(len(body)) > s.cfg.MaxSQLBytes {
		writeErr(Envelope{Code: CodeProto, Message: "statement exceeds size limit", Retryable: false})
		return
	}
	sql := strings.TrimSpace(string(body))

	now := s.clock.Now()
	sessID := r.Header.Get(HeaderSession)
	sess := s.sessions.touch(sessID, now)
	queryID := r.Header.Get(HeaderQueryID)
	s.count(func(c *Counters) { c.Queries++ })

	rec, first := s.sessions.beginQuery(sess, queryID)
	if !first {
		// Idempotent resubmission: the query already ran (or is still
		// running). Wait for its recorded response and replay it — the
		// retry must never execute the statement a second time. The
		// trailer is rewritten with Replayed=true so the client can see
		// it got recorded bytes, not a fresh execution.
		select {
		case <-rec.done:
		case <-r.Context().Done():
			return
		}
		frames := MarkReplayed(rec.frames)
		s.count(func(c *Counters) { c.Replayed++; c.BytesOut += int64(len(frames)) })
		w.Write(frames)
		return
	}

	sink := newFrameSink(w)
	// Only settled outcomes belong in the replay cache: a success or a
	// non-retryable error. Recording a *retryable* failure (a drain
	// shed, a barrier loss) would hand every retry of this query ID the
	// same cached failure back, so the query could never succeed against
	// this server — the record is forgotten instead, and the retry
	// re-executes. Replayers already waiting on the record still get
	// the (retryable) error frames and retry afresh.
	retryableFailure := false
	emitError := func(env Envelope) {
		retryableFailure = env.Retryable
		sink.emit(EncodeErrorFrame(env))
	}
	defer func() {
		if retryableFailure {
			s.sessions.forget(sess, queryID, rec)
		}
		s.sessions.finishQuery(sess, queryID, rec, sink.buf)
		s.count(func(c *Counters) { c.BytesOut += int64(len(sink.buf)) })
	}()

	// Drain refusal: retryable at the network boundary, with the
	// server's retry-after hint (clients back off and resubmit against
	// a restarted server or a failover target).
	if s.Draining() {
		s.count(func(c *Counters) { c.Refused++ })
		refusal := &sched.AdmissionError{Reason: sched.ReasonDraining}
		emitError(EncodeError(refusal, s.cfg.RetryAfter))
		return
	}

	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		env := EncodeError(err, 0)
		env.Code = CodeParse
		env.Retryable = false
		emitError(env)
		return
	}

	// Build the execution options: client deadline budget (capped by
	// the server ceiling), priority, tracing.
	var opts []engine.ExecOption
	timeout := s.cfg.MaxQueryTime
	if v := r.Header.Get(HeaderDeadlineMs); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			emitError(Envelope{
				Code: CodeProto, Message: fmt.Sprintf("bad %s header %q", HeaderDeadlineMs, v),
			})
			return
		}
		d := time.Duration(ms) * time.Millisecond
		if timeout <= 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		opts = append(opts, engine.Timeout(timeout))
	}
	prio := sched.PriorityNormal
	switch strings.ToLower(r.Header.Get(HeaderPriority)) {
	case "", "normal":
	case "low":
		prio = sched.PriorityLow
	case "high":
		prio = sched.PriorityHigh
	default:
		emitError(Envelope{
			Code: CodeProto, Message: fmt.Sprintf("bad %s header %q", HeaderPriority, r.Header.Get(HeaderPriority)),
		})
		return
	}
	opts = append(opts, engine.Priority(prio))
	traced := r.Header.Get(HeaderTrace) == "1"
	if traced {
		opts = append(opts, engine.Trace())
	}

	// Execution context. With an idempotency key the query is decoupled
	// from the connection: a client that vanishes mid-response does not
	// abort the execution, so the recorded result is there for the
	// retry to replay (cancellation goes through /v1/cancel instead).
	// Without a key, the connection is the query's lifetime.
	parent := context.Background()
	if queryID == "" {
		parent = r.Context()
	}
	runCtx, cancel := context.WithCancel(parent)
	defer cancel()
	liveID := s.registerLive(sess.id, queryID, sql, prio, cancel)
	defer s.unregisterLive(liveID)
	s.count(func(c *Counters) { c.Executed++ })
	s.sessions.mu.Lock()
	rec.execs++
	s.sessions.mu.Unlock()

	res, err := s.db.ExecuteStmtContext(runCtx, stmt, opts...)
	if err != nil {
		s.count(func(c *Counters) { c.Failed++ })
		emitError(EncodeError(err, s.cfg.RetryAfter))
		return
	}
	s.count(func(c *Counters) { c.Completed++ })

	// Session-scoped catalog tracking: objects this statement created
	// belong to the session and are swept at expiry.
	switch st := stmt.(type) {
	case *sqlparse.Select:
		if st.Into != "" {
			s.sessions.trackDataset(sess, st.Into)
		}
	case *sqlparse.CreateJoin:
		s.sessions.trackJoin(sess, st.Name)
	case *sqlparse.DropJoin:
		s.sessions.untrackJoin(st.Name)
	}

	sink.emit(EncodeSchemaFrame(res.Schema))
	sink.emit(EncodeBatchFrames(res.Rows))
	trailer := Trailer{
		Rows:      len(res.Rows),
		ElapsedNs: int64(res.Elapsed),
		Plan:      res.Plan,
		Join:      res.Join,
		Cluster:   res.Cluster,
		Faults:    res.Faults,
		Memory:    res.Memory,
		Sched:     res.Sched,
		Metrics:   res.Metrics,
	}
	if traced && res.Trace != nil {
		trailer.Trace = trace.RenderLines(res.Trace, trace.RenderOptions{CollapseTasks: true})
	}
	sink.emit(EncodeTrailerFrame(trailer))
}

// handleCancel is POST /v1/cancel?session=S&query=Q: cancels the
// matching in-flight query's context. Idempotent; 404 when nothing
// matches (already finished, or never arrived).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	sessID := r.URL.Query().Get("session")
	if sessID == "" {
		sessID = "default"
	}
	queryID := r.URL.Query().Get("query")
	var cancel context.CancelFunc
	s.mu.Lock()
	for _, lq := range s.live {
		if lq.session == sessID && lq.queryID != "" && lq.queryID == queryID {
			cancel = lq.cancel
			break
		}
	}
	if cancel != nil {
		s.counters.Canceled++
	}
	s.mu.Unlock()
	if cancel == nil {
		http.Error(w, "no matching in-flight query", http.StatusNotFound)
		return
	}
	cancel()
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "canceled\n")
}

// queryRow is one /v1/queries row.
type queryRow struct {
	ID        int64  `json:"id"`
	Session   string `json:"session"`
	QueryID   string `json:"query_id,omitempty"`
	SQL       string `json:"sql"`
	Priority  string `json:"priority"`
	ElapsedMs int64  `json:"elapsed_ms"`
}

// handleQueries is GET /v1/queries: the live in-flight view.
func (s *Server) handleQueries(w http.ResponseWriter, r *http.Request) {
	now := s.clock.Now()
	s.mu.Lock()
	rows := make([]queryRow, 0, len(s.live))
	for _, lq := range s.live {
		sql := lq.sql
		if len(sql) > 200 {
			sql = sql[:200] + "..."
		}
		rows = append(rows, queryRow{
			ID: lq.id, Session: lq.session, QueryID: lq.queryID, SQL: sql,
			Priority: lq.prio.String(), ElapsedMs: now.Sub(lq.started).Milliseconds(),
		})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	writeJSON(w, map[string]any{"queries": rows})
}

// MetricsSnapshot is the /metrics payload.
type MetricsSnapshot struct {
	Proto     int         `json:"proto"`
	Instance  string      `json:"instance"`
	Draining  bool        `json:"draining"`
	Sessions  int         `json:"sessions"`
	Live      int         `json:"live_queries"`
	Server    Counters    `json:"server"`
	Replay    ReplayStats `json:"replay"`
	Scheduler sched.Stats `json:"scheduler"`
}

// handleMetrics is GET /metrics: scheduler + server counters in one
// JSON snapshot. It stays reachable through a drain, until Shutdown.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	snap := MetricsSnapshot{
		Proto:    ProtoVersion,
		Instance: s.instance,
		Draining: s.draining,
		Live:     len(s.live),
		Server:   s.counters,
	}
	s.mu.Unlock()
	snap.Sessions = s.sessions.count()
	snap.Replay = s.sessions.replayStats()
	snap.Scheduler = s.db.SchedulerStats()
	writeJSON(w, snap)
}

// handleCatalog is GET /v1/catalog: dataset and join listings for
// remote shells.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string][]string{
		"datasets": s.db.Catalog().Datasets(),
		"joins":    s.db.Catalog().Joins(),
	})
}

// handleHealthz is GET /healthz (legacy; kept for existing probes —
// /v1/health and /v1/ready are the split liveness/readiness pair).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "draining": s.Draining()})
}

// handleHealth is GET /v1/health: pure liveness. It answers 200 as
// long as the process can serve HTTP at all — through drain, until
// Shutdown closes the listener. "Alive but not ready" is exactly the
// drain window, and conflating the two is how balancers kill
// instances that are finishing in-flight work.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"ok": true, "instance": s.instance})
}

// handleReady is GET /v1/ready: readiness for new queries. It flips to
// 503 the moment Drain begins — before the listener closes — so
// balancers and failover clients stop routing here while in-flight
// work finishes. A half-open circuit breaker probes this endpoint: a
// 200 means the instance (possibly a restarted successor) is taking
// queries again.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	draining := s.Draining()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{"ready": !draining, "draining": draining, "instance": s.instance})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// limitListener bounds concurrently served connections with a
// semaphore (the stdlib-only analogue of x/net/netutil.LimitListener).
type limitListener struct {
	net.Listener
	sem chan struct{}
}

type limitConn struct {
	net.Conn
	release func()
}

func (l *limitListener) Accept() (net.Conn, error) {
	l.sem <- struct{}{}
	c, err := l.Listener.Accept()
	if err != nil {
		<-l.sem
		return nil, err
	}
	var once sync.Once
	return &limitConn{Conn: c, release: func() { once.Do(func() { <-l.sem }) }}, nil
}

func (c *limitConn) Close() error {
	defer c.release()
	return c.Conn.Close()
}
