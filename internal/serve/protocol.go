// Package serve is the network serving layer: the wire protocol and
// HTTP daemon that turn one engine.Database into the fudjd service,
// without giving up the robustness guarantees the in-process engine
// makes. Queries arrive over a versioned frame protocol; result
// batches reuse the internal/wire record encoding (so network serde
// cost is the same currency the simulated cluster pays) and every
// frame carries a CRC so a corrupted byte on the wire is detected,
// never silently decoded. Errors cross the socket as structured
// envelopes (envelope.go) that round-trip the engine's whole error
// taxonomy, so fudj.IsRetryable gives a client the same answer a
// co-located caller would get.
//
// # Frame layout
//
// A response to POST /v1/query is a stream of frames:
//
//	offset 0    frame type (1 byte)
//	offset 1-4  payload length, uint32 little-endian
//	offset 5-8  CRC32 (IEEE) of the payload, uint32 little-endian
//	offset 9-   payload
//
// Frame types: FrameSchema (JSON column descriptors), FrameBatch (one
// record batch in types.EncodeRecords layout), FrameTrailer (JSON
// execution summary: row count, grouped stats, metrics snapshot), and
// FrameError (JSON error envelope). A successful query is
// schema, batch*, trailer; a failed one is zero or more data frames
// followed by an error frame. The protocol version travels in the
// X-Fudj-Proto header on both request and response.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"fudj/internal/engine"
	"fudj/internal/types"
)

// ProtoVersion is the wire protocol generation. A server refuses
// requests from a different generation with a non-retryable envelope,
// so a mixed deployment fails loudly instead of mis-decoding frames.
const ProtoVersion = 1

// Request/response header names.
const (
	// HeaderProto carries ProtoVersion on requests and responses.
	HeaderProto = "X-Fudj-Proto"
	// HeaderSession names the client session; the server creates it on
	// first use and expires it after idleness (session.go).
	HeaderSession = "X-Fudj-Session"
	// HeaderQueryID is the client-chosen idempotency key: a retry that
	// reuses the ID replays the recorded response instead of executing
	// the query a second time.
	HeaderQueryID = "X-Fudj-Query-Id"
	// HeaderDeadlineMs is the client's remaining deadline budget in
	// milliseconds; the server derives the query context from it.
	HeaderDeadlineMs = "X-Fudj-Deadline-Ms"
	// HeaderPriority is the admission priority: "low", "normal", "high".
	HeaderPriority = "X-Fudj-Priority"
	// HeaderTrace, when "1", asks the server to collect and render the
	// execution span tree into the trailer.
	HeaderTrace = "X-Fudj-Trace"
	// HeaderInstance carries the serving instance's stable ID on every
	// response. Replay records and session catalogs are scoped to one
	// instance, so the scope of an idempotency key is self-describing:
	// a client that sees the ID change knows its keys and session DDL
	// mean nothing to the process now answering.
	HeaderInstance = "X-Fudj-Instance"
	// HeaderExpectInstance, when set on a query, names the instance the
	// client believes it is talking to. A mismatch is refused with a
	// retryable instance envelope before any execution or replay-cache
	// lookup, so a failover client can re-key and re-establish its
	// session instead of running against a stranger's replay scope.
	HeaderExpectInstance = "X-Fudj-Expect-Instance"
)

// Frame types.
const (
	// FrameSchema is a JSON schemaJSON payload describing the columns.
	FrameSchema byte = 1
	// FrameBatch is one record batch in types.EncodeRecords layout.
	FrameBatch byte = 2
	// FrameTrailer is the JSON Trailer closing a successful response.
	FrameTrailer byte = 3
	// FrameError is a JSON error Envelope closing a failed response.
	FrameError byte = 4
)

// frameHeaderSize is the fixed prefix of every frame.
const frameHeaderSize = 9

// MaxFramePayload bounds any single frame, so a corrupted length
// prefix produces an error instead of a giant allocation (the same
// discipline wire.UvarintCount enforces for record counts).
const MaxFramePayload = 32 << 20

// batchTargetBytes is the encoded size at which the server seals a
// result batch frame; it bounds both sides' per-frame working memory.
const batchTargetBytes = 256 << 10

// batchMaxRecords caps records per batch frame regardless of size.
const batchMaxRecords = 2048

// schemaJSON is the FrameSchema payload.
type schemaJSON struct {
	Fields []fieldJSON `json:"fields"`
}

type fieldJSON struct {
	Name string     `json:"name"`
	Kind types.Kind `json:"kind"`
}

// Trailer is the FrameTrailer payload: everything a Result carries
// besides schema and rows. Durations travel as int64 nanoseconds (the
// encoding json already uses for time.Duration).
type Trailer struct {
	Rows      int                 `json:"rows"`
	ElapsedNs int64               `json:"elapsed_ns"`
	Plan      string              `json:"plan,omitempty"`
	Join      engine.JoinStats    `json:"join"`
	Cluster   engine.ClusterStats `json:"cluster"`
	Faults    engine.FaultStats   `json:"faults"`
	Memory    engine.MemoryStats  `json:"memory"`
	Sched     engine.SchedStats   `json:"sched"`
	Metrics   map[string]int64    `json:"metrics,omitempty"`
	// Trace holds the rendered span tree when the request asked for
	// tracing; span trees do not cross the wire structurally.
	Trace []string `json:"trace,omitempty"`
	// Replayed marks a response served from the idempotent replay
	// cache rather than a fresh execution.
	Replayed bool `json:"replayed,omitempty"`
}

// CorruptFrameError reports a frame whose payload failed its CRC or
// whose header was malformed — a byte was damaged in transit. It is
// retryable: the response is re-requested, and the idempotent replay
// cache guarantees the retry does not re-execute the query.
type CorruptFrameError struct {
	Type   byte
	Length int
	Reason string
}

// Error implements the error interface.
func (e *CorruptFrameError) Error() string {
	return fmt.Sprintf("serve: corrupt frame (type %d, length %d): %s", e.Type, e.Length, e.Reason)
}

// Retryable marks wire corruption as transient.
func (e *CorruptFrameError) Retryable() bool { return true }

// AppendFrame appends one encoded frame to dst and returns it.
func AppendFrame(dst []byte, typ byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// EncodeSchemaFrame encodes the schema of a result.
func EncodeSchemaFrame(s *types.Schema) []byte {
	sj := schemaJSON{Fields: make([]fieldJSON, 0, s.Len())}
	for _, f := range s.Fields {
		sj.Fields = append(sj.Fields, fieldJSON{Name: f.Name, Kind: f.Kind})
	}
	payload, _ := json.Marshal(sj)
	return AppendFrame(nil, FrameSchema, payload)
}

// EncodeBatchFrames splits rows into CRC-protected batch frames.
func EncodeBatchFrames(rows []types.Record) []byte {
	var out []byte
	for len(rows) > 0 {
		n, bytes := 0, int64(0)
		for n < len(rows) && n < batchMaxRecords && bytes < batchTargetBytes {
			bytes += types.RecordsMemSize(rows[n : n+1])
			n++
		}
		out = AppendFrame(out, FrameBatch, types.EncodeRecords(rows[:n]))
		rows = rows[n:]
	}
	return out
}

// EncodeTrailerFrame encodes the closing summary frame.
func EncodeTrailerFrame(t Trailer) []byte {
	payload, _ := json.Marshal(t)
	return AppendFrame(nil, FrameTrailer, payload)
}

// MarkReplayed rewrites a recorded response stream so its trailer
// frame carries Replayed=true (with a fresh length and CRC); every
// other frame passes through byte-identical. A stream with no trailer
// — an error response — or one that fails to parse is returned
// unchanged.
func MarkReplayed(frames []byte) []byte {
	for i := 0; i+frameHeaderSize <= len(frames); {
		typ := frames[i]
		length := int(binary.LittleEndian.Uint32(frames[i+1 : i+5]))
		end := i + frameHeaderSize + length
		if end > len(frames) {
			return frames
		}
		if typ == FrameTrailer {
			var t Trailer
			if err := json.Unmarshal(frames[i+frameHeaderSize:end], &t); err != nil {
				return frames
			}
			t.Replayed = true
			out := make([]byte, 0, len(frames)+32)
			out = append(out, frames[:i]...)
			out = append(out, EncodeTrailerFrame(t)...)
			return append(out, frames[end:]...)
		}
		i = end
	}
	return frames
}

// EncodeErrorFrame encodes a failure as its envelope frame.
func EncodeErrorFrame(env Envelope) []byte {
	payload, _ := json.Marshal(env)
	return AppendFrame(nil, FrameError, payload)
}

// FrameReader decodes a frame stream, verifying each payload's CRC.
type FrameReader struct {
	r io.Reader
}

// NewFrameReader wraps r for frame-by-frame decoding.
func NewFrameReader(r io.Reader) *FrameReader { return &FrameReader{r: r} }

// Next reads one frame. io.EOF is returned verbatim at a clean stream
// end; a short header or payload is io.ErrUnexpectedEOF (the
// connection died mid-frame); a CRC mismatch or oversized length is a
// *CorruptFrameError.
func (fr *FrameReader) Next() (typ byte, payload []byte, err error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(fr.r, hdr[:1]); err != nil {
		return 0, nil, err // io.EOF here is a clean end of stream
	}
	if _, err := io.ReadFull(fr.r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	typ = hdr[0]
	length := binary.LittleEndian.Uint32(hdr[1:5])
	sum := binary.LittleEndian.Uint32(hdr[5:9])
	if typ < FrameSchema || typ > FrameError {
		return 0, nil, &CorruptFrameError{Type: typ, Length: int(length), Reason: "unknown frame type"}
	}
	if length > MaxFramePayload {
		return 0, nil, &CorruptFrameError{Type: typ, Length: int(length), Reason: "payload length exceeds limit"}
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(fr.r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, &CorruptFrameError{Type: typ, Length: int(length), Reason: "payload CRC mismatch"}
	}
	return typ, payload, nil
}

// DecodeSchemaFrame rebuilds a schema from its frame payload.
func DecodeSchemaFrame(payload []byte) (*types.Schema, error) {
	var sj schemaJSON
	if err := json.Unmarshal(payload, &sj); err != nil {
		return nil, fmt.Errorf("serve: decode schema frame: %w", err)
	}
	fields := make([]types.Field, len(sj.Fields))
	for i, f := range sj.Fields {
		fields[i] = types.Field{Name: f.Name, Kind: f.Kind}
	}
	return types.NewSchema(fields...), nil
}

// DecodeTrailerFrame rebuilds the trailer from its frame payload.
func DecodeTrailerFrame(payload []byte) (Trailer, error) {
	var t Trailer
	if err := json.Unmarshal(payload, &t); err != nil {
		return Trailer{}, fmt.Errorf("serve: decode trailer frame: %w", err)
	}
	return t, nil
}
