// Session-scoped catalogs and the idempotent replay cache. A session
// is named by the client (HeaderSession) and created on first use; it
// tracks the catalog objects the session's DDL created (SELECT INTO
// datasets, CREATE JOIN definitions) so an expired session's objects
// are swept from the shared catalog, and it records completed query
// responses keyed by client query ID so a retry whose original
// response was lost replays bytes instead of executing twice. Only
// settled outcomes are recorded — successes and non-retryable errors;
// a retryable failure is forgotten (forget) so the retry that the
// error itself invites re-executes instead of replaying the failure.
package serve

import (
	"sort"
	"sync"
	"time"
)

// DefaultSessionIdle is how long a session may sit idle before the
// janitor expires it.
const DefaultSessionIdle = 15 * time.Minute

// DefaultReplayCap bounds the completed-response records one session
// retains for idempotent replay. Oldest finished records are evicted
// first; a retry arriving after eviction re-executes (safe for SELECT,
// and the horizon is deliberately much longer than any sane retry
// policy). Records still in flight are never evicted — dropping one
// would let a concurrent retry execute the same query ID twice.
const DefaultReplayCap = 256

// DefaultReplayBytes bounds the recorded response bytes one session
// retains for replay, so a handful of large result sets cannot pin
// memory for the whole idle window. Oldest finished records are
// evicted first when the budget is exceeded.
const DefaultReplayBytes = 16 << 20

// queryRecord is one query ID's lifecycle under a session: created at
// first arrival, closed (done) when the response bytes are recorded.
// A retry for the same ID waits on done and replays frames.
type queryRecord struct {
	done   chan struct{}
	frames []byte // the full recorded response stream
	execs  int    // times the query actually executed (must stay 1)
}

// session is one client session.
type session struct {
	id       string
	lastUsed time.Time

	datasets []string // SELECT INTO datasets this session created
	joins    []string // CREATE JOIN definitions this session created

	replay      map[string]*queryRecord
	order       []string // replay insertion order, for eviction
	replayBytes int64    // recorded frame bytes across finished records
	hits        int64    // replays served from this session's records
	evictions   int64    // finished records evicted by cap or budget
}

// sessions is the registry. All methods are safe for concurrent use.
type sessions struct {
	mu        sync.Mutex
	byID      map[string]*session
	idle      time.Duration
	replayCap int
	bytesCap  int64
	// Aggregate replay counters survive session expiry, so /metrics
	// totals do not shrink when the janitor sweeps.
	totalHits      int64
	totalEvictions int64
}

func newSessions(idle time.Duration, replayCap int, bytesCap int64) *sessions {
	if idle <= 0 {
		idle = DefaultSessionIdle
	}
	if replayCap <= 0 {
		replayCap = DefaultReplayCap
	}
	if bytesCap <= 0 {
		bytesCap = DefaultReplayBytes
	}
	return &sessions{byID: make(map[string]*session), idle: idle, replayCap: replayCap, bytesCap: bytesCap}
}

// touch returns the named session, creating it if needed, and stamps
// its last-used time.
func (ss *sessions) touch(id string, now time.Time) *session {
	if id == "" {
		id = "default"
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s := ss.byID[id]
	if s == nil {
		s = &session{id: id, replay: make(map[string]*queryRecord)}
		ss.byID[id] = s
	}
	s.lastUsed = now
	return s
}

// count reports the live session count.
func (ss *sessions) count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.byID)
}

// beginQuery claims a query ID under a session. The first caller gets
// (record, true) and must execute the query, then finish() the record;
// later callers get (record, false) and must wait on record.done, then
// replay record.frames. An empty ID disables idempotency: the caller
// gets a fresh untracked record.
func (ss *sessions) beginQuery(s *session, queryID string) (*queryRecord, bool) {
	if queryID == "" {
		return &queryRecord{done: make(chan struct{})}, true
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if rec, ok := s.replay[queryID]; ok {
		s.hits++
		ss.totalHits++
		return rec, false
	}
	rec := &queryRecord{done: make(chan struct{})}
	s.replay[queryID] = rec
	s.order = append(s.order, queryID)
	ss.totalEvictions += s.evictLocked(ss.replayCap, ss.bytesCap)
	return rec, true
}

// evictLocked drops oldest *finished* records until the session holds
// at most maxRecords replay records and at most maxBytes recorded
// frame bytes, returning the number evicted. In-flight records (done
// not yet closed) are never evicted — dropping one would let a retry
// arriving after the eviction execute concurrently with the original,
// breaking the exactly-once invariant — so the caps can be transiently
// exceeded while queries are in flight. Callers hold ss.mu.
func (s *session) evictLocked(maxRecords int, maxBytes int64) int64 {
	i, evicted := 0, int64(0)
	for (len(s.order) > maxRecords || s.replayBytes > maxBytes) && i < len(s.order) {
		rec := s.replay[s.order[i]]
		select {
		case <-rec.done:
		default:
			i++ // in flight: skip, try the next-oldest
			continue
		}
		delete(s.replay, s.order[i])
		s.replayBytes -= int64(len(rec.frames))
		s.order = append(s.order[:i], s.order[i+1:]...)
		evicted++
	}
	s.evictions += evicted
	return evicted
}

// finish publishes a record's response bytes and wakes replayers.
func (rec *queryRecord) finish(frames []byte) {
	rec.frames = frames
	close(rec.done)
}

// finishQuery publishes a tracked record's response bytes, charges the
// session's replay byte budget, and evicts oldest finished records if
// the budget is now exceeded. An empty queryID (untracked record)
// degenerates to a plain finish.
func (ss *sessions) finishQuery(s *session, queryID string, rec *queryRecord, frames []byte) {
	rec.frames = frames
	if queryID != "" {
		ss.mu.Lock()
		// Charge only records still tracked: a session expiry may have
		// orphaned s, in which case the bytes die with it anyway.
		if s.replay[queryID] == rec {
			s.replayBytes += int64(len(frames))
		}
		ss.mu.Unlock()
	}
	close(rec.done)
	if queryID != "" {
		ss.mu.Lock()
		ss.totalEvictions += s.evictLocked(ss.replayCap, ss.bytesCap)
		ss.mu.Unlock()
	}
}

// forget drops a query's replay record, so the next arrival of the
// same ID executes afresh instead of replaying. The server calls this
// before finishing a record whose outcome was a *retryable* error:
// caching a transient refusal would hand every retry the same failure
// and the query could never succeed against this server. The rec guard
// makes the call a no-op if the ID was already forgotten and re-begun.
func (ss *sessions) forget(s *session, queryID string, rec *queryRecord) {
	if queryID == "" {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s.replay[queryID] != rec {
		return
	}
	delete(s.replay, queryID)
	for i, id := range s.order {
		if id == queryID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// execCount reports how many times a query ID actually executed, as a
// pure read: unknown sessions or IDs report 0 and nothing is created
// or touched.
func (ss *sessions) execCount(id, queryID string) int {
	if id == "" {
		id = "default"
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s := ss.byID[id]
	if s == nil {
		return 0
	}
	rec := s.replay[queryID]
	if rec == nil {
		return 0
	}
	return rec.execs
}

// execCounts reports every tracked query ID's execution count under a
// session, as a pure read (unknown session reports nil).
func (ss *sessions) execCounts(id string) map[string]int {
	if id == "" {
		id = "default"
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s := ss.byID[id]
	if s == nil {
		return nil
	}
	out := make(map[string]int, len(s.replay))
	for qid, rec := range s.replay {
		out[qid] = rec.execs
	}
	return out
}

// trackDataset/trackJoin note catalog objects the session created, so
// expiry can drop them.
func (ss *sessions) trackDataset(s *session, name string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s.datasets = append(s.datasets, name)
}

func (ss *sessions) trackJoin(s *session, name string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s.joins = append(s.joins, name)
}

// untrackJoin removes a dropped join from every session's tracking (a
// DROP JOIN may come from a different session than the CREATE).
func (ss *sessions) untrackJoin(name string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, s := range ss.byID {
		for i, j := range s.joins {
			if j == name {
				s.joins = append(s.joins[:i], s.joins[i+1:]...)
				break
			}
		}
	}
}

// expired removes and returns every session idle past the deadline, in
// deterministic (sorted) order so sweep side effects replay stably. A
// session holding any in-flight replay record is never expired — the
// mirror of the eviction rule: dropping the session would orphan the
// record, so a retry arriving mid-execution would re-execute the query
// concurrently with the original. Such a session is retried on the
// next sweep, by which point the query has settled.
func (ss *sessions) expired(now time.Time) []*session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var ids []string
	for id, s := range ss.byID {
		if now.Sub(s.lastUsed) >= ss.idle && !s.inFlightLocked() {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*session, 0, len(ids))
	for _, id := range ids {
		out = append(out, ss.byID[id])
		delete(ss.byID, id)
	}
	return out
}

// inFlightLocked reports whether any replay record is still executing.
// Callers hold ss.mu.
func (s *session) inFlightLocked() bool {
	for _, rec := range s.replay {
		select {
		case <-rec.done:
		default:
			return true
		}
	}
	return false
}

// ReplaySessionStats is one session's replay-cache footprint in a
// metrics snapshot.
type ReplaySessionStats struct {
	Session   string `json:"session"`
	Records   int    `json:"records"`
	Bytes     int64  `json:"bytes"`
	Hits      int64  `json:"hits"`
	Evictions int64  `json:"evictions"`
}

// ReplayStats is the replay cache's aggregate view for /metrics: live
// totals plus the configured budgets they are charged against, and
// lifetime hit/eviction counters that survive session expiry.
type ReplayStats struct {
	Records     int                  `json:"records"`
	Bytes       int64                `json:"bytes"`
	BytesBudget int64                `json:"bytes_budget"`
	RecordCap   int                  `json:"record_cap"`
	Hits        int64                `json:"hits"`
	Evictions   int64                `json:"evictions"`
	Sessions    []ReplaySessionStats `json:"sessions,omitempty"`
}

// replayStats snapshots the replay cache across all live sessions,
// per-session entries sorted by session ID for stable output.
func (ss *sessions) replayStats() ReplayStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	st := ReplayStats{
		BytesBudget: ss.bytesCap,
		RecordCap:   ss.replayCap,
		Hits:        ss.totalHits,
		Evictions:   ss.totalEvictions,
	}
	for _, s := range ss.byID {
		st.Records += len(s.replay)
		st.Bytes += s.replayBytes
		st.Sessions = append(st.Sessions, ReplaySessionStats{
			Session:   s.id,
			Records:   len(s.replay),
			Bytes:     s.replayBytes,
			Hits:      s.hits,
			Evictions: s.evictions,
		})
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].Session < st.Sessions[j].Session })
	return st
}
