// Session-scoped catalogs and the idempotent replay cache. A session
// is named by the client (HeaderSession) and created on first use; it
// tracks the catalog objects the session's DDL created (SELECT INTO
// datasets, CREATE JOIN definitions) so an expired session's objects
// are swept from the shared catalog, and it records completed query
// responses keyed by client query ID so a retry whose original
// response was lost replays bytes instead of executing twice.
package serve

import (
	"sort"
	"sync"
	"time"
)

// DefaultSessionIdle is how long a session may sit idle before the
// janitor expires it.
const DefaultSessionIdle = 15 * time.Minute

// DefaultReplayCap bounds the completed-response records one session
// retains for idempotent replay. Oldest records are evicted first; a
// retry arriving after eviction re-executes (safe for SELECT, and the
// horizon is deliberately much longer than any sane retry policy).
const DefaultReplayCap = 256

// queryRecord is one query ID's lifecycle under a session: created at
// first arrival, closed (done) when the response bytes are recorded.
// A retry for the same ID waits on done and replays frames.
type queryRecord struct {
	done   chan struct{}
	frames []byte // the full recorded response stream
	execs  int    // times the query actually executed (must stay 1)
}

// session is one client session.
type session struct {
	id       string
	lastUsed time.Time

	datasets []string // SELECT INTO datasets this session created
	joins    []string // CREATE JOIN definitions this session created

	replay map[string]*queryRecord
	order  []string // replay insertion order, for eviction
}

// sessions is the registry. All methods are safe for concurrent use.
type sessions struct {
	mu        sync.Mutex
	byID      map[string]*session
	idle      time.Duration
	replayCap int
}

func newSessions(idle time.Duration, replayCap int) *sessions {
	if idle <= 0 {
		idle = DefaultSessionIdle
	}
	if replayCap <= 0 {
		replayCap = DefaultReplayCap
	}
	return &sessions{byID: make(map[string]*session), idle: idle, replayCap: replayCap}
}

// touch returns the named session, creating it if needed, and stamps
// its last-used time.
func (ss *sessions) touch(id string, now time.Time) *session {
	if id == "" {
		id = "default"
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s := ss.byID[id]
	if s == nil {
		s = &session{id: id, replay: make(map[string]*queryRecord)}
		ss.byID[id] = s
	}
	s.lastUsed = now
	return s
}

// count reports the live session count.
func (ss *sessions) count() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.byID)
}

// beginQuery claims a query ID under a session. The first caller gets
// (record, true) and must execute the query, then finish() the record;
// later callers get (record, false) and must wait on record.done, then
// replay record.frames. An empty ID disables idempotency: the caller
// gets a fresh untracked record.
func (ss *sessions) beginQuery(s *session, queryID string) (*queryRecord, bool) {
	if queryID == "" {
		return &queryRecord{done: make(chan struct{})}, true
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if rec, ok := s.replay[queryID]; ok {
		return rec, false
	}
	rec := &queryRecord{done: make(chan struct{})}
	s.replay[queryID] = rec
	s.order = append(s.order, queryID)
	for len(s.order) > ss.replayCap {
		evict := s.order[0]
		s.order = s.order[1:]
		delete(s.replay, evict)
	}
	return rec, true
}

// finish publishes a record's response bytes and wakes replayers.
func (rec *queryRecord) finish(frames []byte) {
	rec.frames = frames
	close(rec.done)
}

// trackDataset/trackJoin note catalog objects the session created, so
// expiry can drop them.
func (ss *sessions) trackDataset(s *session, name string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s.datasets = append(s.datasets, name)
}

func (ss *sessions) trackJoin(s *session, name string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s.joins = append(s.joins, name)
}

// untrackJoin removes a dropped join from every session's tracking (a
// DROP JOIN may come from a different session than the CREATE).
func (ss *sessions) untrackJoin(name string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, s := range ss.byID {
		for i, j := range s.joins {
			if j == name {
				s.joins = append(s.joins[:i], s.joins[i+1:]...)
				break
			}
		}
	}
}

// expired removes and returns every session idle past the deadline, in
// deterministic (sorted) order so sweep side effects replay stably.
func (ss *sessions) expired(now time.Time) []*session {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var ids []string
	for id, s := range ss.byID {
		if now.Sub(s.lastUsed) >= ss.idle {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	out := make([]*session, 0, len(ids))
	for _, id := range ids {
		out = append(out, ss.byID[id])
		delete(ss.byID, id)
	}
	return out
}
