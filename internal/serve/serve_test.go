// Integration and network-chaos suite: a real fudjd server on a real
// loopback listener, exercised through the retrying client. External
// test package so it can reuse the shell's demo environment.
package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fudj"
	"fudj/internal/serve"
	"fudj/internal/serve/client"
	"fudj/internal/shell"
	"fudj/internal/types"
)

const demoJoinSQL = `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`

// testServer is one loopback fudjd with its database.
type testServer struct {
	db    *fudj.DB
	srv   *serve.Server
	lis   net.Listener
	chaos *serve.ChaosListener
	base  string
}

// startServer boots a demo database and serves it on 127.0.0.1:0,
// optionally through a chaos listener.
func startServer(t *testing.T, cfg serve.Config, chaos *serve.ChaosConfig) *testServer {
	t.Helper()
	t.Setenv("TMPDIR", t.TempDir())
	db, err := shell.Setup(shell.Config{Nodes: 2, Cores: 2, Records: 80, LoadDemo: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.DB = db
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := &testServer{db: db, srv: srv, lis: lis, base: "http://" + lis.Addr().String()}
	serveLis := lis
	if chaos != nil {
		ts.chaos = serve.NewChaosListener(lis, *chaos)
		serveLis = ts.chaos
	}
	go srv.Serve(serveLis)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ts
}

// newClient dials the test server with fast test backoff.
func newClient(t *testing.T, ts *testServer, tweak func(*client.Config)) *client.Client {
	t.Helper()
	cfg := client.Config{
		BaseURL:     ts.base,
		QueryPrefix: "t",
		Seed:        7,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	c, err := client.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// decodeFrames drains one raw HTTP response's frame stream into a
// result and its trailer, or the decoded error.
func decodeFrames(resp *http.Response) (*fudj.Result, serve.Trailer, error) {
	fr := serve.NewFrameReader(resp.Body)
	res := &fudj.Result{}
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			return nil, serve.Trailer{}, err
		}
		switch typ {
		case serve.FrameSchema:
			if res.Schema, err = serve.DecodeSchemaFrame(payload); err != nil {
				return nil, serve.Trailer{}, err
			}
		case serve.FrameBatch:
			recs, err := types.DecodeRecords(payload)
			if err != nil {
				return nil, serve.Trailer{}, err
			}
			res.Rows = append(res.Rows, recs...)
		case serve.FrameError:
			var env serve.Envelope
			if err := json.Unmarshal(payload, &env); err != nil {
				return nil, serve.Trailer{}, err
			}
			return nil, serve.Trailer{}, serve.DecodeError(env)
		case serve.FrameTrailer:
			t, err := serve.DecodeTrailerFrame(payload)
			return res, t, err
		}
	}
}

// rowKeys renders a result's rows into a sortable multiset.
func rowKeys(res *fudj.Result) []string {
	keys := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		keys[i] = strings.Join(cells, "|")
	}
	sort.Strings(keys)
	return keys
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertTmpEmpty fails if any temp files survived.
func assertTmpEmpty(t *testing.T) {
	t.Helper()
	var leaked []string
	filepath.Walk(os.TempDir(), func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			leaked = append(leaked, path)
		}
		return nil
	})
	if len(leaked) > 0 {
		t.Fatalf("temp files leaked: %v", leaked)
	}
}

func TestServeQueryMatchesInProcess(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, nil)

	want, err := ts.db.Execute(demoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(context.Background(), demoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(rowKeys(want), rowKeys(got.Result)) {
		t.Fatalf("remote result diverged: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
	if got.Schema.Len() != want.Schema.Len() {
		t.Fatalf("schema diverged: %d vs %d fields", got.Schema.Len(), want.Schema.Len())
	}
	if got.Attempts != 1 {
		t.Fatalf("clean network took %d attempts", got.Attempts)
	}
	// The trailer carries execution stats, not zero values.
	if got.Elapsed <= 0 || got.Cluster.BytesShuffled <= 0 {
		t.Fatalf("stats lost in trailer: elapsed=%v shuffled=%d", got.Elapsed, got.Cluster.BytesShuffled)
	}
	if got.Metrics == nil {
		t.Fatal("metrics snapshot lost in trailer")
	}
}

func TestServeTraceLines(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, nil)
	res, err := c.Query(context.Background(), demoJoinSQL, client.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TraceLines) == 0 {
		t.Fatal("no trace lines came back")
	}
	joined := strings.Join(res.TraceLines, "\n")
	if !strings.Contains(joined, "query") {
		t.Fatalf("trace render looks wrong:\n%s", joined)
	}
}

func TestServeParseErrorNotRetried(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, func(cfg *client.Config) { cfg.MaxAttempts = 5 })
	_, err := c.Query(context.Background(), "SELECT FROM WHERE nonsense")
	if err == nil {
		t.Fatal("garbage SQL must error")
	}
	if fudj.IsRetryable(err) {
		t.Fatalf("parse errors must be non-retryable, got %v", err)
	}
	if got := ts.srv.Counters().Queries; got != 1 {
		t.Fatalf("server saw %d attempts for a non-retryable error, want 1", got)
	}
}

func TestServeDeadlinePropagation(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	// Straggle both nodes far past the deadline so even the batched
	// hot path cannot finish the demo join before it expires.
	ts.db.MustConfigure(fudj.WithFaults(&fudj.FaultConfig{
		Seed:           1,
		StragglerNodes: []int{0, 1},
		StragglerDelay: 300 * time.Millisecond,
	}))
	// Raw request with a 1ms budget and no client-side deadline: only
	// the server can enforce it, proving the header actually derives
	// the query context.
	req, err := http.NewRequest(http.MethodPost, ts.base+"/v1/query", strings.NewReader(demoJoinSQL))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.HeaderDeadlineMs, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := serve.NewFrameReader(resp.Body)
	typ, payload, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != serve.FrameError {
		t.Fatalf("got frame type %d, want error frame", typ)
	}
	var env serve.Envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatal(err)
	}
	decoded := serve.DecodeError(env)
	var tmo *fudj.TimeoutError
	if !errors.As(decoded, &tmo) {
		t.Fatalf("decoded %T (%v), want TimeoutError", decoded, decoded)
	}
	if fudj.IsRetryable(decoded) {
		t.Fatal("timeouts must not be retryable")
	}
}

func TestServeIdempotentReplay(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, nil)
	res, err := c.Query(context.Background(), demoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	if res.Replayed {
		t.Fatal("fresh execution marked replayed")
	}

	// Re-send the same query ID by hand: the response must replay from
	// the record without executing again, and say so in the trailer.
	req, err := http.NewRequest(http.MethodPost, ts.base+"/v1/query", strings.NewReader(demoJoinSQL))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.HeaderQueryID, "t-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	replayedRes, trailer, err := decodeFrames(resp)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(rowKeys(res.Result), rowKeys(replayedRes)) {
		t.Fatal("replayed response diverged from the original")
	}
	if !trailer.Replayed {
		t.Fatal("replayed response's trailer does not say Replayed")
	}
	if n := ts.srv.ExecCount("", "t-1"); n != 1 {
		t.Fatalf("query executed %d times, want 1", n)
	}
	if ctrs := ts.srv.Counters(); ctrs.Replayed != 1 {
		t.Fatalf("replayed counter = %d, want 1", ctrs.Replayed)
	}
	// The exec-count probe is a pure read: no session springs into
	// being for an unknown name.
	before := ts.srv.ExecCount("ghost-session", "t-1")
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if before != 0 || snap.Sessions != 1 {
		t.Fatalf("ExecCount probe mutated state: count=%d sessions=%d", before, snap.Sessions)
	}
}

// TestServeRetryableRefusalNotCached pins the retry contract against
// the replay cache: a retryable refusal (here a drain shed) must NOT
// be recorded under the query ID, or the client's retry — which reuses
// the ID by design — would replay the cached failure forever instead
// of re-executing.
func TestServeRetryableRefusalNotCached(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.srv.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	send := func() error {
		req, err := http.NewRequest(http.MethodPost, ts.base+"/v1/query", strings.NewReader(demoJoinSQL))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(serve.HeaderQueryID, "r-1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _, decErr := decodeFrames(resp)
		return decErr
	}

	for attempt := 0; attempt < 2; attempt++ {
		prevBytes := ts.srv.Counters().BytesOut
		err := send()
		var sherr *serve.ShedError
		if !errors.As(err, &sherr) {
			t.Fatalf("attempt %d decoded to %T (%v), want ShedError", attempt, err, err)
		}
		if !fudj.IsRetryable(err) {
			t.Fatalf("attempt %d refusal not retryable", attempt)
		}
		// The handler's deferred bookkeeping (which forgets the record)
		// may still be running when the client has the error frame in
		// hand; wait for it so the next attempt races nothing. A real
		// retry's backoff dwarfs this window.
		deadline := time.Now().Add(5 * time.Second)
		for ts.srv.Counters().BytesOut == prevBytes {
			if time.Now().After(deadline) {
				t.Fatal("handler bookkeeping never finished")
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Both attempts were refused afresh — neither was served back out
	// of the replay cache, and no execution record lingers for the ID.
	ctrs := ts.srv.Counters()
	if ctrs.Refused != 2 || ctrs.Replayed != 0 {
		t.Fatalf("refused=%d replayed=%d, want 2 fresh refusals", ctrs.Refused, ctrs.Replayed)
	}
	if n := ts.srv.ExecCount("", "r-1"); n != 0 {
		t.Fatalf("refused query left an execution record (%d)", n)
	}
}

// decodeRows drains one response body into sorted row keys.
func decodeRows(resp *http.Response) ([]string, error) {
	res, _, err := decodeFrames(resp)
	if err != nil {
		return nil, err
	}
	return rowKeys(res), nil
}

func TestServeSessionExpirySweepsCatalog(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, func(cfg *client.Config) { cfg.Session = "ephemeral" })
	if _, err := c.Query(context.Background(), `SELECT p.id INTO scratch FROM parks p`); err != nil {
		t.Fatal(err)
	}
	if _, err := ts.db.Catalog().Dataset("scratch"); err != nil {
		t.Fatal("SELECT INTO did not materialize:", err)
	}
	// Idle past the horizon: the session and its objects go away.
	if n := ts.srv.ExpireIdle(time.Now().Add(2 * serve.DefaultSessionIdle)); n == 0 {
		t.Fatal("no session expired")
	}
	if _, err := ts.db.Catalog().Dataset("scratch"); err == nil {
		t.Fatal("expired session's dataset survived the sweep")
	}
}

func TestServeMetricsAndQueriesEndpoints(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, nil)
	if _, err := c.Query(context.Background(), demoJoinSQL); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Proto != serve.ProtoVersion || snap.Server.Completed < 1 || snap.Scheduler.Admitted < 1 {
		t.Fatalf("metrics snapshot incomplete: %+v", snap)
	}
	ds, joins, err := c.Catalog(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 || len(joins) == 0 {
		t.Fatalf("catalog listing empty: %v %v", ds, joins)
	}
}

func TestServeProtocolVersionRefused(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	req, err := http.NewRequest(http.MethodPost, ts.base+"/v1/query", strings.NewReader("SELECT 1"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.HeaderProto, "99")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _, decErr := decodeFrames(resp)
	if decErr == nil {
		t.Fatal("mismatched protocol must be refused")
	}
	if fudj.IsRetryable(decErr) {
		t.Fatal("protocol mismatch must not be retryable")
	}
}

// TestServeChaosConvergence is the headline chaos assertion: with
// accept-refusals, mid-response resets, corrupt bytes, and stalls all
// injected, the retrying client's results stay multiset-identical to
// in-process execution, and no idempotent resubmission ever
// double-executes.
func TestServeChaosConvergence(t *testing.T) {
	chaos := serve.ChaosConfig{
		Seed:             42,
		AcceptRefuseProb: 0.10,
		ResetProb:        0.03,
		CorruptProb:      0.03,
		StallProb:        0.05,
		Stall:            5 * time.Millisecond,
	}
	ts := startServer(t, serve.Config{}, &chaos)
	c := newClient(t, ts, func(cfg *client.Config) {
		cfg.MaxAttempts = 10
		cfg.AttemptTimeout = 5 * time.Second
	})

	want, err := ts.db.Execute(demoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := rowKeys(want)

	const queries = 25
	totalAttempts := 0
	for i := 0; i < queries; i++ {
		res, err := c.Query(context.Background(), demoJoinSQL)
		if err != nil {
			t.Fatalf("query %d failed through chaos: %v", i, err)
		}
		if !sameMultiset(wantKeys, rowKeys(res.Result)) {
			t.Fatalf("query %d diverged under chaos", i)
		}
		totalAttempts += res.Attempts
	}
	// Idempotency invariant: whatever the retry count, nothing ran twice.
	for i := 1; i <= queries; i++ {
		if n := ts.srv.ExecCount("", fmt.Sprintf("t-%d", i)); n > 1 {
			t.Fatalf("query t-%d executed %d times", i, n)
		}
	}
	if totalAttempts <= queries {
		t.Fatalf("chaos injected no retries (%d attempts for %d queries); the suite proved nothing", totalAttempts, queries)
	}
	cs := ts.chaos.Stats()
	t.Logf("chaos: %d accepts, %d refused, %d resets, %d corrupts, %d stalls; %d attempts for %d queries",
		cs.Accepts, cs.Refused, cs.Resets, cs.Corrupts, cs.Stalls, totalAttempts, queries)
	if cs.Refused+cs.Resets+cs.Corrupts == 0 {
		t.Fatal("no faults were actually injected")
	}
}

// TestServeDrainUnderLoad: drain with work in flight. In-flight
// queries complete, new arrivals are refused with a retryable
// ShedError carrying the retry-after hint, /metrics stays reachable
// while draining, and no temp files survive.
func TestServeDrainUnderLoad(t *testing.T) {
	ts := startServer(t, serve.Config{RetryAfter: 123 * time.Millisecond}, nil)
	c := newClient(t, ts, func(cfg *client.Config) { cfg.MaxAttempts = 1 })

	// Open-loop submitters keep queries in flight.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var completed, shed int
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Query(context.Background(), demoJoinSQL)
				mu.Lock()
				if err == nil {
					completed++
				} else {
					var sherr *serve.ShedError
					if errors.As(err, &sherr) {
						shed++
					}
				}
				mu.Unlock()
			}
		}()
	}

	// Wait until the storm is actually executing, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for ts.srv.Counters().Completed < 2 {
		if time.Now().After(deadline) {
			t.Fatal("load never started")
		}
		time.Sleep(time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	drainDone := make(chan error, 1)
	go func() { drainDone <- ts.srv.Drain(drainCtx) }()

	// While draining, /metrics stays reachable and reports it.
	for !ts.srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	snap, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal("metrics unreachable during drain:", err)
	}
	if !snap.Draining {
		t.Fatal("metrics does not report draining")
	}

	// A fresh query during the drain is refused retryably, with hint.
	_, qerr := c.Query(context.Background(), demoJoinSQL)
	if qerr == nil {
		t.Fatal("draining server admitted a query")
	}
	var sherr *serve.ShedError
	if !errors.As(qerr, &sherr) {
		t.Fatalf("drain refusal decoded to %T (%v), want ShedError", qerr, qerr)
	}
	if !fudj.IsRetryable(qerr) {
		t.Fatal("drain refusal must be retryable at the network boundary")
	}
	if d, ok := serve.RetryAfter(qerr); !ok || d != 123*time.Millisecond {
		t.Fatalf("retry-after hint = %v, %v; want 123ms", d, ok)
	}

	if err := <-drainDone; err != nil {
		t.Fatal("drain:", err)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	t.Logf("drain under load: %d completed, %d shed", completed, shed)
	if completed == 0 {
		mu.Unlock()
		t.Fatal("no query completed before the drain")
	}
	mu.Unlock()

	// Scheduler invariants survived the storm; nothing leaked.
	stats := ts.db.SchedulerStats()
	if stats.LeaseBytes != 0 {
		t.Fatalf("leases leaked: %d bytes", stats.LeaseBytes)
	}
	if stats.Pool > 0 && stats.LeasePeak > stats.Pool {
		t.Fatalf("LeasePeak %d exceeded Pool %d", stats.LeasePeak, stats.Pool)
	}
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := ts.srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	assertTmpEmpty(t)
}

// TestServeClientCancellation: a canceled context surfaces
// context.Canceled, not a retry storm.
func TestServeClientCancellation(t *testing.T) {
	ts := startServer(t, serve.Config{}, nil)
	c := newClient(t, ts, func(cfg *client.Config) { cfg.MaxAttempts = 5 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Query(ctx, demoJoinSQL)
	if err == nil {
		t.Fatal("canceled context must error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in chain", err)
	}
	if n := ts.srv.Counters().Queries; n > 1 {
		t.Fatalf("canceled query was retried %d times", n)
	}
}
