// Rolling-restart high-availability suite: several real fudjd
// instances on loopback listeners, a failover Pool in front of them,
// and each instance drained and restarted in turn — under the seeded
// fault-injecting listener — while an open-loop storm runs. The
// acceptance bar (ISSUE 10): zero non-retryable client-visible
// failures, every result multiset-identical to in-process execution,
// ExecCount ≤ 1 per (instance, query-id), breakers that open also
// close again, and an empty TMPDIR afterwards.
package serve_test

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"fudj"
	"fudj/internal/serve"
	"fudj/internal/serve/client"
	"fudj/internal/shell"
)

const (
	haJoinSQL   = `CREATE JOIN ha_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`
	haIntoSQL   = `SELECT p.id, w.id INTO ha_hits FROM parks p, wildfires w WHERE ha_join(p.boundary, w.location, 8)`
	haSessSQL   = `SELECT h.p_id, h.w_id FROM ha_hits h`
	haDemoEnv   = "Nodes:2 Cores:2 Records:80" // must match haDB below
	haRetryHint = 20 * time.Millisecond
)

// haDB builds the deterministic demo database every instance serves:
// identical datasets and join libraries, so any instance's answer is
// interchangeable with any other's (and with in-process execution).
func haDB(t *testing.T) *fudj.DB {
	t.Helper()
	db, err := shell.Setup(shell.Config{Nodes: 2, Cores: 2, Records: 80, LoadDemo: true})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// haInstance is one restartable loopback fudjd: drain-restart swaps in
// a fresh database and a fresh instance ID on the SAME address, the
// way a rolling restart replaces a process behind a stable endpoint.
// Past generations' servers are kept (their in-memory session state
// outlives Shutdown) so the suite can sweep ExecCount invariants per
// (instance, query-id) across every generation.
type haInstance struct {
	t     *testing.T
	name  string
	addr  string
	base  string
	chaos *serve.ChaosConfig

	mu   sync.Mutex
	gen  int
	srv  *serve.Server
	past []*serve.Server
}

// startHAInstance boots generation 1 on 127.0.0.1:0.
func startHAInstance(t *testing.T, name string, chaos *serve.ChaosConfig) *haInstance {
	t.Helper()
	h := &haInstance{t: t, name: name, chaos: chaos}
	h.start("127.0.0.1:0")
	h.base = "http://" + h.addr
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		h.mu.Lock()
		srv := h.srv
		h.mu.Unlock()
		if srv != nil {
			srv.Shutdown(ctx)
		}
	})
	return h
}

// start boots the next generation on addr.
func (h *haInstance) start(addr string) {
	h.t.Helper()
	h.mu.Lock()
	h.gen++
	gen := h.gen
	h.mu.Unlock()
	srv, err := serve.New(serve.Config{
		DB:         haDB(h.t),
		InstanceID: fmt.Sprintf("%s-g%d", h.name, gen),
		RetryAfter: haRetryHint,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	// The address must survive restarts; rebinding can race the old
	// socket teardown, so retry briefly.
	var lis net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	serveLis := lis
	if h.chaos != nil {
		cfg := *h.chaos
		cfg.Seed += int64(gen) // a fresh fault schedule per generation
		serveLis = serve.NewChaosListener(lis, cfg)
	}
	go srv.Serve(serveLis)
	h.mu.Lock()
	h.addr = lis.Addr().String()
	h.srv = srv
	h.mu.Unlock()
}

// drainRestart drains the current generation (readiness flips first,
// in-flight work finishes), shuts it down, sits out a short outage
// window, and boots the next generation on the same address.
func (h *haInstance) drainRestart(outage time.Duration) {
	h.t.Helper()
	h.mu.Lock()
	srv, addr := h.srv, h.addr
	h.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		h.t.Errorf("%s drain: %v", h.name, err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		h.t.Errorf("%s shutdown: %v", h.name, err)
	}
	h.mu.Lock()
	h.past = append(h.past, srv)
	h.mu.Unlock()
	time.Sleep(outage)
	h.start(addr)
}

// stop hard-kills the current generation without draining first:
// clients see connection-level transport errors, not a shed envelope.
// restart boots the next generation on the same address.
func (h *haInstance) stop() {
	h.t.Helper()
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		h.t.Errorf("%s shutdown: %v", h.name, err)
	}
	h.mu.Lock()
	h.past = append(h.past, srv)
	h.mu.Unlock()
}

func (h *haInstance) restart() {
	h.t.Helper()
	h.mu.Lock()
	addr := h.addr
	h.mu.Unlock()
	h.start(addr)
}

// servers lists every generation's server, past and current.
func (h *haInstance) servers() []*serve.Server {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := append([]*serve.Server(nil), h.past...)
	return append(out, h.srv)
}

// assertExecAtMostOnce sweeps every generation of every instance: no
// (instance, query-id) pair may have executed more than once, however
// many times the pool retried or re-keyed.
func assertExecAtMostOnce(t *testing.T, session string, instances []*haInstance) {
	t.Helper()
	for _, h := range instances {
		for gi, srv := range h.servers() {
			for qid, n := range srv.ExecCounts(session) {
				if n > 1 {
					t.Errorf("%s gen %d: query %s executed %d times", h.name, gi+1, qid, n)
				}
			}
		}
	}
}

// TestServeHAFailoverOnDrain is the deterministic core of the tentpole
// contract: a session (including its DDL) survives its server. One
// query lands on some instance, that instance drains, and the next
// query — same pool, same session — succeeds on a peer with no
// client-visible error, after the pool replays the session journal.
func TestServeHAFailoverOnDrain(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	a := startHAInstance(t, "a", nil)
	b := startHAInstance(t, "b", nil)

	p, err := client.NewPool(client.PoolConfig{
		Endpoints:       []string{a.base, b.base},
		Session:         "ha",
		QueryPrefix:     "fo",
		Seed:            11,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		BreakerCooldown: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx := context.Background()
	// Establish session state: a join definition and a materialized
	// dataset, then a query that needs both.
	for _, sql := range []string{haJoinSQL, haIntoSQL} {
		if _, err := p.Query(ctx, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	before, err := p.Query(ctx, haSessSQL)
	if err != nil {
		t.Fatal(err)
	}
	if before.Instance == "" || before.Endpoint == "" {
		t.Fatalf("result missing provenance: instance=%q endpoint=%q", before.Instance, before.Endpoint)
	}

	// Drain whichever instance the pool is stuck to.
	serving := a
	if before.Endpoint == b.base {
		serving = b
	}
	drainCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := serving.srv.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}

	// Same logical session, next query: must succeed on the peer with
	// no client-visible error, against replayed session DDL.
	after, err := p.Query(ctx, haSessSQL)
	if err != nil {
		t.Fatalf("query after drain failed through failover: %v", err)
	}
	if after.Instance == before.Instance {
		t.Fatalf("query after drain answered by the drained instance %s", after.Instance)
	}
	if !sameMultiset(rowKeys(before.Result), rowKeys(after.Result)) {
		t.Fatal("failover changed the result")
	}
	st := p.Stats()
	if st.DrainFailovers == 0 {
		t.Fatalf("no drain failover recorded: %+v", st)
	}
	if st.JournalReplays < 2 {
		t.Fatalf("session journal (%d replays) was not re-established on the peer", st.JournalReplays)
	}
	if st.Rekeys == 0 {
		t.Fatal("failover did not re-key onto the new instance")
	}
	assertExecAtMostOnce(t, "ha", []*haInstance{a, b})
}

// TestServeHAInstanceMismatchRekeys: a server replaced in place (same
// address, new instance ID, fresh state) is detected by the
// expect-instance handshake, not by luck: the pool re-keys, replays
// its journal, and the query succeeds with no client-visible error.
func TestServeHAInstanceMismatchRekeys(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	a := startHAInstance(t, "solo", nil)
	p, err := client.NewPool(client.PoolConfig{
		Endpoints:       []string{a.base},
		Session:         "ha",
		QueryPrefix:     "mm",
		Seed:            5,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		BreakerCooldown: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx := context.Background()
	if _, err := p.Query(ctx, haJoinSQL); err != nil {
		t.Fatal(err)
	}
	first, err := p.Query(ctx, demoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}

	// Replace the process behind the address.
	a.drainRestart(10 * time.Millisecond)

	second, err := p.Query(ctx, demoJoinSQL)
	if err != nil {
		t.Fatalf("query against the restarted instance failed: %v", err)
	}
	if second.Instance == first.Instance {
		t.Fatal("restart did not change the instance ID")
	}
	if !strings.HasPrefix(second.Instance, "solo-g2") {
		t.Fatalf("unexpected successor instance %q", second.Instance)
	}
	if !sameMultiset(rowKeys(first.Result), rowKeys(second.Result)) {
		t.Fatal("restart changed the result")
	}
	st := p.Stats()
	if st.Rekeys == 0 {
		t.Fatal("no re-key recorded across the restart")
	}
	if st.JournalReplays == 0 {
		t.Fatal("session DDL was not replayed onto the successor")
	}
	// The join definition really exists on the successor.
	_, joins, err := p.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range joins {
		found = found || j == "ha_join"
	}
	if !found {
		t.Fatalf("ha_join missing from successor catalog %v", joins)
	}
	assertExecAtMostOnce(t, "ha", []*haInstance{a})
}

// TestServeHAReadinessProbes: /v1/health stays 200 through a drain
// while /v1/ready flips to 503 the moment the drain starts, and every
// response names the instance.
func TestServeHAReadinessProbes(t *testing.T) {
	t.Setenv("TMPDIR", t.TempDir())
	a := startHAInstance(t, "probe", nil)
	c, err := client.New(client.Config{BaseURL: a.base})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	ready, inst, err := c.Ready(ctx)
	if err != nil || !ready {
		t.Fatalf("fresh instance not ready: %v %v", ready, err)
	}
	if inst != "probe-g1" {
		t.Fatalf("readiness reported instance %q", inst)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := a.srv.Drain(drainCtx); err != nil {
		t.Fatal(err)
	}
	// Readiness flips; liveness (and the instance header) hold. The
	// listener is still open — only Shutdown closes it.
	ready, inst, err = c.Ready(ctx)
	if err != nil {
		t.Fatalf("readiness unreachable during drain: %v", err)
	}
	if ready || inst != "probe-g1" {
		t.Fatalf("draining instance reported ready=%v instance=%q", ready, inst)
	}
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal("metrics unreachable during drain:", err)
	}
	if !snap.Draining || snap.Instance != "probe-g1" {
		t.Fatalf("metrics snapshot %+v", snap)
	}
}

// TestServeHARollingRestart is the acceptance chaos suite: an
// open-loop storm against three instances behind a failover pool,
// every instance drained and restarted in turn under the seeded
// fault-injecting listener.
func TestServeHARollingRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("rolling-restart chaos is not -short")
	}
	t.Setenv("TMPDIR", t.TempDir())
	chaos := &serve.ChaosConfig{
		Seed:        1031,
		ResetProb:   0.02,
		CorruptProb: 0.02,
		StallProb:   0.03,
		Stall:       2 * time.Millisecond,
	}
	instances := []*haInstance{
		startHAInstance(t, "n1", chaos),
		startHAInstance(t, "n2", chaos),
		startHAInstance(t, "n3", chaos),
	}
	endpoints := make([]string, len(instances))
	for i, h := range instances {
		endpoints[i] = h.base
	}
	p, err := client.NewPool(client.PoolConfig{
		Endpoints:       endpoints,
		Session:         "ha",
		QueryPrefix:     "storm",
		Seed:            47,
		MaxAttempts:     60,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		AttemptTimeout:  2 * time.Second,
		BreakerCooldown: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// In-process reference for multiset identity.
	ref := haDB(t)
	wantDemo, err := ref.Execute(demoJoinSQL)
	if err != nil {
		t.Fatal(err)
	}
	wantDemoKeys := rowKeys(wantDemo)

	// Session DDL up front, so every restarted instance must be
	// re-established from the journal mid-storm.
	ctx := context.Background()
	for _, sql := range []string{haJoinSQL, haIntoSQL} {
		if _, err := p.Query(ctx, sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	wantSess, err := p.Query(ctx, haSessSQL)
	if err != nil {
		t.Fatal(err)
	}
	wantSessKeys := rowKeys(wantSess.Result)

	// The §12 open-loop storm: workers submit as fast as results come
	// back, alternating the plain demo join with the session-dependent
	// query.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
		failures  []error
	)
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sql, want := demoJoinSQL, wantDemoKeys
				if (w+i)%3 == 0 {
					sql, want = haSessSQL, wantSessKeys
				}
				res, err := p.Query(ctx, sql)
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("worker %d query %d: %w", w, i, err))
				} else {
					completed++
					if !sameMultiset(want, rowKeys(res.Result)) {
						failures = append(failures, fmt.Errorf("worker %d query %d: result diverged on %s", w, i, res.Instance))
					}
				}
				mu.Unlock()
			}
		}(w)
	}

	// Roll every instance: drain, outage window, fresh generation.
	waitCompleted := func(n int) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			mu.Lock()
			done := completed
			mu.Unlock()
			if done >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatal("storm stalled")
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitCompleted(3)
	for _, h := range instances {
		h.drainRestart(50 * time.Millisecond)
		mu.Lock()
		base := completed
		mu.Unlock()
		// Keep the storm running past each restart so recovered
		// instances see traffic again (breakers must close, journals
		// must replay onto the new generation).
		waitCompleted(base + 5)
	}

	// Full-cluster restart: hard-stop every instance at once (no drain,
	// so clients see raw transport errors), sit out a real outage, then
	// bring a fresh generation of each back up — all under the storm.
	// This forces the breaker lifecycle by construction: with every
	// endpoint refusing connections, the failover sweep feeds each
	// breaker its threshold of consecutive failures (opens), and the
	// storm can only resume once half-open probes against the restarted
	// instances succeed (closes). The pool must ride through the whole
	// outage on its attempt budget with zero client-visible failures.
	for _, h := range instances {
		h.stop()
	}
	time.Sleep(60 * time.Millisecond)
	for _, h := range instances {
		h.restart()
	}
	mu.Lock()
	base := completed
	mu.Unlock()
	waitCompleted(base + 10)
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	for _, f := range failures {
		t.Error(f)
	}
	if len(failures) > 0 {
		t.Fatalf("%d client-visible failures in the storm (%d completed)", len(failures), completed)
	}
	if completed < 20 {
		t.Fatalf("storm too small to prove anything: %d completed", completed)
	}

	st := p.Stats()
	t.Logf("storm: %d completed; failovers=%d drain=%d rekeys=%d opens=%d closes=%d probes=%d journal=%d",
		completed, st.Failovers, st.DrainFailovers, st.Rekeys,
		st.BreakerOpens, st.BreakerCloses, st.Probes, st.JournalReplays)
	if st.Rekeys == 0 {
		t.Error("no re-keying across three restarts: instance scoping untested")
	}
	if st.BreakerOpens == 0 {
		t.Error("no breaker ever opened across three drain/restarts")
	}
	if st.BreakerOpens > 0 && st.BreakerCloses == 0 {
		t.Error("opened breakers never closed: recovery untested")
	}
	if st.JournalReplays == 0 {
		t.Error("session journal never replayed onto a restarted instance")
	}

	// Exactly-once per (instance, query-id), across every generation of
	// every instance.
	assertExecAtMostOnce(t, "ha", instances)

	// Shut everything down, then: no temp spill files survive.
	for _, h := range instances {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		h.mu.Lock()
		srv := h.srv
		h.mu.Unlock()
		if err := srv.Shutdown(ctx); err != nil {
			t.Error(err)
		}
		cancel()
	}
	assertTmpEmpty(t)
}
