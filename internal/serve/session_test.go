package serve

import (
	"fmt"
	"testing"
	"time"
)

var sessionEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSessionReplayLifecycle(t *testing.T) {
	ss := newSessions(time.Minute, 4)
	sess := ss.touch("s1", sessionEpoch)

	rec, first := ss.beginQuery(sess, "q1")
	if !first {
		t.Fatal("first arrival must execute")
	}
	again, firstAgain := ss.beginQuery(sess, "q1")
	if firstAgain {
		t.Fatal("second arrival must replay, not execute")
	}
	if again != rec {
		t.Fatal("both arrivals must share one record")
	}
	select {
	case <-again.done:
		t.Fatal("done before finish")
	default:
	}
	rec.finish([]byte("response"))
	<-again.done
	if string(again.frames) != "response" {
		t.Fatalf("replayed frames %q", again.frames)
	}
}

func TestSessionReplayUntrackedWithoutID(t *testing.T) {
	ss := newSessions(time.Minute, 4)
	sess := ss.touch("s1", sessionEpoch)
	a, firstA := ss.beginQuery(sess, "")
	b, firstB := ss.beginQuery(sess, "")
	if !firstA || !firstB {
		t.Fatal("ID-less queries always execute")
	}
	if a == b {
		t.Fatal("ID-less queries must not share records")
	}
}

func TestSessionReplayEviction(t *testing.T) {
	ss := newSessions(time.Minute, 2)
	sess := ss.touch("s1", sessionEpoch)
	for i := 0; i < 3; i++ {
		rec, first := ss.beginQuery(sess, fmt.Sprintf("q%d", i))
		if !first {
			t.Fatalf("q%d should be fresh", i)
		}
		rec.finish(nil)
	}
	// q0 was evicted: re-arrival executes again (documented horizon).
	if _, first := ss.beginQuery(sess, "q0"); !first {
		t.Fatal("evicted record must re-execute")
	}
	if _, first := ss.beginQuery(sess, "q2"); first {
		t.Fatal("retained record must replay")
	}
}

func TestSessionExpiry(t *testing.T) {
	ss := newSessions(time.Minute, 4)
	// Create in non-alphabetical order; expiry must come back sorted.
	ss.touch("zeta", sessionEpoch)
	ss.touch("alpha", sessionEpoch)
	fresh := ss.touch("fresh", sessionEpoch.Add(59*time.Second))
	fresh.datasets = append(fresh.datasets, "keepme")

	expired := ss.expired(sessionEpoch.Add(time.Minute))
	if len(expired) != 2 || expired[0].id != "alpha" || expired[1].id != "zeta" {
		ids := make([]string, len(expired))
		for i, s := range expired {
			ids[i] = s.id
		}
		t.Fatalf("expired %v, want [alpha zeta]", ids)
	}
	if ss.count() != 1 {
		t.Fatalf("%d sessions left, want 1", ss.count())
	}
	// Expired sessions are really gone: touching recreates empty state.
	if s := ss.touch("alpha", sessionEpoch.Add(2*time.Minute)); len(s.datasets) != 0 {
		t.Fatal("recreated session must not inherit old state")
	}
}

func TestSessionUntrackJoinAcrossSessions(t *testing.T) {
	ss := newSessions(time.Minute, 4)
	a := ss.touch("a", sessionEpoch)
	b := ss.touch("b", sessionEpoch)
	ss.trackJoin(a, "j1")
	ss.trackJoin(b, "j1")
	ss.trackJoin(b, "j2")
	ss.untrackJoin("j1")
	if len(a.joins) != 0 {
		t.Fatalf("session a still tracks %v", a.joins)
	}
	if len(b.joins) != 1 || b.joins[0] != "j2" {
		t.Fatalf("session b tracks %v, want [j2]", b.joins)
	}
}
