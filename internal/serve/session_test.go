package serve

import (
	"fmt"
	"testing"
	"time"
)

var sessionEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSessionReplayLifecycle(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	sess := ss.touch("s1", sessionEpoch)

	rec, first := ss.beginQuery(sess, "q1")
	if !first {
		t.Fatal("first arrival must execute")
	}
	again, firstAgain := ss.beginQuery(sess, "q1")
	if firstAgain {
		t.Fatal("second arrival must replay, not execute")
	}
	if again != rec {
		t.Fatal("both arrivals must share one record")
	}
	select {
	case <-again.done:
		t.Fatal("done before finish")
	default:
	}
	rec.finish([]byte("response"))
	<-again.done
	if string(again.frames) != "response" {
		t.Fatalf("replayed frames %q", again.frames)
	}
}

func TestSessionReplayUntrackedWithoutID(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	sess := ss.touch("s1", sessionEpoch)
	a, firstA := ss.beginQuery(sess, "")
	b, firstB := ss.beginQuery(sess, "")
	if !firstA || !firstB {
		t.Fatal("ID-less queries always execute")
	}
	if a == b {
		t.Fatal("ID-less queries must not share records")
	}
}

func TestSessionReplayEviction(t *testing.T) {
	ss := newSessions(time.Minute, 2, 0)
	sess := ss.touch("s1", sessionEpoch)
	for i := 0; i < 3; i++ {
		rec, first := ss.beginQuery(sess, fmt.Sprintf("q%d", i))
		if !first {
			t.Fatalf("q%d should be fresh", i)
		}
		rec.finish(nil)
	}
	// q0 was evicted: re-arrival executes again (documented horizon).
	if _, first := ss.beginQuery(sess, "q0"); !first {
		t.Fatal("evicted record must re-execute")
	}
	if _, first := ss.beginQuery(sess, "q2"); first {
		t.Fatal("retained record must replay")
	}
}

func TestSessionEvictionSkipsInFlight(t *testing.T) {
	ss := newSessions(time.Minute, 2, 0)
	sess := ss.touch("s1", sessionEpoch)
	// Three in-flight records under a cap of two: none may be evicted,
	// or a retry of the "evicted" ID would execute concurrently with
	// its original.
	recs := make([]*queryRecord, 3)
	for i := range recs {
		rec, first := ss.beginQuery(sess, fmt.Sprintf("q%d", i))
		if !first {
			t.Fatalf("q%d should be fresh", i)
		}
		recs[i] = rec
	}
	for i := range recs {
		if _, first := ss.beginQuery(sess, fmt.Sprintf("q%d", i)); first {
			t.Fatalf("in-flight q%d was evicted over the cap", i)
		}
	}
	// Once finished they become evictable again: the next begin sheds
	// the oldest finished records back down to the cap.
	for i, rec := range recs {
		ss.finishQuery(sess, fmt.Sprintf("q%d", i), rec, []byte("r"))
	}
	rec3, _ := ss.beginQuery(sess, "q3")
	if _, first := ss.beginQuery(sess, "q0"); !first {
		t.Fatal("oldest finished record q0 must be evicted once settled")
	}
	ss.finishQuery(sess, "q3", rec3, nil)
}

func TestSessionForgetReExecutes(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	sess := ss.touch("s1", sessionEpoch)
	rec, first := ss.beginQuery(sess, "q1")
	if !first {
		t.Fatal("first arrival must execute")
	}
	rec.execs = 1
	// A retryable failure: forget the record, then finish it so any
	// waiting replayer wakes with the (retryable) error frames.
	ss.forget(sess, "q1", rec)
	rec.finish([]byte("shed"))
	again, first := ss.beginQuery(sess, "q1")
	if !first {
		t.Fatal("forgotten query ID must re-execute on retry")
	}
	if again == rec {
		t.Fatal("retry must get a fresh record")
	}
	// Forgetting a stale record pointer is a no-op.
	ss.forget(sess, "q1", rec)
	if _, first := ss.beginQuery(sess, "q1"); first {
		t.Fatal("stale forget must not drop the fresh record")
	}
}

func TestSessionReplayByteBudget(t *testing.T) {
	ss := newSessions(time.Minute, 100, 64)
	sess := ss.touch("s1", sessionEpoch)
	big := make([]byte, 48)
	for i := 0; i < 3; i++ {
		rec, _ := ss.beginQuery(sess, fmt.Sprintf("q%d", i))
		ss.finishQuery(sess, fmt.Sprintf("q%d", i), rec, big)
	}
	// 3×48 bytes against a 64-byte budget: the two oldest finished
	// records must have been evicted.
	for i, wantFirst := range []bool{true, true, false} {
		if _, first := ss.beginQuery(sess, fmt.Sprintf("q%d", i)); first != wantFirst {
			t.Fatalf("q%d fresh=%v, want %v", i, first, wantFirst)
		}
	}
	if sess.replayBytes > 64+48 {
		t.Fatalf("replayBytes %d not reclaimed by eviction", sess.replayBytes)
	}
}

func TestSessionExecCountIsPureRead(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	if n := ss.execCount("ghost", "q1"); n != 0 {
		t.Fatalf("unknown session execCount = %d, want 0", n)
	}
	if ss.count() != 0 {
		t.Fatal("execCount created a session")
	}
	sess := ss.touch("s1", sessionEpoch)
	if n := ss.execCount("s1", "nope"); n != 0 {
		t.Fatalf("unknown query execCount = %d, want 0", n)
	}
	rec, _ := ss.beginQuery(sess, "q1")
	rec.execs = 1
	if n := ss.execCount("s1", "q1"); n != 1 {
		t.Fatalf("execCount = %d, want 1", n)
	}
	// The probe must not refresh the idle stamp.
	if got := sess.lastUsed; !got.Equal(sessionEpoch) {
		t.Fatalf("execCount touched lastUsed: %v", got)
	}
}

func TestSessionExpiry(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	// Create in non-alphabetical order; expiry must come back sorted.
	ss.touch("zeta", sessionEpoch)
	ss.touch("alpha", sessionEpoch)
	fresh := ss.touch("fresh", sessionEpoch.Add(59*time.Second))
	fresh.datasets = append(fresh.datasets, "keepme")

	expired := ss.expired(sessionEpoch.Add(time.Minute))
	if len(expired) != 2 || expired[0].id != "alpha" || expired[1].id != "zeta" {
		ids := make([]string, len(expired))
		for i, s := range expired {
			ids[i] = s.id
		}
		t.Fatalf("expired %v, want [alpha zeta]", ids)
	}
	if ss.count() != 1 {
		t.Fatalf("%d sessions left, want 1", ss.count())
	}
	// Expired sessions are really gone: touching recreates empty state.
	if s := ss.touch("alpha", sessionEpoch.Add(2*time.Minute)); len(s.datasets) != 0 {
		t.Fatal("recreated session must not inherit old state")
	}
}

func TestSessionExpirySkipsInFlight(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	sess := ss.touch("s1", sessionEpoch)
	rec, first := ss.beginQuery(sess, "q1")
	if !first {
		t.Fatal("first arrival must execute")
	}
	// Idle past the deadline but holding an in-flight record: the sweep
	// must skip the session (the mirror of the eviction rule — dropping
	// it would orphan the record, and a retry would execute q1
	// concurrently with the original).
	if got := ss.expired(sessionEpoch.Add(2 * time.Minute)); len(got) != 0 {
		t.Fatalf("expired %d sessions with a query in flight, want 0", len(got))
	}
	if ss.count() != 1 {
		t.Fatal("in-flight session was dropped by expiry")
	}
	// A retry during the window still replays against the same record.
	if again, first := ss.beginQuery(sess, "q1"); first || again != rec {
		t.Fatal("retry across an expiry sweep must share the in-flight record")
	}
	// Once the query settles, the next sweep takes the session.
	ss.finishQuery(sess, "q1", rec, []byte("r"))
	if got := ss.expired(sessionEpoch.Add(2 * time.Minute)); len(got) != 1 {
		t.Fatalf("expired %d sessions after settle, want 1", len(got))
	}
}

func TestSessionRetryJustAfterExpiryReExecutes(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	sess := ss.touch("s1", sessionEpoch)
	rec, _ := ss.beginQuery(sess, "q1")
	ss.finishQuery(sess, "q1", rec, []byte("r"))
	if got := ss.expired(sessionEpoch.Add(time.Minute)); len(got) != 1 {
		t.Fatalf("expired %d sessions, want 1", len(got))
	}
	// A retry arriving just after expiry finds a fresh session: it must
	// re-execute cleanly (fresh record, execs from zero), never error or
	// see the dead session's record.
	sess2 := ss.touch("s1", sessionEpoch.Add(61*time.Second))
	again, first := ss.beginQuery(sess2, "q1")
	if !first {
		t.Fatal("retry after expiry must re-execute")
	}
	if again == rec {
		t.Fatal("retry after expiry must not see the expired record")
	}
	if again.execs != 0 {
		t.Fatalf("fresh record execs = %d, want 0", again.execs)
	}
}

func TestSessionReplayStats(t *testing.T) {
	ss := newSessions(time.Minute, 2, 0)
	sess := ss.touch("s1", sessionEpoch)
	for i := 0; i < 3; i++ {
		rec, _ := ss.beginQuery(sess, fmt.Sprintf("q%d", i))
		ss.finishQuery(sess, fmt.Sprintf("q%d", i), rec, []byte("abcd"))
	}
	// Cap 2: q0 was evicted. A replay of q2 is a hit.
	if _, first := ss.beginQuery(sess, "q2"); first {
		t.Fatal("q2 must replay")
	}
	st := ss.replayStats()
	if st.Records != 2 || st.Bytes != 8 {
		t.Fatalf("records=%d bytes=%d, want 2/8", st.Records, st.Bytes)
	}
	if st.Hits != 1 || st.Evictions != 1 {
		t.Fatalf("hits=%d evictions=%d, want 1/1", st.Hits, st.Evictions)
	}
	if st.RecordCap != 2 || st.BytesBudget != DefaultReplayBytes {
		t.Fatalf("caps %d/%d not surfaced", st.RecordCap, st.BytesBudget)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Session != "s1" ||
		st.Sessions[0].Records != 2 || st.Sessions[0].Hits != 1 || st.Sessions[0].Evictions != 1 {
		t.Fatalf("per-session stats %+v", st.Sessions)
	}
	// Aggregate hit/eviction counters survive session expiry; the live
	// record/byte totals shrink with it.
	if got := ss.expired(sessionEpoch.Add(2 * time.Minute)); len(got) != 1 {
		t.Fatalf("expired %d sessions, want 1", len(got))
	}
	st = ss.replayStats()
	if st.Records != 0 || st.Bytes != 0 || len(st.Sessions) != 0 {
		t.Fatalf("live totals survived expiry: %+v", st)
	}
	if st.Hits != 1 || st.Evictions != 1 {
		t.Fatalf("lifetime counters lost at expiry: hits=%d evictions=%d", st.Hits, st.Evictions)
	}
}

func TestSessionUntrackJoinAcrossSessions(t *testing.T) {
	ss := newSessions(time.Minute, 4, 0)
	a := ss.touch("a", sessionEpoch)
	b := ss.touch("b", sessionEpoch)
	ss.trackJoin(a, "j1")
	ss.trackJoin(b, "j1")
	ss.trackJoin(b, "j2")
	ss.untrackJoin("j1")
	if len(a.joins) != 0 {
		t.Fatalf("session a still tracks %v", a.joins)
	}
	if len(b.joins) != 1 || b.joins[0] != "j2" {
		t.Fatalf("session b tracks %v, want [j2]", b.joins)
	}
}
