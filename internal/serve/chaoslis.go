// Network fault injection, in the internal/cluster fault style:
// deterministic, seeded, probability-driven. A ChaosListener wraps the
// server's real listener and damages traffic on the way out —
// refused accepts, mid-response connection resets, single-byte
// corruption, and stalls — so the chaos suite can prove the client's
// retry loop converges to correct results over a hostile network.
//
// Only the server->client direction (Write) is damaged. Corrupting
// Reads would rewrite the client's SQL before execution, turning a
// transport fault into a semantic one that no checksum on the response
// could catch; real deployments put the request CRC in the client,
// which is out of scope for this simulator.
package serve

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// ChaosConfig enables network fault injection. Probabilities are per
// event: AcceptRefuseProb per accepted connection, the rest per Write
// call on a damaged connection.
type ChaosConfig struct {
	// Seed makes the fault sequence replayable.
	Seed int64
	// AcceptRefuseProb closes a just-accepted connection immediately
	// (the client sees a reset before any response).
	AcceptRefuseProb float64
	// ResetProb closes the connection mid-write, truncating a response.
	ResetProb float64
	// CorruptProb flips one byte of a write (the frame CRC must catch it).
	CorruptProb float64
	// StallProb delays a write by Stall (a stalled, not dead, peer).
	StallProb float64
	// Stall is the injected delay; <=0 selects 50ms.
	Stall time.Duration
}

// ChaosStats counts injected faults.
type ChaosStats struct {
	Accepts  int64 // connections accepted
	Refused  int64 // accept-refused connections
	Resets   int64 // mid-write resets
	Corrupts int64 // corrupted writes
	Stalls   int64 // stalled writes
}

// ChaosListener is a net.Listener that damages outbound traffic.
type ChaosListener struct {
	net.Listener
	cfg ChaosConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats ChaosStats
}

// NewChaosListener wraps l with seeded fault injection.
func NewChaosListener(l net.Listener, cfg ChaosConfig) *ChaosListener {
	if cfg.Stall <= 0 {
		cfg.Stall = 50 * time.Millisecond
	}
	return &ChaosListener{Listener: l, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the injected-fault counters.
func (cl *ChaosListener) Stats() ChaosStats {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.stats
}

// roll draws one probability decision from the shared seeded stream.
func (cl *ChaosListener) roll(p float64, hit *int64) bool {
	if p <= 0 {
		return false
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.rng.Float64() >= p {
		return false
	}
	*hit++
	return true
}

// Accept implements net.Listener.
func (cl *ChaosListener) Accept() (net.Conn, error) {
	for {
		c, err := cl.Listener.Accept()
		if err != nil {
			return nil, err
		}
		cl.mu.Lock()
		cl.stats.Accepts++
		cl.mu.Unlock()
		if cl.roll(cl.cfg.AcceptRefuseProb, &cl.stats.Refused) {
			c.Close()
			continue
		}
		return &chaosConn{Conn: c, lis: cl}, nil
	}
}

// chaosConn damages writes per its listener's config.
type chaosConn struct {
	net.Conn
	lis *ChaosListener
}

// Write implements net.Conn, possibly stalling, resetting, or
// corrupting the outbound bytes.
func (c *chaosConn) Write(b []byte) (int, error) {
	cl := c.lis
	if cl.roll(cl.cfg.StallProb, &cl.stats.Stalls) {
		time.Sleep(cl.cfg.Stall)
	}
	if cl.roll(cl.cfg.ResetProb, &cl.stats.Resets) {
		// Write part of the buffer, then kill the connection: the
		// client sees a truncated response (io.ErrUnexpectedEOF mid-
		// frame), not a clean close.
		n := len(b) / 2
		if n > 0 {
			c.Conn.Write(b[:n])
		}
		c.Conn.Close()
		return n, net.ErrClosed
	}
	if cl.roll(cl.cfg.CorruptProb, &cl.stats.Corrupts) && len(b) > 0 {
		damaged := make([]byte, len(b))
		copy(damaged, b)
		cl.mu.Lock()
		i := cl.rng.Intn(len(damaged))
		cl.mu.Unlock()
		damaged[i] ^= 0x20
		return c.Conn.Write(damaged)
	}
	return c.Conn.Write(b)
}
