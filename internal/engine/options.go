package engine

import (
	"fudj/internal/cluster"
	"fudj/internal/trace"
)

// Option configures a Database. Options compose left to right; later
// options win. Most options may also be applied to a live Database
// with Configure; the exceptions — options that shape state fixed at
// Open, like the admission scheduler or the clock — are rejected there
// with an error naming the option.
type Option interface {
	applyOption(db *Database) error
}

// optionFunc adapts a plain function to the Option interface.
type optionFunc func(*Database) error

func (f optionFunc) applyOption(db *Database) error { return f(db) }

// openOnlyOption marks an option usable at Open but not Configure:
// it configures state (scheduler, clock, tracing) fixed for the
// Database's lifetime.
type openOnlyOption struct {
	name string
	fn   func(*Database) error
}

func (o openOnlyOption) applyOption(db *Database) error { return o.fn(db) }

// WithCluster sizes the simulated cluster (nodes × cores per node).
func WithCluster(nodes, coresPerNode int) Option {
	return WithClusterConfig(cluster.Config{Nodes: nodes, CoresPerNode: coresPerNode})
}

// WithClusterConfig installs a full cluster configuration.
func WithClusterConfig(cfg cluster.Config) Option {
	return optionFunc(func(db *Database) error {
		if err := cfg.Validate(); err != nil {
			return err
		}
		db.clusterCfg = cfg
		return nil
	})
}

// WithJoinMode selects how FUDJ predicates execute (FUDJ plan or
// registered built-in operators).
func WithJoinMode(m JoinMode) Option {
	return optionFunc(func(db *Database) error {
		db.mode = m
		return nil
	})
}

// WithSmartTheta enables the balanced theta bucket-matching operator
// for multi-join FUDJs (see Database.SetSmartTheta).
func WithSmartTheta(on bool) Option {
	return optionFunc(func(db *Database) error {
		db.smartTheta = on
		return nil
	})
}

// WithMemoryBudget bounds the transient memory of every query to the
// given total bytes, split evenly over partitions. Under a budget,
// shuffle inboxes are credit-bounded (senders block instead of
// buffering without limit) and COMBINE hash builds that exceed their
// partition's share spill bucket runs to disk and re-join them
// hybrid-hash style, skew-splitting buckets too large to ever fit. A
// record larger than the per-partition hard cap (2x the share) fails
// the query with a structured *core.ResourceError. Zero or negative
// disables bounding; unbounded execution is byte-for-byte unchanged.
func WithMemoryBudget(bytes int64) Option {
	return optionFunc(func(db *Database) error {
		if bytes < 0 {
			bytes = 0
		}
		db.memBudget = bytes
		return nil
	})
}

// WithConcurrencyLimit caps simultaneously executing queries: beyond
// n, arrivals queue (bounded, priority-ordered) and overflow is shed
// with a retryable *sched.AdmissionError. Zero or negative leaves
// concurrency unbounded.
func WithConcurrencyLimit(n int) Option {
	return openOnlyOption{name: "WithConcurrencyLimit", fn: func(db *Database) error {
		if n > 0 {
			db.schedCfg.MaxConcurrent = n
		}
		return nil
	}}
}

// WithQueueDepth bounds the admission queue (across all priorities).
// Waiters beyond the bound are shed immediately. Zero or negative
// selects sched.DefaultQueueDepth.
func WithQueueDepth(n int) Option {
	return openOnlyOption{name: "WithQueueDepth", fn: func(db *Database) error {
		if n > 0 {
			db.schedCfg.QueueDepth = n
		}
		return nil
	}}
}

// WithMemoryPool installs a shared memory pool: each admitted query
// leases its memory budget from these bytes at admission (requesting
// the WithMemoryBudget amount, or an even pool share by default) and
// returns the lease when it finishes. Under contention the scheduler
// may grant a reduced lease — the query then runs with a tighter
// budget and degrades into spilling — and sheds queries it cannot
// serve with a retryable *sched.AdmissionError. The sum of outstanding
// leases never exceeds the pool. Zero or negative disables pooling
// (each query uses WithMemoryBudget alone, unguarded globally).
func WithMemoryPool(bytes int64) Option {
	return openOnlyOption{name: "WithMemoryPool", fn: func(db *Database) error {
		if bytes > 0 {
			db.schedCfg.Pool = bytes
		}
		return nil
	}}
}

// WithBatchSize caps the rows per columnar frame on the execution hot
// path: shuffle transfers, spill runs, and checkpoints all move record
// batches of at most n rows. The default (n <= 0, or
// cluster.DefaultBatchSize = 1024 rows) suits most workloads;
// WithBatchSize(1) degenerates to record-at-a-time framing — the
// pre-batching baseline, kept exercisable for identity tests and
// benchmarks.
func WithBatchSize(n int) Option {
	return optionFunc(func(db *Database) error {
		if n < 0 {
			n = 0
		}
		db.batchSize = n
		return nil
	})
}

// WithCheckpoints enables durable phase barriers: every query
// checkpoints the broadcast plan after SUMMARIZE and each partition's
// post-shuffle bucket inputs after PARTITION, so a node lost at a
// barrier recovers in place — surviving partitions never re-run
// SUMMARIZE, and a damaged checkpoint is detected by checksum and
// healed by recomputation. Checkpoint files live in a per-query temp
// directory swept at teardown. Off by default: fault-free execution is
// byte-for-byte unchanged either way.
func WithCheckpoints() Option {
	return optionFunc(func(db *Database) error {
		db.ckpt = true
		return nil
	})
}

// WithFaults arms deterministic fault injection: every query execution
// builds a fresh injector from this configuration, so the same query
// sees the same faults on every run. A nil config disables injection.
func WithFaults(cfg *cluster.FaultConfig) Option {
	return optionFunc(func(db *Database) error {
		if cfg == nil {
			db.faultCfg = nil
			return nil
		}
		c := *cfg
		db.faultCfg = &c
		return nil
	})
}

// WithRetryPolicy overrides the cluster's task retry policy (backoff
// shape, attempt cap, speculation).
func WithRetryPolicy(pol cluster.RetryPolicy) Option {
	return optionFunc(func(db *Database) error {
		db.retryPol = &pol
		return nil
	})
}

// WithTracing enables execution tracing for every query: each Result
// carries its root span in Result.Trace. Per-query tracing is the
// Trace exec option instead.
func WithTracing() Option {
	return openOnlyOption{name: "WithTracing", fn: func(db *Database) error {
		db.tracing = true
		return nil
	}}
}

// WithClock injects the clock used for all execution timing (elapsed,
// phase times, busy time, span timestamps). Tests install a
// deterministic trace.FakeClock; the default is the wall clock.
func WithClock(c trace.Clock) Option {
	return openOnlyOption{name: "WithClock", fn: func(db *Database) error {
		if c != nil {
			db.clock = c
		}
		return nil
	}}
}
