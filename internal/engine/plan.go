package engine

import (
	"fmt"
	"strings"

	"fudj/internal/catalog"
	"fudj/internal/expr"
	"fudj/internal/sqlparse"
	"fudj/internal/types"
)

// The planner turns a parsed SELECT into a left-deep physical plan:
// per-table scans with pushed-down filters, a sequence of join steps,
// a residual filter, optional grouping/aggregation, ordering, limit,
// and a final projection. The FUDJ rewrite rule (§VI-C) lives in
// chooseJoin: a conjunct whose function name and arity match an
// installed join becomes a FUDJ join step.

type joinKind int

const (
	joinNLJ     joinKind = iota // nested loop with arbitrary predicate (on-top)
	joinHash                    // equi-join on expressions
	joinFUDJ                    // the Fig. 8 FUDJ pipeline
	joinBuiltin                 // hand-built registered operator
	joinCross                   // cartesian product (no usable condition)
)

func (k joinKind) String() string {
	switch k {
	case joinNLJ:
		return "NESTED-LOOP"
	case joinHash:
		return "HASH"
	case joinFUDJ:
		return "FUDJ"
	case joinBuiltin:
		return "BUILTIN"
	case joinCross:
		return "CROSS"
	}
	return "?"
}

// tableScan is one base input with pushed-down filters.
type tableScan struct {
	ref    sqlparse.TableRef
	ds     *catalog.Dataset
	schema *types.Schema // alias-qualified field names
	filter expr.Expr     // nil when no pushable conjunct
}

// fudjStep carries everything the FUDJ executor needs.
type fudjStep struct {
	def      *catalog.JoinDef
	leftKey  expr.Expr // key expression over the accumulated left schema
	rightKey expr.Expr // key expression over the new right table
	params   []types.Value
	selfJoin bool // same dataset with identical filters: summary reuse
}

// joinStep joins the accumulated left input with one new table.
type joinStep struct {
	kind     joinKind
	cond     expr.Expr // NLJ predicate (kind == joinNLJ)
	hashL    expr.Expr // equi-join keys (kind == joinHash)
	hashR    expr.Expr
	fudj     *fudjStep   // kind == joinFUDJ / joinBuiltin
	residual []expr.Expr // extra conjuncts applied right after this join
}

// aggSpec is one aggregate output column.
type aggSpec struct {
	fn    string // count, sum, avg, min, max
	arg   expr.Expr
	alias string
}

// outputCol is one projected column when no aggregation is present.
type outputCol struct {
	e     expr.Expr
	alias string
}

type orderKey struct {
	e    expr.Expr
	desc bool
}

type queryPlan struct {
	db        *Database
	scans     []tableScan
	joins     []joinStep
	post      []expr.Expr // residual filter after all joins
	groupBy   []expr.Expr
	aggs      []aggSpec
	having    expr.Expr   // rewritten to reference output columns; nil if absent
	cols      []outputCol // used when len(aggs) == 0
	distinct  bool
	outSchema *types.Schema
	orderBy   []orderKey
	limit     int
}

func (db *Database) plan(sel *sqlparse.Select) (*queryPlan, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("engine: query needs a FROM clause")
	}
	p := &queryPlan{db: db, limit: sel.Limit}

	// Bind tables.
	seen := map[string]bool{}
	for _, ref := range sel.From {
		if seen[ref.Alias] {
			return nil, fmt.Errorf("engine: duplicate alias %q", ref.Alias)
		}
		seen[ref.Alias] = true
		ds, err := db.catalog.Dataset(ref.Dataset)
		if err != nil {
			return nil, err
		}
		fields := make([]types.Field, ds.Schema.Len())
		for i, f := range ds.Schema.Fields {
			fields[i] = types.Field{Name: ref.Alias + "." + f.Name, Kind: f.Kind}
		}
		p.scans = append(p.scans, tableScan{ref: ref, ds: ds, schema: types.NewSchema(fields...)})
	}

	// Classify WHERE conjuncts.
	var pool []expr.Expr
	if sel.Where != nil {
		for _, c := range expr.SplitConjuncts(sel.Where) {
			quals := expr.Qualifiers(c)
			if call, ok := c.(*expr.Call); ok && db.catalog.Join(call.Name) != nil && len(quals) < 2 {
				return nil, fmt.Errorf("engine: join predicate %q must reference both sides of a join; its keys do not split", call.Name)
			}
			if pushToScan(p, c, quals) {
				continue
			}
			pool = append(pool, c)
		}
	}

	// Build the left-deep join sequence in FROM order.
	covered := map[string]bool{p.scans[0].ref.Alias: true}
	for i := 1; i < len(p.scans); i++ {
		newAlias := p.scans[i].ref.Alias
		var candidates []expr.Expr
		var rest []expr.Expr
		for _, c := range pool {
			quals := expr.Qualifiers(c)
			if quals[newAlias] && subset(quals, covered, newAlias) {
				candidates = append(candidates, c)
			} else {
				rest = append(rest, c)
			}
		}
		pool = rest
		step, err := db.chooseJoin(p, covered, i, candidates)
		if err != nil {
			return nil, err
		}
		p.joins = append(p.joins, step)
		covered[newAlias] = true
	}
	// Whatever conjuncts remain become the residual post-join filter.
	p.post = pool

	if err := p.planOutput(sel); err != nil {
		return nil, err
	}
	return p, nil
}

// pushToScan pushes a single-table conjunct into its scan. Conjuncts
// with no column references are left in the pool (constant filters).
func pushToScan(p *queryPlan, c expr.Expr, quals map[string]bool) bool {
	if len(quals) != 1 {
		return false
	}
	for i := range p.scans {
		if quals[p.scans[i].ref.Alias] {
			// Also require every unqualified column to resolve here; in
			// this dialect columns are alias-qualified, so this suffices.
			if p.scans[i].filter == nil {
				p.scans[i].filter = c
			} else {
				p.scans[i].filter = &expr.Binary{Op: expr.OpAnd, L: p.scans[i].filter, R: c}
			}
			return true
		}
	}
	return false
}

func subset(quals, covered map[string]bool, extra string) bool {
	for q := range quals {
		if q != extra && !covered[q] {
			return false
		}
	}
	return true
}

// chooseJoin implements the optimizer's strategy selection for one
// join step, with the FUDJ rewrite taking precedence.
func (db *Database) chooseJoin(p *queryPlan, covered map[string]bool, rightIdx int, candidates []expr.Expr) (joinStep, error) {
	newAlias := p.scans[rightIdx].ref.Alias

	// 1. FUDJ rewrite: a candidate call matching an installed join.
	for ci, c := range candidates {
		call, ok := c.(*expr.Call)
		if !ok {
			continue
		}
		def := db.catalog.Join(call.Name)
		if def == nil {
			continue
		}
		if len(call.Args) != def.Arity() {
			return joinStep{}, fmt.Errorf("engine: join %q expects %d arguments, got %d",
				call.Name, def.Arity(), len(call.Args))
		}
		step, err := db.buildFUDJStep(p, covered, rightIdx, call, def)
		if err != nil {
			return joinStep{}, err
		}
		step.residual = append(append([]expr.Expr{}, candidates[:ci]...), candidates[ci+1:]...)
		return step, nil
	}

	// 2. Hash join on a clean equality.
	for ci, c := range candidates {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			continue
		}
		lq, rq := expr.Qualifiers(b.L), expr.Qualifiers(b.R)
		var hashL, hashR expr.Expr
		switch {
		case onlyIn(lq, covered) && onlyAlias(rq, newAlias):
			hashL, hashR = b.L, b.R
		case onlyIn(rq, covered) && onlyAlias(lq, newAlias):
			hashL, hashR = b.R, b.L
		default:
			continue
		}
		step := joinStep{kind: joinHash, hashL: hashL, hashR: hashR}
		step.residual = append(append([]expr.Expr{}, candidates[:ci]...), candidates[ci+1:]...)
		return step, nil
	}

	// 3. General NLJ over the whole candidate conjunction.
	if len(candidates) > 0 {
		return joinStep{kind: joinNLJ, cond: expr.JoinConjuncts(candidates)}, nil
	}

	// 4. Nothing usable: cartesian product.
	return joinStep{kind: joinCross}, nil
}

func onlyIn(quals, covered map[string]bool) bool {
	if len(quals) == 0 {
		return false
	}
	for q := range quals {
		if !covered[q] {
			return false
		}
	}
	return true
}

func onlyAlias(quals map[string]bool, alias string) bool {
	return len(quals) == 1 && quals[alias]
}

func (db *Database) buildFUDJStep(p *queryPlan, covered map[string]bool, rightIdx int, call *expr.Call, def *catalog.JoinDef) (joinStep, error) {
	newAlias := p.scans[rightIdx].ref.Alias
	key1, key2 := call.Args[0], call.Args[1]
	q1, q2 := expr.Qualifiers(key1), expr.Qualifiers(key2)

	var leftKey, rightKey expr.Expr
	switch {
	case onlyIn(q1, covered) && onlyAlias(q2, newAlias):
		leftKey, rightKey = key1, key2
	case onlyIn(q2, covered) && onlyAlias(q1, newAlias):
		leftKey, rightKey = key2, key1
	default:
		return joinStep{}, fmt.Errorf("engine: join %q keys %v and %v do not split across the join", call.Name, key1, key2)
	}

	// Extra parameters must be literals (the paper embeds them in the
	// function signature, so they are constant per query).
	params := make([]types.Value, 0, len(call.Args)-2)
	for _, a := range call.Args[2:] {
		lit, ok := a.(*expr.Literal)
		if !ok {
			return joinStep{}, fmt.Errorf("engine: join %q parameter %v must be a literal", call.Name, a)
		}
		params = append(params, lit.V)
	}

	// Self-join detection for the summary-reuse optimization: only the
	// two-table case with the same dataset and identical pushed filters.
	selfJoin := false
	if len(covered) == 1 && rightIdx == 1 {
		l, r := p.scans[0], p.scans[1]
		if l.ref.Dataset == r.ref.Dataset && exprEq(stripAlias(l.filter, l.ref.Alias), stripAlias(r.filter, r.ref.Alias)) {
			selfJoin = true
		}
	}

	kind := joinFUDJ
	if db.joinMode() == ModeBuiltin {
		if _, ok := db.builtin(call.Name); ok {
			kind = joinBuiltin
		}
	}
	return joinStep{kind: kind, fudj: &fudjStep{
		def:      def,
		leftKey:  leftKey,
		rightKey: rightKey,
		params:   params,
		selfJoin: selfJoin,
	}}, nil
}

// stripAlias renders a filter with its alias qualifier removed so that
// p1.x > 3 and p2.x > 3 compare equal for self-join detection.
func stripAlias(e expr.Expr, alias string) string {
	if e == nil {
		return ""
	}
	return strings.ReplaceAll(e.String(), alias+".", "")
}

func exprEq(a, b string) bool { return a == b }

// planOutput resolves projections, grouping, ordering, and the output
// schema.
func (p *queryPlan) planOutput(sel *sqlparse.Select) error {
	joined := p.joinedSchema()

	hasAgg := false
	for _, it := range sel.Items {
		if !it.Star && sqlparse.IsAggregate(it.Expr) {
			hasAgg = true
		}
	}

	if hasAgg || len(sel.GroupBy) > 0 {
		p.groupBy = sel.GroupBy
		var fields []types.Field
		// Group columns first, named by matching projection alias when
		// one exists, else by their expression text.
		for _, g := range p.groupBy {
			name := g.String()
			for _, it := range sel.Items {
				if !it.Star && it.Alias != "" && it.Expr.String() == g.String() {
					name = it.Alias
				}
			}
			fields = append(fields, types.Field{Name: name, Kind: inferKind(g, joined)})
		}
		for _, it := range sel.Items {
			if it.Star {
				return fmt.Errorf("engine: SELECT * cannot be combined with aggregation")
			}
			if sqlparse.IsAggregate(it.Expr) {
				call := it.Expr.(*expr.Call)
				alias := it.Alias
				if alias == "" {
					alias = call.String()
				}
				p.aggs = append(p.aggs, aggSpec{fn: call.Name, arg: call.Args[0], alias: alias})
				fields = append(fields, types.Field{Name: alias, Kind: aggKind(call.Name, call.Args[0], joined)})
				continue
			}
			// A non-aggregate item must be one of the group expressions.
			found := false
			for _, g := range p.groupBy {
				if g.String() == it.Expr.String() {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("engine: %v is neither aggregated nor in GROUP BY", it.Expr)
			}
		}
		p.outSchema = types.NewSchema(fields...)
	} else {
		var fields []types.Field
		for _, it := range sel.Items {
			if it.Star {
				for _, f := range joined.Fields {
					p.cols = append(p.cols, outputCol{e: &expr.Column{Name: f.Name}, alias: f.Name})
					fields = append(fields, f)
				}
				continue
			}
			alias := it.Alias
			if alias == "" {
				alias = it.Expr.String()
			}
			p.cols = append(p.cols, outputCol{e: it.Expr, alias: alias})
			fields = append(fields, types.Field{Name: alias, Kind: inferKind(it.Expr, joined)})
		}
		p.outSchema = types.NewSchema(fields...)
	}

	if sel.Having != nil {
		h, err := p.rewriteHaving(sel.Having)
		if err != nil {
			return err
		}
		p.having = h
	}
	p.distinct = sel.Distinct

	for _, o := range sel.OrderBy {
		p.orderBy = append(p.orderBy, orderKey{e: o.Expr, desc: o.Desc})
	}
	return nil
}

// rewriteHaving replaces aggregate calls in a HAVING predicate with
// references to the matching projected aggregate columns, so the
// predicate can run over the aggregation output. An aggregate that is
// not in the select list is rejected (a documented dialect
// restriction; add it to the projection).
func (p *queryPlan) rewriteHaving(e expr.Expr) (expr.Expr, error) {
	switch n := e.(type) {
	case *expr.Binary:
		l, err := p.rewriteHaving(n.L)
		if err != nil {
			return nil, err
		}
		r, err := p.rewriteHaving(n.R)
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: n.Op, L: l, R: r}, nil
	case *expr.Not:
		inner, err := p.rewriteHaving(n.E)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	case *expr.Call:
		if sqlparse.IsAggregate(n) {
			want := n.String()
			for _, a := range p.aggs {
				if (&expr.Call{Name: a.fn, Args: []expr.Expr{a.arg}}).String() == want {
					return &expr.Column{Name: a.alias}, nil
				}
			}
			return nil, fmt.Errorf("engine: HAVING aggregate %v must also appear in the select list", n)
		}
		args := make([]expr.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, err := p.rewriteHaving(a)
			if err != nil {
				return nil, err
			}
			args[i] = ra
		}
		return &expr.Call{Name: n.Name, Args: args}, nil
	}
	return e, nil
}

// joinedSchema is the schema after all joins: the concatenation of all
// scan schemas in FROM order.
func (p *queryPlan) joinedSchema() *types.Schema {
	out := p.scans[0].schema
	for _, s := range p.scans[1:] {
		out = out.Concat(s.schema)
	}
	return out
}

// inferKind guesses an output kind for schema purposes; when inference
// fails the column is typed as null (kinds are dynamic at runtime, so
// this only affects display).
func inferKind(e expr.Expr, schema *types.Schema) types.Kind {
	switch n := e.(type) {
	case *expr.Column:
		if idx, err := expr.ResolveColumn(n, schema); err == nil {
			return schema.Fields[idx].Kind
		}
	case *expr.Literal:
		return n.V.Kind()
	case *expr.Binary:
		switch n.Op {
		case expr.OpEq, expr.OpNe, expr.OpLt, expr.OpLe, expr.OpGt, expr.OpGe, expr.OpAnd, expr.OpOr:
			return types.KindBool
		default:
			return inferKind(n.L, schema)
		}
	case *expr.Call:
		switch n.Name {
		case "st_contains", "st_intersects", "interval_overlapping":
			return types.KindBool
		case "st_distance", "similarity_jaccard":
			return types.KindFloat64
		case "st_make_point":
			return types.KindPoint
		case "interval":
			return types.KindInterval
		case "word_tokens":
			return types.KindList
		case "len", "abs":
			return types.KindInt64
		}
	}
	return types.KindNull
}

func aggKind(fn string, arg expr.Expr, schema *types.Schema) types.Kind {
	switch fn {
	case "count":
		return types.KindInt64
	case "avg":
		return types.KindFloat64
	default:
		return inferKind(arg, schema)
	}
}

// explain renders the physical plan, leaf to root.
func (p *queryPlan) explain() string {
	var sb strings.Builder
	indent := 0
	line := func(format string, args ...any) {
		sb.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(&sb, format, args...)
		sb.WriteByte('\n')
	}

	line("OUTPUT %v", p.outSchema)
	indent++
	if p.limit >= 0 {
		line("LIMIT %d", p.limit)
	}
	if len(p.orderBy) > 0 {
		keys := make([]string, len(p.orderBy))
		for i, o := range p.orderBy {
			keys[i] = o.e.String()
			if o.desc {
				keys[i] += " DESC"
			}
		}
		line("SORT %s", strings.Join(keys, ", "))
	}
	if len(p.aggs) > 0 || len(p.groupBy) > 0 {
		gs := make([]string, len(p.groupBy))
		for i, g := range p.groupBy {
			gs[i] = g.String()
		}
		as := make([]string, len(p.aggs))
		for i, a := range p.aggs {
			as[i] = fmt.Sprintf("%s(%v)", a.fn, a.arg)
		}
		line("GROUP BY [%s] AGG [%s]  (local partial + hash exchange + final)",
			strings.Join(gs, ", "), strings.Join(as, ", "))
	} else {
		line("PROJECT %v", p.outSchema)
	}
	if len(p.post) > 0 {
		line("FILTER %v", expr.JoinConjuncts(p.post))
	}
	// Joins, innermost last.
	for i := len(p.joins) - 1; i >= 0; i-- {
		j := p.joins[i]
		switch j.kind {
		case joinFUDJ, joinBuiltin:
			line("%s JOIN %s (class %s)", j.kind, j.fudj.def.Name, j.fudj.def.Class)
			indent++
			if len(j.residual) > 0 {
				line("RESIDUAL FILTER %v", expr.JoinConjuncts(j.residual))
			}
			match := "HASH (default match)"
			if !j.fudj.def.New().Descriptor().DefaultMatch {
				match = "THETA (custom match: broadcast + local bucket matching)"
			}
			line("COMBINE: %s, verify, dedup=%v", match, j.fudj.def.New().Descriptor().Dedup)
			line("PARTITION: assign + shuffle by bucket")
			reuse := ""
			if j.fudj.selfJoin {
				reuse = " [self-join: summary reused]"
			}
			line("SUMMARIZE: local agg + global agg + divide%s", reuse)
			line("keys: L=%v R=%v params=%v", j.fudj.leftKey, j.fudj.rightKey, j.fudj.params)
			indent--
		case joinHash:
			line("HASH JOIN on %v = %v", j.hashL, j.hashR)
		case joinNLJ:
			line("NESTED-LOOP JOIN on %v  (broadcast right)", j.cond)
		case joinCross:
			line("CROSS JOIN")
		}
	}
	for i := len(p.scans) - 1; i >= 0; i-- {
		s := p.scans[i]
		if s.filter != nil {
			line("SCAN %s AS %s FILTER %v", s.ref.Dataset, s.ref.Alias, s.filter)
		} else {
			line("SCAN %s AS %s", s.ref.Dataset, s.ref.Alias)
		}
	}
	return sb.String()
}
