package engine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/sched"
	"fudj/internal/types"
)

// blockingBuiltin registers a hand-built spatial_join operator that
// parks until release is closed (or the query's context ends), giving
// admission tests a query whose lifetime they fully control.
func blockingBuiltin(db *Database, release <-chan struct{}) {
	db.RegisterBuiltinJoin("spatial_join", func(c *cluster.Cluster, left cluster.Data, _ expr.Evaluator,
		_ cluster.Data, _ expr.Evaluator, _ []types.Value) (cluster.Data, error) {
		for {
			select {
			case <-release:
				return left, nil
			case <-time.After(time.Millisecond):
				if err := c.Err(); err != nil {
					return nil, err
				}
			}
		}
	})
	db.SetJoinMode(ModeBuiltin)
}

const blockableQuery = `SELECT count(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`

func waitStats(t *testing.T, db *Database, cond func(sched.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(db.SchedulerStats()) {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never reached expected state: %+v", db.SchedulerStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedsOnQueueFull pins the load-shedding contract: with
// one execution slot and one queue slot occupied, the next arrival is
// refused with a retryable *sched.AdmissionError instead of waiting
// without bound.
func TestAdmissionShedsOnQueueFull(t *testing.T) {
	db := newTestDB(t, WithConcurrencyLimit(1), WithQueueDepth(1))
	release := make(chan struct{})
	blockingBuiltin(db, release)

	var wg sync.WaitGroup
	results := make([]error, 2)
	var queuedRes *Result
	wg.Add(1)
	go func() { // occupies the execution slot
		defer wg.Done()
		_, results[0] = db.Execute(blockableQuery)
	}()
	waitStats(t, db, func(st sched.Stats) bool { return st.Running == 1 })

	wg.Add(1)
	go func() { // occupies the queue slot
		defer wg.Done()
		queuedRes, results[1] = db.Execute(blockableQuery)
	}()
	waitStats(t, db, func(st sched.Stats) bool { return st.Waiting == 1 })

	// Third arrival: shed.
	_, err := db.Execute(blockableQuery)
	var adm *sched.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("overflow query returned %v, want *sched.AdmissionError", err)
	}
	if adm.Reason != sched.ReasonQueueFull {
		t.Errorf("Reason = %v, want queue full", adm.Reason)
	}
	if !cluster.IsRetryable(err) {
		t.Error("load-shed admission error must be retryable")
	}

	close(release)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("query %d failed: %v", i, err)
		}
	}
	if queuedRes.Sched.QueueWait <= 0 {
		t.Error("queued query recorded no queue wait")
	}
	if queuedRes.Metrics[MetricSchedQueued] != 1 {
		t.Errorf("sched.queued = %d, want 1", queuedRes.Metrics[MetricSchedQueued])
	}
	st := db.SchedulerStats()
	if st.Admitted != 2 || st.Shed != 1 || st.Running != 0 {
		t.Errorf("scheduler stats = %+v, want 2 admitted, 1 shed, quiescent", st)
	}
}

// TestMemoryLeaseBecomesBudget pins the lease lifecycle: under a
// shared pool the admitted query's budget IS its lease — Result.Sched
// reports it, the metric registry gauges it, and the memory subsystem's
// peak stays under it.
func TestMemoryLeaseBecomesBudget(t *testing.T) {
	const pool = 64 << 20
	db := newTestDB(t, WithMemoryPool(pool), WithConcurrencyLimit(4))
	res := mustQuery(t, db, chaosQueries[0].sql)
	wantLease := int64(pool / 4)
	if res.Sched.LeaseBytes != wantLease {
		t.Fatalf("lease = %d, want pool share %d", res.Sched.LeaseBytes, wantLease)
	}
	if res.Memory.Peak == 0 {
		t.Error("no peak memory recorded — lease did not become the budget")
	}
	if res.Memory.Peak > res.Sched.LeaseBytes {
		t.Errorf("peak memory %d exceeds lease %d", res.Memory.Peak, res.Sched.LeaseBytes)
	}
	if got := res.Metrics[MetricSchedLease+".peak"]; got != wantLease {
		t.Errorf("metric %s.peak = %d, want %d", MetricSchedLease, got, wantLease)
	}
	if st := db.SchedulerStats(); st.LeaseBytes != 0 || st.LeasePeak != wantLease {
		t.Errorf("pool accounting after release = %+v", st)
	}
}

// TestExplicitBudgetIsTheLeaseRequest pins WithMemoryBudget as the
// request size under a pool.
func TestExplicitBudgetIsTheLeaseRequest(t *testing.T) {
	db := newTestDB(t, WithMemoryPool(64<<20), WithMemoryBudget(8<<20))
	res := mustQuery(t, db, chaosQueries[0].sql)
	if res.Sched.LeaseBytes != 8<<20 {
		t.Fatalf("lease = %d, want requested budget %d", res.Sched.LeaseBytes, 8<<20)
	}
}

// TestQueryTimeoutStructuredError pins the timeout contract: a query
// past its per-statement deadline returns a *TimeoutError that wraps
// context.DeadlineExceeded and is NOT retryable (re-running would time
// out again), and its temp state is swept.
func TestQueryTimeoutStructuredError(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t, WithMemoryBudget(64<<20))
	db.MustConfigure(WithFaults(&cluster.FaultConfig{
		Seed:           1,
		StragglerNodes: []int{0, 1},
		StragglerDelay: 400 * time.Millisecond,
	}))
	_, err := db.Execute(chaosQueries[0].sql, Timeout(25*time.Millisecond))
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("TimeoutError must wrap context.DeadlineExceeded")
	}
	if cluster.IsRetryable(err) {
		t.Error("timeout must NOT be retryable")
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after timeout: %s", e.Name())
	}
}

// TestDrainGraceful pins the clean-drain path: in-flight queries
// finish, late arrivals shed with a NON-retryable draining error, and
// the TMPDIR holds no spill or checkpoint remains once Drain returns.
func TestDrainGraceful(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t, WithMemoryBudget(64<<20), WithCheckpoints())
	release := make(chan struct{})
	blockingBuiltin(db, release)

	var inflightErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, inflightErr = db.Execute(blockableQuery)
	}()
	waitStats(t, db, func(st sched.Stats) bool { return st.Running == 1 })

	drained := make(chan error, 1)
	go func() { drained <- db.Drain(context.Background()) }()
	waitStats(t, db, func(st sched.Stats) bool { return st.Draining })

	// Late arrival: shed, not retryable (the DB never admits again).
	_, err := db.Execute(blockableQuery)
	var adm *sched.AdmissionError
	if !errors.As(err, &adm) || adm.Reason != sched.ReasonDraining {
		t.Fatalf("late arrival got %v, want draining AdmissionError", err)
	}
	if cluster.IsRetryable(err) {
		t.Error("draining shed must NOT be retryable")
	}

	// Drain waits for the in-flight query, then returns clean.
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while a query was still running", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	wg.Wait()
	if inflightErr != nil {
		t.Fatalf("in-flight query failed during drain: %v", inflightErr)
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after drain: %s", e.Name())
	}
}

// TestDrainCancelsPastDeadline pins the forced-drain path: a query
// that will not finish is cancelled at the drain deadline, its lease
// and temp state reclaimed, and Drain reports the deadline error.
func TestDrainCancelsPastDeadline(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t, WithMemoryBudget(64<<20))
	release := make(chan struct{}) // never closed: only cancellation ends the query
	blockingBuiltin(db, release)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := db.Execute(blockableQuery); err == nil {
			t.Error("cancelled query reported success")
		}
	}()
	waitStats(t, db, func(st sched.Stats) bool { return st.Running == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := db.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	wg.Wait()
	if st := db.SchedulerStats(); st.Running != 0 || st.LeaseBytes != 0 {
		t.Fatalf("drain returned with work outstanding: %+v", st)
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after forced drain: %s", e.Name())
	}
}

// TestConcurrentExecuteWithMutatorsIsRaceFree is the concurrent-safety
// audit: 8-way concurrent example joins on one Database while another
// goroutine flips every mutable setting mid-flight. Every query must
// return the serial answer (each runs on a point-in-time settings
// snapshot), and under -race this doubles as the data-race sweep over
// catalog, metrics, and fault-injector shared state.
func TestConcurrentExecuteWithMutatorsIsRaceFree(t *testing.T) {
	db := newTestDB(t)
	baseline := make(map[string][]types.Record)
	for _, q := range chaosQueries {
		baseline[q.name] = mustQuery(t, db, q.sql).Rows
	}

	stop := make(chan struct{})
	var mutators sync.WaitGroup
	mutators.Add(1)
	go func() {
		defer mutators.Done()
		// Flip settings that never change query answers: memory budget,
		// checkpoints, smart theta (these queries are equality-bucketed),
		// and a zero-probability fault config.
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.MustConfigure(WithMemoryBudget(int64(i%2) * (64 << 20)))
			db.SetCheckpoints(i%2 == 0)
			db.SetSmartTheta(i%2 == 0)
			if i%2 == 0 {
				db.MustConfigure(WithFaults(&cluster.FaultConfig{Seed: int64(i)}))
			} else {
				db.MustConfigure(WithFaults(nil))
			}
			db.MustConfigure(WithRetryPolicy(chaosRetry()))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				q := chaosQueries[(w+i)%len(chaosQueries)]
				res, err := db.Execute(q.sql)
				if err != nil {
					t.Errorf("worker %d %s: %v", w, q.name, err)
					return
				}
				sameRows(t, fmt.Sprintf("worker %d %s", w, q.name), res.Rows, baseline[q.name])
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	mutators.Wait()
}
