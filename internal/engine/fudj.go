package engine

import (
	"context"
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/expr"
	"fudj/internal/trace"
	"fudj/internal/types"
)

// runFUDJ executes the Fig. 8 FUDJ plan for one join step:
//
//	SUMMARIZE  local aggregate per partition → encoded summaries to the
//	           coordinator → global aggregate → DIVIDE → encoded PPlan
//	           broadcast to all nodes
//	PARTITION  assign each record to buckets (unnest) and shuffle:
//	           hash exchange on bucket id for default-match joins,
//	           broadcast + random partitioning for theta (multi-join)
//	COMBINE    per-bucket candidate pairs → VERIFY → duplicate handling
//
// Records travel through the pipeline extended with two leading
// columns, [bucket_id, key, fields...], so verify never recomputes key
// expressions per candidate pair. Under DedupElimination a third
// leading column carries a globally unique row id.
// When rec is non-nil, the step runs with durable phase barriers: the
// broadcast plan and every partition's post-shuffle input are
// checkpointed, and node deaths injected at a barrier recover from
// those checkpoints (see recover.go) instead of aborting the step.
func (db *Database) runFUDJ(ctx context.Context, clus *cluster.Cluster, counters *statsCounters, mem *memState, rcv *stepRecovery, jsp *trace.Span, f *fudjStep,
	left cluster.Data, leftSchema *types.Schema,
	right cluster.Data, rightSchema *types.Schema, outSchema *types.Schema) (cluster.Data, error) {

	join := f.def.New()
	desc := join.Descriptor()

	lkey, err := expr.Compile(f.leftKey, leftSchema)
	if err != nil {
		return nil, err
	}
	rkey, err := expr.Compile(f.rightKey, rightSchema)
	if err != nil {
		return nil, err
	}
	params := make([]any, len(f.params))
	for i, v := range f.params {
		params[i] = v.Native()
	}

	// ---- SUMMARIZE ----
	sumSpan := jsp.Child("SUMMARIZE")
	prevSpan := clus.SetSpan(sumSpan)
	var shuf0, bcast0 int64
	if sumSpan != nil {
		shuf0, bcast0 = clus.Metrics().BytesShuffled(), clus.Metrics().BytesBroadcast()
	}
	phaseStart := db.clock.Now()
	summarize := func(side core.Side, data cluster.Data, key expr.Evaluator) (core.Summary, error) {
		locals, err := cluster.RunValues(clus, data, func(part int, in []types.Record) (buf []byte, err error) {
			rec := -1
			defer core.CatchPanic(f.def.Name, "summarize", part, &rec, &err)
			s := join.NewSummary(side)
			for i, r := range in {
				rec = i
				v, err := key(r)
				if err != nil {
					return nil, err
				}
				s = join.LocalAggregate(side, v.Native(), s)
			}
			rec = -1
			return join.EncodeSummary(s)
		})
		if err != nil {
			return nil, err
		}
		for part := range data {
			rcv.markDone("summarize", part)
		}
		// Ship the encoded local summaries to the coordinator, then
		// merge them with the global aggregate (guarded: the merge runs
		// user code at the coordinator).
		clus.GatherBytes(locals)
		return func() (global core.Summary, err error) {
			defer core.CatchPanic(f.def.Name, "summarize", -1, nil, &err)
			global = join.NewSummary(side)
			for _, buf := range locals {
				counters.stateBytes.Add(int64(len(buf)))
				s, err := join.DecodeSummary(buf)
				if err != nil {
					return nil, err
				}
				global = join.GlobalAggregate(side, global, s)
			}
			return global, nil
		}()
	}

	ls, err := summarize(core.Left, left, lkey)
	if err != nil {
		return nil, fmt.Errorf("fudj %s: summarize left: %w", f.def.Name, err)
	}
	var rs core.Summary
	if f.selfJoin && desc.SymmetricSummarize {
		rs = ls // self-join optimization: replicate the summary (§VI-C)
	} else {
		rs, err = summarize(core.Right, right, rkey)
		if err != nil {
			return nil, fmt.Errorf("fudj %s: summarize right: %w", f.def.Name, err)
		}
	}

	// ---- DIVIDE ----
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	plan, planBuf, err := func() (plan core.PPlan, planBuf []byte, err error) {
		defer core.CatchPanic(f.def.Name, "divide", -1, nil, &err)
		plan, err = join.Divide(ls, rs, params)
		if err != nil {
			return nil, nil, fmt.Errorf("fudj %s: divide: %w", f.def.Name, err)
		}
		planBuf, err = join.EncodePlan(plan)
		if err != nil {
			return nil, nil, fmt.Errorf("fudj %s: encode plan: %w", f.def.Name, err)
		}
		return plan, planBuf, nil
	}()
	if err != nil {
		return nil, err
	}
	counters.stateBytes.Add(int64(len(planBuf)))
	clus.Broadcast(planBuf)
	// Plan barrier: the broadcast plan becomes durable, and a node
	// killed here re-reads it instead of forcing SUMMARIZE to re-run.
	planBuf, err = planBarrier(clus, rcv, planBuf)
	if err != nil {
		return nil, err
	}
	// Every node decodes its own copy, as it would on a real cluster.
	plan, err = func() (plan core.PPlan, err error) {
		defer core.CatchPanic(f.def.Name, "divide", -1, nil, &err)
		plan, err = join.DecodePlan(planBuf)
		if err != nil {
			return nil, fmt.Errorf("fudj %s: decode plan: %w", f.def.Name, err)
		}
		return plan, nil
	}()
	if err != nil {
		return nil, err
	}

	counters.summarize.Add(int64(db.clock.Now().Sub(phaseStart)))
	if sumSpan != nil {
		sumSpan.Add("rows.in", int64(left.Rows())+int64(right.Rows()))
		sumSpan.Add("state.bytes", int64(len(planBuf)))
		sumSpan.Add("broadcast.bytes", clus.Metrics().BytesBroadcast()-bcast0)
	}
	sumSpan.End()
	partSpan := jsp.Child("PARTITION")
	clus.SetSpan(partSpan)
	phaseStart = db.clock.Now()

	// ---- PARTITION (assign + unnest) ----
	// Records are extended with leading metadata columns:
	//   [bucket_id, key, (meta), original fields...]
	// where meta is a unique row id under DedupElimination, or the full
	// assign list under DedupAvoidance — carrying the list computed here
	// lets the COMBINE phase find the canonical bucket pair without
	// re-running ASSIGN per candidate pair.
	elimination := desc.Dedup == core.DedupElimination
	cacheAssign := desc.Dedup == core.DedupAvoidance
	extraCols := 2
	if elimination || cacheAssign {
		extraCols = 3
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	assign := func(side core.Side, data cluster.Data, key expr.Evaluator) (cluster.Data, error) {
		return clus.Run(data, func(part int, in []types.Record) (out []types.Record, err error) {
			rec := -1
			defer core.CatchPanic(f.def.Name, "assign", part, &rec, &err)
			var ids []core.BucketID
			for i, r := range in {
				rec = i
				v, err := key(r)
				if err != nil {
					return nil, err
				}
				ids = join.Assign(side, v.Native(), plan, ids[:0])
				var meta types.Value
				switch {
				case elimination:
					meta = types.NewInt64(int64(part)<<32 | int64(i))
				case cacheAssign:
					list := make([]types.Value, len(ids))
					for j, id := range ids {
						list[j] = types.NewInt64(int64(id))
					}
					meta = types.NewList(list)
				}
				for _, id := range ids {
					ext := make(types.Record, 0, extraCols+len(r))
					ext = append(ext, types.NewInt64(int64(id)), v)
					if extraCols == 3 {
						ext = append(ext, meta)
					}
					out = append(out, append(ext, r...))
				}
			}
			rcv.markDone("partition", part)
			return out, nil
		})
	}
	lAssigned, err := assign(core.Left, left, lkey)
	if err != nil {
		return nil, fmt.Errorf("fudj %s: assign left: %w", f.def.Name, err)
	}
	rAssigned, err := assign(core.Right, right, rkey)
	if err != nil {
		return nil, fmt.Errorf("fudj %s: assign right: %w", f.def.Name, err)
	}

	counters.partition.Add(int64(db.clock.Now().Sub(phaseStart)))
	partSpan.Add("rows.out", int64(lAssigned.Rows())+int64(rAssigned.Rows()))
	partSpan.End()
	combSpan := jsp.Child("COMBINE")
	clus.SetSpan(combSpan)
	phaseStart = db.clock.Now()

	// ---- COMBINE ----
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	applyDedup := desc.Dedup == core.DedupAvoidance || desc.Dedup == core.DedupCustom

	// accept applies dedup to one verified candidate pair and appends
	// the joined record.
	accept := func(out []types.Record, l, r types.Record) []types.Record {
		b1 := int(l[0].Int64())
		b2 := int(r[0].Int64())
		if cacheAssign {
			// Framework avoidance using the assign lists carried through
			// the partition phase: keep only the canonical bucket pair.
			x, y, ok := core.CanonicalPair(join, listBuckets(l[2]), listBuckets(r[2]))
			if ok && (x != b1 || y != b2) {
				counters.deduped.Add(1)
				return out
			}
		} else if applyDedup && !join.Dedup(b1, l[1].Native(), b2, r[1].Native(), plan) {
			counters.deduped.Add(1)
			return out
		}
		joined := make(types.Record, 0, len(l)+len(r)-2*extraCols+2)
		if elimination {
			joined = append(joined, l[2], r[2]) // row-id pair for distinct
		}
		joined = append(joined, l[extraCols:]...)
		joined = append(joined, r[extraCols:]...)
		return append(out, joined)
	}

	// combineBuckets joins one matched bucket pair, through the join's
	// custom local algorithm when it provides one (§VII-F), or the
	// verify loop otherwise. Both paths read the groups' cached key
	// columns, so no key is boxed more than once per record.
	combineBuckets := func(out []types.Record, b1 int, ls *bucketGroup, b2 int, rs *bucketGroup) []types.Record {
		if desc.LocalJoin {
			counters.candidates.Add(int64(len(ls.recs)) * int64(len(rs.recs)))
			join.LocalJoin(b1, ls.keys, b2, rs.keys, plan, func(i, k int) {
				counters.verified.Add(1)
				out = accept(out, ls.recs[i], rs.recs[k])
			})
			return out
		}
		for i, l := range ls.recs {
			k1 := ls.keys[i]
			for k, r := range rs.recs {
				counters.candidates.Add(1)
				if !join.Verify(b1, k1, b2, rs.keys[k], plan) {
					continue
				}
				counters.verified.Add(1)
				out = accept(out, l, r)
			}
		}
		return out
	}

	var combined cluster.Data
	if desc.DefaultMatch {
		// Single-join: hash partition both sides on bucket id, then a
		// local hash join per partition (the optimizer's hash-join path).
		bucketHash := func(r types.Record) uint64 { return r[0].Hash() }
		lShuf, err := clus.ExchangeHash(lAssigned, bucketHash)
		if err != nil {
			return nil, err
		}
		rShuf, err := clus.ExchangeHash(rAssigned, bucketHash)
		if err != nil {
			return nil, err
		}
		// Shuffle barrier: every partition's bucket inputs are durable.
		// A node killed here reloads its partitions' inputs (or rebuilds
		// them from the surviving pre-shuffle data) and re-runs only
		// those partitions' COMBINE.
		err = shuffleBarrier(rcv,
			shuffleSide{name: "left", data: lShuf, recompute: func(part int) []types.Record {
				return recomputeHashShuffle(lAssigned, bucketHash, part)
			}},
			shuffleSide{name: "right", data: rShuf, recompute: func(part int) []types.Record {
				return recomputeHashShuffle(rAssigned, bucketHash, part)
			}})
		if err != nil {
			return nil, err
		}
		combined, err = clus.Run(lShuf, func(part int, in []types.Record) (out []types.Record, err error) {
			// Registered before CatchPanic so it observes the final err.
			defer func() {
				if err == nil {
					rcv.markDone("combine", part)
				}
			}()
			defer core.CatchPanic(f.def.Name, "combine", part, nil, &err)
			if mem != nil {
				// Memory-bounded hash build: resident buckets join
				// immediately, oversized ones spill and re-join.
				return boundedCombine(mem, f.def.Name, part, in, rShuf[part],
					func(b2 int, _ []int) []int { return []int{b2} }, combineBuckets)
			}
			lBuckets := groupByBucket(in)
			rBuckets := groupByBucket(rShuf[part])
			for _, b := range sortedIDs(lBuckets) {
				if rs, ok := rBuckets[b]; ok {
					out = combineBuckets(out, b, lBuckets[b], b, rs)
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
	} else if db.smartThetaOn() {
		// Balanced theta (the Theta Join Operator proposed as future
		// work in §VIII): the coordinator gathers per-bucket record
		// counts, enumerates the bucket pairs MATCH accepts, assigns
		// each pair to a partition by greedy cost balancing, and records
		// travel only to partitions owning pairs that need them.
		//
		// No durable barrier here: the operator's multicast routing
		// carries mutable round-robin state, so a lost partition's
		// input cannot be recomputed independently of the others; a
		// barrier loss in this mode would fall back to abort-and-rerun
		// anyway, which the per-task retry already provides.
		combined, err = db.runSmartTheta(clus, mem, join, combineBuckets, lAssigned, rAssigned)
		if err != nil {
			return nil, err
		}
	} else {
		// Naive theta (the paper's measured configuration, §VII-C): no
		// partitioning property helps, so one side is broadcast and the
		// other randomly partitioned, then buckets are matched pairwise
		// through MATCH locally.
		lRepl, err := clus.Replicate(lAssigned)
		if err != nil {
			return nil, err
		}
		rRand, err := clus.ExchangeRandom(rAssigned)
		if err != nil {
			return nil, err
		}
		// Shuffle barrier for the theta layout: the replicated build
		// side and the randomly partitioned probe side are both durable
		// per partition.
		err = shuffleBarrier(rcv,
			shuffleSide{name: "left", data: lRepl, recompute: func(int) []types.Record {
				return recomputeReplicate(lAssigned)
			}},
			shuffleSide{name: "right", data: rRand, recompute: func(part int) []types.Record {
				return recomputeRandomShuffle(rAssigned, part)
			}})
		if err != nil {
			return nil, err
		}
		combined, err = clus.Run(rRand, func(part int, in []types.Record) (out []types.Record, err error) {
			// Registered before CatchPanic so it observes the final err.
			defer func() {
				if err == nil {
					rcv.markDone("combine", part)
				}
			}()
			defer core.CatchPanic(f.def.Name, "combine", part, nil, &err)
			if mem != nil {
				// Memory-bounded theta match table: the broadcast (build)
				// side is budget-governed; MATCH decisions are memoized
				// per probe bucket so the call count matches the
				// unbounded pairwise sweep.
				matchCache := make(map[int][]int)
				matcher := func(b2 int, buildIDs []int) []int {
					if m, ok := matchCache[b2]; ok {
						return m
					}
					var m []int
					for _, b1 := range buildIDs {
						if join.Match(b1, b2) {
							m = append(m, b1)
						}
					}
					matchCache[b2] = m
					return m
				}
				return boundedCombine(mem, f.def.Name, part, lRepl[part], in, matcher, combineBuckets)
			}
			lBuckets := groupByBucket(lRepl[part])
			rBuckets := groupByBucket(in)
			lIDs := sortedIDs(lBuckets)
			rIDs := sortedIDs(rBuckets)
			for _, b1 := range lIDs {
				for _, b2 := range rIDs {
					if !join.Match(b1, b2) {
						continue
					}
					out = combineBuckets(out, b1, lBuckets[b1], b2, rBuckets[b2])
				}
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
	}

	// ---- duplicate elimination stage (only DedupElimination) ----
	if elimination {
		distinct, err := clus.ExchangeHash(combined, func(r types.Record) uint64 {
			return r[0].Hash() ^ (r[1].Hash() * 0x9e3779b97f4a7c15)
		})
		if err != nil {
			return nil, err
		}
		combined, err = clus.Run(distinct, func(_ int, in []types.Record) ([]types.Record, error) {
			seen := make(map[[2]int64]bool, len(in))
			var out []types.Record
			for _, rec := range in {
				pair := [2]int64{rec[0].Int64(), rec[1].Int64()}
				if seen[pair] {
					counters.deduped.Add(1)
					continue
				}
				seen[pair] = true
				out = append(out, rec[2:])
			}
			return out, nil
		})
		if err != nil {
			return nil, err
		}
	}

	counters.combine.Add(int64(db.clock.Now().Sub(phaseStart)))
	if combSpan != nil {
		combSpan.Add("rows.out", int64(combined.Rows()))
		combSpan.Add("shuffle.bytes", clus.Metrics().BytesShuffled()-shuf0)
	}
	combSpan.End()
	clus.SetSpan(prevSpan)
	counters.joinOutput.Add(int64(combined.Rows()))
	if got, want := schemaWidth(combined), outSchema.Len(); got >= 0 && got != want {
		return nil, fmt.Errorf("fudj %s: joined record has %d fields, schema wants %d", f.def.Name, got, want)
	}
	return combined, nil
}

// listBuckets decodes a cached assign list column.
func listBuckets(v types.Value) []core.BucketID {
	list := v.List()
	out := make([]core.BucketID, len(list))
	for i, e := range list {
		out[i] = int(e.Int64())
	}
	return out
}

// schemaWidth returns the field count of the first record, or -1 when
// the data is empty.
func schemaWidth(d cluster.Data) int {
	for _, p := range d {
		if len(p) > 0 {
			return len(p[0])
		}
	}
	return -1
}
