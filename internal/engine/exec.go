package engine

import (
	"context"
	"fmt"
	"sort"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/expr"
	"fudj/internal/sched"
	"fudj/internal/storage"
	"fudj/internal/trace"
	"fudj/internal/types"
)

// run executes a planned query on a fresh cluster instance. When
// tracing is enabled it grows a span tree mirroring the executed plan
// (query → operator → phase → partition task); all timing flows
// through the database's injected clock, never time.Now. The mutable
// database settings are snapshotted once at the top, so a concurrent
// Set* call never changes a query mid-flight. The admission ticket
// carries the query's memory lease: under a shared pool it overrides
// the configured per-query budget (the lease IS the budget).
func (p *queryPlan) run(ctx context.Context, db *Database, eo execOpts, ticket *sched.Ticket) (*Result, error) {
	set := db.settings()
	start := db.clock.Now()
	var root *trace.Span
	if eo.trace {
		root = trace.NewSpan(db.clock, "query")
	}
	clus := cluster.New(set.clusterCfg)
	clus.SetClock(db.clock)
	clus.SetSpan(root)
	clus.SetContext(ctx)
	clus.SetBatchSize(set.batchSize)
	if set.retryPol != nil {
		clus.SetRetryPolicy(*set.retryPol)
	}
	if set.faultCfg != nil {
		// A fresh injector per query: fault decisions depend only on the
		// seed and the fault site, so re-running the query replays the
		// exact same failures.
		clus.SetFaults(cluster.NewFaultInjector(*set.faultCfg))
	}
	counters := &statsCounters{}

	// Memory-bounded execution: split the query budget over partitions,
	// bound the shuffle inboxes, and stand up the spill directory the
	// COMBINE phases degrade into when a build exceeds its share. The
	// budget is the admission lease when a pool granted one.
	budget := set.memBudget
	if ticket != nil && ticket.Lease() > 0 {
		budget = ticket.Lease()
	}
	var mem *memState
	if budget > 0 {
		clus.SetMemoryBudget(budget)
		var cleanup func()
		var err error
		mem, cleanup, err = newMemState(clus)
		if err != nil {
			return nil, err
		}
		defer cleanup()
	}

	// Checkpointed execution: with WithCheckpoints, a per-query
	// checkpoint store makes the FUDJ phase barriers durable; the store
	// is swept at teardown so no checkpoint file outlives its query.
	// Without checkpoints, a recovery manager is still attached when
	// kill-at-barrier faults are armed, so barrier losses surface as
	// retryable step aborts (the abort-and-rerun baseline).
	var rm *cluster.RecoveryManager
	if set.ckpt {
		store, err := storage.NewCheckpointStore()
		if err != nil {
			return nil, err
		}
		rm = clus.NewRecoveryManager(store)
		defer rm.Sweep()
	} else if set.faultCfg != nil && (set.faultCfg.BarrierKillProb > 0 || len(set.faultCfg.BarrierKills) > 0) {
		rm = clus.NewRecoveryManager(nil)
	}

	// Scans with pushed-down filters.
	inputs := make([]cluster.Data, len(p.scans))
	schemas := make([]*types.Schema, len(p.scans))
	for i, s := range p.scans {
		sp := root.Child("scan " + s.ref.Dataset)
		prev := clus.SetSpan(sp)
		data := clus.Scatter(s.ds.Records)
		if s.filter != nil {
			pred, err := expr.Compile(s.filter, s.schema)
			if err != nil {
				return nil, err
			}
			data, err = filterData(clus, data, pred)
			if err != nil {
				return nil, err
			}
		}
		sp.Add("rows.out", int64(data.Rows()))
		sp.End()
		clus.SetSpan(prev)
		inputs[i] = data
		schemas[i] = s.schema
	}

	// Left-deep joins.
	cur := inputs[0]
	curSchema := schemas[0]
	for i, step := range p.joins {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		right := inputs[i+1]
		rightSchema := schemas[i+1]
		outSchema := curSchema.Concat(rightSchema)
		name := "join " + step.kind.String()
		if step.fudj != nil {
			name += " " + step.fudj.def.Name
		}
		jsp := root.Child(name)
		prev := clus.SetSpan(jsp)
		jsp.Add("rows.in", int64(cur.Rows())+int64(right.Rows()))
		var err error
		switch step.kind {
		case joinFUDJ:
			cur, err = db.runFUDJRecoverable(ctx, clus, counters, mem, rm, i, jsp, step.fudj, cur, curSchema, right, rightSchema, outSchema)
		case joinBuiltin:
			cur, err = db.runBuiltinJoin(clus, counters, step.fudj, cur, curSchema, right, rightSchema)
		case joinHash:
			cur, err = runHashJoin(clus, counters, step, cur, curSchema, right, rightSchema)
		case joinNLJ:
			cur, err = runNLJ(clus, counters, step.cond, cur, curSchema, right, rightSchema, outSchema)
		case joinCross:
			cur, err = runNLJ(clus, counters, nil, cur, curSchema, right, rightSchema, outSchema)
		default:
			err = fmt.Errorf("engine: unknown join kind %v", step.kind)
		}
		if err != nil {
			return nil, err
		}
		curSchema = outSchema
		if len(step.residual) > 0 {
			pred, err := expr.Compile(expr.JoinConjuncts(step.residual), curSchema)
			if err != nil {
				return nil, err
			}
			if cur, err = filterData(clus, cur, pred); err != nil {
				return nil, err
			}
		}
		jsp.Add("rows.out", int64(cur.Rows()))
		jsp.End()
		clus.SetSpan(prev)
	}

	// Residual filter.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(p.post) > 0 {
		fsp := root.Child("filter")
		prev := clus.SetSpan(fsp)
		pred, err := expr.Compile(expr.JoinConjuncts(p.post), curSchema)
		if err != nil {
			return nil, err
		}
		if cur, err = filterData(clus, cur, pred); err != nil {
			return nil, err
		}
		fsp.Add("rows.out", int64(cur.Rows()))
		fsp.End()
		clus.SetSpan(prev)
	}

	// Aggregation or projection.
	outName := "project"
	if len(p.aggs) > 0 || len(p.groupBy) > 0 {
		outName = "aggregate"
	}
	osp := root.Child(outName)
	prevOut := clus.SetSpan(osp)
	var rows []types.Record
	var err error
	if len(p.aggs) > 0 || len(p.groupBy) > 0 {
		rows, err = p.runGroupBy(clus, cur, curSchema)
		if err == nil && p.having != nil {
			rows, err = p.filterRows(rows)
		}
	} else {
		rows, err = p.runProject(clus, cur, curSchema)
	}
	if err != nil {
		return nil, err
	}
	if p.distinct {
		rows = distinctRows(rows)
	}

	// Order and limit at the coordinator.
	if len(p.orderBy) > 0 {
		if err := p.sortRows(rows); err != nil {
			return nil, err
		}
	}
	if p.limit >= 0 && len(rows) > p.limit {
		rows = rows[:p.limit]
	}
	osp.Add("rows.out", int64(len(rows)))
	osp.End()
	clus.SetSpan(prevOut)
	root.End()

	// Flush the engine's hot-path counters into the registry, then take
	// one consistent snapshot of every cluster counter (a field-by-field
	// read could mix epochs if anything were still in flight).
	reg := clus.Metrics()
	counters.flush(reg)
	var schedStats SchedStats
	if ticket != nil {
		stampSched(reg, root, ticket, db.sched.Stats())
		schedStats = SchedStats{
			QueueWait:  ticket.Wait(),
			LeaseBytes: ticket.Lease(),
			Priority:   ticket.Priority(),
		}
	}
	m := reg.Snapshot()
	join := counters.snapshot()
	join.Batches = m.Batches
	join.BatchRows = m.BatchRows
	join.BatchPoolGets = m.BatchPoolGets
	join.BatchPoolHits = m.BatchPoolHits
	res := &Result{
		Schema:  p.outSchema,
		Rows:    rows,
		Plan:    p.explain(),
		Elapsed: db.clock.Now().Sub(start),
		Join:    join,
		Cluster: ClusterStats{
			BytesShuffled:   m.BytesShuffled,
			RecordsShuffled: m.RecordsShuffled,
			BytesBroadcast:  m.BytesBroadcast,
			Tasks:           m.Tasks,
			MaxBusy:         m.MaxBusy,
			TotalBusy:       m.TotalBusy,
		},
		Faults: FaultStats{
			Retries:              m.Retries,
			Recovered:            m.Recovered,
			Speculative:          m.Speculative,
			CorruptionsHealed:    m.CorruptHealed,
			BarrierKills:         m.BarrierKills,
			CheckpointBytes:      m.CheckpointBytes,
			PartitionsRecovered:  m.CheckpointRecovered,
			CheckpointsDiscarded: m.CheckpointDiscarded,
		},
		Memory: MemoryStats{
			Peak:         m.PeakMemory,
			PeakInput:    m.PeakInput,
			BytesSpilled: m.BytesSpilled,
			SpillRuns:    m.SpillRuns,
			BucketsSplit: m.BucketsSplit,
			Backpressure: m.Backpressure,
		},
		Sched:   schedStats,
		Trace:   root,
		Metrics: reg.Values(),
	}
	return res, nil
}

// run is invoked from Database.ExecuteStmt.
func (db *Database) run(ctx context.Context, p *queryPlan, eo execOpts, ticket *sched.Ticket) (*Result, error) {
	return p.run(ctx, db, eo, ticket)
}

func filterData(clus *cluster.Cluster, data cluster.Data, pred expr.Evaluator) (cluster.Data, error) {
	return clus.Run(data, func(_ int, in []types.Record) ([]types.Record, error) {
		var out []types.Record
		for _, rec := range in {
			v, err := pred(rec)
			if err != nil {
				return nil, err
			}
			if v.Kind() == types.KindBool && v.Bool() {
				out = append(out, rec)
			}
		}
		return out, nil
	})
}

// runNLJ is the on-top strategy: broadcast the smaller side,
// nested-loop locally with the full predicate (nil predicate = cross
// join). Output columns keep the left-then-right order regardless of
// which side was broadcast.
func runNLJ(clus *cluster.Cluster, counters *statsCounters, cond expr.Expr,
	left cluster.Data, leftSchema *types.Schema,
	right cluster.Data, rightSchema *types.Schema, outSchema *types.Schema) (cluster.Data, error) {

	var pred expr.Evaluator
	if cond != nil {
		var err error
		pred, err = expr.Compile(cond, outSchema)
		if err != nil {
			return nil, err
		}
	}
	// Broadcast the smaller input so network volume and per-partition
	// build size stay bounded by min(|L|, |R|).
	broadcastLeft := left.Rows() < right.Rows()
	small, big := right, left
	if broadcastLeft {
		small, big = left, right
	}
	replicated, err := clus.Replicate(small)
	if err != nil {
		return nil, err
	}
	lw := leftSchema.Len()
	return clus.Run(big, func(part int, in []types.Record) ([]types.Record, error) {
		var out []types.Record
		smallRecs := replicated[part]
		pair := make(types.Record, leftSchema.Len()+rightSchema.Len())
		for _, b := range in {
			if broadcastLeft {
				copy(pair[lw:], b)
			} else {
				copy(pair, b)
			}
			for _, s := range smallRecs {
				if broadcastLeft {
					copy(pair[:lw], s)
				} else {
					copy(pair[lw:], s)
				}
				counters.candidates.Add(1)
				if pred != nil {
					v, err := pred(pair)
					if err != nil {
						return nil, err
					}
					if v.Kind() != types.KindBool || !v.Bool() {
						continue
					}
				}
				counters.verified.Add(1)
				counters.joinOutput.Add(1)
				out = append(out, pair.Clone())
			}
		}
		return out, nil
	})
}

// runHashJoin shuffles both sides by key hash and joins locally.
func runHashJoin(clus *cluster.Cluster, counters *statsCounters, step joinStep,
	left cluster.Data, leftSchema *types.Schema,
	right cluster.Data, rightSchema *types.Schema) (cluster.Data, error) {

	lkey, err := expr.Compile(step.hashL, leftSchema)
	if err != nil {
		return nil, err
	}
	rkey, err := expr.Compile(step.hashR, rightSchema)
	if err != nil {
		return nil, err
	}
	hashOf := func(ev expr.Evaluator) func(types.Record) uint64 {
		return func(r types.Record) uint64 {
			v, err := ev(r)
			if err != nil {
				return 0
			}
			return v.Hash()
		}
	}
	lShuf, err := clus.ExchangeHash(left, hashOf(lkey))
	if err != nil {
		return nil, err
	}
	rShuf, err := clus.ExchangeHash(right, hashOf(rkey))
	if err != nil {
		return nil, err
	}
	return clus.Run(lShuf, func(part int, in []types.Record) ([]types.Record, error) {
		// Build on the right partition.
		build := make(map[uint64][]types.Record)
		keys := make(map[uint64][]types.Value)
		for _, r := range rShuf[part] {
			v, err := rkey(r)
			if err != nil {
				return nil, err
			}
			h := v.Hash()
			build[h] = append(build[h], r)
			keys[h] = append(keys[h], v)
		}
		var out []types.Record
		for _, l := range in {
			v, err := lkey(l)
			if err != nil {
				return nil, err
			}
			h := v.Hash()
			for i, r := range build[h] {
				counters.candidates.Add(1)
				if !v.Equal(keys[h][i]) {
					continue
				}
				counters.verified.Add(1)
				counters.joinOutput.Add(1)
				joined := make(types.Record, 0, len(l)+len(r))
				joined = append(append(joined, l...), r...)
				out = append(out, joined)
			}
		}
		return out, nil
	})
}

// runBuiltinJoin dispatches to a registered hand-built operator.
func (db *Database) runBuiltinJoin(clus *cluster.Cluster, counters *statsCounters, f *fudjStep,
	left cluster.Data, leftSchema *types.Schema,
	right cluster.Data, rightSchema *types.Schema) (out cluster.Data, err error) {

	op, ok := db.builtin(f.def.Name)
	if !ok {
		return nil, fmt.Errorf("engine: no built-in operator registered for %q", f.def.Name)
	}
	lkey, err := expr.Compile(f.leftKey, leftSchema)
	if err != nil {
		return nil, err
	}
	rkey, err := expr.Compile(f.rightKey, rightSchema)
	if err != nil {
		return nil, err
	}
	defer core.CatchPanic(f.def.Name, "builtin", -1, nil, &err)
	out, err = op(clus, left, lkey, right, rkey, f.params)
	if err != nil {
		return nil, err
	}
	counters.joinOutput.Add(int64(out.Rows()))
	return out, nil
}

// runProject evaluates the projection list per partition and gathers.
func (p *queryPlan) runProject(clus *cluster.Cluster, data cluster.Data, schema *types.Schema) ([]types.Record, error) {
	evals := make([]expr.Evaluator, len(p.cols))
	for i, c := range p.cols {
		ev, err := expr.Compile(c.e, schema)
		if err != nil {
			return nil, err
		}
		evals[i] = ev
	}
	out, err := clus.Run(data, func(_ int, in []types.Record) ([]types.Record, error) {
		res := make([]types.Record, 0, len(in))
		for _, rec := range in {
			row := make(types.Record, len(evals))
			for i, ev := range evals {
				v, err := ev(rec)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			res = append(res, row)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return out.Flatten(), nil
}

// filterRows applies the (rewritten) HAVING predicate over the
// aggregation output at the coordinator.
func (p *queryPlan) filterRows(rows []types.Record) ([]types.Record, error) {
	pred, err := expr.Compile(p.having, p.outSchema)
	if err != nil {
		return nil, err
	}
	out := rows[:0]
	for _, row := range rows {
		v, err := pred(row)
		if err != nil {
			return nil, err
		}
		if v.Kind() == types.KindBool && v.Bool() {
			out = append(out, row)
		}
	}
	return out, nil
}

// distinctRows removes duplicate output rows, preserving first-seen
// order.
func distinctRows(rows []types.Record) []types.Record {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, row := range rows {
		key := string(types.EncodeRecords([]types.Record{row}))
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, row)
	}
	return out
}

// sortRows orders the final rows by the ORDER BY keys, which are
// compiled against the output schema (so projection aliases work).
func (p *queryPlan) sortRows(rows []types.Record) error {
	evals := make([]expr.Evaluator, len(p.orderBy))
	for i, o := range p.orderBy {
		ev, err := expr.Compile(o.e, p.outSchema)
		if err != nil {
			return err
		}
		evals[i] = ev
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, ev := range evals {
			vi, err := ev(rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := ev(rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c := vi.Compare(vj)
			if c == 0 {
				continue
			}
			if p.orderBy[k].desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}
