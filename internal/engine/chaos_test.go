package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/types"
)

// chaosConfig is the acceptance configuration: 20% task crashes, one
// straggler node, 5% shuffle corruption — all deterministic per seed.
func chaosConfig(seed int64) *cluster.FaultConfig {
	return &cluster.FaultConfig{
		Seed:           seed,
		CrashProb:      0.2,
		StragglerNodes: []int{1},
		StragglerDelay: 15 * time.Millisecond,
		CorruptProb:    0.05,
	}
}

// chaosRetry gives the injector room to recover: more attempts than the
// default, fast backoff, and speculation armed well under the injected
// straggler delay.
func chaosRetry() cluster.RetryPolicy {
	return cluster.RetryPolicy{
		MaxAttempts:      8,
		BaseBackoff:      50 * time.Microsecond,
		MaxBackoff:       time.Millisecond,
		SpeculativeAfter: 3 * time.Millisecond,
	}
}

var chaosQueries = []struct {
	name string
	sql  string
}{
	{"spatial", `
		SELECT p.id, w.id FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)`},
	{"textsim", `
		SELECT r1.id, r2.id FROM reviews r1, reviews r2
		WHERE r1.overall = 5 AND r2.overall = 4
		  AND text_similarity_join(r1.review, r2.review, 0.8)`},
	{"interval", `
		SELECT n1.id, n2.id FROM rides n1, rides n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		  AND overlapping_interval(n1.ride_interval, n2.ride_interval, 50)`},
}

// TestChaosEquivalence is the headline fault-tolerance property: under
// injected crashes, a straggler node, and shuffle corruption, every
// example join must produce results identical to a fault-free run.
func TestChaosEquivalence(t *testing.T) {
	db := newTestDB(t)
	baseline := make(map[string][]types.Record)
	for _, q := range chaosQueries {
		res := mustQuery(t, db, q.sql)
		if len(res.Rows) == 0 {
			t.Fatalf("%s: baseline produced no rows", q.name)
		}
		baseline[q.name] = res.Rows
	}

	db.MustConfigure(WithFaults(chaosConfig(1)))
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	var healed int64
	for _, q := range chaosQueries {
		res := mustQuery(t, db, q.sql)
		sameRows(t, q.name+" under chaos", res.Rows, baseline[q.name])
		if res.Faults.Retries == 0 {
			t.Errorf("%s: no retries at crash p=0.2 — injection not wired through", q.name)
		}
		if res.Faults.Recovered == 0 {
			t.Errorf("%s: no recovered tasks", q.name)
		}
		healed += res.Faults.CorruptionsHealed
		t.Logf("%s: retries=%d recovered=%d speculative=%d healed=%d",
			q.name, res.Faults.Retries, res.Faults.Recovered, res.Faults.Speculative, res.Faults.CorruptionsHealed)
	}
	if healed == 0 {
		t.Error("no corrupted shuffle payloads were healed across the suite at p=0.05")
	}
}

// TestChaosDeterminism pins the injector contract: the same seed
// replays the same faults, so two chaos runs agree with each other.
func TestChaosDeterminism(t *testing.T) {
	db := newTestDB(t)
	db.MustConfigure(WithFaults(chaosConfig(777)))
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	first := mustQuery(t, db, chaosQueries[0].sql)
	second := mustQuery(t, db, chaosQueries[0].sql)
	sameRows(t, "chaos determinism", first.Rows, second.Rows)
}

// TestChaosDisarm verifies a nil fault config turns injection back off.
func TestChaosDisarm(t *testing.T) {
	db := newTestDB(t)
	db.MustConfigure(WithFaults(chaosConfig(1)))
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	if res := mustQuery(t, db, chaosQueries[2].sql); res.Faults.Retries == 0 {
		t.Fatal("armed run saw no retries")
	}
	db.MustConfigure(WithFaults(nil))
	if res := mustQuery(t, db, chaosQueries[2].sql); res.Faults.Retries != 0 {
		t.Errorf("disarmed run still retried %d times", res.Faults.Retries)
	}
}

// awaitGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers), failing on timeout — the
// leak check for cancelled queries.
func awaitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<18)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d running, started with %d\n%s",
				runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestQueryDeadlineExpired(t *testing.T) {
	db := newTestDB(t)
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := db.ExecuteContext(ctx, chaosQueries[0].sql)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Error("expired query returned a result")
	}
	awaitGoroutines(t, base)
}

func TestQueryDeadlineMidFlight(t *testing.T) {
	db := newTestDB(t)
	base := runtime.NumGoroutine()
	// Both nodes straggle for 400ms with no speculation: the query can
	// only finish by blowing its 30ms deadline inside the injected delay.
	db.MustConfigure(WithFaults(&cluster.FaultConfig{
		Seed:           1,
		StragglerNodes: []int{0, 1},
		StragglerDelay: 400 * time.Millisecond,
	}))
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := db.ExecuteContext(ctx, chaosQueries[0].sql)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("deadline did not abort the injected delay: elapsed %v", elapsed)
	}
	awaitGoroutines(t, base)
}

func TestQueryCancelMidFlight(t *testing.T) {
	db := newTestDB(t)
	base := runtime.NumGoroutine()
	db.MustConfigure(WithFaults(&cluster.FaultConfig{
		Seed:           1,
		StragglerNodes: []int{0, 1},
		StragglerDelay: 400 * time.Millisecond,
	}))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(25 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := db.ExecuteContext(ctx, chaosQueries[0].sql)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("cancellation did not abort the injected delay: elapsed %v", elapsed)
	}
	awaitGoroutines(t, base)
}

// panicLibrary builds joins that blow up in a chosen phase, to prove
// the engine converts UDF panics into structured errors instead of
// crashing the process.
func panicLibrary() *core.Library {
	base := func(name string) core.Spec[int64, int64, int64, int64] {
		return core.Spec[int64, int64, int64, int64]{
			Name:       name,
			NewSummary: func() int64 { return 0 },
			LocalAggLeft: func(key int64, s int64) int64 {
				if s < key {
					return key
				}
				return s
			},
			GlobalAgg: func(a, b int64) int64 {
				if a < b {
					return b
				}
				return a
			},
			Divide:     func(left, right int64, params []any) (int64, error) { return left + right, nil },
			AssignLeft: func(key int64, plan int64, dst []core.BucketID) []core.BucketID { return append(dst, 0) },
			Verify:     func(b1 core.BucketID, l int64, b2 core.BucketID, r int64, plan int64) bool { return l == r },
		}
	}
	lib := core.NewLibrary("paniclib")
	s := base("panic_verify")
	s.Verify = func(core.BucketID, int64, core.BucketID, int64, int64) bool { panic("verify boom") }
	lib.MustRegister("test.PanicVerify", func() core.Join { return core.Wrap(s) })
	a := base("panic_assign")
	a.AssignLeft = func(int64, int64, []core.BucketID) []core.BucketID { panic("assign boom") }
	lib.MustRegister("test.PanicAssign", func() core.Join { return core.Wrap(a) })
	d := base("panic_divide")
	d.Divide = func(int64, int64, []any) (int64, error) { panic("divide boom") }
	lib.MustRegister("test.PanicDivide", func() core.Join { return core.Wrap(d) })
	g := base("panic_summarize")
	g.LocalAggLeft = func(int64, int64) int64 { panic("summarize boom") }
	lib.MustRegister("test.PanicSummarize", func() core.Join { return core.Wrap(g) })
	return lib
}

func TestUDFPanicIsolation(t *testing.T) {
	db := newTestDB(t)
	if err := db.InstallLibrary(panicLibrary()); err != nil {
		t.Fatal(err)
	}
	ddl := []string{
		`CREATE JOIN panic_verify(a: int, b: int) RETURNS boolean AS "test.PanicVerify" AT paniclib`,
		`CREATE JOIN panic_assign(a: int, b: int) RETURNS boolean AS "test.PanicAssign" AT paniclib`,
		`CREATE JOIN panic_divide(a: int, b: int) RETURNS boolean AS "test.PanicDivide" AT paniclib`,
		`CREATE JOIN panic_summarize(a: int, b: int) RETURNS boolean AS "test.PanicSummarize" AT paniclib`,
	}
	for _, stmt := range ddl {
		if _, err := db.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	cases := []struct {
		join      string
		phase     string
		text      string
		atCoord   bool // panic happens at the coordinator (partition -1)
		hasRecord bool // panic is attributed to a record index
	}{
		{"panic_summarize", "summarize", "summarize boom", false, true},
		{"panic_divide", "divide", "divide boom", true, false},
		{"panic_assign", "assign", "assign boom", false, true},
		{"panic_verify", "combine", "verify boom", false, false},
	}
	for _, tc := range cases {
		sql := `SELECT n1.id FROM rides n1, rides n2 WHERE ` + tc.join + `(n1.vendor, n2.vendor)`
		_, err := db.Execute(sql)
		if err == nil {
			t.Fatalf("%s: query succeeded through a panicking UDF", tc.join)
		}
		var ue *core.UDFError
		if !errors.As(err, &ue) {
			t.Fatalf("%s: error is not a *core.UDFError: %v", tc.join, err)
		}
		if ue.Phase != tc.phase {
			t.Errorf("%s: phase = %q, want %q", tc.join, ue.Phase, tc.phase)
		}
		if ue.Join != tc.join {
			t.Errorf("%s: join name = %q", tc.join, ue.Join)
		}
		if tc.atCoord && ue.Partition != -1 {
			t.Errorf("%s: partition = %d, want -1 (coordinator)", tc.join, ue.Partition)
		}
		if !tc.atCoord && ue.Partition < 0 {
			t.Errorf("%s: partition = %d, want a task partition", tc.join, ue.Partition)
		}
		if tc.hasRecord && ue.Record < 0 {
			t.Errorf("%s: record = %d, want the failing record index", tc.join, ue.Record)
		}
		if !strings.Contains(err.Error(), tc.text) {
			t.Errorf("%s: message %q should contain %q", tc.join, err.Error(), tc.text)
		}
		if ue.Stack == "" {
			t.Errorf("%s: no stack captured", tc.join)
		}
	}
}

// TestUDFPanicNotRetried pins that deterministic UDF panics fail fast
// instead of burning the retry budget.
func TestUDFPanicNotRetried(t *testing.T) {
	db := newTestDB(t)
	if err := db.InstallLibrary(panicLibrary()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN panic_assign2(a: int, b: int) RETURNS boolean AS "test.PanicAssign" AT paniclib`); err != nil {
		t.Fatal(err)
	}
	db.MustConfigure(WithRetryPolicy(cluster.RetryPolicy{MaxAttempts: 8, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}))
	_, err := db.Execute(`SELECT n1.id FROM rides n1, rides n2 WHERE panic_assign2(n1.vendor, n2.vendor)`)
	if err == nil {
		t.Fatal("query should fail")
	}
	if strings.Contains(err.Error(), "gave up after") {
		t.Errorf("UDF panic was retried: %v", err)
	}
}
