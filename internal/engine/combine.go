// COMBINE bucket groups: the batch-native unit the match/verify loops
// operate on. A bucketGroup pairs one bucket's records with a parallel
// column of their join keys already unboxed via Native(), so the
// O(|ls|·|rs|) verify loop touches a prebuilt key vector instead of
// re-boxing r[1].Native() for every candidate pair — the allocation
// that dominated the record-at-a-time hot path.
package engine

import (
	"sort"

	"fudj/internal/types"
)

// bucketGroup is one bucket's records with their join keys cached in a
// parallel column. keys[i] is recs[i][1].Native(), computed exactly
// once when the record enters the group.
type bucketGroup struct {
	recs []types.Record
	keys []any
}

// add appends one extended record, caching its key.
func (g *bucketGroup) add(r types.Record) {
	g.recs = append(g.recs, r)
	g.keys = append(g.keys, r[1].Native())
}

// singleGroup wraps one probe record as a group, for the streaming
// probe paths that join one record at a time against a build bucket.
func singleGroup(r types.Record) *bucketGroup {
	return &bucketGroup{recs: []types.Record{r}, keys: []any{r[1].Native()}}
}

// groupByBucket groups extended records by their bucket id (column 0),
// caching each record's key as it lands in its group.
func groupByBucket(recs []types.Record) map[int]*bucketGroup {
	out := make(map[int]*bucketGroup)
	for _, r := range recs {
		id := int(r[0].Int64())
		g := out[id]
		if g == nil {
			g = &bucketGroup{}
			out[id] = g
		}
		g.add(r)
	}
	return out
}

// sortedIDs returns a bucket map's ids in ascending order, so map
// iteration order never leaks into result order.
func sortedIDs[T any](m map[int]T) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
