package engine

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/sched"
)

// waitRunning polls until the scheduler reports at least one running
// query, failing the test if none shows up within the budget.
func waitRunning(t *testing.T, db *Database) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if db.SchedulerStats().Running >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("query never started running")
}

// TestDrainRacesCheckpointRecovery races DB.Drain against a query that
// is mid-recovery: a kill-at-barrier fault fires, checkpointed recovery
// begins (slowed by a straggler so the race window is real), and then
// drain starts while the query is still in flight. The in-flight query
// must either finish with the fault-free answer — having actually
// recovered partitions from checkpoint — or abort retryably; either
// way the drain completes, no memory lease leaks, LeasePeak stays
// within the pool, late arrivals are shed with the non-retryable
// in-process drain error, and TMPDIR is swept clean.
func TestDrainRacesCheckpointRecovery(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t)
	base := mustQuery(t, db, chaosQueries[0].sql)

	db.SetCheckpoints(true)
	cfg := barrierKillConfig(cluster.BarrierShuffle, 1)
	cfg.StragglerNodes = []int{0}
	cfg.StragglerDelay = 30 * time.Millisecond
	db.MustConfigure(WithFaults(cfg))
	db.MustConfigure(WithRetryPolicy(chaosRetry()))

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := db.Execute(chaosQueries[0].sql)
		done <- outcome{res, err}
	}()

	// Start the drain once the query is admitted; the straggler delay
	// keeps it in flight (and its recovery in progress) past this point.
	waitRunning(t, db)
	drainErr := make(chan error, 1)
	go func() { drainErr <- db.Drain(context.Background()) }()

	o := <-done
	if o.err != nil {
		// Acceptable only if the abort is retryable — a client could
		// resubmit elsewhere. A non-retryable abort would turn a drain
		// into data-dependent query failure.
		if !cluster.IsRetryable(o.err) {
			t.Fatalf("in-flight query aborted non-retryably during drain: %v", o.err)
		}
		t.Logf("query aborted retryably during drain: %v", o.err)
	} else {
		sameRows(t, "drain-raced recovery", o.res.Rows, base.Rows)
		if o.res.Faults.BarrierKills == 0 {
			t.Error("no barrier kill fired — the race never exercised recovery")
		}
		if o.res.Faults.PartitionsRecovered == 0 {
			t.Error("no partitions recovered from checkpoint during the drain race")
		}
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}

	st := db.SchedulerStats()
	if !st.Draining {
		t.Error("scheduler not marked draining after Drain returned")
	}
	if st.Running != 0 {
		t.Errorf("Running = %d after drain, want 0", st.Running)
	}
	if st.LeaseBytes != 0 {
		t.Errorf("leaked memory lease: LeaseBytes = %d after drain", st.LeaseBytes)
	}
	if st.LeasePeak > st.Pool {
		t.Errorf("LeasePeak %d exceeds pool %d", st.LeasePeak, st.Pool)
	}

	// Late arrivals shed with the in-process drain error — which,
	// unlike its wire counterpart, is non-retryable: this scheduler
	// will never admit again.
	_, err := db.Execute(chaosQueries[0].sql)
	var adm *sched.AdmissionError
	if !errors.As(err, &adm) || adm.Reason != sched.ReasonDraining {
		t.Fatalf("late arrival got %v, want draining AdmissionError", err)
	}
	if cluster.IsRetryable(err) {
		t.Error("in-process drain shed must be non-retryable")
	}

	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after drain: %s", e.Name())
	}
}

// TestDrainCancelsStuckRecovery pins the deadline path: when the
// drain's context expires before the in-flight recovery finishes, the
// query is cancelled rather than waited on forever, Drain reports the
// context error, and teardown still sweeps TMPDIR and releases leases.
func TestDrainCancelsStuckRecovery(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t)
	db.SetCheckpoints(true)
	cfg := barrierKillConfig(cluster.BarrierShuffle, 1)
	cfg.StragglerNodes = []int{0, 1}
	cfg.StragglerDelay = 2 * time.Second
	db.MustConfigure(WithFaults(cfg))
	// No speculation: with every node straggling, a speculative copy is
	// the only thing that could rescue the query, and this test needs
	// it genuinely stuck so the drain deadline is the decider.
	db.MustConfigure(WithRetryPolicy(cluster.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	}))

	done := make(chan error, 1)
	go func() {
		_, err := db.Execute(chaosQueries[0].sql)
		done <- err
	}()
	waitRunning(t, db)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := db.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded after cancelling stragglers", err)
	}
	if err := <-done; err == nil {
		t.Fatal("straggling query survived a forced drain")
	}

	st := db.SchedulerStats()
	if st.Running != 0 || st.LeaseBytes != 0 {
		t.Errorf("after forced drain: Running = %d, LeaseBytes = %d, want 0/0", st.Running, st.LeaseBytes)
	}
	if st.LeasePeak > st.Pool {
		t.Errorf("LeasePeak %d exceeds pool %d", st.LeasePeak, st.Pool)
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after forced drain: %s", e.Name())
	}
}
