// Memory-bounded COMBINE: hybrid-hash processing of bucket pairs under
// a per-partition byte budget. The build side's bucket groups are the
// memory the budget governs; buckets that fit stay resident and join
// against streamed probe records immediately, buckets that do not are
// evicted to disk spill runs and re-joined afterwards. A spilled
// bucket whose build side alone exceeds the budget is skew-split into
// chunks that fit, each chunk joined against a re-scan of the bucket's
// probe run, so even a single pathological hot bucket degrades to
// multiple passes instead of an unbounded allocation. A single record
// larger than the hard cap is the one irreducible case, surfaced as a
// structured *core.ResourceError rather than an OOM kill.
package engine

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/storage"
	"fudj/internal/types"
)

func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// memState carries one query's memory-bounding configuration. A nil
// *memState disables bounding (the pre-budget code paths run
// unchanged).
type memState struct {
	perPart int64  // per-partition build budget in bytes
	hardCap int64  // absolute per-partition cap; exceeding it fails the query
	dir     string // spill directory, removed when the query ends
	metrics *cluster.Metrics
}

// newMemState derives per-partition limits from the query budget and
// creates the query's spill directory. The returned cleanup removes
// the directory and everything spilled into it.
func newMemState(clus *cluster.Cluster) (*memState, func(), error) {
	perPart := clus.PartitionBudget()
	if perPart <= 0 {
		return nil, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "fudj-spill-*")
	if err != nil {
		return nil, nil, fmt.Errorf("engine: create spill dir: %w", err)
	}
	m := &memState{
		perPart: perPart,
		hardCap: 2 * perPart,
		dir:     dir,
		metrics: clus.Metrics(),
	}
	return m, func() { os.RemoveAll(dir) }, nil
}

// combineFn joins one matched bucket pair, appending joined records —
// the combineBuckets closure runFUDJ builds over VERIFY/LocalJoin and
// duplicate handling. Groups carry their key columns pre-unboxed (see
// bucketGroup), so implementations never call Native() per pair.
type combineFn func(out []types.Record, b1 int, ls *bucketGroup, b2 int, rs *bucketGroup) []types.Record

// partAcct tracks one partition task's budget-charged bytes, mirroring
// every reservation into the cluster-wide gauge so PeakMemory is
// observable. close releases anything still held (so an aborted task —
// e.g. a UDF panic — cannot leak tracked memory).
type partAcct struct {
	metrics *cluster.Metrics
	used    int64
}

func (a *partAcct) reserve(n int64) {
	a.used += n
	a.metrics.ReserveMemory(n)
}

func (a *partAcct) release(n int64) {
	a.used -= n
	a.metrics.ReleaseMemory(n)
}

func (a *partAcct) close() {
	if a.used != 0 {
		a.metrics.ReleaseMemory(a.used)
		a.used = 0
	}
}

// bucketSpill is one spilled bucket: its build-side run and the probe
// records destined for it.
type bucketSpill struct {
	left  *storage.RunWriter
	right *storage.RunWriter
}

// boundedCombine is the memory-bounded counterpart of the per-partition
// COMBINE loops in fudj.go / theta.go. build and probe are the
// partition's two inputs with the bucket id in column 0; matcher lists
// the build buckets a probe bucket joins with (build buckets absent
// from this partition are skipped). Output is the same multiset of
// joined records as the unbounded path, in a (deterministic) different
// order.
func boundedCombine(mem *memState, joinName string, part int,
	build, probe []types.Record,
	matcher func(probeBucket int, buildIDs []int) []int,
	combine combineFn) (out []types.Record, err error) {

	acct := &partAcct{metrics: mem.metrics}
	defer acct.close()
	spilled := make(map[int]*bucketSpill)
	defer func() {
		for _, bs := range spilled {
			bs.left.Remove()
			bs.right.Remove()
		}
	}()

	newSpill := func() (*bucketSpill, error) {
		left, err := storage.NewRunWriter(mem.dir)
		if err != nil {
			return nil, err
		}
		right, err := storage.NewRunWriter(mem.dir)
		if err != nil {
			left.Remove()
			return nil, err
		}
		return &bucketSpill{left: left, right: right}, nil
	}

	// ---- build pass: group the build side under the budget ----
	resident := make(map[int]*bucketGroup)
	residentBytes := make(map[int]int64)
	evict := func(b int) error {
		bs, err := newSpill()
		if err != nil {
			return err
		}
		spilled[b] = bs // register before Append so the deferred Remove covers a write failure
		if err := bs.left.Append(resident[b].recs...); err != nil {
			return err
		}
		acct.release(residentBytes[b])
		delete(resident, b)
		delete(residentBytes, b)
		return nil
	}
	for _, r := range build {
		b := int(r[0].Int64())
		sz := r.MemSize()
		if sz > mem.hardCap {
			return nil, &core.ResourceError{
				Join: joinName, Phase: "combine", Partition: part,
				Bytes: sz, Budget: mem.hardCap,
			}
		}
		if bs := spilled[b]; bs != nil {
			if err := bs.left.Append(r); err != nil {
				return nil, err
			}
			continue
		}
		// Evict the largest resident buckets until the record fits.
		for acct.used+sz > mem.perPart && len(resident) > 0 {
			if err := evict(largestBucket(residentBytes)); err != nil {
				return nil, err
			}
		}
		if bs := spilled[b]; bs != nil {
			// The record's own bucket was just evicted; follow it.
			if err := bs.left.Append(r); err != nil {
				return nil, err
			}
			continue
		}
		if acct.used+sz > mem.perPart {
			// Nothing left to evict: the record alone exceeds the budget
			// (but not the hard cap). Spill its bucket directly.
			bs, err := newSpill()
			if err != nil {
				return nil, err
			}
			spilled[b] = bs
			if err := bs.left.Append(r); err != nil {
				return nil, err
			}
			continue
		}
		acct.reserve(sz)
		g := resident[b]
		if g == nil {
			g = &bucketGroup{}
			resident[b] = g
		}
		g.add(r)
		residentBytes[b] += sz
	}

	buildIDs := make([]int, 0, len(resident)+len(spilled))
	for b := range resident {
		buildIDs = append(buildIDs, b)
	}
	for b := range spilled {
		buildIDs = append(buildIDs, b)
	}
	sort.Ints(buildIDs)

	// ---- probe pass: stream probe records against resident buckets,
	// route the rest to their bucket's probe run ----
	for _, r := range probe {
		b2 := int(r[0].Int64())
		var pg *bucketGroup // built lazily: only probes that hit a resident bucket unbox their key
		for _, b1 := range matcher(b2, buildIDs) {
			if ls, ok := resident[b1]; ok {
				if pg == nil {
					pg = singleGroup(r)
				}
				out = combine(out, b1, ls, b2, pg)
			} else if bs := spilled[b1]; bs != nil {
				if err := bs.right.Append(r); err != nil {
					return nil, err
				}
			}
		}
	}

	// ---- spilled pass: re-join each spilled bucket hybrid-hash style ----
	// The probe pass is over, so the resident build buckets are dead:
	// return their reservation first. Otherwise a spilled bucket's
	// build chunk (itself up to the partition share) stacks on top of
	// the resident bytes and the tracked peak can exceed the budget.
	var residentHeld int64
	for _, n := range residentBytes {
		residentHeld += n
	}
	acct.release(residentHeld)
	resident, residentBytes = nil, nil
	spilledIDs := make([]int, 0, len(spilled))
	for b := range spilled {
		spilledIDs = append(spilledIDs, b)
	}
	sort.Ints(spilledIDs)
	for _, b1 := range spilledIDs {
		bs := spilled[b1]
		if err := bs.left.Close(); err != nil {
			return nil, err
		}
		if err := bs.right.Close(); err != nil {
			return nil, err
		}
		runs := int64(1)
		if bs.right.Records() > 0 {
			runs = 2
		}
		mem.metrics.AddSpill(bs.left.Bytes()+bs.right.Bytes(), runs)
		if bs.right.Records() == 0 {
			continue // no probe record matched this bucket
		}
		out, err = joinSpilledBucket(mem, acct, out, b1, bs, combine)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// joinSpilledBucket re-joins one spilled bucket: build-side records are
// loaded in budget-sized chunks (skew splitting — one chunk when the
// bucket fits, several when its build side alone exceeds the budget),
// and the bucket's probe run is re-streamed against every chunk.
func joinSpilledBucket(mem *memState, acct *partAcct, out []types.Record,
	b1 int, bs *bucketSpill, combine combineFn) ([]types.Record, error) {

	lr, err := storage.OpenRun(bs.left.Path())
	if err != nil {
		return nil, err
	}
	defer lr.Close()
	cur := newRunCursor(lr)
	chunks := 0
	for {
		// Accumulate the next build chunk under the budget (always at
		// least one record, so progress is guaranteed).
		ls := &bucketGroup{}
		var lsBytes int64
		for {
			r, ok, err := cur.peek()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			sz := r.MemSize()
			if len(ls.recs) > 0 && lsBytes+sz > mem.perPart {
				break
			}
			cur.advance()
			ls.add(r)
			lsBytes += sz
		}
		if len(ls.recs) == 0 {
			break
		}
		chunks++
		acct.reserve(lsBytes)
		err := func() error {
			defer acct.release(lsBytes)
			rr, err := storage.OpenRun(bs.right.Path())
			if err != nil {
				return err
			}
			defer rr.Close()
			for {
				frame, err := rr.Next()
				if err != nil {
					if isEOF(err) {
						return nil
					}
					return err
				}
				for _, r := range frame {
					b2 := int(r[0].Int64())
					out = combine(out, b1, ls, b2, singleGroup(r))
				}
			}
		}()
		if err != nil {
			return nil, err
		}
	}
	if chunks > 1 {
		mem.metrics.AddBucketSplit()
	}
	return out, nil
}

// runCursor adapts a frame-oriented RunReader into a record-at-a-time
// cursor, so chunk boundaries can fall inside a frame.
type runCursor struct {
	r     *storage.RunReader
	frame []types.Record
	pos   int
	eof   bool
}

func newRunCursor(r *storage.RunReader) *runCursor { return &runCursor{r: r} }

// peek returns the next record without consuming it. ok is false at
// end of run.
func (c *runCursor) peek() (types.Record, bool, error) {
	for !c.eof && c.pos >= len(c.frame) {
		frame, err := c.r.Next()
		if err != nil {
			if isEOF(err) {
				c.eof = true
				break
			}
			return nil, false, err
		}
		c.frame, c.pos = frame, 0
	}
	if c.pos >= len(c.frame) {
		return nil, false, nil
	}
	return c.frame[c.pos], true, nil
}

// advance consumes the record peek returned.
func (c *runCursor) advance() { c.pos++ }

// largestBucket picks the eviction victim: the bucket holding the most
// resident bytes, ties broken by smaller id so eviction order is
// deterministic.
func largestBucket(sizes map[int]int64) int {
	best := -1
	var bestSz int64
	for b, sz := range sizes {
		if best == -1 || sz > bestSz || (sz == bestSz && b < best) {
			best, bestSz = b, sz
		}
	}
	return best
}
