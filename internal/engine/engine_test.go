package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"fudj/internal/cluster"
	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/joins/builtin"
	"fudj/internal/joins/intervaljoin"
	"fudj/internal/joins/spatialjoin"
	"fudj/internal/joins/textsim"
	"fudj/internal/types"
)

// newTestDB builds a database with small synthetic Parks, Wildfires,
// Rides, and Reviews datasets plus all three FUDJ libraries installed
// and their joins created.
func newTestDB(t *testing.T, opts ...Option) *Database {
	t.Helper()
	all := append([]Option{WithClusterConfig(cluster.Config{Nodes: 2, CoresPerNode: 2})}, opts...)
	db := MustOpen(all...)
	rng := rand.New(rand.NewSource(99))

	// Parks: id, boundary (polygon), tags (string).
	parksSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "boundary", Kind: types.KindPolygon},
		types.Field{Name: "tags", Kind: types.KindString},
	)
	tagWords := []string{"river", "scenic", "camping", "trail", "lake", "forest", "desert", "historic"}
	var parks []types.Record
	for i := 0; i < 40; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		w, h := rng.Float64()*8+1, rng.Float64()*8+1
		poly := geo.NewPolygon([]geo.Point{
			{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
		})
		nTags := 2 + rng.Intn(3)
		tags := make([]string, nTags)
		for j := range tags {
			tags[j] = tagWords[rng.Intn(len(tagWords))]
		}
		parks = append(parks, types.Record{
			types.NewInt64(int64(i)),
			types.NewPolygon(poly),
			types.NewString(strings.Join(tags, " ")),
		})
	}
	if err := db.CreateDataset("parks", parksSchema, parks); err != nil {
		t.Fatal(err)
	}

	// Wildfires: id, location (point), year.
	firesSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "location", Kind: types.KindPoint},
		types.Field{Name: "year", Kind: types.KindInt64},
	)
	var fires []types.Record
	for i := 0; i < 120; i++ {
		fires = append(fires, types.Record{
			types.NewInt64(int64(i)),
			types.NewPoint(geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}),
			types.NewInt64(2020 + int64(rng.Intn(4))),
		})
	}
	if err := db.CreateDataset("wildfires", firesSchema, fires); err != nil {
		t.Fatal(err)
	}

	// Rides: id, vendor, ride_interval.
	ridesSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "vendor", Kind: types.KindInt64},
		types.Field{Name: "ride_interval", Kind: types.KindInterval},
	)
	var rides []types.Record
	for i := 0; i < 100; i++ {
		s := rng.Int63n(5000)
		rides = append(rides, types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(1 + int64(rng.Intn(2))),
			types.NewInterval(interval.Interval{Start: s, End: s + rng.Int63n(300)}),
		})
	}
	if err := db.CreateDataset("rides", ridesSchema, rides); err != nil {
		t.Fatal(err)
	}

	// Reviews: id, overall, review (text).
	reviewsSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "overall", Kind: types.KindInt64},
		types.Field{Name: "review", Kind: types.KindString},
	)
	var reviews []types.Record
	for i := 0; i < 80; i++ {
		n := 3 + rng.Intn(4)
		words := make([]string, n)
		for j := range words {
			words[j] = tagWords[rng.Intn(len(tagWords))]
		}
		reviews = append(reviews, types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(4 + int64(rng.Intn(2))),
			types.NewString(strings.Join(words, " ")),
		})
	}
	if err := db.CreateDataset("reviews", reviewsSchema, reviews); err != nil {
		t.Fatal(err)
	}

	// Install libraries and create the joins.
	if err := db.InstallLibrary(spatialjoin.Library()); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(textsim.Library()); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(intervaljoin.Library()); err != nil {
		t.Fatal(err)
	}
	ddl := []string{
		`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`,
		`CREATE JOIN text_similarity_join(a: string, b: string, t: double) RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins`,
		`CREATE JOIN overlapping_interval(a: interval, b: interval, n: int) RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`,
	}
	for _, stmt := range ddl {
		if _, err := db.Execute(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	return db
}

// rowsKey builds an order-insensitive multiset fingerprint of rows.
func rowsKey(rows []types.Record) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, name string, a, b []types.Record) {
	t.Helper()
	ka, kb := rowsKey(a), rowsKey(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d rows vs %d rows", name, len(ka), len(kb))
	}
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("%s: row %d differs:\n  %s\n  %s", name, i, ka[i], kb[i])
		}
	}
}

func mustQuery(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Execute(sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

func TestDDLLifecycle(t *testing.T) {
	db := newTestDB(t)
	// Duplicate create fails.
	if _, err := db.Execute(`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err == nil {
		t.Error("duplicate CREATE JOIN should fail")
	}
	// Unknown library fails.
	if _, err := db.Execute(`CREATE JOIN j2(a: string, b: string) RETURNS boolean AS "x.Y" AT nolib`); err == nil {
		t.Error("CREATE JOIN with unknown library should fail")
	}
	// Unknown class fails.
	if _, err := db.Execute(`CREATE JOIN j3(a: string, b: string) RETURNS boolean AS "no.Class" AT spatialjoins`); err == nil {
		t.Error("CREATE JOIN with unknown class should fail")
	}
	// Wrong parameter count vs descriptor fails at DDL time.
	if _, err := db.Execute(`CREATE JOIN j4(a: geometry, b: geometry) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err == nil {
		t.Error("CREATE JOIN with wrong arity should fail")
	}
	// Drop works, then the FUDJ query falls back to an error (unknown fn).
	if _, err := db.Execute(`DROP JOIN spatial_join`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`DROP JOIN spatial_join`); err == nil {
		t.Error("double DROP JOIN should fail")
	}
	if _, err := db.Execute(`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`); err == nil {
		t.Error("query with dropped join should fail to plan")
	}
}

// The central engine contract: a FUDJ query returns exactly what the
// equivalent on-top (NLJ + scalar predicate) query returns.
func TestSpatialFUDJEquivalence(t *testing.T) {
	db := newTestDB(t)
	fudjRes := mustQuery(t, db, `
		SELECT p.id, w.id FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)`)
	ontopRes := mustQuery(t, db, `
		SELECT p.id, w.id FROM parks p, wildfires w
		WHERE st_intersects(p.boundary, w.location)`)
	sameRows(t, "spatial", fudjRes.Rows, ontopRes.Rows)
	if len(fudjRes.Rows) == 0 {
		t.Fatal("spatial join produced no rows; dataset too sparse for the test")
	}
	// The FUDJ plan must have pruned candidates relative to NLJ.
	if fudjRes.Join.Candidates >= ontopRes.Join.Candidates {
		t.Errorf("FUDJ candidates %d >= NLJ candidates %d", fudjRes.Join.Candidates, ontopRes.Join.Candidates)
	}
	if fudjRes.Join.StateBytes == 0 {
		t.Error("FUDJ should move summary/plan state bytes")
	}
}

func TestIntervalFUDJEquivalence(t *testing.T) {
	db := newTestDB(t)
	fudjRes := mustQuery(t, db, `
		SELECT n1.id, n2.id FROM rides n1, rides n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		  AND overlapping_interval(n1.ride_interval, n2.ride_interval, 50)`)
	ontopRes := mustQuery(t, db, `
		SELECT n1.id, n2.id FROM rides n1, rides n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		  AND interval_overlapping(n1.ride_interval, n2.ride_interval)`)
	sameRows(t, "interval", fudjRes.Rows, ontopRes.Rows)
	if len(fudjRes.Rows) == 0 {
		t.Fatal("interval join produced no rows")
	}
}

func TestTextSimFUDJEquivalence(t *testing.T) {
	db := newTestDB(t)
	fudjRes := mustQuery(t, db, `
		SELECT r1.id, r2.id FROM reviews r1, reviews r2
		WHERE r1.overall = 5 AND r2.overall = 4
		  AND text_similarity_join(r1.review, r2.review, 0.8)`)
	ontopRes := mustQuery(t, db, `
		SELECT r1.id, r2.id FROM reviews r1, reviews r2
		WHERE r1.overall = 5 AND r2.overall = 4
		  AND similarity_jaccard(word_tokens(r1.review), word_tokens(r2.review)) >= 0.8`)
	sameRows(t, "textsim", fudjRes.Rows, ontopRes.Rows)
	if len(fudjRes.Rows) == 0 {
		t.Fatal("text join produced no rows")
	}
}

func TestPaperQuery1Shape(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		SELECT p.id, COUNT(w.id) AS num_fires
		FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8) AND w.year >= 2021
		GROUP BY p.id
		ORDER BY num_fires DESC, p.id
		LIMIT 5`)
	if len(res.Rows) == 0 || len(res.Rows) > 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Descending counts.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].Int64() > res.Rows[i-1][1].Int64() {
			t.Error("ORDER BY num_fires DESC violated")
		}
	}
	if res.Schema.Fields[1].Name != "num_fires" {
		t.Errorf("schema = %v", res.Schema)
	}
	// Cross-check against the on-top formulation.
	ontop := mustQuery(t, db, `
		SELECT p.id, COUNT(w.id) AS num_fires
		FROM parks p, wildfires w
		WHERE st_intersects(p.boundary, w.location) AND w.year >= 2021
		GROUP BY p.id
		ORDER BY num_fires DESC, p.id
		LIMIT 5`)
	sameRows(t, "query1", res.Rows, ontop.Rows)
}

func TestAggregates(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		SELECT r.overall, COUNT(*) AS n, AVG(len(r.review)) AS avg_len,
		       MIN(r.id) AS lo, MAX(r.id) AS hi, SUM(r.id) AS total
		FROM reviews r GROUP BY r.overall ORDER BY r.overall`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 rating groups", len(res.Rows))
	}
	var totalN int64
	for _, row := range res.Rows {
		totalN += row[1].Int64()
		if row[2].Float64() <= 0 {
			t.Error("avg_len should be positive")
		}
		if row[3].Int64() > row[4].Int64() {
			t.Error("min > max")
		}
	}
	if totalN != 80 {
		t.Errorf("counts sum to %d, want 80", totalN)
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM reviews r WHERE r.overall = 99`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int64() != 0 {
		t.Errorf("COUNT over empty = %v", res.Rows)
	}
	res = mustQuery(t, db, `SELECT AVG(r.id) FROM reviews r WHERE r.overall = 99`)
	if len(res.Rows) != 1 || !res.Rows[0][0].IsNull() {
		t.Errorf("AVG over empty = %v", res.Rows)
	}
}

func TestHashJoinPath(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		SELECT COUNT(*) FROM reviews a, reviews b WHERE a.id = b.id`)
	if res.Rows[0][0].Int64() != 80 {
		t.Errorf("self equi-join count = %v, want 80", res.Rows[0][0])
	}
	// Plan should mention the hash join.
	ex := mustQuery(t, db, `EXPLAIN SELECT COUNT(*) FROM reviews a, reviews b WHERE a.id = b.id`)
	if !strings.Contains(ex.Plan, "HASH JOIN") {
		t.Errorf("plan = %s", ex.Plan)
	}
}

func TestCrossJoin(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `SELECT COUNT(*) FROM parks p, reviews r`)
	if res.Rows[0][0].Int64() != 40*80 {
		t.Errorf("cross join count = %v", res.Rows[0][0])
	}
}

func TestProjectionAndLimit(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `SELECT r.id, r.id + 100 AS shifted FROM reviews r ORDER BY r.id LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row[0].Int64() != int64(i) || row[1].Int64() != int64(i)+100 {
			t.Errorf("row %d = %v", i, row)
		}
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `SELECT * FROM reviews r LIMIT 2`)
	if res.Schema.Len() != 3 || len(res.Rows) != 2 {
		t.Errorf("star schema = %v rows = %d", res.Schema, len(res.Rows))
	}
}

func TestExplainFUDJPlan(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		EXPLAIN SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8) AND w.year >= 2021`)
	plan := res.Plan
	for _, want := range []string{"FUDJ JOIN spatial_join", "SUMMARIZE", "PARTITION", "COMBINE", "HASH (default match)", "SCAN wildfires", "FILTER"} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// The interval join should show the theta path instead.
	res = mustQuery(t, db, `
		EXPLAIN SELECT COUNT(*) FROM rides a, rides b
		WHERE overlapping_interval(a.ride_interval, b.ride_interval, 10)`)
	if !strings.Contains(res.Plan, "THETA") {
		t.Errorf("interval plan should be theta:\n%s", res.Plan)
	}
	// Self-join with identical filters reuses the summary.
	if !strings.Contains(res.Plan, "summary reused") {
		t.Errorf("self-join should reuse summary:\n%s", res.Plan)
	}
}

func TestSelfJoinWithDifferentFiltersDoesNotReuse(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		EXPLAIN SELECT COUNT(*) FROM rides a, rides b
		WHERE a.vendor = 1 AND b.vendor = 2
		  AND overlapping_interval(a.ride_interval, b.ride_interval, 10)`)
	if strings.Contains(res.Plan, "summary reused") {
		t.Errorf("different filters must not reuse summary:\n%s", res.Plan)
	}
}

func TestPredicatePushdown(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		EXPLAIN SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8) AND w.year >= 2021`)
	if !strings.Contains(res.Plan, "SCAN wildfires AS w FILTER") {
		t.Errorf("filter not pushed to scan:\n%s", res.Plan)
	}
}

func TestBuiltinModeFallsBackWithoutRegistration(t *testing.T) {
	db := newTestDB(t)
	db.SetJoinMode(ModeBuiltin)
	// No built-in registered: planner keeps the FUDJ plan.
	res := mustQuery(t, db, `
		SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)`)
	db.SetJoinMode(ModeFUDJ)
	res2 := mustQuery(t, db, `
		SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)`)
	if res.Rows[0][0].Int64() != res2.Rows[0][0].Int64() {
		t.Error("mode without registration changed results")
	}
}

func TestLocalJoinHookEndToEnd(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.Execute(`CREATE JOIN spatial_sweep(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoinPlaneSweep" AT spatialjoins`); err != nil {
		t.Fatal(err)
	}
	hook := mustQuery(t, db, `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_sweep(p.boundary, w.location, 8)`)
	plain := mustQuery(t, db, `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`)
	sameRows(t, "localjoin hook", hook.Rows, plain.Rows)
	if len(hook.Rows) == 0 {
		t.Fatal("no rows")
	}
	if hook.Join.Verified != plain.Join.Verified {
		t.Errorf("verified counts differ: %d vs %d", hook.Join.Verified, plain.Join.Verified)
	}
}

func TestBuiltinModeEndToEnd(t *testing.T) {
	db := newTestDB(t)
	db.RegisterBuiltinJoin("spatial_join", BuiltinJoinFunc(builtin.SpatialPBSM))
	db.RegisterBuiltinJoin("overlapping_interval", BuiltinJoinFunc(builtin.IntervalOIP))
	db.RegisterBuiltinJoin("text_similarity_join", BuiltinJoinFunc(builtin.TextSimilarity))

	queries := []string{
		`SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`,
		`SELECT a.id, b.id FROM rides a, rides b WHERE a.vendor = 1 AND b.vendor = 2 AND overlapping_interval(a.ride_interval, b.ride_interval, 50)`,
		`SELECT a.id, b.id FROM reviews a, reviews b WHERE a.overall = 5 AND b.overall = 4 AND text_similarity_join(a.review, b.review, 0.8)`,
	}
	for _, q := range queries {
		db.SetJoinMode(ModeFUDJ)
		fudjRes := mustQuery(t, db, q)
		db.SetJoinMode(ModeBuiltin)
		builtinRes := mustQuery(t, db, q)
		sameRows(t, q, fudjRes.Rows, builtinRes.Rows)
		if len(fudjRes.Rows) == 0 {
			t.Errorf("query produced no rows: %s", q)
		}
		// The built-in plan should say so.
		ex := mustQuery(t, db, "EXPLAIN "+q)
		if !strings.Contains(ex.Plan, "BUILTIN JOIN") {
			t.Errorf("plan should show BUILTIN JOIN:\n%s", ex.Plan)
		}
	}
	db.SetJoinMode(ModeFUDJ)
}

func TestSmartThetaEquivalence(t *testing.T) {
	db := newTestDB(t)
	queries := []string{
		// Theta multi-join (interval).
		`SELECT a.id, b.id FROM rides a, rides b WHERE a.vendor = 1 AND b.vendor = 2
		 AND overlapping_interval(a.ride_interval, b.ride_interval, 50)`,
		// Theta self-join with summary reuse in play.
		`SELECT a.id, b.id FROM rides a, rides b
		 WHERE overlapping_interval(a.ride_interval, b.ride_interval, 25)`,
	}
	for i, q := range queries {
		db.SetSmartTheta(false)
		naive := mustQuery(t, db, q)
		db.SetSmartTheta(true)
		smart := mustQuery(t, db, q)
		db.SetSmartTheta(false)
		sameRows(t, q, naive.Rows, smart.Rows)
		if len(naive.Rows) == 0 {
			t.Fatalf("no rows for %s", q)
		}
		// The balanced operator moves fewer records than broadcast when
		// each bucket matches fewer pairs than there are partitions; the
		// first query's 50 granules guarantee that, the coarse second one
		// does not, so only the first asserts the reduction.
		if i == 0 && smart.Cluster.RecordsShuffled >= naive.Cluster.RecordsShuffled {
			t.Errorf("smart theta shuffled %d records, naive %d — expected a reduction",
				smart.Cluster.RecordsShuffled, naive.Cluster.RecordsShuffled)
		}
	}
}

func TestClusterSweepGivesSameAnswers(t *testing.T) {
	db := newTestDB(t)
	baseline := mustQuery(t, db, `
		SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)`).Rows[0][0].Int64()
	for _, cfg := range []cluster.Config{
		{Nodes: 1, CoresPerNode: 1},
		{Nodes: 1, CoresPerNode: 8},
		{Nodes: 6, CoresPerNode: 2},
	} {
		if err := db.SetCluster(cfg); err != nil {
			t.Fatal(err)
		}
		got := mustQuery(t, db, `
			SELECT COUNT(*) FROM parks p, wildfires w
			WHERE spatial_join(p.boundary, w.location, 8)`).Rows[0][0].Int64()
		if got != baseline {
			t.Errorf("cluster %+v: count %d, want %d", cfg, got, baseline)
		}
	}
}

func TestThreeWayJoinQuery3Shape(t *testing.T) {
	db := newTestDB(t)
	// A miniature of the paper's Query 3: spatial join then interval
	// join in one query (rides doubling as "weather" with intervals).
	res := mustQuery(t, db, `
		SELECT COUNT(*)
		FROM parks p, wildfires w, rides r
		WHERE spatial_join(p.boundary, w.location, 8)
		  AND r.vendor = 1 AND w.year >= 2021`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Cross-check with the on-top formulation.
	ontop := mustQuery(t, db, `
		SELECT COUNT(*)
		FROM parks p, wildfires w, rides r
		WHERE st_intersects(p.boundary, w.location)
		  AND r.vendor = 1 AND w.year >= 2021`)
	if res.Rows[0][0].Int64() != ontop.Rows[0][0].Int64() {
		t.Errorf("3-way FUDJ %v != on-top %v", res.Rows[0][0], ontop.Rows[0][0])
	}
	if res.Rows[0][0].Int64() == 0 {
		t.Error("3-way join produced nothing")
	}
}

// TestSelectInto exercises the paper's motivating workflow: Query 1
// materializes Damaged_Parks, Query 2 reads it.
func TestSelectInto(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		SELECT p.id AS park_id, COUNT(w.id) AS num_fires
		INTO damaged_parks
		FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)
		GROUP BY p.id`)
	if len(res.Rows) == 0 {
		t.Fatal("no damaged parks")
	}
	// The materialized dataset is queryable, with sanitized field names.
	follow := mustQuery(t, db, `
		SELECT COUNT(*) FROM damaged_parks d, parks p
		WHERE d.park_id = p.id`)
	if follow.Rows[0][0].Int64() != int64(len(res.Rows)) {
		t.Errorf("follow-up join count %v, want %d", follow.Rows[0][0], len(res.Rows))
	}
	// INTO an existing dataset name fails.
	if _, err := db.Execute(`SELECT p.id INTO parks FROM parks p`); err == nil {
		t.Error("INTO existing dataset should fail")
	}
	// Unaliased expression columns are sanitized, not rejected.
	mustQuery(t, db, `SELECT p.id, p.id + 1 INTO shifted FROM parks p`)
	ds, err := db.Catalog().Dataset("shifted")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Schema.Index("p_id") < 0 {
		t.Errorf("sanitized schema = %v", ds.Schema)
	}
}

func TestHaving(t *testing.T) {
	db := newTestDB(t)
	all := mustQuery(t, db, `
		SELECT r.overall, COUNT(*) AS n FROM reviews r GROUP BY r.overall`)
	filtered := mustQuery(t, db, `
		SELECT r.overall, COUNT(*) AS n FROM reviews r GROUP BY r.overall
		HAVING COUNT(*) > 35 ORDER BY n DESC`)
	if len(filtered.Rows) >= len(all.Rows) && len(all.Rows) > 1 {
		t.Errorf("HAVING did not filter: %d vs %d groups", len(filtered.Rows), len(all.Rows))
	}
	for _, row := range filtered.Rows {
		if row[1].Int64() <= 35 {
			t.Errorf("group %v violates HAVING: n=%v", row[0], row[1])
		}
	}
	// HAVING may reference group keys and combine predicates.
	res := mustQuery(t, db, `
		SELECT r.overall, COUNT(*) AS n FROM reviews r GROUP BY r.overall
		HAVING r.overall >= 5 AND COUNT(*) > 0`)
	for _, row := range res.Rows {
		if row[0].Int64() < 5 {
			t.Errorf("group key predicate violated: %v", row)
		}
	}
	// An aggregate not in the select list is rejected with a clear error.
	if _, err := db.Execute(`
		SELECT r.overall FROM reviews r GROUP BY r.overall HAVING SUM(r.id) > 10`); err == nil {
		t.Error("HAVING with unprojected aggregate should fail")
	}
	// HAVING without grouping or aggregates is rejected at parse time.
	if _, err := db.Execute(`SELECT r.id FROM reviews r HAVING r.id > 1`); err == nil {
		t.Error("HAVING without GROUP BY should fail")
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	dup := mustQuery(t, db, `SELECT r.overall FROM reviews r`)
	dis := mustQuery(t, db, `SELECT DISTINCT r.overall FROM reviews r ORDER BY r.overall`)
	if len(dis.Rows) != 2 {
		t.Fatalf("DISTINCT rows = %d, want 2 ratings", len(dis.Rows))
	}
	if len(dup.Rows) != 80 {
		t.Fatalf("non-distinct rows = %d", len(dup.Rows))
	}
	if dis.Rows[0][0].Int64() != 4 || dis.Rows[1][0].Int64() != 5 {
		t.Errorf("DISTINCT values = %v", dis.Rows)
	}
}

func TestAggregatesOverStrings(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `SELECT MIN(p.tags) AS lo, MAX(p.tags) AS hi FROM parks p`)
	if len(res.Rows) != 1 {
		t.Fatal("want one row")
	}
	lo, hi := res.Rows[0][0], res.Rows[0][1]
	if lo.Kind() != types.KindString || hi.Kind() != types.KindString {
		t.Fatalf("min/max kinds = %v/%v", lo.Kind(), hi.Kind())
	}
	if lo.Compare(hi) > 0 {
		t.Errorf("MIN %v > MAX %v", lo, hi)
	}
	// SUM over strings must fail cleanly, not panic.
	if _, err := db.Execute(`SELECT SUM(p.tags) FROM parks p`); err == nil {
		t.Error("SUM over strings should error")
	}
}

func TestMultiKeyOrderByAndLimitZero(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `SELECT r.overall, r.id FROM reviews r ORDER BY r.overall DESC, r.id LIMIT 20`)
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0].Int64() < b[0].Int64() {
			t.Fatal("primary DESC key violated")
		}
		if a[0].Int64() == b[0].Int64() && a[1].Int64() > b[1].Int64() {
			t.Fatal("secondary ASC key violated")
		}
	}
	if got := mustQuery(t, db, `SELECT r.id FROM reviews r LIMIT 0`); len(got.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(got.Rows))
	}
}

func TestSumMixedNumericWidening(t *testing.T) {
	db := MustOpen(WithClusterConfig(cluster.Config{Nodes: 2, CoresPerNode: 1}))
	schema := types.NewSchema(
		types.Field{Name: "g", Kind: types.KindInt64},
		types.Field{Name: "v", Kind: types.KindFloat64},
		types.Field{Name: "i", Kind: types.KindInt64},
	)
	recs := []types.Record{
		{types.NewInt64(1), types.NewFloat64(1.5), types.NewInt64(10)},
		{types.NewInt64(1), types.NewFloat64(2.5), types.NewInt64(20)},
	}
	if err := db.CreateDataset("t", schema, recs); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, `SELECT SUM(t.v) AS fs, SUM(t.i) AS is_, AVG(t.i) AS ai FROM t t`)
	if got := res.Rows[0][0].Float64(); got != 4.0 {
		t.Errorf("float SUM = %v", got)
	}
	if got := res.Rows[0][1].Int64(); got != 30 {
		t.Errorf("int SUM = %v (should stay integral)", got)
	}
	if got := res.Rows[0][2].Float64(); got != 15 {
		t.Errorf("AVG = %v", got)
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := newTestDB(t)
	queries := []string{
		`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`,
		`SELECT COUNT(*) FROM reviews a, reviews b WHERE a.id = b.id`,
		`SELECT r.overall, COUNT(*) FROM reviews r GROUP BY r.overall`,
	}
	var wg sync.WaitGroup
	errs := make([]error, 12)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = db.Execute(queries[i%len(queries)])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}
}

func TestPlanErrors(t *testing.T) {
	db := newTestDB(t)
	for _, sql := range []string{
		`SELECT COUNT(*) FROM nosuch n`,
		`SELECT p.id FROM parks p, parks p`, // duplicate alias
		`SELECT p.nosuchcol FROM parks p`,
		`SELECT p.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, w.id)`,        // non-literal param
		`SELECT p.id, COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`, // p.id not grouped
		`SELECT spatial_join(p.boundary, p.boundary, 8) FROM parks p`,                                   // FUDJ in projection is not a join
	} {
		if _, err := db.Execute(sql); err == nil {
			t.Errorf("Execute(%q): want error", sql)
		}
	}
}

func TestFUDJKeysMustSplitAcrossSides(t *testing.T) {
	db := newTestDB(t)
	// Both keys reference the same side: the rewrite must reject it.
	_, err := db.Execute(`
		SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, p.boundary, 8) AND w.year >= 0`)
	if err == nil || !strings.Contains(err.Error(), "split") {
		t.Errorf("err = %v, want key split error", err)
	}
}

func TestPhaseTimesPopulated(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`)
	if res.Join.SummarizeTime <= 0 || res.Join.PartitionTime <= 0 || res.Join.CombineTime <= 0 {
		t.Errorf("phase times not populated: %+v", res.Join)
	}
	// Phases cannot exceed the whole query.
	sum := res.Join.SummarizeTime + res.Join.PartitionTime + res.Join.CombineTime
	if sum > res.Elapsed {
		t.Errorf("phase sum %v exceeds elapsed %v", sum, res.Elapsed)
	}
	// Non-FUDJ queries report zero phase time.
	plain := mustQuery(t, db, `SELECT COUNT(*) FROM parks p`)
	if plain.Join.SummarizeTime != 0 {
		t.Errorf("non-FUDJ query has phase times: %+v", plain.Join)
	}
}

func TestSanitizeFieldName(t *testing.T) {
	cases := map[string]string{
		"p.id":          "p_id",
		"count(1)":      "count_1_",
		"already_clean": "already_clean",
		"(a.x + b.y)":   "_a_x___b_y_",
		"MixedCase123":  "MixedCase123",
	}
	for in, want := range cases {
		if got := sanitizeFieldName(in); got != want {
			t.Errorf("sanitizeFieldName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, `
		SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 8)`)
	if res.Cluster.BytesShuffled == 0 {
		t.Error("expected shuffle bytes on a 2-node cluster")
	}
	if res.Cluster.BytesBroadcast == 0 {
		t.Error("expected broadcast bytes for summaries/plan")
	}
	if res.Cluster.MaxBusy <= 0 || res.Cluster.TotalBusy < res.Cluster.MaxBusy {
		t.Error("busy-time metrics not populated")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not populated")
	}
	if res.Join.Verified == 0 || res.Join.Output == 0 {
		t.Errorf("stats = %+v", res.Join)
	}
}

func TestDedupVariantsAgreeThroughEngine(t *testing.T) {
	db := newTestDB(t)
	for i, ddl := range []string{
		`CREATE JOIN spatial_rp(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinReferencePoint" AT spatialjoins`,
		`CREATE JOIN spatial_elim(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinElimination" AT spatialjoins`,
	} {
		if _, err := db.Execute(ddl); err != nil {
			t.Fatalf("ddl %d: %v", i, err)
		}
	}
	base := mustQuery(t, db, `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8)`)
	rp := mustQuery(t, db, `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_rp(p.boundary, w.location, 8)`)
	elim := mustQuery(t, db, `SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_elim(p.boundary, w.location, 8)`)
	sameRows(t, "refpoint", base.Rows, rp.Rows)
	sameRows(t, "elimination", base.Rows, elim.Rows)
}

// Property-style check over several seeds: FUDJ == on-top across a
// range of bucket counts for all three joins.
func TestEquivalenceAcrossBucketCounts(t *testing.T) {
	db := newTestDB(t)
	for _, n := range []int{1, 4, 32} {
		f := mustQuery(t, db, fmt.Sprintf(
			`SELECT p.id, w.id FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, %d)`, n))
		o := mustQuery(t, db,
			`SELECT p.id, w.id FROM parks p, wildfires w WHERE st_intersects(p.boundary, w.location)`)
		sameRows(t, fmt.Sprintf("spatial n=%d", n), f.Rows, o.Rows)
	}
	for _, n := range []int{1, 10, 200} {
		f := mustQuery(t, db, fmt.Sprintf(
			`SELECT a.id, b.id FROM rides a, rides b WHERE overlapping_interval(a.ride_interval, b.ride_interval, %d)`, n))
		o := mustQuery(t, db,
			`SELECT a.id, b.id FROM rides a, rides b WHERE interval_overlapping(a.ride_interval, b.ride_interval)`)
		sameRows(t, fmt.Sprintf("interval n=%d", n), f.Rows, o.Rows)
	}
}
