package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/sched"
	"fudj/internal/trace"
)

// This file is the engine side of admission control: every SELECT
// passes through the Database's scheduler (internal/sched) before a
// cluster is stood up. With no limits configured the scheduler is a
// zero-cost counter; with WithConcurrencyLimit/WithMemoryPool the
// query may queue, receive a reduced memory lease (degrading into
// spill pressure), or be shed with a retryable *sched.AdmissionError.

// Scheduler metric names, stamped into each query's metric registry so
// Result.Metrics and EXPLAIN ANALYZE surface admission behaviour
// alongside the transport and memory counters.
const (
	// MetricSchedAdmitted counts this query's admission (always 1 for a
	// query that produced a Result).
	MetricSchedAdmitted = "sched.admitted"
	// MetricSchedQueued is 1 when the query waited in the admission
	// queue before running.
	MetricSchedQueued = "sched.queued"
	// MetricSchedShedTotal is the scheduler-wide count of shed queries
	// observed at this query's admission (shed queries never produce a
	// Result of their own to carry it).
	MetricSchedShedTotal = "sched.shed.total"
	// MetricSchedQueueWait is the queue-latency histogram (nanoseconds).
	MetricSchedQueueWait = "sched.queue.wait.ns"
	// MetricSchedLease gauges the memory lease granted to this query.
	MetricSchedLease = "sched.lease.bytes"
)

// SchedStats carries one query's admission outcome in its Result.
type SchedStats struct {
	// QueueWait is how long the query sat in the admission queue.
	QueueWait time.Duration
	// LeaseBytes is the memory lease granted from the shared pool
	// (0 when no pool is configured); it became the query's memory
	// budget. A lease smaller than requested means the scheduler
	// admitted the query under contention and the query ran with
	// tighter memory — spill pressure instead of waiting.
	LeaseBytes int64
	// Priority is the class the query was admitted under.
	Priority sched.Priority
}

// TimeoutError reports a query aborted by its per-query timeout
// (WithQueryTimeout / the Timeout exec option). It wraps
// context.DeadlineExceeded, so errors.Is classifies it, and it has no
// Retryable method: re-running the same query under the same timeout
// would time out again, so the fault machinery treats it as permanent.
type TimeoutError struct {
	Timeout time.Duration
	Err     error
}

// Error implements the error interface.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("engine: query exceeded its %v timeout: %v", e.Timeout, e.Err)
}

// Unwrap exposes the underlying context error for errors.Is chains.
func (e *TimeoutError) Unwrap() error { return e.Err }

// Scheduler exposes the database's admission controller (never nil).
func (db *Database) Scheduler() *sched.Scheduler { return db.sched }

// SchedulerStats snapshots the admission controller's counters.
func (db *Database) SchedulerStats() sched.Stats { return db.sched.Stats() }

// Drain gracefully shuts the database down for new work: admission
// stops (late arrivals shed with a non-retryable AdmissionError),
// in-flight queries run to completion, and past ctx's deadline they
// are cancelled instead. Drain returns once no query is running — at
// which point every per-query spill and checkpoint directory has been
// swept by its query's own teardown. Returns nil on a clean drain, or
// ctx's error when queries had to be cancelled.
func (db *Database) Drain(ctx context.Context) error {
	return db.sched.Drain(ctx)
}

// admit runs one query's admission: it derives the cancelable (and,
// with a timeout, deadline-bounded) execution context, asks the
// scheduler for a slot and memory lease, and hands back the ticket.
// The caller must call cancel() and ticket.Release() when the query
// finishes. The requested lease is the configured per-query budget —
// under a pool, PR 2's budgets are exactly what admission leases out.
func (db *Database) admit(ctx context.Context, eo execOpts) (context.Context, context.CancelFunc, *sched.Ticket, error) {
	var cancel context.CancelFunc
	if eo.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, eo.timeout)
	} else {
		// Always cancelable so a Drain deadline can abort the query.
		ctx, cancel = context.WithCancel(ctx)
	}
	ticket, err := db.sched.Acquire(ctx, sched.Request{
		Priority: eo.priority,
		Lease:    db.MemoryBudget(),
		Cancel:   cancel,
	})
	if err != nil {
		cancel()
		return nil, nil, nil, err
	}
	return ctx, cancel, ticket, nil
}

// wrapTimeout converts a deadline-exceeded run error into the
// structured TimeoutError when this query ran under a per-query
// timeout; other errors pass through.
func wrapTimeout(err error, eo execOpts) error {
	if err == nil || eo.timeout <= 0 {
		return err
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return &TimeoutError{Timeout: eo.timeout, Err: context.DeadlineExceeded}
	}
	return err
}

// stampSched records the admission outcome into the query's metric
// registry and trace, so Result.Metrics, Result.Sched and EXPLAIN
// ANALYZE all tell the same story. The sched span only appears when
// the scheduler actually did something (queued the query or granted a
// lease), keeping unlimited-mode traces unchanged.
func stampSched(reg *cluster.Metrics, root *trace.Span, ticket *sched.Ticket, st sched.Stats) {
	reg.Counter(MetricSchedAdmitted).Add(1)
	if ticket.Wait() > 0 {
		reg.Counter(MetricSchedQueued).Add(1)
		reg.Histogram(MetricSchedQueueWait).Observe(int64(ticket.Wait()))
	}
	if st.Shed > 0 {
		reg.Counter(MetricSchedShedTotal).Add(st.Shed)
	}
	if ticket.Lease() > 0 {
		reg.Gauge(MetricSchedLease).Add(ticket.Lease())
	}
	if ticket.Wait() > 0 || ticket.Lease() > 0 {
		sp := root.Child("sched")
		sp.Add("wait.ns", int64(ticket.Wait()))
		sp.Add("lease.bytes", ticket.Lease())
		sp.Add("priority", int64(ticket.Priority()))
		sp.End()
	}
}
