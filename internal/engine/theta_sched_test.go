package engine

import (
	"fmt"
	"sync"
	"testing"

	"fudj/internal/cluster"
)

// thetaSQL exercises the balanced theta operator (smart theta): a
// multi-join interval FUDJ whose MATCH accepts non-identical bucket
// pairs, so with SetSmartTheta(true) it takes the coordinator-scheduled
// bucket-pair path — the one PR 5 excluded from durable shuffle
// barriers (its multicast routing carries mutable round-robin state
// that cannot be recovered per-partition).
const thetaSQL = `SELECT a.id, b.id FROM rides a, rides b WHERE a.vendor = 1 AND b.vendor = 2
	AND overlapping_interval(a.ride_interval, b.ride_interval, 50)`

// TestSmartThetaConcurrentWithCheckpointedQueries span-verifies the
// barrier exclusion under concurrency: with a kill-at-shuffle-barrier
// fault armed on a checkpointed Database, hash-partitioned queries
// (spatial: DefaultMatch) cross the durable shuffle barrier — the kill
// fires, the barrier span appears, partitions recover — while
// smart-theta queries scheduled alongside them never cross it: no
// barrier span, no kill, because their multicast routing is excluded
// from shuffle barriers. Everyone's multiset answer matches its serial
// baseline.
func TestSmartThetaConcurrentWithCheckpointedQueries(t *testing.T) {
	db := newTestDB(t, WithConcurrencyLimit(4), WithCheckpoints())
	db.SetSmartTheta(true)
	hashSQL := chaosQueries[0].sql // spatial: DefaultMatch, hash-partitioned COMBINE

	thetaBase := mustQuery(t, db, thetaSQL)
	hashBase := mustQuery(t, db, hashSQL)
	if len(thetaBase.Rows) == 0 || len(hashBase.Rows) == 0 {
		t.Fatal("baselines produced no rows")
	}
	db.MustConfigure(WithFaults(barrierKillConfig(cluster.BarrierShuffle, 1)))

	type outcome struct {
		name string
		res  *Result
		err  error
	}
	const rounds = 3
	results := make(chan outcome, 2*rounds)
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		for _, q := range []struct{ name, sql string }{{"theta", thetaSQL}, {"hash", hashSQL}} {
			wg.Add(1)
			go func(name, sql string) {
				defer wg.Done()
				res, err := db.Execute(sql, Trace())
				results <- outcome{name, res, err}
			}(q.name, q.sql)
		}
	}
	wg.Wait()
	close(results)

	for o := range results {
		if o.err != nil {
			t.Fatalf("%s query failed: %v", o.name, o.err)
		}
		shuffleBarriers := countSpans(o.res.Trace, "barrier shuffle")
		switch o.name {
		case "theta":
			sameRows(t, "concurrent theta", o.res.Rows, thetaBase.Rows)
			if shuffleBarriers != 0 {
				t.Errorf("smart-theta query crossed %d shuffle barriers, want 0 (excluded in this mode)", shuffleBarriers)
			}
			if o.res.Faults.BarrierKills != 0 {
				t.Errorf("shuffle-barrier kill fired %d times for a smart-theta query — it never crosses that barrier", o.res.Faults.BarrierKills)
			}
		case "hash":
			sameRows(t, "concurrent hash", o.res.Rows, hashBase.Rows)
			if shuffleBarriers == 0 {
				t.Error("checkpointed hash query crossed no shuffle barrier")
			}
			if o.res.Faults.BarrierKills == 0 {
				t.Error("hash query: armed shuffle-barrier kill never fired")
			}
			if o.res.Faults.PartitionsRecovered == 0 {
				t.Error("hash query: no partitions recovered from checkpoint")
			}
		}
	}
}

// TestSmartThetaBarrierLossFallsBackRetryable pins the recovery
// semantics the exclusion rests on: a smart-theta query that loses a
// node at its (plan) barrier without a checkpoint store surfaces a
// retryable BarrierLossError internally and converges by
// abort-and-rerun — same answer, Retries > 0 — even while checkpointed
// hash queries share the scheduler.
func TestSmartThetaBarrierLossFallsBackRetryable(t *testing.T) {
	// The classification itself: a barrier loss is always retryable.
	if loss := (&cluster.BarrierLossError{Barrier: cluster.BarrierPlan}); !cluster.IsRetryable(loss) {
		t.Fatal("BarrierLossError must classify retryable")
	}

	db := newTestDB(t, WithConcurrencyLimit(4))
	db.SetSmartTheta(true)
	base := mustQuery(t, db, thetaSQL)

	// No checkpoints + kill at the plan barrier: the recovery manager
	// has no store, so the loss aborts the step and the retry machinery
	// re-runs it.
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	db.MustConfigure(WithFaults(barrierKillConfig(cluster.BarrierPlan, 1)))

	var wg sync.WaitGroup
	errs := make([]error, 4)
	ress := make([]*Result, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ress[i], errs[i] = db.Execute(thetaSQL)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("theta query %d under barrier kill: %v", i, err)
		}
		sameRows(t, fmt.Sprintf("theta under barrier kill %d", i), ress[i].Rows, base.Rows)
		if ress[i].Faults.BarrierKills == 0 {
			t.Errorf("query %d: no barrier kill fired", i)
		}
		if ress[i].Faults.Retries == 0 {
			t.Errorf("query %d: no abort-and-rerun retry recorded", i)
		}
		if ress[i].Faults.PartitionsRecovered != 0 {
			t.Errorf("query %d: PartitionsRecovered = %d, want 0 without a store", i, ress[i].Faults.PartitionsRecovered)
		}
	}
}
