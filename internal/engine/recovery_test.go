package engine

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/trace"
)

func barrierKillConfig(b cluster.Barrier, node int) *cluster.FaultConfig {
	return &cluster.FaultConfig{
		Seed:         1,
		BarrierKills: []cluster.BarrierKill{{Barrier: b, Node: node}},
	}
}

// countSpans walks a trace counting spans with the given name.
func countSpans(root *trace.Span, name string) int {
	n := 0
	root.Walk(func(_ int, sp *trace.Span) {
		if sp.Name() == name {
			n++
		}
	})
	return n
}

// summarizeTasks counts partition task executions under every
// SUMMARIZE span — the "did SUMMARIZE re-run" probe.
func summarizeTasks(root *trace.Span) int {
	n := 0
	root.Walk(func(_ int, sp *trace.Span) {
		if sp.Name() != "SUMMARIZE" {
			return
		}
		for _, c := range sp.Children() {
			if c.Name() == "task" {
				n++
			}
		}
	})
	return n
}

// TestCheckpointRecoveryAtShuffleBarrier is the headline acceptance
// property: a node killed right after the shuffle barrier, with
// checkpointing on, yields multiset-identical results, recovers its
// partitions from checkpoint, and never re-runs SUMMARIZE for the
// surviving partitions (task spans equal to a fault-free run).
func TestCheckpointRecoveryAtShuffleBarrier(t *testing.T) {
	db := newTestDB(t)
	for _, q := range chaosQueries {
		t.Run(q.name, func(t *testing.T) {
			db.SetCheckpoints(false)
			db.MustConfigure(WithFaults(nil))
			base, err := db.Execute(q.sql, Trace())
			if err != nil {
				t.Fatal(err)
			}
			if len(base.Rows) == 0 {
				t.Fatal("baseline produced no rows")
			}
			baseTasks := summarizeTasks(base.Trace)
			if baseTasks == 0 {
				t.Fatal("baseline trace has no SUMMARIZE tasks — probe broken")
			}

			db.SetCheckpoints(true)
			db.MustConfigure(WithFaults(barrierKillConfig(cluster.BarrierShuffle, 1)))
			res, err := db.Execute(q.sql, Trace())
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, q.name+" after barrier kill", res.Rows, base.Rows)
			if res.Faults.BarrierKills == 0 {
				t.Error("no barrier kill fired — injection not wired through")
			}
			if res.Faults.PartitionsRecovered == 0 {
				t.Error("no partitions recovered from checkpoint")
			}
			if res.Faults.CheckpointBytes == 0 {
				t.Error("CheckpointBytes = 0 — nothing was made durable")
			}
			if got := summarizeTasks(res.Trace); got != baseTasks {
				t.Errorf("SUMMARIZE task spans = %d, want %d — surviving partitions must not re-run SUMMARIZE", got, baseTasks)
			}
			if got, want := countSpans(res.Trace, "SUMMARIZE"), countSpans(base.Trace, "SUMMARIZE"); got != want {
				t.Errorf("SUMMARIZE phase spans = %d, want %d — step must not abort-and-rerun", got, want)
			}
			if countSpans(res.Trace, "recover") == 0 {
				t.Error("no recover spans — recovery invisible to tracing")
			}
			if countSpans(res.Trace, "barrier shuffle") == 0 {
				t.Error("no shuffle barrier span")
			}
		})
	}
}

// TestRecoveryAbortRerunWithoutCheckpoints pins the baseline the
// tentpole replaces: the same barrier kill without a checkpoint store
// still converges — by re-running the whole join step, visible as
// extra SUMMARIZE spans and zero checkpoint recoveries.
func TestRecoveryAbortRerunWithoutCheckpoints(t *testing.T) {
	db := newTestDB(t)
	q := chaosQueries[0]
	base, err := db.Execute(q.sql, Trace())
	if err != nil {
		t.Fatal(err)
	}
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	db.MustConfigure(WithFaults(barrierKillConfig(cluster.BarrierShuffle, 1)))
	res, err := db.Execute(q.sql, Trace())
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "abort-and-rerun", res.Rows, base.Rows)
	if res.Faults.PartitionsRecovered != 0 {
		t.Errorf("PartitionsRecovered = %d, want 0 without checkpoints", res.Faults.PartitionsRecovered)
	}
	if res.Faults.CheckpointBytes != 0 {
		t.Errorf("CheckpointBytes = %d, want 0 without checkpoints", res.Faults.CheckpointBytes)
	}
	if res.Faults.Retries == 0 {
		t.Error("no step retry recorded for the aborted attempt")
	}
	if got, want := countSpans(res.Trace, "SUMMARIZE"), countSpans(base.Trace, "SUMMARIZE"); got <= want {
		t.Errorf("SUMMARIZE phase spans = %d, want > %d — abort-and-rerun must replay the step", got, want)
	}
}

// TestCheckpointRecoveryHealsDamage pins corruption healing: with
// every checkpoint write torn (or bit-flipped), a barrier kill still
// converges to the fault-free answer — the damaged checkpoints are
// detected by checksum, discarded, and the partitions recomputed.
func TestCheckpointRecoveryHealsDamage(t *testing.T) {
	db := newTestDB(t)
	base := mustQuery(t, db, chaosQueries[0].sql)
	for _, tc := range []struct {
		name string
		arm  func(cfg *cluster.FaultConfig)
	}{
		{"torn-write", func(cfg *cluster.FaultConfig) { cfg.TornWriteProb = 1 }},
		{"checkpoint-corrupt", func(cfg *cluster.FaultConfig) { cfg.CheckpointCorruptProb = 1 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := barrierKillConfig(cluster.BarrierShuffle, 1)
			tc.arm(cfg)
			db.SetCheckpoints(true)
			db.MustConfigure(WithFaults(cfg))
			res := mustQuery(t, db, chaosQueries[0].sql)
			sameRows(t, tc.name, res.Rows, base.Rows)
			if res.Faults.CheckpointsDiscarded == 0 {
				t.Error("no damaged checkpoints discarded at p=1")
			}
			if res.Faults.PartitionsRecovered != 0 {
				t.Errorf("PartitionsRecovered = %d, want 0 — every checkpoint was damaged", res.Faults.PartitionsRecovered)
			}
		})
	}
}

// TestKillAtBarrierMatrix sweeps barrier × node: every combination
// must recover in place and agree with the fault-free answer.
func TestKillAtBarrierMatrix(t *testing.T) {
	db := newTestDB(t)
	for _, q := range chaosQueries {
		base := mustQuery(t, db, q.sql)
		db.SetCheckpoints(true)
		for _, b := range []cluster.Barrier{cluster.BarrierPlan, cluster.BarrierShuffle} {
			for node := 0; node < 2; node++ {
				name := fmt.Sprintf("%s/%s-node%d", q.name, b, node)
				db.MustConfigure(WithFaults(barrierKillConfig(b, node)))
				res := mustQuery(t, db, q.sql)
				sameRows(t, name, res.Rows, base.Rows)
				if res.Faults.BarrierKills != 1 {
					t.Errorf("%s: BarrierKills = %d, want 1", name, res.Faults.BarrierKills)
				}
				if res.Faults.PartitionsRecovered == 0 {
					t.Errorf("%s: no partitions recovered", name)
				}
			}
		}
		db.SetCheckpoints(false)
		db.MustConfigure(WithFaults(nil))
	}
}

// TestCheckpointRecoverySweepsTempFiles asserts query teardown leaves
// no checkpoint or spill file behind, even under a full chaos mix with
// barrier kills and damaged checkpoint writes.
func TestCheckpointRecoverySweepsTempFiles(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t)
	db.SetCheckpoints(true)
	db.MustConfigure(WithMemoryBudget(64 << 20))
	cfg := chaosConfig(5)
	cfg.BarrierKills = []cluster.BarrierKill{{Barrier: cluster.BarrierShuffle, Node: 0}}
	cfg.TornWriteProb = 0.2
	db.MustConfigure(WithFaults(cfg))
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	for _, q := range chaosQueries {
		mustQuery(t, db, q.sql)
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after teardown: %s", e.Name())
	}
}

// TestRecoveryCancelledQuerySweepsTempFiles covers the abandoned-query
// path: a query cancelled mid-flight (both nodes straggling) must
// still tear down its spill and checkpoint directories.
func TestRecoveryCancelledQuerySweepsTempFiles(t *testing.T) {
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	db := newTestDB(t)
	db.SetCheckpoints(true)
	db.MustConfigure(WithMemoryBudget(64 << 20))
	db.MustConfigure(WithFaults(&cluster.FaultConfig{
		Seed:           1,
		StragglerNodes: []int{0, 1},
		StragglerDelay: 400 * time.Millisecond,
	}))
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	if _, err := db.ExecuteContext(ctx, chaosQueries[0].sql); err == nil {
		t.Fatal("cancelled query succeeded")
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after cancelled query: %s", e.Name())
	}
}
