package engine

import (
	"bytes"
	"testing"

	"fudj/internal/joins/builtin"
	"fudj/internal/types"
)

// The byte-level determinism contract behind retry and speculation:
// executing the same query on two independently built (identically
// seeded) multi-node clusters must produce byte-identical encoded
// results — not merely the same multiset. This is the runtime claim
// the fudjvet analyzers enforce statically:
//
//   - maporder backs the GROUP BY query (partial-aggregate emission
//     order, engine/groupby.go) and the builtin-mode interval and text
//     queries (bucket iteration order, joins/builtin).
//   - seedrand backs all of them: no execution decision may read the
//     wall clock or the global math/rand generator.
//   - udfcatch and ctxplumb keep failure and cancellation behavior
//     reproducible on the same paths.
//
// Go randomizes map iteration per map instance, so a reintroduced
// unsorted map range on any of these paths fails this test with high
// probability across repeated runs.
func TestByteIdenticalReexecution(t *testing.T) {
	queries := []struct {
		name    string
		mode    JoinMode
		sql     string
		backing string
	}{
		{
			name: "groupby",
			mode: ModeFUDJ,
			sql: `SELECT r.overall, COUNT(*) AS n, SUM(r.id) AS total
			      FROM reviews r GROUP BY r.overall ORDER BY r.overall`,
			backing: "maporder: groupby.go phase-1 partial emission order",
		},
		{
			name: "fudj-interval",
			mode: ModeFUDJ,
			sql: `SELECT a.id, b.id FROM rides a, rides b
			      WHERE a.vendor = 1 AND b.vendor = 2
			      AND overlapping_interval(a.ride_interval, b.ride_interval, 50)`,
			backing: "maporder/udfcatch: FUDJ COMBINE emission order",
		},
		{
			name: "builtin-interval",
			mode: ModeBuiltin,
			sql: `SELECT a.id, b.id FROM rides a, rides b
			      WHERE a.vendor = 1 AND b.vendor = 2
			      AND overlapping_interval(a.ride_interval, b.ride_interval, 50)`,
			backing: "maporder: builtin/interval.go bucket iteration order",
		},
		{
			name: "builtin-textsim",
			mode: ModeBuiltin,
			sql: `SELECT a.id, b.id FROM reviews a, reviews b
			      WHERE a.overall = 5 AND b.overall = 4
			      AND text_similarity_join(a.review, b.review, 0.8)`,
			backing: "maporder: builtin/textsim.go rank iteration order",
		},
	}

	run := func(t *testing.T, mode JoinMode, sql string) []byte {
		// A fresh database per execution: fresh map instances (fresh
		// iteration seeds), fresh cluster state.
		db := newTestDB(t)
		db.RegisterBuiltinJoin("overlapping_interval", BuiltinJoinFunc(builtin.IntervalOIP))
		db.RegisterBuiltinJoin("text_similarity_join", BuiltinJoinFunc(builtin.TextSimilarity))
		db.SetJoinMode(mode)
		res := mustQuery(t, db, sql)
		if len(res.Rows) == 0 {
			t.Fatalf("query produced no rows: %s", sql)
		}
		return types.EncodeRecords(res.Rows)
	}

	for _, q := range queries {
		t.Run(q.name, func(t *testing.T) {
			first := run(t, q.mode, q.sql)
			second := run(t, q.mode, q.sql)
			if !bytes.Equal(first, second) {
				t.Errorf("re-execution produced different bytes (%d vs %d); rule under test: %s",
					len(first), len(second), q.backing)
			}
		})
	}
}
