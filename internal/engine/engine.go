// Package engine is the distributed query engine the FUDJ framework is
// realized on — the role Apache AsterixDB plays in the paper. It binds
// together the catalog, the SQL front end, the rule-based planner with
// the FUDJ rewrite (§VI-C), and physical execution on the simulated
// shared-nothing cluster.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fudj/internal/catalog"
	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/expr"
	"fudj/internal/sched"
	"fudj/internal/sqlparse"
	"fudj/internal/trace"
	"fudj/internal/types"
)

// JoinMode selects how the planner implements a detected FUDJ
// predicate, letting the same query text drive the paper's three
// comparison arms.
type JoinMode int

const (
	// ModeFUDJ (default) generates the FUDJ plan of Fig. 8.
	ModeFUDJ JoinMode = iota
	// ModeBuiltin routes the predicate to a hand-built operator
	// registered via RegisterBuiltinJoin — the paper's from-scratch
	// "built-in" comparators.
	ModeBuiltin
)

// BuiltinJoinFunc is a hand-built distributed join operator: it
// receives both partitioned inputs with evaluators for their key
// expressions and produces concatenated (left ++ right) records.
type BuiltinJoinFunc func(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error)

// Database is one engine instance: metadata plus execution settings.
// A Database is safe for concurrent Execute calls: every query passes
// through the admission scheduler, and the mutable execution settings
// below are guarded by mu so a Set* call mid-flight never races a
// running query (each query reads a setting once, at a well-defined
// point).
type Database struct {
	catalog  *catalog.Catalog
	sched    *sched.Scheduler
	schedCfg sched.Config // accumulated by options, consumed at Open
	clock    trace.Clock  // fixed at Open
	tracing  bool         // fixed at Open

	mu         sync.RWMutex // guards the mutable settings below
	clusterCfg cluster.Config
	mode       JoinMode
	smartTheta bool
	builtins   map[string]BuiltinJoinFunc
	faultCfg   *cluster.FaultConfig
	retryPol   *cluster.RetryPolicy
	memBudget  int64
	ckpt       bool
	batchSize  int // shuffle/spill frame row cap; 0 = cluster default
}

// Open creates a database. With no options it mirrors the paper's
// testbed shape at laptop scale (4 nodes × 2 cores); pass Option
// values (WithCluster, WithMemoryBudget, WithFaults, WithTracing, …)
// to configure.
func Open(opts ...Option) (*Database, error) {
	db := &Database{
		catalog:    catalog.New(),
		clusterCfg: cluster.Config{Nodes: 4, CoresPerNode: 2},
		builtins:   make(map[string]BuiltinJoinFunc),
		clock:      trace.WallClock{},
	}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o.applyOption(db); err != nil {
			return nil, err
		}
	}
	if err := db.clusterCfg.Validate(); err != nil {
		return nil, err
	}
	db.schedCfg.Clock = db.clock
	db.sched = sched.New(db.schedCfg)
	return db, nil
}

// MustOpen is Open that panics on error, for tests and examples.
func MustOpen(opts ...Option) *Database {
	db, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// Catalog exposes the metadata store.
func (db *Database) Catalog() *catalog.Catalog { return db.catalog }

// Configure applies options to a live database, affecting subsequent
// queries only: settings are snapshotted per query, so a Configure
// call mid-flight flips the NEXT query, never a running one. The same
// Option values Open accepts work here, except options shaping state
// fixed at Open (the admission scheduler, the clock, always-on
// tracing) — those are rejected with an error naming the option, and
// options before the failing one stay applied.
func (db *Database) Configure(opts ...Option) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if oo, ok := o.(openOnlyOption); ok {
			return fmt.Errorf("engine: option %s can only be set at Open", oo.name)
		}
		if err := o.applyOption(db); err != nil {
			return err
		}
	}
	return nil
}

// MustConfigure is Configure that panics on error, for tests and
// examples.
func (db *Database) MustConfigure(opts ...Option) {
	if err := db.Configure(opts...); err != nil {
		panic(err)
	}
}

// SetJoinMode switches between FUDJ and built-in execution of FUDJ
// predicates.
func (db *Database) SetJoinMode(m JoinMode) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.mode = m
}

// SetCheckpoints enables durable phase barriers for subsequent
// queries: the broadcast plan and every partition's post-shuffle input
// are checkpointed, so a node lost at a barrier recovers in place
// (reload, or recompute on a damaged file) instead of aborting and
// re-running the whole join step.
func (db *Database) SetCheckpoints(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.ckpt = on
}

// SetSmartTheta enables the balanced theta bucket-matching operator
// for multi-join FUDJs, replacing the paper's broadcast + random
// partitioning (§VII-C) with coordinator-scheduled bucket pairs — the
// Theta Join Operator the paper proposes as future work (§VIII).
// Disabled by default to match the paper's measured configuration.
func (db *Database) SetSmartTheta(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.smartTheta = on
}

// SetCluster reconfigures the simulated cluster for subsequent queries
// (the scalability experiments sweep this).
func (db *Database) SetCluster(cfg cluster.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.clusterCfg = cfg
	return nil
}

// RegisterBuiltinJoin installs a hand-built operator for a FUDJ
// function name, used when the join mode is ModeBuiltin.
func (db *Database) RegisterBuiltinJoin(name string, op BuiltinJoinFunc) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.builtins[name] = op
}

// MemoryBudget reports the configured per-query budget (0 = unbounded).
func (db *Database) MemoryBudget() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.memBudget
}

// execSettings is the point-in-time copy of the mutable execution
// settings one query runs with: taken once under the read lock at
// query start, so a concurrent Set* call flips the NEXT query, never a
// running one.
type execSettings struct {
	clusterCfg cluster.Config
	mode       JoinMode
	smartTheta bool
	faultCfg   *cluster.FaultConfig
	retryPol   *cluster.RetryPolicy
	memBudget  int64
	ckpt       bool
	batchSize  int
}

// settings snapshots the mutable execution settings.
func (db *Database) settings() execSettings {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var fc *cluster.FaultConfig
	if db.faultCfg != nil {
		c := *db.faultCfg
		fc = &c
	}
	var rp *cluster.RetryPolicy
	if db.retryPol != nil {
		p := *db.retryPol
		rp = &p
	}
	return execSettings{
		clusterCfg: db.clusterCfg,
		mode:       db.mode,
		smartTheta: db.smartTheta,
		faultCfg:   fc,
		retryPol:   rp,
		memBudget:  db.memBudget,
		ckpt:       db.ckpt,
		batchSize:  db.batchSize,
	}
}

// builtin looks one hand-built operator up under the read lock.
func (db *Database) builtin(name string) (BuiltinJoinFunc, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	op, ok := db.builtins[name]
	return op, ok
}

// joinMode reads the join mode under the read lock.
func (db *Database) joinMode() JoinMode {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.mode
}

// smartThetaOn reads the smart-theta switch under the read lock.
func (db *Database) smartThetaOn() bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.smartTheta
}

// CreateDataset loads a dataset into the engine.
func (db *Database) CreateDataset(name string, schema *types.Schema, recs []types.Record) error {
	return db.catalog.CreateDataset(name, schema, recs)
}

// InstallLibrary uploads a FUDJ library so CREATE JOIN can reference it.
func (db *Database) InstallLibrary(lib *core.Library) error {
	return db.catalog.InstallLibrary(lib)
}

// JoinStats carries the join-operator counters of one query execution:
// the candidate/verify funnel and the per-phase wall-time breakdown
// the paper reasons about in §VII.
type JoinStats struct {
	Candidates int64 // record pairs reaching VERIFY
	Verified   int64 // pairs passing VERIFY
	Deduped    int64 // pairs suppressed by duplicate handling
	Output     int64 // records leaving join operators
	StateBytes int64 // encoded summary + plan bytes moved

	// Wall time spent in each FUDJ phase (summed over FUDJ join steps).
	SummarizeTime time.Duration
	PartitionTime time.Duration
	CombineTime   time.Duration

	// Batched execution: columnar frames moved by shuffle and spill
	// (see WithBatchSize), and the scratch-batch pool's reuse funnel.
	Batches       int64 // columnar frames encoded on the hot path
	BatchRows     int64 // records carried by those frames
	BatchPoolGets int64 // scratch batches requested from the pool
	BatchPoolHits int64 // requests served by reuse instead of allocation
}

// RowsPerBatch reports the mean rows per encoded frame (0 when no
// frame was encoded).
func (s JoinStats) RowsPerBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchRows) / float64(s.Batches)
}

// PoolReuse reports the fraction of scratch-batch requests served from
// the pool (0 when none were made).
func (s JoinStats) PoolReuse() float64 {
	if s.BatchPoolGets == 0 {
		return 0
	}
	return float64(s.BatchPoolHits) / float64(s.BatchPoolGets)
}

// ClusterStats carries the simulated cluster's transport and compute
// counters for one execution.
type ClusterStats struct {
	BytesShuffled   int64
	RecordsShuffled int64
	BytesBroadcast  int64
	Tasks           int64
	MaxBusy         time.Duration // per-partition makespan (ideal hardware)
	TotalBusy       time.Duration
}

// FaultStats carries the fault-recovery counters for one execution
// (zero without injected faults): task re-executions, tasks that
// succeeded after retrying, straggler attempts abandoned for a
// speculative copy, and corrupted shuffle transfers healed by
// resending.
type FaultStats struct {
	Retries           int64
	Recovered         int64
	Speculative       int64
	CorruptionsHealed int64

	// Checkpointed execution: barrier-kill injections fired, bytes
	// written to checkpoint files, partitions restored from a durable
	// checkpoint instead of recomputation, and damaged (torn or
	// corrupt) checkpoints detected and discarded.
	BarrierKills         int64
	CheckpointBytes      int64
	PartitionsRecovered  int64
	CheckpointsDiscarded int64
}

// MemoryStats carries the memory-bounding counters for one execution
// (zero when no budget is set). Peak is the high-water mark of
// budget-governed transient memory (inbox credit plus COMBINE builds)
// and never exceeds the budget; PeakInput is the largest materialized
// partition input, reported for sizing budgets. BytesSpilled/SpillRuns
// count COMBINE spill traffic, BucketsSplit counts skew splits of
// over-budget buckets, and Backpressure counts sender stalls and
// chunked transfers on bounded shuffle inboxes.
type MemoryStats struct {
	Peak         int64
	PeakInput    int64
	BytesSpilled int64
	SpillRuns    int64
	BucketsSplit int64
	Backpressure int64
}

// Result is the outcome of one query. Execution counters are grouped
// by subsystem: Join for operator-level counts and phase times,
// Cluster for transport/compute, Faults for recovery, Memory for
// bounded-execution behaviour. Trace holds the root execution span
// when tracing was enabled (WithTracing, the Trace exec option, or
// EXPLAIN ANALYZE), nil otherwise. Metrics is the unified name→value
// view of the cluster's metric registry, taken in one snapshot at
// query end.
type Result struct {
	Schema  *types.Schema
	Rows    []types.Record
	Plan    string        // EXPLAIN-style plan description
	Elapsed time.Duration // wall-clock execution time

	Join    JoinStats
	Cluster ClusterStats
	Faults  FaultStats
	Memory  MemoryStats
	Sched   SchedStats

	Trace   *trace.Span
	Metrics map[string]int64
}

type statsCounters struct {
	candidates atomic.Int64
	verified   atomic.Int64
	deduped    atomic.Int64
	joinOutput atomic.Int64
	stateBytes atomic.Int64
	summarize  atomic.Int64 // nanoseconds
	partition  atomic.Int64
	combine    atomic.Int64
}

func (c *statsCounters) snapshot() JoinStats {
	return JoinStats{
		Candidates:    c.candidates.Load(),
		Verified:      c.verified.Load(),
		Deduped:       c.deduped.Load(),
		Output:        c.joinOutput.Load(),
		StateBytes:    c.stateBytes.Load(),
		SummarizeTime: time.Duration(c.summarize.Load()),
		PartitionTime: time.Duration(c.partition.Load()),
		CombineTime:   time.Duration(c.combine.Load()),
	}
}

// flush copies the engine's hot-path atomics into named counters of
// the cluster's metric registry, so one Values() call sees the whole
// execution (the registry's single-snapshot discipline).
func (c *statsCounters) flush(m *cluster.Metrics) {
	s := c.snapshot()
	m.Counter("join.candidates").Add(s.Candidates)
	m.Counter("join.verified").Add(s.Verified)
	m.Counter("join.deduped").Add(s.Deduped)
	m.Counter("join.output").Add(s.Output)
	m.Counter("join.state.bytes").Add(s.StateBytes)
	m.Counter("join.summarize.ns").Add(int64(s.SummarizeTime))
	m.Counter("join.partition.ns").Add(int64(s.PartitionTime))
	m.Counter("join.combine.ns").Add(int64(s.CombineTime))
}

// execOpts carries per-query execution options.
type execOpts struct {
	trace    bool
	timeout  time.Duration
	priority sched.Priority
}

// ExecOption adjusts the execution of one statement.
type ExecOption func(*execOpts)

// Trace enables execution tracing for this statement only: the Result
// carries the root span in Result.Trace.
func Trace() ExecOption {
	return func(o *execOpts) { o.trace = true }
}

// Timeout bounds this statement's execution: past d the query's
// context is cancelled (aborting cluster exchanges and barrier waits)
// and the statement returns a *TimeoutError wrapping
// context.DeadlineExceeded — classified non-retryable by the fault
// machinery. Zero or negative disables the bound.
func Timeout(d time.Duration) ExecOption {
	return func(o *execOpts) {
		if d > 0 {
			o.timeout = d
		}
	}
}

// Priority ranks this statement for admission under concurrent load
// (see sched.Priority). The default is sched.PriorityNormal.
func Priority(p sched.Priority) ExecOption {
	return func(o *execOpts) { o.priority = p }
}

// Execute parses and runs one statement. DDL statements return a
// Result with a status row; SELECT returns the query output.
func (db *Database) Execute(sql string, opts ...ExecOption) (*Result, error) {
	return db.ExecuteContext(context.Background(), sql, opts...)
}

// ExecuteContext is Execute bounded by a context: cancelling it (or
// exceeding its deadline) aborts in-flight cluster tasks and returns
// the context's error.
func (db *Database) ExecuteContext(ctx context.Context, sql string, opts ...ExecOption) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecuteStmtContext(ctx, stmt, opts...)
}

// ExecuteStmt runs an already-parsed statement.
func (db *Database) ExecuteStmt(stmt sqlparse.Statement, opts ...ExecOption) (*Result, error) {
	return db.ExecuteStmtContext(context.Background(), stmt, opts...)
}

// ExecuteStmtContext runs an already-parsed statement under a context.
func (db *Database) ExecuteStmtContext(ctx context.Context, stmt sqlparse.Statement, opts ...ExecOption) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.CreateJoin:
		names := make([]string, len(s.Params))
		typs := make([]string, len(s.Params))
		for i, p := range s.Params {
			names[i], typs[i] = p.Name, p.Type
		}
		if err := db.catalog.CreateJoin(s.Name, names, typs, s.Class, s.Library); err != nil {
			return nil, err
		}
		return statusResult(fmt.Sprintf("join %q created", s.Name)), nil

	case *sqlparse.DropJoin:
		if err := db.catalog.DropJoin(s.Name); err != nil {
			return nil, err
		}
		return statusResult(fmt.Sprintf("join %q dropped", s.Name)), nil

	case *sqlparse.Select:
		plan, err := db.plan(s)
		if err != nil {
			return nil, err
		}
		if s.Explain && !s.Analyze {
			return &Result{
				Schema: types.NewSchema(types.Field{Name: "plan", Kind: types.KindString}),
				Rows:   []types.Record{{types.NewString(plan.explain())}},
				Plan:   plan.explain(),
			}, nil
		}
		eo := execOpts{trace: db.tracing, priority: sched.PriorityNormal}
		for _, o := range opts {
			if o != nil {
				o(&eo)
			}
		}
		if s.Explain && s.Analyze {
			// EXPLAIN ANALYZE really executes the query, with tracing
			// forced so the rendered plan carries measured spans.
			eo.trace = true
		}
		// Admission: every executing SELECT holds a scheduler ticket for
		// its whole lifetime — the slot and memory lease come back only
		// when the query (including its spill/checkpoint teardown) is
		// done, which is what lets Drain guarantee a clean sweep.
		runCtx, cancel, ticket, err := db.admit(ctx, eo)
		if err != nil {
			return nil, err
		}
		defer cancel()
		defer ticket.Release()
		res, err := db.run(runCtx, plan, eo, ticket)
		if err != nil {
			return nil, wrapTimeout(err, eo)
		}
		if s.Explain && s.Analyze {
			// Replace the output rows with the executed plan annotated by
			// per-operator spans: one row per rendered line, partition
			// tasks folded into per-operator summaries.
			lines := trace.RenderLines(res.Trace, trace.RenderOptions{CollapseTasks: true})
			rows := make([]types.Record, len(lines))
			for i, l := range lines {
				rows[i] = types.Record{types.NewString(l)}
			}
			res.Schema = types.NewSchema(types.Field{Name: "plan", Kind: types.KindString})
			res.Rows = rows
			return res, nil
		}
		if s.Into != "" {
			// SELECT ... INTO: materialize the result as a new dataset —
			// how the paper's motivating workflow stores the Query 1
			// output as Damaged_Parks before Query 2 reads it. Output
			// column names are sanitized (dots become underscores) so the
			// new dataset's fields re-qualify cleanly in later queries.
			fields := make([]types.Field, res.Schema.Len())
			taken := make(map[string]bool, len(fields))
			for i, f := range res.Schema.Fields {
				name := sanitizeFieldName(f.Name)
				for taken[name] {
					name += "_"
				}
				taken[name] = true
				fields[i] = types.Field{Name: name, Kind: f.Kind}
			}
			if err := db.catalog.CreateDataset(s.Into, types.NewSchema(fields...), res.Rows); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// sanitizeFieldName makes a projected column name usable as a stored
// dataset field: alias qualifiers and expression punctuation collapse
// to underscores.
func sanitizeFieldName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func statusResult(msg string) *Result {
	return &Result{
		Schema: types.NewSchema(types.Field{Name: "status", Kind: types.KindString}),
		Rows:   []types.Record{{types.NewString(msg)}},
	}
}
