// Package engine is the distributed query engine the FUDJ framework is
// realized on — the role Apache AsterixDB plays in the paper. It binds
// together the catalog, the SQL front end, the rule-based planner with
// the FUDJ rewrite (§VI-C), and physical execution on the simulated
// shared-nothing cluster.
package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"fudj/internal/catalog"
	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/expr"
	"fudj/internal/sqlparse"
	"fudj/internal/types"
)

// JoinMode selects how the planner implements a detected FUDJ
// predicate, letting the same query text drive the paper's three
// comparison arms.
type JoinMode int

const (
	// ModeFUDJ (default) generates the FUDJ plan of Fig. 8.
	ModeFUDJ JoinMode = iota
	// ModeBuiltin routes the predicate to a hand-built operator
	// registered via RegisterBuiltinJoin — the paper's from-scratch
	// "built-in" comparators.
	ModeBuiltin
)

// BuiltinJoinFunc is a hand-built distributed join operator: it
// receives both partitioned inputs with evaluators for their key
// expressions and produces concatenated (left ++ right) records.
type BuiltinJoinFunc func(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error)

// Options configure a Database.
type Options struct {
	Cluster cluster.Config
}

// DefaultOptions mirror the paper's testbed shape at laptop scale:
// 4 nodes with 2 cores each.
func DefaultOptions() Options {
	return Options{Cluster: cluster.Config{Nodes: 4, CoresPerNode: 2}}
}

// Database is one engine instance: metadata plus execution settings.
type Database struct {
	catalog    *catalog.Catalog
	opts       Options
	mode       JoinMode
	smartTheta bool
	builtins   map[string]BuiltinJoinFunc
	faultCfg   *cluster.FaultConfig
	retryPol   *cluster.RetryPolicy
	memBudget  int64
}

// Open creates a database with the given options.
func Open(opts Options) (*Database, error) {
	if err := opts.Cluster.Validate(); err != nil {
		return nil, err
	}
	return &Database{
		catalog:  catalog.New(),
		opts:     opts,
		builtins: make(map[string]BuiltinJoinFunc),
	}, nil
}

// MustOpen is Open that panics on error, for tests and examples.
func MustOpen(opts Options) *Database {
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// Catalog exposes the metadata store.
func (db *Database) Catalog() *catalog.Catalog { return db.catalog }

// SetJoinMode switches between FUDJ and built-in execution of FUDJ
// predicates.
func (db *Database) SetJoinMode(m JoinMode) { db.mode = m }

// SetSmartTheta enables the balanced theta bucket-matching operator
// for multi-join FUDJs, replacing the paper's broadcast + random
// partitioning (§VII-C) with coordinator-scheduled bucket pairs — the
// Theta Join Operator the paper proposes as future work (§VIII).
// Disabled by default to match the paper's measured configuration.
func (db *Database) SetSmartTheta(on bool) { db.smartTheta = on }

// SetCluster reconfigures the simulated cluster for subsequent queries
// (the scalability experiments sweep this).
func (db *Database) SetCluster(cfg cluster.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	db.opts.Cluster = cfg
	return nil
}

// RegisterBuiltinJoin installs a hand-built operator for a FUDJ
// function name, used when the join mode is ModeBuiltin.
func (db *Database) RegisterBuiltinJoin(name string, op BuiltinJoinFunc) {
	db.builtins[name] = op
}

// SetFaultConfig arms fault injection for subsequent queries: every
// query execution builds a fresh, deterministic injector from this
// configuration, so the same query sees the same faults on every run.
// A nil config disables injection.
func (db *Database) SetFaultConfig(cfg *cluster.FaultConfig) {
	if cfg == nil {
		db.faultCfg = nil
		return
	}
	c := *cfg
	db.faultCfg = &c
}

// SetRetryPolicy overrides the cluster's task retry policy for
// subsequent queries (backoff shape, attempt cap, speculation).
func (db *Database) SetRetryPolicy(pol cluster.RetryPolicy) {
	db.retryPol = &pol
}

// SetMemoryBudget bounds the transient memory of subsequent queries to
// the given total bytes, split evenly over partitions. Under a budget,
// shuffle inboxes are credit-bounded (senders block instead of
// buffering without limit) and COMBINE hash builds that exceed their
// partition's share spill bucket runs to disk and re-join them
// hybrid-hash style, skew-splitting buckets too large to ever fit. A
// record larger than the per-partition hard cap (2x the share) fails
// the query with a structured *core.ResourceError. Zero or negative
// disables bounding; unbounded execution is byte-for-byte unchanged.
func (db *Database) SetMemoryBudget(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	db.memBudget = bytes
}

// MemoryBudget reports the configured per-query budget (0 = unbounded).
func (db *Database) MemoryBudget() int64 { return db.memBudget }

// CreateDataset loads a dataset into the engine.
func (db *Database) CreateDataset(name string, schema *types.Schema, recs []types.Record) error {
	return db.catalog.CreateDataset(name, schema, recs)
}

// InstallLibrary uploads a FUDJ library so CREATE JOIN can reference it.
func (db *Database) InstallLibrary(lib *core.Library) error {
	return db.catalog.InstallLibrary(lib)
}

// Stats carries the operator-level counters of one query execution.
type Stats struct {
	Candidates int64 // record pairs reaching VERIFY
	Verified   int64 // pairs passing VERIFY
	Deduped    int64 // pairs suppressed by duplicate handling
	JoinOutput int64 // records leaving join operators
	StateBytes int64 // encoded summary + plan bytes moved

	// Wall time spent in each FUDJ phase (summed over FUDJ join steps),
	// the phase breakdown the paper reasons about in §VII.
	SummarizeTime time.Duration
	PartitionTime time.Duration
	CombineTime   time.Duration
}

type statsCounters struct {
	candidates atomic.Int64
	verified   atomic.Int64
	deduped    atomic.Int64
	joinOutput atomic.Int64
	stateBytes atomic.Int64
	summarize  atomic.Int64 // nanoseconds
	partition  atomic.Int64
	combine    atomic.Int64
}

func (c *statsCounters) snapshot() Stats {
	return Stats{
		Candidates:    c.candidates.Load(),
		Verified:      c.verified.Load(),
		Deduped:       c.deduped.Load(),
		JoinOutput:    c.joinOutput.Load(),
		StateBytes:    c.stateBytes.Load(),
		SummarizeTime: time.Duration(c.summarize.Load()),
		PartitionTime: time.Duration(c.partition.Load()),
		CombineTime:   time.Duration(c.combine.Load()),
	}
}

// Result is the outcome of one query.
type Result struct {
	Schema  *types.Schema
	Rows    []types.Record
	Plan    string        // EXPLAIN-style plan description
	Elapsed time.Duration // wall-clock execution time
	Stats   Stats
	// Cluster cost counters for the execution.
	BytesShuffled   int64
	RecordsShuffled int64
	BytesBroadcast  int64
	MaxBusy         time.Duration // per-partition makespan (ideal hardware)
	TotalBusy       time.Duration
	// Fault-recovery counters for the execution (zero without injected
	// faults): task re-executions, tasks that succeeded after retrying,
	// straggler attempts abandoned for a speculative copy, and corrupted
	// shuffle transfers healed by resending.
	Retries           int64
	Recovered         int64
	Speculative       int64
	CorruptionsHealed int64
	// Memory-bounding counters (zero when no budget is set). PeakMemory
	// is the high-water mark of budget-governed transient memory (inbox
	// credit plus COMBINE builds) and never exceeds the budget; PeakInput
	// is the largest materialized partition input, reported for sizing
	// budgets. BytesSpilled/SpillRuns count COMBINE spill traffic,
	// BucketsSplit counts skew splits of over-budget buckets, and
	// Backpressure counts sender stalls and chunked transfers on bounded
	// shuffle inboxes.
	PeakMemory   int64
	PeakInput    int64
	BytesSpilled int64
	SpillRuns    int64
	BucketsSplit int64
	Backpressure int64
}

// Execute parses and runs one statement. DDL statements return a
// Result with a status row; SELECT returns the query output.
func (db *Database) Execute(sql string) (*Result, error) {
	return db.ExecuteContext(context.Background(), sql)
}

// ExecuteContext is Execute bounded by a context: cancelling it (or
// exceeding its deadline) aborts in-flight cluster tasks and returns
// the context's error.
func (db *Database) ExecuteContext(ctx context.Context, sql string) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecuteStmtContext(ctx, stmt)
}

// ExecuteStmt runs an already-parsed statement.
func (db *Database) ExecuteStmt(stmt sqlparse.Statement) (*Result, error) {
	return db.ExecuteStmtContext(context.Background(), stmt)
}

// ExecuteStmtContext runs an already-parsed statement under a context.
func (db *Database) ExecuteStmtContext(ctx context.Context, stmt sqlparse.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.CreateJoin:
		names := make([]string, len(s.Params))
		typs := make([]string, len(s.Params))
		for i, p := range s.Params {
			names[i], typs[i] = p.Name, p.Type
		}
		if err := db.catalog.CreateJoin(s.Name, names, typs, s.Class, s.Library); err != nil {
			return nil, err
		}
		return statusResult(fmt.Sprintf("join %q created", s.Name)), nil

	case *sqlparse.DropJoin:
		if err := db.catalog.DropJoin(s.Name); err != nil {
			return nil, err
		}
		return statusResult(fmt.Sprintf("join %q dropped", s.Name)), nil

	case *sqlparse.Select:
		plan, err := db.plan(s)
		if err != nil {
			return nil, err
		}
		if s.Explain {
			return &Result{
				Schema: types.NewSchema(types.Field{Name: "plan", Kind: types.KindString}),
				Rows:   []types.Record{{types.NewString(plan.explain())}},
				Plan:   plan.explain(),
			}, nil
		}
		res, err := db.run(ctx, plan)
		if err != nil {
			return nil, err
		}
		if s.Into != "" {
			// SELECT ... INTO: materialize the result as a new dataset —
			// how the paper's motivating workflow stores the Query 1
			// output as Damaged_Parks before Query 2 reads it. Output
			// column names are sanitized (dots become underscores) so the
			// new dataset's fields re-qualify cleanly in later queries.
			fields := make([]types.Field, res.Schema.Len())
			taken := make(map[string]bool, len(fields))
			for i, f := range res.Schema.Fields {
				name := sanitizeFieldName(f.Name)
				for taken[name] {
					name += "_"
				}
				taken[name] = true
				fields[i] = types.Field{Name: name, Kind: f.Kind}
			}
			if err := db.catalog.CreateDataset(s.Into, types.NewSchema(fields...), res.Rows); err != nil {
				return nil, err
			}
		}
		return res, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// sanitizeFieldName makes a projected column name usable as a stored
// dataset field: alias qualifiers and expression punctuation collapse
// to underscores.
func sanitizeFieldName(name string) string {
	out := make([]rune, 0, len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func statusResult(msg string) *Result {
	return &Result{
		Schema: types.NewSchema(types.Field{Name: "status", Kind: types.KindString}),
		Rows:   []types.Record{{types.NewString(msg)}},
	}
}
