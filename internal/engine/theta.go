package engine

import (
	"runtime"
	"sort"
	"sync"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/types"
)

// runSmartTheta implements the balanced theta bucket-matching operator
// the paper proposes as future work (§VIII) to lift the interval
// join's scalability limit. Instead of broadcasting one whole side:
//
//  1. gather per-bucket record counts from both sides (tiny: one count
//     per distinct bucket id),
//  2. enumerate, in parallel, which right buckets each left bucket
//     matches, and greedily assign each left bucket — with cost
//     |b1| * Σ|matching b2| — to the least-loaded partition,
//  3. route each left record to the single partition owning its
//     bucket, and multicast each right record only to the partitions
//     owning at least one matching left bucket,
//  4. each partition joins its owned left buckets against the matching
//     right buckets it received.
//
// Every matched pair is processed exactly once (at the owner of its
// left bucket), so no result is produced twice.
func (db *Database) runSmartTheta(clus *cluster.Cluster, mem *memState, join core.Join,
	combineBuckets combineFn,
	lAssigned, rAssigned cluster.Data) (cluster.Data, error) {

	countBuckets := func(data cluster.Data) (map[int]int64, error) {
		parts, err := cluster.RunValues(clus, data, func(_ int, in []types.Record) (map[int]int64, error) {
			m := make(map[int]int64)
			for _, r := range in {
				m[int(r[0].Int64())]++
			}
			return m, nil
		})
		if err != nil {
			return nil, err
		}
		acc := make(map[int]int64)
		for _, m := range parts {
			for b, n := range m {
				acc[b] += n
			}
		}
		return acc, nil
	}
	lCounts, err := countBuckets(lAssigned)
	if err != nil {
		return nil, err
	}
	rCounts, err := countBuckets(rAssigned)
	if err != nil {
		return nil, err
	}
	lIDs := sortedKeys(lCounts)
	rIDs := sortedKeys(rCounts)

	// Parallel enumeration: matches[i] lists the right buckets matching
	// lIDs[i]. MATCH implementations are required to be pure, so this
	// fan-out is safe. Each worker runs under a panic guard — a MATCH
	// panic in a bare goroutine would kill the whole process instead of
	// failing the query.
	name := join.Descriptor().Name
	matches := make([][]int, len(lIDs))
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	chunk := (len(lIDs) + workers - 1) / workers
	workerErrs := make([]error, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(lIDs) {
			hi = len(lIDs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer core.CatchPanic(name, "match", -1, nil, &workerErrs[w])
			for i := lo; i < hi; i++ {
				for _, b2 := range rIDs {
					if join.Match(lIDs[i], b2) {
						matches[i] = append(matches[i], b2)
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for _, werr := range workerErrs {
		if werr != nil {
			return nil, werr
		}
	}

	// Greedy longest-processing-time assignment of left buckets. A hot
	// bucket whose cost exceeds the per-partition fair share is split:
	// it gets several owner partitions and its records are spread over
	// them round-robin, so skewed workloads (the interval join's rush
	// hours) cannot produce a straggler. Each left *record* still lands
	// on exactly one partition, so no pair is produced twice.
	type task struct {
		idx  int // position in lIDs
		cost int64
	}
	var totalCost int64
	tasks := make([]task, 0, len(lIDs))
	for i, b1 := range lIDs {
		var rhs int64
		for _, b2 := range matches[i] {
			rhs += rCounts[b2]
		}
		if rhs == 0 {
			continue // no matching right bucket: drop the left bucket
		}
		cost := lCounts[b1] * rhs
		totalCost += cost
		tasks = append(tasks, task{idx: i, cost: cost})
	}
	sort.Slice(tasks, func(i, j int) bool {
		if tasks[i].cost != tasks[j].cost {
			return tasks[i].cost > tasks[j].cost
		}
		return lIDs[tasks[i].idx] < lIDs[tasks[j].idx]
	})
	p := clus.Partitions()
	fairShare := totalCost/int64(p) + 1
	load := make([]int64, p)
	lOwners := make(map[int][]int, len(tasks)) // left bucket -> owner partitions
	ownedMatches := make([]map[int][]int, p)   // partition -> b1 -> matching b2 list
	rDest := make(map[int][]int)               // right bucket -> partitions (deduped)
	rSeen := make(map[int]map[int]bool)
	assign := func(b1 int, b2s []int, cost int64) {
		best := 0
		for i := 1; i < p; i++ {
			if load[i] < load[best] {
				best = i
			}
		}
		load[best] += cost
		lOwners[b1] = append(lOwners[b1], best)
		if ownedMatches[best] == nil {
			ownedMatches[best] = make(map[int][]int)
		}
		ownedMatches[best][b1] = b2s
		for _, b2 := range b2s {
			s, ok := rSeen[b2]
			if !ok {
				s = make(map[int]bool)
				rSeen[b2] = s
			}
			if !s[best] {
				s[best] = true
				rDest[b2] = append(rDest[b2], best)
			}
		}
	}
	for _, t := range tasks {
		b1 := lIDs[t.idx]
		splits := int(t.cost / fairShare)
		if splits < 1 {
			splits = 1
		}
		if splits > p {
			splits = p
		}
		share := t.cost / int64(splits)
		for s := 0; s < splits; s++ {
			assign(b1, matches[t.idx], share)
		}
	}

	// Route: left records spread round-robin over their bucket's
	// owners, right records multicast to all partitions owning a
	// matching left bucket.
	var rrMu sync.Mutex
	rr := make(map[int]int, len(lOwners))
	lRouted, err := clus.ExchangeMulti(lAssigned, func(_ int, r types.Record) []int {
		b := int(r[0].Int64())
		owners := lOwners[b]
		switch len(owners) {
		case 0:
			return nil
		case 1:
			return owners[:1]
		}
		rrMu.Lock()
		i := rr[b]
		rr[b] = i + 1
		rrMu.Unlock()
		return owners[i%len(owners) : i%len(owners)+1]
	})
	if err != nil {
		return nil, err
	}
	rRouted, err := clus.ExchangeMulti(rAssigned, func(_ int, r types.Record) []int {
		return rDest[int(r[0].Int64())]
	})
	if err != nil {
		return nil, err
	}

	// Each partition joins its owned pairs.
	return clus.Run(lRouted, func(part int, in []types.Record) (out []types.Record, err error) {
		defer core.CatchPanic(name, "combine", part, nil, &err)
		if mem != nil {
			// Memory-bounded owned-pair join: invert this partition's
			// owned (b1 -> b2s) table so probe records route to their
			// matching build buckets, then run the budgeted combiner.
			rev := make(map[int][]int)
			for b1, b2s := range ownedMatches[part] {
				for _, b2 := range b2s {
					rev[b2] = append(rev[b2], b1)
				}
			}
			for _, b1s := range rev {
				sort.Ints(b1s)
			}
			matcher := func(b2 int, _ []int) []int { return rev[b2] }
			return boundedCombine(mem, name, part, in, rRouted[part], matcher, combineBuckets)
		}
		lBuckets := groupByBucket(in)
		rBuckets := groupByBucket(rRouted[part])
		for _, b1 := range sortedIDs(lBuckets) {
			ls := lBuckets[b1]
			for _, b2 := range ownedMatches[part][b1] {
				if rs, ok := rBuckets[b2]; ok {
					out = combineBuckets(out, b1, ls, b2, rs)
				}
			}
		}
		return out, nil
	})
}

func sortedKeys(m map[int]int64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
