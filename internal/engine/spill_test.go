package engine

import (
	"errors"
	"strings"
	"testing"

	"fudj/internal/cluster"
	"fudj/internal/core"
	"fudj/internal/types"
)

// tinyBudget is small enough that every example join's COMBINE working
// set exceeds its partition share (forcing spill) while any single
// extended record stays below the hard cap.
const tinyBudget = 8192

// TestBoundedEquivalence is the headline memory-bounding property:
// with a budget far below the working set, every example join spills
// yet produces exactly the unbounded results, and the tracked peak
// never exceeds the budget.
func TestBoundedEquivalence(t *testing.T) {
	db := newTestDB(t)
	baseline := make(map[string][]types.Record)
	for _, q := range chaosQueries {
		baseline[q.name] = mustQuery(t, db, q.sql).Rows
	}

	db.MustConfigure(WithMemoryBudget(tinyBudget))
	for _, q := range chaosQueries {
		res := mustQuery(t, db, q.sql)
		sameRows(t, q.name+" under budget", res.Rows, baseline[q.name])
		if res.Memory.BytesSpilled == 0 || res.Memory.SpillRuns == 0 {
			t.Errorf("%s: budget %d forced no spilling (spilled=%d runs=%d)",
				q.name, tinyBudget, res.Memory.BytesSpilled, res.Memory.SpillRuns)
		}
		if res.Memory.Peak <= 0 {
			t.Errorf("%s: PeakMemory not tracked", q.name)
		}
		if res.Memory.Peak > tinyBudget {
			t.Errorf("%s: PeakMemory %d exceeds budget %d", q.name, res.Memory.Peak, tinyBudget)
		}
		if res.Memory.Backpressure == 0 {
			t.Errorf("%s: bounded inboxes reported no backpressure", q.name)
		}
		t.Logf("%s: peak=%d input=%d spilled=%d runs=%d split=%d bp=%d",
			q.name, res.Memory.Peak, res.Memory.PeakInput, res.Memory.BytesSpilled,
			res.Memory.SpillRuns, res.Memory.BucketsSplit, res.Memory.Backpressure)
	}
}

// TestBoundedSmartThetaEquivalence covers the third COMBINE path: the
// coordinator-scheduled theta operator under a budget.
func TestBoundedSmartThetaEquivalence(t *testing.T) {
	db := newTestDB(t)
	sql := chaosQueries[2].sql // interval join exercises the theta path
	baseline := mustQuery(t, db, sql).Rows

	db.SetSmartTheta(true)
	db.MustConfigure(WithMemoryBudget(tinyBudget))
	res := mustQuery(t, db, sql)
	sameRows(t, "smart theta under budget", res.Rows, baseline)
	if res.Memory.BytesSpilled == 0 {
		t.Error("smart theta under budget did not spill")
	}
	if res.Memory.Peak > tinyBudget {
		t.Errorf("PeakMemory %d exceeds budget %d", res.Memory.Peak, tinyBudget)
	}
}

// TestBoundedWithFaults composes the budget with PR 1's fault
// injection: spilled, crashed, and retried execution must still match
// the fault-free unbounded baseline.
func TestBoundedWithFaults(t *testing.T) {
	db := newTestDB(t)
	baseline := make(map[string][]types.Record)
	for _, q := range chaosQueries {
		baseline[q.name] = mustQuery(t, db, q.sql).Rows
	}

	db.MustConfigure(WithMemoryBudget(tinyBudget))
	db.MustConfigure(WithFaults(chaosConfig(42)))
	db.MustConfigure(WithRetryPolicy(chaosRetry()))
	for _, q := range chaosQueries {
		res := mustQuery(t, db, q.sql)
		sameRows(t, q.name+" under budget+chaos", res.Rows, baseline[q.name])
		if res.Faults.Retries == 0 {
			t.Errorf("%s: no retries at crash p=0.2", q.name)
		}
		if res.Memory.BytesSpilled == 0 {
			t.Errorf("%s: no spilling under budget", q.name)
		}
		if res.Memory.Peak > tinyBudget {
			t.Errorf("%s: PeakMemory %d exceeds budget %d", q.name, res.Memory.Peak, tinyBudget)
		}
	}
}

// TestUnboundedUnchanged pins the zero-overhead contract: without a
// budget every memory counter is zero and results are unaffected.
func TestUnboundedUnchanged(t *testing.T) {
	db := newTestDB(t)
	res := mustQuery(t, db, chaosQueries[0].sql)
	if res.Memory.Peak != 0 || res.Memory.PeakInput != 0 || res.Memory.BytesSpilled != 0 ||
		res.Memory.SpillRuns != 0 || res.Memory.BucketsSplit != 0 || res.Memory.Backpressure != 0 {
		t.Errorf("unbounded run reported memory counters: %+v", res)
	}
	db.MustConfigure(WithMemoryBudget(-5)) // negative clamps to unbounded
	if db.MemoryBudget() != 0 {
		t.Error("negative budget should clamp to 0")
	}
}

// TestBucketSplitOnSkew forces the skew path: every record of a
// self-joining dataset lands in the same buckets, so one bucket's
// build side alone exceeds the partition share and must be chunked.
func TestBucketSplitOnSkew(t *testing.T) {
	db := newTestDB(t)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "grp", Kind: types.KindInt64},
		types.Field{Name: "body", Kind: types.KindString},
	)
	body := strings.Repeat("alpha beta gamma delta ", 4)
	var recs []types.Record
	for i := 0; i < 40; i++ {
		recs = append(recs, types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(int64(i % 2)),
			types.NewString(body), // identical text: one hot bucket
		})
	}
	if err := db.CreateDataset("skewdocs", schema, recs); err != nil {
		t.Fatal(err)
	}
	sql := `
		SELECT a.id, b.id FROM skewdocs a, skewdocs b
		WHERE a.grp = 0 AND b.grp = 1
		  AND text_similarity_join(a.body, b.body, 0.8)`
	baseline := mustQuery(t, db, sql)
	if len(baseline.Rows) != 20*20 {
		t.Fatalf("baseline rows = %d, want 400", len(baseline.Rows))
	}
	db.MustConfigure(WithMemoryBudget(tinyBudget))
	res := mustQuery(t, db, sql)
	sameRows(t, "skew split", res.Rows, baseline.Rows)
	if res.Memory.BucketsSplit == 0 {
		t.Error("hot bucket was not skew-split")
	}
	if res.Memory.Peak > tinyBudget {
		t.Errorf("PeakMemory %d exceeds budget %d", res.Memory.Peak, tinyBudget)
	}
}

// TestResourceErrorOnMonsterRecord pins the irreducible case: a single
// record larger than the per-partition hard cap fails the query with a
// structured, non-retryable ResourceError instead of an OOM.
func TestResourceErrorOnMonsterRecord(t *testing.T) {
	db := newTestDB(t)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "body", Kind: types.KindString},
	)
	recs := []types.Record{
		{types.NewInt64(0), types.NewString("river trail lake")},
		{types.NewInt64(1), types.NewString("river trail lake " + strings.Repeat("x", 64<<10))},
	}
	if err := db.CreateDataset("monster", schema, recs); err != nil {
		t.Fatal(err)
	}
	db.MustConfigure(WithMemoryBudget(tinyBudget)) // hard cap = 2 * 8192/4 = 4096 bytes
	_, err := db.Execute(`
		SELECT a.id, b.id FROM monster a, monster b
		WHERE text_similarity_join(a.body, b.body, 0.5)`)
	if err == nil {
		t.Fatal("monster record joined within a 4KB hard cap")
	}
	var re *core.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("error is not a ResourceError: %v", err)
	}
	if re.Phase != "combine" || re.Bytes <= re.Budget {
		t.Errorf("ResourceError fields: %+v", re)
	}
	if cluster.IsRetryable(err) {
		t.Error("ResourceError must not be retryable")
	}
}
