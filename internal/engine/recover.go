// Checkpointed FUDJ execution: durable phase barriers and partial
// recovery. runFUDJ's pipeline crosses two barriers — after SUMMARIZE
// (the partitioning plan is broadcast) and after PARTITION (every
// record sits in its destination partition's post-shuffle input). With
// checkpointing enabled (WithCheckpoints) the state at each barrier is
// made durable, so a node killed at a barrier replays only the work
// downstream of it: a plan-barrier loss re-reads the durable plan, a
// shuffle-barrier loss reloads the lost partitions' bucket inputs and
// re-runs only their COMBINE. Without checkpointing the same losses
// surface as retryable BarrierLossErrors and runFUDJRecoverable falls
// back to abort-and-rerun of the whole join step — the baseline the
// chaos suites contrast against.
package engine

import (
	"context"
	"errors"
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/trace"
	"fudj/internal/types"
)

// stepRecovery carries one join step's barrier state: the shared
// recovery manager plus the step ordinal namespacing its checkpoint
// keys. A nil *stepRecovery disables all barrier logic (the pre-
// checkpoint code paths run unchanged).
type stepRecovery struct {
	rm   *cluster.RecoveryManager
	step int
}

// markDone records per-partition phase completion on the recovery
// manager; safe on a nil receiver and from concurrent partition tasks.
func (r *stepRecovery) markDone(phase string, part int) {
	if r != nil {
		r.rm.MarkDone(phase, part)
	}
}

// planKey names the step's durable plan checkpoint.
func (r *stepRecovery) planKey() string { return fmt.Sprintf("s%d-plan", r.step) }

// shuffleKey names one partition's post-shuffle input checkpoint for
// one side.
func (r *stepRecovery) shuffleKey(side string, part int) string {
	return fmt.Sprintf("s%d-shuffle-%s-p%d", r.step, side, part)
}

// runFUDJRecoverable drives one FUDJ join step through barrier-loss
// recovery. With a checkpoint store attached, losses are healed inside
// runFUDJ and never reach here; without one, a BarrierLossError aborts
// the step and the whole step re-runs, up to the cluster's task
// attempt budget.
func (db *Database) runFUDJRecoverable(ctx context.Context, clus *cluster.Cluster, counters *statsCounters, mem *memState, rm *cluster.RecoveryManager, step int, jsp *trace.Span, f *fudjStep,
	left cluster.Data, leftSchema *types.Schema,
	right cluster.Data, rightSchema *types.Schema, outSchema *types.Schema) (cluster.Data, error) {

	if rm == nil {
		return db.runFUDJ(ctx, clus, counters, mem, nil, jsp, f, left, leftSchema, right, rightSchema, outSchema)
	}
	attempts := clus.RetryPolicy().MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var fails []error
	for attempt := 0; attempt < attempts; attempt++ {
		rec := &stepRecovery{rm: rm, step: step}
		out, err := db.runFUDJ(ctx, clus, counters, mem, rec, jsp, f, left, leftSchema, right, rightSchema, outSchema)
		var loss *cluster.BarrierLossError
		if err != nil && errors.As(err, &loss) && ctx.Err() == nil {
			// Abort-and-rerun: no checkpoint store, so the barrier loss
			// replays the whole step — SUMMARIZE included — which is
			// exactly the waste checkpointed execution avoids.
			clus.Metrics().Counter(cluster.MetricRetries).Add(1)
			fails = append(fails, err)
			continue
		}
		return out, err
	}
	return nil, fmt.Errorf("engine: fudj %s step %d gave up after %d attempts: %w",
		f.def.Name, step, attempts, errors.Join(fails...))
}

// planBarrier crosses the plan barrier: the broadcast plan blob is
// checkpointed, injected node deaths fire, and lost nodes recover by
// re-reading the durable plan (healing a damaged checkpoint with a
// re-broadcast of the coordinator's copy). Returns the plan bytes
// every node should decode.
func planBarrier(clus *cluster.Cluster, rec *stepRecovery, planBuf []byte) ([]byte, error) {
	if rec == nil {
		return planBuf, nil
	}
	rm := rec.rm
	if err := rm.CheckpointBlob(rec.planKey(), planBuf); err != nil {
		return nil, err
	}
	lost := rm.CrossBarrier(cluster.BarrierPlan)
	if len(lost) == 0 {
		return planBuf, nil
	}
	if !rm.Enabled() {
		return nil, rm.LossError(cluster.BarrierPlan, lost)
	}
	return rm.RecoverBlob(rec.planKey(), lost, func() ([]byte, error) {
		// Corrupt/torn plan checkpoint: the coordinator still holds the
		// plan, so healing is a re-broadcast (charged as such).
		clus.Broadcast(planBuf)
		return planBuf, nil
	})
}

// shuffleSide is one input side at the shuffle barrier: its
// post-shuffle partitions (mutated in place on recovery) and a closure
// reconstructing a single partition's input from the surviving
// pre-shuffle data, in exactly the order the shuffle delivered it.
type shuffleSide struct {
	name      string
	data      cluster.Data
	recompute func(part int) []types.Record
}

// shuffleBarrier crosses the shuffle barrier: every partition's
// post-shuffle input (both sides) is checkpointed, injected node
// deaths fire, and each lost partition is restored from its checkpoint
// — or recomputed when the checkpoint is damaged — so only the lost
// partitions' COMBINE re-runs.
func shuffleBarrier(rec *stepRecovery, sides ...shuffleSide) error {
	if rec == nil {
		return nil
	}
	rm := rec.rm
	if rm.Enabled() {
		for _, s := range sides {
			for part := range s.data {
				if err := rm.CheckpointRecords(rec.shuffleKey(s.name, part), s.data[part]); err != nil {
					return err
				}
			}
		}
	}
	lost := rm.CrossBarrier(cluster.BarrierShuffle)
	if len(lost) == 0 {
		return nil
	}
	if !rm.Enabled() {
		return rm.LossError(cluster.BarrierShuffle, lost)
	}
	for _, part := range lost {
		for _, s := range sides {
			s.data[part] = nil // wiped with the node
			recs, err := rm.RecoverRecords(rec.shuffleKey(s.name, part), part, func() ([]types.Record, error) {
				return s.recompute(part), nil
			})
			if err != nil {
				return err
			}
			s.data[part] = recs
		}
	}
	return nil
}

// recomputeHashShuffle rebuilds one partition's post-ExchangeHash
// input from the surviving pre-shuffle data: sources are walked in
// partition order and records kept when they hash to the lost
// partition — the exact order the shuffle's sequential delivery
// produced.
func recomputeHashShuffle(assigned cluster.Data, hash func(types.Record) uint64, part int) []types.Record {
	p := uint64(len(assigned))
	var out []types.Record
	for src := 0; src < len(assigned); src++ {
		for _, r := range assigned[src] {
			if int(hash(r)%p) == part {
				out = append(out, r)
			}
		}
	}
	return out
}

// recomputeReplicate rebuilds one partition's post-Replicate input:
// every source partition's records in source order.
func recomputeReplicate(assigned cluster.Data) []types.Record {
	return assigned.Flatten()
}

// recomputeRandomShuffle rebuilds one partition's post-ExchangeRandom
// input: each source routes record i to partition (src+i) mod P.
func recomputeRandomShuffle(assigned cluster.Data, part int) []types.Record {
	p := len(assigned)
	var out []types.Record
	for src := 0; src < p; src++ {
		for i, r := range assigned[src] {
			if (src+i)%p == part {
				out = append(out, r)
			}
		}
	}
	return out
}
