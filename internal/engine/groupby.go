package engine

import (
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/types"
	"fudj/internal/wire"
)

// Distributed grouped aggregation follows the classic two-step shape
// (the same shape FUDJ's SUMMARIZE reuses): each partition computes
// partial aggregates, partials are hash-exchanged on the group key,
// and each partition finalizes its groups.

// aggState is one aggregate's running value.
type aggState struct {
	count int64
	sum   float64
	isInt bool  // sum/min/max seen only integers so far
	sumI  int64 // integer sum (exact for int inputs)
	min   types.Value
	max   types.Value
	seen  bool
}

func (s *aggState) fold(fn string, v types.Value) error {
	switch fn {
	case "count":
		if !v.IsNull() {
			s.count++
		}
		return nil
	case "sum", "avg":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("engine: %s over non-numeric %v", fn, v.Kind())
		}
		if v.Kind() == types.KindInt64 {
			s.sumI += v.Int64()
		} else {
			s.isInt = false
		}
		if !s.seen {
			s.isInt = v.Kind() == types.KindInt64
		}
		s.sum += f
		s.count++
		s.seen = true
		return nil
	case "min", "max":
		if !s.seen {
			s.min, s.max, s.seen = v, v, true
			return nil
		}
		if v.Compare(s.min) < 0 {
			s.min = v
		}
		if v.Compare(s.max) > 0 {
			s.max = v
		}
		return nil
	}
	return fmt.Errorf("engine: unknown aggregate %q", fn)
}

func (s *aggState) merge(fn string, o *aggState) {
	switch fn {
	case "count":
		s.count += o.count
	case "sum", "avg":
		if !o.seen {
			return
		}
		if !s.seen {
			*s = *o
			return
		}
		s.sum += o.sum
		s.sumI += o.sumI
		s.isInt = s.isInt && o.isInt
		s.count += o.count
		s.seen = true
	case "min", "max":
		if !o.seen {
			return
		}
		if !s.seen {
			*s = *o
			return
		}
		if o.min.Compare(s.min) < 0 {
			s.min = o.min
		}
		if o.max.Compare(s.max) > 0 {
			s.max = o.max
		}
	}
}

func (s *aggState) final(fn string) types.Value {
	switch fn {
	case "count":
		return types.NewInt64(s.count)
	case "sum":
		if !s.seen {
			return types.Null
		}
		if s.isInt {
			return types.NewInt64(s.sumI)
		}
		return types.NewFloat64(s.sum)
	case "avg":
		if !s.seen || s.count == 0 {
			return types.Null
		}
		return types.NewFloat64(s.sum / float64(s.count))
	case "min":
		if !s.seen {
			return types.Null
		}
		return s.min
	case "max":
		if !s.seen {
			return types.Null
		}
		return s.max
	}
	return types.Null
}

// encodePartial serializes an aggState into values that travel inside
// ordinary records through the exchange.
func (s *aggState) encodePartial() []types.Value {
	min, max := s.min, s.max
	if !s.seen {
		min, max = types.Null, types.Null
	}
	var isInt int64
	if s.isInt {
		isInt = 1
	}
	var seen int64
	if s.seen {
		seen = 1
	}
	return []types.Value{
		types.NewInt64(s.count),
		types.NewFloat64(s.sum),
		types.NewInt64(s.sumI),
		types.NewInt64(isInt),
		min,
		max,
		types.NewInt64(seen),
	}
}

const partialWidth = 7

func decodePartial(vals []types.Value) *aggState {
	return &aggState{
		count: vals[0].Int64(),
		sum:   vals[1].Float64(),
		sumI:  vals[2].Int64(),
		isInt: vals[3].Int64() == 1,
		min:   vals[4],
		max:   vals[5],
		seen:  vals[6].Int64() == 1,
	}
}

// groupKey serializes group values into a comparable string.
func groupKey(vals []types.Value) string {
	e := wire.NewEncoder(32)
	for _, v := range vals {
		v.MarshalWire(e)
	}
	return string(e.Bytes())
}

func (p *queryPlan) runGroupBy(clus *cluster.Cluster, data cluster.Data, schema *types.Schema) ([]types.Record, error) {
	groupEvals := make([]expr.Evaluator, len(p.groupBy))
	for i, g := range p.groupBy {
		ev, err := expr.Compile(g, schema)
		if err != nil {
			return nil, err
		}
		groupEvals[i] = ev
	}
	argEvals := make([]expr.Evaluator, len(p.aggs))
	for i, a := range p.aggs {
		ev, err := expr.Compile(a.arg, schema)
		if err != nil {
			return nil, err
		}
		argEvals[i] = ev
	}
	nG := len(groupEvals)

	// Phase 1: local partial aggregation. The partial record layout is
	// [groupVals..., agg0 partial (7 vals), agg1 partial, ...].
	partials, err := clus.Run(data, func(_ int, in []types.Record) ([]types.Record, error) {
		type group struct {
			vals   []types.Value
			states []*aggState
		}
		groups := make(map[string]*group)
		// Emit partials in first-seen group order, not map order: the
		// partials feed the shuffle, and retried or speculated attempts
		// must produce byte-identical output (fudjvet: maporder).
		var order []string
		for _, rec := range in {
			gvals := make([]types.Value, nG)
			for i, ev := range groupEvals {
				v, err := ev(rec)
				if err != nil {
					return nil, err
				}
				gvals[i] = v
			}
			k := groupKey(gvals)
			g, ok := groups[k]
			if !ok {
				g = &group{vals: gvals, states: make([]*aggState, len(p.aggs))}
				for i := range g.states {
					g.states[i] = &aggState{}
				}
				groups[k] = g
				order = append(order, k)
			}
			for i, a := range p.aggs {
				v, err := argEvals[i](rec)
				if err != nil {
					return nil, err
				}
				if err := g.states[i].fold(a.fn, v); err != nil {
					return nil, err
				}
			}
		}
		out := make([]types.Record, 0, len(groups))
		for _, k := range order {
			g := groups[k]
			row := append([]types.Value{}, g.vals...)
			for _, st := range g.states {
				row = append(row, st.encodePartial()...)
			}
			out = append(out, types.Record(row))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: exchange partials by group key hash.
	shuffled, err := clus.ExchangeHash(partials, func(r types.Record) uint64 {
		return types.HashString(groupKey(r[:nG]))
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: final combine per partition.
	finals, err := clus.Run(shuffled, func(_ int, in []types.Record) ([]types.Record, error) {
		type group struct {
			vals   []types.Value
			states []*aggState
		}
		groups := make(map[string]*group)
		order := []string{}
		for _, rec := range in {
			gvals := rec[:nG]
			k := groupKey(gvals)
			g, ok := groups[k]
			if !ok {
				g = &group{vals: gvals, states: make([]*aggState, len(p.aggs))}
				for i := range g.states {
					g.states[i] = &aggState{}
				}
				groups[k] = g
				order = append(order, k)
			}
			off := nG
			for i, a := range p.aggs {
				g.states[i].merge(a.fn, decodePartial(rec[off:off+partialWidth]))
				off += partialWidth
			}
		}
		out := make([]types.Record, 0, len(groups))
		for _, k := range order {
			g := groups[k]
			row := append([]types.Value{}, g.vals...)
			for i, a := range p.aggs {
				row = append(row, g.states[i].final(a.fn))
			}
			out = append(out, types.Record(row))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	rows := finals.Flatten()

	// Global aggregation over an empty input still returns one row.
	if nG == 0 && len(rows) == 0 {
		row := make(types.Record, len(p.aggs))
		for i, a := range p.aggs {
			row[i] = (&aggState{}).final(a.fn)
		}
		rows = []types.Record{row}
	}
	return rows, nil
}
