// Package catalog is the engine's metadata store: datasets, installed
// FUDJ libraries, and the join functions created from them via
// CREATE JOIN. It is the component the optimizer consults to detect
// FUDJ predicates by function signature (§VI-C).
package catalog

import (
	"fmt"
	"sort"
	"sync"

	"fudj/internal/core"
	"fudj/internal/types"
)

// Dataset is a stored, named record collection.
type Dataset struct {
	Name    string
	Schema  *types.Schema
	Records []types.Record
}

// JoinDef is one installed join function, created by CREATE JOIN. The
// optimizer matches query predicates against Name and arity.
type JoinDef struct {
	Name      string
	ParamName []string // declared parameter names
	ParamType []string // declared parameter type names
	Class     string
	Library   string
	New       core.Constructor
}

// Arity returns the total parameter count (keys + extra parameters).
func (j *JoinDef) Arity() int { return len(j.ParamName) }

// Catalog stores all metadata. It is safe for concurrent use.
type Catalog struct {
	mu        sync.RWMutex
	datasets  map[string]*Dataset
	libraries map[string]*core.Library
	joins     map[string]*JoinDef
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		datasets:  make(map[string]*Dataset),
		libraries: make(map[string]*core.Library),
		joins:     make(map[string]*JoinDef),
	}
}

// CreateDataset registers a dataset. Replacing an existing dataset is
// an error; drop it first.
func (c *Catalog) CreateDataset(name string, schema *types.Schema, recs []types.Record) error {
	if name == "" || schema == nil {
		return fmt.Errorf("catalog: dataset needs a name and a schema")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.datasets[name]; dup {
		return fmt.Errorf("catalog: dataset %q already exists", name)
	}
	c.datasets[name] = &Dataset{Name: name, Schema: schema, Records: recs}
	return nil
}

// DropDataset removes a dataset.
func (c *Catalog) DropDataset(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[name]; !ok {
		return fmt.Errorf("catalog: no dataset %q", name)
	}
	delete(c.datasets, name)
	return nil
}

// Dataset looks up a dataset by name.
func (c *Catalog) Dataset(name string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.datasets[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no dataset %q", name)
	}
	return ds, nil
}

// Datasets returns the sorted dataset names.
func (c *Catalog) Datasets() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.datasets))
	for n := range c.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InstallLibrary uploads a join library (the analogue of shipping a
// JAR to the cluster).
func (c *Catalog) InstallLibrary(lib *core.Library) error {
	if lib == nil {
		return fmt.Errorf("catalog: nil library")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.libraries[lib.Name()]; dup {
		return fmt.Errorf("catalog: library %q already installed", lib.Name())
	}
	c.libraries[lib.Name()] = lib
	return nil
}

// Library looks up an installed library.
func (c *Catalog) Library(name string) (*core.Library, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	lib, ok := c.libraries[name]
	if !ok {
		return nil, fmt.Errorf("catalog: no library %q (install it before CREATE JOIN)", name)
	}
	return lib, nil
}

// CreateJoin registers a join function backed by a library class —
// the semantic action of the CREATE JOIN statement. The class must
// resolve in the named library at creation time, so a bad signature
// fails at DDL time rather than mid-query.
func (c *Catalog) CreateJoin(name string, paramNames, paramTypes []string, class, library string) error {
	if len(paramNames) < 2 {
		return fmt.Errorf("catalog: join %q needs at least two key parameters", name)
	}
	if len(paramNames) != len(paramTypes) {
		return fmt.Errorf("catalog: join %q has mismatched parameter lists", name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.joins[name]; dup {
		return fmt.Errorf("catalog: join %q already exists", name)
	}
	lib, ok := c.libraries[library]
	if !ok {
		return fmt.Errorf("catalog: no library %q (install it before CREATE JOIN)", library)
	}
	ctor, err := lib.Resolve(class)
	if err != nil {
		return err
	}
	// Validate the declared extra-parameter count against the library's
	// descriptor so a wrong signature is rejected at DDL time.
	desc := ctor().Descriptor()
	declaredExtras := len(paramNames) - 2
	if declaredExtras != desc.Params {
		return fmt.Errorf("catalog: join %q declares %d extra parameters but class %q expects %d",
			name, declaredExtras, class, desc.Params)
	}
	c.joins[name] = &JoinDef{
		Name:      name,
		ParamName: append([]string(nil), paramNames...),
		ParamType: append([]string(nil), paramTypes...),
		Class:     class,
		Library:   library,
		New:       ctor,
	}
	return nil
}

// DropJoin removes an installed join function.
func (c *Catalog) DropJoin(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.joins[name]; !ok {
		return fmt.Errorf("catalog: no join %q", name)
	}
	delete(c.joins, name)
	return nil
}

// Join looks up an installed join function by name, returning nil
// (not an error) when absent — the optimizer probes candidate
// predicate names with this.
func (c *Catalog) Join(name string) *JoinDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.joins[name]
}

// Joins returns the sorted names of installed join functions.
func (c *Catalog) Joins() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.joins))
	for n := range c.joins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
