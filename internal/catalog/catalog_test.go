package catalog

import (
	"testing"

	"fudj/internal/core"
	"fudj/internal/types"
)

func testJoin() core.Join {
	return core.Wrap(core.Spec[int64, int64, int64, int64]{
		Name:         "test_join",
		Params:       1,
		NewSummary:   func() int64 { return 0 },
		LocalAggLeft: func(k, s int64) int64 { return s + 1 },
		GlobalAgg:    func(a, b int64) int64 { return a + b },
		Divide:       func(a, b int64, _ []any) (int64, error) { return 1, nil },
		AssignLeft:   func(k, p int64, dst []core.BucketID) []core.BucketID { return append(dst, 0) },
		Verify:       func(_ core.BucketID, l int64, _ core.BucketID, r int64, _ int64) bool { return l == r },
	})
}

func testSchema() *types.Schema {
	return types.NewSchema(types.Field{Name: "id", Kind: types.KindInt64})
}

func TestDatasetLifecycle(t *testing.T) {
	c := New()
	if err := c.CreateDataset("d1", testSchema(), nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateDataset("d1", testSchema(), nil); err == nil {
		t.Error("duplicate dataset should error")
	}
	if err := c.CreateDataset("", testSchema(), nil); err == nil {
		t.Error("empty name should error")
	}
	if err := c.CreateDataset("d2", nil, nil); err == nil {
		t.Error("nil schema should error")
	}
	ds, err := c.Dataset("d1")
	if err != nil || ds.Name != "d1" {
		t.Fatalf("Dataset: %v %v", ds, err)
	}
	if _, err := c.Dataset("missing"); err == nil {
		t.Error("missing dataset should error")
	}
	if got := c.Datasets(); len(got) != 1 || got[0] != "d1" {
		t.Errorf("Datasets = %v", got)
	}
	if err := c.DropDataset("d1"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropDataset("d1"); err == nil {
		t.Error("double drop should error")
	}
}

func TestLibraryAndJoinLifecycle(t *testing.T) {
	c := New()
	lib := core.NewLibrary("testlib")
	lib.MustRegister("pkg.TestJoin", testJoin)

	if err := c.InstallLibrary(nil); err == nil {
		t.Error("nil library should error")
	}
	if err := c.InstallLibrary(lib); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallLibrary(lib); err == nil {
		t.Error("duplicate install should error")
	}
	if _, err := c.Library("testlib"); err != nil {
		t.Error(err)
	}
	if _, err := c.Library("nope"); err == nil {
		t.Error("missing library should error")
	}

	// CREATE JOIN with validation.
	params := []string{"a", "b", "t"}
	typs := []string{"int", "int", "int"}
	if err := c.CreateJoin("my_join", params, typs, "pkg.TestJoin", "testlib"); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateJoin("my_join", params, typs, "pkg.TestJoin", "testlib"); err == nil {
		t.Error("duplicate join should error")
	}
	if err := c.CreateJoin("j2", []string{"a"}, []string{"int"}, "pkg.TestJoin", "testlib"); err == nil {
		t.Error("single-parameter join should error")
	}
	if err := c.CreateJoin("j3", params, typs[:2], "pkg.TestJoin", "testlib"); err == nil {
		t.Error("mismatched parameter lists should error")
	}
	if err := c.CreateJoin("j4", params, typs, "pkg.TestJoin", "nolib"); err == nil {
		t.Error("unknown library should error")
	}
	if err := c.CreateJoin("j5", params, typs, "pkg.Missing", "testlib"); err == nil {
		t.Error("unknown class should error")
	}
	// Declared extras must match the descriptor (test_join wants 1).
	if err := c.CreateJoin("j6", []string{"a", "b"}, []string{"int", "int"}, "pkg.TestJoin", "testlib"); err == nil {
		t.Error("wrong extra-parameter count should error at DDL time")
	}

	def := c.Join("my_join")
	if def == nil || def.Arity() != 3 || def.Class != "pkg.TestJoin" {
		t.Fatalf("Join = %+v", def)
	}
	if c.Join("missing") != nil {
		t.Error("missing join should be nil")
	}
	if got := c.Joins(); len(got) != 1 || got[0] != "my_join" {
		t.Errorf("Joins = %v", got)
	}
	if err := c.DropJoin("my_join"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropJoin("my_join"); err == nil {
		t.Error("double drop join should error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New()
	lib := core.NewLibrary("lib")
	lib.MustRegister("pkg.J", testJoin)
	if err := c.InstallLibrary(lib); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.Join("j")
			c.Datasets()
			c.Joins()
		}
	}()
	for i := 0; i < 200; i++ {
		_ = c.CreateDataset("d", testSchema(), nil)
		_ = c.DropDataset("d")
	}
	<-done
}
