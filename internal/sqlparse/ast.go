package sqlparse

import (
	"fmt"
	"strings"

	"fudj/internal/expr"
)

// Statement is any parsed SQL statement.
type Statement interface {
	fmt.Stringer
	stmt()
}

// ParamDecl declares one parameter in a CREATE JOIN signature.
type ParamDecl struct {
	Name string
	Type string // declared type name, e.g. "string", "double", "geometry"
}

// CreateJoin is the paper's novel DDL statement (§VI-A):
//
//	CREATE JOIN name(a: string, b: string, t: double) RETURNS boolean
//	AS "pkg.Class" AT library;
type CreateJoin struct {
	Name    string
	Params  []ParamDecl
	Returns string
	Class   string
	Library string
}

func (*CreateJoin) stmt() {}

// String implements fmt.Stringer.
func (c *CreateJoin) String() string {
	params := make([]string, len(c.Params))
	for i, p := range c.Params {
		params[i] = p.Name + ": " + p.Type
	}
	return fmt.Sprintf("CREATE JOIN %s(%s) RETURNS %s AS %q AT %s",
		c.Name, strings.Join(params, ", "), c.Returns, c.Class, c.Library)
}

// DropJoin removes an installed join.
type DropJoin struct {
	Name   string
	Params []ParamDecl
}

func (*DropJoin) stmt() {}

// String implements fmt.Stringer.
func (d *DropJoin) String() string {
	params := make([]string, len(d.Params))
	for i, p := range d.Params {
		params[i] = p.Name + ": " + p.Type
	}
	return fmt.Sprintf("DROP JOIN %s(%s)", d.Name, strings.Join(params, ", "))
}

// TableRef is one dataset in a FROM clause.
type TableRef struct {
	Dataset string
	Alias   string // defaults to the dataset name
}

// SelectItem is one projection. Star is SELECT *; otherwise Expr with
// an optional output alias. Aggregate calls (COUNT/SUM/AVG/MIN/MAX)
// appear as expr.Call nodes with those names.
type SelectItem struct {
	Star  bool
	Expr  expr.Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr expr.Expr
	Desc bool
}

// Select is a parsed query block.
type Select struct {
	Explain  bool
	Analyze  bool // EXPLAIN ANALYZE: execute and render measured spans
	Distinct bool
	Into     string // SELECT ... INTO dataset: materialize the result
	Items    []SelectItem
	From     []TableRef
	Where    expr.Expr // nil when absent
	GroupBy  []expr.Expr
	Having   expr.Expr // nil when absent
	OrderBy  []OrderItem
	Limit    int // -1 when absent
}

func (*Select) stmt() {}

// String implements fmt.Stringer.
func (s *Select) String() string {
	var sb strings.Builder
	if s.Explain {
		sb.WriteString("EXPLAIN ")
		if s.Analyze {
			sb.WriteString("ANALYZE ")
		}
	}
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if s.Into != "" {
		sb.WriteString(" INTO " + s.Into)
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Dataset)
		if t.Alias != t.Dataset {
			sb.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

// AggregateNames are the aggregate function names the planner pulls out
// of projections.
var AggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether a call expression is an aggregate.
func IsAggregate(e expr.Expr) bool {
	c, ok := e.(*expr.Call)
	return ok && AggregateNames[c.Name]
}
