package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"fudj/internal/expr"
	"fudj/internal/types"
)

// Parse parses one statement, ignoring a trailing semicolon.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokPunct, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %v after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text if given).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches; reports success.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.advance()
		return true
	}
	return false
}

// expect consumes a required token or fails.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.advance(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{
			tokIdent: "identifier", tokNumber: "number", tokString: "string",
		}[kind]
	}
	return token{}, p.errf("expected %s, found %v", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreateJoin()
	case p.at(tokKeyword, "DROP"):
		return p.parseDropJoin()
	case p.at(tokKeyword, "SELECT"), p.at(tokKeyword, "EXPLAIN"):
		return p.parseSelect()
	}
	return nil, p.errf("expected CREATE, DROP, SELECT, or EXPLAIN, found %v", p.peek())
}

func (p *parser) parseParamList() ([]ParamDecl, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var params []ParamDecl
	for !p.accept(tokPunct, ")") {
		if len(params) > 0 {
			if _, err := p.expect(tokPunct, ","); err != nil {
				return nil, err
			}
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ":"); err != nil {
			return nil, err
		}
		typ, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		params = append(params, ParamDecl{Name: name.text, Type: typ.text})
	}
	return params, nil
}

func (p *parser) parseCreateJoin() (Statement, error) {
	p.advance() // CREATE
	if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	params, err := p.parseParamList()
	if err != nil {
		return nil, err
	}
	if len(params) < 2 {
		return nil, p.errf("CREATE JOIN needs at least two key parameters, got %d", len(params))
	}
	if _, err := p.expect(tokKeyword, "RETURNS"); err != nil {
		return nil, err
	}
	ret, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if ret.text != "boolean" {
		return nil, p.errf("CREATE JOIN must return boolean, got %q", ret.text)
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	class, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AT"); err != nil {
		return nil, err
	}
	lib, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	return &CreateJoin{
		Name:    name.text,
		Params:  params,
		Returns: ret.text,
		Class:   class.text,
		Library: lib.text,
	}, nil
}

func (p *parser) parseDropJoin() (Statement, error) {
	p.advance() // DROP
	if _, err := p.expect(tokKeyword, "JOIN"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	var params []ParamDecl
	if p.at(tokPunct, "(") {
		if params, err = p.parseParamList(); err != nil {
			return nil, err
		}
	}
	return &DropJoin{Name: name.text, Params: params}, nil
}

func (p *parser) parseSelect() (Statement, error) {
	sel := &Select{Limit: -1}
	if p.accept(tokKeyword, "EXPLAIN") {
		sel.Explain = true
		if p.accept(tokKeyword, "ANALYZE") {
			sel.Analyze = true
		}
	}
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	if p.accept(tokKeyword, "DISTINCT") {
		sel.Distinct = true
	}

	// Projections.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(tokPunct, ",") {
			break
		}
	}

	// INTO (materialize the result as a new dataset).
	if p.accept(tokKeyword, "INTO") {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		sel.Into = name.text
	}

	// FROM.
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		ds, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Dataset: ds.text, Alias: ds.text}
		if p.at(tokIdent, "") {
			ref.Alias = p.advance().text
		}
		sel.From = append(sel.From, ref)
		if !p.accept(tokPunct, ",") {
			break
		}
	}

	// WHERE.
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}

	// GROUP BY.
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}

	// HAVING.
	if p.accept(tokKeyword, "HAVING") {
		hasAgg := false
		for _, it := range sel.Items {
			if !it.Star && IsAggregate(it.Expr) {
				hasAgg = true
			}
		}
		if len(sel.GroupBy) == 0 && !hasAgg {
			return nil, p.errf("HAVING requires GROUP BY or an aggregate projection")
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}

	// ORDER BY.
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
	}

	// LIMIT.
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit, err := strconv.Atoi(n.text)
		if err != nil || limit < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		sel.Limit = limit
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokPunct, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(tokKeyword, "AS") {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = name.text
	} else if p.at(tokIdent, "") {
		item.Alias = p.advance().text
	}
	return item, nil
}

// Expression grammar (precedence low to high):
//
//	orExpr   := andExpr (OR andExpr)*
//	andExpr  := notExpr (AND notExpr)*
//	notExpr  := NOT notExpr | cmpExpr
//	cmpExpr  := addExpr ((= | <> | < | <= | > | >=) addExpr)?
//	addExpr  := mulExpr ((+ | -) mulExpr)*
//	mulExpr  := primary ((* | /) primary)*
//	primary  := literal | call | column | ( orExpr ) | - primary
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.accept(tokKeyword, "NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]expr.BinOp{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt,
	"<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseCmp() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokPunct {
		if op, ok := cmpOps[p.peek().text]; ok {
			p.advance()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.accept(tokPunct, "+"):
			op = expr.OpAdd
		case p.accept(tokPunct, "-"):
			op = expr.OpSub
		default:
			return l, nil
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op expr.BinOp
		switch {
		case p.accept(tokPunct, "*"):
			op = expr.OpMul
		case p.accept(tokPunct, "/"):
			op = expr.OpDiv
		default:
			return l, nil
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &expr.Literal{V: types.NewFloat64(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &expr.Literal{V: types.NewInt64(i)}, nil

	case t.kind == tokString:
		p.advance()
		return &expr.Literal{V: types.NewString(t.text)}, nil

	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.advance()
		return &expr.Literal{V: types.NewBool(t.text == "TRUE")}, nil

	case t.kind == tokKeyword && t.text == "NULL":
		p.advance()
		return &expr.Literal{V: types.Null}, nil

	case t.kind == tokKeyword && AggregateNames[strings.ToLower(t.text)]:
		// COUNT/SUM/AVG/MIN/MAX(...) — parsed as calls; COUNT(*) gets a
		// literal 1 argument so all aggregates are uniform downstream.
		p.advance()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		name := strings.ToLower(t.text)
		if p.accept(tokPunct, "*") {
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			return &expr.Call{Name: name, Args: []expr.Expr{&expr.Literal{V: types.NewInt64(1)}}}, nil
		}
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return &expr.Call{Name: name, Args: []expr.Expr{arg}}, nil

	case t.kind == tokIdent:
		p.advance()
		// Function call?
		if p.accept(tokPunct, "(") {
			call := &expr.Call{Name: t.text}
			for !p.accept(tokPunct, ")") {
				if len(call.Args) > 0 {
					if _, err := p.expect(tokPunct, ","); err != nil {
						return nil, err
					}
				}
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
			}
			return call, nil
		}
		// Qualified column?
		if p.accept(tokPunct, ".") {
			field, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &expr.Column{Qualifier: t.text, Name: field.text}, nil
		}
		return &expr.Column{Name: t.text}, nil

	case t.kind == tokPunct && t.text == "(":
		p.advance()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return inner, nil

	case t.kind == tokPunct && t.text == "-":
		p.advance()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &expr.Binary{Op: expr.OpSub, L: &expr.Literal{V: types.NewInt64(0)}, R: inner}, nil
	}
	return nil, p.errf("expected expression, found %v", t)
}
