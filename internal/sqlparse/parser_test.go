package sqlparse

import (
	"strings"
	"testing"

	"fudj/internal/expr"
	"fudj/internal/types"
)

func parseSelect(t *testing.T, sql string) *Select {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", sql, stmt)
	}
	return sel
}

func TestParseCreateJoin(t *testing.T) {
	stmt, err := Parse(`CREATE JOIN text_similarity_join(a: string, b: string, t: double)
		RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins;`)
	if err != nil {
		t.Fatal(err)
	}
	cj, ok := stmt.(*CreateJoin)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if cj.Name != "text_similarity_join" {
		t.Errorf("Name = %q", cj.Name)
	}
	if len(cj.Params) != 3 || cj.Params[2].Name != "t" || cj.Params[2].Type != "double" {
		t.Errorf("Params = %v", cj.Params)
	}
	if cj.Class != "setsimilarity.SetSimilarityJoin" || cj.Library != "flexiblejoins" {
		t.Errorf("Class/Library = %q/%q", cj.Class, cj.Library)
	}
	if !strings.Contains(cj.String(), "CREATE JOIN text_similarity_join") {
		t.Errorf("String = %q", cj.String())
	}
}

func TestParseCreateJoinErrors(t *testing.T) {
	bad := []string{
		`CREATE JOIN j(a: string) RETURNS boolean AS "x" AT lib`,        // one param
		`CREATE JOIN j(a: string, b: string) RETURNS int AS "x" AT lib`, // not boolean
		`CREATE JOIN j(a string) RETURNS boolean AS "x" AT lib`,         // missing colon
		`CREATE JOIN j(a: string, b: string) AS "x" AT lib`,             // missing RETURNS
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): want error", sql)
		}
	}
}

func TestParseDropJoin(t *testing.T) {
	stmt, err := Parse(`DROP JOIN text_similarity_join(a: string, b: string, t: double);`)
	if err != nil {
		t.Fatal(err)
	}
	dj := stmt.(*DropJoin)
	if dj.Name != "text_similarity_join" || len(dj.Params) != 3 {
		t.Errorf("DropJoin = %+v", dj)
	}
	// Signature-free form also allowed.
	stmt, err = Parse(`DROP JOIN spatial_join`)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropJoin).Name != "spatial_join" {
		t.Error("short DROP JOIN")
	}
}

func TestParsePaperQuery1(t *testing.T) {
	sel := parseSelect(t, `
		SELECT p.id, p.tags, COUNT(w.id) AS num_fires
		FROM Parks p, Wildfires w
		WHERE st_contains(p.boundary, st_make_point(w.lat, w.lon))
		  AND w.fire_start >= 2022
		GROUP BY p.id, p.tags
		ORDER BY num_fires DESC
		LIMIT 10;`)
	if len(sel.Items) != 3 || sel.Items[2].Alias != "num_fires" {
		t.Errorf("Items = %+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[0].Dataset != "parks" || sel.From[0].Alias != "p" {
		t.Errorf("From = %+v", sel.From)
	}
	conj := expr.SplitConjuncts(sel.Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	call, ok := conj[0].(*expr.Call)
	if !ok || call.Name != "st_contains" {
		t.Errorf("first conjunct = %v", conj[0])
	}
	if len(sel.GroupBy) != 2 {
		t.Errorf("GroupBy = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("OrderBy = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("Limit = %d", sel.Limit)
	}
}

func TestParseCountStar(t *testing.T) {
	sel := parseSelect(t, `SELECT COUNT(*) FROM Reviews r WHERE r.overall = 5`)
	call := sel.Items[0].Expr.(*expr.Call)
	if call.Name != "count" || len(call.Args) != 1 {
		t.Errorf("COUNT(*) = %v", call)
	}
	if !IsAggregate(call) {
		t.Error("IsAggregate(COUNT(*)) = false")
	}
	if IsAggregate(&expr.Call{Name: "st_contains"}) {
		t.Error("st_contains is not an aggregate")
	}
}

func TestParseFUDJPredicate(t *testing.T) {
	sel := parseSelect(t, `
		SELECT COUNT(1) FROM NYCTaxi n1, NYCTaxi n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		  AND overlapping_interval(n1.ride_interval, n2.ride_interval)`)
	conj := expr.SplitConjuncts(sel.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	call, ok := conj[2].(*expr.Call)
	if !ok || call.Name != "overlapping_interval" || len(call.Args) != 2 {
		t.Errorf("FUDJ predicate = %v", conj[2])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a + b * 2 >= 10 AND c = 'x' OR d < 0`)
	// OR binds loosest.
	or, ok := sel.Where.(*expr.Binary)
	if !ok || or.Op != expr.OpOr {
		t.Fatalf("top = %v", sel.Where)
	}
	and, ok := or.L.(*expr.Binary)
	if !ok || and.Op != expr.OpAnd {
		t.Fatalf("or.L = %v", or.L)
	}
	ge := and.L.(*expr.Binary)
	if ge.Op != expr.OpGe {
		t.Fatalf("and.L = %v", and.L)
	}
	add := ge.L.(*expr.Binary)
	if add.Op != expr.OpAdd {
		t.Fatalf("+ not parsed first: %v", ge.L)
	}
	if add.R.(*expr.Binary).Op != expr.OpMul {
		t.Error("* should bind tighter than +")
	}
}

func TestParseLiterals(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a = 1 AND b = 2.5 AND c = 'str''ing' AND d = TRUE AND e = NULL`)
	conj := expr.SplitConjuncts(sel.Where)
	lits := make([]types.Value, len(conj))
	for i, c := range conj {
		lits[i] = c.(*expr.Binary).R.(*expr.Literal).V
	}
	if lits[0].Int64() != 1 {
		t.Error("int literal")
	}
	if lits[1].Float64() != 2.5 {
		t.Error("float literal")
	}
	if lits[2].Str() != "str'ing" {
		t.Errorf("string literal with escaped quote = %q", lits[2].Str())
	}
	if !lits[3].Bool() {
		t.Error("bool literal")
	}
	if !lits[4].IsNull() {
		t.Error("null literal")
	}
}

func TestParseNegativeNumber(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM t WHERE a > -5`)
	cmp := sel.Where.(*expr.Binary)
	sub := cmp.R.(*expr.Binary)
	if sub.Op != expr.OpSub {
		t.Fatalf("unary minus = %v", cmp.R)
	}
}

func TestParseStar(t *testing.T) {
	sel := parseSelect(t, `SELECT * FROM parks`)
	if len(sel.Items) != 1 || !sel.Items[0].Star {
		t.Errorf("Items = %+v", sel.Items)
	}
	if sel.From[0].Alias != "parks" {
		t.Error("default alias should be the dataset name")
	}
	if sel.Limit != -1 {
		t.Error("absent LIMIT should be -1")
	}
}

func TestParseExplain(t *testing.T) {
	sel := parseSelect(t, `EXPLAIN SELECT * FROM t`)
	if !sel.Explain {
		t.Error("Explain flag")
	}
}

func TestParseImplicitAlias(t *testing.T) {
	sel := parseSelect(t, `SELECT p.id pid FROM parks p`)
	if sel.Items[0].Alias != "pid" {
		t.Errorf("implicit alias = %q", sel.Items[0].Alias)
	}
}

func TestParseComments(t *testing.T) {
	sel := parseSelect(t, `
		-- count everything
		SELECT COUNT(*) /* block
		comment */ FROM t`)
	if len(sel.Items) != 1 {
		t.Error("comment parsing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT abc`,
		`SELECT * FROM t extra garbage here()`,
		`INSERT INTO t VALUES (1)`,
		`SELECT * FROM t WHERE a = 'unterminated`,
		`SELECT * FROM t WHERE /* unterminated`,
		`SELECT * FROM t WHERE a @ b`,
		`SELECT f( FROM t`,
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q): want error", sql)
		}
	}
}

func TestParseCaseInsensitivity(t *testing.T) {
	sel := parseSelect(t, `select P.Id from PARKS p where ST_CONTAINS(p.B, p.C)`)
	c := sel.Items[0].Expr.(*expr.Column)
	// Identifiers are normalized to lowercase.
	if c.Qualifier != "p" || c.Name != "id" {
		t.Errorf("column = %+v", c)
	}
	call := sel.Where.(*expr.Call)
	if call.Name != "st_contains" {
		t.Errorf("call = %q", call.Name)
	}
}

// Property: rendering a parsed statement and reparsing it reaches a
// fixed point — String() output is itself valid SQL with the same
// rendering (round-trip stability).
func TestParseStringRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT DISTINCT p.id INTO saved FROM parks p WHERE p.id > 3`,
		`SELECT p.id, COUNT(*) AS n FROM parks p GROUP BY p.id HAVING COUNT(*) > 2 ORDER BY n`,
		`SELECT p.id, p.tags, COUNT(w.id) AS num_fires FROM parks p, wildfires w
		 WHERE st_contains(p.boundary, st_make_point(w.lat, w.lon)) AND w.fire_start >= 2022
		 GROUP BY p.id, p.tags ORDER BY num_fires DESC LIMIT 10`,
		`SELECT COUNT(*) FROM r a, r b WHERE a.id <> b.id AND sim(a.t, b.t, 0.9)`,
		`SELECT * FROM t WHERE a + b * 2 >= 10 AND c = 'x' OR NOT d < 0`,
		`EXPLAIN SELECT MIN(t.v) FROM t WHERE t.v <> NULL ORDER BY t.v ASC`,
		`CREATE JOIN j(a: geometry, b: geometry, n: int) RETURNS boolean AS "x.Y" AT lib`,
		`DROP JOIN j(a: geometry, b: geometry)`,
	}
	for _, q := range queries {
		first, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		rendered := first.String()
		second, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", rendered, err)
		}
		if second.String() != rendered {
			t.Errorf("not a fixed point:\n  %q\n  %q", rendered, second.String())
		}
	}
}

func TestSelectString(t *testing.T) {
	sel := parseSelect(t, `SELECT p.id AS x FROM parks p WHERE p.id > 3 ORDER BY p.id DESC LIMIT 5`)
	s := sel.String()
	for _, want := range []string{"SELECT", "AS x", "FROM parks p", "WHERE", "ORDER BY", "DESC", "LIMIT 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
