// Package sqlparse implements the query-language front end: a lexer
// and recursive-descent parser for the SQL subset the paper's examples
// use (SELECT with joins, filters, GROUP BY, ORDER BY, LIMIT) plus the
// FUDJ DDL statements CREATE JOIN and DROP JOIN (§VI-A).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokPunct
)

// token is one lexical unit.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased, punct verbatim
	pos  int    // byte offset in the input, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords recognized by the parser. Anything else alphabetic is an
// identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "INTO": true, "HAVING": true, "DISTINCT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "DESC": true, "ASC": true, "CREATE": true, "DROP": true,
	"JOIN": true, "RETURNS": true, "AT": true, "EXPLAIN": true, "ANALYZE": true,
	"TRUE": true, "FALSE": true, "NULL": true, "COUNT": true, "SUM": true,
	"AVG": true, "MIN": true, "MAX": true,
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: at offset %d: %s", pos, fmt.Sprintf(format, args...))
}

// lex tokenizes the whole input.
func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '*':
			end := strings.Index(l.in[l.pos+2:], "*/")
			if end < 0 {
				return token{}, l.errf(l.pos, "unterminated block comment")
			}
			l.pos += end + 4
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.in[l.pos]

	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.in) && isIdentPart(rune(l.in[l.pos])) {
			l.pos++
		}
		word := l.in[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: strings.ToLower(word), pos: start}, nil

	case c >= '0' && c <= '9':
		seenDot := false
		for l.pos < len(l.in) {
			d := l.in[l.pos]
			if d == '.' && !seenDot && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
				seenDot = true
				l.pos++
				continue
			}
			if d < '0' || d > '9' {
				break
			}
			l.pos++
		}
		return token{kind: tokNumber, text: l.in[start:l.pos], pos: start}, nil

	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.in) {
			d := l.in[l.pos]
			if d == quote {
				// Doubled quote escapes itself.
				if l.pos+1 < len(l.in) && l.in[l.pos+1] == quote {
					sb.WriteByte(quote)
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(d)
			l.pos++
		}
		return token{}, l.errf(start, "unterminated string literal")

	default:
		// Multi-char operators first.
		for _, op := range []string{"<=", ">=", "<>", "!="} {
			if strings.HasPrefix(l.in[l.pos:], op) {
				l.pos += 2
				text := op
				if op == "!=" {
					text = "<>"
				}
				return token{kind: tokPunct, text: text, pos: start}, nil
			}
		}
		if strings.ContainsRune("(),.;*<>=+-/:", rune(c)) {
			l.pos++
			return token{kind: tokPunct, text: string(c), pos: start}, nil
		}
		return token{}, l.errf(l.pos, "unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
