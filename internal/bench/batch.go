package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/types"
)

// The batch experiment measures the hash-path COMBINE microbench: the
// cost of moving one partition's shuffled rows across a node boundary
// and materializing them on the receive side, with default columnar
// batching against record-at-a-time framing (WithBatchSize(1), the
// pre-batching baseline). Two edges are timed:
//
//   - deliver: the full shuffle hop cluster.deliver pays per cross-node
//     transfer — frame encode, corruption bookkeeping, metrics, decode,
//     and record materialization.
//   - ingest: the receive edge alone — decoding pre-encoded frames into
//     records, the COMBINE side's share of the hop.
//
// Arms are interleaved round-robin (after a discarded warmup round and
// an explicit GC) so the Go heap-growth bias — later arms in a process
// inherit a larger GC target — cannot favor either arm.

func init() {
	register(Experiment{
		ID:    "batch",
		Title: "Batched columnar shuffle vs record-at-a-time framing (hash-path COMBINE edge)",
		Paper: "not a paper figure; validates the batched execution hot path (DESIGN.md §14)",
		Run:   runBatch,
	})
}

// batchBenchRows is the unscaled record count each arm moves per
// measured operation.
const batchBenchRows = 60000

// hashPathRecords builds the row shape ExchangeHash moves on the hash
// path for an equi-join COUNT(*): three int64 columns — bucket id,
// join key, and the row id.
func hashPathRecords(n int) []types.Record {
	recs := make([]types.Record, n)
	for i := range recs {
		recs[i] = types.Record{
			types.NewInt64(int64(i) % 512),
			types.NewInt64(int64(i) % 997),
			types.NewInt64(int64(i)),
		}
	}
	return recs
}

// batchArm measures one framing mode of one edge: op runs the edge
// once over the full record set.
type batchArm struct {
	edge string // "deliver" or "ingest"
	mode string // "batched" or "record"
	op   func() error
	runs []time.Duration // per-round ns for one op
}

func (a *batchArm) key() string { return a.edge + "_" + a.mode }

// medianNs returns the median per-op nanoseconds across rounds.
func (a *batchArm) medianNs() int64 {
	ns := make([]int64, len(a.runs))
	for i, d := range a.runs {
		ns[i] = d.Nanoseconds()
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns[len(ns)/2]
}

// deliverArm builds a 2-node cluster where every record crosses the
// node boundary, framed at the given batch size (0 = default 1024).
func deliverArm(recs []types.Record, mode string, bs int) *batchArm {
	c := cluster.New(cluster.Config{Nodes: 2, CoresPerNode: 1})
	c.SetBatchSize(bs)
	outbox := make([][][]types.Record, c.Partitions())
	for src := range outbox {
		outbox[src] = make([][]types.Record, c.Partitions())
	}
	outbox[0][1] = recs
	return &batchArm{edge: "deliver", mode: mode, op: func() error {
		out, err := c.Deliver(outbox)
		if err != nil {
			return err
		}
		if len(out[1]) != len(recs) {
			return fmt.Errorf("deliver %s: %d rows out, want %d", mode, len(out[1]), len(recs))
		}
		return nil
	}}
}

// ingestArm pre-encodes the record set into frames of the given size
// and times decoding them back into records.
func ingestArm(recs []types.Record, mode string, bs int) *batchArm {
	enc, dec := types.NewBatch(0), types.NewBatch(0)
	var frames [][]byte
	for lo := 0; lo < len(recs); lo += bs {
		hi := lo + bs
		if hi > len(recs) {
			hi = len(recs)
		}
		frames = append(frames, types.EncodeBatch(recs[lo:hi], enc))
	}
	return &batchArm{edge: "ingest", mode: mode, op: func() error {
		total := 0
		for _, f := range frames {
			out, err := types.DecodeBatch(f, dec)
			if err != nil {
				return err
			}
			total += len(out)
		}
		if total != len(recs) {
			return fmt.Errorf("ingest %s: %d rows out, want %d", mode, total, len(recs))
		}
		return nil
	}}
}

// batchRounds is how many interleaved measurement rounds each arm gets
// (after one discarded warmup).
const batchRounds = 5

func runBatch(cfg Config, w io.Writer) error {
	n := cfg.scaled(batchBenchRows)
	recs := hashPathRecords(n)
	arms := []*batchArm{
		deliverArm(recs, "batched", 0),
		deliverArm(recs, "record", 1),
		ingestArm(recs, "batched", cluster.DefaultBatchSize),
		ingestArm(recs, "record", 1),
	}

	// Warmup round (discarded): faults out configuration errors and
	// lets every arm touch its working set once.
	for _, a := range arms {
		if err := a.op(); err != nil {
			return err
		}
	}
	for round := 0; round < batchRounds; round++ {
		for _, a := range arms {
			// Collect before every measured op so each arm starts from
			// the same heap state: without this, allocation-heavy arms
			// grow the GC target and make whichever arm runs next look
			// artificially cheap.
			runtime.GC()
			start := time.Now()
			if err := a.op(); err != nil {
				return err
			}
			a.runs = append(a.runs, time.Since(start))
		}
	}

	med := map[string]int64{}
	for _, a := range arms {
		med[a.key()] = a.medianNs()
	}
	speedup := func(edge string) float64 {
		return float64(med[edge+"_record"]) / float64(med[edge+"_batched"])
	}

	fmt.Fprintf(w, "hash-path COMBINE microbench: %d rows of [bucket_id, join_key, row_id], frames of %d vs 1\n",
		n, cluster.DefaultBatchSize)
	var rows [][]string
	for _, edge := range []string{"deliver", "ingest"} {
		rows = append(rows, []string{
			edge,
			fmtDur(time.Duration(med[edge+"_batched"])),
			fmtDur(time.Duration(med[edge+"_record"])),
			fmt.Sprintf("%.2fx", speedup(edge)),
		})
	}
	printTable(w, []string{"edge", "batched", "record-at-a-time", "speedup"}, rows)

	if cfg.JSONOut != "" {
		if err := writeBatchJSON(cfg, n, arms, med, speedup); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", cfg.JSONOut)
	}
	// Regression canary, deliberately looser than the 2x target the
	// committed artifact records: trip only on a real collapse of the
	// batched path, not on a noisy CI neighbor.
	if s := speedup("deliver"); s < 1.2 {
		return fmt.Errorf("batch: deliver speedup %.2fx below the 1.2x regression floor", s)
	}
	return nil
}

// writeBatchJSON records the measurement in the style of the other
// results/BENCH_*.json artifacts, with stable field order.
func writeBatchJSON(cfg Config, n int, arms []*batchArm, med map[string]int64, speedup func(string) float64) error {
	runsOf := func(key string) string {
		for _, a := range arms {
			if a.key() == key {
				parts := make([]string, len(a.runs))
				for i, d := range a.runs {
					parts[i] = fmt.Sprintf("%d", d.Nanoseconds())
				}
				return "[" + strings.Join(parts, ", ") + "]"
			}
		}
		return "[]"
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n")
	fmt.Fprintf(&buf, "  %q: %q,\n", "benchmark", "bench experiment 'batch': hash-path COMBINE microbench")
	fmt.Fprintf(&buf, "  %q: %q,\n", "shape", fmt.Sprintf(
		"%d records of [bucket_id, join_key, row_id] int64 — the rows ExchangeHash moves for an equi-join COUNT(*) — crossing one node boundary, framed at %d rows (default) vs 1 row (record-at-a-time baseline, WithBatchSize(1))",
		n, cluster.DefaultBatchSize))
	fmt.Fprintf(&buf, "  %q: {%q: 2, %q: 1},\n", "cluster", "nodes", "cores_per_node")
	fmt.Fprintf(&buf, "  %q: %q,\n", "command", "make bench-batch")
	fmt.Fprintf(&buf, "  %q: %q,\n", "cpu", cpuModel())
	fmt.Fprintf(&buf, "  %q: {\n", "runs_ns_per_op")
	keys := []string{"deliver_batched", "deliver_record", "ingest_batched", "ingest_record"}
	for i, k := range keys {
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		fmt.Fprintf(&buf, "    %q: %s%s\n", k, runsOf(k), comma)
	}
	fmt.Fprintf(&buf, "  },\n")
	fmt.Fprintf(&buf, "  %q: {", "median_ns_per_op")
	for i, k := range keys {
		if i > 0 {
			fmt.Fprintf(&buf, ", ")
		}
		fmt.Fprintf(&buf, "%q: %d", k, med[k])
	}
	fmt.Fprintf(&buf, "},\n")
	fmt.Fprintf(&buf, "  %q: {%q: %.2f, %q: %.2f},\n", "speedup", "deliver", speedup("deliver"), "ingest", speedup("ingest"))
	fmt.Fprintf(&buf, "  %q: %q\n", "guard",
		"the batched deliver edge must stay >=2x the record-at-a-time baseline at the committed shape; arms interleave after a discarded warmup and an explicit GC so heap-growth ordering cannot favor either arm; the experiment itself fails below a looser 1.2x floor as a regression canary")
	fmt.Fprintf(&buf, "}\n")
	// Guarantee the hand-ordered output is well-formed JSON.
	var check any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		return fmt.Errorf("batch: malformed artifact: %w", err)
	}
	return os.WriteFile(cfg.JSONOut, buf.Bytes(), 0o644)
}

// cpuModel reports the processor model for the artifact, best-effort.
func cpuModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
			}
		}
	}
	return fmt.Sprintf("unknown (%s/%s, %d cpus)", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}
