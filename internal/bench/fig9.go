package bench

import (
	"fmt"
	"io"

	"fudj"
)

// Fig. 9: join performance of FUDJ vs built-in vs on-top while the
// record count grows, for all three example joins. The paper's
// headline: spatial FUDJ ~1200x over on-top, text-similarity ~6.5x,
// interval ~2.5x, with FUDJ tracking built-in closely.

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Join performance: FUDJ vs Built-in vs On-top (Fig. 9)",
		Paper: "spatial ~1200x, text-similarity ~6.5x, interval ~2.5x over on-top; FUDJ ≈ built-in",
		Run:   runFig9,
	})
	register(Experiment{ID: "fig9a", Title: "Fig. 9a spatial only", Run: runFig9Spatial})
	register(Experiment{ID: "fig9b", Title: "Fig. 9b interval only", Run: runFig9Interval})
	register(Experiment{ID: "fig9c", Title: "Fig. 9c text-similarity only", Run: runFig9Text})
}

func runFig9(cfg Config, w io.Writer) error {
	if err := runFig9Spatial(cfg, w); err != nil {
		return err
	}
	if err := runFig9Interval(cfg, w); err != nil {
		return err
	}
	return runFig9Text(cfg, w)
}

// arm describes one comparison arm of a figure.
type arm struct {
	name  string
	query func(size int) string
	mode  fudj.JoinMode
}

// sweepSizes runs each arm over growing sizes, marking an arm DNF once
// a run exceeds the budget (the paper's 4000 s cutoff, scaled down).
func sweepSizes(cfg Config, w io.Writer, mkEnv func(size int) (*env, error), sizes []int, sizeLabel string, arms []arm) error {
	header := []string{sizeLabel}
	for _, a := range arms {
		header = append(header, a.name)
	}
	dead := make([]bool, len(arms))
	var rows [][]string
	var rowCounts []int64
	for _, size := range sizes {
		e, err := mkEnv(size)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%d", size)}
		var counts []int64
		for i, a := range arms {
			if dead[i] {
				row = append(row, "DNF")
				counts = append(counts, -1)
				continue
			}
			e.db.SetJoinMode(a.mode)
			r := timedQuery(e.db, a.query(size))
			if r.err != nil {
				return fmt.Errorf("%s size %d: %w", a.name, size, r.err)
			}
			if cfg.Budget > 0 && r.elapsed > cfg.Budget {
				dead[i] = true
			}
			row = append(row, r.String())
			counts = append(counts, r.rows)
		}
		e.db.SetJoinMode(fudj.ModeFUDJ)
		// Sanity: all live arms must agree on the result count.
		var want int64 = -1
		for _, c := range counts {
			if c < 0 {
				continue
			}
			if want == -1 {
				want = c
			} else if c != want {
				return fmt.Errorf("size %d: arms disagree on result count: %v", size, counts)
			}
		}
		rowCounts = append(rowCounts, want)
		rows = append(rows, row)
	}
	for i := range rows {
		rows[i] = append(rows[i], fmt.Sprintf("%d", rowCounts[i]))
	}
	printTable(w, append(header, "results"), rows)
	return nil
}

func runFig9Spatial(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "-- Fig. 9a: spatial join (grid 32x32), wildfires = 2x parks --")
	sizes := []int{cfg.scaled(500), cfg.scaled(1000), cfg.scaled(2000), cfg.scaled(4000)}
	mk := func(size int) (*env, error) { return newEnv(cfg, size, 2*size, 0, 0) }
	q := `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 32)`
	onTop := `SELECT COUNT(*) FROM parks p, wildfires w WHERE st_intersects(p.boundary, w.location)`
	return sweepSizes(cfg, w, mk, sizes, "parks", []arm{
		{"FUDJ", func(int) string { return q }, fudj.ModeFUDJ},
		{"Built-in", func(int) string { return q }, fudj.ModeBuiltin},
		{"On-top", func(int) string { return onTop }, fudj.ModeFUDJ},
	})
}

func runFig9Interval(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "-- Fig. 9b: interval join (1000 granules), vendor 1 vs vendor 2 --")
	sizes := []int{cfg.scaled(1000), cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(8000)}
	mk := func(size int) (*env, error) { return newEnv(cfg, 0, 0, size, 0) }
	q := `SELECT COUNT(*) FROM nyctaxi n1, nyctaxi n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		AND overlapping_interval(n1.ride_interval, n2.ride_interval, 1000)`
	onTop := `SELECT COUNT(*) FROM nyctaxi n1, nyctaxi n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		AND interval_overlapping(n1.ride_interval, n2.ride_interval)`
	return sweepSizes(cfg, w, mk, sizes, "rides", []arm{
		{"FUDJ", func(int) string { return q }, fudj.ModeFUDJ},
		{"Built-in", func(int) string { return q }, fudj.ModeBuiltin},
		{"On-top", func(int) string { return onTop }, fudj.ModeFUDJ},
	})
}

func runFig9Text(cfg Config, w io.Writer) error {
	fmt.Fprintln(w, "-- Fig. 9c: text-similarity join (t=0.9), 5-star vs 4-star reviews --")
	sizes := []int{cfg.scaled(1000), cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(8000)}
	mk := func(size int) (*env, error) { return newEnv(cfg, 0, 0, 0, size) }
	q := `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
		WHERE r1.overall = 5 AND r2.overall = 4
		AND text_similarity_join(r1.review, r2.review, 0.9)`
	onTop := `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
		WHERE r1.overall = 5 AND r2.overall = 4
		AND similarity_jaccard(word_tokens(r1.review), word_tokens(r2.review)) >= 0.9`
	return sweepSizes(cfg, w, mk, sizes, "reviews", []arm{
		{"FUDJ", func(int) string { return q }, fudj.ModeFUDJ},
		{"Built-in", func(int) string { return q }, fudj.ModeBuiltin},
		{"On-top", func(int) string { return onTop }, fudj.ModeFUDJ},
	})
}
