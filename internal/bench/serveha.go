package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"fudj/internal/serve"
	"fudj/internal/serve/client"
)

// The serve-ha experiment prices client-side failover: the spatial
// join, closed-loop through a two-instance fudjd deployment behind a
// failover pool, with the serving instance drained and restarted out
// from under the client each round. Steady-state latency is the
// baseline; the "failover" arm is the latency of the first query after
// a drain — the price of the shed round trip, the peer's readiness
// probe, session re-establishment, and re-keying, all on one query.
// The contract under measurement is the §13.5 one: zero client-visible
// failures, however many instances die.

const serveHASQL = `SELECT COUNT(*) FROM parks p, wildfires w
	WHERE spatial_join(p.boundary, w.location, 16)`

// haBenchInstance is one restartable loopback fudjd for the
// experiment: same address across generations, fresh engine per
// generation (drain is permanent), deterministic data (same cfg).
type haBenchInstance struct {
	cfg  Config
	name string
	addr string
	gen  int
	srv  *serve.Server
}

func (h *haBenchInstance) start() error {
	e, err := newEnv(h.cfg, h.cfg.scaled(60), h.cfg.scaled(150), 8, 8)
	if err != nil {
		return err
	}
	h.gen++
	srv, err := serve.New(serve.Config{
		DB:         e.db,
		InstanceID: fmt.Sprintf("%s-g%d", h.name, h.gen),
		RetryAfter: 20 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	addr := h.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var lis net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rebind %s: %w", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	h.addr = lis.Addr().String()
	h.srv = srv
	go srv.Serve(lis)
	return nil
}

func (h *haBenchInstance) drain() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return h.srv.Drain(ctx)
}

func (h *haBenchInstance) shutdown() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return h.srv.Shutdown(ctx)
}

func runServeHAExperiment(cfg Config, w io.Writer) error {
	instances := []*haBenchInstance{
		{cfg: cfg, name: "a"},
		{cfg: cfg, name: "b"},
	}
	for _, h := range instances {
		if err := h.start(); err != nil {
			return err
		}
	}
	defer func() {
		for _, h := range instances {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			h.srv.Shutdown(ctx)
			cancel()
		}
	}()
	pool, err := client.NewPool(client.PoolConfig{
		Endpoints:       []string{"http://" + instances[0].addr, "http://" + instances[1].addr},
		Session:         "bench-ha",
		QueryPrefix:     "ha",
		Seed:            cfg.Seed,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		BreakerCooldown: 25 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer pool.Close()

	ctx := context.Background()
	query := func() (*client.Result, error) { return pool.Query(ctx, serveHASQL) }
	const warmups, steadyIters, rounds = 3, 20, 4
	for i := 0; i < warmups; i++ {
		if _, err := query(); err != nil {
			return fmt.Errorf("serve-ha warmup: %w", err)
		}
	}
	steady, err := measure(steadyIters, func() error { _, err := query(); return err })
	if err != nil {
		return fmt.Errorf("serve-ha steady: %w", err)
	}

	// Each round: find the instance currently serving this pool, drain
	// it, and time the very next query — the full failover, end to end.
	// Then restart the drained instance so the next round has a peer to
	// fail over to (and its breaker a chance to close).
	byAddr := make(map[string]*haBenchInstance, len(instances))
	for _, h := range instances {
		byAddr["http://"+h.addr] = h
	}
	failover := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		res, err := query()
		if err != nil {
			return fmt.Errorf("serve-ha round %d: %w", r, err)
		}
		serving := byAddr[res.Endpoint]
		if serving == nil {
			return fmt.Errorf("serve-ha round %d: unknown endpoint %q", r, res.Endpoint)
		}
		// Drain first, shut down after the timed query: the failover arm
		// measures the announced path (shed envelope, immediate peer
		// failover), the way a rolling restart actually presents — the
		// listener closes only once traffic has moved off.
		if err := serving.drain(); err != nil {
			return fmt.Errorf("serve-ha round %d drain: %w", r, err)
		}
		t0 := time.Now()
		if _, err := query(); err != nil {
			return fmt.Errorf("serve-ha round %d: query lost across a single-instance drain: %w", r, err)
		}
		failover = append(failover, time.Since(t0))
		if err := serving.shutdown(); err != nil {
			return fmt.Errorf("serve-ha round %d shutdown: %w", r, err)
		}
		if err := serving.start(); err != nil {
			return fmt.Errorf("serve-ha round %d restart: %w", r, err)
		}
	}
	sort.Slice(failover, func(i, j int) bool { return failover[i] < failover[j] })

	st := pool.Stats()
	fmt.Fprintf(w, "client-side failover, closed loop, %d steady iters then %d drain/restart rounds, two loopback instances:\n",
		steadyIters, rounds)
	printTable(w, []string{"arm", "p50", "p95", "max"}, [][]string{
		{"steady", fmtDur(quantile(steady, 0.5)), fmtDur(quantile(steady, 0.95)), fmtDur(steady[len(steady)-1])},
		{"failover", fmtDur(quantile(failover, 0.5)), fmtDur(quantile(failover, 0.95)), fmtDur(failover[len(failover)-1])},
	})
	fmt.Fprintf(w, "  failovers=%d drain_failovers=%d rekeys=%d breaker_opens=%d breaker_closes=%d probes=%d journal_replays=%d\n",
		st.Failovers, st.DrainFailovers, st.Rekeys, st.BreakerOpens, st.BreakerCloses, st.Probes, st.JournalReplays)

	if cfg.JSONOut != "" {
		if err := writeServeHAJSON(cfg, steady, failover, st); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", cfg.JSONOut)
	}
	// Regression canaries: the experiment is the contract, not a race.
	if st.DrainFailovers == 0 {
		return fmt.Errorf("serve-ha: no drain failover recorded across %d drains", rounds)
	}
	if st.Rekeys == 0 {
		return fmt.Errorf("serve-ha: no re-key recorded across %d instance changes", rounds)
	}
	return nil
}

// writeServeHAJSON records the measurement in the style of the other
// results/BENCH_*.json artifacts, with stable field order.
func writeServeHAJSON(cfg Config, steady, failover []time.Duration, st client.PoolStats) error {
	runs := func(ds []time.Duration) string {
		parts := make([]string, len(ds))
		for i, d := range ds {
			parts[i] = fmt.Sprintf("%d", d.Nanoseconds())
		}
		return "[" + strings.Join(parts, ", ") + "]"
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "{\n")
	fmt.Fprintf(&buf, "  %q: %q,\n", "benchmark", "bench experiment 'serve-ha': client-side failover across a rolling restart")
	fmt.Fprintf(&buf, "  %q: %q,\n", "shape",
		"the spatial example join, closed loop through a failover pool over two loopback fudjd instances; the steady arm queries a healthy pair, the failover arm times the first query after the serving instance drains — shed detection, peer readiness probe, session re-establishment, and re-key included")
	fmt.Fprintf(&buf, "  %q: {%q: 4, %q: 2},\n", "cluster", "nodes", "cores_per_node")
	fmt.Fprintf(&buf, "  %q: %q,\n", "command", "make bench-serve-ha")
	fmt.Fprintf(&buf, "  %q: %q,\n", "cpu", cpuModel())
	fmt.Fprintf(&buf, "  %q: {\n", "runs_ns")
	fmt.Fprintf(&buf, "    %q: %s,\n", "steady", runs(steady))
	fmt.Fprintf(&buf, "    %q: %s\n", "failover", runs(failover))
	fmt.Fprintf(&buf, "  },\n")
	fmt.Fprintf(&buf, "  %q: {%q: %d, %q: %d},\n", "median_ns",
		"steady", quantile(steady, 0.5).Nanoseconds(),
		"failover", quantile(failover, 0.5).Nanoseconds())
	fmt.Fprintf(&buf, "  %q: {%q: %d, %q: %d, %q: %d, %q: %d, %q: %d, %q: %d, %q: %d},\n", "pool",
		"failovers", st.Failovers, "drain_failovers", st.DrainFailovers,
		"rekeys", st.Rekeys, "breaker_opens", st.BreakerOpens,
		"breaker_closes", st.BreakerCloses, "probes", st.Probes,
		"journal_replays", st.JournalReplays)
	fmt.Fprintf(&buf, "  %q: %q\n", "guard",
		"every query must succeed — a drain of the serving instance is never client-visible as a failure; the experiment itself fails if no drain failover or re-key was recorded, so the failover arm cannot silently measure a healthy pair")
	fmt.Fprintf(&buf, "}\n")
	var check any
	if err := json.Unmarshal(buf.Bytes(), &check); err != nil {
		return fmt.Errorf("serve-ha: malformed artifact: %w", err)
	}
	return os.WriteFile(cfg.JSONOut, buf.Bytes(), 0o644)
}

func init() {
	register(Experiment{
		ID:    "serve-ha",
		Title: "Extra: client-side failover latency across a rolling restart of fudjd instances",
		Paper: "not in the paper; multi-instance serving experiment — closed-loop latency of the spatial join through a failover pool, steady-state vs the first query after the serving instance drains",
		Run:   runServeHAExperiment,
	})
}
