package bench

import (
	"fmt"
	"io"
)

// Ablations for the design choices DESIGN.md calls out, beyond what the
// paper's own figures cover.

func init() {
	register(Experiment{
		ID:    "ablation_match",
		Title: "Ablation: hash-join vs theta bucket matching for a default-match join",
		Paper: "motivates the optimizer's hash-join selection (§VI-C)",
		Run:   runAblationMatch,
	})
	register(Experiment{
		ID:    "ablation_selfjoin",
		Title: "Ablation: self-join summary reuse on vs off",
		Paper: "motivates the self-join optimization (§VI-C)",
		Run:   runAblationSelfJoin,
	})
	register(Experiment{
		ID:    "ablation_theta",
		Title: "Ablation: naive (broadcast) vs balanced theta operator on the interval join",
		Paper: "the Theta Join Operator proposed as future work (§VIII) to lift the interval join's limit",
		Run:   runAblationTheta,
	})
	register(Experiment{
		ID:    "ablation_autotune",
		Title: "Ablation: automatic bucket-count tuning vs manual sweep",
		Paper: "the §VIII future-work item: derive the bucket count from SUMMARIZE statistics",
		Run:   runAblationAutotune,
	})
	register(Experiment{
		ID:    "ablation_dedup",
		Title: "Ablation: duplicate handling disabled vs avoidance (spatial)",
		Paper: "quantifies the duplication factor multi-assign creates (§III-B)",
		Run:   runAblationDedup,
	})
}

// runAblationMatch compares the spatial join (default match, hash-join
// path) against a semantically identical variant whose match function
// is declared explicitly, forcing the theta (broadcast) operator.
func runAblationMatch(cfg Config, w io.Writer) error {
	e, err := newEnv(cfg, cfg.scaled(1500), cfg.scaled(3000), 0, 0)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, n := range []int{8, 32} {
		hash := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, %d)`, n))
		theta := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join_theta(p.boundary, w.location, %d)`, n))
		if hash.err != nil {
			return hash.err
		}
		if theta.err != nil {
			return theta.err
		}
		if hash.rows != theta.rows {
			return fmt.Errorf("ablation_match grid %d: hash %d rows, theta %d rows", n, hash.rows, theta.rows)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), hash.String(), theta.String(),
			fmt.Sprintf("%.2fx", theta.elapsed.Seconds()/hash.elapsed.Seconds()),
		})
	}
	printTable(w, []string{"grid n", "hash path", "theta path", "theta/hash"}, rows)
	fmt.Fprintln(w, "  (the hash path is what the optimizer buys by detecting default match)")
	return nil
}

// runAblationSelfJoin compares a pure self-join (summary computed once)
// against the same query with trivially different per-side filters that
// defeat self-join detection, so both sides are summarized.
func runAblationSelfJoin(cfg Config, w io.Writer) error {
	// The spatial self-join keeps the COMBINE phase cheap relative to
	// SUMMARIZE, so the saved summary pass is visible. Each arm runs
	// three times and reports the minimum to damp scheduler noise.
	e, err := newEnv(cfg, cfg.scaled(2500), 0, 0, 0)
	if err != nil {
		return err
	}
	reuseQ := `SELECT COUNT(*) FROM parks a, parks b
		WHERE spatial_join(a.boundary, b.boundary, 32)`
	// id >= 0 vs id >= 0 + 0 render differently, so reuse is disabled
	// while the filtered sets stay identical.
	noReuseQ := `SELECT COUNT(*) FROM parks a, parks b
		WHERE a.id >= 0 AND b.id >= 0 + 0
		AND spatial_join(a.boundary, b.boundary, 32)`
	best := func(q string) (runResult, error) {
		var min runResult
		for i := 0; i < 3; i++ {
			r := timedQuery(e.db, q)
			if r.err != nil {
				return r, r.err
			}
			if i == 0 || r.elapsed < min.elapsed {
				min = r
			}
		}
		return min, nil
	}
	reuse, err := best(reuseQ)
	if err != nil {
		return err
	}
	noReuse, err := best(noReuseQ)
	if err != nil {
		return err
	}
	if reuse.rows != noReuse.rows {
		return fmt.Errorf("ablation_selfjoin: %d vs %d rows", reuse.rows, noReuse.rows)
	}
	printTable(w, []string{"variant", "wall (best of 3)", "makespan"}, [][]string{
		{"summary reused", reuse.String(), fmtDur(reuse.maxBusy)},
		{"both sides summarized", noReuse.String(), fmtDur(noReuse.maxBusy)},
	})
	return nil
}

// runAblationTheta compares the paper's measured theta strategy
// (broadcast one side + random-partition the other) against the
// balanced bucket-pair operator, on the interval workload whose
// scalability the paper says the naive operator limits.
func runAblationTheta(cfg Config, w io.Writer) error {
	var rows [][]string
	for _, size := range []int{cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(8000)} {
		e, err := newEnv(cfg, 0, 0, size, 0)
		if err != nil {
			return err
		}
		q := `SELECT COUNT(*) FROM nyctaxi n1, nyctaxi n2
			WHERE n1.vendor = 1 AND n2.vendor = 2
			AND overlapping_interval(n1.ride_interval, n2.ride_interval, 1000)`
		e.db.SetSmartTheta(false)
		naive := timedQuery(e.db, q)
		e.db.SetSmartTheta(true)
		smart := timedQuery(e.db, q)
		e.db.SetSmartTheta(false)
		if naive.err != nil {
			return naive.err
		}
		if smart.err != nil {
			return smart.err
		}
		if naive.rows != smart.rows {
			return fmt.Errorf("ablation_theta size %d: naive %d rows, balanced %d rows", size, naive.rows, smart.rows)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", size),
			naive.String(), fmtDur(naive.maxBusy), fmt.Sprintf("%d", naive.shuffled),
			smart.String(), fmtDur(smart.maxBusy), fmt.Sprintf("%d", smart.shuffled),
			fmt.Sprintf("%.2fx", float64(naive.shuffled)/float64(smart.shuffled)),
		})
	}
	printTable(w, []string{"rides", "naive wall", "naive mkspan", "naive shuffled", "bal. wall", "bal. mkspan", "bal. shuffled", "shuffle reduction"}, rows)
	fmt.Fprintln(w, "  (wall times on one host are noisy; the shuffle reduction is the")
	fmt.Fprintln(w, "   deterministic win, and makespan improves under skew)")
	return nil
}

// runAblationAutotune compares the auto-sized spatial and interval
// joins (parameter 0) against a manual sweep, showing the derived
// bucket count lands near the sweep's best point.
func runAblationAutotune(cfg Config, w io.Writer) error {
	e, err := newEnv(cfg, cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(5000), 0)
	if err != nil {
		return err
	}

	fmt.Fprintln(w, "-- spatial: auto grid vs manual sweep --")
	var rows [][]string
	auto := timedQuery(e.db,
		`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join_auto(p.boundary, w.location, 0)`)
	if auto.err != nil {
		return auto.err
	}
	rows = append(rows, []string{"auto", auto.String(), fmt.Sprintf("%d", auto.rows)})
	for _, n := range []int{2, 8, 32, 128} {
		r := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, %d)`, n))
		if r.err != nil {
			return r.err
		}
		if r.rows != auto.rows {
			return fmt.Errorf("ablation_autotune spatial n=%d: %d rows vs auto %d", n, r.rows, auto.rows)
		}
		rows = append(rows, []string{fmt.Sprintf("manual n=%d", n), r.String(), fmt.Sprintf("%d", r.rows)})
	}
	printTable(w, []string{"grid", "wall", "results"}, rows)

	fmt.Fprintln(w, "-- interval: auto granules vs manual sweep --")
	rows = nil
	autoI := timedQuery(e.db, `SELECT COUNT(*) FROM nyctaxi a, nyctaxi b
		WHERE a.vendor = 1 AND b.vendor = 2
		AND overlapping_interval_auto(a.ride_interval, b.ride_interval, 0)`)
	if autoI.err != nil {
		return autoI.err
	}
	rows = append(rows, []string{"auto", autoI.String(), fmt.Sprintf("%d", autoI.rows)})
	for _, n := range []int{1, 100, 1000} {
		r := timedQuery(e.db, fmt.Sprintf(`SELECT COUNT(*) FROM nyctaxi a, nyctaxi b
			WHERE a.vendor = 1 AND b.vendor = 2
			AND overlapping_interval(a.ride_interval, b.ride_interval, %d)`, n))
		if r.err != nil {
			return r.err
		}
		if r.rows != autoI.rows {
			return fmt.Errorf("ablation_autotune interval n=%d: %d rows vs auto %d", n, r.rows, autoI.rows)
		}
		rows = append(rows, []string{fmt.Sprintf("manual n=%d", n), r.String(), fmt.Sprintf("%d", r.rows)})
	}
	printTable(w, []string{"granules", "wall", "results"}, rows)
	return nil
}

// runAblationDedup quantifies raw duplication: the no-dedup spatial
// variant emits every bucket-pair hit, versus avoidance which emits each
// result once.
func runAblationDedup(cfg Config, w io.Writer) error {
	// Polygon-polygon self-join, where multi-assignment genuinely
	// duplicates pairs (polygons straddle tile boundaries).
	e, err := newEnv(cfg, cfg.scaled(1500), 0, 0, 0)
	if err != nil {
		return err
	}
	if _, err := e.db.Execute(`CREATE JOIN spatial_join_nodedup(a: geometry, b: geometry, n: int)
		RETURNS boolean AS "pbsm.SpatialJoinNoDedup" AT spatialjoins`); err != nil {
		return err
	}
	var rows [][]string
	for _, n := range []int{8, 32, 64} {
		clean := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks a, parks b WHERE spatial_join(a.boundary, b.boundary, %d)`, n))
		raw := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks a, parks b WHERE spatial_join_nodedup(a.boundary, b.boundary, %d)`, n))
		if clean.err != nil {
			return clean.err
		}
		if raw.err != nil {
			return raw.err
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", clean.rows),
			fmt.Sprintf("%d", raw.rows),
			fmt.Sprintf("%.3fx", float64(raw.rows)/float64(clean.rows)),
			clean.String(), raw.String(),
		})
	}
	printTable(w, []string{"grid n", "results", "raw pairs", "dup factor", "avoidance", "no dedup"}, rows)
	return nil
}
