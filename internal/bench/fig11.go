package bench

import (
	"fmt"
	"io"
)

// Fig. 11: the effect of the number of buckets (spatial, interval) and
// of the similarity threshold (text-similarity) on execution time, at
// several core counts.

func init() {
	register(Experiment{
		ID:    "fig11",
		Title: "Effect of bucket count and similarity threshold (Fig. 11)",
		Paper: "U-shaped cost in bucket count; text-similarity cost explodes as the threshold drops",
		Run:   runFig11,
	})
}

func runFig11(cfg Config, w io.Writer) error {
	coreSweep := []int{1, 2, 4}

	// (a) Spatial: sweep the grid size.
	fmt.Fprintln(w, "-- Fig. 11a: spatial join vs number of buckets (grid n, buckets = n^2) --")
	{
		grids := []int{2, 4, 8, 16, 32, 64}
		header := []string{"grid n"}
		for _, c := range coreSweep {
			header = append(header, fmt.Sprintf("%d cores", cfg.Nodes*c))
		}
		var rows [][]string
		for _, n := range grids {
			row := []string{fmt.Sprintf("%d", n)}
			for _, cores := range coreSweep {
				c := cfg
				c.Cores = cores
				e, err := newEnv(c, c.scaled(2000), c.scaled(4000), 0, 0)
				if err != nil {
					return err
				}
				r := timedQuery(e.db, fmt.Sprintf(
					`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, %d)`, n))
				if r.err != nil {
					return r.err
				}
				row = append(row, r.String())
			}
			rows = append(rows, row)
		}
		printTable(w, header, rows)
	}

	// (b) Interval: sweep the granule count.
	fmt.Fprintln(w, "-- Fig. 11b: interval join vs number of buckets (granules) --")
	{
		granules := []int{1, 10, 100, 500, 1000, 2500}
		header := []string{"granules"}
		for _, c := range coreSweep {
			header = append(header, fmt.Sprintf("%d cores", cfg.Nodes*c))
		}
		var rows [][]string
		for _, n := range granules {
			row := []string{fmt.Sprintf("%d", n)}
			for _, cores := range coreSweep {
				c := cfg
				c.Cores = cores
				e, err := newEnv(c, 0, 0, c.scaled(5000), 0)
				if err != nil {
					return err
				}
				r := timedQuery(e.db, fmt.Sprintf(
					`SELECT COUNT(*) FROM nyctaxi n1, nyctaxi n2
					 WHERE n1.vendor = 1 AND n2.vendor = 2
					 AND overlapping_interval(n1.ride_interval, n2.ride_interval, %d)`, n))
				if r.err != nil {
					return r.err
				}
				row = append(row, r.String())
			}
			rows = append(rows, row)
		}
		printTable(w, header, rows)
	}

	// (c) Text-similarity: sweep the threshold.
	fmt.Fprintln(w, "-- Fig. 11c: text-similarity join vs similarity threshold --")
	{
		thresholds := []float64{0.95, 0.9, 0.8, 0.7, 0.6, 0.5}
		header := []string{"threshold"}
		for _, c := range coreSweep {
			header = append(header, fmt.Sprintf("%d cores", cfg.Nodes*c))
		}
		var rows [][]string
		for _, t := range thresholds {
			row := []string{fmt.Sprintf("%.2f", t)}
			for _, cores := range coreSweep {
				c := cfg
				c.Cores = cores
				e, err := newEnv(c, 0, 0, 0, c.scaled(3000))
				if err != nil {
					return err
				}
				r := timedQuery(e.db, fmt.Sprintf(
					`SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
					 WHERE r1.overall = 5 AND r2.overall = 4
					 AND text_similarity_join(r1.review, r2.review, %g)`, t))
				if r.err != nil {
					return r.err
				}
				row = append(row, r.String())
			}
			rows = append(rows, row)
		}
		printTable(w, header, rows)
	}
	return nil
}
