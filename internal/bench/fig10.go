package bench

import (
	"fmt"
	"io"

	"fudj"
)

// Fig. 10: query execution time vs number of cores, FUDJ vs built-in,
// for all three joins. The paper sweeps 12→144 cores on 12 nodes; the
// harness sweeps total worker partitions at laptop scale and reports
// both wall time and MaxBusy — the per-partition makespan, which keeps
// scaling even after wall time saturates the host's physical cores.

func init() {
	register(Experiment{
		ID:    "fig10",
		Title: "Scalability: execution time vs cores (Fig. 10)",
		Paper: "spatial and text-similarity scale with cores; interval limited by theta matching; FUDJ tracks built-in",
		Run:   runFig10,
	})
}

func runFig10(cfg Config, w io.Writer) error {
	type workload struct {
		name  string
		mk    func(c Config) (*env, error)
		query string
	}
	workloads := []workload{
		{
			name: "spatial (grid 32)",
			mk: func(c Config) (*env, error) {
				return newEnv(c, c.scaled(2000), c.scaled(4000), 0, 0)
			},
			query: `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 32)`,
		},
		{
			name: "interval (1000 granules)",
			mk: func(c Config) (*env, error) {
				return newEnv(c, 0, 0, c.scaled(6000), 0)
			},
			query: `SELECT COUNT(*) FROM nyctaxi n1, nyctaxi n2
				WHERE n1.vendor = 1 AND n2.vendor = 2
				AND overlapping_interval(n1.ride_interval, n2.ride_interval, 1000)`,
		},
		{
			name: "text-similarity (t=0.9)",
			mk: func(c Config) (*env, error) {
				return newEnv(c, 0, 0, 0, c.scaled(6000))
			},
			query: `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
				WHERE r1.overall = 5 AND r2.overall = 4
				AND text_similarity_join(r1.review, r2.review, 0.9)`,
		},
	}
	// Scaled-down core sweep mirroring the paper's 12/48/96/144.
	coreSweep := []int{1, 2, 4, 6}

	for _, wl := range workloads {
		fmt.Fprintf(w, "-- Fig. 10: %s --\n", wl.name)
		var rows [][]string
		for _, cores := range coreSweep {
			c := cfg
			c.Cores = cores
			e, err := wl.mk(c)
			if err != nil {
				return err
			}
			fudjRun := timedQuery(e.db, wl.query)
			if fudjRun.err != nil {
				return fudjRun.err
			}
			e.db.SetJoinMode(fudj.ModeBuiltin)
			builtinRun := timedQuery(e.db, wl.query)
			if builtinRun.err != nil {
				return builtinRun.err
			}
			if fudjRun.rows != builtinRun.rows {
				return fmt.Errorf("fig10 %s cores=%d: FUDJ %d rows, built-in %d rows",
					wl.name, cores, fudjRun.rows, builtinRun.rows)
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", cfg.Nodes*cores),
				fudjRun.String(), fmtDur(fudjRun.maxBusy),
				builtinRun.String(), fmtDur(builtinRun.maxBusy),
			})
		}
		printTable(w, []string{"cores", "FUDJ wall", "FUDJ makespan", "Built-in wall", "Built-in makespan"}, rows)
	}
	return nil
}
