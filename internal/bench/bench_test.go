package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// tinyConfig runs every experiment at a scale where the whole suite
// completes in seconds.
func tinyConfig() Config {
	return Config{Scale: 0.02, Nodes: 2, Cores: 1, Seed: 7, Budget: 30 * time.Second}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.ID, cfg, &buf); err != nil {
				t.Fatalf("%s: %v\noutput:\n%s", e.ID, err, buf.String())
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyConfig(), &buf); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestExperimentIDsCoverPaper(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "fig9", "fig10", "fig11", "fig12a", "fig12b", "fig12c"}
	have := map[string]bool{}
	for _, e := range Experiments() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
}

func TestCountLOC(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.go")
	src := `// a comment
package x

/* block
comment */
func F() int { // trailing comment counts as code
	return 1
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := CountLOC(path)
	if err != nil {
		t.Fatal(err)
	}
	// package x, func F..., return 1, closing brace.
	if n != 4 {
		t.Errorf("CountLOC = %d, want 4", n)
	}
	if _, err := CountLOC(filepath.Join(dir, "missing.go")); err == nil {
		t.Error("missing file should error")
	}
}

func TestTableIILOCOrdering(t *testing.T) {
	rows, err := TableIILOC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FUDJ <= 0 || r.Builtin <= 0 {
			t.Errorf("%s: zero LOC (%d / %d)", r.Join, r.FUDJ, r.Builtin)
		}
		// The paper's productivity claim: the FUDJ implementation is
		// smaller than the built-in operator.
		if r.FUDJ >= r.Builtin {
			t.Errorf("%s: FUDJ %d loc >= built-in %d loc", r.Join, r.FUDJ, r.Builtin)
		}
	}
}

func TestPrintTable(t *testing.T) {
	var buf bytes.Buffer
	printTable(&buf, []string{"a", "bbbb"}, [][]string{{"xx", "y"}})
	out := buf.String()
	if !strings.Contains(out, "a ") || !strings.Contains(out, "xx") {
		t.Errorf("printTable output:\n%s", out)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:        "2.00s",
		15 * time.Millisecond:  "15.0ms",
		250 * time.Microsecond: "250µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}
