package bench

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// CountLOC returns the number of non-blank, non-comment lines in a Go
// source file — the productivity metric of Table II.
func CountLOC(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	inBlock := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if inBlock {
			if idx := strings.Index(line, "*/"); idx >= 0 {
				line = strings.TrimSpace(line[idx+2:])
				inBlock = false
			} else {
				continue
			}
		}
		if strings.HasPrefix(line, "/*") {
			if !strings.Contains(line, "*/") {
				inBlock = true
			}
			continue
		}
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		count++
	}
	return count, sc.Err()
}

// repoRoot locates the module root from this source file's position,
// so LOC counting works regardless of the working directory.
func repoRoot() (string, error) {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("bench: cannot locate source tree")
	}
	// file is <root>/internal/bench/loc.go
	return filepath.Dir(filepath.Dir(filepath.Dir(file))), nil
}

// LOCRow is one Table II row.
type LOCRow struct {
	Join    string
	FUDJ    int
	Builtin int
}

// TableIILOC counts the per-join implementation sizes: the FUDJ library
// source versus the hand-built operator source.
func TableIILOC() ([]LOCRow, error) {
	root, err := repoRoot()
	if err != nil {
		return nil, err
	}
	pairs := []struct {
		name          string
		fudj, builtin string
	}{
		{"Spatial", "internal/joins/spatialjoin/spatialjoin.go", "internal/joins/builtin/spatial.go"},
		{"Interval", "internal/joins/intervaljoin/intervaljoin.go", "internal/joins/builtin/interval.go"},
		{"Text-similarity", "internal/joins/textsim/textsim.go", "internal/joins/builtin/textsim.go"},
	}
	var out []LOCRow
	for _, p := range pairs {
		f, err := CountLOC(filepath.Join(root, p.fudj))
		if err != nil {
			return nil, err
		}
		b, err := CountLOC(filepath.Join(root, p.builtin))
		if err != nil {
			return nil, err
		}
		out = append(out, LOCRow{Join: p.name, FUDJ: f, Builtin: b})
	}
	return out, nil
}
