package bench

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"fudj"
	"fudj/internal/serve"
	"fudj/internal/serve/client"
)

// The stress experiment drives the admission-controlled scheduler the
// way the paper's serving scenario would: an open-loop arrival process
// (arrivals do not wait for completions) of mixed spatial / interval /
// text-similarity joins, deliberately offered faster than the cluster
// can absorb, against a small shared memory pool. It checks the
// scheduler's three contracts under overload:
//
//   - no overshoot: the peak sum of outstanding memory leases never
//     exceeds the configured pool;
//   - no interference: every query that completes returns exactly its
//     serial-baseline multiset, even while neighbours are shed, time
//     out, or die to a panicking UDF;
//   - bounded shedding: overflow is rejected with a retryable
//     *fudj.AdmissionError instead of queueing without bound or
//     crashing, and a final Drain leaves nothing running.

// StressConfig shapes one stress run.
type StressConfig struct {
	Queries       int           // total arrivals (completions not awaited between launches)
	MaxConcurrent int           // admission slots
	QueueDepth    int           // bounded admission queue
	Pool          int64         // shared memory pool (bytes)
	Budget        int64         // per-query memory request (lease ask)
	Arrival       time.Duration // mean inter-arrival gap of the open loop
	Timeout       time.Duration // per-query deadline; 0 = none
	PoisonEvery   int           // every Nth arrival runs the panicking UDF; 0 = never
	Faults        bool          // arm probabilistic crash injection during the storm
	Net           bool          // drive the storm through a real fudjd over loopback TCP
	Seed          int64
	Nodes, Cores  int
	Scale         float64 // dataset scale multiplier
}

// DefaultStressConfig returns a laptop-scale overload: ~240 arrivals
// against 8 slots and a pool sized so concurrent leases must be
// reduced below their ask.
func DefaultStressConfig() StressConfig {
	return StressConfig{
		Queries:       240,
		MaxConcurrent: 8,
		QueueDepth:    24,
		Pool:          16 << 20,
		Budget:        4 << 20,
		Arrival:       1500 * time.Microsecond,
		PoisonEvery:   11,
		Seed:          17,
		Nodes:         2,
		Cores:         2,
		Scale:         1,
	}
}

// StressReport is the outcome of one stress run. Every arrival lands
// in exactly one bucket: Completed + Shed + Poisoned + TimedOut +
// Failed == Queries.
type StressReport struct {
	Queries   int
	Completed int // finished and multiset-verified against serial baseline
	Shed      int // *fudj.AdmissionError (queue full / pool exhausted)
	Poisoned  int // panicking-UDF queries that failed with *fudj.UDFError
	TimedOut  int // *fudj.TimeoutError
	Failed    int // any other error — always a bug

	Mismatched   int // completed queries whose multiset differed from baseline
	BadShed      int // sheds that were not retryable (and not draining)
	LeasePeak    int64
	Pool         int64
	MaxQueueWait time.Duration
	ShedRate     float64 // Shed / Queries
	Elapsed      time.Duration
	DrainErr     error // non-nil when Drain hit its deadline
	LateShed     bool  // post-drain probe was refused with ReasonDraining
}

// stressClass is one query class in the mix, with its serial-baseline
// multiset hash filled in before the storm starts.
type stressClass struct {
	name string
	sql  string
	base uint64
}

// multisetHash fingerprints a result set order-insensitively: FNV-1a
// per rendered row, combined by wrapping sum, length folded in so the
// empty set is distinguished.
func multisetHash(rows []fudj.Record) uint64 {
	var sum uint64
	for _, r := range rows {
		h := fnv.New64a()
		io.WriteString(h, r.String())
		sum += h.Sum64()
	}
	return sum ^ (uint64(len(rows)) * 0x9e3779b97f4a7c15)
}

// newPoisonJoin is an interval-shaped FUDJ whose VERIFY always panics:
// the deterministic "bad UDF" arm of the interference check. The
// engine's panic guard converts it into a *fudj.UDFError; the query
// fails, its neighbours must not notice.
func newPoisonJoin() fudj.Join {
	type summary struct{ N int64 }
	type plan struct{ Buckets int64 }
	return fudj.Wrap(fudj.Spec[fudj.Interval, fudj.Interval, summary, plan]{
		Name:         "poison_overlap",
		Params:       1,
		NewSummary:   func() summary { return summary{} },
		LocalAggLeft: func(_ fudj.Interval, s summary) summary { s.N++; return s },
		GlobalAgg:    func(a, b summary) summary { return summary{N: a.N + b.N} },
		Divide:       func(_, _ summary, _ []any) (plan, error) { return plan{Buckets: 1}, nil },
		AssignLeft: func(_ fudj.Interval, _ plan, dst []fudj.BucketID) []fudj.BucketID {
			return append(dst, 0)
		},
		Verify: func(_ fudj.BucketID, _ fudj.Interval, _ fudj.BucketID, _ fudj.Interval, _ plan) bool {
			panic("poison_overlap: injected UDF failure")
		},
	})
}

const poisonSQL = `SELECT COUNT(*) FROM nyctaxi n1, nyctaxi n2
	WHERE n1.vendor = 1 AND n2.vendor = 2
	AND poison_overlap(n1.ride_interval, n2.ride_interval, 100)`

// stressEnv builds the stress database: standard datasets and joins
// plus the poison library, under the configured admission limits.
func stressEnv(cfg StressConfig) (*fudj.DB, []stressClass, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	base := Config{Scale: scale, Nodes: cfg.Nodes, Cores: cfg.Cores, Seed: cfg.Seed}
	e, err := newEnv(base, base.scaled(60), base.scaled(150), base.scaled(150), base.scaled(100),
		fudj.WithConcurrencyLimit(cfg.MaxConcurrent),
		fudj.WithQueueDepth(cfg.QueueDepth),
		fudj.WithMemoryPool(cfg.Pool),
		fudj.WithMemoryBudget(cfg.Budget),
	)
	if err != nil {
		return nil, nil, err
	}
	lib := fudj.NewLibrary("poisonlib")
	lib.MustRegister("poison.Overlap", newPoisonJoin)
	if err := e.db.InstallLibrary(lib); err != nil {
		return nil, nil, err
	}
	if _, err := e.db.Execute(`CREATE JOIN poison_overlap(a: interval, b: interval, n: int)
		RETURNS boolean AS "poison.Overlap" AT poisonlib`); err != nil {
		return nil, nil, err
	}

	classes := []stressClass{
		{name: "spatial", sql: `SELECT COUNT(*) FROM parks p, wildfires w
			WHERE spatial_join(p.boundary, w.location, 16)`},
		{name: "interval", sql: `SELECT n1.id, n2.id FROM nyctaxi n1, nyctaxi n2
			WHERE n1.vendor = 1 AND n2.vendor = 2
			AND overlapping_interval(n1.ride_interval, n2.ride_interval, 100)`},
		{name: "textsim", sql: `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
			WHERE r1.overall = 5 AND r2.overall = 4
			AND text_similarity_join(r1.review, r2.review, 0.8)`},
	}
	// Serial baselines: with the queue idle each runs alone, so the
	// hash is the ground-truth multiset for the class.
	for i := range classes {
		res, err := e.db.Execute(classes[i].sql)
		if err != nil {
			return nil, nil, fmt.Errorf("baseline %s: %w", classes[i].name, err)
		}
		classes[i].base = multisetHash(res.Rows)
	}
	return e.db, classes, nil
}

// RunStress executes one open-loop storm and returns the report. The
// run itself never fails on scheduler behaviour — invariant violations
// are counted in the report (Mismatched, BadShed, Failed, overshoot)
// so callers decide how strict to be; only setup errors return err.
func RunStress(cfg StressConfig, w io.Writer) (*StressReport, error) {
	if cfg.Queries <= 0 {
		cfg.Queries = 1
	}
	db, classes, err := stressEnv(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Faults {
		// A light probabilistic crash storm on top: tasks die and the
		// retry machinery re-runs them mid-contention.
		if err := db.Configure(fudj.WithFaults(&fudj.FaultConfig{Seed: cfg.Seed + 99, CrashProb: 0.03})); err != nil {
			return nil, err
		}
	}

	// With Net set, the storm crosses a real loopback TCP socket into
	// an in-process fudjd: every query pays frame encode/decode, CRC,
	// and HTTP round-trip cost, and drain semantics are the server's.
	// MaxAttempts stays 1 so the open-loop arrival process is preserved
	// — a shed arrival is a shed arrival, not a client-side retry loop.
	var (
		srv *serve.Server
		cli *client.Client
	)
	if cfg.Net {
		srv, err = serve.New(serve.Config{DB: db})
		if err != nil {
			return nil, err
		}
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		go srv.Serve(lis)
		cli, err = client.New(client.Config{
			BaseURL:     "http://" + lis.Addr().String(),
			Session:     "stress",
			QueryPrefix: "st",
			MaxAttempts: 1,
			Seed:        cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		defer func() {
			cli.Close()
			sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer scancel()
			srv.Shutdown(sctx)
		}()
	}

	// runQuery executes one arrival in-process or over the wire and
	// normalizes the answer to (rows, queue wait, error).
	runQuery := func(sql string, prio fudj.Priority, timeout time.Duration) ([]fudj.Record, time.Duration, error) {
		if cli != nil {
			ctx := context.Background()
			if timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			res, err := cli.Query(ctx, sql, client.WithPriority(prio))
			if err != nil {
				return nil, 0, err
			}
			return res.Rows, res.Sched.QueueWait, nil
		}
		opts := []fudj.ExecOption{fudj.WithPriority(prio)}
		if timeout > 0 {
			opts = append(opts, fudj.WithQueryTimeout(timeout))
		}
		res, err := db.Execute(sql, opts...)
		if err != nil {
			return nil, 0, err
		}
		return res.Rows, res.Sched.QueueWait, nil
	}

	// Pre-generate the whole arrival schedule deterministically from
	// the seed before launching anything.
	type arrival struct {
		class int // index into classes, or -1 for poison
		prio  fudj.Priority
		gap   time.Duration
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	prios := []fudj.Priority{fudj.PriorityLow, fudj.PriorityNormal, fudj.PriorityNormal, fudj.PriorityHigh}
	schedule := make([]arrival, cfg.Queries)
	for i := range schedule {
		a := arrival{
			class: rng.Intn(len(classes)),
			prio:  prios[rng.Intn(len(prios))],
		}
		if cfg.Arrival > 0 {
			a.gap = time.Duration(rng.Int63n(int64(2*cfg.Arrival) + 1))
		}
		if cfg.PoisonEvery > 0 && (i+1)%cfg.PoisonEvery == 0 {
			a.class = -1
		}
		schedule[i] = a
	}

	rep := &StressReport{Queries: cfg.Queries, Pool: cfg.Pool}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for _, a := range schedule {
		time.Sleep(a.gap) // open loop: launch regardless of completions
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			sql, base := poisonSQL, uint64(0)
			if a.class >= 0 {
				sql, base = classes[a.class].sql, classes[a.class].base
			}
			rows, queueWait, err := runQuery(sql, a.prio, cfg.Timeout)

			mu.Lock()
			defer mu.Unlock()
			var adm *fudj.AdmissionError
			var udf *fudj.UDFError
			var tmo *fudj.TimeoutError
			switch {
			case errors.As(err, &adm):
				rep.Shed++
				if !fudj.IsRetryable(err) && adm.Reason != fudj.ReasonDraining {
					rep.BadShed++
				}
			case errors.As(err, &tmo),
				cfg.Timeout > 0 && errors.Is(err, context.DeadlineExceeded):
				// Over the wire the client's own deadline can fire before
				// the server's structured TimeoutError makes it back.
				rep.TimedOut++
			case a.class < 0:
				// Poison queries must die to the UDF panic (unless they
				// were shed or timed out first, handled above).
				if errors.As(err, &udf) {
					rep.Poisoned++
				} else {
					rep.Failed++
				}
			case err != nil:
				rep.Failed++
			default:
				rep.Completed++
				if multisetHash(rows) != base {
					rep.Mismatched++
				}
				if queueWait > rep.MaxQueueWait {
					rep.MaxQueueWait = queueWait
				}
			}
		}(a)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	rep.LeasePeak = db.SchedulerStats().LeasePeak
	rep.ShedRate = float64(rep.Shed) / float64(rep.Queries)

	// Graceful drain with a generous deadline, then probe that late
	// arrivals are refused for good. In net mode both go through the
	// daemon: Drain gates the HTTP front door before draining the
	// engine, and the probe must see the drain refusal over the wire.
	dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var lateErr error
	if srv != nil {
		rep.DrainErr = srv.Drain(dctx)
		_, lateErr = cli.Query(context.Background(), classes[0].sql)
	} else {
		rep.DrainErr = db.Drain(dctx)
		_, lateErr = db.Execute(classes[0].sql)
	}
	var adm *fudj.AdmissionError
	rep.LateShed = errors.As(lateErr, &adm) && adm.Reason == fudj.ReasonDraining

	if w != nil {
		printStress(w, cfg, rep)
	}
	return rep, nil
}

func printStress(w io.Writer, cfg StressConfig, rep *StressReport) {
	transport := "in-process"
	if cfg.Net {
		transport = "loopback TCP via fudjd"
	}
	fmt.Fprintf(w, "open-loop storm (%s): %d arrivals, %d slots, queue %d, pool %s, ask %s\n",
		transport, rep.Queries, cfg.MaxConcurrent, cfg.QueueDepth, fmtBytes(rep.Pool), fmtBytes(cfg.Budget))
	printTable(w, []string{"outcome", "count"}, [][]string{
		{"completed (multiset-verified)", fmt.Sprint(rep.Completed)},
		{"shed (retryable)", fmt.Sprint(rep.Shed)},
		{"poisoned (UDF panic)", fmt.Sprint(rep.Poisoned)},
		{"timed out", fmt.Sprint(rep.TimedOut)},
		{"failed (unexpected)", fmt.Sprint(rep.Failed)},
		{"multiset mismatches", fmt.Sprint(rep.Mismatched)},
	})
	overshoot := "no"
	if rep.LeasePeak > rep.Pool {
		overshoot = "YES (bug)"
	}
	fmt.Fprintf(w, "  lease peak %s / pool %s — overshoot: %s\n",
		fmtBytes(rep.LeasePeak), fmtBytes(rep.Pool), overshoot)
	fmt.Fprintf(w, "  shed rate %.0f%%, max queue wait %s, elapsed %s\n",
		100*rep.ShedRate, fmtDur(rep.MaxQueueWait), fmtDur(rep.Elapsed))
	if rep.DrainErr != nil {
		fmt.Fprintf(w, "  drain: FORCED (%v)\n", rep.DrainErr)
	} else {
		fmt.Fprintf(w, "  drain: clean; late arrival refused: %v\n", rep.LateShed)
	}
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMiB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKiB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func init() {
	register(Experiment{
		ID:    "stress",
		Title: "Extra: admission-controlled scheduler under open-loop overload",
		Paper: "not in the paper; robustness experiment — mixed joins offered faster than the cluster absorbs, against a shared memory pool",
		Run:   runStressExperiment,
	})
	register(Experiment{
		ID:    "stress-net",
		Title: "Extra: the same open-loop overload through fudjd over loopback TCP",
		Paper: "not in the paper; serving experiment — every arrival pays frame encode/decode, CRC, and an HTTP round trip, and drain is the daemon's",
		Run: func(cfg Config, w io.Writer) error {
			return runStress(cfg, w, true)
		},
	})
}

func runStressExperiment(cfg Config, w io.Writer) error {
	return runStress(cfg, w, false)
}

func runStress(cfg Config, w io.Writer, overNet bool) error {
	sc := DefaultStressConfig()
	sc.Queries = cfg.scaled(240)
	sc.Nodes, sc.Cores = cfg.Nodes, cfg.Cores
	sc.Seed = cfg.Seed
	sc.Scale = cfg.Scale * 0.5 // per-query work stays small; volume is the point
	sc.Net = overNet
	rep, err := RunStress(sc, w)
	if err != nil {
		return err
	}
	if rep.LeasePeak > rep.Pool || rep.Mismatched > 0 || rep.BadShed > 0 || rep.Failed > 0 {
		return fmt.Errorf("stress invariants violated: peak %d/pool %d, %d mismatched, %d bad sheds, %d failed",
			rep.LeasePeak, rep.Pool, rep.Mismatched, rep.BadShed, rep.Failed)
	}
	return nil
}
