// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§VII). Each experiment is a
// named runner that builds the synthetic workload, executes the query
// arms being compared (FUDJ / built-in / on-top), and prints the same
// rows or series the paper reports. cmd/benchrunner is the CLI front
// end; the root bench_test.go exposes each experiment as a testing.B
// benchmark.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"fudj"
)

// Config scales and shapes an experiment run. The defaults are sized
// for a laptop; the paper's cluster-scale parameters are recovered by
// raising Scale and the cluster shape.
type Config struct {
	Scale   float64       // record-count multiplier (1.0 = laptop defaults)
	Nodes   int           // simulated cluster nodes
	Cores   int           // cores (worker partitions) per node
	Seed    int64         // RNG seed for data generation
	Budget  time.Duration // per-run wall budget; slower arms are marked DNF
	Verbose bool
	JSONOut string // when set, experiments that produce artifacts write JSON here
}

// DefaultConfig returns the laptop-scale defaults.
func DefaultConfig() Config {
	return Config{Scale: 1, Nodes: 4, Cores: 2, Seed: 42, Budget: 20 * time.Second}
}

// scaled applies the scale factor to a base record count.
func (c Config) scaled(base int) int {
	n := int(float64(base) * c.Scale)
	if n < 8 {
		n = 8
	}
	return n
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	ID    string // e.g. "fig9"
	Title string
	Paper string // what the paper reports, for EXPERIMENTS.md context
	Run   func(cfg Config, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run executes one experiment by ID, or every experiment for "all".
func Run(id string, cfg Config, w io.Writer) error {
	if id == "all" {
		for _, e := range Experiments() {
			if err := Run(e.ID, cfg, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	for _, e := range registry {
		if e.ID == id {
			fmt.Fprintf(w, "=== %s: %s ===\n", e.ID, e.Title)
			if e.Paper != "" {
				fmt.Fprintf(w, "paper: %s\n", e.Paper)
			}
			return e.Run(cfg, w)
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return fmt.Errorf("bench: unknown experiment %q (have %s, all)", id, strings.Join(ids, ", "))
}

// env is a database preloaded with the standard datasets and joins.
type env struct {
	db *fudj.DB
}

// newEnv builds the standard experiment environment: the four
// datasets at the configured scale, all three libraries installed,
// joins created, and built-in operators registered. Extra options
// (admission limits, memory pools) are applied after the cluster shape.
func newEnv(cfg Config, parks, fires, rides, reviews int, opts ...fudj.Option) (*env, error) {
	db, err := fudj.Open(append([]fudj.Option{fudj.WithCluster(cfg.Nodes, cfg.Cores)}, opts...)...)
	if err != nil {
		return nil, err
	}
	load := func(name string, ds *fudj.GeneratedDataset) error {
		return fudj.LoadGenerated(db, name, ds)
	}
	if parks > 0 {
		if err := load("parks", fudj.GenParks(cfg.Seed, parks)); err != nil {
			return nil, err
		}
	}
	if fires > 0 {
		if err := load("wildfires", fudj.GenWildfires(cfg.Seed+1, fires)); err != nil {
			return nil, err
		}
	}
	if rides > 0 {
		if err := load("nyctaxi", fudj.GenNYCTaxi(cfg.Seed+2, rides)); err != nil {
			return nil, err
		}
	}
	if reviews > 0 {
		if err := load("amazonreview", fudj.GenAmazonReview(cfg.Seed+3, reviews)); err != nil {
			return nil, err
		}
	}
	for _, lib := range []*fudj.Library{fudj.SpatialLibrary(), fudj.TextSimilarityLibrary(), fudj.IntervalLibrary()} {
		if err := db.InstallLibrary(lib); err != nil {
			return nil, err
		}
	}
	ddl := []string{
		`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`,
		`CREATE JOIN spatial_join_rp(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinReferencePoint" AT spatialjoins`,
		`CREATE JOIN spatial_join_elim(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinElimination" AT spatialjoins`,
		`CREATE JOIN spatial_join_theta(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinTheta" AT spatialjoins`,
		`CREATE JOIN spatial_join_sweep(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinPlaneSweep" AT spatialjoins`,
		`CREATE JOIN text_similarity_join(a: string, b: string, t: double) RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins`,
		`CREATE JOIN text_similarity_elim(a: string, b: string, t: double) RETURNS boolean AS "setsimilarity.SetSimilarityJoinElimination" AT flexiblejoins`,
		`CREATE JOIN overlapping_interval(a: interval, b: interval, n: int) RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`,
		`CREATE JOIN spatial_join_auto(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoinAuto" AT spatialjoins`,
		`CREATE JOIN overlapping_interval_auto(a: interval, b: interval, n: int) RETURNS boolean AS "oip.IntervalJoinAuto" AT intervaljoins`,
	}
	for _, stmt := range ddl {
		if _, err := db.Execute(stmt); err != nil {
			return nil, fmt.Errorf("%s: %w", stmt, err)
		}
	}
	db.RegisterBuiltinJoin("spatial_join", fudj.BuiltinSpatialPBSM)
	db.RegisterBuiltinJoin("text_similarity_join", fudj.BuiltinTextSimilarity)
	db.RegisterBuiltinJoin("overlapping_interval", fudj.BuiltinIntervalOIP)
	return &env{db: db}, nil
}

// runResult is one measured arm.
type runResult struct {
	elapsed  time.Duration
	maxBusy  time.Duration
	rows     int64
	shuffled int64 // records moved across node boundaries
	bytes    int64 // bytes moved across node boundaries
	dnf      bool
	err      error
}

func (r runResult) String() string {
	if r.err != nil {
		return "ERR"
	}
	if r.dnf {
		return "DNF"
	}
	return fmtDur(r.elapsed)
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// timedQuery runs a query and measures it; when budget > 0 and the
// result exceeds it, later callers can consult runResult.elapsed to
// decide to mark larger runs DNF.
func timedQuery(db *fudj.DB, sql string) runResult {
	res, err := db.Execute(sql)
	if err != nil {
		return runResult{err: err}
	}
	var count int64
	if len(res.Rows) == 1 && len(res.Rows[0]) == 1 && res.Rows[0][0].Kind() == fudj.KindInt64 {
		count = res.Rows[0][0].Int64()
	} else {
		count = int64(len(res.Rows))
	}
	return runResult{
		elapsed: res.Elapsed, maxBusy: res.Cluster.MaxBusy, rows: count,
		shuffled: res.Cluster.RecordsShuffled, bytes: res.Cluster.BytesShuffled,
	}
}

// modeledTime combines the compute makespan with a modeled network
// transfer time at the given bandwidth — how the run would behave on a
// real cluster where shuffles cost wall time instead of memcpy.
func modeledTime(r runResult, bytesPerSec float64) time.Duration {
	return r.maxBusy + time.Duration(float64(r.bytes)/bytesPerSec*float64(time.Second))
}

// printTable renders a fixed-width table.
func printTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
