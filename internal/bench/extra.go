package bench

import (
	"fmt"
	"io"

	"fudj"
)

// Experiments beyond the paper's figures, covering the two extra join
// libraries this repository ships.

func init() {
	register(Experiment{
		ID:    "extra_traj",
		Title: "Extra: trajectory closeness join, FUDJ vs on-top",
		Paper: "not in the paper; demonstrates the model on the trajectory join class its related work surveys",
		Run:   runExtraTraj,
	})
	register(Experiment{
		ID:    "extra_inlj",
		Title: "Extra: the introduction's four approaches on the spatial join (FUDJ / built-in / INLJ / on-top)",
		Paper: "§I: INLJ beats on-top but \"works well only when the non-indexed set is relatively small\"",
		Run:   runExtraINLJ,
	})
	register(Experiment{
		ID:    "extra_phases",
		Title: "Extra: FUDJ phase breakdown (SUMMARIZE / PARTITION / COMBINE)",
		Paper: "the phase decomposition of §IV, measured per join type",
		Run:   runExtraPhases,
	})
	register(Experiment{
		ID:    "extra_distance",
		Title: "Extra: point distance join (kNN-style), FUDJ vs on-top",
		Paper: "not in the paper; demonstrates the model on the distance join class (refs [40][41])",
		Run:   runExtraDistance,
	})
}

func trajEnv(cfg Config, n int) (*fudj.DB, error) {
	db, err := fudj.Open(fudj.WithCluster(cfg.Nodes, cfg.Cores))
	if err != nil {
		return nil, err
	}
	if err := fudj.LoadGenerated(db, "trips", fudj.GenTrajectories(cfg.Seed+9, n)); err != nil {
		return nil, err
	}
	if err := db.InstallLibrary(fudj.TrajectoryLibrary()); err != nil {
		return nil, err
	}
	if _, err := db.Execute(`CREATE JOIN traj_close(a: linestring, b: linestring, n: int, d: double)
		RETURNS boolean AS "traj.ClosenessJoin" AT trajjoins`); err != nil {
		return nil, err
	}
	return db, nil
}

func runExtraTraj(cfg Config, w io.Writer) error {
	sizes := []int{cfg.scaled(500), cfg.scaled(1000), cfg.scaled(2000)}
	dead := false
	var rows [][]string
	for _, n := range sizes {
		db, err := trajEnv(cfg, n)
		if err != nil {
			return err
		}
		f := timedQuery(db, `SELECT COUNT(*) FROM trips a, trips b
			WHERE a.class = 1 AND b.class = 2 AND traj_close(a.route, b.route, 24, 2.0)`)
		if f.err != nil {
			return f.err
		}
		onTop := runResult{dnf: true}
		if !dead {
			onTop = timedQuery(db, `SELECT COUNT(*) FROM trips a, trips b
				WHERE a.class = 1 AND b.class = 2 AND st_distance(a.route, b.route) <= 2.0`)
			if onTop.err != nil {
				return onTop.err
			}
			if !onTop.dnf && onTop.rows != f.rows {
				return fmt.Errorf("extra_traj n=%d: FUDJ %d rows, on-top %d rows", n, f.rows, onTop.rows)
			}
			if cfg.Budget > 0 && onTop.elapsed > cfg.Budget {
				dead = true
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", n), f.String(), onTop.String(), fmt.Sprintf("%d", f.rows)})
	}
	printTable(w, []string{"trajectories", "FUDJ", "On-top", "results"}, rows)
	return nil
}

// runExtraINLJ compares all four implementation approaches from the
// paper's introduction on the spatial workload. The INLJ arm rides the
// built-in dispatch: the spatial_join predicate routed to the R-tree
// indexed nested-loop operator.
func runExtraINLJ(cfg Config, w io.Writer) error {
	sizes := []int{cfg.scaled(500), cfg.scaled(1000), cfg.scaled(2000), cfg.scaled(4000)}
	deadOnTop := false
	var rows [][]string
	for _, n := range sizes {
		e, err := newEnv(cfg, n, 2*n, 0, 0)
		if err != nil {
			return err
		}
		q := `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 32)`
		f := timedQuery(e.db, q)
		e.db.SetJoinMode(fudj.ModeBuiltin)
		bi := timedQuery(e.db, q)
		e.db.RegisterBuiltinJoin("spatial_join", fudj.BuiltinSpatialINLJ)
		inlj := timedQuery(e.db, q)
		e.db.SetJoinMode(fudj.ModeFUDJ)
		onTop := runResult{dnf: true}
		if !deadOnTop {
			onTop = timedQuery(e.db, `SELECT COUNT(*) FROM parks p, wildfires w
				WHERE st_intersects(p.boundary, w.location)`)
			if onTop.err == nil && cfg.Budget > 0 && onTop.elapsed > cfg.Budget {
				deadOnTop = true
			}
		}
		for _, r := range []runResult{f, bi, inlj} {
			if r.err != nil {
				return r.err
			}
		}
		if f.rows != bi.rows || f.rows != inlj.rows || (!onTop.dnf && onTop.err == nil && f.rows != onTop.rows) {
			return fmt.Errorf("extra_inlj n=%d: arms disagree (%d/%d/%d/%d)", n, f.rows, bi.rows, inlj.rows, onTop.rows)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), f.String(), bi.String(), inlj.String(), onTop.String(),
			fmt.Sprintf("%d", f.rows),
		})
	}
	printTable(w, []string{"parks", "FUDJ", "Built-in", "INLJ (R-tree)", "On-top", "results"}, rows)
	fmt.Fprintln(w, "  (INLJ is competitive at laptop scale, but it broadcasts and re-indexes")
	fmt.Fprintln(w, "   the entire indexed side on every partition — per-partition work grows")
	fmt.Fprintln(w, "   with |indexed side| rather than |indexed side|/P, which is the §I")
	fmt.Fprintln(w, "   scalability caveat the partition-based joins avoid)")
	return nil
}

func runExtraPhases(cfg Config, w io.Writer) error {
	e, err := newEnv(cfg, cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(4000), cfg.scaled(4000))
	if err != nil {
		return err
	}
	queries := map[string]string{
		"spatial (grid 32)": `SELECT COUNT(*) FROM parks p, wildfires w
			WHERE spatial_join(p.boundary, w.location, 32)`,
		"interval (1000 granules)": `SELECT COUNT(*) FROM nyctaxi a, nyctaxi b
			WHERE a.vendor = 1 AND b.vendor = 2
			AND overlapping_interval(a.ride_interval, b.ride_interval, 1000)`,
		"text-similarity (t=0.9)": `SELECT COUNT(*) FROM amazonreview a, amazonreview b
			WHERE a.overall = 5 AND b.overall = 4
			AND text_similarity_join(a.review, b.review, 0.9)`,
	}
	var rows [][]string
	for _, name := range []string{"spatial (grid 32)", "interval (1000 granules)", "text-similarity (t=0.9)"} {
		res, err := e.db.Execute(queries[name], fudj.Trace())
		if err != nil {
			return err
		}
		total := res.Join.SummarizeTime + res.Join.PartitionTime + res.Join.CombineTime
		pct := func(d float64) string { return fmt.Sprintf("%.0f%%", 100*d/total.Seconds()) }
		phases := phaseSpans(res.Trace)
		cnt := func(phase, counter string) string {
			if sp := phases[phase]; sp != nil {
				return fmt.Sprintf("%d", sp.Counter(counter))
			}
			return "-"
		}
		rows = append(rows, []string{
			name,
			fmtDur(res.Join.SummarizeTime), pct(res.Join.SummarizeTime.Seconds()), cnt("SUMMARIZE", "state.bytes"),
			fmtDur(res.Join.PartitionTime), pct(res.Join.PartitionTime.Seconds()), cnt("PARTITION", "rows.out"),
			fmtDur(res.Join.CombineTime), pct(res.Join.CombineTime.Seconds()), cnt("COMBINE", "rows.out"),
		})
	}
	printTable(w, []string{
		"join",
		"SUMMARIZE", "", "stateB",
		"PARTITION", "", "rows",
		"COMBINE", "", "rows",
	}, rows)
	fmt.Fprintln(w, "  (COMBINE dominates for the theta interval join — the §VII-C bottleneck;")
	fmt.Fprintln(w, "   SUMMARIZE is heaviest for text-similarity, whose summary is a token map)")
	return nil
}

// phaseSpans walks a query trace and indexes the first join step's
// phase spans by name.
func phaseSpans(root *fudj.Span) map[string]*fudj.Span {
	out := make(map[string]*fudj.Span)
	root.Walk(func(depth int, sp *fudj.Span) {
		switch sp.Name() {
		case "SUMMARIZE", "PARTITION", "COMBINE":
			if _, ok := out[sp.Name()]; !ok {
				out[sp.Name()] = sp
			}
		}
	})
	return out
}

func runExtraDistance(cfg Config, w io.Writer) error {
	sizes := []int{cfg.scaled(2000), cfg.scaled(4000), cfg.scaled(8000)}
	dead := false
	var rows [][]string
	for _, n := range sizes {
		db, err := fudj.Open(fudj.WithCluster(cfg.Nodes, cfg.Cores))
		if err != nil {
			return err
		}
		if err := fudj.LoadGenerated(db, "wildfires", fudj.GenWildfires(cfg.Seed+10, n)); err != nil {
			return err
		}
		if err := db.InstallLibrary(fudj.DistanceLibrary()); err != nil {
			return err
		}
		if _, err := db.Execute(`CREATE JOIN points_within(a: point, b: point, d: double)
			RETURNS boolean AS "knn.PointsWithin" AT distancejoins`); err != nil {
			return err
		}
		f := timedQuery(db, `SELECT COUNT(*) FROM wildfires a, wildfires b
			WHERE a.year = 2020 AND b.year = 2023 AND points_within(a.location, b.location, 5.0)`)
		if f.err != nil {
			return f.err
		}
		onTop := runResult{dnf: true}
		if !dead {
			onTop = timedQuery(db, `SELECT COUNT(*) FROM wildfires a, wildfires b
				WHERE a.year = 2020 AND b.year = 2023 AND st_distance(a.location, b.location) <= 5.0`)
			if onTop.err != nil {
				return onTop.err
			}
			if !onTop.dnf && onTop.rows != f.rows {
				return fmt.Errorf("extra_distance n=%d: FUDJ %d rows, on-top %d rows", n, f.rows, onTop.rows)
			}
			if cfg.Budget > 0 && onTop.elapsed > cfg.Budget {
				dead = true
			}
		}
		rows = append(rows, []string{fmt.Sprintf("%d", n), f.String(), onTop.String(), fmt.Sprintf("%d", f.rows)})
	}
	printTable(w, []string{"points", "FUDJ", "On-top", "results"}, rows)
	return nil
}
