package bench

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// TestStressSchedulerInvariants is the acceptance gate for the
// admission controller: an open-loop storm of 240 mixed joins (spatial
// / interval / text-similarity, every 11th poisoned with a panicking
// UDF) against 8 slots and a 16 MiB pool. It asserts the scheduler's
// contracts exactly: zero budget overshoot, zero cross-query
// interference, every shed retryable, and a clean drain that leaves no
// temp-file residue and refuses late arrivals.
func TestStressSchedulerInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	cfg := DefaultStressConfig()
	var buf bytes.Buffer
	rep, err := RunStress(cfg, &buf)
	if err != nil {
		t.Fatalf("RunStress: %v\n%s", err, buf.String())
	}
	t.Logf("\n%s", buf.String())

	if got := rep.Completed + rep.Shed + rep.Poisoned + rep.TimedOut + rep.Failed; got != rep.Queries {
		t.Errorf("outcomes sum to %d, want %d arrivals", got, rep.Queries)
	}
	if rep.Failed != 0 {
		t.Errorf("%d queries failed with unexpected errors", rep.Failed)
	}
	if rep.Mismatched != 0 {
		t.Errorf("%d completed queries returned a different multiset than their serial baseline", rep.Mismatched)
	}
	if rep.BadShed != 0 {
		t.Errorf("%d sheds were not retryable", rep.BadShed)
	}
	if rep.Poisoned == 0 {
		t.Error("no poison query reached its UDF panic — the interference arm never ran")
	}
	if rep.LeasePeak <= 0 || rep.LeasePeak > rep.Pool {
		t.Errorf("lease peak %d outside (0, pool %d]: budget overshoot or no accounting", rep.LeasePeak, rep.Pool)
	}
	// Bounded shedding, not collapse: under 2× overload a healthy
	// scheduler still completes a solid fraction of offered load.
	if rep.Completed < rep.Queries/4 {
		t.Errorf("only %d/%d completed — shed storm ate the service", rep.Completed, rep.Queries)
	}
	if rep.DrainErr != nil {
		t.Errorf("drain was forced: %v", rep.DrainErr)
	}
	if !rep.LateShed {
		t.Error("post-drain arrival was not refused with ReasonDraining")
	}
	entries, err := os.ReadDir(tmp)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("orphaned temp entry after drain: %s", e.Name())
	}
}

// TestStressWithFaultInjection re-runs a smaller storm with
// probabilistic task crashes armed: retries happen mid-contention and
// every completed query must still match its serial baseline.
func TestStressWithFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	cfg := DefaultStressConfig()
	cfg.Queries = 80
	cfg.Faults = true
	cfg.Seed = 23
	rep, err := RunStress(cfg, nil)
	if err != nil {
		t.Fatalf("RunStress: %v", err)
	}
	if rep.Failed != 0 {
		t.Errorf("%d queries failed despite retryable fault injection", rep.Failed)
	}
	if rep.Mismatched != 0 {
		t.Errorf("%d queries corrupted by injected faults", rep.Mismatched)
	}
	if rep.LeasePeak > rep.Pool {
		t.Errorf("lease peak %d overshot pool %d under fault injection", rep.LeasePeak, rep.Pool)
	}
	if entries, err := os.ReadDir(tmp); err == nil {
		for _, e := range entries {
			t.Errorf("orphaned temp entry: %s", e.Name())
		}
	}
}

// TestStressTimeoutsClassify runs a storm with a deadline tight enough
// that some queries time out; timeouts must land in TimedOut (a
// structured, non-retryable classification), never in Failed.
func TestStressTimeoutsClassify(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := DefaultStressConfig()
	cfg.Queries = 60
	cfg.Timeout = 3 * time.Millisecond
	cfg.PoisonEvery = 0
	rep, err := RunStress(cfg, nil)
	if err != nil {
		t.Fatalf("RunStress: %v", err)
	}
	if rep.Failed != 0 {
		t.Errorf("%d queries failed with unstructured errors under deadline pressure", rep.Failed)
	}
	if rep.Mismatched != 0 {
		t.Errorf("%d surviving queries mismatched", rep.Mismatched)
	}
}

// TestStressOverNetwork drives the same storm through a real fudjd
// over loopback TCP (MaxAttempts=1 preserves the open loop): every
// invariant the in-process storm guarantees must survive the network
// boundary — structured classification of every wire error, multiset
// fidelity through frame encode/decode, and a daemon-side drain that
// refuses late arrivals over HTTP.
func TestStressOverNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)

	cfg := DefaultStressConfig()
	cfg.Queries = 120
	cfg.Net = true
	rep, err := RunStress(cfg, nil)
	if err != nil {
		t.Fatalf("RunStress: %v", err)
	}
	if got := rep.Completed + rep.Shed + rep.Poisoned + rep.TimedOut + rep.Failed; got != rep.Queries {
		t.Errorf("outcomes sum to %d, want %d arrivals", got, rep.Queries)
	}
	if rep.Failed != 0 {
		t.Errorf("%d queries failed with unexpected errors over the wire", rep.Failed)
	}
	if rep.Mismatched != 0 {
		t.Errorf("%d completed queries mismatched after frame decode", rep.Mismatched)
	}
	if rep.BadShed != 0 {
		t.Errorf("%d wire sheds were not retryable", rep.BadShed)
	}
	if rep.Completed == 0 {
		t.Error("nothing completed through the daemon")
	}
	if rep.LeasePeak > rep.Pool {
		t.Errorf("lease peak %d overshot pool %d behind the daemon", rep.LeasePeak, rep.Pool)
	}
	if rep.DrainErr != nil {
		t.Errorf("daemon drain was forced: %v", rep.DrainErr)
	}
	if !rep.LateShed {
		t.Error("post-drain wire arrival was not refused with ReasonDraining")
	}
	if entries, err := os.ReadDir(tmp); err == nil {
		for _, e := range entries {
			t.Errorf("orphaned temp entry after network storm: %s", e.Name())
		}
	}
}
