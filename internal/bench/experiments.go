package bench

import (
	"fmt"
	"io"

	"fudj"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Datasets (Table I)",
		Paper: "Wildfires 18M points / Parks 10M polygons / NYCTaxi 173M intervals / AmazonReview 83M texts",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Lines of code, FUDJ vs built-in (Table II)",
		Paper: "Spatial 141 vs 1936, Interval 95 vs 1641, Text-similarity 231 vs 1823",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig1",
		Title: "Productivity/performance quadrant (Fig. 1, derived)",
		Paper: "FUDJ: high productivity, near built-in performance; on-top: high productivity, low performance",
		Run:   runFig1,
	})
}

func runTable1(cfg Config, w io.Writer) error {
	sets := []*fudj.GeneratedDataset{
		fudj.GenWildfires(cfg.Seed, cfg.scaled(20000)),
		fudj.GenParks(cfg.Seed+1, cfg.scaled(10000)),
		fudj.GenNYCTaxi(cfg.Seed+2, cfg.scaled(40000)),
		fudj.GenAmazonReview(cfg.Seed+3, cfg.scaled(20000)),
	}
	rows := make([][]string, len(sets))
	for i, ds := range sets {
		rows[i] = []string{
			ds.Name,
			fmt.Sprintf("%.1f MB", float64(ds.SizeBytes())/1e6),
			fmt.Sprintf("%d", len(ds.Records)),
			ds.KeyType,
		}
	}
	printTable(w, []string{"Name", "Size", "#Records", "Key Type"}, rows)
	fmt.Fprintln(w, "  (synthetic stand-ins; scale with -scale to approach paper sizes)")
	return nil
}

func runTable2(cfg Config, w io.Writer) error {
	locs, err := TableIILOC()
	if err != nil {
		return err
	}
	rows := make([][]string, len(locs))
	for i, r := range locs {
		rows[i] = []string{
			r.Join,
			fmt.Sprintf("%d loc", r.FUDJ),
			fmt.Sprintf("%d loc", r.Builtin),
			fmt.Sprintf("%.2fx", float64(r.Builtin)/float64(r.FUDJ)),
		}
	}
	printTable(w, []string{"Join Type", "FUDJ", "Built-in", "Built-in/FUDJ"}, rows)
	fmt.Fprintln(w, "  (built-in here reuses the shared substrate packages, so its absolute")
	fmt.Fprintln(w, "   LOC is far below the paper's from-scratch 1600-1900; the ordering and")
	fmt.Fprintln(w, "   the per-join developer burden comparison are what carry over)")
	return nil
}

// runFig1 derives the qualitative quadrant of Fig. 1 from measured
// LOC (productivity) and a small fig9-style timing sample (performance).
func runFig1(cfg Config, w io.Writer) error {
	locs, err := TableIILOC()
	if err != nil {
		return err
	}
	var fudjLOC, builtinLOC int
	for _, r := range locs {
		fudjLOC += r.FUDJ
		builtinLOC += r.Builtin
	}

	e, err := newEnv(cfg, cfg.scaled(1500), cfg.scaled(3000), 0, 0)
	if err != nil {
		return err
	}
	q := `SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 32)`
	onTopQ := `SELECT COUNT(*) FROM parks p, wildfires w WHERE st_intersects(p.boundary, w.location)`

	fudjRun := timedQuery(e.db, q)
	e.db.SetJoinMode(fudj.ModeBuiltin)
	builtinRun := timedQuery(e.db, q)
	e.db.SetJoinMode(fudj.ModeFUDJ)
	ontopRun := timedQuery(e.db, onTopQ)
	for _, r := range []runResult{fudjRun, builtinRun, ontopRun} {
		if r.err != nil {
			return r.err
		}
	}

	perf := func(d runResult) string {
		return fmt.Sprintf("%.1fx vs on-top", ontopRun.elapsed.Seconds()/d.elapsed.Seconds())
	}
	rows := [][]string{
		{"On-top (NLJ + UDF)", "n/a (predicate only)", "1.0x vs on-top", "high productivity, low performance"},
		{"FUDJ", fmt.Sprintf("%d loc / 3 joins", fudjLOC), perf(fudjRun), "high productivity, high performance"},
		{"Built-in operator", fmt.Sprintf("%d loc / 3 joins", builtinLOC), perf(builtinRun), "low productivity, high performance"},
	}
	printTable(w, []string{"Approach", "Developer code", "Spatial-join speed", "Quadrant"}, rows)
	return nil
}
