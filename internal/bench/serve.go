package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"fudj/internal/serve"
	"fudj/internal/serve/client"
)

// The serve experiment prices the network boundary: the same three
// example joins, run in-process and then through a real fudjd over
// loopback TCP, closed-loop so the measured gap is pure serving cost —
// HTTP round trip, frame encode/decode, CRC, and result re-batching —
// not queueing.

// serveQueries are the three demo joins at experiment scale.
var serveQueries = []struct{ name, sql string }{
	{"spatial", `SELECT COUNT(*) FROM parks p, wildfires w
		WHERE spatial_join(p.boundary, w.location, 16)`},
	{"interval", `SELECT n1.id, n2.id FROM nyctaxi n1, nyctaxi n2
		WHERE n1.vendor = 1 AND n2.vendor = 2
		AND overlapping_interval(n1.ride_interval, n2.ride_interval, 100)`},
	{"textsim", `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
		WHERE r1.overall = 5 AND r2.overall = 4
		AND text_similarity_join(r1.review, r2.review, 0.8)`},
}

// quantile returns the q-quantile of sorted durations.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// measure runs f n times and returns sorted per-call latencies.
func measure(n int, f func() error) ([]time.Duration, error) {
	lats := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := f(); err != nil {
			return nil, err
		}
		lats = append(lats, time.Since(t0))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats, nil
}

func runServeExperiment(cfg Config, w io.Writer) error {
	e, err := newEnv(cfg, cfg.scaled(60), cfg.scaled(150), cfg.scaled(150), cfg.scaled(100))
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{DB: e.db})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(lis)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()
	cli, err := client.New(client.Config{
		BaseURL:     "http://" + lis.Addr().String(),
		Session:     "bench",
		QueryPrefix: "sv",
		MaxAttempts: 1,
		Seed:        cfg.Seed,
	})
	if err != nil {
		return err
	}
	defer cli.Close()

	const warmups, iters = 3, 20
	rows := make([][]string, 0, len(serveQueries))
	for _, q := range serveQueries {
		local := func() error { _, err := e.db.Execute(q.sql); return err }
		remote := func() error { _, err := cli.Query(context.Background(), q.sql); return err }
		for i := 0; i < warmups; i++ {
			if err := local(); err != nil {
				return fmt.Errorf("%s warmup: %w", q.name, err)
			}
			if err := remote(); err != nil {
				return fmt.Errorf("%s remote warmup: %w", q.name, err)
			}
		}
		lloc, err := measure(iters, local)
		if err != nil {
			return fmt.Errorf("%s local: %w", q.name, err)
		}
		lrem, err := measure(iters, remote)
		if err != nil {
			return fmt.Errorf("%s remote: %w", q.name, err)
		}
		p50l, p50r := quantile(lloc, 0.5), quantile(lrem, 0.5)
		overhead := p50r - p50l
		rows = append(rows, []string{
			q.name,
			fmtDur(p50l), fmtDur(quantile(lloc, 0.95)),
			fmtDur(p50r), fmtDur(quantile(lrem, 0.95)),
			fmtDur(overhead),
		})
	}
	fmt.Fprintf(w, "serving overhead, closed loop, %d iters after %d warmups, loopback TCP:\n", iters, warmups)
	printTable(w, []string{"join", "local p50", "local p95", "wire p50", "wire p95", "p50 overhead"}, rows)
	fmt.Fprintf(w, "  bytes out %d over %d queries\n",
		srv.Counters().BytesOut, srv.Counters().Queries)
	return nil
}

func init() {
	register(Experiment{
		ID:    "serve",
		Title: "Extra: per-query serving overhead of fudjd vs in-process execution",
		Paper: "not in the paper; serving experiment — closed-loop latency of the three example joins through the wire protocol vs direct engine calls",
		Run:   runServeExperiment,
	})
}
