package bench

import (
	"fmt"
	"io"

	"fudj"
)

// Fig. 12: duplicate-handling strategies and the effect of local join
// optimization.
//
//	(a) text-similarity: duplicate avoidance vs elimination across sizes
//	(b) spatial: framework avoidance vs PBSM Reference Point across buckets
//	(c) spatial: FUDJ vs the advanced plane-sweep operator across buckets

func init() {
	register(Experiment{
		ID:    "fig12a",
		Title: "Duplicate handling on text-similarity: avoidance vs elimination (Fig. 12a)",
		Paper: "avoidance wins at every size, ~1.15x on average",
		Run:   runFig12a,
	})
	register(Experiment{
		ID:    "fig12b",
		Title: "Duplicate handling on spatial: default avoidance vs Reference Point (Fig. 12b)",
		Paper: "no notable difference between the two methods",
		Run:   runFig12b,
	})
	register(Experiment{
		ID:    "fig12c",
		Title: "Local join optimization: Spatial FUDJ vs advanced plane-sweep operator (Fig. 12c)",
		Paper: "plane-sweep local join yields ~1.38x on average",
		Run:   runFig12c,
	})
}

func runFig12a(cfg Config, w io.Writer) error {
	// Threshold 0.8 keeps the joined output large enough that the
	// elimination variant's extra distinct shuffle is visible.
	sizes := []int{cfg.scaled(1000), cfg.scaled(2000), cfg.scaled(4000)}
	var rows [][]string
	for _, size := range sizes {
		e, err := newEnv(cfg, 0, 0, 0, size)
		if err != nil {
			return err
		}
		avoid := timedQuery(e.db, `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
			WHERE r1.overall = 5 AND r2.overall = 4
			AND text_similarity_join(r1.review, r2.review, 0.8)`)
		elim := timedQuery(e.db, `SELECT COUNT(*) FROM amazonreview r1, amazonreview r2
			WHERE r1.overall = 5 AND r2.overall = 4
			AND text_similarity_elim(r1.review, r2.review, 0.8)`)
		if avoid.err != nil {
			return avoid.err
		}
		if elim.err != nil {
			return elim.err
		}
		if avoid.rows != elim.rows {
			return fmt.Errorf("fig12a size %d: avoidance %d rows, elimination %d rows", size, avoid.rows, elim.rows)
		}
		const net = 100e6 // modeled 100 MB/s cluster interconnect
		avoidNet := modeledTime(avoid, net)
		elimNet := modeledTime(elim, net)
		rows = append(rows, []string{
			fmt.Sprintf("%d", size), avoid.String(), elim.String(),
			fmt.Sprintf("%d", avoid.shuffled), fmt.Sprintf("%d", elim.shuffled),
			fmtDur(avoidNet), fmtDur(elimNet),
			fmt.Sprintf("%.2fx", elimNet.Seconds()/avoidNet.Seconds()),
		})
	}
	printTable(w, []string{"reviews", "Avoid wall", "Elim wall", "avoid shuffled", "elim shuffled",
		"avoid @100MB/s", "elim @100MB/s", "modeled Elim/Avoid"}, rows)
	fmt.Fprintln(w, "  (elimination's extra distinct stage always moves more records — the")
	fmt.Fprintln(w, "   shuffled columns show it — but at this scale the join output is small")
	fmt.Fprintln(w, "   relative to the inputs, so the two strategies are near parity even")
	fmt.Fprintln(w, "   with modeled 100 MB/s network time; the paper's ~1.15x avoidance win")
	fmt.Fprintln(w, "   emerges when join output dominates, as on its 83M-review corpus)")
	return nil
}

func runFig12b(cfg Config, w io.Writer) error {
	// A polygon-polygon self-join: polygons overlap several tiles, so
	// duplicate handling has real work to do (a polygon-point join has
	// single-tile points and thus no duplicate pairs).
	grids := []int{4, 8, 16, 32, 64}
	e, err := newEnv(cfg, cfg.scaled(2500), 0, 0, 0)
	if err != nil {
		return err
	}
	var rows [][]string
	for _, n := range grids {
		avoid := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks a, parks b WHERE spatial_join(a.boundary, b.boundary, %d)`, n))
		rp := timedQuery(e.db, fmt.Sprintf(
			`SELECT COUNT(*) FROM parks a, parks b WHERE spatial_join_rp(a.boundary, b.boundary, %d)`, n))
		if avoid.err != nil {
			return avoid.err
		}
		if rp.err != nil {
			return rp.err
		}
		if avoid.rows != rp.rows {
			return fmt.Errorf("fig12b grid %d: avoidance %d rows, refpoint %d rows", n, avoid.rows, rp.rows)
		}
		rows = append(rows, []string{fmt.Sprintf("%d", n), avoid.String(), rp.String()})
	}
	printTable(w, []string{"grid n", "FUDJ avoidance", "Reference Point"}, rows)
	return nil
}

func runFig12c(cfg Config, w io.Writer) error {
	grids := []int{4, 8, 16, 32, 64}
	e, err := newEnv(cfg, cfg.scaled(2000), cfg.scaled(4000), 0, 0)
	if err != nil {
		return err
	}
	// Three arms: plain FUDJ (nested verify inside each tile), FUDJ with
	// the LocalJoin plane-sweep hook (the framework-level realization of
	// the paper's future-work proposal), and the hand-built advanced
	// plane-sweep operator.
	e.db.RegisterBuiltinJoin("spatial_join", fudj.BuiltinSpatialPlaneSweep)
	var rows [][]string
	for _, n := range grids {
		q := fmt.Sprintf(
			`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, %d)`, n)
		hookQ := fmt.Sprintf(
			`SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join_sweep(p.boundary, w.location, %d)`, n)
		e.db.SetJoinMode(fudj.ModeFUDJ)
		plain := timedQuery(e.db, q)
		hooked := timedQuery(e.db, hookQ)
		e.db.SetJoinMode(fudj.ModeBuiltin)
		sweep := timedQuery(e.db, q)
		e.db.SetJoinMode(fudj.ModeFUDJ)
		for _, r := range []runResult{plain, hooked, sweep} {
			if r.err != nil {
				return r.err
			}
		}
		if plain.rows != sweep.rows || plain.rows != hooked.rows {
			return fmt.Errorf("fig12c grid %d: rows disagree %d/%d/%d", n, plain.rows, hooked.rows, sweep.rows)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n), plain.String(), hooked.String(), sweep.String(),
			fmt.Sprintf("%.2fx", plain.elapsed.Seconds()/sweep.elapsed.Seconds()),
		})
	}
	printTable(w, []string{"grid n", "Spatial FUDJ", "FUDJ + LocalJoin sweep", "Adv. built-in sweep", "builtin speedup"}, rows)
	return nil
}
