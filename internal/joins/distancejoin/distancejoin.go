// Package distancejoin implements a point distance join as a FUDJ
// library: report every pair of points within distance d — the
// building block of the kNN-style joins the paper cites as targets for
// the framework ([40], [41] in its bibliography).
//
// The algorithm is single-assign with a custom theta MATCH: DIVIDE
// lays a square grid whose cell side equals d, ASSIGN puts each point
// in its single cell, MATCH accepts neighboring (Chebyshev-adjacent)
// cells — any pair within d must live in adjacent cells — and VERIFY
// computes the exact Euclidean distance. Because each point lives in
// exactly one cell, no duplicate handling is needed.
package distancejoin

import (
	"fmt"
	"math"

	"fudj/internal/core"
	"fudj/internal/geo"
	"fudj/internal/wire"
)

// Summary is the running MBR of one side's points.
type Summary struct {
	MBR geo.Rect
}

// NewSummary returns the identity summary.
func NewSummary() Summary { return Summary{MBR: geo.EmptyRect()} }

// MarshalWire implements wire.Marshaler.
func (s Summary) MarshalWire(e *wire.Encoder) { s.MBR.MarshalWire(e) }

// UnmarshalWire implements wire.Unmarshaler.
func (s *Summary) UnmarshalWire(d *wire.Decoder) error { return s.MBR.UnmarshalWire(d) }

// cellBits is the bit budget for each cell coordinate inside a packed
// bucket id (~33M cells per axis on 64-bit ints).
const cellBits = 25

// maxCells caps the grid so packed ids stay within the bit budget.
const maxCells = 1 << cellBits

// Plan is the distance-join PPlan: grid origin, cell side (= d), and
// the distance threshold itself.
type Plan struct {
	MinX, MinY float64
	Cell       float64
	D          float64
}

// MarshalWire implements wire.Marshaler.
func (p Plan) MarshalWire(e *wire.Encoder) {
	e.Float64(p.MinX)
	e.Float64(p.MinY)
	e.Float64(p.Cell)
	e.Float64(p.D)
}

// UnmarshalWire implements wire.Unmarshaler.
func (p *Plan) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if p.MinX, err = d.Float64(); err != nil {
		return err
	}
	if p.MinY, err = d.Float64(); err != nil {
		return err
	}
	if p.Cell, err = d.Float64(); err != nil {
		return err
	}
	p.D, err = d.Float64()
	return err
}

// CellOf returns the clamped grid cell of a point.
func (p Plan) CellOf(pt geo.Point) (cx, cy int) {
	cx = int(math.Floor((pt.X - p.MinX) / p.Cell))
	cy = int(math.Floor((pt.Y - p.MinY) / p.Cell))
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= maxCells {
		cx = maxCells - 1
	}
	if cy >= maxCells {
		cy = maxCells - 1
	}
	return cx, cy
}

// PackCell packs a cell coordinate pair into one bucket id.
func PackCell(cx, cy int) core.BucketID { return cx<<cellBits | cy }

// UnpackCell splits a packed bucket id back into cell coordinates.
func UnpackCell(id core.BucketID) (cx, cy int) {
	return id >> cellBits, id & (maxCells - 1)
}

// CellsAdjacent reports whether two packed cells are identical or
// Chebyshev-adjacent — the theta MATCH condition.
func CellsAdjacent(b1, b2 core.BucketID) bool {
	x1, y1 := UnpackCell(b1)
	x2, y2 := UnpackCell(b2)
	return absInt(x1-x2) <= 1 && absInt(y1-y2) <= 1
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// New returns the distance-join FUDJ. The single parameter is the
// distance threshold d (a float).
func New() core.Join {
	return core.Wrap(core.Spec[geo.Point, geo.Point, Summary, Plan]{
		Name:   "points_within",
		Params: 1,
		Dedup:  core.DedupNone, // single-assign: no duplicates possible

		NewSummary: NewSummary,
		LocalAggLeft: func(pt geo.Point, s Summary) Summary {
			s.MBR = s.MBR.Union(geo.RectFromPoint(pt))
			return s
		},
		GlobalAgg: func(a, b Summary) Summary {
			a.MBR = a.MBR.Union(b.MBR)
			return a
		},
		Divide: func(l, r Summary, params []any) (Plan, error) {
			d, ok := params[0].(float64)
			if !ok || d <= 0 || math.IsInf(d, 0) || math.IsNaN(d) {
				return Plan{}, fmt.Errorf("distancejoin: distance must be a positive finite float, got %v", params[0])
			}
			space := l.MBR.Union(r.MBR)
			if space.IsEmpty() {
				space = geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
			}
			return Plan{MinX: space.MinX, MinY: space.MinY, Cell: d, D: d}, nil
		},
		AssignLeft: func(pt geo.Point, p Plan, dst []core.BucketID) []core.BucketID {
			cx, cy := p.CellOf(pt)
			return append(dst, PackCell(cx, cy))
		},
		Match: CellsAdjacent,
		Verify: func(_ core.BucketID, l geo.Point, _ core.BucketID, r geo.Point, p Plan) bool {
			return l.Distance(r) <= p.D
		},
	})
}

// Library packages the distance join as the installable library
// "distancejoins".
func Library() *core.Library {
	lib := core.NewLibrary("distancejoins")
	lib.MustRegister("knn.PointsWithin", New)
	return lib
}
