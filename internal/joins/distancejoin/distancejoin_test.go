package distancejoin

import (
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/geo"
)

func randPoints(rng *rand.Rand, n int, span float64) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
	}
	return out
}

func brute(left, right []geo.Point, d float64) map[[4]float64]int {
	out := map[[4]float64]int{}
	for _, l := range left {
		for _, r := range right {
			if l.Distance(r) <= d {
				out[[4]float64{l.X, l.Y, r.X, r.Y}]++
			}
		}
	}
	return out
}

func run(t *testing.T, left, right []geo.Point, d float64) (map[[4]float64]int, core.Stats) {
	t.Helper()
	la := make([]any, len(left))
	for i, p := range left {
		la[i] = p
	}
	ra := make([]any, len(right))
	for i, p := range right {
		ra[i] = p
	}
	got := map[[4]float64]int{}
	stats, err := core.RunStandalone(New(), la, ra, []any{d}, func(l, r any) {
		lp, rp := l.(geo.Point), r.(geo.Point)
		got[[4]float64{lp.X, lp.Y, rp.X, rp.Y}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		left := randPoints(rng, 150, 100)
		right := randPoints(rng, 120, 100)
		for _, d := range []float64{0.5, 5, 50, 500} {
			want := brute(left, right, d)
			got, _ := run(t, left, right, d)
			if len(got) != len(want) {
				t.Fatalf("trial %d d=%v: %d distinct pairs, want %d", trial, d, len(got), len(want))
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("trial %d d=%v: pair %v count %d, want %d", trial, d, k, got[k], n)
				}
			}
		}
	}
}

func TestGridPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	left := randPoints(rng, 300, 1000)
	right := randPoints(rng, 300, 1000)
	_, stats := run(t, left, right, 10)
	if stats.Candidates >= 300*300 {
		t.Errorf("adjacent-cell matching should prune: %d candidates", stats.Candidates)
	}
	if stats.Deduped != 0 {
		t.Errorf("single-assign join deduped %d pairs", stats.Deduped)
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Descriptor()
	if d.DefaultMatch {
		t.Error("distance join has a custom theta match")
	}
	if !d.SymmetricSummarize || d.Params != 1 || d.Dedup != core.DedupNone {
		t.Errorf("descriptor = %+v", d)
	}
}

func TestBadDistance(t *testing.T) {
	pts := []any{geo.Point{X: 1, Y: 1}}
	for _, bad := range []any{0.0, -1.0, int64(3), "far"} {
		if _, err := core.RunStandalone(New(), pts, pts, []any{bad}, func(any, any) {}); err == nil {
			t.Errorf("distance %v should be rejected", bad)
		}
	}
}

func TestPackUnpackCells(t *testing.T) {
	for _, c := range [][2]int{{0, 0}, {1, 2}, {maxCells - 1, maxCells - 1}, {12345, 678}} {
		cx, cy := UnpackCell(PackCell(c[0], c[1]))
		if cx != c[0] || cy != c[1] {
			t.Errorf("pack/unpack(%v) = (%d,%d)", c, cx, cy)
		}
	}
	if !CellsAdjacent(PackCell(3, 3), PackCell(4, 4)) {
		t.Error("diagonal neighbors should match")
	}
	if CellsAdjacent(PackCell(3, 3), PackCell(5, 3)) {
		t.Error("two-apart cells should not match")
	}
}

func TestStateWireRoundTrip(t *testing.T) {
	j := New()
	s := Summary{MBR: geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}}
	buf, err := j.EncodeSummary(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Summary) != s {
		t.Errorf("summary round trip = %+v", got)
	}
	p := Plan{MinX: -1, MinY: -2, Cell: 5, D: 5}
	pb, err := j.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := j.DecodePlan(pb)
	if err != nil {
		t.Fatal(err)
	}
	if gp.(Plan) != p {
		t.Errorf("plan round trip = %+v", gp)
	}
}

func TestLibrary(t *testing.T) {
	lib := Library()
	if lib.Name() != "distancejoins" {
		t.Error("library name")
	}
	if _, err := lib.Resolve("knn.PointsWithin"); err != nil {
		t.Error(err)
	}
}
