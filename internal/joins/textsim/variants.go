package textsim

import (
	"fudj/internal/core"
)

// NewElimination returns the duplicate-elimination variant matching
// the original algorithm's post-join dedup, for the Fig. 12a
// comparison.
func NewElimination() core.Join {
	return core.Wrap(spec("text_similarity_elim", core.DedupElimination))
}

// Library packages the text-similarity variants as the installable
// library "flexiblejoins", matching the paper's Query 4 example.
func Library() *core.Library {
	lib := core.NewLibrary("flexiblejoins")
	lib.MustRegister("setsimilarity.SetSimilarityJoin", New)
	lib.MustRegister("setsimilarity.SetSimilarityJoinElimination", NewElimination)
	return lib
}
