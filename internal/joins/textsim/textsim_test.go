package textsim

import (
	"fmt"
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/text"
)

var vocab = []string{
	"river", "scenic", "landscape", "camping", "backpacking", "trail",
	"lake", "mountain", "forest", "desert", "canyon", "wildlife",
	"fishing", "swimming", "historic", "monument",
}

// randomTexts builds reviews from a skewed vocabulary: low-index words
// appear more often, giving the frequency skew prefix filtering needs.
func randomTexts(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		words := 3 + rng.Intn(6)
		s := ""
		for w := 0; w < words; w++ {
			idx := rng.Intn(len(vocab))
			if rng.Intn(3) > 0 { // skew toward common words
				idx = rng.Intn(len(vocab) / 2)
			}
			if w > 0 {
				s += " "
			}
			s += vocab[idx]
		}
		out[i] = s
	}
	return out
}

func brute(left, right []string, threshold float64) map[[2]string]int {
	out := map[[2]string]int{}
	for _, l := range left {
		for _, r := range right {
			if text.Jaccard(text.Tokenize(l), text.Tokenize(r)) >= threshold {
				out[[2]string{l, r}]++
			}
		}
	}
	return out
}

func run(t *testing.T, j core.Join, left, right []string, threshold float64) (map[[2]string]int, core.Stats) {
	t.Helper()
	la := make([]any, len(left))
	for i, s := range left {
		la[i] = s
	}
	ra := make([]any, len(right))
	for i, s := range right {
		ra[i] = s
	}
	got := map[[2]string]int{}
	stats, err := core.RunStandalone(j, la, ra, []any{threshold}, func(l, r any) {
		got[[2]string{l.(string), r.(string)}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestMatchesBruteForceAcrossThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, threshold := range []float64{0.5, 0.7, 0.9, 1.0} {
		t.Run(fmt.Sprintf("t=%.1f", threshold), func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				left := randomTexts(rng, 80)
				right := randomTexts(rng, 60)
				want := brute(left, right, threshold)
				for name, mk := range map[string]func() core.Join{"avoid": New, "elim": NewElimination} {
					got, _ := run(t, mk(), left, right, threshold)
					if len(got) != len(want) {
						t.Fatalf("%s: %d distinct pairs, want %d", name, len(got), len(want))
					}
					for k, n := range want {
						if got[k] != n {
							t.Fatalf("%s: pair %v count %d, want %d", name, k, got[k], n)
						}
					}
				}
			}
		})
	}
}

func TestPrefixFilterPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	left := randomTexts(rng, 150)
	right := randomTexts(rng, 150)
	_, stats := run(t, New(), left, right, 0.9)
	if stats.Candidates >= 150*150 {
		t.Errorf("prefix filtering should prune candidates, got %d of %d", stats.Candidates, 150*150)
	}
	// Lower thresholds mean longer prefixes and more candidates.
	_, loose := run(t, New(), left, right, 0.5)
	if loose.Candidates <= stats.Candidates {
		t.Errorf("lower threshold should yield more candidates: %d vs %d", loose.Candidates, stats.Candidates)
	}
}

func TestBadThresholdRejected(t *testing.T) {
	for _, bad := range []any{0.0, -1.0, 1.5, "high", int64(1)} {
		_, err := core.RunStandalone(New(), []any{"a b"}, []any{"a b"}, []any{bad}, func(any, any) {})
		if err == nil {
			t.Errorf("threshold %v should be rejected", bad)
		}
	}
}

func TestEmptyTextsNeverJoin(t *testing.T) {
	got, _ := run(t, New(), []string{"", "   ", "river"}, []string{"", "river"}, 0.9)
	if len(got) != 1 || got[[2]string{"river", "river"}] != 1 {
		t.Errorf("got %v, want only river-river", got)
	}
}

func TestUnseenTokensAtAssignTime(t *testing.T) {
	// A record whose tokens never appeared in the summary (possible in
	// incremental scenarios) must still be assignable without panicking.
	j := New()
	plan, err := j.Divide(Summary{"common": 10}, Summary{"common": 5}, []any{0.9})
	if err != nil {
		t.Fatal(err)
	}
	ids := j.Assign(core.Left, "unseen words here", plan, nil)
	if len(ids) == 0 {
		t.Error("unseen-token record got no buckets")
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Descriptor()
	if !d.DefaultMatch || !d.SymmetricSummarize || d.Params != 1 || d.Dedup != core.DedupAvoidance {
		t.Errorf("descriptor = %+v", d)
	}
	if NewElimination().Descriptor().Dedup != core.DedupElimination {
		t.Error("elimination variant descriptor")
	}
}

func TestStateCodecs(t *testing.T) {
	j := New()
	sum := Summary{"river": 3, "lake": 1}
	buf, err := j.EncodeSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	gs := got.(Summary)
	if gs["river"] != 3 || gs["lake"] != 1 || len(gs) != 2 {
		t.Errorf("summary round trip = %v", gs)
	}
	plan := Plan{Ranks: map[string]int{"river": 1, "lake": 0}, NextRank: 2, Threshold: 0.9}
	pbuf, err := j.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := j.DecodePlan(pbuf)
	if err != nil {
		t.Fatal(err)
	}
	if gp.(Plan).Threshold != 0.9 || gp.(Plan).Ranks["lake"] != 0 || gp.(Plan).NextRank != 2 {
		t.Errorf("plan round trip = %+v", gp)
	}
}

func TestLibrary(t *testing.T) {
	lib := Library()
	if lib.Name() != "flexiblejoins" {
		t.Error("library name")
	}
	if _, err := lib.Resolve("setsimilarity.SetSimilarityJoin"); err != nil {
		t.Error(err)
	}
}
