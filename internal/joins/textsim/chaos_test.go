package textsim

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/engine"
	"fudj/internal/types"
)

// TestChaosEquivalence runs the set-similarity join end-to-end on a
// faulted cluster and requires the results to match a fault-free run.
func TestChaosEquivalence(t *testing.T) {
	db := engine.MustOpen(engine.Options{Cluster: cluster.Config{Nodes: 3, CoresPerNode: 2}})
	rng := rand.New(rand.NewSource(8))
	words := []string{"river", "scenic", "camping", "trail", "lake", "forest", "desert", "historic"}
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "review", Kind: types.KindString},
	)
	var reviews []types.Record
	for i := 0; i < 70; i++ {
		n := 3 + rng.Intn(4)
		ws := make([]string, n)
		for j := range ws {
			ws[j] = words[rng.Intn(len(words))]
		}
		reviews = append(reviews, types.Record{
			types.NewInt64(int64(i)),
			types.NewString(strings.Join(ws, " ")),
		})
	}
	if err := db.CreateDataset("reviews", schema, reviews); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(Library()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN text_similarity_join(a: string, b: string, t: double) RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins`); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT r1.id, r2.id FROM reviews r1, reviews r2
		WHERE r1.id < r2.id AND text_similarity_join(r1.review, r2.review, 0.7)`

	clean, err := db.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Rows) == 0 {
		t.Fatal("fault-free run produced no rows")
	}

	db.SetFaultConfig(&cluster.FaultConfig{
		Seed:           3,
		CrashProb:      0.2,
		StragglerNodes: []int{2},
		StragglerDelay: 10 * time.Millisecond,
		CorruptProb:    0.05,
	})
	db.SetRetryPolicy(cluster.RetryPolicy{
		MaxAttempts:      8,
		BaseBackoff:      50 * time.Microsecond,
		MaxBackoff:       time.Millisecond,
		SpeculativeAfter: 2 * time.Millisecond,
	})
	chaos, err := db.Execute(q)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if chaos.Retries == 0 {
		t.Error("no retries recorded under injected crashes")
	}
	if len(chaos.Rows) != len(clean.Rows) {
		t.Fatalf("chaos run: %d rows, fault-free: %d", len(chaos.Rows), len(clean.Rows))
	}
	seen := make(map[string]int, len(clean.Rows))
	for _, r := range clean.Rows {
		seen[r.String()]++
	}
	for _, r := range chaos.Rows {
		if seen[r.String()] == 0 {
			t.Fatalf("chaos run produced row %s absent from the fault-free run", r)
		}
		seen[r.String()]--
	}
}
