// Package textsim implements the Text Similarity FUDJ of §V-B, a
// prefix-filtering set-similarity join in the style of Vernica et al.:
// SUMMARIZE counts token occurrences per side, DIVIDE merges the counts
// and ranks tokens rarest-first, ASSIGN multi-assigns each record to
// the ranks of its prefix tokens (prefix length derived from the
// similarity threshold), MATCH is default equality (hash-join path),
// and VERIFY computes the exact Jaccard similarity.
package textsim

import (
	"fmt"

	"fudj/internal/core"
	"fudj/internal/text"
)

// Summary maps token → occurrence count for one side.
type Summary map[string]int64

// Plan is the text-similarity PPlan: the global token ranks plus the
// similarity threshold (the algorithm needs the threshold in every
// stage, so it rides inside the plan exactly as §VI-A describes).
type Plan struct {
	Ranks     map[string]int
	NextRank  int
	Threshold float64
}

func (p Plan) rankTable() *text.RankTable {
	return &text.RankTable{Ranks: p.Ranks, Next: p.NextRank}
}

func spec(name string, dedup core.DedupMode) core.Spec[string, string, Summary, Plan] {
	return core.Spec[string, string, Summary, Plan]{
		Name:   name,
		Params: 1, // similarity threshold
		Dedup:  dedup,

		// SUMMARIZE: token counting.
		NewSummary: func() Summary { return make(Summary) },
		LocalAggLeft: func(txt string, s Summary) Summary {
			for _, tok := range text.Tokenize(txt) {
				s[tok]++
			}
			return s
		},
		GlobalAgg: func(a, b Summary) Summary {
			for tok, n := range b {
				a[tok] += n
			}
			return a
		},

		// DIVIDE: merge both sides' counts and rank ascending by count.
		Divide: func(l, r Summary, params []any) (Plan, error) {
			threshold, ok := params[0].(float64)
			if !ok || threshold <= 0 || threshold > 1 {
				return Plan{}, fmt.Errorf("textsim: threshold must be a float in (0, 1], got %v", params[0])
			}
			merged := make(map[string]int64, len(l)+len(r))
			for tok, n := range l {
				merged[tok] += n
			}
			for tok, n := range r {
				merged[tok] += n
			}
			rt := text.BuildRankTable(merged)
			return Plan{Ranks: rt.Ranks, NextRank: rt.Size(), Threshold: threshold}, nil
		},

		// ASSIGN: prefix ranks (multi-assign; rarest tokens first).
		AssignLeft: func(txt string, p Plan, dst []core.BucketID) []core.BucketID {
			for _, rank := range p.rankTable().PrefixRanks(text.Tokenize(txt), p.Threshold) {
				dst = append(dst, rank)
			}
			return dst
		},

		// MATCH: nil → default equality.

		// VERIFY: exact Jaccard against the threshold.
		Verify: func(_ core.BucketID, l string, _ core.BucketID, r string, p Plan) bool {
			return text.Jaccard(text.Tokenize(l), text.Tokenize(r)) >= p.Threshold
		},
	}
}

// New returns the text-similarity FUDJ with the framework's default
// duplicate avoidance (the Fig. 12a winner and the configuration used
// in Fig. 9/10 — note the original paper [48] used elimination).
func New() core.Join { return core.Wrap(spec("text_similarity", core.DedupAvoidance)) }
