package spatialjoin

import (
	"fmt"
	"math"

	"fudj/internal/core"
	"fudj/internal/geo"
	"fudj/internal/wire"
)

// Automatic grid sizing — the paper's §VIII future-work item
// ("automate the process of finding the optimum number of buckets by
// gathering more dataset statistics during the SUMMARIZE phase").
// The auto variant's summary carries the record count and the total
// MBR area alongside the plain MBR; DIVIDE sizes the grid so that the
// expected number of records per tile stays near a constant, which is
// where the Fig. 11a cost curve bottoms out.

// AutoSummary is the enriched SUMMARIZE state of the auto variant.
type AutoSummary struct {
	MBR   geo.Rect
	Count int64
	Area  float64 // summed MBR area, a proxy for replication pressure
}

// NewAutoSummary returns the identity summary.
func NewAutoSummary() AutoSummary { return AutoSummary{MBR: geo.EmptyRect()} }

// MarshalWire implements wire.Marshaler.
func (s AutoSummary) MarshalWire(e *wire.Encoder) {
	s.MBR.MarshalWire(e)
	e.Varint(s.Count)
	e.Float64(s.Area)
}

// UnmarshalWire implements wire.Unmarshaler.
func (s *AutoSummary) UnmarshalWire(d *wire.Decoder) error {
	if err := s.MBR.UnmarshalWire(d); err != nil {
		return err
	}
	var err error
	if s.Count, err = d.Varint(); err != nil {
		return err
	}
	s.Area, err = d.Float64()
	return err
}

// targetPerTile is the records-per-tile constant the auto grid aims
// for; chosen from the Fig. 11a sweep's flat region.
const targetPerTile = 32

// autoGridSize derives the grid side from the gathered statistics:
// n = sqrt(totalRecords / targetPerTile), clamped to [1, 1024], then
// shrunk while the average geometry MBR is large relative to a tile
// (over-fine grids explode replication for big geometries).
func autoGridSize(l, r AutoSummary, space geo.Rect) int {
	total := l.Count + r.Count
	if total == 0 {
		return 1
	}
	n := int(math.Sqrt(float64(total) / targetPerTile))
	if n < 1 {
		n = 1
	}
	if n > 1024 {
		n = 1024
	}
	// Replication guard: keep the tile at least as large as the average
	// geometry extent, so each geometry overlaps O(1) tiles.
	avgArea := (l.Area + r.Area) / float64(total)
	if avgArea > 0 && space.Area() > 0 {
		avgSide := math.Sqrt(avgArea)
		maxN := int(math.Sqrt(space.Area()) / avgSide)
		if maxN < 1 {
			maxN = 1
		}
		if n > maxN {
			n = maxN
		}
	}
	return n
}

// NewAuto returns the spatial FUDJ with automatic grid sizing: pass 0
// as the grid-size parameter and DIVIDE derives it from the summary
// statistics; a positive parameter keeps the manual behaviour.
func NewAuto() core.Join {
	return core.Wrap(core.Spec[geo.Geometry, geo.Geometry, AutoSummary, Plan]{
		Name:   "spatial_pbsm_auto",
		Params: 1,
		Dedup:  core.DedupAvoidance,

		NewSummary: NewAutoSummary,
		LocalAggLeft: func(g geo.Geometry, s AutoSummary) AutoSummary {
			b := g.Bounds()
			s.MBR = s.MBR.Union(b)
			s.Count++
			s.Area += b.Area()
			return s
		},
		GlobalAgg: func(a, b AutoSummary) AutoSummary {
			a.MBR = a.MBR.Union(b.MBR)
			a.Count += b.Count
			a.Area += b.Area
			return a
		},
		Divide: func(l, r AutoSummary, params []any) (Plan, error) {
			n, ok := params[0].(int64)
			if !ok || n < 0 || n > 1<<14 {
				return Plan{}, fmt.Errorf("spatialjoin: grid size must be an integer in [0, 16384] (0 = auto), got %v", params[0])
			}
			space := l.MBR.Intersect(r.MBR)
			if space.IsEmpty() {
				space = l.MBR.Union(r.MBR)
			}
			if space.IsEmpty() {
				space = geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
			}
			size := int(n)
			if size == 0 {
				size = autoGridSize(l, r, space)
			}
			return Plan{Space: space, N: size}, nil
		},
		AssignLeft: func(g geo.Geometry, p Plan, dst []core.BucketID) []core.BucketID {
			return p.Grid().OverlappingTiles(g.Bounds(), dst)
		},
		Verify: func(_ core.BucketID, l geo.Geometry, _ core.BucketID, r geo.Geometry, _ Plan) bool {
			return geo.Intersects(l, r)
		},
	})
}
