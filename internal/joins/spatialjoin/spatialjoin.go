// Package spatialjoin implements the Spatial FUDJ of §V-A, a
// partition-based spatial merge join after PBSM (Patel & DeWitt):
// SUMMARIZE computes per-side MBRs, DIVIDE lays an n×n grid over their
// intersection-extended union, ASSIGN multi-assigns each geometry to
// every tile its MBR overlaps, MATCH is the default tile-id equality
// (single-join, hash-join eligible), and VERIFY runs the exact
// geometric intersection test.
//
// Multi-assignment duplicates candidate pairs, so the package offers
// three duplicate-handling builds for the Fig. 12b comparison: the
// framework's default avoidance, the PBSM Reference Point method, and
// post-join elimination.
package spatialjoin

import (
	"fmt"

	"fudj/internal/core"
	"fudj/internal/geo"
	"fudj/internal/wire"
)

// Plan is the spatial PPlan: the joint space MBR and grid size.
type Plan struct {
	Space geo.Rect
	N     int
}

// MarshalWire implements wire.Marshaler for the broadcast fast path.
func (p Plan) MarshalWire(e *wire.Encoder) {
	p.Space.MarshalWire(e)
	e.Varint(int64(p.N))
}

// UnmarshalWire implements wire.Unmarshaler.
func (p *Plan) UnmarshalWire(d *wire.Decoder) error {
	if err := p.Space.UnmarshalWire(d); err != nil {
		return err
	}
	n, err := d.Varint()
	if err != nil {
		return err
	}
	p.N = int(n)
	return nil
}

// Grid rebuilds the tile grid described by the plan.
func (p Plan) Grid() geo.Grid { return geo.NewGrid(p.Space, p.N) }

// spec builds the shared parts of every spatial join variant.
func spec(name string, dedup core.DedupMode) core.Spec[geo.Geometry, geo.Geometry, geo.Rect, Plan] {
	return core.Spec[geo.Geometry, geo.Geometry, geo.Rect, Plan]{
		Name:   name,
		Params: 1, // grid size n
		Dedup:  dedup,

		// SUMMARIZE: S ← MBR(geometry) ∪ S.
		NewSummary: geo.EmptyRect,
		LocalAggLeft: func(g geo.Geometry, s geo.Rect) geo.Rect {
			return s.Union(g.Bounds())
		},
		GlobalAgg: func(a, b geo.Rect) geo.Rect { return a.Union(b) },

		// DIVIDE: overlay an n×n grid on the joint space. The paper's
		// pseudo-code intersects the two MBRs — only geometries in the
		// overlap region can join — falling back to their union when the
		// datasets are disjoint so the grid is never degenerate.
		Divide: func(l, r geo.Rect, params []any) (Plan, error) {
			n, err := gridSize(params[0])
			if err != nil {
				return Plan{}, err
			}
			space := l.Intersect(r)
			if space.IsEmpty() {
				space = l.Union(r)
			}
			if space.IsEmpty() {
				// Both sides empty: any non-degenerate grid works.
				space = geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
			}
			return Plan{Space: space, N: n}, nil
		},

		// ASSIGN: all overlapping tile ids (multi-assign).
		AssignLeft: func(g geo.Geometry, p Plan, dst []core.BucketID) []core.BucketID {
			return p.Grid().OverlappingTiles(g.Bounds(), dst)
		},

		// MATCH: nil → default equality (single-join, hash-join path).

		// VERIFY: exact geometric intersection.
		Verify: func(_ core.BucketID, l geo.Geometry, _ core.BucketID, r geo.Geometry, _ Plan) bool {
			return geo.Intersects(l, r)
		},
	}
}

func gridSize(param any) (int, error) {
	n, ok := param.(int64)
	if !ok || n < 1 || n > 1<<14 {
		return 0, fmt.Errorf("spatialjoin: grid size must be an integer in [1, 16384], got %v", param)
	}
	return int(n), nil
}

// New returns the spatial FUDJ with the framework's default duplicate
// avoidance — the configuration evaluated in Fig. 9/10.
func New() core.Join { return core.Wrap(spec("spatial_pbsm", core.DedupAvoidance)) }
