package spatialjoin

import (
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/geo"
)

func TestAutoMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	left := randomGeoms(rng, 150, 80)
	right := randomGeoms(rng, 120, 80)
	want := brute(left, right)

	// Param 0 = auto-derived grid; positive param = manual.
	for _, n := range []int64{0, 8} {
		got := map[pairKey]int{}
		_, err := core.RunStandalone(NewAuto(), asAny(left), asAny(right), []any{n}, func(l, r any) {
			got[key(l.(geo.Geometry), r.(geo.Geometry))]++
		})
		if err != nil {
			t.Fatal(err)
		}
		comparePairMaps(t, "auto", got, want)
	}
}

func TestAutoGridSizeHeuristics(t *testing.T) {
	space := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	// Empty input: one tile.
	if n := autoGridSize(NewAutoSummary(), NewAutoSummary(), space); n != 1 {
		t.Errorf("empty auto grid = %d, want 1", n)
	}
	// Many tiny points: grid grows with sqrt(count/target).
	many := AutoSummary{MBR: space, Count: 32 * 10000, Area: 0}
	if n := autoGridSize(many, NewAutoSummary(), space); n != 100 {
		t.Errorf("dense auto grid = %d, want 100", n)
	}
	// Huge geometries cap the grid so replication stays bounded.
	big := AutoSummary{MBR: space, Count: 32 * 10000, Area: 32 * 10000 * 2500} // avg side 50
	if n := autoGridSize(big, NewAutoSummary(), space); n > 2 {
		t.Errorf("big-geometry auto grid = %d, want <= 2", n)
	}
	// Clamp at 1024.
	huge := AutoSummary{MBR: space, Count: 1 << 40}
	if n := autoGridSize(huge, NewAutoSummary(), space); n != 1024 {
		t.Errorf("clamped auto grid = %d, want 1024", n)
	}
}

func TestAutoRejectsNegativeParam(t *testing.T) {
	_, err := core.RunStandalone(NewAuto(), []any{geo.Geometry(geo.Point{X: 1, Y: 1})},
		[]any{geo.Geometry(geo.Point{X: 1, Y: 1})}, []any{int64(-1)}, func(any, any) {})
	if err == nil {
		t.Error("negative grid size should be rejected")
	}
}

func TestAutoSummaryWireRoundTrip(t *testing.T) {
	j := NewAuto()
	s := AutoSummary{MBR: geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}, Count: 9, Area: 2.5}
	buf, err := j.EncodeSummary(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(AutoSummary) != s {
		t.Errorf("round trip = %+v", got)
	}
}
