package spatialjoin

import (
	"math/rand"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/engine"
	"fudj/internal/geo"
	"fudj/internal/types"
)

// chaosDB builds the small parks/fires database the chaos suites run
// against, with the spatial FUDJ installed.
func chaosDB(t *testing.T) *engine.Database {
	t.Helper()
	db := engine.MustOpen(engine.WithClusterConfig(cluster.Config{Nodes: 3, CoresPerNode: 2}))
	rng := rand.New(rand.NewSource(4))
	parksSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "boundary", Kind: types.KindPolygon},
	)
	var parks []types.Record
	for i := 0; i < 30; i++ {
		x, y := rng.Float64()*80, rng.Float64()*80
		w, h := rng.Float64()*10+1, rng.Float64()*10+1
		poly := geo.NewPolygon([]geo.Point{
			{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
		})
		parks = append(parks, types.Record{types.NewInt64(int64(i)), types.NewPolygon(poly)})
	}
	if err := db.CreateDataset("parks", parksSchema, parks); err != nil {
		t.Fatal(err)
	}
	firesSchema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "location", Kind: types.KindPoint},
	)
	var fires []types.Record
	for i := 0; i < 90; i++ {
		fires = append(fires, types.Record{
			types.NewInt64(int64(i)),
			types.NewPoint(geo.Point{X: rng.Float64() * 90, Y: rng.Float64() * 90}),
		})
	}
	if err := db.CreateDataset("fires", firesSchema, fires); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(Library()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`); err != nil {
		t.Fatal(err)
	}
	return db
}

const chaosQuery = `SELECT p.id, f.id FROM parks p, fires f WHERE spatial_join(p.boundary, f.location, 8)`

// sameMultiset requires chaos to contain exactly the rows of clean.
func sameMultiset(t *testing.T, clean, chaos []types.Record) {
	t.Helper()
	if len(chaos) != len(clean) {
		t.Fatalf("degraded run: %d rows, baseline: %d", len(chaos), len(clean))
	}
	seen := make(map[string]int, len(clean))
	for _, r := range clean {
		seen[r.String()]++
	}
	for _, r := range chaos {
		if seen[r.String()] == 0 {
			t.Fatalf("degraded run produced row %s absent from the baseline", r)
		}
		seen[r.String()]--
	}
}

// TestChaosEquivalence runs the spatial join end-to-end on a faulted
// cluster and requires the results to match a fault-free run exactly.
func TestChaosEquivalence(t *testing.T) {
	db := chaosDB(t)
	clean, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Rows) == 0 {
		t.Fatal("fault-free run produced no rows")
	}

	db.MustConfigure(engine.WithFaults(&cluster.FaultConfig{
		Seed:           2,
		CrashProb:      0.2,
		StragglerNodes: []int{1},
		StragglerDelay: 10 * time.Millisecond,
		CorruptProb:    0.05,
	}))
	db.MustConfigure(engine.WithRetryPolicy(cluster.RetryPolicy{
		MaxAttempts:      8,
		BaseBackoff:      50 * time.Microsecond,
		MaxBackoff:       time.Millisecond,
		SpeculativeAfter: 2 * time.Millisecond,
	}))
	chaos, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if chaos.Faults.Retries == 0 {
		t.Error("no retries recorded under injected crashes")
	}
	sameMultiset(t, clean.Rows, chaos.Rows)
}

// TestMemoryBoundedChaos degrades the same join twice over: a budget
// far below the working set (forcing spill-to-disk COMBINE) plus 20%
// task crashes. Results must still match the unbounded fault-free run.
func TestMemoryBoundedChaos(t *testing.T) {
	db := chaosDB(t)
	clean, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 12288 // 2KB per partition on 6 partitions
	db.MustConfigure(engine.WithMemoryBudget(budget))
	db.MustConfigure(engine.WithFaults(&cluster.FaultConfig{Seed: 9, CrashProb: 0.2}))
	db.MustConfigure(engine.WithRetryPolicy(cluster.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	}))
	bounded, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatalf("memory-bounded chaos run failed: %v", err)
	}
	sameMultiset(t, clean.Rows, bounded.Rows)
	if bounded.Memory.BytesSpilled == 0 || bounded.Memory.SpillRuns == 0 {
		t.Errorf("budget %d forced no spilling (spilled=%d runs=%d)",
			budget, bounded.Memory.BytesSpilled, bounded.Memory.SpillRuns)
	}
	if bounded.Faults.Retries == 0 {
		t.Error("no retries recorded under injected crashes")
	}
	if bounded.Memory.Peak <= 0 || bounded.Memory.Peak > budget {
		t.Errorf("PeakMemory %d outside (0, %d]", bounded.Memory.Peak, budget)
	}
	t.Logf("peak=%d spilled=%d runs=%d split=%d retries=%d",
		bounded.Memory.Peak, bounded.Memory.BytesSpilled, bounded.Memory.SpillRuns,
		bounded.Memory.BucketsSplit, bounded.Faults.Retries)
}
