package spatialjoin

import (
	"fudj/internal/core"
	"fudj/internal/geo"
)

// NewReferencePoint returns the variant using the PBSM Reference Point
// duplicate-avoidance method (§VII-E): a pair is reported only from the
// tile containing the reference corner of the pair's MBR intersection.
func NewReferencePoint() core.Join {
	s := spec("spatial_pbsm_refpoint", core.DedupCustom)
	s.DedupFn = func(b1 core.BucketID, l geo.Geometry, b2 core.BucketID, r geo.Geometry, p Plan) bool {
		if b1 != b2 {
			return true // cannot happen under default match; keep defensively
		}
		inter := l.Bounds().Intersect(r.Bounds())
		return p.Grid().ReferencePointTile(inter) == b1
	}
	return core.Wrap(s)
}

// NewElimination returns the variant that lets duplicates flow and
// removes them with a post-join distinct stage, for the duplicate
// handling comparison.
func NewElimination() core.Join { return core.Wrap(spec("spatial_pbsm_elim", core.DedupElimination)) }

// NewNoDedup returns the raw multi-assign join with duplicate handling
// disabled; useful to measure the duplication factor itself.
func NewNoDedup() core.Join { return core.Wrap(spec("spatial_pbsm_nodedup", core.DedupNone)) }

// NewEqualityTheta returns a variant that is semantically identical to
// New but declares its (equality) match function explicitly instead of
// using the framework default. The optimizer can no longer prove the
// join is a single-join, so it falls back to the theta (broadcast +
// bucket matching) operator. This variant exists purely for the
// match-operator ablation benchmark: it quantifies what the hash-join
// selection optimization of §VI-C is worth.
func NewEqualityTheta() core.Join {
	s := spec("spatial_pbsm_theta", core.DedupAvoidance)
	s.Match = func(b1, b2 core.BucketID) bool { return b1 == b2 }
	return core.Wrap(s)
}

// NewPlaneSweep returns the spatial FUDJ with a custom plane-sweep
// local join inside each tile — the local join optimization the paper
// proposes as future work (§VII-F/§VIII), expressed through the
// framework's LocalJoin hook instead of a hand-built operator. The
// sweep generates candidate pairs by MBR along the x-axis and then
// applies the exact intersection test, so its output equals Verify's.
func NewPlaneSweep() core.Join {
	s := spec("spatial_pbsm_sweep", core.DedupAvoidance)
	s.LocalJoin = func(_ core.BucketID, left []geo.Geometry, _ core.BucketID, right []geo.Geometry, _ Plan, emit func(i, j int)) {
		lItems := make([]geo.SweepItem, len(left))
		for i, g := range left {
			lItems[i] = geo.SweepItem{MBR: g.Bounds(), Ref: i}
		}
		rItems := make([]geo.SweepItem, len(right))
		for i, g := range right {
			rItems[i] = geo.SweepItem{MBR: g.Bounds(), Ref: i}
		}
		geo.PlaneSweepJoin(lItems, rItems, func(i, j int) {
			if geo.Intersects(left[i], right[j]) {
				emit(i, j)
			}
		})
	}
	return core.Wrap(s)
}

// Library packages all spatial variants as an installable FUDJ library
// named "spatialjoins" (the paper's JAR analogue).
func Library() *core.Library {
	lib := core.NewLibrary("spatialjoins")
	lib.MustRegister("pbsm.SpatialJoin", New)
	lib.MustRegister("pbsm.SpatialJoinReferencePoint", NewReferencePoint)
	lib.MustRegister("pbsm.SpatialJoinElimination", NewElimination)
	lib.MustRegister("pbsm.SpatialJoinNoDedup", NewNoDedup)
	lib.MustRegister("pbsm.SpatialJoinTheta", NewEqualityTheta)
	lib.MustRegister("pbsm.SpatialJoinPlaneSweep", NewPlaneSweep)
	lib.MustRegister("pbsm.SpatialJoinAuto", NewAuto)
	return lib
}
