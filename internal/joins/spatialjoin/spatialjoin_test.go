package spatialjoin

import (
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/geo"
)

// randomGeoms builds a mix of points and small polygons.
func randomGeoms(rng *rand.Rand, n int, span float64) []geo.Geometry {
	out := make([]geo.Geometry, n)
	for i := range out {
		x, y := rng.Float64()*span, rng.Float64()*span
		if i%2 == 0 {
			out[i] = geo.Point{X: x, Y: y}
		} else {
			w, h := rng.Float64()*4+0.1, rng.Float64()*4+0.1
			out[i] = geo.NewPolygon([]geo.Point{
				{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
			})
		}
	}
	return out
}

func asAny(gs []geo.Geometry) []any {
	out := make([]any, len(gs))
	for i, g := range gs {
		out[i] = g
	}
	return out
}

type pairKey [8]float64

func key(l, r geo.Geometry) pairKey {
	lb, rb := l.Bounds(), r.Bounds()
	return pairKey{lb.MinX, lb.MinY, lb.MaxX, lb.MaxY, rb.MinX, rb.MinY, rb.MaxX, rb.MaxY}
}

func brute(left, right []geo.Geometry) map[pairKey]int {
	out := map[pairKey]int{}
	for _, l := range left {
		for _, r := range right {
			if geo.Intersects(l, r) {
				out[key(l, r)]++
			}
		}
	}
	return out
}

func run(t *testing.T, j core.Join, left, right []geo.Geometry, n int64) (map[pairKey]int, core.Stats) {
	t.Helper()
	got := map[pairKey]int{}
	stats, err := core.RunStandalone(j, asAny(left), asAny(right), []any{n}, func(l, r any) {
		got[key(l.(geo.Geometry), r.(geo.Geometry))]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func comparePairMaps(t *testing.T, name string, got, want map[pairKey]int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d distinct pairs, want %d", name, len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s: pair count %d, want %d", name, got[k], n)
		}
	}
}

// All duplicate-handling variants must reproduce exactly the
// brute-force result multiset.
func TestVariantsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	variants := map[string]func() core.Join{
		"avoidance":   New,
		"refpoint":    NewReferencePoint,
		"elimination": NewElimination,
		"planesweep":  NewPlaneSweep,
		"theta":       NewEqualityTheta,
	}
	for trial := 0; trial < 5; trial++ {
		left := randomGeoms(rng, 120, 60)
		right := randomGeoms(rng, 90, 60)
		want := brute(left, right)
		for name, mk := range variants {
			for _, n := range []int64{1, 4, 16} {
				got, _ := run(t, mk(), left, right, n)
				comparePairMaps(t, name, got, want)
			}
		}
	}
}

func TestNoDedupOverproduces(t *testing.T) {
	// A big polygon overlapping many tiles joined with itself must
	// produce duplicate pairs when dedup is off.
	big := geo.NewPolygon([]geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 50, Y: 50}, {X: 0, Y: 50}})
	small := geo.Point{X: 25, Y: 25}
	left := []geo.Geometry{big}
	right := []geo.Geometry{big, small}

	got, _ := run(t, NewNoDedup(), left, right, 8)
	if got[key(big, big)] <= 1 {
		t.Errorf("expected duplicated big-big pair, got %d", got[key(big, big)])
	}
	gotAvoid, stats := run(t, New(), left, right, 8)
	if gotAvoid[key(big, big)] != 1 || gotAvoid[key(big, small)] != 1 {
		t.Errorf("avoidance result wrong: %v", gotAvoid)
	}
	if stats.Deduped == 0 {
		t.Error("avoidance should suppress duplicates")
	}
}

func TestGridPruningReducesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	left := randomGeoms(rng, 200, 100)
	right := randomGeoms(rng, 200, 100)
	_, coarse := run(t, New(), left, right, 1) // one tile: all pairs are candidates
	_, fine := run(t, New(), left, right, 20)  // fine grid prunes
	if fine.Candidates >= coarse.Candidates {
		t.Errorf("finer grid should reduce candidates: %d vs %d", fine.Candidates, coarse.Candidates)
	}
	if coarse.Candidates != 200*200 {
		t.Errorf("1-tile grid candidates = %d, want all 40000", coarse.Candidates)
	}
}

func TestDivideBadParam(t *testing.T) {
	j := New()
	left := asAny(randomGeoms(rand.New(rand.NewSource(1)), 3, 10))
	for _, bad := range []any{0, int64(0), int64(1 << 20), "x", 3.5} {
		if _, err := core.RunStandalone(j, left, left, []any{bad}, func(any, any) {}); err == nil {
			t.Errorf("grid size %v should be rejected", bad)
		}
	}
}

func TestDivideDisjointSidesFallsBackToUnion(t *testing.T) {
	// Two spatially disjoint datasets: no result, but no crash either.
	left := []geo.Geometry{geo.Point{X: 0, Y: 0}}
	right := []geo.Geometry{geo.Point{X: 100, Y: 100}}
	got, _ := run(t, New(), left, right, 4)
	if len(got) != 0 {
		t.Errorf("disjoint datasets should produce nothing, got %v", got)
	}
}

func TestDescriptor(t *testing.T) {
	d := New().Descriptor()
	if !d.DefaultMatch {
		t.Error("spatial join uses default match")
	}
	if !d.SymmetricSummarize {
		t.Error("spatial join summarizes both sides identically")
	}
	if d.Params != 1 {
		t.Error("spatial join takes one parameter")
	}
	if NewReferencePoint().Descriptor().Dedup != core.DedupCustom {
		t.Error("refpoint variant should use custom dedup")
	}
}

func TestPlanWireRoundTrip(t *testing.T) {
	j := New()
	plan := Plan{Space: geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}, N: 7}
	buf, err := j.EncodePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodePlan(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Plan) != plan {
		t.Errorf("plan round trip = %+v", got)
	}
	// Summaries are geo.Rect and should use the wire fast path.
	sbuf, err := j.EncodeSummary(geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := j.DecodeSummary(sbuf)
	if err != nil {
		t.Fatal(err)
	}
	if s.(geo.Rect) != (geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Errorf("summary round trip = %v", s)
	}
}

func TestLibrary(t *testing.T) {
	lib := Library()
	if lib.Name() != "spatialjoins" {
		t.Error("library name")
	}
	if len(lib.Classes()) != 7 {
		t.Errorf("classes = %v", lib.Classes())
	}
	ctor, err := lib.Resolve("pbsm.SpatialJoin")
	if err != nil {
		t.Fatal(err)
	}
	if ctor().Descriptor().Name != "spatial_pbsm" {
		t.Error("resolved constructor")
	}
}
