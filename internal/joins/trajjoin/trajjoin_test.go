package trajjoin

import (
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/geo"
)

// randTrajectories builds random-walk polylines.
func randTrajectories(rng *rand.Rand, n int, span float64) []*geo.LineString {
	out := make([]*geo.LineString, n)
	for i := range out {
		steps := 3 + rng.Intn(6)
		pts := make([]geo.Point, steps)
		pts[0] = geo.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		for s := 1; s < steps; s++ {
			pts[s] = geo.Point{
				X: pts[s-1].X + (rng.Float64()-0.5)*8,
				Y: pts[s-1].Y + (rng.Float64()-0.5)*8,
			}
		}
		out[i] = geo.NewLineString(pts)
	}
	return out
}

func brute(left, right []*geo.LineString, d float64) map[[2]int]bool {
	out := map[[2]int]bool{}
	for i, l := range left {
		for j, r := range right {
			if l.WithinDistance(r, d) {
				out[[2]int{i, j}] = true
			}
		}
	}
	return out
}

func run(t *testing.T, left, right []*geo.LineString, n int64, d float64) (map[[2]int]int, core.Stats) {
	t.Helper()
	// Use identity by index: wrap each linestring so emit can recover it.
	idx := map[*geo.LineString]int{}
	la := make([]any, len(left))
	for i, ls := range left {
		la[i] = ls
		idx[ls] = i
	}
	ridx := map[*geo.LineString]int{}
	ra := make([]any, len(right))
	for i, ls := range right {
		ra[i] = ls
		ridx[ls] = i
	}
	got := map[[2]int]int{}
	stats, err := core.RunStandalone(New(), la, ra, []any{n, d}, func(l, r any) {
		got[[2]int{idx[l.(*geo.LineString)], ridx[r.(*geo.LineString)]}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 4; trial++ {
		left := randTrajectories(rng, 80, 100)
		right := randTrajectories(rng, 60, 100)
		for _, d := range []float64{0, 2, 10} {
			want := brute(left, right, d)
			for _, n := range []int64{1, 8, 32} {
				got, _ := run(t, left, right, n, d)
				if len(got) != len(want) {
					t.Fatalf("trial %d n=%d d=%v: %d pairs, want %d", trial, n, d, len(got), len(want))
				}
				for k, c := range got {
					if !want[k] {
						t.Fatalf("trial %d: spurious pair %v", trial, k)
					}
					if c != 1 {
						t.Fatalf("trial %d: pair %v emitted %d times (dedup broken)", trial, k, c)
					}
				}
			}
		}
	}
}

func TestExpansionOnOneSideOnly(t *testing.T) {
	// Two trajectories 3 apart; with d=5 they join even though their
	// MBRs never overlap — the left-side expansion is what finds them.
	a := geo.NewLineString([]geo.Point{{X: 0, Y: 0}, {X: 0, Y: 10}})
	b := geo.NewLineString([]geo.Point{{X: 3, Y: 0}, {X: 3, Y: 10}})
	got, stats := run(t, []*geo.LineString{a}, []*geo.LineString{b}, 16, 5)
	if len(got) != 1 {
		t.Fatalf("pairs = %v (stats %v)", got, stats)
	}
	// With d=2 they must not join.
	got, _ = run(t, []*geo.LineString{a}, []*geo.LineString{b}, 16, 2)
	if len(got) != 0 {
		t.Fatalf("d=2 pairs = %v", got)
	}
}

func TestDescriptor(t *testing.T) {
	desc := New().Descriptor()
	if !desc.DefaultMatch {
		t.Error("trajectory join uses default match")
	}
	if desc.SymmetricSummarize {
		t.Error("asymmetric assign declares side-specific functions")
	}
	if desc.Params != 2 || desc.Dedup != core.DedupAvoidance {
		t.Errorf("descriptor = %+v", desc)
	}
}

func TestBadParams(t *testing.T) {
	ls := geo.NewLineString([]geo.Point{{X: 0, Y: 0}, {X: 1, Y: 1}})
	data := []any{ls}
	for _, params := range [][]any{
		{int64(0), 1.0},
		{int64(1 << 20), 1.0},
		{"x", 1.0},
		{int64(4), -1.0},
		{int64(4), "near"},
	} {
		if _, err := core.RunStandalone(New(), data, data, params, func(any, any) {}); err == nil {
			t.Errorf("params %v should be rejected", params)
		}
	}
}

func TestStateWireRoundTrip(t *testing.T) {
	j := New()
	p := Plan{Space: geo.Rect{MinX: 0, MinY: 0, MaxX: 9, MaxY: 9}, N: 4, D: 2.5}
	buf, err := j.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodePlan(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Plan) != p {
		t.Errorf("plan round trip = %+v", got)
	}
}

func TestLibrary(t *testing.T) {
	if _, err := Library().Resolve("traj.ClosenessJoin"); err != nil {
		t.Error(err)
	}
}
