// Package trajjoin implements a trajectory closeness join as a FUDJ
// library: report every pair of trajectories (polylines) that approach
// within distance d of each other — the distributed trajectory joins
// the paper's related work surveys ([2], [3], [7], [8], [34]–[38]) are
// exactly this class of operation, and the package demonstrates that
// the FUDJ model accommodates them without engine changes.
//
// Partitioning follows the PBSM recipe with a distance twist: DIVIDE
// lays an n×n grid over the joint space; ASSIGN multi-assigns each
// *left* trajectory to every tile overlapping its MBR expanded by d,
// while right trajectories use their plain MBR. Any pair within d must
// then share a tile, so the default equality MATCH applies (hash-join
// path) and the framework's duplicate avoidance removes the
// multi-assign duplicates. VERIFY computes the exact closest approach
// between the polylines, with an MBR-distance short-circuit.
package trajjoin

import (
	"fmt"

	"fudj/internal/core"
	"fudj/internal/geo"
	"fudj/internal/wire"
)

// Summary is the running MBR of one side.
type Summary struct {
	MBR geo.Rect
}

// NewSummary returns the identity summary.
func NewSummary() Summary { return Summary{MBR: geo.EmptyRect()} }

// MarshalWire implements wire.Marshaler.
func (s Summary) MarshalWire(e *wire.Encoder) { s.MBR.MarshalWire(e) }

// UnmarshalWire implements wire.Unmarshaler.
func (s *Summary) UnmarshalWire(d *wire.Decoder) error { return s.MBR.UnmarshalWire(d) }

// Plan is the trajectory-join PPlan: the grid plus the distance
// threshold used by the expanded assignment and the verification.
type Plan struct {
	Space geo.Rect
	N     int
	D     float64
}

// MarshalWire implements wire.Marshaler.
func (p Plan) MarshalWire(e *wire.Encoder) {
	p.Space.MarshalWire(e)
	e.Varint(int64(p.N))
	e.Float64(p.D)
}

// UnmarshalWire implements wire.Unmarshaler.
func (p *Plan) UnmarshalWire(d *wire.Decoder) error {
	if err := p.Space.UnmarshalWire(d); err != nil {
		return err
	}
	n, err := d.Varint()
	if err != nil {
		return err
	}
	p.N = int(n)
	p.D, err = d.Float64()
	return err
}

// Grid rebuilds the tile grid described by the plan.
func (p Plan) Grid() geo.Grid { return geo.NewGrid(p.Space, p.N) }

// expand grows a rectangle by d on every side.
func expand(r geo.Rect, d float64) geo.Rect {
	return geo.Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// New returns the trajectory closeness FUDJ. Parameters: the grid side
// n (int) and the distance threshold d (float).
func New() core.Join {
	return core.Wrap(core.Spec[*geo.LineString, *geo.LineString, Summary, Plan]{
		Name:   "traj_close",
		Params: 2,
		Dedup:  core.DedupAvoidance,

		NewSummary: NewSummary,
		LocalAggLeft: func(ls *geo.LineString, s Summary) Summary {
			s.MBR = s.MBR.Union(ls.MBR())
			return s
		},
		GlobalAgg: func(a, b Summary) Summary {
			a.MBR = a.MBR.Union(b.MBR)
			return a
		},
		Divide: func(l, r Summary, params []any) (Plan, error) {
			n, ok := params[0].(int64)
			if !ok || n < 1 || n > 1<<12 {
				return Plan{}, fmt.Errorf("trajjoin: grid side must be an integer in [1, 4096], got %v", params[0])
			}
			d, ok := params[1].(float64)
			if !ok || d < 0 {
				return Plan{}, fmt.Errorf("trajjoin: distance must be a non-negative float, got %v", params[1])
			}
			space := l.MBR.Union(r.MBR)
			if space.IsEmpty() {
				space = geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
			}
			return Plan{Space: space, N: int(n), D: d}, nil
		},
		// Left side assigns with the d-expanded MBR, right side with the
		// plain MBR: pairs within d are guaranteed a shared tile while
		// only one side pays the extra replication.
		AssignLeft: func(ls *geo.LineString, p Plan, dst []core.BucketID) []core.BucketID {
			return p.Grid().OverlappingTiles(expand(ls.MBR(), p.D), dst)
		},
		AssignRight: func(ls *geo.LineString, p Plan, dst []core.BucketID) []core.BucketID {
			return p.Grid().OverlappingTiles(ls.MBR(), dst)
		},
		// MATCH: nil → default equality (hash-join path).
		Verify: func(_ core.BucketID, l *geo.LineString, _ core.BucketID, r *geo.LineString, p Plan) bool {
			return l.WithinDistance(r, p.D)
		},
		// Asymmetric assignment needs a right-side summarizer declared so
		// the descriptor does not claim symmetric summarize for self-join
		// reuse; summaries are in fact the same, so reuse stays safe, but
		// assignment is side-specific.
		LocalAggRight: func(ls *geo.LineString, s Summary) Summary {
			s.MBR = s.MBR.Union(ls.MBR())
			return s
		},
	})
}

// Library packages the trajectory join as the installable library
// "trajjoins".
func Library() *core.Library {
	lib := core.NewLibrary("trajjoins")
	lib.MustRegister("traj.ClosenessJoin", New)
	return lib
}
