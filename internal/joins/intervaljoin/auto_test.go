package intervaljoin

import (
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/interval"
)

func runAuto(t *testing.T, left, right []interval.Interval, n int64) map[[4]int64]int {
	t.Helper()
	la := make([]any, len(left))
	for i, v := range left {
		la[i] = v
	}
	ra := make([]any, len(right))
	for i, v := range right {
		ra[i] = v
	}
	got := map[[4]int64]int{}
	_, err := core.RunStandalone(NewAuto(), la, ra, []any{n}, func(l, r any) {
		lv, rv := l.(interval.Interval), r.(interval.Interval)
		got[[4]int64{lv.Start, lv.End, rv.Start, rv.End}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAutoMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	left := randIntervals(rng, 120, 5000, 300)
	right := randIntervals(rng, 90, 5000, 300)
	want := brute(left, right)
	for _, n := range []int64{0, 64} { // 0 = auto
		got := runAuto(t, left, right, n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d distinct pairs, want %d", n, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Fatalf("n=%d: pair %v count %d, want %d", n, k, got[k], c)
			}
		}
	}
}

func TestAutoGranuleHeuristics(t *testing.T) {
	if n := autoGranules(NewAutoSummary(), NewAutoSummary()); n != 1 {
		t.Errorf("empty auto granules = %d, want 1", n)
	}
	// Span 10000, average duration 100 → about 100 granules.
	s := AutoSummary{
		Summary:     Summary{MinStart: 0, MaxEnd: 9999},
		Count:       1000,
		SumDuration: 100 * 1000,
	}
	if n := autoGranules(s, NewAutoSummary()); n < 50 || n > 200 {
		t.Errorf("auto granules = %d, want ~100", n)
	}
	// Instant-length intervals clamp at the packing limit.
	inst := AutoSummary{
		Summary: Summary{MinStart: 0, MaxEnd: 1 << 40},
		Count:   10,
	}
	if n := autoGranules(inst, NewAutoSummary()); n != interval.MaxGranules {
		t.Errorf("clamped auto granules = %d, want %d", n, interval.MaxGranules)
	}
}

func TestAutoRejectsNegativeParam(t *testing.T) {
	iv := []any{interval.Interval{Start: 0, End: 1}}
	if _, err := core.RunStandalone(NewAuto(), iv, iv, []any{int64(-2)}, func(any, any) {}); err == nil {
		t.Error("negative granule count should be rejected")
	}
}

func TestAutoSummaryWireRoundTrip(t *testing.T) {
	j := NewAuto()
	s := AutoSummary{Summary: Summary{MinStart: -4, MaxEnd: 99, Empty: false}, Count: 7, SumDuration: 350}
	buf, err := j.EncodeSummary(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(AutoSummary) != s {
		t.Errorf("round trip = %+v", got)
	}
}
