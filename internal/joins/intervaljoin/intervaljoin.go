// Package intervaljoin implements the Overlapping Intervals FUDJ of
// §V-C, modelled on OIPJoin: SUMMARIZE finds each side's minimum start
// and maximum end, DIVIDE cuts the unified timeline into equal
// granules, ASSIGN places each interval in the single smallest
// [startGranule, endGranule] bucket covering it (packed as
// start<<16|end), MATCH tests granule-range overlap — a theta
// condition, so this is a multi-join that cannot use the hash-join
// path — and VERIFY tests exact interval overlap.
//
// Being single-assign, the join produces no duplicates and disables
// duplicate handling entirely.
package intervaljoin

import (
	"fmt"

	"fudj/internal/core"
	"fudj/internal/interval"
	"fudj/internal/wire"
)

// Summary carries one side's timeline extent.
type Summary struct {
	MinStart int64
	MaxEnd   int64
	Empty    bool
}

// NewSummary returns the identity summary.
func NewSummary() Summary {
	return Summary{MinStart: 1 << 62, MaxEnd: -(1 << 62), Empty: true}
}

// MarshalWire implements wire.Marshaler.
func (s Summary) MarshalWire(e *wire.Encoder) {
	e.Varint(s.MinStart)
	e.Varint(s.MaxEnd)
	e.Bool(s.Empty)
}

// UnmarshalWire implements wire.Unmarshaler.
func (s *Summary) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if s.MinStart, err = d.Varint(); err != nil {
		return err
	}
	if s.MaxEnd, err = d.Varint(); err != nil {
		return err
	}
	s.Empty, err = d.Bool()
	return err
}

// Plan is the interval PPlan: the unified timeline range and granule
// count, from which every node rebuilds the granulator.
type Plan struct {
	MinStart int64
	MaxEnd   int64
	N        int
}

// MarshalWire implements wire.Marshaler.
func (p Plan) MarshalWire(e *wire.Encoder) {
	e.Varint(p.MinStart)
	e.Varint(p.MaxEnd)
	e.Varint(int64(p.N))
}

// UnmarshalWire implements wire.Unmarshaler.
func (p *Plan) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if p.MinStart, err = d.Varint(); err != nil {
		return err
	}
	if p.MaxEnd, err = d.Varint(); err != nil {
		return err
	}
	n, err := d.Varint()
	if err != nil {
		return err
	}
	p.N = int(n)
	return nil
}

// Granulator rebuilds the granule mapper described by the plan.
func (p Plan) Granulator() interval.Granulator {
	return interval.NewGranulator(p.MinStart, p.MaxEnd, p.N)
}

// New returns the overlapping-interval FUDJ.
func New() core.Join {
	return core.Wrap(core.Spec[interval.Interval, interval.Interval, Summary, Plan]{
		Name:   "interval_overlap",
		Params: 1, // number of granules
		Dedup:  core.DedupNone,

		// SUMMARIZE: min start, max end.
		NewSummary: NewSummary,
		LocalAggLeft: func(iv interval.Interval, s Summary) Summary {
			if iv.Start < s.MinStart {
				s.MinStart = iv.Start
			}
			if iv.End > s.MaxEnd {
				s.MaxEnd = iv.End
			}
			s.Empty = false
			return s
		},
		GlobalAgg: func(a, b Summary) Summary {
			if b.MinStart < a.MinStart {
				a.MinStart = b.MinStart
			}
			if b.MaxEnd > a.MaxEnd {
				a.MaxEnd = b.MaxEnd
			}
			a.Empty = a.Empty && b.Empty
			return a
		},

		// DIVIDE: unify timelines and cut into n granules.
		Divide: func(l, r Summary, params []any) (Plan, error) {
			n, ok := params[0].(int64)
			if !ok || n < 1 || int(n) > interval.MaxGranules {
				return Plan{}, fmt.Errorf("intervaljoin: granule count must be an integer in [1, %d], got %v",
					interval.MaxGranules, params[0])
			}
			min, max := l.MinStart, l.MaxEnd
			if r.MinStart < min {
				min = r.MinStart
			}
			if r.MaxEnd > max {
				max = r.MaxEnd
			}
			if l.Empty && r.Empty {
				min, max = 0, 0
			}
			return Plan{MinStart: min, MaxEnd: max, N: int(n)}, nil
		},

		// ASSIGN: single smallest covering bucket.
		AssignLeft: func(iv interval.Interval, p Plan, dst []core.BucketID) []core.BucketID {
			return append(dst, p.Granulator().Bucket(iv))
		},

		// MATCH: granule-range overlap — a theta condition (multi-join).
		Match: interval.BucketsOverlap,

		// VERIFY: exact interval overlap.
		Verify: func(_ core.BucketID, l interval.Interval, _ core.BucketID, r interval.Interval, _ Plan) bool {
			return l.Overlaps(r)
		},
	})
}
