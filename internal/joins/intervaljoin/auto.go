package intervaljoin

import (
	"fmt"

	"fudj/internal/core"
	"fudj/internal/interval"
	"fudj/internal/wire"
)

// Automatic granule sizing — the §VIII future-work item applied to the
// interval join. The auto variant's summary additionally gathers the
// record count and summed duration; DIVIDE then sizes granules near
// the average interval duration, which keeps each interval in a small
// bucket while bounding the number of matching bucket pairs.

// AutoSummary is the enriched SUMMARIZE state of the auto variant.
type AutoSummary struct {
	Summary
	Count       int64
	SumDuration int64
}

// NewAutoSummary returns the identity summary.
func NewAutoSummary() AutoSummary { return AutoSummary{Summary: NewSummary()} }

// MarshalWire implements wire.Marshaler.
func (s AutoSummary) MarshalWire(e *wire.Encoder) {
	s.Summary.MarshalWire(e)
	e.Varint(s.Count)
	e.Varint(s.SumDuration)
}

// UnmarshalWire implements wire.Unmarshaler.
func (s *AutoSummary) UnmarshalWire(d *wire.Decoder) error {
	if err := s.Summary.UnmarshalWire(d); err != nil {
		return err
	}
	var err error
	if s.Count, err = d.Varint(); err != nil {
		return err
	}
	s.SumDuration, err = d.Varint()
	return err
}

// autoGranules derives the granule count: granule width ≈ the average
// interval duration (so a typical interval spans O(1) granules and a
// bucket matches O(1) other buckets), clamped to the packing limit.
func autoGranules(l, r AutoSummary) int {
	total := l.Count + r.Count
	if total == 0 {
		return 1
	}
	span := max64(l.MaxEnd, r.MaxEnd) - min64(l.MinStart, r.MinStart) + 1
	avgDur := (l.SumDuration + r.SumDuration) / total
	if avgDur < 1 {
		avgDur = 1
	}
	n := int(span / avgDur)
	if n < 1 {
		n = 1
	}
	if n > interval.MaxGranules {
		n = interval.MaxGranules
	}
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// NewAuto returns the overlapping-interval FUDJ with automatic granule
// sizing: pass 0 as the granule-count parameter and DIVIDE derives it
// from the gathered statistics.
func NewAuto() core.Join {
	return core.Wrap(core.Spec[interval.Interval, interval.Interval, AutoSummary, Plan]{
		Name:   "interval_overlap_auto",
		Params: 1,
		Dedup:  core.DedupNone,

		NewSummary: NewAutoSummary,
		LocalAggLeft: func(iv interval.Interval, s AutoSummary) AutoSummary {
			if iv.Start < s.MinStart {
				s.MinStart = iv.Start
			}
			if iv.End > s.MaxEnd {
				s.MaxEnd = iv.End
			}
			s.Empty = false
			s.Count++
			s.SumDuration += iv.Duration()
			return s
		},
		GlobalAgg: func(a, b AutoSummary) AutoSummary {
			if b.MinStart < a.MinStart {
				a.MinStart = b.MinStart
			}
			if b.MaxEnd > a.MaxEnd {
				a.MaxEnd = b.MaxEnd
			}
			a.Empty = a.Empty && b.Empty
			a.Count += b.Count
			a.SumDuration += b.SumDuration
			return a
		},
		Divide: func(l, r AutoSummary, params []any) (Plan, error) {
			n, ok := params[0].(int64)
			if !ok || n < 0 || int(n) > interval.MaxGranules {
				return Plan{}, fmt.Errorf("intervaljoin: granule count must be an integer in [0, %d] (0 = auto), got %v",
					interval.MaxGranules, params[0])
			}
			min, max := l.MinStart, l.MaxEnd
			if r.MinStart < min {
				min = r.MinStart
			}
			if r.MaxEnd > max {
				max = r.MaxEnd
			}
			if l.Empty && r.Empty {
				min, max = 0, 0
			}
			size := int(n)
			if size == 0 {
				size = autoGranules(l, r)
			}
			return Plan{MinStart: min, MaxEnd: max, N: size}, nil
		},
		AssignLeft: func(iv interval.Interval, p Plan, dst []core.BucketID) []core.BucketID {
			return append(dst, p.Granulator().Bucket(iv))
		},
		Match: interval.BucketsOverlap,
		Verify: func(_ core.BucketID, l interval.Interval, _ core.BucketID, r interval.Interval, _ Plan) bool {
			return l.Overlaps(r)
		},
	})
}
