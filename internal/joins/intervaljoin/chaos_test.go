package intervaljoin

import (
	"math/rand"
	"testing"
	"time"

	"fudj/internal/cluster"
	"fudj/internal/engine"
	"fudj/internal/interval"
	"fudj/internal/types"
)

// chaosDB builds the small rides database the chaos suites run
// against, with the overlapping-interval FUDJ installed.
func chaosDB(t *testing.T) *engine.Database {
	t.Helper()
	db := engine.MustOpen(engine.WithClusterConfig(cluster.Config{Nodes: 3, CoresPerNode: 2}))
	rng := rand.New(rand.NewSource(6))
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "vendor", Kind: types.KindInt64},
		types.Field{Name: "ride_interval", Kind: types.KindInterval},
	)
	var rides []types.Record
	for i := 0; i < 90; i++ {
		s := rng.Int63n(4000)
		rides = append(rides, types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(1 + int64(rng.Intn(2))),
			types.NewInterval(interval.Interval{Start: s, End: s + rng.Int63n(400)}),
		})
	}
	if err := db.CreateDataset("rides", schema, rides); err != nil {
		t.Fatal(err)
	}
	if err := db.InstallLibrary(Library()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Execute(`CREATE JOIN overlapping_interval(a: interval, b: interval, n: int) RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`); err != nil {
		t.Fatal(err)
	}
	return db
}

const chaosQuery = `SELECT n1.id, n2.id FROM rides n1, rides n2
	WHERE n1.vendor = 1 AND n2.vendor = 2
	  AND overlapping_interval(n1.ride_interval, n2.ride_interval, 50)`

// sameMultiset requires chaos to contain exactly the rows of clean.
func sameMultiset(t *testing.T, clean, chaos []types.Record) {
	t.Helper()
	if len(chaos) != len(clean) {
		t.Fatalf("degraded run: %d rows, baseline: %d", len(chaos), len(clean))
	}
	seen := make(map[string]int, len(clean))
	for _, r := range clean {
		seen[r.String()]++
	}
	for _, r := range chaos {
		if seen[r.String()] == 0 {
			t.Fatalf("degraded run produced row %s absent from the baseline", r)
		}
		seen[r.String()]--
	}
}

// TestChaosEquivalence runs the overlapping-interval join end-to-end
// on a faulted cluster (crashes, a straggler node, shuffle corruption)
// and requires the results to match a fault-free run exactly.
func TestChaosEquivalence(t *testing.T) {
	db := chaosDB(t)
	clean, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Rows) == 0 {
		t.Fatal("fault-free run produced no rows")
	}

	db.MustConfigure(engine.WithFaults(&cluster.FaultConfig{
		Seed:           5,
		CrashProb:      0.2,
		StragglerNodes: []int{0},
		StragglerDelay: 10 * time.Millisecond,
		CorruptProb:    0.05,
	}))
	db.MustConfigure(engine.WithRetryPolicy(cluster.RetryPolicy{
		MaxAttempts:      8,
		BaseBackoff:      50 * time.Microsecond,
		MaxBackoff:       time.Millisecond,
		SpeculativeAfter: 2 * time.Millisecond,
	}))
	chaos, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if chaos.Faults.Retries == 0 {
		t.Error("no retries recorded under injected crashes")
	}
	sameMultiset(t, clean.Rows, chaos.Rows)
}

// TestMemoryBoundedChaos degrades the same join twice over: a budget
// far below the working set (forcing spill-to-disk COMBINE on the
// theta path) plus 20% task crashes. Results must still match the
// unbounded fault-free run.
func TestMemoryBoundedChaos(t *testing.T) {
	db := chaosDB(t)
	clean, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}

	const budget = 12288 // 2KB per partition on 6 partitions
	db.MustConfigure(engine.WithMemoryBudget(budget))
	db.MustConfigure(engine.WithFaults(&cluster.FaultConfig{Seed: 9, CrashProb: 0.2}))
	db.MustConfigure(engine.WithRetryPolicy(cluster.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
	}))
	bounded, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatalf("memory-bounded chaos run failed: %v", err)
	}
	sameMultiset(t, clean.Rows, bounded.Rows)
	if bounded.Memory.BytesSpilled == 0 || bounded.Memory.SpillRuns == 0 {
		t.Errorf("budget %d forced no spilling (spilled=%d runs=%d)",
			budget, bounded.Memory.BytesSpilled, bounded.Memory.SpillRuns)
	}
	if bounded.Faults.Retries == 0 {
		t.Error("no retries recorded under injected crashes")
	}
	if bounded.Memory.Peak <= 0 || bounded.Memory.Peak > budget {
		t.Errorf("PeakMemory %d outside (0, %d]", bounded.Memory.Peak, budget)
	}
	t.Logf("peak=%d spilled=%d runs=%d split=%d retries=%d",
		bounded.Memory.Peak, bounded.Memory.BytesSpilled, bounded.Memory.SpillRuns,
		bounded.Memory.BucketsSplit, bounded.Faults.Retries)
}
