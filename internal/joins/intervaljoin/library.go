package intervaljoin

import (
	"fudj/internal/core"
)

// Library packages the interval join as the installable library
// "intervaljoins".
func Library() *core.Library {
	lib := core.NewLibrary("intervaljoins")
	lib.MustRegister("oip.IntervalJoin", New)
	lib.MustRegister("oip.IntervalJoinAuto", NewAuto)
	return lib
}
