package intervaljoin

import (
	"testing"

	"fudj/internal/cluster"
	"fudj/internal/engine"
)

// TestCheckpointRecovery is the checkpointed-execution acceptance for
// this join: a node killed at either phase barrier, with durable
// checkpoints on, must converge to the multiset-identical fault-free
// answer with the lost partitions restored from checkpoint — and with
// every checkpoint write damaged, the corruption must be detected and
// healed by recomputation instead.
func TestCheckpointRecovery(t *testing.T) {
	db := chaosDB(t)
	clean, err := db.Execute(chaosQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Rows) == 0 {
		t.Fatal("fault-free run produced no rows")
	}
	db.SetCheckpoints(true)

	for _, kill := range []struct {
		name string
		b    cluster.Barrier
	}{
		{"plan", cluster.BarrierPlan},
		{"shuffle", cluster.BarrierShuffle},
	} {
		t.Run(kill.name, func(t *testing.T) {
			db.MustConfigure(engine.WithFaults(&cluster.FaultConfig{
				Seed:         6,
				BarrierKills: []cluster.BarrierKill{{Barrier: kill.b, Node: 1}},
			}))
			res, err := db.Execute(chaosQuery)
			if err != nil {
				t.Fatalf("barrier-kill run failed: %v", err)
			}
			sameMultiset(t, clean.Rows, res.Rows)
			if res.Faults.BarrierKills == 0 {
				t.Error("no barrier kill fired")
			}
			if res.Faults.PartitionsRecovered == 0 {
				t.Error("no partitions recovered from checkpoint")
			}
			if res.Faults.CheckpointBytes == 0 {
				t.Error("no checkpoint bytes written")
			}
		})
	}

	t.Run("damaged", func(t *testing.T) {
		db.MustConfigure(engine.WithFaults(&cluster.FaultConfig{
			Seed:          6,
			BarrierKills:  []cluster.BarrierKill{{Barrier: cluster.BarrierShuffle, Node: 1}},
			TornWriteProb: 1,
		}))
		res, err := db.Execute(chaosQuery)
		if err != nil {
			t.Fatalf("damaged-checkpoint run failed: %v", err)
		}
		sameMultiset(t, clean.Rows, res.Rows)
		if res.Faults.CheckpointsDiscarded == 0 {
			t.Error("no damaged checkpoints discarded at torn-write p=1")
		}
	})
}
