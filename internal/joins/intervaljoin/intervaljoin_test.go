package intervaljoin

import (
	"math/rand"
	"testing"

	"fudj/internal/core"
	"fudj/internal/interval"
)

func randIntervals(rng *rand.Rand, n int, span, maxLen int64) []interval.Interval {
	out := make([]interval.Interval, n)
	for i := range out {
		s := rng.Int63n(span)
		out[i] = interval.Interval{Start: s, End: s + rng.Int63n(maxLen)}
	}
	return out
}

func brute(left, right []interval.Interval) map[[4]int64]int {
	out := map[[4]int64]int{}
	for _, l := range left {
		for _, r := range right {
			if l.Overlaps(r) {
				out[[4]int64{l.Start, l.End, r.Start, r.End}]++
			}
		}
	}
	return out
}

func run(t *testing.T, left, right []interval.Interval, n int64) (map[[4]int64]int, core.Stats) {
	t.Helper()
	la := make([]any, len(left))
	for i, v := range left {
		la[i] = v
	}
	ra := make([]any, len(right))
	for i, v := range right {
		ra[i] = v
	}
	got := map[[4]int64]int{}
	stats, err := core.RunStandalone(New(), la, ra, []any{n}, func(l, r any) {
		lv, rv := l.(interval.Interval), r.(interval.Interval)
		got[[4]int64{lv.Start, lv.End, rv.Start, rv.End}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, stats
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		left := randIntervals(rng, 100, 5000, 300)
		right := randIntervals(rng, 80, 5000, 300)
		want := brute(left, right)
		for _, n := range []int64{1, 10, 100} {
			got, _ := run(t, left, right, n)
			if len(got) != len(want) {
				t.Fatalf("n=%d trial %d: %d distinct pairs, want %d", n, trial, len(got), len(want))
			}
			for k, c := range want {
				if got[k] != c {
					t.Fatalf("n=%d trial %d: pair %v count %d, want %d", n, trial, k, got[k], c)
				}
			}
		}
	}
}

// Single-assign means zero duplicates even with dedup disabled: the
// total emitted must equal the verified count with no suppression.
func TestSingleAssignNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	left := randIntervals(rng, 100, 2000, 200)
	right := randIntervals(rng, 100, 2000, 200)
	_, stats := run(t, left, right, 50)
	if stats.Deduped != 0 {
		t.Errorf("single-assign join deduped %d pairs", stats.Deduped)
	}
	if stats.Results != stats.Verified {
		t.Errorf("results %d != verified %d", stats.Results, stats.Verified)
	}
	if stats.LeftBuckets == 0 {
		t.Error("no buckets formed")
	}
}

func TestGranulesPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	left := randIntervals(rng, 150, 10000, 100)
	right := randIntervals(rng, 150, 10000, 100)
	_, coarse := run(t, left, right, 1)
	_, fine := run(t, left, right, 200)
	if fine.Candidates >= coarse.Candidates {
		t.Errorf("more granules should prune candidates: %d vs %d", fine.Candidates, coarse.Candidates)
	}
}

func TestTheta(t *testing.T) {
	d := New().Descriptor()
	if d.DefaultMatch {
		t.Error("interval join overrides Match; it must be a multi-join")
	}
	if !d.SymmetricSummarize {
		t.Error("interval join summarizes both sides identically")
	}
	if d.Dedup != core.DedupNone {
		t.Error("single-assign join should disable dedup")
	}
}

func TestBadGranuleCount(t *testing.T) {
	ivs := []any{interval.Interval{Start: 0, End: 1}}
	for _, bad := range []any{int64(0), int64(interval.MaxGranules + 1), 3.5, "x"} {
		if _, err := core.RunStandalone(New(), ivs, ivs, []any{bad}, func(any, any) {}); err == nil {
			t.Errorf("granule count %v should be rejected", bad)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	got, stats := run(t, nil, nil, 10)
	if len(got) != 0 || stats.Results != 0 {
		t.Errorf("empty join produced %v", got)
	}
	// One empty side.
	got, _ = run(t, randIntervals(rand.New(rand.NewSource(1)), 5, 100, 10), nil, 10)
	if len(got) != 0 {
		t.Errorf("half-empty join produced %v", got)
	}
}

func TestStateWireFastPath(t *testing.T) {
	j := New()
	s := Summary{MinStart: -5, MaxEnd: 100, Empty: false}
	buf, err := j.EncodeSummary(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j.DecodeSummary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.(Summary) != s {
		t.Errorf("summary round trip = %+v", got)
	}
	p := Plan{MinStart: 0, MaxEnd: 999, N: 64}
	pbuf, err := j.EncodePlan(p)
	if err != nil {
		t.Fatal(err)
	}
	gp, err := j.DecodePlan(pbuf)
	if err != nil {
		t.Fatal(err)
	}
	if gp.(Plan) != p {
		t.Errorf("plan round trip = %+v", gp)
	}
	if gp.(Plan).Granulator().Width() != p.Granulator().Width() {
		t.Error("granulator rebuild mismatch")
	}
}

func TestLibrary(t *testing.T) {
	lib := Library()
	if lib.Name() != "intervaljoins" {
		t.Error("library name")
	}
	if _, err := lib.Resolve("oip.IntervalJoin"); err != nil {
		t.Error(err)
	}
}
