// Package builtin contains the hand-built distributed join operators
// the paper compares FUDJ against: the same partition-based algorithms
// implemented directly against the engine's internals (no translation
// layer, no generic assign/verify indirection), each in the style of a
// from-scratch DBMS operator. It also hosts the advanced spatial
// operator of §VII-F, which adds a plane-sweep local join inside each
// tile.
//
// Every operator matches the engine's BuiltinJoinFunc signature
// structurally, so the engine can route a FUDJ predicate to its
// built-in twin when the join mode is ModeBuiltin.
package builtin

import (
	"sort"

	"fudj/internal/types"
)

// tagged wraps an input record with its precomputed key value and
// bucket id, the layout shared by all operators here:
// [bucket, key, original fields...].
func tag(bucket int, key types.Value, rec types.Record) types.Record {
	out := make(types.Record, 0, 2+len(rec))
	return append(append(out, types.NewInt64(int64(bucket)), key), rec...)
}

func joinRecs(l, r types.Record) types.Record {
	out := make(types.Record, 0, len(l)+len(r)-4)
	out = append(out, l[2:]...)
	return append(out, r[2:]...)
}

func groupByBucket(recs []types.Record) map[int][]types.Record {
	out := make(map[int][]types.Record)
	for _, r := range recs {
		id := int(r[0].Int64())
		out[id] = append(out[id], r)
	}
	return out
}

// sortedBuckets is kept for deterministic iteration in tests.
func sortedBuckets(m map[int][]types.Record) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
