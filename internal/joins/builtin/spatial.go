package builtin

import (
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/geo"
	"fudj/internal/types"
)

// SpatialPBSM is the hand-built PBSM spatial join: grid partitioning on
// the joint MBR, hash shuffle by tile, per-tile nested verification
// with Reference Point duplicate avoidance. params[0] is the grid size.
func SpatialPBSM(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error) {
	return spatial(c, left, leftKey, right, rightKey, params, false)
}

// SpatialPlaneSweep is the advanced spatial operator (§VII-F): the same
// pipeline as SpatialPBSM but with a plane-sweep local join inside each
// tile instead of nested verification.
func SpatialPlaneSweep(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error) {
	return spatial(c, left, leftKey, right, rightKey, params, true)
}

func spatial(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value, sweep bool) (cluster.Data, error) {

	if len(params) != 1 || params[0].Kind() != types.KindInt64 {
		return nil, fmt.Errorf("builtin spatial: want one integer grid-size parameter")
	}
	n := int(params[0].Int64())
	if n < 1 {
		return nil, fmt.Errorf("builtin spatial: grid size %d out of range", n)
	}

	// SUMMARIZE equivalent: direct MBR union per partition, no codec.
	mbrOf := func(data cluster.Data, key expr.Evaluator) (geo.Rect, error) {
		parts, err := cluster.RunValues(c, data, func(_ int, in []types.Record) (geo.Rect, error) {
			acc := geo.EmptyRect()
			for _, rec := range in {
				v, err := key(rec)
				if err != nil {
					return geo.EmptyRect(), err
				}
				m, ok := v.MBR()
				if !ok {
					return geo.EmptyRect(), fmt.Errorf("builtin spatial: key %v is not spatial", v.Kind())
				}
				acc = acc.Union(m)
			}
			return acc, nil
		})
		if err != nil {
			return geo.EmptyRect(), err
		}
		acc := geo.EmptyRect()
		for _, p := range parts {
			acc = acc.Union(p)
		}
		return acc, nil
	}
	lm, err := mbrOf(left, leftKey)
	if err != nil {
		return nil, err
	}
	rm, err := mbrOf(right, rightKey)
	if err != nil {
		return nil, err
	}
	space := lm.Intersect(rm)
	if space.IsEmpty() {
		space = lm.Union(rm)
	}
	if space.IsEmpty() {
		space = geo.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	grid := geo.NewGrid(space, n)

	assign := func(data cluster.Data, key expr.Evaluator) (cluster.Data, error) {
		return c.Run(data, func(_ int, in []types.Record) ([]types.Record, error) {
			var out []types.Record
			var tiles []int
			for _, rec := range in {
				v, err := key(rec)
				if err != nil {
					return nil, err
				}
				m, _ := v.MBR()
				tiles = grid.OverlappingTiles(m, tiles[:0])
				for _, tile := range tiles {
					out = append(out, tag(tile, v, rec))
				}
			}
			return out, nil
		})
	}
	lAssigned, err := assign(left, leftKey)
	if err != nil {
		return nil, err
	}
	rAssigned, err := assign(right, rightKey)
	if err != nil {
		return nil, err
	}
	tileHash := func(r types.Record) uint64 { return r[0].Hash() }
	lShuf, err := c.ExchangeHash(lAssigned, tileHash)
	if err != nil {
		return nil, err
	}
	rShuf, err := c.ExchangeHash(rAssigned, tileHash)
	if err != nil {
		return nil, err
	}

	return c.Run(lShuf, func(part int, in []types.Record) ([]types.Record, error) {
		lTiles := groupByBucket(in)
		rTiles := groupByBucket(rShuf[part])
		var out []types.Record
		emit := func(tile int, l, r types.Record) {
			lg, _ := l[1].Geometry()
			rg, _ := r[1].Geometry()
			// Reference Point duplicate avoidance, then exact verify.
			if grid.ReferencePointTile(lg.Bounds().Intersect(rg.Bounds())) != tile {
				return
			}
			if !geo.Intersects(lg, rg) {
				return
			}
			out = append(out, joinRecs(l, r))
		}
		for tile, ls := range lTiles {
			rs, ok := rTiles[tile]
			if !ok {
				continue
			}
			if sweep {
				// Plane-sweep candidate generation on MBRs inside the tile.
				lItems := make([]geo.SweepItem, len(ls))
				for i, rec := range ls {
					m, _ := rec[1].MBR()
					lItems[i] = geo.SweepItem{MBR: m, Ref: i}
				}
				rItems := make([]geo.SweepItem, len(rs))
				for i, rec := range rs {
					m, _ := rec[1].MBR()
					rItems[i] = geo.SweepItem{MBR: m, Ref: i}
				}
				geo.PlaneSweepJoin(lItems, rItems, func(li, ri int) {
					emit(tile, ls[li], rs[ri])
				})
			} else {
				for _, l := range ls {
					lb, _ := l[1].MBR()
					for _, r := range rs {
						rb, _ := r[1].MBR()
						if !lb.Intersects(rb) {
							continue
						}
						emit(tile, l, r)
					}
				}
			}
		}
		return out, nil
	})
}
