package builtin

import (
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/geo"
	"fudj/internal/spindex"
	"fudj/internal/types"
)

// SpatialINLJ is the indexed nested-loop join arm from the paper's
// introduction: broadcast the left (indexed) side, bulk-load an R-tree
// over it on every partition, then probe with each local right record
// and verify exactly. No summarize/partition phases — the index *is*
// the pruning — which is why it beats plain NLJ but, unlike the
// partition-based joins, re-broadcasts and re-indexes the whole left
// side everywhere and degrades as the indexed side grows.
// params[0] is accepted (and ignored) so the operator is signature-
// compatible with spatial_join's grid parameter.
func SpatialINLJ(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error) {

	if len(params) > 1 {
		return nil, fmt.Errorf("builtin inlj: at most one (ignored) parameter, got %d", len(params))
	}
	lRepl, err := c.Replicate(left)
	if err != nil {
		return nil, err
	}
	return c.Run(right, func(part int, in []types.Record) ([]types.Record, error) {
		// Build the per-partition index over the broadcast left side.
		lRecs := lRepl[part]
		entries := make([]spindex.Entry, 0, len(lRecs))
		lKeys := make([]types.Value, len(lRecs))
		for i, rec := range lRecs {
			v, err := leftKey(rec)
			if err != nil {
				return nil, err
			}
			m, ok := v.MBR()
			if !ok {
				return nil, fmt.Errorf("builtin inlj: left key %v is not spatial", v.Kind())
			}
			lKeys[i] = v
			entries = append(entries, spindex.Entry{MBR: m, Ref: i})
		}
		tree := spindex.Build(entries)

		var out []types.Record
		for _, rec := range in {
			v, err := rightKey(rec)
			if err != nil {
				return nil, err
			}
			m, ok := v.MBR()
			if !ok {
				return nil, fmt.Errorf("builtin inlj: right key %v is not spatial", v.Kind())
			}
			rg, _ := v.Geometry()
			tree.Search(m, func(e spindex.Entry) {
				lg, _ := lKeys[e.Ref].Geometry()
				if !geo.Intersects(lg, rg) {
					return
				}
				joined := make(types.Record, 0, len(lRecs[e.Ref])+len(rec))
				joined = append(joined, lRecs[e.Ref]...)
				joined = append(joined, rec...)
				out = append(out, joined)
			})
		}
		return out, nil
	})
}
