package builtin

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/text"
	"fudj/internal/types"
)

func newCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Nodes: 2, CoresPerNode: 2})
}

// keyCol returns an evaluator reading column idx.
func keyCol(idx int) expr.Evaluator {
	return func(r types.Record) (types.Value, error) { return r[idx], nil }
}

func fingerprint(d cluster.Data) []string {
	var out []string
	for _, part := range d {
		for _, rec := range part {
			out = append(out, rec.String())
		}
	}
	sort.Strings(out)
	return out
}

func sameData(t *testing.T, name string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d rows", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: row %d differs:\n  %s\n  %s", name, i, a[i], b[i])
		}
	}
}

// nljReference joins with a brute-force predicate, producing the same
// l++r record layout as the operators.
func nljReference(left, right cluster.Data, pred func(l, r types.Value) bool) []string {
	var out []string
	for _, lp := range left {
		for _, l := range lp {
			for _, rp := range right {
				for _, r := range rp {
					if pred(l[0], r[0]) {
						joined := append(append(types.Record{}, l...), r...)
						out = append(out, joined.String())
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

func spatialData(rng *rand.Rand, c *cluster.Cluster, n int) cluster.Data {
	recs := make([]types.Record, n)
	for i := range recs {
		x, y := rng.Float64()*80, rng.Float64()*80
		if i%2 == 0 {
			recs[i] = types.Record{types.NewPoint(geo.Point{X: x, Y: y}), types.NewInt64(int64(i))}
		} else {
			w, h := rng.Float64()*6+0.5, rng.Float64()*6+0.5
			recs[i] = types.Record{
				types.NewPolygon(geo.NewPolygon([]geo.Point{
					{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
				})),
				types.NewInt64(int64(i)),
			}
		}
	}
	return c.Scatter(recs)
}

func TestSpatialVariantsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c := newCluster()
	left := spatialData(rng, c, 100)
	right := spatialData(rng, c, 80)
	want := nljReference(left, right, func(l, r types.Value) bool {
		lg, _ := l.Geometry()
		rg, _ := r.Geometry()
		return geo.Intersects(lg, rg)
	})
	for _, n := range []int64{1, 4, 16} {
		params := []types.Value{types.NewInt64(n)}
		got, err := SpatialPBSM(c, left, keyCol(0), right, keyCol(0), params)
		if err != nil {
			t.Fatal(err)
		}
		sameData(t, fmt.Sprintf("pbsm n=%d", n), fingerprint(got), want)

		got, err = SpatialPlaneSweep(c, left, keyCol(0), right, keyCol(0), params)
		if err != nil {
			t.Fatal(err)
		}
		sameData(t, fmt.Sprintf("sweep n=%d", n), fingerprint(got), want)
	}
}

func TestSpatialINLJMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := newCluster()
	left := spatialData(rng, c, 90)
	right := spatialData(rng, c, 70)
	want := nljReference(left, right, func(l, r types.Value) bool {
		lg, _ := l.Geometry()
		rg, _ := r.Geometry()
		return geo.Intersects(lg, rg)
	})
	got, err := SpatialINLJ(c, left, keyCol(0), right, keyCol(0), []types.Value{types.NewInt64(0)})
	if err != nil {
		t.Fatal(err)
	}
	sameData(t, "inlj", fingerprint(got), want)
	// No parameter at all is also fine; two parameters are not.
	if _, err := SpatialINLJ(c, left, keyCol(0), right, keyCol(0), nil); err != nil {
		t.Errorf("paramless INLJ: %v", err)
	}
	if _, err := SpatialINLJ(c, left, keyCol(0), right, keyCol(0),
		[]types.Value{types.NewInt64(0), types.NewInt64(0)}); err == nil {
		t.Error("two params should be rejected")
	}
}

func TestSpatialBadParams(t *testing.T) {
	c := newCluster()
	empty := c.NewData()
	for _, params := range [][]types.Value{
		nil,
		{types.NewFloat64(3)},
		{types.NewInt64(0)},
		{types.NewInt64(4), types.NewInt64(4)},
	} {
		if _, err := SpatialPBSM(c, empty, keyCol(0), empty, keyCol(0), params); err == nil {
			t.Errorf("params %v should be rejected", params)
		}
	}
}

func intervalData(rng *rand.Rand, c *cluster.Cluster, n int) cluster.Data {
	recs := make([]types.Record, n)
	for i := range recs {
		s := rng.Int63n(4000)
		recs[i] = types.Record{
			types.NewInterval(interval.Interval{Start: s, End: s + rng.Int63n(250)}),
			types.NewInt64(int64(i)),
		}
	}
	return c.Scatter(recs)
}

func TestIntervalMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := newCluster()
	left := intervalData(rng, c, 90)
	right := intervalData(rng, c, 70)
	want := nljReference(left, right, func(l, r types.Value) bool {
		return l.Interval().Overlaps(r.Interval())
	})
	for _, n := range []int64{1, 16, 256} {
		got, err := IntervalOIP(c, left, keyCol(0), right, keyCol(0), []types.Value{types.NewInt64(n)})
		if err != nil {
			t.Fatal(err)
		}
		sameData(t, fmt.Sprintf("interval n=%d", n), fingerprint(got), want)
	}
}

func TestIntervalBadParams(t *testing.T) {
	c := newCluster()
	empty := c.NewData()
	for _, params := range [][]types.Value{nil, {types.NewInt64(0)}, {types.NewFloat64(1)}} {
		if _, err := IntervalOIP(c, empty, keyCol(0), empty, keyCol(0), params); err == nil {
			t.Errorf("params %v should be rejected", params)
		}
	}
}

func textData(rng *rand.Rand, c *cluster.Cluster, n int) cluster.Data {
	vocab := []string{"river", "scenic", "camping", "trail", "lake", "forest", "desert", "historic", "monument", "canyon"}
	recs := make([]types.Record, n)
	for i := range recs {
		k := 3 + rng.Intn(4)
		words := make([]string, k)
		for j := range words {
			idx := rng.Intn(len(vocab))
			if rng.Intn(3) > 0 {
				idx = rng.Intn(len(vocab) / 2)
			}
			words[j] = vocab[idx]
		}
		recs[i] = types.Record{types.NewString(strings.Join(words, " ")), types.NewInt64(int64(i))}
	}
	return c.Scatter(recs)
}

func TestTextSimilarityMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c := newCluster()
	left := textData(rng, c, 80)
	right := textData(rng, c, 60)
	for _, threshold := range []float64{0.6, 0.8, 0.9} {
		want := nljReference(left, right, func(l, r types.Value) bool {
			return text.Jaccard(text.Tokenize(l.Str()), text.Tokenize(r.Str())) >= threshold
		})
		got, err := TextSimilarity(c, left, keyCol(0), right, keyCol(0), []types.Value{types.NewFloat64(threshold)})
		if err != nil {
			t.Fatal(err)
		}
		sameData(t, fmt.Sprintf("textsim t=%v", threshold), fingerprint(got), want)
	}
}

func TestTextSimilarityBadParams(t *testing.T) {
	c := newCluster()
	empty := c.NewData()
	for _, params := range [][]types.Value{nil, {types.NewFloat64(0)}, {types.NewFloat64(1.5)}, {types.NewInt64(1)}} {
		if _, err := TextSimilarity(c, empty, keyCol(0), empty, keyCol(0), params); err == nil {
			t.Errorf("params %v should be rejected", params)
		}
	}
}

func TestSmallestSharedRank(t *testing.T) {
	rt := text.BuildRankTable(map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4})
	// With threshold 0.5 and 2 tokens, prefix length is 2: all ranks.
	if got := smallestSharedRank(rt, []string{"a", "c"}, []string{"c", "d"}, 0.5); got != rt.Rank("c") {
		t.Errorf("smallestSharedRank = %d, want rank of c", got)
	}
	if got := smallestSharedRank(rt, []string{"a"}, []string{"d"}, 0.5); got != -1 {
		t.Errorf("disjoint prefixes should be -1, got %d", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	c := newCluster()
	empty := c.NewData()
	if got, err := SpatialPBSM(c, empty, keyCol(0), empty, keyCol(0), []types.Value{types.NewInt64(4)}); err != nil || got.Rows() != 0 {
		t.Errorf("spatial empty: %v rows %d", err, got.Rows())
	}
	if got, err := IntervalOIP(c, empty, keyCol(0), empty, keyCol(0), []types.Value{types.NewInt64(4)}); err != nil || got.Rows() != 0 {
		t.Errorf("interval empty: %v rows %d", err, got.Rows())
	}
	if got, err := TextSimilarity(c, empty, keyCol(0), empty, keyCol(0), []types.Value{types.NewFloat64(0.9)}); err != nil || got.Rows() != 0 {
		t.Errorf("textsim empty: %v rows %d", err, got.Rows())
	}
}
