package builtin

import (
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/text"
	"fudj/internal/types"
)

// TextSimilarity is the hand-built prefix-filtering set-similarity
// join. Unlike the FUDJ version it tokenizes each record once and
// carries the token list through the pipeline — the kind of local
// optimization a built-in operator can apply. params[0] is the Jaccard
// threshold.
func TextSimilarity(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error) {

	if len(params) != 1 || params[0].Kind() != types.KindFloat64 {
		return nil, fmt.Errorf("builtin textsim: want one float threshold parameter")
	}
	threshold := params[0].Float64()
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("builtin textsim: threshold %v out of (0,1]", threshold)
	}

	countTokens := func(data cluster.Data, key expr.Evaluator) (map[string]int64, error) {
		parts, err := cluster.RunValues(c, data, func(_ int, in []types.Record) (map[string]int64, error) {
			m := make(map[string]int64)
			for _, rec := range in {
				v, err := key(rec)
				if err != nil {
					return nil, err
				}
				for _, tok := range text.Tokenize(v.Str()) {
					m[tok]++
				}
			}
			return m, nil
		})
		if err != nil {
			return nil, err
		}
		acc := make(map[string]int64)
		for _, p := range parts {
			for tok, n := range p {
				acc[tok] += n
			}
		}
		return acc, nil
	}
	lCounts, err := countTokens(left, leftKey)
	if err != nil {
		return nil, err
	}
	rCounts, err := countTokens(right, rightKey)
	if err != nil {
		return nil, err
	}
	for tok, n := range rCounts {
		lCounts[tok] += n
	}
	ranks := text.BuildRankTable(lCounts)

	// Assign: record becomes [rank, tokenList, fields...] — tokens cached.
	assign := func(data cluster.Data, key expr.Evaluator) (cluster.Data, error) {
		return c.Run(data, func(_ int, in []types.Record) ([]types.Record, error) {
			var out []types.Record
			for _, rec := range in {
				v, err := key(rec)
				if err != nil {
					return nil, err
				}
				tokens := text.Tokenize(v.Str())
				tokenVals := make([]types.Value, len(tokens))
				for i, tok := range tokens {
					tokenVals[i] = types.NewString(tok)
				}
				list := types.NewList(tokenVals)
				for _, rank := range ranks.PrefixRanks(tokens, threshold) {
					out = append(out, tag(rank, list, rec))
				}
			}
			return out, nil
		})
	}
	lAssigned, err := assign(left, leftKey)
	if err != nil {
		return nil, err
	}
	rAssigned, err := assign(right, rightKey)
	if err != nil {
		return nil, err
	}
	rankHash := func(r types.Record) uint64 { return r[0].Hash() }
	lShuf, err := c.ExchangeHash(lAssigned, rankHash)
	if err != nil {
		return nil, err
	}
	rShuf, err := c.ExchangeHash(rAssigned, rankHash)
	if err != nil {
		return nil, err
	}

	tokensOf := func(rec types.Record) []string {
		list := rec[1].List()
		out := make([]string, len(list))
		for i, v := range list {
			out[i] = v.Str()
		}
		return out
	}
	return c.Run(lShuf, func(part int, in []types.Record) ([]types.Record, error) {
		lBuckets := groupByBucket(in)
		rBuckets := groupByBucket(rShuf[part])
		var out []types.Record
		// Walk ranks in sorted order so emitted record order is
		// identical across retried attempts (fudjvet: maporder).
		for _, rank := range sortedBuckets(lBuckets) {
			ls := lBuckets[rank]
			rs, ok := rBuckets[rank]
			if !ok {
				continue
			}
			for _, l := range ls {
				lt := tokensOf(l)
				for _, r := range rs {
					rt := tokensOf(r)
					if text.Jaccard(lt, rt) < threshold {
						continue
					}
					// Duplicate avoidance: emit only in the smallest shared
					// prefix rank of the pair.
					if smallestSharedRank(ranks, lt, rt, threshold) != rank {
						continue
					}
					out = append(out, joinRecs(l, r))
				}
			}
		}
		return out, nil
	})
}

// smallestSharedRank returns the smallest rank present in both records'
// prefixes — the canonical bucket for a joining pair.
func smallestSharedRank(rt *text.RankTable, a, b []string, threshold float64) int {
	pa := rt.PrefixRanks(a, threshold)
	pb := rt.PrefixRanks(b, threshold)
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i] == pb[j]:
			return pa[i]
		case pa[i] < pb[j]:
			i++
		default:
			j++
		}
	}
	return -1
}
