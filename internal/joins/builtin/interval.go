package builtin

import (
	"fmt"

	"fudj/internal/cluster"
	"fudj/internal/expr"
	"fudj/internal/interval"
	"fudj/internal/types"
)

// IntervalOIP is the hand-built overlapping-interval join: granule
// partitioning with packed bucket ids, broadcast + random partitioning
// for the theta bucket matching, exact overlap verification.
// params[0] is the granule count.
func IntervalOIP(c *cluster.Cluster, left cluster.Data, leftKey expr.Evaluator,
	right cluster.Data, rightKey expr.Evaluator, params []types.Value) (cluster.Data, error) {

	if len(params) != 1 || params[0].Kind() != types.KindInt64 {
		return nil, fmt.Errorf("builtin interval: want one integer granule-count parameter")
	}
	n := int(params[0].Int64())
	if n < 1 || n > interval.MaxGranules {
		return nil, fmt.Errorf("builtin interval: granule count %d out of range", n)
	}

	type extent struct {
		min, max int64
		empty    bool
	}
	extentOf := func(data cluster.Data, key expr.Evaluator) (extent, error) {
		parts, err := cluster.RunValues(c, data, func(_ int, in []types.Record) (extent, error) {
			e := extent{min: 1 << 62, max: -(1 << 62), empty: true}
			for _, rec := range in {
				v, err := key(rec)
				if err != nil {
					return e, err
				}
				iv := v.Interval()
				if iv.Start < e.min {
					e.min = iv.Start
				}
				if iv.End > e.max {
					e.max = iv.End
				}
				e.empty = false
			}
			return e, nil
		})
		if err != nil {
			return extent{}, err
		}
		acc := extent{min: 1 << 62, max: -(1 << 62), empty: true}
		for _, p := range parts {
			if p.empty {
				continue
			}
			if p.min < acc.min {
				acc.min = p.min
			}
			if p.max > acc.max {
				acc.max = p.max
			}
			acc.empty = false
		}
		return acc, nil
	}
	le, err := extentOf(left, leftKey)
	if err != nil {
		return nil, err
	}
	re, err := extentOf(right, rightKey)
	if err != nil {
		return nil, err
	}
	min, max := le.min, le.max
	if re.min < min {
		min = re.min
	}
	if re.max > max {
		max = re.max
	}
	if le.empty && re.empty {
		min, max = 0, 0
	}
	g := interval.NewGranulator(min, max, n)

	assign := func(data cluster.Data, key expr.Evaluator) (cluster.Data, error) {
		return c.Run(data, func(_ int, in []types.Record) ([]types.Record, error) {
			out := make([]types.Record, 0, len(in))
			for _, rec := range in {
				v, err := key(rec)
				if err != nil {
					return nil, err
				}
				out = append(out, tag(g.Bucket(v.Interval()), v, rec))
			}
			return out, nil
		})
	}
	lAssigned, err := assign(left, leftKey)
	if err != nil {
		return nil, err
	}
	rAssigned, err := assign(right, rightKey)
	if err != nil {
		return nil, err
	}
	lRepl, err := c.Replicate(lAssigned)
	if err != nil {
		return nil, err
	}
	rRand, err := c.ExchangeRandom(rAssigned)
	if err != nil {
		return nil, err
	}
	return c.Run(rRand, func(part int, in []types.Record) ([]types.Record, error) {
		lBuckets := groupByBucket(lRepl[part])
		rBuckets := groupByBucket(in)
		var out []types.Record
		// Walk buckets in sorted-id order so emitted record order is
		// identical across retried attempts (fudjvet: maporder).
		rOrder := sortedBuckets(rBuckets)
		for _, b1 := range sortedBuckets(lBuckets) {
			ls := lBuckets[b1]
			for _, b2 := range rOrder {
				rs := rBuckets[b2]
				if !interval.BucketsOverlap(b1, b2) {
					continue
				}
				for _, l := range ls {
					li := l[1].Interval()
					for _, r := range rs {
						if li.Overlaps(r[1].Interval()) {
							out = append(out, joinRecs(l, r))
						}
					}
				}
			}
		}
		return out, nil
	})
}
