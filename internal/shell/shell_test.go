package shell

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
)

func tinyConfig() Config {
	return Config{Nodes: 2, Cores: 1, Records: 100, LoadDemo: true}
}

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"  ;  ; ", nil},
		{"SELECT 1", []string{"SELECT 1"}},
		{"a; b ; c", []string{"a", "b", "c"}},
		{"SELECT 'a;b'; SELECT 2", []string{"SELECT 'a;b'", "SELECT 2"}},
		{`CREATE JOIN j(a: int, b: int) RETURNS boolean AS "x;y" AT lib; DROP JOIN j`,
			[]string{`CREATE JOIN j(a: int, b: int) RETURNS boolean AS "x;y" AT lib`, "DROP JOIN j"}},
	}
	for _, c := range cases {
		if got := SplitStatements(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("SplitStatements(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSetupAndExecuteAll(t *testing.T) {
	db, err := Setup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = ExecuteAll(context.Background(), NewLocal(db), &out, `
		SELECT COUNT(*) FROM parks p;
		SELECT COUNT(*) FROM parks p, wildfires w WHERE spatial_join(p.boundary, w.location, 8);`, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "count(1)") {
		t.Errorf("output missing header:\n%s", s)
	}
	if !strings.Contains(s, "100") { // parks count
		t.Errorf("output missing parks count:\n%s", s)
	}
	if !strings.Contains(s, "candidates") {
		t.Errorf("output missing stats line:\n%s", s)
	}
}

func TestExecuteAllPropagatesErrors(t *testing.T) {
	db, err := Setup(Config{Nodes: 1, Cores: 1, LoadDemo: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := ExecuteAll(context.Background(), NewLocal(db), &bytes.Buffer{}, "SELECT * FROM nothing", false, nil); err == nil {
		t.Error("bad statement should error")
	}
}

func TestSetupEmpty(t *testing.T) {
	db, err := Setup(Config{Nodes: 1, Cores: 1, LoadDemo: false})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Catalog().Datasets(); len(got) != 0 {
		t.Errorf("empty setup has datasets %v", got)
	}
	// Libraries are installed even without demo data.
	if _, err := db.Catalog().Library("spatialjoins"); err != nil {
		t.Error(err)
	}
}

func TestRepl(t *testing.T) {
	db, err := Setup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	in := strings.NewReader(`\help
\datasets
\joins
SELECT COUNT(*)
FROM parks p;
SELECT broken;
\q
`)
	var out bytes.Buffer
	Repl(NewLocal(db), in, &out, nil)
	s := out.String()
	for _, want := range []string{"fudj>", "parks", "spatial_join", "count(1)", "error:"} {
		if !strings.Contains(s, want) {
			t.Errorf("repl output missing %q:\n%s", want, s)
		}
	}
}

func TestReplEOF(t *testing.T) {
	db, err := Setup(Config{Nodes: 1, Cores: 1, LoadDemo: false})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	Repl(NewLocal(db), strings.NewReader(""), &out, nil) // must return, not hang
	if !strings.Contains(out.String(), "fudj>") {
		t.Error("no prompt printed")
	}
}

func TestSaveLoadCommands(t *testing.T) {
	db, err := Setup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/parks.fudj"
	in := strings.NewReader(`\save parks ` + path + `
\load parks2 ` + path + `
SELECT COUNT(*) FROM parks2 p;
\save nosuch ` + path + `
\load parks ` + path + `
\save toofew
\q
`)
	var out bytes.Buffer
	Repl(NewLocal(db), in, &out, nil)
	s := out.String()
	if strings.Count(s, "ok") < 2 {
		t.Errorf("save/load did not both succeed:\n%s", s)
	}
	if !strings.Contains(s, "100") {
		t.Errorf("reloaded dataset query failed:\n%s", s)
	}
	// Missing dataset, duplicate name, and bad arity all report errors.
	if strings.Count(s, "error:") < 3 {
		t.Errorf("expected three errors:\n%s", s)
	}
}

func TestPrintResultTruncation(t *testing.T) {
	db, err := Setup(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Execute(`SELECT p.id FROM parks p`)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	PrintResult(&out, res)
	if !strings.Contains(out.String(), "more rows") {
		t.Errorf("expected truncation marker for 100 rows:\n%.200s", out.String())
	}
}
