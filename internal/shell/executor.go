// Executor abstracts where the shell's statements run: in-process
// against a *fudj.DB, or across the wire against a fudjd server. The
// REPL is identical either way — same rendering, same error taxonomy,
// same cancellation story — which is the point: the network layer is
// not allowed to change the programming model.
package shell

import (
	"context"
	"sync"

	"fudj"
	"fudj/internal/serve"
	"fudj/internal/serve/client"
	"fudj/internal/trace"
)

// Outcome is one statement's result plus its rendered trace (when
// tracing was requested). Remote executions carry the server-rendered
// span lines; local ones render from the in-memory span tree.
type Outcome struct {
	Res        *fudj.Result
	TraceLines []string
}

// Executor runs statements somewhere.
type Executor interface {
	// Execute runs one statement. Cancel ctx to abort it.
	Execute(ctx context.Context, sql string, traced bool) (*Outcome, error)
	// Datasets and Joins list the catalog for the backslash commands.
	Datasets() ([]string, error)
	Joins() ([]string, error)
	// DB exposes the local database, or nil when remote (\save, \load
	// and Chrome trace export need in-process access).
	DB() *fudj.DB
	// Close releases the executor's resources.
	Close() error
}

// Local is the in-process Executor.
type Local struct {
	db *fudj.DB
}

// NewLocal wraps an open database.
func NewLocal(db *fudj.DB) *Local { return &Local{db: db} }

// Execute implements Executor.
func (l *Local) Execute(ctx context.Context, sql string, traced bool) (*Outcome, error) {
	var opts []fudj.ExecOption
	if traced {
		opts = append(opts, fudj.Trace())
	}
	res, err := l.db.ExecuteContext(ctx, sql, opts...)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Res: res}
	if traced && res.Trace != nil && !isExplainAnalyze(res) {
		out.TraceLines = trace.RenderLines(res.Trace, trace.RenderOptions{CollapseTasks: true})
	}
	return out, nil
}

// isExplainAnalyze reports whether the result already carries its span
// render in its rows (EXPLAIN ANALYZE), so printing the trace again
// would duplicate it.
func isExplainAnalyze(res *fudj.Result) bool {
	return res.Schema != nil && res.Schema.Len() == 1 && res.Schema.Fields[0].Name == "plan"
}

// Datasets implements Executor.
func (l *Local) Datasets() ([]string, error) { return l.db.Catalog().Datasets(), nil }

// Joins implements Executor.
func (l *Local) Joins() ([]string, error) { return l.db.Catalog().Joins(), nil }

// DB implements Executor.
func (l *Local) DB() *fudj.DB { return l.db }

// Close implements Executor.
func (l *Local) Close() error { return nil }

// Conn is the connection surface Remote needs — satisfied by both
// *client.Client (one server) and *client.Pool (failover across
// several), so the shell is indifferent to how many instances stand
// behind its prompt.
type Conn interface {
	Query(ctx context.Context, sql string, opts ...client.QueryOption) (*client.Result, error)
	Metrics(ctx context.Context) (serve.MetricsSnapshot, error)
	Catalog(ctx context.Context) (datasets, joins []string, err error)
	Close()
}

// Remote is the network Executor: statements travel to one or more
// fudjd servers through the retrying client or failover pool.
type Remote struct {
	c Conn
}

// NewRemote wraps a connected client or pool.
func NewRemote(c Conn) *Remote { return &Remote{c: c} }

// Execute implements Executor.
func (r *Remote) Execute(ctx context.Context, sql string, traced bool) (*Outcome, error) {
	var opts []client.QueryOption
	if traced {
		opts = append(opts, client.WithTrace())
	}
	res, err := r.c.Query(ctx, sql, opts...)
	if err != nil {
		return nil, err
	}
	return &Outcome{Res: res.Result, TraceLines: res.TraceLines}, nil
}

// Datasets implements Executor.
func (r *Remote) Datasets() ([]string, error) {
	ds, _, err := r.c.Catalog(context.Background())
	return ds, err
}

// Joins implements Executor.
func (r *Remote) Joins() ([]string, error) {
	_, js, err := r.c.Catalog(context.Background())
	return js, err
}

// DB implements Executor.
func (r *Remote) DB() *fudj.DB { return nil }

// Close implements Executor.
func (r *Remote) Close() error { r.c.Close(); return nil }

// Metrics fetches the server's metrics snapshot (the \metrics command).
func (r *Remote) Metrics(ctx context.Context) (serve.MetricsSnapshot, error) {
	return r.c.Metrics(ctx)
}

// Canceler hands the in-flight query's cancel function to a signal
// handler: the first Ctrl-C cancels the query instead of the shell,
// the next one (nothing left to cancel) exits. Safe for concurrent use.
type Canceler struct {
	mu     sync.Mutex
	cancel context.CancelFunc
}

// NewCanceler returns an empty canceler.
func NewCanceler() *Canceler { return &Canceler{} }

// set installs the active query's cancel function.
func (c *Canceler) set(f context.CancelFunc) {
	c.mu.Lock()
	c.cancel = f
	c.mu.Unlock()
}

// clear removes it when the query finishes.
func (c *Canceler) clear() { c.set(nil) }

// CancelActive cancels the in-flight query, if any, consuming the
// registration so a second call reports false and the caller can exit.
func (c *Canceler) CancelActive() bool {
	c.mu.Lock()
	f := c.cancel
	c.cancel = nil
	c.mu.Unlock()
	if f == nil {
		return false
	}
	f()
	return true
}

// run executes one statement under a cancelable context registered
// with c (when non-nil).
func run(ctx context.Context, ex Executor, c *Canceler, sql string, traced bool) (*Outcome, error) {
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if c != nil {
		c.set(cancel)
		defer c.clear()
	}
	return ex.Execute(qctx, sql, traced)
}
