// Package shell implements the interactive SQL shell behind
// cmd/fudjsh: statement splitting, the read-eval-print loop, result
// rendering, and the demo environment setup.
package shell

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"context"
	"fudj"

	"fudj/internal/storage"
	"fudj/internal/trace"
)

// Config controls the demo environment the shell opens with.
type Config struct {
	Nodes    int
	Cores    int
	Records  int  // per demo dataset
	LoadDemo bool // load datasets + create the three joins
}

// DefaultConfig returns the interactive defaults.
func DefaultConfig() Config {
	return Config{Nodes: 4, Cores: 2, Records: 2000, LoadDemo: true}
}

// Setup opens a database per the config: libraries installed, demo
// datasets loaded, joins created, and built-in operators registered.
func Setup(cfg Config) (*fudj.DB, error) {
	db, err := fudj.Open(fudj.WithCluster(cfg.Nodes, cfg.Cores))
	if err != nil {
		return nil, err
	}
	for _, lib := range []*fudj.Library{
		fudj.SpatialLibrary(), fudj.TextSimilarityLibrary(), fudj.IntervalLibrary(),
	} {
		if err := db.InstallLibrary(lib); err != nil {
			return nil, err
		}
	}
	if !cfg.LoadDemo {
		return db, nil
	}
	for name, ds := range map[string]*fudj.GeneratedDataset{
		"parks":        fudj.GenParks(1, cfg.Records),
		"wildfires":    fudj.GenWildfires(2, 2*cfg.Records),
		"nyctaxi":      fudj.GenNYCTaxi(3, 2*cfg.Records),
		"amazonreview": fudj.GenAmazonReview(4, 2*cfg.Records),
	} {
		if err := fudj.LoadGenerated(db, name, ds); err != nil {
			return nil, err
		}
	}
	ddl := []string{
		`CREATE JOIN spatial_join(a: geometry, b: geometry, n: int) RETURNS boolean AS "pbsm.SpatialJoin" AT spatialjoins`,
		`CREATE JOIN text_similarity_join(a: string, b: string, t: double) RETURNS boolean AS "setsimilarity.SetSimilarityJoin" AT flexiblejoins`,
		`CREATE JOIN overlapping_interval(a: interval, b: interval, n: int) RETURNS boolean AS "oip.IntervalJoin" AT intervaljoins`,
	}
	for _, stmt := range ddl {
		if _, err := db.Execute(stmt); err != nil {
			return nil, err
		}
	}
	db.RegisterBuiltinJoin("spatial_join", fudj.BuiltinSpatialPBSM)
	db.RegisterBuiltinJoin("text_similarity_join", fudj.BuiltinTextSimilarity)
	db.RegisterBuiltinJoin("overlapping_interval", fudj.BuiltinIntervalOIP)
	return db, nil
}

// SplitStatements splits input on ';' outside of quoted strings.
func SplitStatements(s string) []string {
	var out []string
	var cur strings.Builder
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inQuote != 0:
			cur.WriteByte(c)
			if c == inQuote {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
			cur.WriteByte(c)
		case c == ';':
			if t := strings.TrimSpace(cur.String()); t != "" {
				out = append(out, t)
			}
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		out = append(out, t)
	}
	return out
}

// MaxDisplayRows caps result rendering.
const MaxDisplayRows = 50

// PrintResult renders one query result to w.
func PrintResult(w io.Writer, res *fudj.Result) {
	if res.Schema != nil {
		names := make([]string, res.Schema.Len())
		for i, f := range res.Schema.Fields {
			names[i] = f.Name
		}
		fmt.Fprintln(w, strings.Join(names, " | "))
	}
	for i, row := range res.Rows {
		if i == MaxDisplayRows {
			fmt.Fprintf(w, "... (%d more rows)\n", len(res.Rows)-MaxDisplayRows)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		fmt.Fprintln(w, strings.Join(cells, " | "))
	}
	if res.Elapsed > 0 {
		fmt.Fprintf(w, "(%d rows, %v, %d bytes shuffled, %d candidates -> %d verified)\n",
			len(res.Rows), res.Elapsed.Round(1000), res.Cluster.BytesShuffled,
			res.Join.Candidates, res.Join.Verified)
	}
}

// printTiming renders the per-phase breakdown behind \timing on.
func printTiming(w io.Writer, res *fudj.Result) {
	if res.Join.SummarizeTime+res.Join.PartitionTime+res.Join.CombineTime == 0 {
		return
	}
	fmt.Fprintf(w, "timing: SUMMARIZE %v  PARTITION %v  COMBINE %v\n",
		res.Join.SummarizeTime.Round(1000),
		res.Join.PartitionTime.Round(1000),
		res.Join.CombineTime.Round(1000))
}

// printTrace prints an outcome's rendered span lines.
func printTrace(w io.Writer, lines []string) {
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
}

// ExecuteAll runs each ';'-separated statement on the executor,
// printing results to w. Cancel ctx (or the canceler) to abort the
// in-flight statement; c may be nil.
func ExecuteAll(ctx context.Context, ex Executor, w io.Writer, input string, traced bool, c *Canceler) error {
	for _, stmt := range SplitStatements(input) {
		out, err := run(ctx, ex, c, stmt, traced)
		if err != nil {
			return err
		}
		PrintResult(w, out.Res)
		printTrace(w, out.TraceLines)
	}
	return nil
}

// ExecuteAllChrome is ExecuteAll plus a Chrome trace-event JSON dump of
// the last statement's span tree to path, loadable in Perfetto or
// chrome://tracing. In-process only: span trees do not cross the wire.
func ExecuteAllChrome(ctx context.Context, db *fudj.DB, w io.Writer, input, path string, c *Canceler) error {
	ex := NewLocal(db)
	var last *fudj.Result
	for _, stmt := range SplitStatements(input) {
		out, err := run(ctx, ex, c, stmt, true)
		if err != nil {
			return err
		}
		PrintResult(w, out.Res)
		printTrace(w, out.TraceLines)
		last = out.Res
	}
	if last == nil || last.Trace == nil {
		return fmt.Errorf("no trace collected")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, last.Trace); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// saveLoad handles the \save and \load backslash commands.
func saveLoad(db *fudj.DB, cmd string) error {
	parts := strings.Fields(cmd)
	if len(parts) != 3 {
		return fmt.Errorf("usage: %s <dataset> <file>", parts[0])
	}
	name, path := parts[1], parts[2]
	switch parts[0] {
	case `\save`:
		ds, err := db.Catalog().Dataset(name)
		if err != nil {
			return err
		}
		return storage.SaveFile(path, ds.Name, ds.Schema, ds.Records)
	case `\load`:
		_, schema, recs, err := storage.LoadFile(path)
		if err != nil {
			return err
		}
		return db.CreateDataset(name, schema, recs)
	}
	return fmt.Errorf("unknown command %q", parts[0])
}

// listNames prints a backslash listing or its error.
func listNames(out io.Writer, names []string, err error) {
	if err != nil {
		fmt.Fprintln(out, "error:", err)
		return
	}
	for _, name := range names {
		fmt.Fprintln(out, " ", name)
	}
}

// Repl runs the interactive loop: statements end with ';', backslash
// commands inspect the catalog, \q quits. The canceler (may be nil)
// lets a signal handler cancel the in-flight statement. The returned
// error is the last statement failure, nil if the session ended
// cleanly — script mode uses it for the exit code.
func Repl(ex Executor, in io.Reader, out io.Writer, c *Canceler) error {
	fmt.Fprintln(out, "fudjsh — FUDJ engine shell. Statements end with ';'. \\q quits.")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	var traceOn, timingOn bool
	var lastErr error
	onOff := func(cmd, arg string) (bool, bool) {
		switch arg {
		case "on":
			return true, true
		case "off":
			return false, true
		}
		fmt.Fprintf(out, "usage: %s on|off\n", cmd)
		return false, false
	}
	for {
		if pending.Len() == 0 {
			fmt.Fprint(out, "fudj> ")
		} else {
			fmt.Fprint(out, "   -> ")
		}
		if !sc.Scan() {
			fmt.Fprintln(out)
			return lastErr
		}
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, `\quit`, "exit", "quit":
			return lastErr
		case `\joins`:
			names, err := ex.Joins()
			listNames(out, names, err)
			continue
		case `\datasets`:
			names, err := ex.Datasets()
			listNames(out, names, err)
			continue
		case `\metrics`:
			if r, ok := ex.(*Remote); ok {
				snap, err := r.Metrics(context.Background())
				if err != nil {
					fmt.Fprintln(out, "error:", err)
				} else {
					fmt.Fprintf(out, "instance=%s sessions=%d live=%d draining=%v queries=%d executed=%d replayed=%d refused=%d\n",
						snap.Instance, snap.Sessions, snap.Live, snap.Draining, snap.Server.Queries,
						snap.Server.Executed, snap.Server.Replayed, snap.Server.Refused)
					fmt.Fprintf(out, "replay: records=%d bytes=%d/%d hits=%d evictions=%d\n",
						snap.Replay.Records, snap.Replay.Bytes, snap.Replay.BytesBudget,
						snap.Replay.Hits, snap.Replay.Evictions)
				}
			} else {
				fmt.Fprintln(out, "\\metrics requires -connect")
			}
			continue
		case `\help`:
			fmt.Fprintln(out, `  statements end with ';'
  \datasets            list datasets
  \joins               list installed joins
  \save <name> <file>  save a dataset to a binary file (local only)
  \load <name> <file>  load a dataset from a binary file (local only)
  \metrics             show server metrics (-connect only)
  \trace on|off        print the execution span tree after each query
  \timing on|off       print the per-phase time breakdown
  \q                   quit
  EXPLAIN SELECT ... shows the optimizer plan
  EXPLAIN ANALYZE SELECT ... executes and shows measured per-operator spans
  Ctrl-C cancels the in-flight query; a second Ctrl-C exits`)
			continue
		}
		if strings.HasPrefix(trimmed, `\trace`) || strings.HasPrefix(trimmed, `\timing`) {
			parts := strings.Fields(trimmed)
			arg := ""
			if len(parts) == 2 {
				arg = parts[1]
			}
			if v, ok := onOff(parts[0], arg); ok {
				if parts[0] == `\trace` {
					traceOn = v
				} else {
					timingOn = v
				}
				fmt.Fprintf(out, "%s %s\n", strings.TrimPrefix(parts[0], `\`), arg)
			}
			continue
		}
		if strings.HasPrefix(trimmed, `\save `) || strings.HasPrefix(trimmed, `\load `) {
			db := ex.DB()
			if db == nil {
				fmt.Fprintln(out, "error: \\save and \\load need a local database (not available over -connect)")
				continue
			}
			if err := saveLoad(db, trimmed); err != nil {
				fmt.Fprintln(out, "error:", err)
			} else {
				fmt.Fprintln(out, "ok")
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.Contains(line, ";") {
			input := pending.String()
			pending.Reset()
			for _, stmt := range SplitStatements(input) {
				res, err := run(context.Background(), ex, c, stmt, traceOn)
				if err != nil {
					fmt.Fprintln(out, "error:", err)
					lastErr = err
					break
				}
				lastErr = nil
				PrintResult(out, res.Res)
				if timingOn {
					printTiming(out, res.Res)
				}
				if traceOn {
					printTrace(out, res.TraceLines)
				}
			}
		}
	}
}
