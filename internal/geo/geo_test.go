package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fudj/internal/wire"
)

func rectFrom(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
	}
}

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect is not empty")
	}
	r := rectFrom(0, 0, 1, 1)
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %v, want %v", got, r)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %v, want %v", got, r)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty rect must not intersect anything")
	}
	if e.Area() != 0 || e.Width() != 0 || e.Height() != 0 {
		t.Error("empty rect must have zero extent")
	}
}

func TestRectPredicates(t *testing.T) {
	a := rectFrom(0, 0, 10, 10)
	b := rectFrom(5, 5, 15, 15)
	c := rectFrom(11, 11, 12, 12)
	d := rectFrom(10, 10, 20, 20) // touches a at corner

	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if !a.Intersects(d) {
		t.Error("boundary touch should count as intersection")
	}
	if !a.ContainsPoint(Point{5, 5}) || !a.ContainsPoint(Point{0, 0}) || !a.ContainsPoint(Point{10, 10}) {
		t.Error("ContainsPoint interior/boundary failed")
	}
	if a.ContainsPoint(Point{10.001, 5}) {
		t.Error("ContainsPoint outside failed")
	}
	if !a.ContainsRect(rectFrom(1, 1, 9, 9)) {
		t.Error("ContainsRect inner failed")
	}
	if a.ContainsRect(b) {
		t.Error("ContainsRect partial overlap should be false")
	}
	got := a.Intersect(b)
	want := rectFrom(5, 5, 10, 10)
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if !a.Intersect(c).IsEmpty() {
		t.Error("disjoint Intersect should be empty")
	}
}

func TestRectDistance(t *testing.T) {
	a := rectFrom(0, 0, 1, 1)
	b := rectFrom(4, 0, 5, 1) // 3 apart horizontally
	if got := a.Distance(b); got != 3 {
		t.Errorf("Distance = %v, want 3", got)
	}
	c := rectFrom(4, 5, 5, 6) // 3 right, 4 up -> 5
	if got := a.Distance(c); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
	if got := a.Distance(rectFrom(0.5, 0.5, 2, 2)); got != 0 {
		t.Errorf("overlapping Distance = %v, want 0", got)
	}
}

func TestPointDistance(t *testing.T) {
	if got := (Point{0, 0}).Distance(Point{3, 4}); got != 5 {
		t.Errorf("Distance = %v, want 5", got)
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	// Unit square.
	sq := NewPolygon([]Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}})
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{5, 5}, true},
		{Point{0, 0}, true},   // vertex
		{Point{5, 0}, true},   // edge
		{Point{10, 10}, true}, // far vertex
		{Point{-1, 5}, false},
		{Point{11, 5}, false},
		{Point{5, 10.5}, false},
	}
	for _, c := range cases {
		if got := sq.ContainsPoint(c.p); got != c.want {
			t.Errorf("square.ContainsPoint(%v) = %v, want %v", c.p, got, c.want)
		}
	}

	// Concave "L" polygon.
	l := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}})
	if !l.ContainsPoint(Point{1, 3}) {
		t.Error("L should contain (1,3)")
	}
	if l.ContainsPoint(Point{3, 3}) {
		t.Error("L should not contain (3,3) in the notch")
	}
}

func TestPolygonIntersects(t *testing.T) {
	a := NewPolygon([]Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	b := NewPolygon([]Point{{2, 2}, {6, 2}, {6, 6}, {2, 6}})
	c := NewPolygon([]Point{{10, 10}, {12, 10}, {11, 12}})
	inner := NewPolygon([]Point{{1, 1}, {2, 1}, {2, 2}, {1, 2}})

	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping polygons must intersect")
	}
	if a.Intersects(c) || c.Intersects(a) {
		t.Error("disjoint polygons must not intersect")
	}
	if !a.Intersects(inner) || !inner.Intersects(a) {
		t.Error("containment must count as intersection")
	}
}

func TestPolygonPanicsOnTinyRing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPolygon with 2 vertices should panic")
		}
	}()
	NewPolygon([]Point{{0, 0}, {1, 1}})
}

func TestWireRoundTrip(t *testing.T) {
	e := wire.NewEncoder(0)
	p := Point{1.5, -2.25}
	r := rectFrom(-1, -2, 3, 4)
	poly := NewPolygon([]Point{{0, 0}, {5, 0}, {5, 5}, {0, 5}})
	p.MarshalWire(e)
	r.MarshalWire(e)
	poly.MarshalWire(e)

	d := wire.NewDecoder(e.Bytes())
	var p2 Point
	var r2 Rect
	var poly2 Polygon
	if err := p2.UnmarshalWire(d); err != nil {
		t.Fatal(err)
	}
	if err := r2.UnmarshalWire(d); err != nil {
		t.Fatal(err)
	}
	if err := poly2.UnmarshalWire(d); err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("point round trip: %v != %v", p2, p)
	}
	if r2 != r {
		t.Errorf("rect round trip: %v != %v", r2, r)
	}
	if len(poly2.Ring) != 4 || poly2.MBR() != poly.MBR() {
		t.Errorf("polygon round trip: %v != %v", &poly2, poly)
	}
	if d.Remaining() != 0 {
		t.Errorf("decoder has %d leftover bytes", d.Remaining())
	}
}

func TestGridTiles(t *testing.T) {
	g := NewGrid(rectFrom(0, 0, 10, 10), 5)
	if g.NumTiles() != 25 {
		t.Fatalf("NumTiles = %d, want 25", g.NumTiles())
	}
	if got := g.Tile(0); got != rectFrom(0, 0, 2, 2) {
		t.Errorf("Tile(0) = %v", got)
	}
	if got := g.Tile(24); got != rectFrom(8, 8, 10, 10) {
		t.Errorf("Tile(24) = %v", got)
	}
	// A rect inside one tile.
	ids := g.OverlappingTiles(rectFrom(0.5, 0.5, 1.5, 1.5), nil)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("OverlappingTiles single = %v", ids)
	}
	// A rect spanning 2x2 tiles.
	ids = g.OverlappingTiles(rectFrom(1.5, 1.5, 2.5, 2.5), nil)
	if len(ids) != 4 {
		t.Errorf("OverlappingTiles 2x2 = %v", ids)
	}
	// Out-of-space rect clamps rather than drops.
	ids = g.OverlappingTiles(rectFrom(-5, -5, -4, -4), nil)
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("OverlappingTiles clamped = %v", ids)
	}
}

func TestGridPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewGrid(_, 0) should panic")
		}
	}()
	NewGrid(rectFrom(0, 0, 1, 1), 0)
}

func TestReferencePointTile(t *testing.T) {
	g := NewGrid(rectFrom(0, 0, 10, 10), 5)
	// Rect spanning tiles 0,1,5,6: reference point (its MinX/MinY corner)
	// is in tile 0.
	r := rectFrom(1.5, 1.5, 2.5, 2.5)
	if got := g.ReferencePointTile(r); got != 0 {
		t.Errorf("ReferencePointTile = %d, want 0", got)
	}
	ids := g.OverlappingTiles(r, nil)
	found := false
	for _, id := range ids {
		if id == g.ReferencePointTile(r) {
			found = true
		}
	}
	if !found {
		t.Error("reference tile must be among the overlapping tiles")
	}
}

// Property: the reference point tile of the intersection of two
// overlapping rects is an overlapping tile of BOTH rects — this is what
// makes reference-point deduplication lossless.
func TestQuickReferencePointSound(t *testing.T) {
	g := NewGrid(rectFrom(0, 0, 100, 100), 8)
	rng := rand.New(rand.NewSource(7))
	randRect := func() Rect {
		x, y := rng.Float64()*90, rng.Float64()*90
		return rectFrom(x, y, x+rng.Float64()*10, y+rng.Float64()*10)
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randRect(), randRect()
		if !a.Intersects(b) {
			continue
		}
		ref := g.ReferencePointTile(a.Intersect(b))
		inA, inB := false, false
		for _, id := range g.OverlappingTiles(a, nil) {
			if id == ref {
				inA = true
			}
		}
		for _, id := range g.OverlappingTiles(b, nil) {
			if id == ref {
				inB = true
			}
		}
		if !inA || !inB {
			t.Fatalf("trial %d: ref tile %d not shared (a=%v b=%v)", trial, ref, a, b)
		}
	}
}

// Property: two intersecting rects always share at least one grid tile,
// so grid partitioning never loses a result (completeness of PBSM).
func TestQuickGridCompleteness(t *testing.T) {
	g := NewGrid(rectFrom(0, 0, 1, 1), 16)
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 1) }
		a := rectFrom(norm(ax), norm(ay), norm(ax)+norm(aw)/4, norm(ay)+norm(ah)/4)
		b := rectFrom(norm(bx), norm(by), norm(bx)+norm(bw)/4, norm(by)+norm(bh)/4)
		if !a.Intersects(b) {
			return true
		}
		ta := g.OverlappingTiles(a, nil)
		tb := g.OverlappingTiles(b, nil)
		set := make(map[int]bool, len(ta))
		for _, id := range ta {
			set[id] = true
		}
		for _, id := range tb {
			if set[id] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: rect intersection is symmetric and Union is commutative,
// associative enough for summary merging (MBR aggregation order must
// not matter for the final summary).
func TestQuickRectAlgebra(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		ok := func(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
		for _, v := range []float64{x1, y1, x2, y2, x3, y3, x4, y4} {
			if !ok(v) {
				return true
			}
		}
		a := rectFrom(x1, y1, x2, y2)
		b := rectFrom(x3, y3, x4, y4)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		if a.Union(b) != b.Union(a) {
			return false
		}
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func randomItems(rng *rand.Rand, n int, span float64) []SweepItem {
	items := make([]SweepItem, n)
	for i := range items {
		x, y := rng.Float64()*span, rng.Float64()*span
		items[i] = SweepItem{
			MBR: rectFrom(x, y, x+rng.Float64()*5, y+rng.Float64()*5),
			Ref: i,
		}
	}
	return items
}

// Property: plane-sweep join produces exactly the nested-loop result set.
func TestPlaneSweepMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		left := randomItems(rng, 80, 40)
		right := randomItems(rng, 60, 40)

		collect := func(join func([]SweepItem, []SweepItem, func(int, int))) map[[2]int]int {
			out := map[[2]int]int{}
			l := append([]SweepItem(nil), left...)
			r := append([]SweepItem(nil), right...)
			join(l, r, func(a, b int) { out[[2]int{a, b}]++ })
			return out
		}
		sweep := collect(PlaneSweepJoin)
		nested := collect(NestedLoopJoin)
		if len(sweep) != len(nested) {
			t.Fatalf("trial %d: sweep %d pairs, nested %d pairs", trial, len(sweep), len(nested))
		}
		for k, v := range nested {
			if sweep[k] != v {
				t.Fatalf("trial %d: pair %v count sweep=%d nested=%d", trial, k, sweep[k], v)
			}
		}
		for k, v := range sweep {
			if v != 1 {
				t.Fatalf("trial %d: pair %v emitted %d times by sweep", trial, k, v)
			}
		}
	}
}

func TestPlaneSweepEmptyInputs(t *testing.T) {
	called := false
	PlaneSweepJoin(nil, nil, func(int, int) { called = true })
	PlaneSweepJoin([]SweepItem{{MBR: rectFrom(0, 0, 1, 1)}}, nil, func(int, int) { called = true })
	PlaneSweepJoin(nil, []SweepItem{{MBR: rectFrom(0, 0, 1, 1)}}, func(int, int) { called = true })
	if called {
		t.Error("emit called on empty input")
	}
}
