package geo

import (
	"math"
	"math/rand"
	"testing"

	"fudj/internal/wire"
)

func line(pts ...Point) *LineString { return NewLineString(pts) }

func TestLineStringBasics(t *testing.T) {
	ls := line(Point{X: 0, Y: 0}, Point{X: 4, Y: 0}, Point{X: 4, Y: 3})
	want := Rect{MinX: 0, MinY: 0, MaxX: 4, MaxY: 3}
	if ls.MBR() != want {
		t.Errorf("MBR = %v, want %v", ls.MBR(), want)
	}
	if ls.Bounds() != want {
		t.Errorf("Bounds = %v", ls.Bounds())
	}
	if got := ls.String(); got != "LINESTRING(3 points, mbr=RECT(0 0, 4 3))" {
		t.Errorf("String = %q", got)
	}
}

func TestNewLineStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("single-point linestring should panic")
		}
	}()
	NewLineString([]Point{{X: 0, Y: 0}})
}

func TestPointSegmentDistance(t *testing.T) {
	a, b := Point{X: 0, Y: 0}, Point{X: 10, Y: 0}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{X: 5, Y: 3}, 3},  // above the middle
		{Point{X: -4, Y: 3}, 5}, // beyond the start: distance to endpoint
		{Point{X: 13, Y: 4}, 5}, // beyond the end
		{Point{X: 5, Y: 0}, 0},  // on the segment
	}
	for _, c := range cases {
		if got := pointSegmentDistance(c.p, a, b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("pointSegmentDistance(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	if got := pointSegmentDistance(Point{X: 3, Y: 4}, a, a); got != 5 {
		t.Errorf("degenerate segment distance = %v, want 5", got)
	}
}

func TestLineStringDistance(t *testing.T) {
	a := line(Point{X: 0, Y: 0}, Point{X: 10, Y: 0})
	b := line(Point{X: 0, Y: 4}, Point{X: 10, Y: 4})
	if got := a.Distance(b); got != 4 {
		t.Errorf("parallel distance = %v, want 4", got)
	}
	crossing := line(Point{X: 5, Y: -5}, Point{X: 5, Y: 5})
	if got := a.Distance(crossing); got != 0 {
		t.Errorf("crossing distance = %v, want 0", got)
	}
	if !a.WithinDistance(b, 4) || a.WithinDistance(b, 3.9) {
		t.Error("WithinDistance thresholding wrong")
	}
	// The MBR short-circuit must agree with the exact answer.
	far := line(Point{X: 100, Y: 100}, Point{X: 110, Y: 100})
	if a.WithinDistance(far, 50) {
		t.Error("far trajectories within 50?")
	}
}

// Property: WithinDistance's MBR short-circuit never changes the
// answer, and distance is symmetric.
func TestQuickLineStringDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	mk := func() *LineString {
		n := 2 + rng.Intn(5)
		pts := make([]Point, n)
		pts[0] = Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		for i := 1; i < n; i++ {
			pts[i] = Point{X: pts[i-1].X + rng.Float64()*6 - 3, Y: pts[i-1].Y + rng.Float64()*6 - 3}
		}
		return NewLineString(pts)
	}
	for trial := 0; trial < 500; trial++ {
		a, b := mk(), mk()
		dab, dba := a.Distance(b), b.Distance(a)
		if math.Abs(dab-dba) > 1e-9 {
			t.Fatalf("distance not symmetric: %v vs %v", dab, dba)
		}
		for _, d := range []float64{0.5, 3, 20} {
			if a.WithinDistance(b, d) != (dab <= d) {
				t.Fatalf("WithinDistance(%v) disagrees with Distance %v", d, dab)
			}
		}
		// The MBR distance lower-bounds the true distance.
		if lb := a.MBR().Distance(b.MBR()); lb > dab+1e-9 {
			t.Fatalf("MBR distance %v exceeds exact %v", lb, dab)
		}
	}
}

func TestLineStringWireRoundTrip(t *testing.T) {
	ls := line(Point{X: 1, Y: 2}, Point{X: 3, Y: 4}, Point{X: -1, Y: 0})
	e := wire.NewEncoder(0)
	ls.MarshalWire(e)
	var got LineString
	if err := got.UnmarshalWire(wire.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != 3 || got.MBR() != ls.MBR() {
		t.Errorf("round trip = %v", &got)
	}
}
