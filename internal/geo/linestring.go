package geo

import (
	"fmt"
	"math"

	"fudj/internal/wire"
)

// LineString is an open polyline — the geometry of a trajectory, the
// join-key type of the trajectory joins the FUDJ paper cites as a
// major application class for the framework.
type LineString struct {
	Points []Point
	mbr    Rect
	has    bool
}

// NewLineString builds a polyline and precomputes its MBR. It panics
// on fewer than 2 points, since a trajectory needs at least one
// segment.
func NewLineString(points []Point) *LineString {
	if len(points) < 2 {
		panic(fmt.Sprintf("geo: linestring needs >= 2 points, got %d", len(points)))
	}
	ls := &LineString{Points: points}
	ls.mbr = ls.computeMBR()
	ls.has = true
	return ls
}

func (ls *LineString) computeMBR() Rect {
	r := EmptyRect()
	for _, p := range ls.Points {
		r = r.Union(RectFromPoint(p))
	}
	return r
}

// MBR returns the polyline's minimum bounding rectangle.
func (ls *LineString) MBR() Rect {
	if !ls.has {
		ls.mbr = ls.computeMBR()
		ls.has = true
	}
	return ls.mbr
}

// Bounds implements Geometry.
func (ls *LineString) Bounds() Rect { return ls.MBR() }

// String implements fmt.Stringer.
func (ls *LineString) String() string {
	return fmt.Sprintf("LINESTRING(%d points, mbr=%v)", len(ls.Points), ls.MBR())
}

// MarshalWire encodes the polyline.
func (ls *LineString) MarshalWire(e *wire.Encoder) {
	e.Uvarint(uint64(len(ls.Points)))
	for _, p := range ls.Points {
		p.MarshalWire(e)
	}
}

// UnmarshalWire decodes a polyline and recomputes its MBR.
func (ls *LineString) UnmarshalWire(d *wire.Decoder) error {
	n, err := d.UvarintCount(16) // each point is two float64s
	if err != nil {
		return err
	}
	ls.Points = make([]Point, n)
	for i := range ls.Points {
		if err := ls.Points[i].UnmarshalWire(d); err != nil {
			return err
		}
	}
	ls.mbr = ls.computeMBR()
	ls.has = true
	return nil
}

// pointSegmentDistance returns the distance from p to segment a-b.
func pointSegmentDistance(p, a, b Point) float64 {
	abx, aby := b.X-a.X, b.Y-a.Y
	lenSq := abx*abx + aby*aby
	if lenSq == 0 {
		return p.Distance(a)
	}
	t := ((p.X-a.X)*abx + (p.Y-a.Y)*aby) / lenSq
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return p.Distance(Point{X: a.X + t*abx, Y: a.Y + t*aby})
}

// segmentDistance returns the minimum distance between two segments.
func segmentDistance(a1, a2, b1, b2 Point) float64 {
	if segmentsIntersect(a1, a2, b1, b2) {
		return 0
	}
	return math.Min(
		math.Min(pointSegmentDistance(a1, b1, b2), pointSegmentDistance(a2, b1, b2)),
		math.Min(pointSegmentDistance(b1, a1, a2), pointSegmentDistance(b2, a1, a2)),
	)
}

// Distance returns the minimum distance between two polylines — the
// closest-approach metric trajectory joins verify against. It is exact
// (segment-to-segment) and prunes with the MBR distance first.
func (ls *LineString) Distance(other *LineString) float64 {
	min := math.Inf(1)
	for i := 0; i+1 < len(ls.Points); i++ {
		for j := 0; j+1 < len(other.Points); j++ {
			d := segmentDistance(ls.Points[i], ls.Points[i+1], other.Points[j], other.Points[j+1])
			if d < min {
				min = d
				if min == 0 {
					return 0
				}
			}
		}
	}
	return min
}

// WithinDistance reports whether two polylines approach within d,
// short-circuiting on the MBR lower bound.
func (ls *LineString) WithinDistance(other *LineString, d float64) bool {
	if ls.MBR().Distance(other.MBR()) > d {
		return false
	}
	return ls.Distance(other) <= d
}
