// Package geo provides the 2-D geometry substrate used by the spatial
// join implementations: points, axis-aligned rectangles (MBRs), simple
// polygons, and the predicates the paper's queries rely on
// (ST_Contains, intersects, ST_Distance). It also hosts the
// plane-sweep rectangle join used by the advanced built-in spatial
// operator of §VII-F.
package geo

import (
	"fmt"
	"math"

	"fudj/internal/wire"
)

// Point is a 2-D point.
type Point struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("POINT(%g %g)", p.X, p.Y) }

// MarshalWire encodes the point.
func (p Point) MarshalWire(e *wire.Encoder) {
	e.Float64(p.X)
	e.Float64(p.Y)
}

// UnmarshalWire decodes the point.
func (p *Point) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if p.X, err = d.Float64(); err != nil {
		return err
	}
	p.Y, err = d.Float64()
	return err
}

// Distance returns the Euclidean distance to q.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Rect is an axis-aligned rectangle, the minimum bounding rectangle
// (MBR) representation used throughout PBSM-style partitioning.
// A Rect with MinX > MaxX is the canonical empty rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyRect returns the identity element for Union.
func EmptyRect() Rect {
	return Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// IsEmpty reports whether r covers no area and no point.
func (r Rect) IsEmpty() bool { return r.MinX > r.MaxX || r.MinY > r.MaxY }

// String implements fmt.Stringer.
func (r Rect) String() string {
	if r.IsEmpty() {
		return "RECT(empty)"
	}
	return fmt.Sprintf("RECT(%g %g, %g %g)", r.MinX, r.MinY, r.MaxX, r.MaxY)
}

// MarshalWire encodes the rectangle.
func (r Rect) MarshalWire(e *wire.Encoder) {
	e.Float64(r.MinX)
	e.Float64(r.MinY)
	e.Float64(r.MaxX)
	e.Float64(r.MaxY)
}

// UnmarshalWire decodes the rectangle.
func (r *Rect) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if r.MinX, err = d.Float64(); err != nil {
		return err
	}
	if r.MinY, err = d.Float64(); err != nil {
		return err
	}
	if r.MaxX, err = d.Float64(); err != nil {
		return err
	}
	r.MaxY, err = d.Float64()
	return err
}

// RectFromPoint returns the degenerate MBR of a single point.
func RectFromPoint(p Point) Rect {
	return Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
}

// Union returns the smallest rectangle covering both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Intersect returns the overlap of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX),
		MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX),
		MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.IsEmpty() {
		return EmptyRect()
	}
	return out
}

// Intersects reports whether r and s share at least one point.
// Boundary touching counts as intersection, matching ST_Intersects.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Width returns the horizontal extent of r, or 0 if empty.
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxX - r.MinX
}

// Height returns the vertical extent of r, or 0 if empty.
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.MaxY - r.MinY
}

// Area returns the area of r, or 0 if empty.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// Distance returns the minimum distance between r and s
// (0 when they intersect).
func (r Rect) Distance(s Rect) float64 {
	if r.IsEmpty() || s.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.MinX-s.MaxX, s.MinX-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-s.MaxY, s.MinY-r.MaxY))
	return math.Hypot(dx, dy)
}

// Polygon is a simple polygon given by its vertex ring. The ring is
// implicitly closed (the last vertex connects back to the first).
type Polygon struct {
	Ring []Point
	mbr  Rect
	has  bool
}

// NewPolygon builds a polygon and precomputes its MBR. It panics if the
// ring has fewer than 3 vertices, since such a ring cannot bound area.
func NewPolygon(ring []Point) *Polygon {
	if len(ring) < 3 {
		panic(fmt.Sprintf("geo: polygon needs >= 3 vertices, got %d", len(ring)))
	}
	p := &Polygon{Ring: ring}
	p.mbr = p.computeMBR()
	p.has = true
	return p
}

func (p *Polygon) computeMBR() Rect {
	r := EmptyRect()
	for _, v := range p.Ring {
		r = r.Union(RectFromPoint(v))
	}
	return r
}

// MBR returns the polygon's minimum bounding rectangle.
func (p *Polygon) MBR() Rect {
	if !p.has {
		p.mbr = p.computeMBR()
		p.has = true
	}
	return p.mbr
}

// String implements fmt.Stringer.
func (p *Polygon) String() string {
	return fmt.Sprintf("POLYGON(%d vertices, mbr=%v)", len(p.Ring), p.MBR())
}

// MarshalWire encodes the polygon ring.
func (p *Polygon) MarshalWire(e *wire.Encoder) {
	e.Uvarint(uint64(len(p.Ring)))
	for _, v := range p.Ring {
		v.MarshalWire(e)
	}
}

// UnmarshalWire decodes a polygon ring and recomputes its MBR.
func (p *Polygon) UnmarshalWire(d *wire.Decoder) error {
	n, err := d.UvarintCount(16) // each point is two float64s
	if err != nil {
		return err
	}
	p.Ring = make([]Point, n)
	for i := range p.Ring {
		if err := p.Ring[i].UnmarshalWire(d); err != nil {
			return err
		}
	}
	p.mbr = p.computeMBR()
	p.has = true
	return nil
}

// ContainsPoint reports whether q is inside the polygon (or on its
// boundary, within floating-point tolerance) using the even-odd
// ray-casting rule. This is the engine of the paper's ST_Contains
// predicate for park boundaries.
func (p *Polygon) ContainsPoint(q Point) bool {
	if !p.MBR().ContainsPoint(q) {
		return false
	}
	inside := false
	n := len(p.Ring)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		a, b := p.Ring[i], p.Ring[j]
		// Boundary check: q on segment a-b.
		if onSegment(a, b, q) {
			return true
		}
		if (a.Y > q.Y) != (b.Y > q.Y) {
			xCross := (b.X-a.X)*(q.Y-a.Y)/(b.Y-a.Y) + a.X
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

const segEps = 1e-12

func onSegment(a, b, q Point) bool {
	cross := (b.X-a.X)*(q.Y-a.Y) - (b.Y-a.Y)*(q.X-a.X)
	if math.Abs(cross) > segEps*math.Max(1, math.Max(math.Abs(b.X-a.X), math.Abs(b.Y-a.Y))) {
		return false
	}
	dot := (q.X-a.X)*(b.X-a.X) + (q.Y-a.Y)*(b.Y-a.Y)
	if dot < 0 {
		return false
	}
	lenSq := (b.X-a.X)*(b.X-a.X) + (b.Y-a.Y)*(b.Y-a.Y)
	return dot <= lenSq
}

// segmentsIntersect reports whether segments p1-p2 and q1-q2 intersect.
func segmentsIntersect(p1, p2, q1, q2 Point) bool {
	d1 := orient(q1, q2, p1)
	d2 := orient(q1, q2, p2)
	d3 := orient(p1, p2, q1)
	d4 := orient(p1, p2, q2)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(q1, q2, p1)) ||
		(d2 == 0 && onSegment(q1, q2, p2)) ||
		(d3 == 0 && onSegment(p1, p2, q1)) ||
		(d4 == 0 && onSegment(p1, p2, q2))
}

func orient(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Intersects reports whether two polygons share at least one point:
// either an edge of one crosses an edge of the other, or one contains
// a vertex of the other.
func (p *Polygon) Intersects(q *Polygon) bool {
	if !p.MBR().Intersects(q.MBR()) {
		return false
	}
	np, nq := len(p.Ring), len(q.Ring)
	for i := 0; i < np; i++ {
		a1 := p.Ring[i]
		a2 := p.Ring[(i+1)%np]
		for j := 0; j < nq; j++ {
			b1 := q.Ring[j]
			b2 := q.Ring[(j+1)%nq]
			if segmentsIntersect(a1, a2, b1, b2) {
				return true
			}
		}
	}
	return p.ContainsPoint(q.Ring[0]) || q.ContainsPoint(p.Ring[0])
}
