package geo

import "fmt"

// Grid divides a space rectangle into N×N equal-sized tiles numbered
// row-major from 0. It is the logical bucket structure of the PBSM
// partitioning scheme: the spatial FUDJ's DIVIDE produces one and its
// ASSIGN calls OverlappingTiles.
type Grid struct {
	Space Rect
	N     int // tiles per side
}

// NewGrid constructs a grid over space with n tiles per side. It panics
// if n < 1, because a grid with no tiles cannot host any bucket.
func NewGrid(space Rect, n int) Grid {
	if n < 1 {
		panic(fmt.Sprintf("geo: grid size must be >= 1, got %d", n))
	}
	return Grid{Space: space, N: n}
}

// NumTiles returns the total number of tiles (N*N).
func (g Grid) NumTiles() int { return g.N * g.N }

// TileID returns the row-major tile id for cell (col, row).
func (g Grid) TileID(col, row int) int { return row*g.N + col }

// Tile returns the rectangle covered by tile id.
func (g Grid) Tile(id int) Rect {
	col := id % g.N
	row := id / g.N
	w := g.Space.Width() / float64(g.N)
	h := g.Space.Height() / float64(g.N)
	return Rect{
		MinX: g.Space.MinX + float64(col)*w,
		MinY: g.Space.MinY + float64(row)*h,
		MaxX: g.Space.MinX + float64(col+1)*w,
		MaxY: g.Space.MinY + float64(row+1)*h,
	}
}

// clampCell converts a coordinate to a cell index in [0, N-1].
func clampCell(v, min, extent float64, n int) int {
	if extent <= 0 {
		return 0
	}
	c := int((v - min) / extent * float64(n))
	if c < 0 {
		c = 0
	}
	if c >= n {
		c = n - 1
	}
	return c
}

// OverlappingTiles appends to dst the ids of all tiles whose rectangle
// intersects r, and returns the extended slice. Geometries outside the
// grid space are clamped to the nearest boundary tiles so that no
// record is ever dropped at partitioning time (the verify phase remains
// the correctness gate). This is the paper's getOverlappingTileIds.
func (g Grid) OverlappingTiles(r Rect, dst []int) []int {
	if r.IsEmpty() {
		return dst
	}
	c0 := clampCell(r.MinX, g.Space.MinX, g.Space.Width(), g.N)
	c1 := clampCell(r.MaxX, g.Space.MinX, g.Space.Width(), g.N)
	r0 := clampCell(r.MinY, g.Space.MinY, g.Space.Height(), g.N)
	r1 := clampCell(r.MaxY, g.Space.MinY, g.Space.Height(), g.N)
	for row := r0; row <= r1; row++ {
		for col := c0; col <= c1; col++ {
			dst = append(dst, g.TileID(col, row))
		}
	}
	return dst
}

// ReferencePointTile returns the id of the unique tile containing the
// top-left corner of the intersection of r with the grid space. It
// implements the Reference Point duplicate-avoidance method of
// PBSM (§VII-E): a candidate pair is reported only in the tile holding
// the reference point of the pair's MBR intersection.
func (g Grid) ReferencePointTile(r Rect) int {
	clipped := r.Intersect(g.Space)
	if clipped.IsEmpty() {
		// Outside the space entirely: fall back to the clamped corner of r.
		clipped = r
	}
	col := clampCell(clipped.MinX, g.Space.MinX, g.Space.Width(), g.N)
	row := clampCell(clipped.MinY, g.Space.MinY, g.Space.Height(), g.N)
	return g.TileID(col, row)
}
