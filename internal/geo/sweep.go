package geo

import "sort"

// SweepItem is one rectangle entering a plane-sweep join, carrying an
// opaque payload index so callers can map hits back to their records.
type SweepItem struct {
	MBR Rect
	Ref int
}

// PlaneSweepJoin reports every pair (i from left, j from right) whose
// MBRs intersect, invoking emit(left[i].Ref, right[j].Ref) for each.
// It implements the classic forward plane-sweep over the x-axis used by
// the paper's advanced built-in spatial operator (§VII-F): both sides
// are sorted by MinX, then the sweep advances the side with the smaller
// head and scans the other side only while x-extents overlap.
//
// The function mutates the order of both input slices.
func PlaneSweepJoin(left, right []SweepItem, emit func(l, r int)) {
	sort.Slice(left, func(i, j int) bool { return left[i].MBR.MinX < left[j].MBR.MinX })
	sort.Slice(right, func(i, j int) bool { return right[i].MBR.MinX < right[j].MBR.MinX })

	i, j := 0, 0
	for i < len(left) && j < len(right) {
		if left[i].MBR.MinX <= right[j].MBR.MinX {
			l := left[i]
			for k := j; k < len(right) && right[k].MBR.MinX <= l.MBR.MaxX; k++ {
				if l.MBR.Intersects(right[k].MBR) {
					emit(l.Ref, right[k].Ref)
				}
			}
			i++
		} else {
			r := right[j]
			for k := i; k < len(left) && left[k].MBR.MinX <= r.MBR.MaxX; k++ {
				if r.MBR.Intersects(left[k].MBR) {
					emit(left[k].Ref, r.Ref)
				}
			}
			j++
		}
	}
}

// NestedLoopJoin is the brute-force counterpart of PlaneSweepJoin with
// identical output semantics, used as the correctness oracle in tests
// and as the unoptimized local join in ablation benchmarks.
func NestedLoopJoin(left, right []SweepItem, emit func(l, r int)) {
	for _, l := range left {
		for _, r := range right {
			if l.MBR.Intersects(r.MBR) {
				emit(l.Ref, r.Ref)
			}
		}
	}
}
