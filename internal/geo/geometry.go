package geo

// Geometry is the common interface of all spatial key types, the
// "geometry" the paper's spatial FUDJ pseudo-code operates on.
type Geometry interface {
	// Bounds returns the minimum bounding rectangle.
	Bounds() Rect
}

// Bounds implements Geometry.
func (p Point) Bounds() Rect { return RectFromPoint(p) }

// Bounds implements Geometry.
func (r Rect) Bounds() Rect { return r }

// Bounds implements Geometry.
func (p *Polygon) Bounds() Rect { return p.MBR() }

// Intersects reports whether two geometries share at least one point,
// dispatching on the concrete types: polygon relations are exact;
// point/rect combinations are exact through their MBRs.
func Intersects(a, b Geometry) bool {
	switch av := a.(type) {
	case *Polygon:
		switch bv := b.(type) {
		case *Polygon:
			return av.Intersects(bv)
		case Point:
			return av.ContainsPoint(bv)
		case Rect:
			return polygonIntersectsRect(av, bv)
		}
	case Point:
		switch bv := b.(type) {
		case *Polygon:
			return bv.ContainsPoint(av)
		}
	case Rect:
		switch bv := b.(type) {
		case *Polygon:
			return polygonIntersectsRect(bv, av)
		}
	}
	return a.Bounds().Intersects(b.Bounds())
}

func polygonIntersectsRect(p *Polygon, r Rect) bool {
	if !p.MBR().Intersects(r) {
		return false
	}
	if r.ContainsRect(p.MBR()) {
		return true
	}
	rectPoly := NewPolygon([]Point{
		{X: r.MinX, Y: r.MinY}, {X: r.MaxX, Y: r.MinY},
		{X: r.MaxX, Y: r.MaxY}, {X: r.MinX, Y: r.MaxY},
	})
	return p.Intersects(rectPoly)
}
