package trace

import (
	"sort"
	"sync"
	"time"
)

// Span is one timed node of the trace tree. Spans are created started;
// End stamps the finish time. A span's counters accumulate whatever
// the emitting operator finds useful (rows in/out, bytes shuffled,
// spill runs, retries); counter keys are rendered sorted so output is
// deterministic.
//
// All methods are safe on a nil *Span (they do nothing and Child
// returns nil), which is how disabled tracing stays nearly free, and
// safe for concurrent use, which is how parallel partition tasks emit
// into one tree.
type Span struct {
	mu       sync.Mutex
	name     string
	part     int // partition id for task spans, -1 otherwise
	clock    Clock
	start    time.Time
	end      time.Time
	counters map[string]int64
	children []*Span
}

// NewSpan starts a root span on the given clock.
func NewSpan(clock Clock, name string) *Span {
	return &Span{name: name, part: -1, clock: clock, start: clock.Now()}
}

// Child starts a sub-span. Safe on nil (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, part: -1, clock: s.clock, start: s.clock.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Task starts a partition-task sub-span. Safe on nil (returns nil).
func (s *Span) Task(part int) *Span {
	c := s.Child("task")
	if c != nil {
		c.part = part
	}
	return c
}

// End stamps the span's finish time. Calling End twice keeps the first
// stamp. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = s.clock.Now()
	}
	s.mu.Unlock()
}

// Add accumulates n into the named counter. Safe on nil.
func (s *Span) Add(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[name] += n
	s.mu.Unlock()
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Part returns the partition id for task spans, -1 otherwise.
func (s *Span) Part() int {
	if s == nil {
		return -1
	}
	return s.part
}

// Duration returns end-start, or zero while the span is still open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return 0
	}
	return s.end.Sub(s.start)
}

// Start returns the span's start instant.
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Counter returns one counter's value (zero when absent).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Counters returns a copy of the span's counters.
func (s *Span) Counters() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return out
}

// counterKeys returns the counter names sorted, for deterministic
// rendering.
func (s *Span) counterKeys() []string {
	keys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Children returns a copy of the child list in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant depth-first in creation
// order. Safe on nil.
func (s *Span) Walk(visit func(depth int, sp *Span)) {
	if s == nil {
		return
	}
	s.walk(0, visit)
}

func (s *Span) walk(depth int, visit func(depth int, sp *Span)) {
	visit(depth, s)
	for _, c := range s.Children() {
		c.walk(depth+1, visit)
	}
}
