// Package trace is the engine's zero-dependency execution tracer: a
// span tree mirroring the executed plan (query → join step → phase →
// partition task) with per-span counters, a text renderer for EXPLAIN
// ANALYZE, and a Chrome trace_event exporter so a run can be opened in
// chrome://tracing or Perfetto.
//
// Timestamps come from an injected Clock, never from time.Now inside
// the execution packages (the seedrand analyzer bans it there): the
// engine owns one clock and plumbs it through the cluster, so tests
// can substitute a deterministic fake.
//
// Every Span method is safe on a nil receiver and does nothing, so
// code under a disabled tracer pays only a nil check.
package trace

import (
	"sync"
	"time"
)

// Clock supplies timestamps to the tracer and to busy-time accounting
// in the execution packages.
type Clock interface {
	Now() time.Time
}

// WallClock reads the system clock. It is the default clock of a
// database; the execution packages only ever see it through the Clock
// interface.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// FakeClock is a deterministic clock for tests: every Now call
// advances a fixed step from the start instant. It is safe for
// concurrent use.
type FakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewFakeClock returns a FakeClock starting at start and advancing by
// step on every Now call.
func NewFakeClock(start time.Time, step time.Duration) *FakeClock {
	return &FakeClock{now: start, step: step}
}

// Now implements Clock: it returns the current instant and advances.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}
