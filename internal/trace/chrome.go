package trace

import (
	"encoding/json"
	"io"
)

// ChromeEvent is one trace_event entry in the Chrome/Perfetto JSON
// format (the "X" complete-event flavour): load the exported array in
// chrome://tracing or https://ui.perfetto.dev to see the query as a
// flame chart. Counters travel in Args.
type ChromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`  // microseconds since trace start
	Dur  int64            `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// ChromeEvents flattens the span tree into trace_event entries,
// depth-first in creation order. Timestamps are relative to the root
// span's start so exports are comparable run to run. Task spans use
// their partition id as the thread id, so Perfetto lays partitions out
// as parallel tracks; structural spans render on track 0.
func ChromeEvents(root *Span) []ChromeEvent {
	if root == nil {
		return nil
	}
	base := root.Start()
	var events []ChromeEvent
	root.Walk(func(depth int, sp *Span) {
		tid := 0
		if p := sp.Part(); p >= 0 {
			tid = p + 1
		}
		cat := "operator"
		if sp.Part() >= 0 {
			cat = "task"
		}
		events = append(events, ChromeEvent{
			Name: sp.Name(),
			Cat:  cat,
			Ph:   "X",
			Ts:   sp.Start().Sub(base).Microseconds(),
			Dur:  sp.Duration().Microseconds(),
			Pid:  1,
			Tid:  tid,
			Args: sp.Counters(),
		})
	})
	return events
}

// WriteChromeTrace writes the span tree to w as a Chrome trace_event
// JSON array, the format chrome://tracing and Perfetto load directly.
func WriteChromeTrace(w io.Writer, root *Span) error {
	enc := json.NewEncoder(w)
	events := ChromeEvents(root)
	if events == nil {
		events = []ChromeEvent{}
	}
	return enc.Encode(events)
}
