package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderOptions shape the text rendering of a span tree.
type RenderOptions struct {
	// CollapseTasks folds a span's partition-task children into one
	// summary line (task count, busiest/total task time, summed
	// counters) — what EXPLAIN ANALYZE wants, where per-task detail
	// would drown the plan shape.
	CollapseTasks bool
}

// Render returns the span tree as an indented text block, one line per
// span: name, partition (for tasks), wall time, and the counters in
// sorted key order.
func Render(root *Span, opts RenderOptions) string {
	if root == nil {
		return ""
	}
	var b strings.Builder
	renderSpan(&b, root, 0, opts)
	return b.String()
}

// RenderLines is Render split into lines (EXPLAIN ANALYZE emits one
// output row per line).
func RenderLines(root *Span, opts RenderOptions) []string {
	s := Render(root, opts)
	if s == "" {
		return nil
	}
	return strings.Split(strings.TrimRight(s, "\n"), "\n")
}

func renderSpan(b *strings.Builder, s *Span, depth int, opts RenderOptions) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s", indent, s.Name())
	if p := s.Part(); p >= 0 {
		fmt.Fprintf(b, " part=%d", p)
	}
	fmt.Fprintf(b, " time=%s", fmtDuration(s.Duration()))
	s.mu.Lock()
	keys := s.counterKeys()
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, s.counters[k])
	}
	s.mu.Unlock()
	b.WriteByte('\n')

	children := s.Children()
	if opts.CollapseTasks {
		var tasks []*Span
		rest := children[:0:0]
		for _, c := range children {
			if c.Part() >= 0 {
				tasks = append(tasks, c)
			} else {
				rest = append(rest, c)
			}
		}
		if len(tasks) > 0 {
			renderTaskSummary(b, tasks, depth+1)
		}
		children = rest
	}
	for _, c := range children {
		renderSpan(b, c, depth+1, opts)
	}
}

// renderTaskSummary folds sibling partition-task spans into one line.
func renderTaskSummary(b *strings.Builder, tasks []*Span, depth int) {
	var maxD, total time.Duration
	sums := make(map[string]int64)
	for _, t := range tasks {
		d := t.Duration()
		total += d
		if d > maxD {
			maxD = d
		}
		for k, v := range t.Counters() {
			sums[k] += v
		}
	}
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "%stasks n=%d max=%s total=%s", strings.Repeat("  ", depth),
		len(tasks), fmtDuration(maxD), fmtDuration(total))
	for _, k := range keys {
		fmt.Fprintf(b, " %s=%d", k, sums[k])
	}
	b.WriteByte('\n')
}

// fmtDuration renders durations with stable precision so trace output
// columns stay comparable across spans.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}
