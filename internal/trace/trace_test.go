package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func fake() *FakeClock {
	return NewFakeClock(time.Unix(1000, 0), time.Millisecond)
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatalf("nil.Child returned %v", c)
	}
	s.Task(3).Add("n", 1)
	s.End()
	s.Add("n", 1)
	if s.Name() != "" || s.Part() != -1 || s.Duration() != 0 || s.Counter("n") != 0 {
		t.Fatal("nil span accessors not zero-valued")
	}
	if got := Render(s, RenderOptions{}); got != "" {
		t.Fatalf("Render(nil) = %q", got)
	}
	if got := ChromeEvents(s); got != nil {
		t.Fatalf("ChromeEvents(nil) = %v", got)
	}
	s.Walk(func(int, *Span) { t.Fatal("Walk visited nil span") })
}

func TestFakeClockAdvances(t *testing.T) {
	clk := fake()
	a := clk.Now()
	b := clk.Now()
	if !b.After(a) {
		t.Fatalf("clock did not advance: %v then %v", a, b)
	}
	if step := b.Sub(a); step != time.Millisecond {
		t.Fatalf("step = %v, want 1ms", step)
	}
}

func TestSpanTreeShape(t *testing.T) {
	clk := fake()
	root := NewSpan(clk, "query")
	join := root.Child("join")
	sum := join.Child("SUMMARIZE")
	sum.Add("rows.in", 10)
	sum.End()
	comb := join.Child("COMBINE")
	comb.Add("rows.out", 3)
	comb.End()
	join.End()
	root.End()

	var names []string
	root.Walk(func(depth int, sp *Span) { names = append(names, sp.Name()) })
	want := []string{"query", "join", "SUMMARIZE", "COMBINE"}
	if len(names) != len(want) {
		t.Fatalf("walk visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk order %v, want %v", names, want)
		}
	}
	if sum.Duration() <= 0 {
		t.Fatalf("SUMMARIZE duration = %v", sum.Duration())
	}
	if got := sum.Counter("rows.in"); got != 10 {
		t.Fatalf("rows.in = %d", got)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	clk := fake()
	s := NewSpan(clk, "x")
	s.End()
	d := s.Duration()
	s.End()
	if s.Duration() != d {
		t.Fatalf("second End changed duration: %v -> %v", d, s.Duration())
	}
}

// TestConcurrentTaskSpans exercises the span tree the way the cluster
// does: task spans pre-created in partition order, then goroutines
// ending them and adding counters concurrently. Run under -race this
// is the data-race check for the tree.
func TestConcurrentTaskSpans(t *testing.T) {
	clk := fake()
	root := NewSpan(clk, "query")
	const parts = 16
	spans := make([]*Span, parts)
	for p := 0; p < parts; p++ {
		spans[p] = root.Task(p)
	}
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				spans[p].Add("records.in", 1)
			}
			spans[p].End()
		}(p)
	}
	wg.Wait()
	root.End()

	kids := root.Children()
	if len(kids) != parts {
		t.Fatalf("children = %d, want %d", len(kids), parts)
	}
	// Pre-creation in partition order makes the tree deterministic even
	// though the goroutines raced.
	for i, c := range kids {
		if c.Part() != i {
			t.Fatalf("child %d has part %d", i, c.Part())
		}
		if got := c.Counter("records.in"); got != 100 {
			t.Fatalf("part %d records.in = %d", i, got)
		}
	}
}

func TestRenderCollapseTasks(t *testing.T) {
	clk := fake()
	root := NewSpan(clk, "query")
	for p := 0; p < 3; p++ {
		sp := root.Task(p)
		sp.Add("records.in", int64(10*(p+1)))
		sp.End()
	}
	ex := root.Child("exchange")
	ex.End()
	root.End()

	full := Render(root, RenderOptions{})
	if strings.Count(full, "task part=") != 3 {
		t.Fatalf("full render missing task lines:\n%s", full)
	}

	folded := Render(root, RenderOptions{CollapseTasks: true})
	if strings.Contains(folded, "part=") {
		t.Fatalf("collapsed render still has per-task lines:\n%s", folded)
	}
	if !strings.Contains(folded, "tasks n=3") || !strings.Contains(folded, "records.in=60") {
		t.Fatalf("collapsed render missing task summary:\n%s", folded)
	}
	if !strings.Contains(folded, "exchange") {
		t.Fatalf("collapsed render dropped non-task child:\n%s", folded)
	}
}

func TestRenderDeterministicCounterOrder(t *testing.T) {
	clk := fake()
	s := NewSpan(clk, "x")
	s.Add("zzz", 1)
	s.Add("aaa", 2)
	s.Add("mmm", 3)
	s.End()
	line := Render(s, RenderOptions{})
	ia, im, iz := strings.Index(line, "aaa="), strings.Index(line, "mmm="), strings.Index(line, "zzz=")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Fatalf("counters not sorted: %q", line)
	}
}

// TestChromeExportSchema validates the exported JSON against the
// trace_event contract chrome://tracing and Perfetto expect: an array
// of complete events with name/cat/ph/ts/dur/pid/tid, ph always "X",
// timestamps relative to the root and non-negative, children nested
// inside their parents' intervals.
func TestChromeExportSchema(t *testing.T) {
	clk := fake()
	root := NewSpan(clk, "query")
	join := root.Child("join")
	for p := 0; p < 2; p++ {
		sp := join.Task(p)
		sp.Add("records.in", 5)
		sp.End()
	}
	join.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	for i, ev := range events {
		for _, key := range []string{"name", "cat", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("event %d ph = %v, want X", i, ev["ph"])
		}
		if ts := ev["ts"].(float64); ts < 0 {
			t.Fatalf("event %d ts = %v", i, ts)
		}
		if ev["pid"].(float64) != 1 {
			t.Fatalf("event %d pid = %v", i, ev["pid"])
		}
		switch ev["cat"] {
		case "operator":
			if ev["tid"].(float64) != 0 {
				t.Fatalf("operator event on tid %v", ev["tid"])
			}
		case "task":
			if ev["tid"].(float64) < 1 {
				t.Fatalf("task event on tid %v", ev["tid"])
			}
		default:
			t.Fatalf("event %d cat = %v", i, ev["cat"])
		}
	}
	if events[0]["name"] != "query" || events[0]["ts"].(float64) != 0 {
		t.Fatalf("root event wrong: %v", events[0])
	}
	// Task args carry the counters.
	last := events[len(events)-1]
	args, ok := last["args"].(map[string]any)
	if !ok || args["records.in"].(float64) != 5 {
		t.Fatalf("task args missing counters: %v", last)
	}
}

func TestWriteChromeTraceNilRoot(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Fatalf("nil root export = %q, want []", got)
	}
}
