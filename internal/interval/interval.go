// Package interval provides the time-interval substrate of the
// overlapping-interval FUDJ (§V-C), modelled on the OIPJoin granule
// scheme: the joint timeline is cut into equal granules, each interval
// is assigned to the smallest [startGranule, endGranule] bucket that
// covers it, and bucket overlap is decided on the packed granule pair.
package interval

import (
	"fmt"

	"fudj/internal/wire"
)

// Interval is a half-open-ish time interval [Start, End] in abstract
// ticks (the paper converts intervals to long arrays the same way).
// Intervals with End < Start are invalid and rejected by Valid.
type Interval struct {
	Start, End int64
}

// Valid reports whether the interval is well-formed.
func (iv Interval) Valid() bool { return iv.End >= iv.Start }

// String implements fmt.Stringer.
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d]", iv.Start, iv.End) }

// Overlaps reports whether two intervals share at least one instant,
// matching the paper's VERIFY: (i1.start <= i2.end) and (i1.end >= i2.start).
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Start <= other.End && iv.End >= other.Start
}

// Duration returns End-Start.
func (iv Interval) Duration() int64 { return iv.End - iv.Start }

// MarshalWire encodes the interval.
func (iv Interval) MarshalWire(e *wire.Encoder) {
	e.Varint(iv.Start)
	e.Varint(iv.End)
}

// UnmarshalWire decodes the interval.
func (iv *Interval) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if iv.Start, err = d.Varint(); err != nil {
		return err
	}
	iv.End, err = d.Varint()
	return err
}

// granuleBits is the number of bits reserved for each granule index in
// a packed bucket id. The paper packs (start<<16)|end into an int; we
// keep the same layout (so bucket counts up to 65536 granules work) but
// document the limit instead of silently wrapping.
const granuleBits = 16

// MaxGranules is the largest granule count a packed bucket id supports.
const MaxGranules = 1 << granuleBits

// Granulator maps intervals to granule buckets over a fixed range. It
// is the payload of the interval FUDJ's PPlan.
type Granulator struct {
	MinStart int64 // left edge of the unified timeline
	MaxEnd   int64 // right edge of the unified timeline
	N        int   // number of granules
	width    int64 // granule width in ticks (>= 1)
}

// NewGranulator divides [minStart, maxEnd] into n granules. It panics
// if n is outside (0, MaxGranules] or the range is inverted, since a
// partitioning plan with no buckets is meaningless.
func NewGranulator(minStart, maxEnd int64, n int) Granulator {
	if n <= 0 || n > MaxGranules {
		panic(fmt.Sprintf("interval: granule count %d out of (0,%d]", n, MaxGranules))
	}
	if maxEnd < minStart {
		panic(fmt.Sprintf("interval: inverted range [%d,%d]", minStart, maxEnd))
	}
	span := maxEnd - minStart + 1
	w := span / int64(n)
	if w < 1 {
		w = 1
	}
	return Granulator{MinStart: minStart, MaxEnd: maxEnd, N: n, width: w}
}

// Width returns the granule width in ticks.
func (g Granulator) Width() int64 { return g.width }

// granule clamps a tick to a granule index in [0, N-1].
func (g Granulator) granule(t int64) int {
	idx := (t - g.MinStart) / g.width
	if idx < 0 {
		idx = 0
	}
	if idx >= int64(g.N) {
		idx = int64(g.N) - 1
	}
	return int(idx)
}

// Bucket returns the packed bucket id for iv: the smallest granule
// range [startGranule, endGranule] covering the interval, packed as
// (start << 16) | end. Every interval maps to exactly one bucket
// (single-assign), which is why the interval join needs a theta MATCH.
func (g Granulator) Bucket(iv Interval) int {
	s := g.granule(iv.Start)
	e := g.granule(iv.End)
	return PackBucket(s, e)
}

// PackBucket packs a (startGranule, endGranule) pair into one bucket id.
func PackBucket(start, end int) int {
	return start<<granuleBits | end
}

// UnpackBucket splits a packed bucket id back into granule indexes.
func UnpackBucket(id int) (start, end int) {
	return id >> granuleBits, id & (MaxGranules - 1)
}

// BucketsOverlap reports whether two packed buckets can contain
// overlapping intervals — the paper's MATCH function:
// (b1Start <= b2End) and (b1End >= b2Start).
func BucketsOverlap(b1, b2 int) bool {
	s1, e1 := UnpackBucket(b1)
	s2, e2 := UnpackBucket(b2)
	return s1 <= e2 && e1 >= s2
}

// MarshalWire encodes the granulator.
func (g Granulator) MarshalWire(e *wire.Encoder) {
	e.Varint(g.MinStart)
	e.Varint(g.MaxEnd)
	e.Varint(int64(g.N))
	e.Varint(g.width)
}

// UnmarshalWire decodes the granulator.
func (g *Granulator) UnmarshalWire(d *wire.Decoder) error {
	var err error
	if g.MinStart, err = d.Varint(); err != nil {
		return err
	}
	if g.MaxEnd, err = d.Varint(); err != nil {
		return err
	}
	n, err := d.Varint()
	if err != nil {
		return err
	}
	g.N = int(n)
	g.width, err = d.Varint()
	return err
}
