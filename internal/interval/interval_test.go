package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fudj/internal/wire"
)

func TestOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 10}, Interval{5, 15}, true},
		{Interval{0, 10}, Interval{10, 20}, true}, // touching endpoints overlap
		{Interval{0, 10}, Interval{11, 20}, false},
		{Interval{5, 5}, Interval{5, 5}, true}, // degenerate instants
		{Interval{0, 100}, Interval{40, 50}, true},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestValid(t *testing.T) {
	if !(Interval{1, 1}).Valid() || !(Interval{0, 5}).Valid() {
		t.Error("valid intervals reported invalid")
	}
	if (Interval{5, 4}).Valid() {
		t.Error("inverted interval reported valid")
	}
}

func TestPackUnpack(t *testing.T) {
	for _, c := range [][2]int{{0, 0}, {1, 5}, {65535, 65535}, {100, 200}} {
		id := PackBucket(c[0], c[1])
		s, e := UnpackBucket(id)
		if s != c[0] || e != c[1] {
			t.Errorf("pack/unpack(%d,%d) = (%d,%d)", c[0], c[1], s, e)
		}
	}
}

func TestGranulatorBucket(t *testing.T) {
	g := NewGranulator(0, 99, 10) // width 10
	if g.Width() != 10 {
		t.Fatalf("Width = %d, want 10", g.Width())
	}
	// Interval fully inside granule 2.
	s, e := UnpackBucket(g.Bucket(Interval{20, 29}))
	if s != 2 || e != 2 {
		t.Errorf("bucket for [20,29] = (%d,%d), want (2,2)", s, e)
	}
	// Interval spanning granules 1..3.
	s, e = UnpackBucket(g.Bucket(Interval{15, 35}))
	if s != 1 || e != 3 {
		t.Errorf("bucket for [15,35] = (%d,%d), want (1,3)", s, e)
	}
	// Out-of-range ticks clamp to the edge granules.
	s, e = UnpackBucket(g.Bucket(Interval{-50, 500}))
	if s != 0 || e != 9 {
		t.Errorf("bucket for [-50,500] = (%d,%d), want (0,9)", s, e)
	}
}

func TestGranulatorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero granules":  func() { NewGranulator(0, 10, 0) },
		"too many":       func() { NewGranulator(0, 10, MaxGranules+1) },
		"inverted range": func() { NewGranulator(10, 0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBucketsOverlap(t *testing.T) {
	b1 := PackBucket(0, 2)
	b2 := PackBucket(2, 5)
	b3 := PackBucket(3, 5)
	if !BucketsOverlap(b1, b2) {
		t.Error("touching granule ranges should match")
	}
	if BucketsOverlap(b1, b3) {
		t.Error("disjoint granule ranges should not match")
	}
	if !BucketsOverlap(b3, b3) {
		t.Error("bucket must match itself")
	}
}

func TestWireRoundTrip(t *testing.T) {
	e := wire.NewEncoder(0)
	iv := Interval{-5, 1000}
	g := NewGranulator(-100, 900, 50)
	iv.MarshalWire(e)
	g.MarshalWire(e)
	d := wire.NewDecoder(e.Bytes())
	var iv2 Interval
	var g2 Granulator
	if err := iv2.UnmarshalWire(d); err != nil {
		t.Fatal(err)
	}
	if err := g2.UnmarshalWire(d); err != nil {
		t.Fatal(err)
	}
	if iv2 != iv {
		t.Errorf("interval round trip: %v != %v", iv2, iv)
	}
	if g2 != g {
		t.Errorf("granulator round trip: %+v != %+v", g2, g)
	}
}

// Property: granule partitioning is complete — overlapping intervals
// always land in buckets whose granule ranges overlap, so MATCH never
// prunes a true result.
func TestQuickGranuleCompleteness(t *testing.T) {
	g := NewGranulator(0, 9999, 100)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		a := Interval{Start: rng.Int63n(10000)}
		a.End = a.Start + rng.Int63n(500)
		b := Interval{Start: rng.Int63n(10000)}
		b.End = b.Start + rng.Int63n(500)
		if a.Overlaps(b) && !BucketsOverlap(g.Bucket(a), g.Bucket(b)) {
			t.Fatalf("trial %d: %v and %v overlap but buckets %d,%d do not match",
				trial, a, b, g.Bucket(a), g.Bucket(b))
		}
	}
}

// Property: each interval is assigned to exactly one bucket and that
// bucket's granule range covers the interval (single-assign soundness).
func TestQuickBucketCoversInterval(t *testing.T) {
	g := NewGranulator(0, 999, 20)
	f := func(start uint16, dur uint8) bool {
		iv := Interval{Start: int64(start) % 1000}
		iv.End = iv.Start + int64(dur)
		s, e := UnpackBucket(g.Bucket(iv))
		if s > e {
			return false
		}
		lo := g.MinStart + int64(s)*g.Width()
		hi := g.MinStart + int64(e+1)*g.Width() - 1
		// Clamped ends may exceed the top granule; allow the final granule
		// to absorb the tail.
		if e == g.N-1 {
			hi = 1 << 60
		}
		return iv.Start >= lo && iv.End <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
