package sched

import "fmt"

// Reason classifies why an admission request was refused.
type Reason int

const (
	// ReasonQueueFull: the bounded admission queue is at capacity —
	// classic overload shedding. Retry with backoff.
	ReasonQueueFull Reason = iota + 1
	// ReasonPoolExhausted: the request could never be satisfied by the
	// memory pool (even a minimum grant exceeds the whole pool), or the
	// pool is exhausted and no queue slot is configured to wait in.
	ReasonPoolExhausted
	// ReasonDraining: the scheduler is draining and admits no new work.
	ReasonDraining
	// ReasonCanceled: the caller's context ended while the request was
	// still queued.
	ReasonCanceled
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonQueueFull:
		return "queue full"
	case ReasonPoolExhausted:
		return "memory pool exhausted"
	case ReasonDraining:
		return "draining"
	case ReasonCanceled:
		return "canceled while queued"
	}
	return fmt.Sprintf("reason(%d)", int(r))
}

// AdmissionError reports a query shed at admission instead of executed.
// Shedding under overload is transient by design — the same query
// succeeds once load falls — so every reason except ReasonDraining is
// retryable (the fault machinery's IsRetryable classification). A
// draining scheduler never admits again, so clients should fail over
// rather than retry. The Err field (set for ReasonCanceled) carries the
// caller's context error for errors.Is chains.
type AdmissionError struct {
	Reason   Reason
	Priority Priority
	// Queued and Running are the scheduler occupancy at refusal time.
	Queued  int
	Running int
	// WantBytes is the requested memory lease; FreeBytes what the pool
	// had available.
	WantBytes int64
	FreeBytes int64
	// Err is the underlying cause, when one exists (context errors).
	Err error
}

// Error implements the error interface.
func (e *AdmissionError) Error() string {
	msg := fmt.Sprintf("sched: admission refused (%s): %d queued, %d running", e.Reason, e.Queued, e.Running)
	if e.WantBytes > 0 {
		msg += fmt.Sprintf(", lease want=%dB free=%dB", e.WantBytes, e.FreeBytes)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying context error, when present.
func (e *AdmissionError) Unwrap() error { return e.Err }

// Retryable reports whether re-submitting the same query later could
// succeed: true for load shedding (queue/pool pressure passes), false
// once the scheduler is draining for good.
func (e *AdmissionError) Retryable() bool { return e.Reason != ReasonDraining }
