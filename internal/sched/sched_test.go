package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fudj/internal/trace"
)

func testClock() trace.Clock {
	return trace.NewFakeClock(time.Unix(1700000000, 0), time.Millisecond)
}

func TestUnlimitedAdmitsImmediately(t *testing.T) {
	s := New(Config{Clock: testClock()})
	for i := 0; i < 10; i++ {
		tk, err := s.Acquire(context.Background(), Request{})
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		if tk.Lease() != 0 {
			t.Fatalf("unlimited scheduler granted lease %d", tk.Lease())
		}
		defer tk.Release()
	}
	st := s.Stats()
	if st.Admitted != 10 || st.Running != 10 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 10 admitted/running, 0 queued", st)
	}
}

func TestConcurrencyLimitQueuesAndReleasesFIFO(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Clock: testClock()})
	first, err := s.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := s.Acquire(context.Background(), Request{})
			if err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			tk.Release()
		}(i)
		// Park them one at a time so queue order is deterministic.
		waitFor(t, func() bool { return s.Stats().Waiting == i+1 })
	}

	first.Release()
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("dequeue order = %v, want [0 1 2]", order)
	}
	st := s.Stats()
	if st.Running != 0 || st.Waiting != 0 || st.Queued != 3 || st.Admitted != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WaitCount != 3 || st.WaitNs <= 0 {
		t.Fatalf("queue latency not recorded: %+v", st)
	}
}

func TestQueueFullSheds(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 2, Clock: testClock()})
	tk, err := s.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()
	for i := 0; i < 2; i++ {
		go func() {
			if tk2, err := s.Acquire(context.Background(), Request{}); err == nil {
				tk2.Release()
			}
		}()
	}
	waitFor(t, func() bool { return s.Stats().Waiting == 2 })

	_, err = s.Acquire(context.Background(), Request{})
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("err = %v, want *AdmissionError", err)
	}
	if adm.Reason != ReasonQueueFull {
		t.Fatalf("reason = %v, want queue full", adm.Reason)
	}
	if !adm.Retryable() {
		t.Fatal("queue-full shed must be retryable")
	}
	if adm.Queued != 2 || adm.Running != 1 {
		t.Fatalf("occupancy in error = %d queued %d running", adm.Queued, adm.Running)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed = %d, want 1", s.Stats().Shed)
	}
	tk.Release()
}

func TestLeaseAccountingNeverOvershoots(t *testing.T) {
	const pool = 1000
	s := New(Config{Pool: pool, MaxConcurrent: 4, Clock: testClock()})
	a, err := s.Acquire(context.Background(), Request{Lease: 600})
	if err != nil {
		t.Fatal(err)
	}
	if a.Lease() != 600 {
		t.Fatalf("lease = %d, want 600", a.Lease())
	}
	// 400 free: a 600-request is reduced to the free amount (>= min
	// grant of 150) instead of waiting — spill pressure, not queueing.
	b, err := s.Acquire(context.Background(), Request{Lease: 600})
	if err != nil {
		t.Fatal(err)
	}
	if b.Lease() != 400 {
		t.Fatalf("reduced lease = %d, want 400", b.Lease())
	}
	st := s.Stats()
	if st.LeaseBytes != pool || st.LeasePeak != pool || st.Reduced != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LeasePeak > pool {
		t.Fatalf("lease peak %d overshoots pool %d", st.LeasePeak, pool)
	}
	a.Release()
	b.Release()
	st = s.Stats()
	if st.LeaseBytes != 0 {
		t.Fatalf("outstanding leases after release = %d", st.LeaseBytes)
	}
}

func TestLeaseDefaultsToPoolShare(t *testing.T) {
	s := New(Config{Pool: 800, MaxConcurrent: 4, Clock: testClock()})
	tk, err := s.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()
	if tk.Lease() != 200 {
		t.Fatalf("default lease = %d, want pool/maxConcurrent = 200", tk.Lease())
	}

	u := New(Config{Pool: 800, Clock: testClock()})
	tk2, err := u.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	defer tk2.Release()
	if tk2.Lease() != 100 {
		t.Fatalf("default lease = %d, want pool/8 = 100", tk2.Lease())
	}
}

func TestOversizedRequestClampedToPool(t *testing.T) {
	s := New(Config{Pool: 100, Clock: testClock()})
	tk, err := s.Acquire(context.Background(), Request{Lease: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Lease() != 100 {
		t.Fatalf("lease = %d, want clamped to pool 100", tk.Lease())
	}
	tk.Release()
}

func TestWeightedRoundRobinFavorsHigh(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueDepth: 64, Clock: testClock()})
	gate, err := s.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}

	// Park 8 high and 8 low waiters, then record dequeue order.
	type done struct {
		prio Priority
		idx  int
	}
	var mu sync.Mutex
	var order []done
	var wg sync.WaitGroup
	park := func(p Priority, idx, parked int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Acquire(context.Background(), Request{Priority: p})
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			mu.Lock()
			order = append(order, done{p, idx})
			mu.Unlock()
			tk.Release()
		}()
		waitFor(t, func() bool { return s.Stats().Waiting == parked })
	}
	n := 0
	for i := 0; i < 8; i++ {
		n++
		park(PriorityLow, i, n)
		n++
		park(PriorityHigh, i, n)
	}

	gate.Release()
	wg.Wait()

	// In the first 5 grants, high (weight 4) must outnumber low
	// (weight 1) 4:1.
	high := 0
	for _, d := range order[:5] {
		if d.prio == PriorityHigh {
			high++
		}
	}
	if high != 4 {
		t.Fatalf("first 5 grants had %d high-priority, want 4 (order %v)", high, order)
	}
	// FIFO within a class.
	lastIdx := map[Priority]int{PriorityHigh: -1, PriorityLow: -1}
	for _, d := range order {
		if d.idx <= lastIdx[d.prio] {
			t.Fatalf("class %v dequeued out of FIFO order: %v", d.prio, order)
		}
		lastIdx[d.prio] = d.idx
	}
}

func TestHeadOfLineBlockingPreventsStarvation(t *testing.T) {
	// hog leases 800 of 1000; big (wants 1000, min grant 250 > 200
	// free) blocks at the head of the queue.
	s := New(Config{Pool: 1000, MaxConcurrent: 8, QueueDepth: 8, Clock: testClock()})
	hog, err := s.Acquire(context.Background(), Request{Lease: 800})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	acquire := func(lease int64, parked int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tk, err := s.Acquire(context.Background(), Request{Lease: lease})
			if err != nil {
				t.Errorf("acquire %d: %v", lease, err)
				return
			}
			tk.Release()
		}()
		waitFor(t, func() bool { return s.Stats().Waiting == parked })
	}
	acquire(1000, 1) // blocked head
	acquire(10, 2)   // would fit in the 200 free bytes...

	// ...but must NOT jump the pool past the blocked head: both stay
	// queued while the hog holds its lease, even though 200B are free.
	time.Sleep(20 * time.Millisecond)
	if st := s.Stats(); st.Running != 1 || st.Waiting != 2 {
		t.Fatalf("small request jumped the blocked head: %+v", st)
	}

	hog.Release()
	wg.Wait()
	if st := s.Stats(); st.Admitted != 3 || st.LeaseBytes != 0 {
		t.Fatalf("stats after drain-down = %+v", st)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Clock: testClock()})
	tk, err := s.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Release()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, Request{})
		errc <- err
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })
	cancel()
	err = <-errc
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != ReasonCanceled {
		t.Fatalf("err = %v, want canceled AdmissionError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v must wrap context.Canceled", err)
	}
	if st := s.Stats(); st.Waiting != 0 {
		t.Fatalf("waiter leaked: %+v", st)
	}
}

func TestDrainShedsQueuedAndLateArrivals(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, Clock: testClock()})
	running, err := s.Acquire(context.Background(), Request{})
	if err != nil {
		t.Fatal(err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.Acquire(context.Background(), Request{})
		queuedErr <- err
	}()
	waitFor(t, func() bool { return s.Stats().Waiting == 1 })

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// The parked waiter is shed immediately with ReasonDraining.
	var adm *AdmissionError
	if err := <-queuedErr; !errors.As(err, &adm) || adm.Reason != ReasonDraining {
		t.Fatalf("queued waiter got %v, want draining AdmissionError", err)
	}
	if adm.Retryable() {
		t.Fatal("draining shed must NOT be retryable")
	}

	// Late arrivals shed too.
	if _, err := s.Acquire(context.Background(), Request{}); !errors.As(err, &adm) || adm.Reason != ReasonDraining {
		t.Fatalf("late arrival got %v, want draining AdmissionError", err)
	}

	// Drain waits for the in-flight query...
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v before the running query released", err)
	case <-time.After(20 * time.Millisecond):
	}
	running.Release()
	if err := <-drained; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	if !s.Draining() {
		t.Fatal("scheduler must stay draining after Drain returns")
	}
}

func TestDrainCancelsAtDeadline(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, Clock: testClock()})
	qctx, qcancel := context.WithCancel(context.Background())
	tk, err := s.Acquire(context.Background(), Request{Cancel: qcancel})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the query: it releases its ticket only when cancelled.
	go func() {
		<-qctx.Done()
		tk.Release()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want deadline exceeded", err)
	}
	if st := s.Stats(); st.Running != 0 || st.LeaseBytes != 0 {
		t.Fatalf("drain returned with work outstanding: %+v", st)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	s := New(Config{Pool: 100, MaxConcurrent: 1, Clock: testClock()})
	tk, err := s.Acquire(context.Background(), Request{Lease: 100})
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
	tk.Release()
	var nilTk *Ticket
	nilTk.Release() // nil-safe
	if st := s.Stats(); st.Running != 0 || st.LeaseBytes != 0 {
		t.Fatalf("double release corrupted accounting: %+v", st)
	}
}

func TestConcurrentChurnKeepsInvariants(t *testing.T) {
	const pool = 4096
	s := New(Config{Pool: pool, MaxConcurrent: 6, QueueDepth: 32, Clock: testClock()})
	var wg sync.WaitGroup
	var admitted, shed atomic.Int64
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := s.Acquire(context.Background(), Request{
				Priority: Priority(i % 3),
				Lease:    int64(64 + i*13),
			})
			if err != nil {
				var adm *AdmissionError
				if !errors.As(err, &adm) {
					t.Errorf("non-admission error: %v", err)
				}
				shed.Add(1)
				return
			}
			admitted.Add(1)
			tk.Release()
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.LeasePeak > pool {
		t.Fatalf("lease peak %d overshoots pool %d", st.LeasePeak, pool)
	}
	if st.Running != 0 || st.Waiting != 0 || st.LeaseBytes != 0 {
		t.Fatalf("scheduler not quiescent: %+v", st)
	}
	if got := admitted.Load() + shed.Load(); got != 64 {
		t.Fatalf("accounted %d of 64 queries", got)
	}
	if st.Admitted != admitted.Load() || st.Shed != shed.Load() {
		t.Fatalf("stats %+v disagree with callers (admitted %d shed %d)", st, admitted.Load(), shed.Load())
	}
}

// waitFor polls until cond holds, failing the test after a generous
// deadline. The scheduler has no test hooks into goroutine parking, so
// ordering-sensitive tests sequence themselves on observable stats.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(200 * time.Microsecond)
	}
}
