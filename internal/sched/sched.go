// Package sched is the engine's concurrent-query admission controller:
// the layer that makes one Database safe — and gracefully degrading —
// under many simultaneous Execute calls.
//
// Queries enter through Acquire, which either admits them immediately,
// parks them in a bounded priority queue, or sheds them with a
// structured *AdmissionError (overload never manifests as unbounded
// queueing or an OOM kill). Admission grants each query a memory
// *lease* carved from one shared global pool: the per-query budget the
// spill machinery (internal/engine/spill.go) already enforces, so a
// reduced grant under contention degrades into spill pressure instead
// of an out-of-memory failure. The sum of outstanding leases never
// exceeds the pool — the invariant the stress suite asserts.
//
// Deadlock freedom: every grant decision is made at a single point
// (dispatch, under one mutex), each query acquires exactly one lease
// for its whole lifetime at admission, and nothing is acquired
// incrementally mid-query — so there is no lock or resource ordering to
// get wrong, and no circular wait is constructible.
//
// Fairness: waiters are FIFO within a priority class; classes are
// served by weighted round-robin credits (High 4 : Normal 2 : Low 1),
// so a flood of low-priority work cannot starve interactive queries and
// vice versa. Pool grants are strictly head-of-line: when the next
// selected waiter's minimum grant does not fit, nobody behind it jumps
// the pool — slightly lower utilization, but no starvation of large
// queries.
//
// Graceful drain: Drain stops admission (late arrivals shed with
// ReasonDraining), lets in-flight queries finish, and past the caller's
// deadline cancels whatever is still running, returning only once every
// query has released its lease — at which point per-query temp state
// (spill directories, checkpoints) has been swept by the queries' own
// teardown.
package sched

import (
	"context"
	"sync"
	"time"

	"fudj/internal/trace"
)

// Priority ranks a query for admission. Higher priorities get a larger
// share of admission slots under contention, never exclusive access.
type Priority int

const (
	// PriorityLow is for batch/background work.
	PriorityLow Priority = iota
	// PriorityNormal is the default.
	PriorityNormal
	// PriorityHigh is for interactive queries.
	PriorityHigh

	numPriorities = 3
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityNormal:
		return "normal"
	case PriorityHigh:
		return "high"
	}
	return "invalid"
}

// weight returns the class's weighted-round-robin credit refill.
func (p Priority) weight() int {
	switch p {
	case PriorityHigh:
		return 4
	case PriorityLow:
		return 1
	default:
		return 2
	}
}

// clamp maps out-of-range priorities onto the nearest valid class.
func (p Priority) clamp() Priority {
	if p < PriorityLow {
		return PriorityLow
	}
	if p > PriorityHigh {
		return PriorityHigh
	}
	return p
}

// DefaultQueueDepth bounds the admission queue when the configuration
// does not: enough to ride out bursts, small enough that shed latency
// stays visible instead of queues growing without limit.
const DefaultQueueDepth = 64

// Config sizes the scheduler.
type Config struct {
	// MaxConcurrent caps simultaneously running queries. <=0 means
	// unbounded (admission never queues on slots).
	MaxConcurrent int
	// QueueDepth bounds the admission queue across all priorities.
	// <=0 selects DefaultQueueDepth when any other limit is set.
	QueueDepth int
	// Pool is the shared memory pool in bytes that per-query leases are
	// carved from. <=0 disables memory-governed admission.
	Pool int64
	// Clock supplies queue-latency timestamps (tests inject a fake).
	Clock trace.Clock
}

// limited reports whether any admission limit is configured.
func (c Config) limited() bool { return c.MaxConcurrent > 0 || c.Pool > 0 }

// Request describes one query seeking admission.
type Request struct {
	// Priority ranks the query; out-of-range values are clamped.
	Priority Priority
	// Lease is the requested memory lease in bytes. Zero asks for the
	// default share (Pool / MaxConcurrent, or Pool/8 when concurrency
	// is unbounded). Ignored when the scheduler has no pool.
	Lease int64
	// Cancel, when non-nil, is invoked to abort the query if a Drain
	// deadline expires while it is still running.
	Cancel context.CancelFunc
}

// Ticket is one admitted query's grant: its lease and queue-latency
// measurement. Release returns the slot and lease to the scheduler;
// it is idempotent.
type Ticket struct {
	s        *Scheduler
	lease    int64
	wait     time.Duration
	prio     Priority
	cancel   context.CancelFunc
	released bool
}

// Lease returns the granted memory lease in bytes (0 = no pool).
func (t *Ticket) Lease() int64 { return t.lease }

// Wait returns how long the query waited in the admission queue.
func (t *Ticket) Wait() time.Duration { return t.wait }

// Priority returns the class the query was admitted under.
func (t *Ticket) Priority() Priority { return t.prio }

// Release returns the ticket's slot and lease to the pool, admitting
// waiting queries. Safe to call more than once.
func (t *Ticket) Release() {
	if t == nil {
		return
	}
	t.s.release(t)
}

// grantResult is what a parked waiter eventually receives: a ticket on
// admission, or the structured refusal when the scheduler sheds it.
type grantResult struct {
	t   *Ticket
	err *AdmissionError
}

// waiter is one parked admission request.
type waiter struct {
	prio    Priority
	lease   int64 // requested lease bytes
	cancel  context.CancelFunc
	arrived time.Time
	ready   chan grantResult // buffered(1); dispatch/drain delivers the outcome
	gone    bool             // caller abandoned the request (context ended)
}

// Stats is one consistent view of the scheduler's counters.
type Stats struct {
	// Totals since the scheduler was created.
	Admitted int64 // queries granted a slot (immediately or after queueing)
	Queued   int64 // queries that had to wait in the queue
	Shed     int64 // queries refused with an AdmissionError
	Reduced  int64 // leases granted below the requested size (spill pressure)

	// Instantaneous occupancy.
	Running int
	Waiting int

	// Lease accounting. LeaseBytes is the sum of outstanding leases;
	// LeasePeak its high-water mark — the value that must never exceed
	// the pool.
	LeaseBytes int64
	LeasePeak  int64
	Pool       int64

	// Queue latency: observation count, sum, and max (nanoseconds).
	WaitCount int64
	WaitNs    int64
	WaitMaxNs int64

	Draining bool
}

// Scheduler is the admission controller. One per Database; safe for
// concurrent use.
type Scheduler struct {
	cfg Config

	mu       sync.Mutex
	free     int64 // pool bytes not currently leased
	running  int
	draining bool
	queues   [numPriorities][]*waiter
	waiting  int
	credit   [numPriorities]int
	active   map[*Ticket]context.CancelFunc
	changed  chan struct{} // closed+replaced on every release (drain wakeup)

	stats Stats
}

// New builds a scheduler. A zero Config means "no limits": every query
// admits immediately, and only the counters are maintained.
func New(cfg Config) *Scheduler {
	if cfg.Clock == nil {
		cfg.Clock = trace.WallClock{}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Pool < 0 {
		cfg.Pool = 0
	}
	s := &Scheduler{
		cfg:     cfg,
		free:    cfg.Pool,
		active:  make(map[*Ticket]context.CancelFunc),
		changed: make(chan struct{}),
	}
	for p := range s.credit {
		s.credit[p] = Priority(p).weight()
	}
	s.stats.Pool = cfg.Pool
	return s
}

// Pool returns the configured shared memory pool (0 = none).
func (s *Scheduler) Pool() int64 { return s.cfg.Pool }

// Stats returns a consistent snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Running = s.running
	st.Waiting = s.waiting
	st.Draining = s.draining
	return st
}

// wantLease normalizes a request's lease against the pool: zero asks
// for the default share, and no single query may lease more than the
// whole pool.
func (s *Scheduler) wantLease(req int64) int64 {
	if s.cfg.Pool <= 0 {
		return 0
	}
	if req <= 0 {
		if s.cfg.MaxConcurrent > 0 {
			req = s.cfg.Pool / int64(s.cfg.MaxConcurrent)
		} else {
			req = s.cfg.Pool / 8
		}
		if req < 1 {
			req = 1
		}
	}
	if req > s.cfg.Pool {
		req = s.cfg.Pool
	}
	return req
}

// minGrant is the smallest lease a request accepts: a quarter of what
// it asked for. Granting less than requested is the scheduler's
// revocation lever — the query runs with a tighter budget and degrades
// into spilling instead of waiting for the full grant.
func minGrant(want int64) int64 {
	m := want / 4
	if m < 1 {
		m = 1
	}
	return m
}

// Acquire admits one query, blocking in the bounded priority queue when
// the scheduler is saturated. It returns a Ticket whose lease the query
// must treat as its memory budget, or a structured *AdmissionError when
// the query is shed (queue full, pool exhausted with no queue slot,
// draining, or the caller's context ending first).
func (s *Scheduler) Acquire(ctx context.Context, req Request) (*Ticket, error) {
	prio := req.Priority.clamp()
	s.mu.Lock()
	if s.draining {
		err := s.refuse(prio, ReasonDraining, 0, nil)
		s.mu.Unlock()
		return nil, err
	}
	if !s.cfg.limited() {
		// No limits configured: the fast path still counts admissions so
		// observability works before any limit is turned on.
		t := s.grant(prio, 0, 0, req.Cancel, time.Time{})
		s.mu.Unlock()
		return t, nil
	}
	want := s.wantLease(req.Lease)
	if s.cfg.Pool > 0 && minGrant(want) > s.cfg.Pool {
		err := s.refuse(prio, ReasonPoolExhausted, want, nil)
		s.mu.Unlock()
		return nil, err
	}
	// Immediate admission only from an empty queue — arrivals never
	// overtake parked waiters.
	if s.waiting == 0 && s.admissible(want) {
		t := s.grant(prio, want, s.grantSize(want), req.Cancel, time.Time{})
		s.mu.Unlock()
		return t, nil
	}
	if s.waiting >= s.cfg.QueueDepth {
		err := s.refuse(prio, ReasonQueueFull, want, nil)
		s.mu.Unlock()
		return nil, err
	}
	w := &waiter{
		prio:    prio,
		lease:   want,
		cancel:  req.Cancel,
		arrived: s.cfg.Clock.Now(),
		ready:   make(chan grantResult, 1),
	}
	s.queues[prio] = append(s.queues[prio], w)
	s.waiting++
	s.stats.Queued++
	s.mu.Unlock()

	select {
	case g := <-w.ready:
		if g.err != nil {
			return nil, g.err
		}
		return g.t, nil
	case <-ctx.Done():
	}
	// The context ended while queued. Re-check under the lock: dispatch
	// or drain may have resolved the request concurrently, in which case
	// that outcome wins (a concurrent grant must go back to the pool).
	s.mu.Lock()
	select {
	case g := <-w.ready:
		if g.err != nil {
			s.mu.Unlock()
			return nil, g.err
		}
		s.mu.Unlock()
		g.t.Release()
		s.mu.Lock()
		err := s.refuse(prio, ReasonCanceled, want, ctx.Err())
		s.stats.Admitted-- // the grant was never used
		s.mu.Unlock()
		return nil, err
	default:
	}
	w.gone = true
	s.unqueue(w)
	err := s.refuse(prio, ReasonCanceled, want, ctx.Err())
	s.mu.Unlock()
	return nil, err
}

// refuse builds the shed error and counts it. Callers must hold mu.
func (s *Scheduler) refuse(prio Priority, reason Reason, want int64, cause error) *AdmissionError {
	s.stats.Shed++
	return &AdmissionError{
		Reason:    reason,
		Priority:  prio,
		Queued:    s.waiting,
		Running:   s.running,
		WantBytes: want,
		FreeBytes: s.free,
		Err:       cause,
	}
}

// admissible reports whether a request wanting `want` bytes can be
// admitted right now. Callers must hold mu.
func (s *Scheduler) admissible(want int64) bool {
	if s.cfg.MaxConcurrent > 0 && s.running >= s.cfg.MaxConcurrent {
		return false
	}
	if s.cfg.Pool > 0 && s.free < minGrant(want) {
		return false
	}
	return true
}

// grantSize picks the lease actually granted: the full request when the
// pool covers it, otherwise whatever is free (already >= the minimum
// grant, per admissible). Callers must hold mu.
func (s *Scheduler) grantSize(want int64) int64 {
	if s.cfg.Pool <= 0 || want <= 0 {
		return 0
	}
	if s.free >= want {
		return want
	}
	return s.free
}

// grant admits one query, charging the pool. Callers must hold mu.
func (s *Scheduler) grant(prio Priority, want, lease int64, cancel context.CancelFunc, arrived time.Time) *Ticket {
	s.running++
	s.stats.Admitted++
	if lease > 0 {
		s.free -= lease
		s.stats.LeaseBytes += lease
		if s.stats.LeaseBytes > s.stats.LeasePeak {
			s.stats.LeasePeak = s.stats.LeaseBytes
		}
		if lease < want {
			s.stats.Reduced++
		}
	}
	t := &Ticket{s: s, lease: lease, prio: prio, cancel: cancel}
	if !arrived.IsZero() {
		t.wait = s.cfg.Clock.Now().Sub(arrived)
		s.stats.WaitCount++
		s.stats.WaitNs += int64(t.wait)
		if int64(t.wait) > s.stats.WaitMaxNs {
			s.stats.WaitMaxNs = int64(t.wait)
		}
	}
	if cancel != nil {
		s.active[t] = cancel
	}
	return t
}

// release returns a ticket's slot and lease, wakes the drain waiter,
// and dispatches queued work.
func (s *Scheduler) release(t *Ticket) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.released {
		return
	}
	t.released = true
	s.running--
	if t.lease > 0 {
		s.free += t.lease
		s.stats.LeaseBytes -= t.lease
	}
	delete(s.active, t)
	close(s.changed)
	s.changed = make(chan struct{})
	s.dispatch()
}

// dispatch admits queued waiters while capacity lasts, selecting the
// next class by weighted round-robin credits and never skipping a
// selected head that does not fit the pool (head-of-line blocking is
// what keeps large requests from starving). Callers must hold mu.
func (s *Scheduler) dispatch() {
	for s.waiting > 0 {
		w := s.selectNext()
		if w == nil || !s.admissible(w.lease) {
			return
		}
		s.unqueue(w)
		t := s.grant(w.prio, w.lease, s.grantSize(w.lease), w.cancel, w.arrived)
		w.ready <- grantResult{t: t}
	}
}

// selectNext picks the next waiter by weighted round-robin over
// non-empty priority classes, refilling credits when all non-empty
// classes are spent. Callers must hold mu. Returns nil only when every
// queue is empty.
func (s *Scheduler) selectNext() *waiter {
	order := [numPriorities]Priority{PriorityHigh, PriorityNormal, PriorityLow}
	for refilled := false; ; {
		for _, p := range order {
			if len(s.queues[p]) > 0 && s.credit[p] > 0 {
				s.credit[p]--
				return s.queues[p][0]
			}
		}
		if refilled {
			return nil
		}
		nonempty := false
		for _, p := range order {
			if len(s.queues[p]) > 0 {
				nonempty = true
			}
			s.credit[p] = p.weight()
		}
		if !nonempty {
			return nil
		}
		refilled = true
	}
}

// unqueue removes w from its class queue. Callers must hold mu.
func (s *Scheduler) unqueue(w *waiter) {
	q := s.queues[w.prio]
	for i, x := range q {
		if x == w {
			s.queues[w.prio] = append(q[:i], q[i+1:]...)
			s.waiting--
			return
		}
	}
}

// Drain stops admission for good and waits for in-flight queries to
// finish. Late arrivals shed with ReasonDraining; parked waiters are
// shed immediately (they never started executing). When ctx ends
// before the queries do, every registered in-flight cancel fires and
// Drain keeps waiting until the queries release their leases — so on
// return, no query is running and per-query temp state has been swept
// by the queries' own teardown. Returns nil on a clean drain, or the
// context's error when queries had to be cancelled.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	// Shed everything still queued: those queries never started, so
	// "cancel at the deadline" does not apply to them.
	for p := range s.queues {
		for _, w := range s.queues[p] {
			w.gone = true
			// Deliver the refusal through the grant channel so the waiter
			// wakes immediately rather than at its context deadline.
			w.ready <- grantResult{err: s.refuse(w.prio, ReasonDraining, w.lease, nil)}
		}
		s.queues[p] = nil
	}
	s.waiting = 0
	s.mu.Unlock()

	forced := false
	for {
		s.mu.Lock()
		if s.running == 0 {
			s.mu.Unlock()
			if forced {
				return ctx.Err()
			}
			return nil
		}
		ch := s.changed
		var cancels []context.CancelFunc
		if !forced && ctx.Err() != nil {
			for _, c := range s.active {
				cancels = append(cancels, c)
			}
			forced = true
		}
		s.mu.Unlock()
		for _, c := range cancels {
			c()
		}
		if forced {
			<-ch
			continue
		}
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}
}

// Draining reports whether Drain has been called.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}
