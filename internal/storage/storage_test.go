package storage

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fudj/internal/datagen"
	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/types"
)

func TestBinaryRoundTripAllGenerators(t *testing.T) {
	sets := []*datagen.Dataset{
		datagen.Wildfires(1, 50),
		datagen.Parks(2, 50),
		datagen.NYCTaxi(3, 50),
		datagen.AmazonReview(4, 50),
	}
	for _, ds := range sets {
		var buf bytes.Buffer
		if err := WriteDataset(&buf, ds.Name, ds.Schema, ds.Records); err != nil {
			t.Fatalf("%s: write: %v", ds.Name, err)
		}
		name, schema, recs, err := ReadDataset(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", ds.Name, err)
		}
		if name != ds.Name {
			t.Errorf("name = %q, want %q", name, ds.Name)
		}
		if schema.String() != ds.Schema.String() {
			t.Errorf("schema = %v, want %v", schema, ds.Schema)
		}
		if len(recs) != len(ds.Records) {
			t.Fatalf("%d records, want %d", len(recs), len(ds.Records))
		}
		for i := range recs {
			for j := range recs[i] {
				if !recs[i][j].Equal(ds.Records[i][j]) {
					t.Fatalf("%s record %d field %d mismatch", ds.Name, i, j)
				}
			}
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	ds := datagen.Parks(7, 20)
	path := filepath.Join(t.TempDir(), "parks.fudj")
	if err := SaveFile(path, "parks", ds.Schema, ds.Records); err != nil {
		t.Fatal(err)
	}
	name, schema, recs, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "parks" || schema.Len() != ds.Schema.Len() || len(recs) != 20 {
		t.Errorf("loaded %q %v %d", name, schema, len(recs))
	}
	if _, _, _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadDatasetErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOTFUDJ\x01"),
		"bad version": []byte(magic + "\x07"),
		"truncated":   []byte(magic + "\x01\x05abc"),
	}
	for name, buf := range cases {
		if _, _, _, err := ReadDataset(bytes.NewReader(buf)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	// Trailing garbage is rejected.
	var buf bytes.Buffer
	schema := types.NewSchema(types.Field{Name: "id", Kind: types.KindInt64})
	if err := WriteDataset(&buf, "t", schema, []types.Record{{types.NewInt64(1)}}); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0xFF)
	if _, _, _, err := ReadDataset(&buf); err == nil {
		t.Error("trailing bytes should error")
	}
}

func TestWriteDatasetRejectsRaggedRecords(t *testing.T) {
	schema := types.NewSchema(types.Field{Name: "id", Kind: types.KindInt64})
	err := WriteDataset(&bytes.Buffer{}, "t", schema, []types.Record{{types.NewInt64(1), types.NewInt64(2)}})
	if err == nil {
		t.Error("ragged record should error")
	}
}

func TestParseValue(t *testing.T) {
	cases := []struct {
		kind types.Kind
		text string
		want types.Value
	}{
		{types.KindInt64, "42", types.NewInt64(42)},
		{types.KindInt64, "-7", types.NewInt64(-7)},
		{types.KindFloat64, "2.5", types.NewFloat64(2.5)},
		{types.KindBool, "true", types.NewBool(true)},
		{types.KindString, `"hello\tworld"`, types.NewString("hello\tworld")},
		{types.KindString, "bare", types.NewString("bare")},
		{types.KindPoint, "POINT(1.5 -2)", types.NewPoint(geo.Point{X: 1.5, Y: -2})},
		{types.KindRect, "RECT(0 0, 3 4)", types.NewRect(geo.Rect{MinX: 0, MinY: 0, MaxX: 3, MaxY: 4})},
		{types.KindInterval, "[10,20]", types.NewInterval(interval.Interval{Start: 10, End: 20})},
		{types.KindNull, "whatever", types.Null},
	}
	for _, c := range cases {
		got, err := ParseValue(c.kind, c.text)
		if err != nil {
			t.Errorf("ParseValue(%v, %q): %v", c.kind, c.text, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParseValue(%v, %q) = %v, want %v", c.kind, c.text, got, c.want)
		}
	}
	for _, bad := range []struct {
		kind types.Kind
		text string
	}{
		{types.KindInt64, "x"},
		{types.KindFloat64, ""},
		{types.KindBool, "maybe"},
		{types.KindPoint, "1,2"},
		{types.KindInterval, "10-20"},
		{types.KindPolygon, "POLYGON(...)"},
	} {
		if _, err := ParseValue(bad.kind, bad.text); err == nil {
			t.Errorf("ParseValue(%v, %q): want error", bad.kind, bad.text)
		}
	}
}

// Property: any value whose kind ParseValue supports round-trips
// through its String rendering.
func TestParseValueInvertsString(t *testing.T) {
	vals := []types.Value{
		types.NewInt64(123), types.NewFloat64(-0.5), types.NewBool(false),
		types.NewString("with \"quotes\" and\ttabs"),
		types.NewPoint(geo.Point{X: 3, Y: 4}),
		types.NewRect(geo.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}),
		types.NewInterval(interval.Interval{Start: -5, End: 500}),
	}
	for _, v := range vals {
		got, err := ParseValue(v.Kind(), v.String())
		if err != nil {
			t.Errorf("round trip %v: %v", v, err)
			continue
		}
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestReadTSV(t *testing.T) {
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "location", Kind: types.KindPoint},
		types.Field{Name: "note", Kind: types.KindString},
	)
	// Note: tabs inside quoted strings are not supported by the TSV
	// importer (a documented format restriction).
	input := `# a comment
id	location	note
1	POINT(1 2)	"hello"

2	POINT(3 4)	"world"
`
	recs, err := ReadTSV(strings.NewReader(input), schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][1].Point() != (geo.Point{X: 3, Y: 4}) || recs[1][2].Str() != "world" {
		t.Errorf("record 1 = %v", recs[1])
	}
	// Errors: header mismatch, bad column count, bad value.
	if _, err := ReadTSV(strings.NewReader("wrong\theader\tnames\n"), schema); err == nil {
		t.Error("header mismatch should error")
	}
	if _, err := ReadTSV(strings.NewReader("id\tlocation\tnote\n1\tPOINT(1 2)\n"), schema); err == nil {
		t.Error("short row should error")
	}
	if _, err := ReadTSV(strings.NewReader("id\tlocation\tnote\nx\tPOINT(1 2)\t\"a\"\n"), schema); err == nil {
		t.Error("bad int should error")
	}
}

// The datagen TSV output read back must equal the original (for the
// kinds the text format supports).
func TestTSVRoundTripWithDatagenFormat(t *testing.T) {
	ds := datagen.Wildfires(11, 30)
	var sb strings.Builder
	names := make([]string, ds.Schema.Len())
	for i, f := range ds.Schema.Fields {
		names[i] = f.Name
	}
	sb.WriteString("# " + ds.String() + "\n")
	sb.WriteString(strings.Join(names, "\t") + "\n")
	for _, rec := range ds.Records {
		cells := make([]string, len(rec))
		for i, v := range rec {
			cells[i] = v.String()
		}
		sb.WriteString(strings.Join(cells, "\t") + "\n")
	}
	recs, err := ReadTSV(strings.NewReader(sb.String()), ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(ds.Records) {
		t.Fatalf("%d records, want %d", len(recs), len(ds.Records))
	}
	for i := range recs {
		for j := range recs[i] {
			if !recs[i][j].Equal(ds.Records[i][j]) {
				t.Fatalf("record %d field %d: %v != %v", i, j, recs[i][j], ds.Records[i][j])
			}
		}
	}
}
