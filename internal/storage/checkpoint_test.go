package storage

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"fudj/internal/types"
)

func newStore(t *testing.T) *CheckpointStore {
	t.Helper()
	t.Setenv("TMPDIR", t.TempDir())
	s, err := NewCheckpointStore()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Sweep() })
	return s
}

func sameRecords(a, b []types.Record) bool {
	return bytes.Equal(types.EncodeRecords(a), types.EncodeRecords(b))
}

func TestCheckpointRecordsRoundTrip(t *testing.T) {
	s := newStore(t)
	recs := spillBatch(500, 40) // several frames' worth
	n, err := s.SaveRecords("s0-shuffle-left-p3", recs)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("SaveRecords bytes = %d, want > 0", n)
	}
	got, err := s.LoadRecords("s0-shuffle-left-p3")
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(got, recs) {
		t.Errorf("LoadRecords: %d records differ from the %d saved", len(got), len(recs))
	}
}

func TestCheckpointEmptyRecords(t *testing.T) {
	s := newStore(t)
	if _, err := s.SaveRecords("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadRecords("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("LoadRecords = %d records, want 0", len(got))
	}
}

func TestCheckpointBlobRoundTrip(t *testing.T) {
	s := newStore(t)
	blob := []byte("encoded partitioning plan")
	if _, err := s.SaveBlob("s0-plan", blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadBlob("s0-plan")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Errorf("LoadBlob = %q, want %q", got, blob)
	}
}

func TestCheckpointMissing(t *testing.T) {
	s := newStore(t)
	if _, err := s.LoadRecords("never-written"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LoadRecords(missing) = %v, want os.ErrNotExist", err)
	}
}

func TestCheckpointReplace(t *testing.T) {
	s := newStore(t)
	if _, err := s.SaveRecords("k", spillBatch(10, 8)); err != nil {
		t.Fatal(err)
	}
	second := spillBatch(3, 8)
	if _, err := s.SaveRecords("k", second); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadRecords("k")
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(got, second) {
		t.Errorf("replaced checkpoint returned %d records, want %d", len(got), len(second))
	}
}

func TestCheckpointAbortLeavesNothing(t *testing.T) {
	s := newStore(t)
	w, err := s.NewCheckpointWriter("aborted")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(spillBatch(10, 8)...); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	if _, err := s.LoadRecords("aborted"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("LoadRecords(aborted) = %v, want os.ErrNotExist", err)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("checkpoint dir holds %d entries after Abort, want 0", len(entries))
	}
}

// TestCheckpointReopenAfterTruncation cuts a valid checkpoint at every
// possible byte length and asserts a reopen either reports corruption
// or (at the full length) returns exactly the saved records — never a
// silent prefix and never wrong records.
func TestCheckpointReopenAfterTruncation(t *testing.T) {
	s := newStore(t)
	recs := spillBatch(40, 16)
	if _, err := s.SaveRecords("trunc", recs); err != nil {
		t.Fatal(err)
	}
	path := s.Path("trunc")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadRecords("trunc")
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("truncated to %d/%d bytes: err = %v (records %d), want *CorruptError",
				cut, len(full), err, len(got))
		}
	}
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadRecords("trunc")
	if err != nil {
		t.Fatal(err)
	}
	if !sameRecords(got, recs) {
		t.Error("restored full checkpoint no longer round-trips")
	}
}

// TestCheckpointReopenAfterBitflip flips every byte of a valid
// checkpoint in turn (a torn page write, bit rot) and asserts a reopen
// either reports corruption or round-trips the original records — a
// flip may never yield different records.
func TestCheckpointReopenAfterBitflip(t *testing.T) {
	s := newStore(t)
	recs := spillBatch(20, 12)
	if _, err := s.SaveRecords("flip", recs); err != nil {
		t.Fatal(err)
	}
	path := s.Path("flip")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		damaged := append([]byte(nil), full...)
		damaged[i] ^= 0x40
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := s.LoadRecords("flip")
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at byte %d: err = %v, want *CorruptError", i, err)
			}
			continue
		}
		if !sameRecords(got, recs) {
			t.Fatalf("flip at byte %d: reopen returned different records without an error", i)
		}
	}
}

// FuzzCheckpointReopen feeds arbitrary bytes through the reader the
// recovery manager uses on reopen: it must never panic, and whatever
// it accepts must decode cleanly.
func FuzzCheckpointReopen(f *testing.F) {
	dir := f.TempDir()
	s := &CheckpointStore{dir: dir}
	if _, err := s.SaveRecords("seed", spillBatch(8, 8)); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(s.Path("seed"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(checkpointMagic))
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		path := s.Path("fuzz")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		recs, err := s.LoadRecords("fuzz")
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) && !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("LoadRecords: unexpected error type %T: %v", err, err)
			}
			return
		}
		// Accepted input: records must re-encode without panicking.
		_ = types.EncodeRecords(recs)
	})
}
