package storage

import (
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"fudj/internal/types"
)

func spillBatch(n, strLen int) []types.Record {
	recs := make([]types.Record, n)
	for i := range recs {
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewString(strings.Repeat("s", strLen)),
		}
	}
	return recs
}

func readAll(t *testing.T, path string) []types.Record {
	t.Helper()
	r, err := OpenRun(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var out []types.Record
	for {
		frame, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("Next: %v", err)
		}
		out = append(out, frame...)
	}
	return out
}

func TestSpillRunRoundTrip(t *testing.T) {
	w, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := spillBatch(500, 40)
	if err := w.Append(recs...); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 500 {
		t.Errorf("Records() = %d, want 500", w.Records())
	}
	if w.Bytes() <= 0 {
		t.Errorf("Bytes() = %d, want > 0", w.Bytes())
	}
	got := readAll(t, w.Path())
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i][0].Int64() != recs[i][0].Int64() || got[i][1].String() != recs[i][1].String() {
			t.Fatalf("record %d mismatch: %v", i, got[i])
		}
	}
}

func TestSpillRunMultipleFrames(t *testing.T) {
	// Big strings force several 64KB frames; the reader must see every
	// record exactly once, in append order, without loading the whole
	// run at once.
	w, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := spillBatch(300, 2000) // ~600KB of payload -> ~10 frames
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRun(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	frames, total := 0, 0
	for {
		frame, err := r.Next()
		if err != nil {
			break
		}
		frames++
		for _, rec := range frame {
			if rec[0].Int64() != int64(total) {
				t.Fatalf("record %d out of order: %v", total, rec[0])
			}
			total++
		}
	}
	if total != 300 {
		t.Fatalf("read %d records, want 300", total)
	}
	if frames < 2 {
		t.Errorf("read %d frames, want several (frame splitting broken)", frames)
	}
}

func TestSpillRunEmpty(t *testing.T) {
	w, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 {
		t.Errorf("Records() = %d, want 0", w.Records())
	}
	if got := readAll(t, w.Path()); len(got) != 0 {
		t.Errorf("read %d records from empty run", len(got))
	}
}

func TestSpillRunRemove(t *testing.T) {
	w, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(spillBatch(3, 8)...); err != nil {
		t.Fatal(err)
	}
	path := w.Path()
	w.Remove()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("run file still exists after Remove: %v", err)
	}
	// Remove is idempotent.
	w.Remove()
}

func TestSpillRunCorruptFrameHeader(t *testing.T) {
	// A corrupted frame header claiming more bytes than the whole run
	// file must error out of Next before the payload is allocated
	// (boundedalloc: sizes from decoded prefixes flow through
	// wire.ReadUvarintCount).
	w, err := NewRunWriter(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range spillBatch(10, 50) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Overwrite the first frame's length prefix with an absurd uvarint
	// (~2^62 bytes).
	f, err := os.OpenFile(w.Path(), os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x3f}, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenRun(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("corrupt frame header decoded successfully")
	} else if errors.Is(err, io.EOF) {
		t.Fatalf("corrupt frame header read as EOF: %v", err)
	}
}
