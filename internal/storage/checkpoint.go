// Crash-consistent checkpoints: durable snapshots of mid-query state
// (the broadcast partitioning plan, each partition's post-shuffle
// bucket inputs) written at phase barriers so a failure replays only
// the work downstream of the last barrier instead of the whole query.
//
// The on-disk format extends the spill run format with integrity
// checks a transient spill never needs, because a checkpoint is read
// back *after* a simulated failure and must detect its own damage:
//
//	magic "FCKP1\n"
//	frame*     uvarint(len) | crc32(payload) LE | payload   (len >= 1)
//	terminator uvarint(0)   | frames uint64 LE  | crc32(frames) LE
//
// A frame payload is either one encoded record batch
// (types.EncodeBatch, columnar where the records allow it) or an
// opaque blob; the caller knows which it stored. The explicit terminator makes truncation detectable — a
// reader that hits EOF before a valid terminator reports corruption
// rather than silently returning a prefix — and the per-frame CRC
// catches bit rot and torn page writes inside a frame.
//
// Crash consistency on the write side: a checkpoint is built in a
// temp file and published with os.Rename after an fsync, so a
// checkpoint either exists completely or not at all; a crash mid-write
// leaves only a temp file the store's Sweep removes.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"fudj/internal/types"
	"fudj/internal/wire"
)

// checkpointMagic heads every checkpoint file.
const checkpointMagic = "FCKP1\n"

// checkpointExt marks published (complete, renamed) checkpoint files.
const checkpointExt = ".ckpt"

// CorruptError reports a checkpoint that failed an integrity check on
// reopen: truncated (no terminator), bit-flipped (CRC mismatch), or
// structurally invalid. It is how the recovery manager distinguishes
// "heal by recompute" from genuine I/O failure.
type CorruptError struct {
	Path   string
	Reason string
}

// Error implements the error interface.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("storage: corrupt checkpoint %s: %s", e.Path, e.Reason)
}

// CheckpointStore owns one query's checkpoint directory. Keys are flat
// names (e.g. "s0-shuffle-left-p3"); a key maps to one file. The zero
// value is unusable — build stores with NewCheckpointStore.
type CheckpointStore struct {
	dir string
}

// NewCheckpointStore creates a fresh checkpoint directory for one
// query execution. Sweep removes it and everything inside.
func NewCheckpointStore() (*CheckpointStore, error) {
	dir, err := os.MkdirTemp("", "fudj-ckpt-*")
	if err != nil {
		return nil, fmt.Errorf("storage: create checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// Path returns the published path for a checkpoint key.
func (s *CheckpointStore) Path(key string) string {
	return filepath.Join(s.dir, key+checkpointExt)
}

// Sweep removes the checkpoint directory and everything in it —
// published checkpoints and any temp files a failure left behind.
func (s *CheckpointStore) Sweep() error {
	if s == nil || s.dir == "" {
		return nil
	}
	return os.RemoveAll(s.dir)
}

// Remove deletes one published checkpoint (a corrupt one being healed,
// or one superseded by a rerun).
func (s *CheckpointStore) Remove(key string) error {
	err := os.Remove(s.Path(key))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// SaveRecords checkpoints a record batch under key, returning the
// bytes written. The previous checkpoint under the same key, if any,
// is atomically replaced.
func (s *CheckpointStore) SaveRecords(key string, recs []types.Record) (int64, error) {
	w, err := s.NewCheckpointWriter(key)
	if err != nil {
		return 0, err
	}
	if err := w.Append(recs...); err != nil {
		w.Abort()
		return 0, err
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return 0, err
	}
	return w.Bytes(), nil
}

// SaveBlob checkpoints one opaque blob (e.g. an encoded PPlan) under
// key, returning the bytes written.
func (s *CheckpointStore) SaveBlob(key string, blob []byte) (int64, error) {
	w, err := s.NewCheckpointWriter(key)
	if err != nil {
		return 0, err
	}
	if err := w.AppendBlob(blob); err != nil {
		w.Abort()
		return 0, err
	}
	if err := w.Close(); err != nil {
		w.Abort()
		return 0, err
	}
	return w.Bytes(), nil
}

// LoadRecords reads back a record checkpoint. It returns
// os.ErrNotExist when no checkpoint was published under key and a
// *CorruptError when the file fails an integrity check.
func (s *CheckpointStore) LoadRecords(key string) ([]types.Record, error) {
	r, err := OpenCheckpoint(s.Path(key))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out []types.Record
	for {
		recs, err := r.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out, nil
			}
			return nil, err
		}
		out = append(out, recs...)
	}
}

// LoadBlob reads back a single-frame blob checkpoint.
func (s *CheckpointStore) LoadBlob(key string) ([]byte, error) {
	r, err := OpenCheckpoint(s.Path(key))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	blob, err := r.NextBlob()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, &CorruptError{Path: s.Path(key), Reason: "blob checkpoint holds no frame"}
		}
		return nil, err
	}
	return blob, nil
}

// CheckpointWriter builds one checkpoint in a temp file; Close
// publishes it atomically under its key, Abort discards it. Exactly
// one of the two must be called on every path (the spillclose analyzer
// enforces this, as it does for spill RunWriters).
type CheckpointWriter struct {
	f       *os.File
	w       *bufio.Writer
	dst     string // published path, set at Close
	pending []types.Record
	scratch *types.Batch // column staging reused across frames
	bytes   int64
	frames  uint64
	done    bool
}

// NewCheckpointWriter starts a checkpoint for key. The temp file lives
// in the store's directory so the final rename never crosses
// filesystems.
func (s *CheckpointStore) NewCheckpointWriter(key string) (*CheckpointWriter, error) {
	f, err := os.CreateTemp(s.dir, key+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("storage: create checkpoint temp: %w", err)
	}
	w := &CheckpointWriter{f: f, w: bufio.NewWriter(f), dst: s.Path(key), scratch: types.NewBatch(0)}
	if _, err := w.w.WriteString(checkpointMagic); err != nil {
		w.Abort()
		return nil, fmt.Errorf("storage: write checkpoint magic: %w", err)
	}
	w.bytes += int64(len(checkpointMagic))
	return w, nil
}

// Append adds records to the checkpoint, sealing a frame when the
// pending batch reaches the spill frame target.
func (cw *CheckpointWriter) Append(recs ...types.Record) error {
	if cw.done {
		return fmt.Errorf("storage: append to finished checkpoint %s", cw.dst)
	}
	cw.pending = append(cw.pending, recs...)
	if len(cw.pending) > 0 && types.RecordsMemSize(cw.pending) >= spillFrameTarget {
		return cw.flushFrame()
	}
	return nil
}

// AppendBlob writes one opaque payload as its own frame. Empty blobs
// are rejected: a zero frame length is the terminator.
func (cw *CheckpointWriter) AppendBlob(blob []byte) error {
	if cw.done {
		return fmt.Errorf("storage: append to finished checkpoint %s", cw.dst)
	}
	if len(blob) == 0 {
		return fmt.Errorf("storage: checkpoint blob frame must be non-empty")
	}
	return cw.writeFrame(blob)
}

// flushFrame encodes and writes the pending record batch as one frame.
func (cw *CheckpointWriter) flushFrame() error {
	if len(cw.pending) == 0 {
		return nil
	}
	payload := types.EncodeBatch(cw.pending, cw.scratch)
	cw.pending = cw.pending[:0]
	return cw.writeFrame(payload)
}

// writeFrame emits uvarint(len) | crc32 | payload.
func (cw *CheckpointWriter) writeFrame(payload []byte) error {
	var hdr [binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(payload))
	n += 4
	if _, err := cw.w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("storage: write checkpoint frame: %w", err)
	}
	if _, err := cw.w.Write(payload); err != nil {
		return fmt.Errorf("storage: write checkpoint frame: %w", err)
	}
	cw.bytes += int64(n) + int64(len(payload))
	cw.frames++
	return nil
}

// Bytes returns the bytes written so far (sealed frames plus header).
func (cw *CheckpointWriter) Bytes() int64 { return cw.bytes }

// Close seals the final frame, writes the terminator, syncs, and
// atomically publishes the checkpoint under its key.
func (cw *CheckpointWriter) Close() error {
	if cw.done {
		return nil
	}
	if err := cw.flushFrame(); err != nil {
		return err
	}
	cw.done = true
	var term [1 + 8 + 4]byte
	term[0] = 0 // uvarint(0)
	binary.LittleEndian.PutUint64(term[1:], cw.frames)
	binary.LittleEndian.PutUint32(term[9:], crc32.ChecksumIEEE(term[1:9]))
	if _, err := cw.w.Write(term[:]); err != nil {
		return fmt.Errorf("storage: write checkpoint terminator: %w", err)
	}
	cw.bytes += int64(len(term))
	if err := cw.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush checkpoint: %w", err)
	}
	if err := cw.f.Sync(); err != nil {
		cw.f.Close()
		return fmt.Errorf("storage: sync checkpoint: %w", err)
	}
	if err := cw.f.Close(); err != nil {
		return fmt.Errorf("storage: close checkpoint: %w", err)
	}
	if err := os.Rename(cw.f.Name(), cw.dst); err != nil {
		return fmt.Errorf("storage: publish checkpoint: %w", err)
	}
	return nil
}

// Abort discards an unfinished checkpoint, removing its temp file. A
// published (Closed) checkpoint is left alone.
func (cw *CheckpointWriter) Abort() {
	if cw.done {
		return
	}
	cw.done = true
	cw.f.Close()
	os.Remove(cw.f.Name())
}

// CheckpointReader streams a published checkpoint back frame by frame,
// verifying integrity as it goes. Next/NextBlob return io.EOF only
// after a valid terminator; any earlier end of file, bad magic, or
// checksum mismatch is a *CorruptError.
type CheckpointReader struct {
	f       *os.File
	r       *bufio.Reader
	path    string
	scratch *types.Batch // column staging reused across frames
	size    int64        // total file size, bounds any frame's claimed length
	frames  uint64
	ended   bool // valid terminator seen
}

// OpenCheckpoint opens a published checkpoint for reading, verifying
// the magic header.
func OpenCheckpoint(path string) (*CheckpointReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat checkpoint: %w", err)
	}
	cr := &CheckpointReader{f: f, r: bufio.NewReader(f), path: path, scratch: types.NewBatch(0), size: fi.Size()}
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(cr.r, magic); err != nil || string(magic) != checkpointMagic {
		f.Close()
		return nil, &CorruptError{Path: path, Reason: "bad magic header"}
	}
	return cr, nil
}

// nextPayload reads one frame payload, or io.EOF after a valid
// terminator.
func (cr *CheckpointReader) nextPayload() ([]byte, error) {
	if cr.ended {
		return nil, io.EOF
	}
	// A frame cannot be larger than the file holding it, so a damaged
	// header errors before allocating for the payload.
	size, err := wire.ReadUvarintCount(cr.r, cr.size, 1)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, &CorruptError{Path: cr.path, Reason: "truncated before terminator"}
		}
		return nil, &CorruptError{Path: cr.path, Reason: fmt.Sprintf("frame header: %v", err)}
	}
	if size == 0 {
		// Terminator: verify the frame count and its checksum.
		var tail [12]byte
		if _, err := io.ReadFull(cr.r, tail[:]); err != nil {
			return nil, &CorruptError{Path: cr.path, Reason: "truncated terminator"}
		}
		want := binary.LittleEndian.Uint32(tail[8:])
		if crc32.ChecksumIEEE(tail[:8]) != want {
			return nil, &CorruptError{Path: cr.path, Reason: "terminator checksum mismatch"}
		}
		if n := binary.LittleEndian.Uint64(tail[:8]); n != cr.frames {
			return nil, &CorruptError{Path: cr.path, Reason: fmt.Sprintf("terminator claims %d frames, read %d", n, cr.frames)}
		}
		cr.ended = true
		return nil, io.EOF
	}
	var crc [4]byte
	if _, err := io.ReadFull(cr.r, crc[:]); err != nil {
		return nil, &CorruptError{Path: cr.path, Reason: "truncated frame checksum"}
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(cr.r, payload); err != nil {
		return nil, &CorruptError{Path: cr.path, Reason: "truncated frame payload"}
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crc[:]) {
		return nil, &CorruptError{Path: cr.path, Reason: "frame checksum mismatch"}
	}
	cr.frames++
	return payload, nil
}

// Next returns the next frame decoded as a record batch.
func (cr *CheckpointReader) Next() ([]types.Record, error) {
	payload, err := cr.nextPayload()
	if err != nil {
		return nil, err
	}
	recs, err := types.DecodeBatch(payload, cr.scratch)
	if err != nil {
		// The checksum passed, so this is a frame that never held
		// records (e.g. a blob checkpoint read as records).
		return nil, &CorruptError{Path: cr.path, Reason: fmt.Sprintf("frame decode: %v", err)}
	}
	return recs, nil
}

// NextBlob returns the next frame's raw payload.
func (cr *CheckpointReader) NextBlob() ([]byte, error) {
	return cr.nextPayload()
}

// Close closes the underlying file.
func (cr *CheckpointReader) Close() error { return cr.f.Close() }
