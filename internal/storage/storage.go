// Package storage persists datasets: a compact binary format built on
// the engine's wire encoding (the analogue of the storage files a real
// BDMS keeps), plus a TSV reader compatible with cmd/datagen's output
// so externally prepared data can be imported.
package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/types"
	"fudj/internal/wire"
)

// magic identifies the binary dataset format; the byte after it is the
// format version.
const (
	magic   = "FUDJDS"
	version = 1
)

// WriteDataset writes a named dataset in the binary format.
func WriteDataset(w io.Writer, name string, schema *types.Schema, recs []types.Record) error {
	e := wire.NewEncoder(1024)
	e.Raw([]byte(magic))
	e.Byte(version)
	e.String(name)
	e.Uvarint(uint64(schema.Len()))
	for _, f := range schema.Fields {
		e.String(f.Name)
		e.Byte(byte(f.Kind))
	}
	e.Uvarint(uint64(len(recs)))
	for _, r := range recs {
		if len(r) != schema.Len() {
			return fmt.Errorf("storage: record has %d fields, schema %d", len(r), schema.Len())
		}
		r.MarshalWire(e)
	}
	_, err := w.Write(e.Bytes())
	return err
}

// ReadDataset reads a dataset written by WriteDataset.
func ReadDataset(r io.Reader) (name string, schema *types.Schema, recs []types.Record, err error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return "", nil, nil, err
	}
	if len(buf) < len(magic)+1 || string(buf[:len(magic)]) != magic {
		return "", nil, nil, fmt.Errorf("storage: not a FUDJ dataset file")
	}
	if buf[len(magic)] != version {
		return "", nil, nil, fmt.Errorf("storage: unsupported format version %d", buf[len(magic)])
	}
	d := wire.NewDecoder(buf[len(magic)+1:])
	if name, err = d.String(); err != nil {
		return "", nil, nil, err
	}
	// Each field costs at least two bytes (name length prefix + kind),
	// so a corrupt count larger than the file errors before allocating.
	nFields, err := d.UvarintCount(2)
	if err != nil {
		return "", nil, nil, err
	}
	fields := make([]types.Field, nFields)
	for i := range fields {
		if fields[i].Name, err = d.String(); err != nil {
			return "", nil, nil, err
		}
		kind, err := d.Byte()
		if err != nil {
			return "", nil, nil, err
		}
		fields[i].Kind = types.Kind(kind)
	}
	schema = types.NewSchema(fields...)
	// Every record needs at least one byte of payload.
	nRecs, err := d.UvarintCount(1)
	if err != nil {
		return "", nil, nil, err
	}
	recs = make([]types.Record, nRecs)
	for i := range recs {
		if recs[i], err = types.DecodeRecord(d); err != nil {
			return "", nil, nil, fmt.Errorf("storage: record %d: %w", i, err)
		}
		if len(recs[i]) != schema.Len() {
			return "", nil, nil, fmt.Errorf("storage: record %d has %d fields, schema %d", i, len(recs[i]), schema.Len())
		}
	}
	if d.Remaining() != 0 {
		return "", nil, nil, fmt.Errorf("storage: %d trailing bytes", d.Remaining())
	}
	return name, schema, recs, nil
}

// SaveFile writes a dataset to path.
func SaveFile(path, name string, schema *types.Schema, recs []types.Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDataset(f, name, schema, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (string, *types.Schema, []types.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, nil, err
	}
	defer f.Close()
	return ReadDataset(f)
}

// ParseValue parses the textual rendering Value.String produces back
// into a value of the given kind; it is the inverse used by the TSV
// importer. Polygons and lists round-trip through the binary format
// only (their text forms are abbreviated).
func ParseValue(kind types.Kind, text string) (types.Value, error) {
	text = strings.TrimSpace(text)
	switch kind {
	case types.KindNull:
		return types.Null, nil
	case types.KindBool:
		b, err := strconv.ParseBool(text)
		if err != nil {
			return types.Null, fmt.Errorf("storage: bad bool %q", text)
		}
		return types.NewBool(b), nil
	case types.KindInt64:
		i, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return types.Null, fmt.Errorf("storage: bad int %q", text)
		}
		return types.NewInt64(i), nil
	case types.KindFloat64:
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return types.Null, fmt.Errorf("storage: bad float %q", text)
		}
		return types.NewFloat64(f), nil
	case types.KindString:
		if strings.HasPrefix(text, `"`) {
			s, err := strconv.Unquote(text)
			if err != nil {
				return types.Null, fmt.Errorf("storage: bad string %q", text)
			}
			return types.NewString(s), nil
		}
		return types.NewString(text), nil
	case types.KindPoint:
		var x, y float64
		if _, err := fmt.Sscanf(text, "POINT(%f %f)", &x, &y); err != nil {
			return types.Null, fmt.Errorf("storage: bad point %q", text)
		}
		return types.NewPoint(geo.Point{X: x, Y: y}), nil
	case types.KindRect:
		var x1, y1, x2, y2 float64
		if _, err := fmt.Sscanf(text, "RECT(%f %f, %f %f)", &x1, &y1, &x2, &y2); err != nil {
			return types.Null, fmt.Errorf("storage: bad rect %q", text)
		}
		return types.NewRect(geo.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}), nil
	case types.KindInterval:
		var s, e int64
		if _, err := fmt.Sscanf(text, "[%d,%d]", &s, &e); err != nil {
			return types.Null, fmt.Errorf("storage: bad interval %q", text)
		}
		return types.NewInterval(interval.Interval{Start: s, End: e}), nil
	}
	return types.Null, fmt.Errorf("storage: cannot parse %v from text (use the binary format)", kind)
}

// ReadTSV imports a dataset in cmd/datagen's TSV layout: an optional
// "# comment" line, a header row of field names, then one record per
// line. Field kinds come from the provided schema (names must match
// the header).
func ReadTSV(r io.Reader, schema *types.Schema) ([]types.Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	// Header (skipping comments).
	var header []string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
			continue
		}
		header = strings.Split(line, "\t")
		break
	}
	if len(header) != schema.Len() {
		return nil, fmt.Errorf("storage: header has %d columns, schema %d", len(header), schema.Len())
	}
	for i, name := range header {
		if strings.TrimSpace(name) != schema.Fields[i].Name {
			return nil, fmt.Errorf("storage: column %d is %q, schema wants %q", i, name, schema.Fields[i].Name)
		}
	}

	var recs []types.Record
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cells := strings.Split(line, "\t")
		if len(cells) != schema.Len() {
			return nil, fmt.Errorf("storage: line %d has %d columns, schema %d", lineNo, len(cells), schema.Len())
		}
		rec := make(types.Record, len(cells))
		for i, cell := range cells {
			v, err := ParseValue(schema.Fields[i].Kind, cell)
			if err != nil {
				return nil, fmt.Errorf("storage: line %d column %q: %w", lineNo, schema.Fields[i].Name, err)
			}
			rec[i] = v
		}
		recs = append(recs, rec)
	}
	return recs, sc.Err()
}
