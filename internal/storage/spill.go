// Spill runs: temporary on-disk record streams backing the engine's
// memory-bounded COMBINE. A run is a sequence of length-prefixed
// frames, each holding one encoded record batch, so a reader can
// stream a run back frame by frame with memory bounded by the frame
// size rather than the run size — the property hybrid-hash processing
// depends on when a spilled bucket is larger than the memory budget.
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"fudj/internal/types"
	"fudj/internal/wire"
)

// spillFrameTarget is the encoded size at which a RunWriter seals the
// current frame. Frames bound the reader's working memory, so the
// target is deliberately small relative to realistic budgets.
const spillFrameTarget = 64 << 10

// RunWriter appends records to one spill run on disk. It buffers
// records into frames of roughly spillFrameTarget encoded bytes; Close
// flushes the final frame.
type RunWriter struct {
	f       *os.File
	w       *bufio.Writer
	pending []types.Record
	scratch *types.Batch // column staging reused across frames
	bytes   int64        // encoded bytes written (including frame headers)
	records int64
	closed  bool
}

// NewRunWriter creates a fresh run file in dir (which must exist).
func NewRunWriter(dir string) (*RunWriter, error) {
	f, err := os.CreateTemp(dir, "spill-*.run")
	if err != nil {
		return nil, fmt.Errorf("storage: create spill run: %w", err)
	}
	return &RunWriter{f: f, w: bufio.NewWriter(f), scratch: types.NewBatch(0)}, nil
}

// Path returns the run file's path.
func (rw *RunWriter) Path() string { return rw.f.Name() }

// Bytes returns the encoded bytes written so far (sealed frames only).
func (rw *RunWriter) Bytes() int64 { return rw.bytes }

// Records returns the number of records appended so far.
func (rw *RunWriter) Records() int64 { return rw.records }

// Append adds records to the run, sealing a frame when the pending
// batch reaches the frame target.
func (rw *RunWriter) Append(recs ...types.Record) error {
	if rw.closed {
		return fmt.Errorf("storage: append to closed spill run %s", rw.Path())
	}
	rw.pending = append(rw.pending, recs...)
	rw.records += int64(len(recs))
	if len(rw.pending) > 0 && types.RecordsMemSize(rw.pending) >= spillFrameTarget {
		return rw.flushFrame()
	}
	return nil
}

// flushFrame encodes and writes the pending batch as one columnar
// frame.
func (rw *RunWriter) flushFrame() error {
	if len(rw.pending) == 0 {
		return nil
	}
	payload := types.EncodeBatch(rw.pending, rw.scratch)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := rw.w.Write(hdr[:n]); err != nil {
		return fmt.Errorf("storage: write spill frame: %w", err)
	}
	if _, err := rw.w.Write(payload); err != nil {
		return fmt.Errorf("storage: write spill frame: %w", err)
	}
	rw.bytes += int64(n) + int64(len(payload))
	rw.pending = rw.pending[:0]
	return nil
}

// Close flushes the final frame and closes the file. The run remains
// on disk for reading; Remove deletes it.
func (rw *RunWriter) Close() error {
	if rw.closed {
		return nil
	}
	rw.closed = true
	if err := rw.flushFrame(); err != nil {
		return err
	}
	if err := rw.w.Flush(); err != nil {
		return fmt.Errorf("storage: flush spill run: %w", err)
	}
	return rw.f.Close()
}

// Remove closes the writer (if needed) and deletes the run file.
func (rw *RunWriter) Remove() error {
	if !rw.closed {
		rw.closed = true
		rw.f.Close()
	}
	return os.Remove(rw.Path())
}

// RunReader streams a spill run back frame by frame.
type RunReader struct {
	f       *os.File
	r       *bufio.Reader
	scratch *types.Batch // column staging reused across frames
	size    int64        // total file size, bounds any frame's claimed length
}

// OpenRun opens a run file written by RunWriter for streaming.
func OpenRun(path string) (*RunReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open spill run: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat spill run: %w", err)
	}
	return &RunReader{f: f, r: bufio.NewReader(f), scratch: types.NewBatch(0), size: fi.Size()}, nil
}

// Next returns the next frame's records, or io.EOF after the last
// frame. Memory use is bounded by the largest single frame.
func (rr *RunReader) Next() ([]types.Record, error) {
	// A frame cannot be larger than the file that holds it, so a
	// corrupted header errors before allocating for the payload.
	size, err := wire.ReadUvarintCount(rr.r, rr.size, 1)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("storage: spill frame header: %w", err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		return nil, fmt.Errorf("storage: spill frame payload: %w", err)
	}
	recs, err := types.DecodeBatch(payload, rr.scratch)
	if err != nil {
		return nil, fmt.Errorf("storage: spill frame decode: %w", err)
	}
	return recs, nil
}

// Close closes the underlying file.
func (rr *RunReader) Close() error { return rr.f.Close() }
