package spillclose_test

import (
	"testing"

	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/spillclose"
)

func TestSpillClose(t *testing.T) {
	framework.RunTest(t, "testdata", spillclose.Analyzer, "a")
}
