// Package spillclose enforces temp-file hygiene on the disk writers:
// every spill run writer (NewRunWriter) and checkpoint writer
// (NewCheckpointWriter) must be cleaned up — a Close, Remove, or Abort
// call on the assigned variable somewhere in the enclosing function
// (deferred cleanup and cleanup inside closures both count) — or must
// escape the function (returned, passed to a call, or stored into a
// struct, map, or slice that some teardown path sweeps). Discarding
// the writer with the blank identifier is always a leak: nothing can
// ever remove its temp file.
//
// Invariant: a query leaves no orphaned temp file behind, even on
// error paths. The sweep-on-teardown tests catch leaks that actually
// fire; this analyzer catches the ones that need a rare error path to
// fire at all. The check is syntactic (usage, not path domination):
// a writer whose cleanup is reachable on some path but not all paths
// must be restructured so the cleanup dominates — the engine registers
// writers in a deferred-removal map *before* the first write for
// exactly this reason.
package spillclose

import (
	"go/ast"
	"go/types"

	"fudj/internal/analysis/framework"
)

// creators are the writer-constructing functions, matched by name so
// both the package function (storage.NewRunWriter) and the store
// method (store.NewCheckpointWriter) are covered, and fixtures can
// model them.
var creators = map[string]string{
	"NewRunWriter":        "spill run writer",
	"NewCheckpointWriter": "checkpoint writer",
}

// cleanups are the methods whose call on the writer discharges the
// obligation.
var cleanups = map[string]bool{"Close": true, "Remove": true, "Abort": true}

// Analyzer is the spillclose rule.
var Analyzer = &framework.Analyzer{
	Name: "spillclose",
	Doc: "spill run writers and checkpoint writers must be closed, removed, or aborted " +
		"on every path (or escape to an owner that is); a leaked writer orphans its temp file",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc finds writer creations anywhere in fd (closures included)
// and verifies each created variable is cleaned up or escapes within
// fd's body — closures share the enclosing scope, so the whole body is
// the right region to scan.
func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			kind := creatorKind(call)
			if kind == "" {
				continue
			}
			// w, err := New...Writer(...) or w := ... — the writer is the
			// matching LHS (first for a multi-value call).
			var lhs ast.Expr
			if len(as.Rhs) == 1 {
				lhs = as.Lhs[0]
			} else if i < len(as.Lhs) {
				lhs = as.Lhs[i]
			}
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue // stored straight into a field or index: escaped
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"%s discarded with _; its temp file can never be closed or removed", kind)
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if !dischargedIn(pass, fd.Body, obj, id) {
				pass.Reportf(id.Pos(),
					"%s %s is never closed, removed, or aborted and does not escape; "+
						"its temp file leaks on every path", kind, id.Name)
			}
		}
		return true
	})
}

// creatorKind reports which writer kind call constructs, or "".
func creatorKind(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return creators[fun.Name]
	case *ast.SelectorExpr:
		return creators[fun.Sel.Name]
	}
	return ""
}

// dischargedIn reports whether obj's cleanup obligation is discharged
// anywhere in body: a Close/Remove/Abort call on it, or an escape (a
// return, a call argument, a store into a composite/field/index, or a
// reassignment to another variable), counting uses other than the
// declaring identifier itself.
func dischargedIn(pass *framework.Pass, body *ast.BlockStmt, obj types.Object, decl *ast.Ident) bool {
	done := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if done {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// w.Close() / w.Remove() / w.Abort().
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && cleanups[sel.Sel.Name] {
				if id, ok := sel.X.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					done = true
					return false
				}
			}
			// w passed as an argument: ownership transferred.
			for _, arg := range n.Args {
				if refersTo(pass, arg, obj) {
					done = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if refersTo(pass, res, obj) {
					done = true
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if refersTo(pass, elt, obj) {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			// w on the RHS of some other assignment (stored into a map,
			// field, slice element, or another variable the teardown owns).
			for _, rhs := range n.Rhs {
				if id, ok := rhs.(*ast.Ident); ok && id != decl && pass.TypesInfo.ObjectOf(id) == obj {
					done = true
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
	return done
}

// refersTo reports whether expr is (or unwraps to) a reference to obj.
func refersTo(pass *framework.Pass, expr ast.Expr, obj types.Object) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(e) == obj
	case *ast.UnaryExpr:
		return refersTo(pass, e.X, obj)
	case *ast.KeyValueExpr:
		return refersTo(pass, e.Value, obj)
	}
	return false
}
