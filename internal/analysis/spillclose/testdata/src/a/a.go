// Fixture for the spillclose analyzer: spill run writers and
// checkpoint writers must be cleaned up or escape.
package a

// RunWriter models storage.RunWriter.
type RunWriter struct{}

func (w *RunWriter) Append(recs ...int) error { return nil }
func (w *RunWriter) Close() error             { return nil }
func (w *RunWriter) Remove()                  {}

// CheckpointWriter models storage.CheckpointWriter.
type CheckpointWriter struct{}

func (w *CheckpointWriter) Append(recs ...int) error { return nil }
func (w *CheckpointWriter) Close() error             { return nil }
func (w *CheckpointWriter) Abort()                   {}

func NewRunWriter(dir string) (*RunWriter, error) { return &RunWriter{}, nil }

// Store models storage.CheckpointStore.
type Store struct{}

func (s *Store) NewCheckpointWriter(key string) (*CheckpointWriter, error) {
	return &CheckpointWriter{}, nil
}

func closed(dir string) error {
	w, err := NewRunWriter(dir)
	if err != nil {
		return err
	}
	defer w.Close()
	return w.Append(1)
}

func removedOnError(dir string) (*RunWriter, error) {
	w, err := NewRunWriter(dir)
	if err != nil {
		return nil, err
	}
	if err := w.Append(1); err != nil {
		w.Remove()
		return nil, err
	}
	return w, nil // escapes to the caller
}

func aborted(s *Store) error {
	w, err := s.NewCheckpointWriter("k")
	if err != nil {
		return err
	}
	if err := w.Append(1); err != nil {
		w.Abort()
		return err
	}
	return w.Close()
}

func leaked(dir string) error {
	w, err := NewRunWriter(dir) // want `spill run writer w is never closed`
	if err != nil {
		return err
	}
	return w.Append(1)
}

func leakedCheckpoint(s *Store) error {
	w, err := s.NewCheckpointWriter("k") // want `checkpoint writer w is never closed`
	if err != nil {
		return err
	}
	return w.Append(1)
}

func discarded(dir string) {
	_, _ = NewRunWriter(dir) // want `spill run writer discarded with _`
}

type spillPair struct {
	left, right *RunWriter
}

func escapesIntoStruct(dir string) (*spillPair, error) {
	left, err := NewRunWriter(dir)
	if err != nil {
		return nil, err
	}
	right, err := NewRunWriter(dir)
	if err != nil {
		left.Remove()
		return nil, err
	}
	return &spillPair{left: left, right: right}, nil
}

func escapesIntoMap(dir string, m map[int]*RunWriter) error {
	w, err := NewRunWriter(dir)
	if err != nil {
		return err
	}
	m[0] = w // the map's owner sweeps it
	return w.Append(1)
}

func sink(w *RunWriter) {}

func escapesAsArgument(dir string) error {
	w, err := NewRunWriter(dir)
	if err != nil {
		return err
	}
	sink(w)
	return nil
}

func closedInClosure(dir string) (func(), error) {
	w, err := NewRunWriter(dir)
	if err != nil {
		return nil, err
	}
	return func() { w.Remove() }, nil
}
