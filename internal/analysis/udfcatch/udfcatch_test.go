package udfcatch_test

import (
	"testing"

	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/udfcatch"
)

func TestUDFCatch(t *testing.T) {
	framework.RunTest(t, "testdata", udfcatch.Analyzer, "a", "b")
}
