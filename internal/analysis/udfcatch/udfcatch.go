// Package udfcatch verifies that every call into user-defined join
// code is dominated by a deferred panic guard.
//
// Invariant: a FUDJ library author's SUMMARIZE/DIVIDE/ASSIGN/MATCH/
// VERIFY/DEDUP implementations are untrusted code running inside
// worker tasks. A panic that escapes a partition task kills the whole
// process instead of failing the one query with a structured
// *core.UDFError, defeating retry and speculation. Every call site of
// a user function must therefore execute under a deferred
// core.CatchPanic (or an explicit deferred recover).
//
// The check is interprocedural: a helper that calls user code without
// its own guard is not reported at the call — instead the analyzer
// records a NeedsGuard fact for it (exported across package boundaries
// through the framework's fact store) and checks the helper's callers
// exactly like direct UDF calls. The guard obligation is discharged
// where a deferred guard lexically dominates the risky call, and
// enforced hard at the places a caller's guard cannot reach:
//
//   - closures passed to the cluster's partition drivers (Run,
//     RunValues, Exchange*, Replicate) and function bodies launched
//     with `go` run on other goroutines, so they must install their own
//     guard before any risky call;
//   - a NeedsGuard function value launched with `go` or handed to a
//     partition driver is reported at the hand-off;
//   - a NeedsGuard function exported from a non-internal package is
//     reported at its declaration, because module-external callers are
//     outside the call graph.
//
// Function-typed parameters carry a complementary fact: a callee whose
// parameter is only ever invoked under a deferred guard (the engine's
// runSmartTheta, whose combine callback runs inside guarded partition
// closures) exports a guarded-parameter fact, so passing an unguarded
// UDF-calling closure to it is proven safe rather than suppressed.
//
// Soundness limits (documented in DESIGN.md §9.7): a function value
// that escapes through a struct field, global, channel, or interface
// is not tracked — passing one in such a position is treated as an
// ordinary use needing a dominating guard; calls through non-UDF-named
// interface methods do not consult facts and are assumed clean; a
// caller's guard is assumed to cover synchronous callees (it cannot
// cover goroutines the callee spawns, which is why driver hand-offs
// are checked separately).
//
// The typed translation layer (core/typed.go) is exempt where a method
// that *is* one of the guarded entry points (e.g. wrapped.Verify)
// forwards to the user's function field: the guard obligation attaches
// to its own callers, which this rule checks.
package udfcatch

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fudj/internal/analysis/framework"
)

// Analyzer is the udfcatch rule.
var Analyzer = &framework.Analyzer{
	Name: "udfcatch",
	Doc: "every call to a user-defined join function must be dominated by a deferred " +
		"core.CatchPanic so a UDF panic fails the query, not the worker",
	Run: run,
}

// udfMethods are the core.Join interface methods that execute user
// code. Calls to these on an interface value are the engine's UDF
// entry points.
var udfMethods = map[string]bool{
	"Assign": true, "Match": true, "Verify": true, "Dedup": true,
	"LocalAggregate": true, "GlobalAggregate": true, "Divide": true,
	"LocalJoin": true,
}

// udfFields are user-supplied function-typed struct fields (the typed
// Spec surface) whose invocation runs user code directly.
var udfFields = map[string]bool{
	"Assign": true, "AssignLeft": true, "AssignRight": true,
	"Match": true, "Verify": true, "Dedup": true, "DedupFn": true,
	"LocalAggregate": true, "LocalAggLeft": true, "LocalAggRight": true,
	"GlobalAggregate": true, "GlobalAgg": true,
	"Divide": true, "LocalJoin": true,
}

// partitionDrivers are Cluster methods (and the generic RunValues
// package function) that execute a function argument on worker
// goroutines: a caller's deferred guard cannot catch panics there, so
// closures handed to them must guard internally.
var partitionDrivers = map[string]bool{
	"Run": true, "RunValues": true,
	"Exchange": true, "ExchangeHash": true, "ExchangeMulti": true, "ExchangeRandom": true,
	"Replicate": true,
}

// eventKind classifies one risky occurrence inside a function.
type eventKind int

const (
	// evDirectUDF is a direct call into user code (interface dispatch
	// on a UDF method name, or a Spec function field).
	evDirectUDF eventKind = iota
	// evCall is a call to a resolvable function object or closure whose
	// riskiness depends on its NeedsGuard fact.
	evCall
	// evUse is a non-call use of a function value (argument pass,
	// assignment, return). Risky only if the value NeedsGuard and the
	// receiving parameter is not proven guarded.
	evUse
	// evGo is a function value launched with `go` — a caller guard
	// never applies, so a risky value here is always a finding.
	evGo
	// evDriverPass is a function value handed to a partition driver —
	// it runs on worker goroutines, same rule as evGo.
	evDriverPass
)

// event is one risky occurrence, recorded during the walk and judged
// after the fixpoint.
type event struct {
	kind    eventKind
	pos     token.Pos
	name    string       // display name
	obj     types.Object // callee/used object (nil for literals)
	lit     *ast.FuncLit // used/called literal (nil for objects)
	callee  types.Object // for evUse in argument position: receiving function
	argIdx  int          // parameter index at callee (-1 otherwise)
	guarded bool         // dominated by a deferred guard (crossing-aware)
}

// funcNode is one function declaration or literal under analysis.
type funcNode struct {
	decl   *ast.FuncDecl // nil for literals
	lit    *ast.FuncLit  // nil for declarations
	obj    types.Object  // declared or bound object, if any
	events []event

	// crossing marks literals that run on other goroutines (partition
	// driver arguments, go statement callees): guards outside them do
	// not apply, and unguarded risky events inside them are reported
	// rather than propagated.
	crossing bool
	// crossingWhy says which boundary makes it crossing, for messages.
	crossingWhy string

	needsGuard bool
	exempt     bool

	// fnParams lists the function-typed parameters of a declaration
	// (param index -> object); guardedParams tracks which of them are
	// proven to be invoked only under a guard.
	fnParams      map[int]types.Object
	guardedParams map[int]bool
}

type analysis struct {
	pass  *framework.Pass
	nodes []*funcNode
	// byLit and byObj resolve literals and (bound or declared) function
	// objects to their nodes.
	byLit map[*ast.FuncLit]*funcNode
	byObj map[types.Object]*funcNode
}

func run(pass *framework.Pass) error {
	a := &analysis{
		pass:  pass,
		byLit: make(map[*ast.FuncLit]*funcNode),
		byObj: make(map[types.Object]*funcNode),
	}

	// Collect nodes and their risky events.
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			node := &funcNode{
				decl:          fd,
				obj:           pass.TypesInfo.ObjectOf(fd.Name),
				exempt:        fd.Recv != nil && udfMethods[fd.Name.Name],
				fnParams:      make(map[int]types.Object),
				guardedParams: make(map[int]bool),
			}
			a.nodes = append(a.nodes, node)
			if node.obj != nil {
				a.byObj[node.obj] = node
			}
			if node.exempt {
				continue // forwarding layer: obligation attaches to callers
			}
			a.collectParams(node)
			a.walk(fd.Body, []*walkFrame{{node: node}})
		}
	}

	// Bottom-up fixpoint: NeedsGuard and guarded-parameter sets are
	// monotone (guardedParams only shrinks, needsGuard only grows), so
	// iteration terminates.
	a.fixpoint()

	// Export facts before reporting so dependent packages resolve this
	// package's helpers either way.
	for _, n := range a.nodes {
		if n.decl == nil || n.obj == nil {
			continue
		}
		node := n
		pass.Facts.ExportFunc(n.obj, func(f *framework.FuncFact) {
			f.NeedsGuard = node.needsGuard
			f.GuardedFnParams = 0
			for i := range node.fnParams {
				if node.guardedParams[i] && i < 64 {
					f.GuardedFnParams |= 1 << uint(i)
				}
			}
		})
	}

	a.report()
	return nil
}

// collectParams records fd's function-typed parameters; they start as
// guarded and lose the property when a use that could invoke them
// unguarded is seen.
func (a *analysis) collectParams(n *funcNode) {
	fn, ok := n.obj.(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, ok := p.Type().Underlying().(*types.Signature); ok {
			n.fnParams[i] = p
			n.guardedParams[i] = true
		}
	}
}

// walkFrame is one function on the lexical stack with the earliest
// deferred guard seen in it.
type walkFrame struct {
	node     *funcNode
	guardPos token.Pos
}

func dominated(stack []*walkFrame, pos token.Pos) bool {
	for _, f := range stack {
		if f.guardPos != token.NoPos && f.guardPos < pos {
			return true
		}
	}
	return false
}

// walk traverses one function body in source order, recording risky
// events on the innermost frame's node and recursing into literals
// with crossing-aware stacks.
func (a *analysis) walk(body ast.Node, stack []*walkFrame) {
	top := stack[len(stack)-1]
	ast.Inspect(body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			// Visited explicitly from the constructs below; a literal
			// reached here is an inline value use (immediate call
			// handled in CallExpr, assignment binding in AssignStmt).
			a.enterLit(node, stack, false, "")
			a.addEvent(top, stack, event{kind: evUse, pos: node.Pos(), name: "function literal", lit: node, argIdx: -1})
			return false
		case *ast.DeferStmt:
			if isGuard(node.Call) {
				if top.guardPos == token.NoPos {
					top.guardPos = node.Pos()
				}
			} else {
				a.visitCall(node.Call, stack)
				return false
			}
		case *ast.GoStmt:
			a.visitGo(node, stack)
			return false
		case *ast.AssignStmt:
			a.visitAssign(node, stack)
			return false
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				a.visitValue(res, stack)
			}
			return false
		case *ast.CallExpr:
			a.visitCall(node, stack)
			return false
		}
		return true
	})
}

// enterLit analyzes a function literal as its own node.
func (a *analysis) enterLit(lit *ast.FuncLit, stack []*walkFrame, crossing bool, why string) *funcNode {
	if n, ok := a.byLit[lit]; ok {
		return n
	}
	n := &funcNode{lit: lit, crossing: crossing, crossingWhy: why}
	a.byLit[lit] = n
	a.nodes = append(a.nodes, n)
	if crossing {
		// Guards in the enclosing frames belong to another goroutine.
		a.walk(lit.Body, []*walkFrame{{node: n}})
	} else {
		a.walk(lit.Body, append(stack, &walkFrame{node: n}))
	}
	return n
}

// visitAssign handles closure bindings (x := func(){...}) and treats
// any other function-valued right-hand side as a value use.
func (a *analysis) visitAssign(as *ast.AssignStmt, stack []*walkFrame) {
	for i, rhs := range as.Rhs {
		if lit, ok := rhs.(*ast.FuncLit); ok {
			n := a.enterLit(lit, stack, false, "")
			if i < len(as.Lhs) {
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := a.pass.TypesInfo.ObjectOf(id); obj != nil {
						n.obj = obj
						a.byObj[obj] = n
					}
				}
			}
			continue
		}
		a.visitValue(rhs, stack)
	}
}

// visitGo records the goroutine hand-off of node.Call's callee and then
// the call's arguments.
func (a *analysis) visitGo(g *ast.GoStmt, stack []*walkFrame) {
	top := stack[len(stack)-1]
	call := g.Call
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		a.enterLit(fun, stack, true, "a goroutine")
	default:
		if obj := calleeObject(a.pass, call); obj != nil {
			a.addEvent(top, stack, event{kind: evGo, pos: call.Pos(), name: exprName(fun), obj: obj, argIdx: -1})
		}
	}
	for _, arg := range call.Args {
		a.visitValue(arg, stack)
	}
}

// visitCall records a call event for the callee and use/driver-pass
// events for function-valued arguments, then recurses into argument
// expressions.
func (a *analysis) visitCall(call *ast.CallExpr, stack []*walkFrame) {
	top := stack[len(stack)-1]

	// The callee itself.
	if name, ok := udfCallee(a.pass, call); ok {
		a.addEvent(top, stack, event{kind: evDirectUDF, pos: call.Pos(), name: name, argIdx: -1})
	} else if lit, ok := call.Fun.(*ast.FuncLit); ok {
		a.enterLit(lit, stack, false, "")
		a.addEvent(top, stack, event{kind: evCall, pos: call.Pos(), name: "function literal", lit: lit, argIdx: -1})
	} else if obj := calleeObject(a.pass, call); obj != nil {
		a.addEvent(top, stack, event{kind: evCall, pos: call.Pos(), name: exprName(call.Fun), obj: obj, argIdx: -1})
	} else if inner, ok := call.Fun.(*ast.CallExpr); ok {
		a.visitCall(inner, stack)
	}

	driver := isPartitionDriver(a.pass, call)
	callee := calleeObject(a.pass, call)
	for i, arg := range call.Args {
		switch v := arg.(type) {
		case *ast.FuncLit:
			if driver {
				a.enterLit(v, stack, true, "a partition task")
			} else {
				a.enterLit(v, stack, false, "")
				a.addEvent(top, stack, event{kind: evUse, pos: v.Pos(), name: "function literal", lit: v, callee: callee, argIdx: paramIndex(callee, call, i)})
			}
		case *ast.Ident:
			if fn := a.funcValued(v); fn != nil {
				kind := evUse
				if driver {
					kind = evDriverPass
				}
				a.addEvent(top, stack, event{kind: kind, pos: v.Pos(), name: v.Name, obj: fn, callee: callee, argIdx: paramIndex(callee, call, i)})
			}
		case *ast.SelectorExpr:
			// Package-qualified functions and method values passed as
			// arguments (pkg.Helper, recv.Method).
			if fn := a.funcValued(v.Sel); fn != nil {
				kind := evUse
				if driver {
					kind = evDriverPass
				}
				a.addEvent(top, stack, event{kind: kind, pos: v.Pos(), name: exprName(v), obj: fn, callee: callee, argIdx: paramIndex(callee, call, i)})
			} else {
				a.visitValue(arg, stack)
			}
		default:
			a.visitValue(arg, stack)
		}
	}
}

// visitValue records value uses of function objects and literals inside
// an arbitrary expression, and treats nested calls normally.
func (a *analysis) visitValue(e ast.Expr, stack []*walkFrame) {
	top := stack[len(stack)-1]
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			a.visitCall(n, stack)
			return false
		case *ast.FuncLit:
			a.enterLit(n, stack, false, "")
			a.addEvent(top, stack, event{kind: evUse, pos: n.Pos(), name: "function literal", lit: n, argIdx: -1})
			return false
		case *ast.Ident:
			if fn := a.funcValued(n); fn != nil {
				a.addEvent(top, stack, event{kind: evUse, pos: n.Pos(), name: n.Name, obj: fn, argIdx: -1})
			}
		}
		return true
	})
}

// addEvent stamps guard domination and appends the event; it also
// downgrades guarded-parameter claims for uses the guard cannot cover.
func (a *analysis) addEvent(top *walkFrame, stack []*walkFrame, ev event) {
	ev.guarded = dominated(stack, ev.pos)
	top.node.events = append(top.node.events, ev)
}

// funcValued resolves id to a function-shaped object worth tracking: a
// declared function/method, a bound closure variable, or a
// function-typed parameter (tracked for guarded-parameter facts).
func (a *analysis) funcValued(id *ast.Ident) types.Object {
	obj := a.pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return nil
	}
	switch obj.(type) {
	case *types.Func:
		return obj
	case *types.Var:
		if _, ok := obj.Type().Underlying().(*types.Signature); ok {
			return obj
		}
	}
	return nil
}

// fixpoint iterates NeedsGuard and guarded-parameter computation to a
// stable state.
func (a *analysis) fixpoint() {
	for iter := 0; iter <= len(a.nodes)+1; iter++ {
		changed := false
		for _, n := range a.nodes {
			if n.exempt {
				continue
			}
			// needsGuard: any undischarged risky event.
			if !n.needsGuard {
				for _, ev := range n.events {
					if a.riskyUndischarged(n, ev) {
						n.needsGuard = true
						changed = true
						break
					}
				}
			}
			// guardedParams: a parameter loses the property on any use
			// that could invoke it unguarded.
			for i, p := range n.fnParams {
				if !n.guardedParams[i] {
					continue
				}
				if !a.paramStaysGuarded(n, p) {
					n.guardedParams[i] = false
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}

// riskyUndischarged reports whether ev keeps an obligation open in n.
func (a *analysis) riskyUndischarged(n *funcNode, ev event) bool {
	switch ev.kind {
	case evDirectUDF:
		return !ev.guarded
	case evCall:
		return a.risky(ev) && !ev.guarded
	case evUse:
		if !a.risky(ev) {
			return false
		}
		if ev.guarded {
			return false // synchronous-callee assumption, see package doc
		}
		return !a.calleeParamGuarded(ev.callee, ev.argIdx)
	case evGo, evDriverPass:
		// Judged in report(); a risky hand-off is a finding there, not
		// a propagated obligation (the UDF runs on another goroutine).
		return false
	}
	return false
}

// paramStaysGuarded re-examines every event touching parameter p across
// n and the literals nested in it. Uses are collected on the node the
// event occurred in, so scan all nodes.
func (a *analysis) paramStaysGuarded(n *funcNode, p types.Object) bool {
	for _, node := range a.nodes {
		for _, ev := range node.events {
			if ev.obj != p {
				continue
			}
			switch ev.kind {
			case evGo, evDriverPass:
				return false // hand-off to another goroutine we can't see through
			case evCall:
				if !ev.guarded {
					return false
				}
			case evUse:
				if !ev.guarded && !a.calleeParamGuarded(ev.callee, ev.argIdx) {
					return false
				}
			}
		}
	}
	return true
}

// risky reports whether the event's target may run user code unguarded.
func (a *analysis) risky(ev event) bool {
	if ev.lit != nil {
		if n, ok := a.byLit[ev.lit]; ok {
			return n.needsGuard
		}
		return false
	}
	return a.objNeedsGuard(ev.obj)
}

func (a *analysis) objNeedsGuard(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if n, ok := a.byObj[obj]; ok {
		return n.needsGuard
	}
	if fact := a.pass.Facts.Func(obj); fact != nil {
		return fact.NeedsGuard
	}
	return false
}

// calleeParamGuarded reports whether callee's parameter idx is proven
// to be invoked only under a deferred guard.
func (a *analysis) calleeParamGuarded(callee types.Object, idx int) bool {
	if callee == nil || idx < 0 {
		return false
	}
	if n, ok := a.byObj[callee]; ok {
		return n.guardedParams[idx]
	}
	if fact := a.pass.Facts.Func(callee); fact != nil && idx < 64 {
		return fact.GuardedFnParams&(1<<uint(idx)) != 0
	}
	return false
}

// report emits the findings the fixpoint could not discharge.
func (a *analysis) report() {
	pass := a.pass
	for _, n := range a.nodes {
		if n.exempt {
			continue
		}
		// Inside goroutine-crossing literals, every open obligation is
		// a real finding: no caller guard can reach this code.
		if n.crossing {
			for _, ev := range n.events {
				if !a.riskyUndischargedForReport(n, ev) {
					continue
				}
				pass.Reportf(ev.pos,
					"call to user-defined %s runs inside %s with no deferred core.CatchPanic; "+
						"a UDF panic here kills the worker instead of failing the query",
					ev.name, n.crossingWhy)
			}
		}
		// Risky hand-offs to other goroutines are findings anywhere.
		for _, ev := range n.events {
			if ev.kind != evGo && ev.kind != evDriverPass {
				continue
			}
			if !a.risky(ev) {
				continue
			}
			boundary := "launched with go"
			if ev.kind == evDriverPass {
				boundary = "handed to a partition driver"
			}
			pass.Reportf(ev.pos,
				"%s calls user-defined join code without an internal panic guard and is %s; "+
					"the caller's deferred core.CatchPanic cannot catch panics on worker goroutines",
				ev.name, boundary)
		}
		// A NeedsGuard function whose callers the call graph cannot
		// see: main, or exported outside an internal/ subtree.
		if n.decl != nil && n.needsGuard {
			name := n.decl.Name.Name
			if (name == "main" && pass.Pkg.Name() == "main" && n.decl.Recv == nil) ||
				(n.decl.Name.IsExported() && !internalPackage(pass.Pkg.Path())) {
				pass.Reportf(n.decl.Name.Pos(),
					"%s calls user-defined join code with no deferred core.CatchPanic and can be "+
						"called from outside the module, where the call graph cannot verify a guard; "+
						"install one or document the contract with an ignore", name)
			}
		}
	}
}

// riskyUndischargedForReport mirrors riskyUndischarged but is used for
// crossing literals at report time (after the fixpoint settled).
func (a *analysis) riskyUndischargedForReport(n *funcNode, ev event) bool {
	return a.riskyUndischarged(n, ev)
}

// internalPackage reports whether path lies under an internal/ subtree,
// making its exported surface reachable only from inside the module —
// every caller is covered by the analysis run.
func internalPackage(path string) bool {
	return path == "internal" || strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/") || strings.HasSuffix(path, "/internal")
}

// calleeObject resolves call's callee to a function or variable object,
// or nil when dynamic (interface method, indexed expression, ...).
func calleeObject(pass *framework.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(fun)
		switch obj.(type) {
		case *types.Func:
			return obj
		case *types.Var:
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return obj
			}
		case *types.TypeName, *types.Builtin, *types.Nil:
			return nil
		}
		return nil
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func); ok {
			// Interface methods have no body anywhere; facts are keyed
			// to concrete functions, so a dynamic call resolves to no
			// object unless it is a concrete method.
			if s, ok := pass.TypesInfo.Selections[fun]; ok && s.Kind() == types.MethodVal {
				recv := s.Recv()
				if p, ok := recv.(*types.Pointer); ok {
					recv = p.Elem()
				}
				if _, ok := recv.Underlying().(*types.Interface); ok {
					return nil
				}
			}
			return obj
		}
		// Package-qualified function: cluster.RunValues(...).
		if obj, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Var); ok {
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return obj
			}
		}
	case *ast.IndexExpr:
		// Generic instantiation: f[T](...).
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Func); ok {
				return obj
			}
		}
		if sel, ok := fun.X.(*ast.SelectorExpr); ok {
			if obj, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

// paramIndex maps argument position i of call to the callee's parameter
// index, folding variadic tails onto the last parameter. Returns -1
// when the callee is unknown.
func paramIndex(callee types.Object, call *ast.CallExpr, i int) int {
	if callee == nil {
		return -1
	}
	sig, ok := callee.Type().Underlying().(*types.Signature)
	if !ok {
		return -1
	}
	n := sig.Params().Len()
	if n == 0 {
		return -1
	}
	// Method expressions aside, arguments map 1:1 onto parameters.
	if i < n {
		return i
	}
	if sig.Variadic() {
		return n - 1
	}
	return -1
}

// isPartitionDriver reports whether call hands work to worker
// goroutines: a partition-driver method on a Cluster, or the generic
// RunValues-style package function whose first parameter is a *Cluster.
func isPartitionDriver(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if !partitionDrivers[sel.Sel.Name] {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		return ok && named.Obj().Name() == "Cluster"
	}
	// Package function: first explicit argument is the cluster.
	if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() == nil && sig.Params().Len() > 0 {
			return typeNamed(sig.Params().At(0).Type(), "Cluster")
		}
	}
	return false
}

func typeNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	}
	return "function value"
}

// udfCallee reports whether call invokes user-defined join code,
// returning a human-readable name for it.
func udfCallee(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	switch s.Kind() {
	case types.MethodVal:
		if !udfMethods[sel.Sel.Name] {
			return "", false
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		// Only interface dispatch is a UDF boundary: a concrete method
		// named Match on some unrelated type is not user join code.
		if _, ok := recv.Underlying().(*types.Interface); !ok {
			return "", false
		}
		return sel.Sel.Name, true
	case types.FieldVal:
		if !udfFields[sel.Sel.Name] {
			return "", false
		}
		if _, ok := s.Type().Underlying().(*types.Signature); !ok {
			return "", false
		}
		return sel.Sel.Name, true
	}
	return "", false
}

// isGuard recognizes a deferred panic guard: a call to a function
// named CatchPanic, or a deferred closure containing recover().
func isGuard(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "CatchPanic"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "CatchPanic"
	case *ast.FuncLit:
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}
