// Package udfcatch verifies that every call into user-defined join
// code is dominated by a deferred panic guard.
//
// Invariant: a FUDJ library author's SUMMARIZE/DIVIDE/ASSIGN/MATCH/
// VERIFY/DEDUP implementations are untrusted code running inside
// worker tasks. A panic that escapes a partition task kills the whole
// process instead of failing the one query with a structured
// *core.UDFError, defeating retry and speculation. Every call site of
// a user function must therefore execute under a deferred
// core.CatchPanic (or an explicit deferred recover), installed in the
// same function or in a lexically enclosing one before the call.
//
// The typed translation layer (core/typed.go) is exempt where a method
// that *is* one of the guarded entry points (e.g. wrapped.Verify)
// forwards to the user's function field: the guard obligation attaches
// to its own callers, which this rule checks.
package udfcatch

import (
	"go/ast"
	"go/token"
	"go/types"

	"fudj/internal/analysis/framework"
)

// Analyzer is the udfcatch rule.
var Analyzer = &framework.Analyzer{
	Name: "udfcatch",
	Doc: "every call to a user-defined join function must be dominated by a deferred " +
		"core.CatchPanic so a UDF panic fails the query, not the worker",
	Run: run,
}

// udfMethods are the core.Join interface methods that execute user
// code. Calls to these on an interface value are the engine's UDF
// entry points.
var udfMethods = map[string]bool{
	"Assign": true, "Match": true, "Verify": true, "Dedup": true,
	"LocalAggregate": true, "GlobalAggregate": true, "Divide": true,
	"LocalJoin": true,
}

// udfFields are user-supplied function-typed struct fields (the typed
// Spec surface) whose invocation runs user code directly.
var udfFields = map[string]bool{
	"Assign": true, "AssignLeft": true, "AssignRight": true,
	"Match": true, "Verify": true, "Dedup": true, "DedupFn": true,
	"LocalAggregate": true, "LocalAggLeft": true, "LocalAggRight": true,
	"GlobalAggregate": true, "GlobalAgg": true,
	"Divide": true, "LocalJoin": true,
}

// funcCtx is one function (declaration or literal) on the lexical
// nesting stack, with the position of the earliest panic guard seen in
// it so far.
type funcCtx struct {
	node     ast.Node
	guardPos token.Pos // NoPos until a deferred guard is seen
	exempt   bool      // a UDF-named method: forwarding layer
}

func run(pass *framework.Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := fd.Recv != nil && udfMethods[fd.Name.Name]
			walk(pass, fd.Body, []*funcCtx{{node: fd, exempt: exempt}})
		}
	}
	return nil
}

// walk traverses stmts in source order, maintaining the stack of
// enclosing functions. Defers are recorded when encountered, so a
// guard textually preceding a call is visible at the call site.
func walk(pass *framework.Pass, n ast.Node, stack []*funcCtx) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.DeferStmt:
			if isGuard(node.Call) {
				top := stack[len(stack)-1]
				if top.guardPos == token.NoPos {
					top.guardPos = node.Pos()
				}
			}
		case *ast.FuncLit:
			walk(pass, node.Body, append(stack, &funcCtx{node: node}))
			return false // handled by the recursive walk
		case *ast.CallExpr:
			checkCall(pass, node, stack)
		}
		return true
	})
}

// checkCall reports a UDF call with no dominating guard on the stack.
func checkCall(pass *framework.Pass, call *ast.CallExpr, stack []*funcCtx) {
	name, ok := udfCallee(pass, call)
	if !ok {
		return
	}
	for _, fc := range stack {
		if fc.exempt {
			return
		}
		if fc.guardPos != token.NoPos && fc.guardPos < call.Pos() {
			return
		}
	}
	pass.Reportf(call.Pos(),
		"call to user-defined %s is not dominated by a deferred core.CatchPanic; "+
			"a UDF panic here kills the worker instead of failing the query", name)
}

// udfCallee reports whether call invokes user-defined join code,
// returning a human-readable name for it.
func udfCallee(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	switch s.Kind() {
	case types.MethodVal:
		if !udfMethods[sel.Sel.Name] {
			return "", false
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		// Only interface dispatch is a UDF boundary: a concrete method
		// named Match on some unrelated type is not user join code.
		if _, ok := recv.Underlying().(*types.Interface); !ok {
			return "", false
		}
		return sel.Sel.Name, true
	case types.FieldVal:
		if !udfFields[sel.Sel.Name] {
			return "", false
		}
		if _, ok := s.Type().Underlying().(*types.Signature); !ok {
			return "", false
		}
		return sel.Sel.Name, true
	}
	return "", false
}

// isGuard recognizes a deferred panic guard: a call to a function
// named CatchPanic, or a deferred closure containing recover().
func isGuard(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "CatchPanic"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "CatchPanic"
	case *ast.FuncLit:
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}
