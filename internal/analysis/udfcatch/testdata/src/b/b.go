// Fixture for udfcatch's cross-package fact flow: package a exports
// NeedsGuard and guarded-parameter facts, and the findings (or their
// discharge) happen here.
package b

import "a"

// FlaggedCross calls a's exported unguarded helper: the NeedsGuard fact
// crossed the package boundary and the obligation lands on this
// exported, unguarded caller.
func FlaggedCross(j a.Join) bool { // want `FlaggedCross calls user-defined join code with no deferred core.CatchPanic`
	return a.FlaggedExported(j)
}

// okCrossGuarded discharges the imported helper's obligation locally.
func okCrossGuarded(j a.Join) (res bool, err error) {
	defer a.CatchPanic("q", &err)
	res = a.FlaggedExported(j)
	return res, err
}

// okCrossGuardedParam: a.GuardedApply's guarded-parameter fact crossed
// the boundary, so the unguarded closure pass is proven safe.
func okCrossGuardedParam(j a.Join) bool {
	res, _ := a.GuardedApply(func() bool { return j.Match(1, 2) })
	return res
}

// flaggedCrossDriver hands a's risky partition function to a driver:
// the hand-off is reported because no guard here can reach the worker
// goroutine it will run on.
func flaggedCrossDriver(clus *a.Cluster) error {
	return clus.Run("q", a.RiskyPartition) // want `a.RiskyPartition calls user-defined join code without an internal panic guard and is handed to a partition driver`
}
