// Fixture for the udfcatch analyzer: every call into user-defined join
// code must run under a deferred panic guard.
package a

// Join models the core.Join interface surface (matched by interface
// dispatch on UDF method names).
type Join interface {
	Assign(side int, key any) []int
	Match(b1, b2 int) bool
	Verify(b1 int, k1 any, b2 int, k2 any) bool
}

// Spec models the typed translation layer's user-function fields.
type Spec struct {
	Name  string
	Match func(a, b int) bool
}

// CatchPanic stands in for core.CatchPanic (matched by name).
func CatchPanic(name string, err *error) {}

func flaggedVerify(j Join) bool {
	return j.Verify(1, nil, 2, nil) // want `call to user-defined Verify`
}

func flaggedField(s *Spec) bool {
	return s.Match(1, 2) // want `call to user-defined Match`
}

func flaggedGuardAfter(j Join) (err error) {
	_ = j.Match(1, 2) // want `call to user-defined Match`
	defer CatchPanic("q", &err)
	return nil
}

func okGuarded(j Join) (res bool, err error) {
	defer CatchPanic("q", &err)
	res = j.Verify(1, nil, 2, nil)
	return res, err
}

func okGuardedClosure(j Join) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	return j.Match(1, 2)
}

// okNestedClosure: the guard sits in an enclosing closure; the UDF call
// is inside a deeper one. Lexical domination still holds.
func okNestedClosure(j Join) error {
	run := func() (err error) {
		defer CatchPanic("q", &err)
		inner := func() bool { return j.Match(1, 2) }
		_ = inner()
		return nil
	}
	return run()
}

// matcher has a concrete method that happens to be named Match; only
// interface dispatch is a UDF boundary.
type matcher struct{}

func (matcher) Match(a, b int) bool { return a == b }

func okConcrete(m matcher) bool {
	return m.Match(1, 2)
}

// wrapped.Verify is itself a UDF entry point forwarding to the inner
// join — the translation-layer exemption: the guard obligation attaches
// to its callers.
type wrapped struct{ j Join }

func (w wrapped) Verify(b1 int, k1 any, b2 int, k2 any) bool {
	return w.j.Verify(b1, k1, b2, k2)
}

func suppressedCall(j Join) bool {
	//fudjvet:ignore udfcatch -- fixture: caller installs the guard
	return j.Match(1, 2) // suppressed
}
