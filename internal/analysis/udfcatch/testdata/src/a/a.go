// Fixture for the udfcatch analyzer: every call into user-defined join
// code must be dominated by a deferred panic guard, checked
// interprocedurally. This package is NOT under internal/, so exported
// functions that need a guard are reported at their declaration
// (module-external callers are invisible to the call graph).
package a

// Join models the core.Join interface surface (matched by interface
// dispatch on UDF method names).
type Join interface {
	Assign(side int, key any) []int
	Match(b1, b2 int) bool
	Verify(b1 int, k1 any, b2 int, k2 any) bool
}

// Spec models the typed translation layer's user-function fields.
type Spec struct {
	Name  string
	Match func(a, b int) bool
}

// CatchPanic stands in for core.CatchPanic (matched by name).
func CatchPanic(name string, err *error) {}

// Cluster models the partition-driver surface (matched by method name
// on a type named Cluster).
type Cluster struct{}

func (c *Cluster) Run(name string, fn func(part int) error) error { return fn(0) }

// FlaggedExported calls user code unguarded and is exported from a
// non-internal package: callers outside the module can reach it, so the
// missing guard is reported at the declaration.
func FlaggedExported(j Join) bool { // want `FlaggedExported calls user-defined join code with no deferred core.CatchPanic`
	return j.Verify(1, nil, 2, nil)
}

// unguardedHelper needs a guard but is unexported: every caller is in
// this module, so it becomes a silent NeedsGuard fact, not a finding —
// the obligation is checked at its callers instead.
func unguardedHelper(j Join) bool {
	return j.Match(1, 2)
}

// fieldHelper exercises the Spec function-field form of a UDF call.
func fieldHelper(s *Spec) bool {
	return s.Match(1, 2)
}

// okCallerGuarded discharges the helpers' obligation with its own
// deferred guard: the guard covers the synchronous callees.
func okCallerGuarded(j Join, s *Spec) (res bool, err error) {
	defer CatchPanic("q", &err)
	res = unguardedHelper(j) && fieldHelper(s)
	return res, err
}

// FlaggedCallerUnguarded propagates the helper's obligation: it calls
// unguardedHelper with no guard and is itself exported.
func FlaggedCallerUnguarded(j Join) bool { // want `FlaggedCallerUnguarded calls user-defined join code with no deferred core.CatchPanic`
	return unguardedHelper(j)
}

// FlaggedGuardAfter installs the guard after the risky call; deferred
// guards only cover what follows them.
func FlaggedGuardAfter(j Join) (err error) { // want `FlaggedGuardAfter calls user-defined join code with no deferred core.CatchPanic`
	_ = j.Match(1, 2)
	defer CatchPanic("q", &err)
	return nil
}

// flaggedDriverClosure hands the cluster a partition closure that calls
// user code with no internal guard: the caller's guard runs on another
// goroutine and cannot catch the panic.
func flaggedDriverClosure(clus *Cluster, j Join) (err error) {
	defer CatchPanic("q", &err)
	return clus.Run("q", func(part int) error {
		j.Match(1, 2) // want `call to user-defined Match runs inside a partition task`
		return nil
	})
}

// okDriverClosure guards inside the partition task.
func okDriverClosure(clus *Cluster, j Join) error {
	return clus.Run("q", func(part int) (err error) {
		defer CatchPanic("q", &err)
		j.Match(1, 2)
		return nil
	})
}

// flaggedGoUDF launches user code on a bare goroutine with no guard.
func flaggedGoUDF(j Join) {
	go func() {
		j.Verify(1, nil, 2, nil) // want `call to user-defined Verify runs inside a goroutine`
	}()
}

// flaggedGoHelper launches a NeedsGuard function value on a goroutine:
// reported at the hand-off, because no caller guard can reach it.
func flaggedGoHelper(j Join) {
	fn := func() { j.Match(1, 2) }
	go fn() // want `fn calls user-defined join code without an internal panic guard and is launched with go`
}

// flaggedDriverHelper hands a NeedsGuard closure to a partition driver.
func flaggedDriverHelper(clus *Cluster, j Join) error {
	risky := func(part int) error {
		j.Match(1, 2)
		return nil
	}
	return clus.Run("q", risky) // want `risky calls user-defined join code without an internal panic guard and is handed to a partition driver`
}

// okGoGuarded launches a goroutine whose body guards itself.
func okGoGuarded(j Join) {
	go func() {
		defer func() {
			_ = recover()
		}()
		j.Match(1, 2)
	}()
}

// GuardedApply proves its function parameter runs only under a guard:
// callers may pass unguarded UDF-calling closures at that position. It
// is exported so package b can exercise the fact across the boundary.
func GuardedApply(fn func() bool) (res bool, err error) {
	defer CatchPanic("q", &err)
	res = fn()
	return res, err
}

// okGuardedParamPass passes a UDF-calling closure to GuardedApply with
// no local guard — safe, because GuardedApply's parameter fact proves
// the guard is installed before invocation.
func okGuardedParamPass(j Join) bool {
	res, _ := GuardedApply(func() bool { return j.Match(1, 2) })
	return res
}

// J is a package-level join used by RiskyPartition.
var J Join

// RiskyPartition calls user code unguarded and is exported: flagged at
// the declaration here, and its NeedsGuard fact also travels to the
// packages that import this one (see fixture b).
func RiskyPartition(part int) error { // want `RiskyPartition calls user-defined join code with no deferred core.CatchPanic`
	J.Match(part, part)
	return nil
}

// rawApply invokes its parameter with no guard, so passing a
// UDF-calling closure to it propagates the obligation to the caller.
func rawApply(fn func() bool) bool { return fn() }

// FlaggedRawParamPass passes user code through rawApply unguarded and
// is exported: reported at the declaration.
func FlaggedRawParamPass(j Join) bool { // want `FlaggedRawParamPass calls user-defined join code with no deferred core.CatchPanic`
	return rawApply(func() bool { return j.Match(1, 2) })
}

// okRawParamPassGuarded makes the same pass under a local guard.
func okRawParamPassGuarded(j Join) (res bool, err error) {
	defer CatchPanic("q", &err)
	res = rawApply(func() bool { return j.Match(1, 2) })
	return res, err
}

// okNestedClosure: the guard sits in an enclosing closure; the UDF call
// is inside a deeper one. Lexical domination still holds.
func okNestedClosure(j Join) error {
	run := func() (err error) {
		defer CatchPanic("q", &err)
		inner := func() bool { return j.Match(1, 2) }
		_ = inner()
		return nil
	}
	return run()
}

// matcher has a concrete method that happens to be named Match; only
// interface dispatch is a UDF boundary.
type matcher struct{}

func (matcher) Match(a, b int) bool { return a == b }

func okConcrete(m matcher) bool {
	return m.Match(1, 2)
}

// wrapped.Verify is itself a UDF entry point forwarding to the inner
// join — the translation-layer exemption: the guard obligation attaches
// to its callers.
type wrapped struct{ j Join }

func (w wrapped) Verify(b1 int, k1 any, b2 int, k2 any) bool {
	return w.j.Verify(b1, k1, b2, k2)
}

// SuppressedExported documents a deliberate contract violation.
//
//fudjvet:ignore udfcatch -- fixture: documented caller contract
func SuppressedExported(j Join) bool { // suppressed
	return j.Match(1, 2)
}
