// Package seedrand forbids unseedable nondeterminism sources — wall
// clock reads and the global math/rand generator — in the execution
// packages.
//
// Invariant: fault injection, retry, and speculative re-execution must
// replay bit-for-bit from a seed (internal/cluster's FaultInjector
// derives every decision from Seed and the fault site). A time.Now()
// or global rand call in cluster, engine, or wire code threads
// irreproducible state into execution decisions, so a chaos failure
// could never be replayed. Deliberately wall-clock things (busy-time
// metrics, phase timers) carry a //fudjvet:ignore with a reason stating
// that the value feeds observability only, never a decision.
package seedrand

import (
	"go/ast"
	"go/types"
	"strings"

	"fudj/internal/analysis/framework"
)

// DefaultRestricted lists the package paths (and their subtrees) in
// which the rule applies: the execution substrate whose behavior must
// replay from a seed.
var DefaultRestricted = []string{
	"fudj/internal/cluster",
	"fudj/internal/engine",
	"fudj/internal/sched",
	"fudj/internal/serve",
	"fudj/internal/wire",
}

// Analyzer is the seedrand rule over the default restricted packages.
var Analyzer = New(DefaultRestricted)

// randConstructors are the math/rand selectors that build independent,
// explicitly seeded generators; they are the sanctioned alternative,
// not a finding.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	// Types and constants referenced via the package are fine too.
	"Rand": true, "Source": true, "Zipf": true, "PCG": true, "ChaCha8": true,
}

// New returns a seedrand analyzer restricted to the given package paths
// (each covering its subtree). Tests use this to point the rule at
// fixture packages.
func New(restricted []string) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "seedrand",
		Doc: "forbids time.Now and the global math/rand generator in execution packages; " +
			"replayable behavior must derive from a seed",
		Run: func(pass *framework.Pass) error { return run(pass, restricted) },
	}
}

func restrictedPath(path string, restricted []string) bool {
	for _, r := range restricted {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass, restricted []string) error {
	if !restrictedPath(pass.Pkg.Path(), restricted) {
		return nil
	}
	for _, file := range pass.NonTestFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.ObjectOf(pkgIdent).(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" {
					pass.Reportf(sel.Pos(),
						"time.Now in %s: execution decisions must replay from a seed; "+
							"inject a clock or annotate metrics-only uses", pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(),
						"global math/rand.%s in %s: shared-source randomness is not replayable; "+
							"use a seeded rand.New(rand.NewSource(seed)) or derive from FaultConfig.Seed",
						sel.Sel.Name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
