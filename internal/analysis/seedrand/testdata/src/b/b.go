// Fixture outside the restricted package set: the same constructs are
// not findings here.
package b

import "time"

func unrestrictedNow() int64 {
	return time.Now().UnixNano()
}
