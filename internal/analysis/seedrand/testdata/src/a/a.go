// Fixture for the seedrand analyzer, loaded as a restricted package:
// wall clock and global-rand reads are findings; seeded generators are
// the sanctioned alternative.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func flaggedNow() int64 {
	return time.Now().UnixNano() // want `time.Now in a`
}

func okSince(t time.Time) time.Duration {
	return time.Since(t)
}

func flaggedGlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn in a`
}

func flaggedGlobalRandV2() uint64 {
	return randv2.Uint64() // want `global math/rand\.Uint64 in a`
}

func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func okSeededV2(seed uint64) uint64 {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.Uint64()
}

func suppressedNow() int64 {
	//fudjvet:ignore seedrand -- fixture: metrics-only timestamp
	return time.Now().UnixNano() // suppressed
}
