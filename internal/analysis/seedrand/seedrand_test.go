package seedrand_test

import (
	"testing"

	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/seedrand"
)

func TestSeedRand(t *testing.T) {
	// Restrict the rule to fixture package "a"; package "b" holds the
	// same constructs and must stay silent.
	a := seedrand.New([]string{"a"})
	framework.RunTest(t, "testdata", a, "a", "b")
}
