// Package metricslock flags accesses to fields of the metrics registry
// struct that are not protected by its mutex.
//
// Invariant: every counter, gauge, and histogram in a `Metrics` struct
// is guarded by the single `mu` mutex so that Snapshot() and Values()
// can promise one consistent instant across all metrics — a torn read
// (bytes updated, records not yet) would let a mid-query observer see
// impossible states, and the memory-budget gauges feed admission
// decisions that must not race. The registry keeps its storage as
// direct struct fields precisely so this check is mechanical: any
// selector `x.field` whose base is a Metrics value must be preceded,
// lexically within the same function, by `x.mu.Lock()` on the same
// base expression. Helpers that run under a caller's lock opt out by
// documenting the contract: a doc comment containing "must hold mu".
package metricslock

import (
	"go/ast"
	"go/types"
	"strings"

	"fudj/internal/analysis/framework"
)

// Analyzer is the metricslock rule.
var Analyzer = &framework.Analyzer{
	Name: "metricslock",
	Doc: "flags Metrics struct field accesses outside mu, which would tear " +
		"the single-snapshot consistency the registry promises",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "must hold mu") {
				continue // documented run-under-caller's-lock helper
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc flags every Metrics field access in body that no earlier
// Lock() on the same base expression covers. The check is lexical, not
// flow-sensitive: a lock anywhere earlier in the function absolves
// later accesses, which matches the registry's lock-at-entry style and
// keeps the rule predictable.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isMetricsField(pass, sel) || sel.Sel.Name == "mu" {
			return true
		}
		if lockedBefore(pass, body, sel) {
			return true
		}
		pass.Reportf(sel.Pos(),
			"access to Metrics field %q without holding mu; lock %s.mu first "+
				"(or document the helper with \"must hold mu\")",
			sel.Sel.Name, exprPath(sel.X))
		return true
	})
}

// isMetricsField reports whether sel selects a struct field (not a
// method) on a value whose type is a struct named Metrics carrying a
// mu field.
func isMetricsField(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Metrics" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "mu" {
			return true
		}
	}
	return false
}

// lockedBefore reports whether a `<base>.mu.Lock()` call on the same
// base expression as the access appears lexically before it in body.
func lockedBefore(pass *framework.Pass, body *ast.BlockStmt, access *ast.SelectorExpr) bool {
	base := exprPath(access.X)
	if base == "" {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() >= access.Pos() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		lockSel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || lockSel.Sel.Name != "Lock" {
			return true
		}
		muSel, ok := lockSel.X.(*ast.SelectorExpr)
		if !ok || muSel.Sel.Name != "mu" {
			return true
		}
		if exprPath(muSel.X) == base {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprPath renders an identifier or selector chain ("m", "c.m") for
// base-expression matching; anything more exotic yields "".
func exprPath(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := exprPath(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprPath(e.X)
	}
	return ""
}
