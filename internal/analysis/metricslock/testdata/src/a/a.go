package a

import "sync"

// Metrics mirrors the registry shape the analyzer guards: storage as
// direct fields under one mu.
type Metrics struct {
	mu    sync.Mutex
	vals  []int64
	names []string
	busy  int64
}

// Other is a struct with a mu that is NOT named Metrics; out of scope.
type Other struct {
	mu   sync.Mutex
	vals []int64
}

func lockedRead(m *Metrics) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.vals[0]
}

func unlockedRead(m *Metrics) int64 {
	return m.vals[0] // want `access to Metrics field "vals" without holding mu`
}

func unlockedWrite(m *Metrics) {
	m.busy++ // want `access to Metrics field "busy" without holding mu`
}

// valueAt returns one raw slot. Callers must hold mu.
func valueAt(m *Metrics, i int) int64 {
	return m.vals[i]
}

func lockAfter(m *Metrics) {
	m.busy++ // want `access to Metrics field "busy" without holding mu`
	m.mu.Lock()
	m.busy++
	m.mu.Unlock()
}

type handle struct {
	m  *Metrics
	id int
}

func (h handle) lockedAdd(n int64) {
	h.m.mu.Lock()
	h.m.vals[h.id] += n
	h.m.mu.Unlock()
}

func (h handle) unlockedAdd(n int64) {
	h.m.vals[h.id] += n // want `access to Metrics field "vals" without holding mu`
}

func wrongBase(a, b *Metrics) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return b.vals[0] // want `access to Metrics field "vals" without holding mu`
}

func closureUnderLock(m *Metrics) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	get := func() []string { return m.names }
	return get()
}

func otherStruct(o *Other) int64 {
	return o.vals[0] // not a Metrics: fine
}
