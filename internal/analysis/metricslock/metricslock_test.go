package metricslock_test

import (
	"testing"

	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/metricslock"
)

func TestMetricsLock(t *testing.T) {
	framework.RunTest(t, "testdata", metricslock.Analyzer, "a")
}
