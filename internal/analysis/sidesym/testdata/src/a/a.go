// Fixture for the sidesym analyzer: dispatch on Side must handle both
// sides or carry a default/else.
package a

// Side stands in for core.Side (matched by type name).
type Side int

// The two sides (matched by constant value).
const (
	Left Side = iota
	Right
)

type spec struct {
	assignLeft  func(k int) int
	assignRight func(k int) int
}

// --- switch shape ---

func flaggedSwitchOneSide(s Side) int {
	out := 0
	switch s { // want `switch on Side handles only the Left side`
	case Left:
		out = 1
	}
	return out
}

func okSwitchBothSides(s Side) int {
	switch s {
	case Left:
		return 1
	case Right:
		return 2
	}
	return 0
}

func okSwitchDefault(s Side) int {
	switch s {
	case Left:
		return 1
	default:
		return 2
	}
}

func okSwitchMultiValueCase(s Side) int {
	switch s {
	case Left, Right:
		return 1
	}
	return 0
}

// --- if/else shape ---

func flaggedIfFallsThrough(s Side, sp *spec) int {
	k := 0
	if s == Left { // want `if on Side has no else and its body falls through`
		k = sp.assignLeft(1)
	}
	return k // Right silently skips the assignment
}

func okIfElse(s Side, sp *spec) int {
	if s == Left {
		return sp.assignLeft(1)
	} else {
		return sp.assignRight(1)
	}
}

func okIfTerminates(s Side, sp *spec) int {
	if s == Right && sp.assignRight != nil {
		return sp.assignRight(1)
	}
	return sp.assignLeft(1) // fall-through IS the left handling
}

func okElseIfChain(s Side, sp *spec) int {
	k := 0
	if s == Left {
		k = sp.assignLeft(1)
	} else if s == Right {
		k = sp.assignRight(1)
	}
	return k
}

func okIfPanics(s Side) int {
	if s == Right {
		panic("right side unsupported by this operator")
	}
	return 1
}

func okIfContinues(s Side, keys []int) int {
	total := 0
	for _, k := range keys {
		if s == Right {
			continue
		}
		total += k
	}
	return total
}

func okNotSide(n int) int {
	if n == 0 {
		n = 1
	}
	return n
}

// --- map-keyed dispatch shape ---

func flaggedMapOneSide(sp *spec) map[Side]func(int) int {
	return map[Side]func(int) int{ // want `map keyed by Side initializes only the Left side`
		Left: sp.assignLeft,
	}
}

func okMapBothSides(sp *spec) map[Side]func(int) int {
	return map[Side]func(int) int{
		Left:  sp.assignLeft,
		Right: sp.assignRight,
	}
}

func okMapEmpty() map[Side]int {
	return map[Side]int{} // filled dynamically; nothing to judge
}

func okMapDynamicKey(s Side) map[Side]int {
	return map[Side]int{s: 1} // non-constant key: no claim either way
}

func suppressedSwitch(s Side) int {
	//fudjvet:ignore sidesym -- fixture: right side handled by the caller
	switch s { // suppressed
	case Left:
		return 1
	}
	return 0
}
