// Package sidesym verifies that dispatch on core.Side covers both
// sides.
//
// Invariant: core.Side has exactly two values — Left (0) and Right (1)
// — and nearly every per-side code path (assign, local aggregation,
// key typing) is written twice. A switch, if-chain, or Side-keyed map
// that handles only one side does not fail loudly for the other: a
// missing switch case falls through to nothing, a missing map key
// yields the zero value, and an if with no else silently skips the
// side-specific work. Every one of those is a silent wrong-answer bug
// in a join whose sides differ (the asymmetric-key joins of §V).
//
// The rule accepts three shapes:
//
//   - a switch on a Side value whose cases cover both Left and Right,
//     or that carries a default;
//
//   - an if/else chain testing a Side value where an else is present,
//     or where the single-side branch terminates (returns, panics, or
//     continues/breaks the loop), so the fall-through path IS the other
//     side's handling — the idiom the typed translation layer uses:
//
//     if side == Right && spec.AssignRight != nil {
//     return spec.AssignRight(...)
//     }
//     return spec.AssignLeft(...)
//
//   - a map literal keyed by Side that initializes both keys.
//
// Matching is by type name: any defined type named "Side" counts, with
// Left and Right recognized by their constant values 0 and 1. A case
// or key whose value the type checker cannot evaluate to a constant
// disables the check for that statement rather than guessing.
package sidesym

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"fudj/internal/analysis/framework"
)

// Analyzer is the sidesym rule.
var Analyzer = &framework.Analyzer{
	Name: "sidesym",
	Doc: "dispatch on core.Side must handle both Left and Right (or carry a " +
		"default/else), so asymmetric joins cannot silently skip one side",
	Run: run,
}

func run(pass *framework.Pass) error {
	// elseIf collects if-statements that appear as the else branch of
	// another if; they are judged as part of the outer chain.
	elseIf := make(map[*ast.IfStmt]bool)
	for _, file := range pass.NonTestFiles() {
		ast.Inspect(file, func(n ast.Node) bool {
			if ifs, ok := n.(*ast.IfStmt); ok {
				if inner, ok := ifs.Else.(*ast.IfStmt); ok {
					elseIf[inner] = true
				}
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			case *ast.IfStmt:
				if !elseIf[n] {
					checkIfChain(pass, n)
				}
			case *ast.CompositeLit:
				checkMapLit(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkSwitch flags a switch on a Side value that covers one side and
// has no default.
func checkSwitch(pass *framework.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isSideType(pass.TypesInfo.TypeOf(sw.Tag)) {
		return
	}
	var left, right, unknown, hasDefault bool
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			switch sideValue(pass, e) {
			case 0:
				left = true
			case 1:
				right = true
			default:
				unknown = true
			}
		}
	}
	if hasDefault || unknown || (left && right) {
		return
	}
	pass.Reportf(sw.Pos(),
		"switch on Side handles only the %s side; cover the other side or add a default so an unexpected side fails loudly instead of falling through",
		handledName(left))
}

// checkIfChain flags an if/else-if chain testing a Side value that
// covers only one side, has no terminal else, and whose single-side
// body falls through: the other side silently skips the side-specific
// work.
func checkIfChain(pass *framework.Pass, ifs *ast.IfStmt) {
	var left, right, finalElse bool
	for cur := ifs; ; {
		for _, v := range sideConstsIn(pass, cur.Cond) {
			if v == 0 {
				left = true
			} else {
				right = true
			}
		}
		next, ok := cur.Else.(*ast.IfStmt)
		if !ok {
			finalElse = cur.Else != nil
			break
		}
		cur = next
	}
	if finalElse || (left && right) || (!left && !right) {
		return // explicit other-side path, both sides named, or not a Side chain
	}
	for cur := ifs; ; {
		if len(sideConstsIn(pass, cur.Cond)) > 0 && !terminates(cur.Body) {
			pass.Reportf(cur.Pos(),
				"if on Side has no else and its body falls through; the other side silently skips this branch — "+
					"add an else, handle both sides, or terminate the branch (return/continue/break)")
			return
		}
		next, ok := cur.Else.(*ast.IfStmt)
		if !ok {
			return
		}
		cur = next
	}
}

// sideConstsIn collects the constant Side values (0 or 1) compared with
// == or != anywhere in cond.
func sideConstsIn(pass *framework.Pass, cond ast.Expr) []int64 {
	var out []int64
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if bin.Op == token.EQL || bin.Op == token.NEQ {
			if isSideType(pass.TypesInfo.TypeOf(bin.X)) || isSideType(pass.TypesInfo.TypeOf(bin.Y)) {
				for _, side := range []ast.Expr{bin.X, bin.Y} {
					if v := sideValue(pass, side); v >= 0 {
						out = append(out, v)
					}
				}
			}
		}
		return true
	})
	return out
}

// checkMapLit flags a Side-keyed map literal initializing only one
// side: a lookup for the missing side yields the zero value with no
// error.
func checkMapLit(pass *framework.Pass, lit *ast.CompositeLit) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	m, ok := tv.Type.Underlying().(*types.Map)
	if !ok || !isSideType(m.Key()) {
		return
	}
	var left, right, unknown bool
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			return
		}
		switch sideValue(pass, kv.Key) {
		case 0:
			left = true
		case 1:
			right = true
		default:
			unknown = true
		}
	}
	if unknown || (left && right) || (!left && !right) {
		return // dynamic keys, both sides, or an empty map filled later
	}
	pass.Reportf(lit.Pos(),
		"map keyed by Side initializes only the %s side; a lookup for the other side silently yields the zero value — initialize both keys",
		handledName(left))
}

// terminates reports whether every path through block ends control
// flow: return, panic, continue, break, or goto.
func terminates(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	switch last := block.List[len(block.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	case *ast.IfStmt:
		// if/else where both arms terminate.
		if elseBlock, ok := last.Else.(*ast.BlockStmt); ok {
			return terminates(last.Body) && terminates(elseBlock)
		}
	}
	return false
}

// sideValue evaluates e as a constant Side, returning 0 (Left), 1
// (Right), or -1 when unknown.
func sideValue(pass *framework.Pass, e ast.Expr) int64 {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return -1
	}
	v, ok := constant.Int64Val(tv.Value)
	if !ok || v < 0 || v > 1 {
		return -1
	}
	return v
}

// isSideType reports whether t (or its pointer elem / alias target) is
// a defined type named "Side".
func isSideType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name() == "Side"
	case *types.Alias:
		return isSideType(types.Unalias(n))
	}
	return false
}

func handledName(left bool) string {
	if left {
		return "Left"
	}
	return "Right"
}
