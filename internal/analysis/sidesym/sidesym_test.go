package sidesym_test

import (
	"testing"

	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/sidesym"
)

func TestSideSym(t *testing.T) {
	framework.RunTest(t, "testdata", sidesym.Analyzer, "a")
}
