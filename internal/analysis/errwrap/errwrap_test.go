package errwrap_test

import (
	"testing"

	"fudj/internal/analysis/errwrap"
	"fudj/internal/analysis/framework"
)

func TestErrwrap(t *testing.T) {
	framework.RunTest(t, "testdata", errwrap.Analyzer, "a")
}
