package a

import (
	"errors"
	"fmt"
)

// structured is an error type that carries classification.
type structured struct{ retry bool }

func (e *structured) Error() string   { return "structured" }
func (e *structured) Retryable() bool { return e.retry }

var errBase = errors.New("base")

func wrapped() error {
	return fmt.Errorf("context: %w", errBase) // %w preserves the chain
}

func flattenedV(err error) error {
	return fmt.Errorf("context: %v", err) // want `error formatted with %v flattens it`
}

func flattenedS(err error) error {
	return fmt.Errorf("context: %s", err) // want `error formatted with %s flattens it`
}

func flattenedStructured(e *structured) error {
	return fmt.Errorf("retry info lost: %v", e) // want `error formatted with %v flattens it`
}

func mixedArgs(err error, n int) error {
	// The int is fine; the error is not.
	return fmt.Errorf("part %d failed: %v", n, err) // want `error formatted with %v flattens it`
}

func widthStar(err error, w int) error {
	// %*d consumes two args (width + int); the error still flattens.
	return fmt.Errorf("pad %*d: %s", w, 7, err) // want `error formatted with %s flattens it`
}

func percentLiteral(err error) error {
	return fmt.Errorf("100%% failure: %w", err) // %% consumes no arg
}

func nonErrorArgs(name string, n int) error {
	return fmt.Errorf("%s: %d rows", name, n) // no error-typed args
}

func plusV(err error) error {
	return fmt.Errorf("dump: %+v", err) // want `error formatted with %v flattens it`
}

func indexed(err error) error {
	// Indexed arguments are out of scope; the analyzer bails.
	return fmt.Errorf("%[1]v", err)
}

func nonConstant(f string, err error) error {
	return fmt.Errorf(f, err) // non-constant format: unverifiable, skipped
}

func suppressed(err error) error {
	//fudjvet:ignore errwrap -- message is intentionally terminal text
	return fmt.Errorf("final: %v", err) // suppressed
}
