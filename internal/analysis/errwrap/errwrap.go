// Package errwrap enforces the error-wrapping invariant the engine's
// retry machinery depends on: errors that cross a package boundary
// must stay inspectable. cluster.IsRetryable, errors.Is, and errors.As
// all walk the Unwrap chain; formatting an error with %v or %s inside
// fmt.Errorf flattens it to text and silently strips its
// classification (Retryable, DeadlineExceeded, BarrierLossError,
// AdmissionError, ...). The analyzer flags every fmt.Errorf call that
// formats an error-typed argument with any verb other than %w; such
// sites must either switch the verb to %w or return a structured error
// type that implements Unwrap.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"

	"fudj/internal/analysis/framework"
)

// Analyzer flags fmt.Errorf calls that flatten error values.
var Analyzer = &framework.Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf must wrap error arguments with %w, not flatten them " +
		"with %v/%s: flattening breaks errors.Is/As and the engine's " +
		"retryability classification across package boundaries",
	Run: run,
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *framework.Pass) error {
	for _, f := range pass.NonTestFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isFmtErrorf(pass, call) || len(call.Args) < 2 {
				return true
			}
			format, ok := constantString(pass, call.Args[0])
			if !ok {
				return true // non-constant format: nothing to check statically
			}
			verbs, ok := parseVerbs(format)
			if !ok || len(verbs) != len(call.Args)-1 {
				return true // indexed args or arity mismatch: punt to vet proper
			}
			for i, v := range verbs {
				arg := call.Args[i+1]
				if v == 'w' || v == '*' {
					continue
				}
				t := pass.TypesInfo.TypeOf(arg)
				if t == nil || !types.Implements(t, errorIface) {
					continue
				}
				pass.Reportf(arg.Pos(),
					"error formatted with %%%c flattens it; use %%w (or a structured error type) so errors.Is/As and retryability classification survive the boundary", v)
			}
			return true
		})
	}
	return nil
}

// isFmtErrorf reports whether call is fmt.Errorf from the standard
// library (matched by package path, so aliased imports still count).
func isFmtErrorf(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pkg.Imported().Path() == "fmt"
}

// constantString resolves expr to its constant string value if it has
// one (a literal or a string constant).
func constantString(pass *framework.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return "", false
	}
	return s, true
}

// parseVerbs extracts, in order, one entry per argument the format
// string consumes: the verb character for a formatted argument, or '*'
// for a width/precision consumed by a star. %% consumes nothing.
// Indexed arguments (%[1]s) return ok=false: positional reordering is
// rare and not worth modeling here.
func parseVerbs(format string) (verbs []byte, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			return nil, false
		}
		if format[i] == '%' {
			continue
		}
		// flags
		for i < len(format) && (format[i] == '+' || format[i] == '-' ||
			format[i] == '#' || format[i] == ' ' || format[i] == '0') {
			i++
		}
		// width
		if i < len(format) && format[i] == '*' {
			verbs = append(verbs, '*')
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i >= len(format) {
			return nil, false
		}
		if format[i] == '[' {
			return nil, false // indexed argument: bail
		}
		verbs = append(verbs, format[i])
	}
	return verbs, true
}
