// Package analysis aggregates the fudjvet analyzer suite: the
// repo-specific invariants (determinism, isolation, bounded
// allocation, cancellation) that the compiler cannot check but the
// engine's correctness argument depends on. cmd/fudjvet runs them as a
// go vet -vettool multichecker; each analyzer package carries its own
// fixture-driven tests.
package analysis

import (
	"fudj/internal/analysis/boundedalloc"
	"fudj/internal/analysis/ctxplumb"
	"fudj/internal/analysis/errwrap"
	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/maporder"
	"fudj/internal/analysis/metricslock"
	"fudj/internal/analysis/seedrand"
	"fudj/internal/analysis/sidesym"
	"fudj/internal/analysis/spillclose"
	"fudj/internal/analysis/udfcatch"
)

// All returns the full fudjvet suite in reporting order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		maporder.Analyzer,
		seedrand.Analyzer,
		udfcatch.Analyzer,
		boundedalloc.Analyzer,
		ctxplumb.Analyzer,
		sidesym.Analyzer,
		metricslock.Analyzer,
		spillclose.Analyzer,
		errwrap.Analyzer,
	}
}
