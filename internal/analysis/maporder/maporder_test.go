package maporder_test

import (
	"testing"

	"fudj/internal/analysis/framework"
	"fudj/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	framework.RunTest(t, "testdata", maporder.Analyzer, "a")
}
