// Package maporder flags `for range` loops over maps whose iterations
// emit record-shaped or encoded output without a deterministic sort.
//
// Invariant: SUMMARIZE/PARTITION/COMBINE must produce multiset-identical
// results under retry and speculation, and the duplicate-handling and
// shuffle layers additionally rely on stable per-partition record
// order (bounded delivery reassembles sources in index order; the
// determinism suite asserts byte-identical re-execution). Go randomizes
// map iteration order per run, so any map range whose body appends
// records to an output slice, writes encoded bytes, or sends on a
// channel injects nondeterminism straight into data that crosses node
// boundaries. The fix is the sortedIDs pattern: collect keys, sort,
// then iterate — or sort the produced slice afterwards.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"fudj/internal/analysis/framework"
)

// Analyzer is the maporder rule.
var Analyzer = &framework.Analyzer{
	Name: "maporder",
	Doc: "flags map iterations that emit records, encoded bytes, or channel sends " +
		"without an intervening deterministic sort",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc scans one function body for map ranges with emitting
// bodies, then looks for a sanitizing sort after each offending loop.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	type offense struct {
		rng  *ast.RangeStmt
		dest *ast.Ident // slice receiving appends, if identifiable
		what string
	}
	var offenses []offense

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		dest, what := emission(pass, rng.Body)
		if what != "" {
			offenses = append(offenses, offense{rng: rng, dest: dest, what: what})
		}
		return true
	})

	for _, off := range offenses {
		if off.dest != nil && sortedAfter(pass, body, off.rng.End(), off.dest) {
			continue
		}
		pass.Reportf(off.rng.For,
			"map iteration %s without a deterministic sort; iterate sorted keys or sort the result "+
				"(map order breaks retry/speculation equivalence)", off.what)
	}
}

// emission reports whether the loop body emits order-sensitive output:
// appends to a records slice, writes through an encoder, or sends on a
// channel. It returns the destination identifier for the append case so
// a later sort over it can absolve the loop.
func emission(pass *framework.Pass, body *ast.BlockStmt) (dest *ast.Ident, what string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			what = "sends on a channel"
			return false
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 {
				if isRecordSlice(pass.TypesInfo.TypeOf(n.Args[0])) {
					what = "appends records to the output"
					if d, ok := n.Args[0].(*ast.Ident); ok {
						dest = d
					}
					return false
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && isEncoderMethod(pass, sel) {
				what = "writes encoded output"
				return false
			}
		}
		return true
	})
	return dest, what
}

// isRecordSlice reports whether t is a slice whose element type is the
// engine's record type (a named type called Record, in any package).
func isRecordSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Record"
}

// isEncoderMethod reports whether sel is a method call on a wire-style
// Encoder value.
func isEncoderMethod(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Encoder"
}

// sortedAfter reports whether dest is passed to a sort.* / slices.*
// call positioned after pos in the enclosing function body.
func sortedAfter(pass *framework.Pass, body *ast.BlockStmt, pos token.Pos, dest *ast.Ident) bool {
	destObj := pass.TypesInfo.ObjectOf(dest)
	if destObj == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= pos {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == destObj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
