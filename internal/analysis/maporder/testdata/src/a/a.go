// Fixture for the maporder analyzer: map iterations that emit
// record-shaped or encoded output must sort, one way or another.
package a

import "sort"

type Record []int

// Encoder stands in for wire.Encoder (matched by type name).
type Encoder struct{ buf []byte }

func (e *Encoder) Uint64(v uint64) {}

func flaggedAppend(m map[string]Record) []Record {
	var out []Record
	for _, v := range m { // want `map iteration appends records to the output`
		out = append(out, v)
	}
	return out
}

func okSortedKeys(m map[string]Record) []Record {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Record
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func okSortedAfter(m map[string]Record) []Record {
	var out []Record
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

func flaggedSend(m map[string]int, ch chan int) {
	for _, v := range m { // want `map iteration sends on a channel`
		ch <- v
	}
}

func flaggedEncode(m map[string]uint64, e *Encoder) {
	for _, v := range m { // want `map iteration writes encoded output`
		e.Uint64(v)
	}
}

func okPlainSlice(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func suppressedAppend(m map[string]Record) []Record {
	var out []Record
	//fudjvet:ignore maporder -- fixture: caller re-sorts the batch
	for _, v := range m { // suppressed
		out = append(out, v)
	}
	return out
}

func badDirective(m map[string]Record) []Record {
	var out []Record
	//fudjvet:ignore maporder // want `unexplained suppressions are not allowed`
	for _, v := range m { // want `map iteration appends records to the output`
		out = append(out, v)
	}
	return out
}
