// Test files are exempt: production invariants only.
package a

func testOnlyHelper(m map[string]Record) []Record {
	var out []Record
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
