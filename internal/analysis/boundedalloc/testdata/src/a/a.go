// Fixture for the boundedalloc analyzer: allocations sized by a raw
// decoded length prefix are findings; UvarintCount is the checked
// source.
package a

import (
	"bufio"
	"encoding/binary"
)

// Decoder stands in for wire.Decoder (matched by type name).
type Decoder struct{ buf []byte }

func (d *Decoder) Uvarint() (uint64, error)          { return 0, nil }
func (d *Decoder) Varint() (int64, error)            { return 0, nil }
func (d *Decoder) UvarintCount(min int) (int, error) { return 0, nil }

type Record []byte

func flaggedRaw(d *Decoder) ([]Record, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]Record, n) // want `make sized by n, which comes from a raw decoded length prefix`
	return out, nil
}

func flaggedPropagated(d *Decoder) ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	size := int(n) * 8
	return make([]byte, size), nil // want `make sized by size`
}

func flaggedBinary(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return make([]byte, n) // want `make sized by n`
}

func flaggedStream(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make sized by n`
}

func okChecked(d *Decoder) ([]Record, error) {
	n, err := d.UvarintCount(1)
	if err != nil {
		return nil, err
	}
	return make([]Record, n), nil
}

func okReassigned(d *Decoder) []byte {
	n, _ := d.Uvarint()
	n = 16
	return make([]byte, n)
}

func okUntaintedSize(d *Decoder, have int) []byte {
	if _, err := d.Uvarint(); err != nil {
		return nil
	}
	return make([]byte, have)
}

func suppressedMake(d *Decoder) []byte {
	n, _ := d.Uvarint()
	//fudjvet:ignore boundedalloc -- fixture: bound is checked out of band
	return make([]byte, n) // suppressed
}

// allocRecords' parameter n flows unchecked into a make: the fact makes
// passing a raw decoded length at that position a call-site finding.
func allocRecords(n int) []Record {
	return make([]Record, n)
}

// AllocForwarded forwards its parameter to allocRecords, inheriting the
// alloc-param fact transitively (exported for fixture b).
func AllocForwarded(n int) []Record {
	return allocRecords(n)
}

func flaggedParamFlow(d *Decoder) ([]Record, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	return allocRecords(int(n)), nil // want `int\(n\) comes from a raw decoded length prefix and flows into an allocation size inside allocRecords`
}

func flaggedParamFlowTransitive(d *Decoder) []Record {
	n, _ := d.Uvarint()
	return AllocForwarded(int(n)) // want `int\(n\) comes from a raw decoded length prefix and flows into an allocation size inside AllocForwarded`
}

func okParamChecked(d *Decoder, limit int) []Record {
	n, _ := d.Uvarint()
	if n > uint64(limit) {
		return nil
	}
	return allocRecords(int(n))
}

// allocChecked bounds its parameter before allocating, so it exports no
// alloc-param fact and raw lengths may be passed to it.
func allocChecked(n, limit int) []Record {
	if n > limit {
		n = limit
	}
	return make([]Record, n)
}

func okCalleeChecks(d *Decoder) []Record {
	n, _ := d.Uvarint()
	return allocChecked(int(n), 64)
}

// ReadLength returns a raw decoded length: callers' results are tainted
// through the TaintedReturns fact (exported for fixture b).
func ReadLength(d *Decoder) (uint64, error) {
	return d.Uvarint()
}

func flaggedTaintedReturn(d *Decoder) ([]byte, error) {
	n, err := ReadLength(d)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make sized by n`
}

// Header models a decoded frame header whose Count field is stored raw:
// every read of the field is tainted (exported for fixture b).
type Header struct {
	Count int
	Flags int
}

func fillHeader(d *Decoder, h *Header) error {
	n, err := d.Uvarint()
	if err != nil {
		return err
	}
	h.Count = int(n)
	return nil
}

func flaggedFieldRead(h *Header) []Record {
	return make([]Record, h.Count) // want `make sized by h.Count`
}

func flaggedCompositeField(d *Decoder) *Header {
	n, _ := d.Uvarint()
	h := &Header{Count: int(n), Flags: 0}
	_ = h
	return h
}

func okUntaintedField(h *Header) []Record {
	return make([]Record, h.Flags)
}

func okMin(d *Decoder, bound int) []byte {
	n, _ := d.Uvarint()
	return make([]byte, min(int(n), bound))
}

// Batch-frame headers, modeling types.DecodeBatch: a columnar frame
// carries a column count (width) and a row count, and the decoder
// allocates rows*width cells. Both prefixes must come through
// UvarintCount — width costs one tag byte per column, and every row
// costs at least width payload bytes — so the product is bounded by
// the frame's actual size.

type Value struct{ kind byte }

func flaggedBatchWidthRaw(d *Decoder) ([]byte, error) {
	width, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	return make([]byte, width), nil // want `make sized by width`
}

func flaggedBatchCellsRaw(d *Decoder) ([]Value, error) {
	width, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	rows, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	cells := int(rows) * int(width)
	return make([]Value, cells), nil // want `make sized by cells`
}

// flaggedBatchRowsRaw checks the column count but not the row count:
// the arena is still unbounded in rows.
func flaggedBatchRowsRaw(d *Decoder) ([]Value, error) {
	width, err := d.UvarintCount(1)
	if err != nil {
		return nil, err
	}
	rows, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	return make([]Value, int(rows)*width), nil // want `make sized by int\(rows\) \* width`
}

// okBatchHeaderChecked is the shape the real decoder uses: width is
// bounded by its tag bytes, rows by the per-row payload floor (at
// least width bytes each, one pad byte per row for width 0), so the
// rows*width arena never exceeds the frame's byte count.
func okBatchHeaderChecked(d *Decoder) ([]Value, error) {
	width, err := d.UvarintCount(1)
	if err != nil {
		return nil, err
	}
	rowFloor := width
	if rowFloor < 1 {
		rowFloor = 1
	}
	rows, err := d.UvarintCount(rowFloor)
	if err != nil {
		return nil, err
	}
	return make([]Value, rows*width), nil
}
