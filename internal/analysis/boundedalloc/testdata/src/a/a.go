// Fixture for the boundedalloc analyzer: allocations sized by a raw
// decoded length prefix are findings; UvarintCount is the checked
// source.
package a

import (
	"bufio"
	"encoding/binary"
)

// Decoder stands in for wire.Decoder (matched by type name).
type Decoder struct{ buf []byte }

func (d *Decoder) Uvarint() (uint64, error)          { return 0, nil }
func (d *Decoder) Varint() (int64, error)            { return 0, nil }
func (d *Decoder) UvarintCount(min int) (int, error) { return 0, nil }

type Record []byte

func flaggedRaw(d *Decoder) ([]Record, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	out := make([]Record, n) // want `make sized by n, which comes from a raw decoded length prefix`
	return out, nil
}

func flaggedPropagated(d *Decoder) ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	size := int(n) * 8
	return make([]byte, size), nil // want `make sized by size`
}

func flaggedBinary(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return make([]byte, n) // want `make sized by n`
}

func flaggedStream(r *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make sized by n`
}

func okChecked(d *Decoder) ([]Record, error) {
	n, err := d.UvarintCount(1)
	if err != nil {
		return nil, err
	}
	return make([]Record, n), nil
}

func okReassigned(d *Decoder) []byte {
	n, _ := d.Uvarint()
	n = 16
	return make([]byte, n)
}

func okUntaintedSize(d *Decoder, have int) []byte {
	if _, err := d.Uvarint(); err != nil {
		return nil
	}
	return make([]byte, have)
}

func suppressedMake(d *Decoder) []byte {
	n, _ := d.Uvarint()
	//fudjvet:ignore boundedalloc -- fixture: bound is checked out of band
	return make([]byte, n) // suppressed
}
