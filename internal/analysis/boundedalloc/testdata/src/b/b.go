// Fixture for boundedalloc's cross-package fact flow: package a exports
// alloc-param, tainted-return, and tainted-field facts consumed here.
package b

import "a"

func flaggedCrossReturn(d *a.Decoder) ([]byte, error) {
	n, err := a.ReadLength(d)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `make sized by n`
}

func flaggedCrossParam(d *a.Decoder) []a.Record {
	n, _ := d.Uvarint()
	return a.AllocForwarded(int(n)) // want `int\(n\) comes from a raw decoded length prefix and flows into an allocation size inside AllocForwarded`
}

func flaggedCrossField(h *a.Header) []byte {
	return make([]byte, h.Count) // want `make sized by h.Count`
}

func okCrossFlags(h *a.Header) []byte {
	return make([]byte, h.Flags)
}

func okCrossChecked(d *a.Decoder) ([]byte, error) {
	n, err := a.ReadLength(d)
	if err != nil || n > 1024 {
		return nil, err
	}
	return make([]byte, n), nil
}
