// Package boundedalloc flags allocations sized by a raw decoded length
// prefix.
//
// Invariant: every byte that crosses a simulated node boundary is
// decoded by internal/wire, and a corrupted or adversarial length
// prefix must produce a decode error — never a multi-gigabyte
// allocation. wire.(*Decoder).UvarintCount is the checked entry point:
// it rejects counts the remaining input cannot possibly hold. This
// rule generalizes the fuzz findings that hardened the record, value,
// polygon, and linestring decoders: a `make` whose size derives from a
// raw (*Decoder).Uvarint, binary.Uvarint, or binary.ReadUvarint result
// is a finding; size counts must flow through UvarintCount instead.
package boundedalloc

import (
	"go/ast"
	"go/types"

	"fudj/internal/analysis/framework"
)

// Analyzer is the boundedalloc rule.
var Analyzer = &framework.Analyzer{
	Name: "boundedalloc",
	Doc: "allocations sized from a decoded length prefix must flow through " +
		"wire.UvarintCount so corrupt input errors instead of allocating",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc runs a single forward taint pass over the function body
// (closures included — object identity tracks variables across
// literal boundaries). Source-order traversal matches dataflow order
// for the decoder idioms this rule targets.
func checkFunc(pass *framework.Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Taint flows right to left: x, err := d.Uvarint() taints x;
			// y := int(x) propagates; any other assignment clears.
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				taint := isRawLengthSource(pass, n.Rhs[0]) || mentionsTainted(pass, n.Rhs[0], tainted)
				setTaint(pass, n.Lhs[0], taint, tainted)
				for _, lhs := range n.Lhs[1:] {
					setTaint(pass, lhs, false, tainted)
				}
				return true
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					setTaint(pass, lhs, mentionsTainted(pass, n.Rhs[i], tainted), tainted)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) >= 2 {
				for _, sizeArg := range n.Args[1:] {
					if mentionsTainted(pass, sizeArg, tainted) {
						pass.Reportf(n.Pos(),
							"make sized by %s, which comes from a raw decoded length prefix; "+
								"use (*wire.Decoder).UvarintCount so corrupt input errors instead of allocating",
							types.ExprString(sizeArg))
						break
					}
				}
			}
		}
		return true
	})
}

// setTaint updates the taint state of an assignment target.
func setTaint(pass *framework.Pass, lhs ast.Expr, taint bool, tainted map[types.Object]bool) {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if taint {
		tainted[obj] = true
	} else {
		delete(tainted, obj)
	}
}

// isRawLengthSource reports whether e is a call yielding an unchecked
// decoded length: (*Decoder).Uvarint / Varint, binary.Uvarint, or
// binary.ReadUvarint. UvarintCount is the checked source and is not
// flagged.
func isRawLengthSource(pass *framework.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uvarint", "Varint":
		// Method on a Decoder, or package function binary.Uvarint.
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			return ok && named.Obj().Name() == "Decoder"
		}
		if pkg, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); ok {
				return pn.Imported().Path() == "encoding/binary"
			}
		}
	case "ReadUvarint", "ReadVarint":
		if pkg, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); ok {
				return pn.Imported().Path() == "encoding/binary"
			}
		}
	}
	return false
}

// mentionsTainted reports whether e references any tainted variable
// (directly or under conversions/arithmetic).
func mentionsTainted(pass *framework.Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && tainted[obj] {
				found = true
			}
		}
		return true
	})
	return found
}
