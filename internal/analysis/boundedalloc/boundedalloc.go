// Package boundedalloc flags allocations sized by a raw decoded length
// prefix.
//
// Invariant: every byte that crosses a simulated node boundary is
// decoded by internal/wire, and a corrupted or adversarial length
// prefix must produce a decode error — never a multi-gigabyte
// allocation. wire.(*Decoder).UvarintCount is the checked entry point:
// it rejects counts the remaining input cannot possibly hold. This
// rule generalizes the fuzz findings that hardened the record, value,
// polygon, and linestring decoders: a `make` whose size derives from a
// raw (*Decoder).Uvarint, binary.Uvarint, or binary.ReadUvarint result
// is a finding; size counts must flow through UvarintCount instead.
//
// The check is interprocedural, through three kinds of facts:
//
//   - AllocParams: parameter i flows unchecked into a make size inside
//     the function (directly or through a callee with the same fact).
//     Passing a raw decoded length at such a position is a finding at
//     the call site.
//   - TaintedReturns: result i derives from a raw decoded length, so a
//     call's result is tainted exactly like a direct Uvarint call.
//   - Field taint: a raw decoded length stored into a struct field
//     (assignment or composite literal) taints every read of that
//     field, across packages.
//
// Taint is cleared by reassignment from a clean value and by an
// explicit bound check: an if statement whose condition compares the
// tainted variable (<, <=, >, >=) is taken as the sanitizer idiom
//
//	if n > maxRecords { return errTooBig }
//
// and clears the variable's taint downstream. min(n, bound) likewise
// yields a clean value when any argument is clean. These are syntactic
// heuristics, not a dataflow proof — the rule aims at the decoder
// idioms the fuzzers actually broke, and the sanitizers keep
// deliberately-checked code quiet (soundness limits: DESIGN.md §9.7).
package boundedalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"fudj/internal/analysis/framework"
)

// Analyzer is the boundedalloc rule.
var Analyzer = &framework.Analyzer{
	Name: "boundedalloc",
	Doc: "allocations sized from a decoded length prefix must flow through " +
		"wire.UvarintCount so corrupt input errors instead of allocating",
	Run: run,
}

// taint is the abstract value tracked per variable: real means "derives
// from a raw decoded length"; params is a bitmask of the enclosing
// function's parameters the value derives from (used to compute
// AllocParams facts, never reported by itself).
type taint struct {
	real   bool
	params uint64
}

func (t taint) none() bool { return !t.real && t.params == 0 }
func (t taint) or(o taint) taint {
	return taint{real: t.real || o.real, params: t.params | o.params}
}

func run(pass *framework.Pass) error {
	var decls []*ast.FuncDecl
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	// Intra-package fixpoint: functions and fields in one package can be
	// mutually recursive, so iterate fact computation until stable, then
	// make one reporting pass with the final facts. Facts only grow, so
	// the iteration terminates.
	for iter := 0; iter <= len(decls)+1; iter++ {
		changed := false
		for _, fd := range decls {
			if analyzeFunc(pass, fd, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range decls {
		analyzeFunc(pass, fd, true)
	}
	return nil
}

// analyzeFunc runs the taint pass over one function, exporting facts;
// when report is set it also emits diagnostics. It returns whether any
// exported fact changed (for the fixpoint).
func analyzeFunc(pass *framework.Pass, fd *ast.FuncDecl, report bool) bool {
	fnObj := pass.TypesInfo.ObjectOf(fd.Name)
	tainted := make(map[types.Object]taint)

	// Parameters carry symbolic taint so their flow into make sizes and
	// alloc-param positions becomes this function's AllocParams fact.
	paramBit := make(map[types.Object]uint64)
	if fn, ok := fnObj.(*types.Func); ok {
		sig := fn.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len() && i < 64; i++ {
			p := sig.Params().At(i)
			if !isInteger(p.Type()) {
				continue // only count-like values can be decoded lengths
			}
			paramBit[p] = 1 << uint(i)
			tainted[p] = taint{params: 1 << uint(i)}
		}
	}

	var allocParams, taintedReturns uint64
	changed := false

	// resultTaint resolves the taint of a call's result i through the
	// callee's TaintedReturns fact.
	resultTaint := func(call *ast.CallExpr, i int) taint {
		fact := calleeFact(pass, call)
		if fact != nil && i < 64 && fact.TaintedReturns&(1<<uint(i)) != 0 {
			return taint{real: true}
		}
		return taint{}
	}

	var exprTaint func(e ast.Expr) taint
	exprTaint = func(e ast.Expr) taint {
		var t taint
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				t = t.or(tainted[pass.TypesInfo.ObjectOf(n)])
			case *ast.SelectorExpr:
				if key := fieldKeyOf(pass, n); key != "" {
					if f := pass.Facts.Field(key); f != nil && f.Tainted {
						t = t.or(taint{real: true})
					}
					return false // don't re-taint via the Sel ident
				}
			case *ast.CallExpr:
				if isRawLengthSource(pass, n) {
					t = t.or(taint{real: true})
					return false
				}
				if id, ok := n.Fun.(*ast.Ident); ok {
					if b, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
						switch b.Name() {
						case "min":
							// min(a, b) is bounded by its cleanest
							// argument: the result is raw-tainted only if
							// every argument is. Parameter taint still
							// unions — a bound that is itself a parameter
							// keeps the alloc-param flow visible.
							all := taint{}
							realAll := true
							for _, a := range n.Args {
								at := exprTaint(a)
								all = all.or(at)
								if !at.real {
									realAll = false
								}
							}
							all.real = realAll && len(n.Args) > 0
							t = t.or(all)
							return false
						case "make", "len", "cap":
							// Allocation results and measured lengths of
							// real values are not attacker-chosen.
							return false
						}
					}
				}
				// A call's result is tainted through the callee's
				// TaintedReturns fact; argument taint also flows through
				// conservatively (conversions, helpers the facts can't
				// see — same blanket rule the intra pass always had).
				t = t.or(resultTaint(n, 0))
				return true
			case *ast.FuncLit:
				return false // closure bodies are walked as statements
			}
			return true
		})
		return t
	}

	// setTaint updates one assignment target.
	setTaint := func(lhs ast.Expr, t taint) {
		switch lhs := lhs.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.ObjectOf(lhs)
			if obj == nil {
				return
			}
			if t.none() || !isInteger(obj.Type()) {
				delete(tainted, obj)
			} else {
				tainted[obj] = t
			}
		case *ast.SelectorExpr:
			// Storing a raw decoded length into a struct field taints the
			// field for every reader, in this package and its dependents.
			if t.real && isInteger(pass.TypesInfo.TypeOf(lhs)) {
				if key := fieldKeyOf(pass, lhs); key != "" {
					if f := pass.Facts.Field(key); f == nil || !f.Tainted {
						changed = true
					}
					pass.Facts.ExportField(key, func(f *framework.FieldFact) { f.Tainted = true })
				}
			}
		}
	}

	// checkCall reports tainted values passed at alloc-param positions
	// and accumulates this function's own AllocParams through forwarded
	// parameters.
	checkCall := func(call *ast.CallExpr) {
		fact := calleeFact(pass, call)
		if fact == nil || fact.AllocParams == 0 {
			return
		}
		for i, arg := range call.Args {
			if i >= 64 || fact.AllocParams&(1<<uint(i)) == 0 {
				continue
			}
			t := exprTaint(arg)
			allocParams |= t.params
			if t.real && report {
				pass.Reportf(arg.Pos(),
					"%s comes from a raw decoded length prefix and flows into an allocation size inside %s; "+
						"use (*wire.Decoder).UvarintCount so corrupt input errors instead of allocating",
					types.ExprString(arg), calleeName(call))
			}
		}
	}

	// checkComposite taints fields initialized from tainted values.
	checkComposite := func(lit *ast.CompositeLit) {
		tv, ok := pass.TypesInfo.Types[lit]
		if !ok {
			return
		}
		named := namedOf(tv.Type)
		if named == nil {
			return
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			return
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if !isInteger(pass.TypesInfo.TypeOf(kv.Value)) {
				continue
			}
			if t := exprTaint(kv.Value); t.real && named.Obj().Pkg() != nil {
				fk := framework.FieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), key.Name)
				if f := pass.Facts.Field(fk); f == nil || !f.Tainted {
					changed = true
				}
				pass.Facts.ExportField(fk, func(f *framework.FieldFact) { f.Tainted = true })
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) >= 1 {
				// x := e taints x; x, err := f() distributes the callee's
				// TaintedReturns over the targets.
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && len(n.Lhs) > 1 && !isRawLengthSource(pass, call) {
					for i, lhs := range n.Lhs {
						setTaint(lhs, resultTaint(call, i))
					}
					return true
				}
				setTaint(n.Lhs[0], exprTaint(n.Rhs[0]))
				for _, lhs := range n.Lhs[1:] {
					setTaint(lhs, taint{})
				}
				return true
			}
			for i, lhs := range n.Lhs {
				if i < len(n.Rhs) {
					setTaint(lhs, exprTaint(n.Rhs[i]))
				}
			}
		case *ast.IfStmt:
			// Bound-check sanitizer: comparing a tainted variable clears
			// it downstream — `if n > maxRecords { ... }` is the idiom the
			// invariant asks for when UvarintCount doesn't fit.
			clearBoundChecked(pass, n.Cond, tainted)
		case *ast.CompositeLit:
			checkComposite(n)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "make" && len(n.Args) >= 2 {
				for _, sizeArg := range n.Args[1:] {
					t := exprTaint(sizeArg)
					allocParams |= t.params
					if t.real {
						if report {
							pass.Reportf(n.Pos(),
								"make sized by %s, which comes from a raw decoded length prefix; "+
									"use (*wire.Decoder).UvarintCount so corrupt input errors instead of allocating",
								types.ExprString(sizeArg))
						}
						break
					}
				}
				return true
			}
			checkCall(n)
		case *ast.ReturnStmt:
			// `return f(...)` forwarding a multi-value call distributes
			// the callee's result taint across this function's results.
			if len(n.Results) == 1 {
				if call, ok := n.Results[0].(*ast.CallExpr); ok {
					if _, isTuple := pass.TypesInfo.TypeOf(call).(*types.Tuple); isTuple {
						if fn, ok := fnObj.(*types.Func); ok {
							results := fn.Type().(*types.Signature).Results()
							raw := isRawLengthSource(pass, call)
							for i := 0; i < results.Len() && i < 64; i++ {
								if !isInteger(results.At(i).Type()) {
									continue
								}
								if raw && i == 0 {
									// Raw sources yield (length, error);
									// the length is result 0.
									taintedReturns |= 1
								} else if !raw && resultTaint(call, i).real {
									taintedReturns |= 1 << uint(i)
								}
							}
						}
						return true
					}
				}
			}
			for i, res := range n.Results {
				if i < 64 && isInteger(pass.TypesInfo.TypeOf(res)) && exprTaint(res).real {
					taintedReturns |= 1 << uint(i)
				}
			}
		}
		return true
	})

	// Export this function's facts, tracking growth for the fixpoint.
	if fnObj != nil {
		if old := pass.Facts.Func(fnObj); old == nil {
			if allocParams != 0 || taintedReturns != 0 {
				changed = true
			}
		} else if old.AllocParams|allocParams != old.AllocParams ||
			old.TaintedReturns|taintedReturns != old.TaintedReturns {
			changed = true
		}
		pass.Facts.ExportFunc(fnObj, func(f *framework.FuncFact) {
			f.AllocParams |= allocParams
			f.TaintedReturns |= taintedReturns
		})
	}
	return changed
}

// clearBoundChecked removes taint from variables compared with an
// ordering operator anywhere in cond.
func clearBoundChecked(pass *framework.Pass, cond ast.Expr, tainted map[types.Object]taint) {
	ast.Inspect(cond, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				ast.Inspect(side, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							delete(tainted, obj)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// calleeFact resolves the called function's fact, if any.
func calleeFact(pass *framework.Pass, call *ast.CallExpr) *framework.FuncFact {
	obj := calleeFunc(pass, call)
	if obj == nil {
		return nil
	}
	return pass.Facts.Func(obj)
}

// calleeFunc resolves call to a declared function or method object.
func calleeFunc(pass *framework.Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.ObjectOf(fun).(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.TypesInfo.ObjectOf(fun.Sel).(*types.Func); ok {
			return obj
		}
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Func); ok {
				return obj
			}
		}
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "the callee"
}

// fieldKeyOf returns the cross-package fact key for sel when it selects
// a named struct's field, or "".
func fieldKeyOf(pass *framework.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	named := namedOf(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return framework.FieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), sel.Sel.Name)
}

// isInteger reports whether t is an integer-shaped type — the only
// shape a decoded length can have. Restricting taint to integers keeps
// slices and buffers from carrying it transitively.
func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	return nil
}

// isRawLengthSource reports whether e is a call yielding an unchecked
// decoded length: (*Decoder).Uvarint / Varint, binary.Uvarint, or
// binary.ReadUvarint. UvarintCount is the checked source and is not
// flagged.
func isRawLengthSource(pass *framework.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Uvarint", "Varint":
		// Method on a Decoder, or package function binary.Uvarint.
		if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recv := s.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			return ok && named.Obj().Name() == "Decoder"
		}
		if pkg, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); ok {
				return pn.Imported().Path() == "encoding/binary"
			}
		}
	case "ReadUvarint", "ReadVarint":
		if pkg, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.ObjectOf(pkg).(*types.PkgName); ok {
				return pn.Imported().Path() == "encoding/binary"
			}
		}
	}
	return false
}
