package boundedalloc_test

import (
	"testing"

	"fudj/internal/analysis/boundedalloc"
	"fudj/internal/analysis/framework"
)

func TestBoundedAlloc(t *testing.T) {
	framework.RunTest(t, "testdata", boundedalloc.Analyzer, "a", "b")
}
