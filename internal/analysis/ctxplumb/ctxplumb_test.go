package ctxplumb_test

import (
	"testing"

	"fudj/internal/analysis/ctxplumb"
	"fudj/internal/analysis/framework"
)

func TestCtxPlumb(t *testing.T) {
	a := ctxplumb.New([]string{"a"})
	framework.RunTest(t, "testdata", a, "a")
}
