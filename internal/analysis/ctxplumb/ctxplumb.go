// Package ctxplumb enforces context plumbing in the execution
// packages: an exported function that spawns goroutines (directly or
// through a same-package callee) or drives partition tasks must accept
// and actually use a context.Context.
//
// Invariant: query cancellation and deadlines abort in-flight
// partition tasks at their next checkpoint. That guarantee only holds
// if every entry point that fans work out can observe the context. A
// method whose receiver carries a context.Context field (the cluster
// attaches the query context with SetContext) satisfies the invariant
// structurally and is exempt.
package ctxplumb

import (
	"go/ast"
	"go/types"
	"strings"

	"fudj/internal/analysis/framework"
)

// DefaultRestricted lists the packages whose exported surface must
// plumb contexts.
var DefaultRestricted = []string{
	"fudj/internal/cluster",
	"fudj/internal/engine",
	"fudj/internal/sched",
	"fudj/internal/serve",
}

// Analyzer is the ctxplumb rule over the default restricted packages.
var Analyzer = New(DefaultRestricted)

// partitionDrivers are cluster methods that fan a task out over every
// partition; calling one is driving distributed work.
var partitionDrivers = map[string]bool{
	"Run": true, "RunValues": true,
	"Exchange": true, "ExchangeHash": true, "ExchangeMulti": true, "ExchangeRandom": true,
	"Replicate": true,
}

// New returns a ctxplumb analyzer restricted to the given package
// paths (each covering its subtree).
func New(restricted []string) *framework.Analyzer {
	return &framework.Analyzer{
		Name: "ctxplumb",
		Doc: "exported functions that spawn goroutines or drive partition tasks must " +
			"accept and use a context.Context so cancellation reaches them",
		Run: func(pass *framework.Pass) error { return run(pass, restricted) },
	}
}

func run(pass *framework.Pass, restricted []string) error {
	path := pass.Pkg.Path()
	ok := false
	for _, r := range restricted {
		if path == r || strings.HasPrefix(path, r+"/") {
			ok = true
			break
		}
	}
	if !ok {
		return nil
	}

	// First pass: which functions in this package contain a go
	// statement, keyed by their object (so calls resolve precisely).
	spawns := make(map[types.Object]bool)
	var decls []*ast.FuncDecl
	for _, file := range pass.NonTestFiles() {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			decls = append(decls, fd)
			if containsGo(fd.Body) {
				spawns[pass.TypesInfo.ObjectOf(fd.Name)] = true
			}
		}
	}

	for _, fd := range decls {
		if !fd.Name.IsExported() {
			continue
		}
		if carriesContext(pass, fd) {
			continue
		}
		reason := spawnReason(pass, fd, spawns)
		if reason == "" {
			continue
		}
		param := contextParam(pass, fd)
		if param == nil {
			pass.Reportf(fd.Name.Pos(),
				"exported %s %s but has no context.Context parameter; "+
					"cancellation cannot reach the work it starts", fd.Name.Name, reason)
			continue
		}
		if param.Name() == "" || param.Name() == "_" || !paramUsed(pass, fd.Body, param) {
			pass.Reportf(fd.Name.Pos(),
				"exported %s %s but never forwards its context.Context parameter; "+
					"cancellation cannot reach the work it starts", fd.Name.Name, reason)
		}
	}
	return nil
}

// spawnReason explains why fd is subject to the rule, or "" if it is
// not: it spawns goroutines (directly or via a same-package call), or
// it drives partition tasks through the cluster.
func spawnReason(pass *framework.Pass, fd *ast.FuncDecl, spawns map[types.Object]bool) string {
	if containsGo(fd.Body) {
		return "spawns goroutines"
	}
	reason := ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if spawns[pass.TypesInfo.ObjectOf(fun)] {
				reason = "spawns goroutines (via " + fun.Name + ")"
			}
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.ObjectOf(fun.Sel); obj != nil && spawns[obj] {
				reason = "spawns goroutines (via " + fun.Sel.Name + ")"
				return false
			}
			if partitionDrivers[fun.Sel.Name] && isClusterReceiver(pass, fun) {
				reason = "drives partition tasks (" + fun.Sel.Name + ")"
			}
		}
		return true
	})
	return reason
}

func containsGo(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// carriesContext reports whether fd can observe a context through its
// receiver or a parameter whose struct type holds a context.Context
// field — the SetContext pattern. Generic functions taking *Cluster as
// their first parameter (methods cannot be generic) fall under the
// parameter case.
func carriesContext(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv != nil && len(fd.Recv.List) > 0 &&
		structHoldsContext(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)) {
		return true
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if structHoldsContext(pass.TypesInfo.TypeOf(field.Type)) {
				return true
			}
		}
	}
	return false
}

// structHoldsContext reports whether t (possibly behind a pointer) is
// a struct with a context.Context field.
func structHoldsContext(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isContextType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// contextParam returns fd's context.Context parameter, if any.
func contextParam(pass *framework.Pass, fd *ast.FuncDecl) *types.Var {
	obj, ok := pass.TypesInfo.ObjectOf(fd.Name).(*types.Func)
	if !ok {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return sig.Params().At(i)
		}
	}
	return nil
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// paramUsed reports whether param is referenced anywhere in body.
func paramUsed(pass *framework.Pass, body *ast.BlockStmt, param *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == param {
			used = true
		}
		return !used
	})
	return used
}

// isClusterReceiver reports whether sel's receiver is a cluster.Cluster
// (by type name, so fixtures can model it).
func isClusterReceiver(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Cluster"
}
