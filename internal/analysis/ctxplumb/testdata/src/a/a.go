// Fixture for the ctxplumb analyzer, loaded as a restricted package:
// exported functions that fan work out must accept and use a context.
package a

import "context"

func RunAll(work []func()) { // want `exported RunAll spawns goroutines`
	for _, w := range work {
		go w()
	}
}

func RunAllCtx(ctx context.Context, work []func()) {
	for _, w := range work {
		go func() {
			select {
			case <-ctx.Done():
			default:
				w()
			}
		}()
	}
}

func RunIgnoredCtx(ctx context.Context, work []func()) { // want `never forwards its context\.Context`
	for _, w := range work {
		go w()
	}
}

func RunBlankCtx(_ context.Context, work []func()) { // want `never forwards its context\.Context`
	go work[0]()
}

func spawnHelper(f func()) { go f() }

func RunIndirect(f func()) { // want `spawns goroutines \(via spawnHelper\)`
	spawnHelper(f)
}

// Cluster carries the query context (the SetContext pattern); its
// methods observe cancellation structurally.
type Cluster struct {
	qctx context.Context
}

func (c *Cluster) Run(f func()) { c.dispatch(f) }

func (c *Cluster) dispatch(f func()) { go f() }

// RunValues is generic, so it cannot be a method; the *Cluster
// parameter carries the context and exempts it.
func RunValues[T any](c *Cluster, f func() T) {
	go func() { _ = f() }()
}

// Engine holds a cluster but no context of its own: driving partition
// tasks from it needs an explicit context parameter.
type Engine struct {
	c *Cluster
}

func (e *Engine) Execute(f func()) { // want `drives partition tasks \(Run\)`
	e.c.Run(f)
}

func (e *Engine) ExecuteCtx(ctx context.Context, f func()) {
	if ctx.Err() != nil {
		return
	}
	e.c.Run(f)
}

type Pool struct{}

//fudjvet:ignore ctxplumb -- fixture: fire-and-forget telemetry flush
func (p *Pool) Flush() { // suppressed
	go func() {}()
}
