package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

const ignoreSrc = `package p

//fudjvet:ignore maporder -- keys re-sorted by caller
var a int

//fudjvet:ignore maporder,seedrand -- covers both rules
var b int

//fudjvet:ignore all -- everything on this line is fine
var c int

//fudjvet:ignore maporder
var d int

//fudjvet:ignore -- names no rule
var e int

//fudjvet:ignoreXYZ not a directive at all
var f int
`

func parseIgnoreSrc(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", ignoreSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreDirectiveParsing(t *testing.T) {
	fset, files := parseIgnoreSrc(t)
	set, diags := parseIgnoreDirectives(fset, files)

	// Two malformed directives: missing reason (line 12) and missing
	// rule list (line 15).
	if len(diags) != 2 {
		t.Fatalf("want 2 hygiene diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "fudjvet" {
			t.Errorf("hygiene diagnostic under rule %q, want fudjvet", d.Rule)
		}
	}

	at := func(rule string, line int) Diagnostic {
		return Diagnostic{Rule: rule, Pos: token.Position{Filename: "p.go", Line: line}}
	}
	cases := []struct {
		d          Diagnostic
		suppressed bool
		reason     string
	}{
		{at("maporder", 3), true, "keys re-sorted by caller"},         // directive's own line
		{at("maporder", 4), true, "keys re-sorted by caller"},         // line below
		{at("maporder", 5), false, ""},                                // two lines below: out of reach
		{at("seedrand", 4), false, ""},                                // rule not named
		{at("seedrand", 7), true, "covers both rules"},                // multi-rule list
		{at("udfcatch", 10), true, "everything on this line is fine"}, // all
		{at("maporder", 13), false, ""},                               // malformed: no suppression
		{at("maporder", 19), false, ""},                               // not a directive
	}
	for _, c := range cases {
		reason, ok := set.match(c.d)
		if ok != c.suppressed {
			t.Errorf("match(%s@%d) = %v, want %v", c.d.Rule, c.d.Pos.Line, ok, c.suppressed)
			continue
		}
		if ok && reason != c.reason {
			t.Errorf("match(%s@%d) reason = %q, want %q", c.d.Rule, c.d.Pos.Line, reason, c.reason)
		}
	}
}

func TestIgnoreDirectiveWrongFile(t *testing.T) {
	fset, files := parseIgnoreSrc(t)
	set, _ := parseIgnoreDirectives(fset, files)
	d := Diagnostic{Rule: "maporder", Pos: token.Position{Filename: "other.go", Line: 4}}
	if _, ok := set.match(d); ok {
		t.Error("directive in p.go suppressed a finding in other.go")
	}
}
