package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ExportLookup resolves an import path to its gc export data, the way
// the go command hands export files to vet tools.
type ExportLookup func(path string) (io.ReadCloser, error)

// TypeCheck parses the given files and type-checks them against export
// data supplied by lookup. It is the shared core of the standalone
// driver, the unitchecker (go vet -vettool) mode, and the fixture
// loader.
func TypeCheck(path string, filenames []string, lookup ExportLookup) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheckFiles(path, fset, files, lookup)
}

func typeCheckFiles(path string, fset *token.FileSet, files []*ast.File, lookup ExportLookup) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", importer.Lookup(lookup))}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// listedPackage is the subset of `go list -json` output the loaders
// consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Incomplete bool
}

// goList runs `go list -export -deps -json` for the given patterns and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Imports,Standard,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list %v: decode: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportIndex maps import paths to export data files.
type exportIndex map[string]string

func (idx exportIndex) lookup(path string) (io.ReadCloser, error) {
	file, ok := idx[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// LoadPackages loads and type-checks the non-standard-library packages
// matching patterns (e.g. "./..."), resolving imports through the build
// cache's export data. Only production files are loaded; the go tool
// already excludes testdata directories.
//
// Packages are returned in dependency order (imports before importers),
// so a caller analyzing them front to back with one shared FactStore
// sees every dependency's facts at its dependents' call sites. Ties are
// broken by import path for stable output.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	idx := make(exportIndex)
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
		if !p.Standard {
			targets = append(targets, p)
		}
	}
	// `go list -deps` lists dependencies of the matched patterns too;
	// keep only packages the patterns name. The go tool prints matched
	// packages last, but the reliable filter is: a non-standard package
	// whose Dir sits under dir.
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var picked []listedPackage
	seen := make(map[string]bool)
	for _, p := range targets {
		if seen[p.ImportPath] || p.Incomplete || len(p.GoFiles) == 0 {
			continue
		}
		rel, err := filepath.Rel(absDir, p.Dir)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			continue
		}
		seen[p.ImportPath] = true
		picked = append(picked, p)
	}
	var out []*Package
	for _, p := range topoOrder(picked) {
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypeCheck(p.ImportPath, files, idx.lookup)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// topoOrder sorts pkgs so every package follows the packages it imports
// (restricted to the given set). The import graph is acyclic — the go
// tool enforces that — so the traversal terminates.
func topoOrder(pkgs []listedPackage) []listedPackage {
	byPath := make(map[string]listedPackage, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	paths := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		paths = append(paths, p.ImportPath)
	}
	sort.Strings(paths)
	var out []listedPackage
	done := make(map[string]bool, len(pkgs))
	var visit func(path string)
	visit = func(path string) {
		p, ok := byPath[path]
		if !ok || done[path] {
			return
		}
		done[path] = true
		imps := append([]string(nil), p.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			visit(imp)
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(path)
	}
	return out
}

// LoadFixtureDir parses and type-checks one analysistest fixture
// directory (testdata/src/<name>) as a package whose import path is
// its directory name. Fixture imports are resolved by asking the go
// tool for the export data of whatever standard-library packages the
// fixture files mention.
func LoadFixtureDir(dir string) (*Package, error) {
	pkgs, err := LoadFixtureDirs(filepath.Dir(dir), filepath.Base(dir))
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// LoadFixtureDirs parses and type-checks several fixture directories
// under root (testdata/src) as one multi-package fixture, in the order
// given. A later fixture may import an earlier one by its directory
// name (`import "a"`), which is how cross-package fact propagation is
// tested; dependency fixtures therefore come first. Standard-library
// imports resolve through the go tool's export data as usual.
func LoadFixtureDirs(root string, names ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	srcPkgs := make(map[string]*types.Package)
	var out []*Package
	for _, name := range names {
		dir := filepath.Join(root, name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var files []*ast.File
		importSet := make(map[string]bool)
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
			for _, imp := range f.Imports {
				p := imp.Path.Value[1 : len(imp.Path.Value)-1]
				if srcPkgs[p] == nil {
					importSet[p] = true
				}
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("no Go files in %s", dir)
		}
		idx := make(exportIndex)
		if len(importSet) > 0 {
			var paths []string
			for p := range importSet {
				paths = append(paths, p)
			}
			sort.Strings(paths)
			listed, err := goList(dir, paths)
			if err != nil {
				return nil, err
			}
			for _, p := range listed {
				if p.Export != "" {
					idx[p.ImportPath] = p.Export
				}
			}
		}
		pkg, err := typeCheckFixture(name, fset, files, srcPkgs, idx.lookup)
		if err != nil {
			return nil, err
		}
		srcPkgs[name] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// fixtureImporter resolves sibling fixture packages from source before
// falling back to gc export data for everything else.
type fixtureImporter struct {
	src map[string]*types.Package
	gc  types.Importer
}

func (im fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.src[path]; ok {
		return p, nil
	}
	return im.gc.Import(path)
}

func typeCheckFixture(path string, fset *token.FileSet, files []*ast.File, src map[string]*types.Package, lookup ExportLookup) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: fixtureImporter{
		src: src,
		gc:  importer.ForCompiler(fset, "gc", importer.Lookup(lookup)),
	}}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}
