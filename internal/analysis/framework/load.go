package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ExportLookup resolves an import path to its gc export data, the way
// the go command hands export files to vet tools.
type ExportLookup func(path string) (io.ReadCloser, error)

// TypeCheck parses the given files and type-checks them against export
// data supplied by lookup. It is the shared core of the standalone
// driver, the unitchecker (go vet -vettool) mode, and the fixture
// loader.
func TypeCheck(path string, filenames []string, lookup ExportLookup) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typeCheckFiles(path, fset, files, lookup)
}

func typeCheckFiles(path string, fset *token.FileSet, files []*ast.File, lookup ExportLookup) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", importer.Lookup(lookup))}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// listedPackage is the subset of `go list -json` output the loaders
// consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// goList runs `go list -export -deps -json` for the given patterns and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("go list %v: decode: %w", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportIndex maps import paths to export data files.
type exportIndex map[string]string

func (idx exportIndex) lookup(path string) (io.ReadCloser, error) {
	file, ok := idx[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// LoadPackages loads and type-checks the non-standard-library packages
// matching patterns (e.g. "./..."), resolving imports through the build
// cache's export data. Only production files are loaded; the go tool
// already excludes testdata directories.
func LoadPackages(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	idx := make(exportIndex)
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			idx[p.ImportPath] = p.Export
		}
		if !p.Standard {
			targets = append(targets, p)
		}
	}
	// `go list -deps` lists dependencies of the matched patterns too;
	// keep only packages the patterns name. The go tool prints matched
	// packages last, but the reliable filter is: a non-standard package
	// whose Dir sits under dir.
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	var out []*Package
	seen := make(map[string]bool)
	for _, p := range targets {
		if seen[p.ImportPath] || p.Incomplete || len(p.GoFiles) == 0 {
			continue
		}
		rel, err := filepath.Rel(absDir, p.Dir)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			continue
		}
		seen[p.ImportPath] = true
		files := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			files[i] = filepath.Join(p.Dir, f)
		}
		pkg, err := TypeCheck(p.ImportPath, files, idx.lookup)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadFixtureDir parses and type-checks one analysistest fixture
// directory (testdata/src/<name>) as a package whose import path is
// its directory name. Fixture imports are resolved by asking the go
// tool for the export data of whatever standard-library packages the
// fixture files mention.
func LoadFixtureDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			importSet[imp.Path.Value[1:len(imp.Path.Value)-1]] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	idx := make(exportIndex)
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				idx[p.ImportPath] = p.Export
			}
		}
	}
	return typeCheckFiles(filepath.Base(dir), fset, files, idx.lookup)
}
