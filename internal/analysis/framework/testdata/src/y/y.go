// Package y consumes the fact exported while analyzing package x: the
// finding below only fires if x.BadSpawn's NeedsGuard fact crossed the
// package boundary through the shared store.
package y

import "x"

func crossCall() {
	x.BadSpawn() // want `call to flagged function BadSpawn`
}

func fine() {
	var t x.T
	t.Note()
}

var _ = crossCall
var _ = fine
