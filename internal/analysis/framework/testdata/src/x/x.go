// Package x is the fact-producing half of the framework's own
// multi-package fixture: BadSpawn exports a NeedsGuard fact that the
// sibling fixture package y must see at its call sites.
package x

// T carries a method so ObjectKey's method shape is covered.
type T struct{}

// Note is a method; its key must name the receiver type.
func (T) Note() {}

// BadSpawn is flagged by the toy mark analyzer and exported as a fact.
func BadSpawn() {
	shadow := 1
	_ = shadow
}

func use() {
	BadSpawn() // want `call to flagged function BadSpawn`
}

// Bad exists so TestObjectKeyLocals can assert the plain-function key.
func Bad() {}

var _ = use
