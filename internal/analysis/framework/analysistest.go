package framework

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// RunTest is the analysistest-style fixture driver: it loads each
// package directory under <testdata>/src, runs the analyzer, and
// compares the findings against `// want` expectations embedded in the
// fixture sources.
//
// The named packages are analyzed in order with one shared fact store,
// and a later package may import an earlier one by directory name —
// that is how cross-package fact propagation (a fact produced in
// package `a`, a finding in package `b`) is exercised. Independent
// fixture packages simply don't import each other.
//
// Expectation syntax, on the line a finding is expected at:
//
//	code() // want `regexp matching the message`
//
// Multiple expectations on one line are separated by additional
// backquoted regexps. Lines without a want comment must produce no
// finding. Suppressed findings (via //fudjvet:ignore) are asserted with
// `// suppressed` on the directive's line.
func RunTest(t *testing.T, testdata string, a *Analyzer, pkgs ...string) {
	t.Helper()
	loaded, err := LoadFixtureDirs(filepath.Join(testdata, "src"), pkgs...)
	if err != nil {
		t.Fatalf("load fixtures %v: %v", pkgs, err)
	}
	facts := NewFactStore()
	for i, pkg := range loaded {
		res, err := RunAnalyzers(pkg, []*Analyzer{a}, facts)
		if err != nil {
			t.Fatalf("run %s on %s: %v", a.Name, pkgs[i], err)
		}
		checkExpectations(t, pkg, res)
	}
}

var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkExpectations compares findings against // want comments.
func checkExpectations(t *testing.T, pkg *Package, res Result) {
	t.Helper()
	wants := make(map[string][]*expectation) // "file:line" -> expectations
	suppressWant := make(map[string]bool)    // "file:line" -> expect a suppression
	suppressSeen := make(map[string]bool)    // suppressions observed
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				text := c.Text
				if idx := strings.Index(text, "// want "); idx >= 0 {
					for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
				if strings.Contains(text, "// suppressed") {
					suppressWant[key] = true
				}
			}
		}
	}

	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding at %s: %s: %s", key, d.Rule, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("no finding at %s matching %q", key, w.re)
			}
		}
	}

	for _, s := range res.Suppressed {
		// A suppression is asserted at the line of the directive, which
		// is either the finding's line or the line above it.
		keys := []string{
			fmt.Sprintf("%s:%d", s.Pos.Filename, s.Pos.Line),
			fmt.Sprintf("%s:%d", s.Pos.Filename, s.Pos.Line-1),
		}
		ok := false
		for _, key := range keys {
			if suppressWant[key] {
				suppressSeen[key] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected suppression at %s:%d (%s)", s.Pos.Filename, s.Pos.Line, s.Rule)
		}
	}
	for key := range suppressWant {
		if !suppressSeen[key] {
			t.Errorf("expected a suppressed finding near %s, got none", key)
		}
	}
}
