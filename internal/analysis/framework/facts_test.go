package framework

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// TestFactStoreRoundTrip exercises the .vetx serialization: non-empty
// facts survive a marshal/merge cycle, empty facts are dropped, and
// foreign payloads are ignored rather than fatal.
func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.ExportFuncKey("fudj/internal/core.CanonicalPair", func(f *FuncFact) { f.NeedsGuard = true })
	s.ExportFuncKey("fudj/internal/engine.runSmartTheta", func(f *FuncFact) { f.GuardedFnParams = 1 << 3 })
	s.ExportFuncKey("fudj/internal/wire.Decoder.Uvarint", func(f *FuncFact) { f.TaintedReturns = 1 })
	s.ExportFuncKey("fudj/internal/core.DefaultMatch", func(f *FuncFact) {}) // stays empty
	s.ExportField(FieldKey("fudj/internal/storage", "frameHeader", "count"), func(f *FieldFact) { f.Tainted = true })

	data, err := s.MarshalFacts()
	if err != nil {
		t.Fatalf("MarshalFacts: %v", err)
	}
	if strings.Contains(string(data), "DefaultMatch") {
		t.Errorf("empty fact serialized:\n%s", data)
	}

	dst := NewFactStore()
	if err := dst.MergeFacts(data); err != nil {
		t.Fatalf("MergeFacts: %v", err)
	}
	if f := dst.FuncByKey("fudj/internal/core.CanonicalPair"); f == nil || !f.NeedsGuard {
		t.Errorf("NeedsGuard fact lost: %+v", f)
	}
	if f := dst.FuncByKey("fudj/internal/engine.runSmartTheta"); f == nil || f.GuardedFnParams != 1<<3 {
		t.Errorf("GuardedFnParams fact lost: %+v", f)
	}
	if f := dst.FuncByKey("fudj/internal/wire.Decoder.Uvarint"); f == nil || f.TaintedReturns != 1 {
		t.Errorf("TaintedReturns fact lost: %+v", f)
	}
	if f := dst.Field(FieldKey("fudj/internal/storage", "frameHeader", "count")); f == nil || !f.Tainted {
		t.Errorf("field fact lost: %+v", f)
	}

	// Foreign and stale payloads must not poison the store.
	if err := dst.MergeFacts([]byte("fudjvet: no facts\n")); err != nil {
		t.Errorf("non-JSON payload: %v", err)
	}
	if err := dst.MergeFacts([]byte(`{"version": 99, "funcs": {"x.Y": {"needs_guard": true}}}`)); err != nil {
		t.Errorf("future version: %v", err)
	}
	if dst.FuncByKey("x.Y") != nil {
		t.Error("future-version facts merged")
	}
}

// TestObjectKeyLocals verifies that only package-level objects get
// cross-package keys: parameters and locals must not collide with
// same-named package functions.
func TestObjectKeyLocals(t *testing.T) {
	pkgs, err := LoadFixtureDirs("testdata/src", "x")
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	pkg := pkgs[0]
	keys := make(map[string]string) // object description -> key
	for id, obj := range pkg.Info.Defs {
		if obj == nil {
			continue
		}
		keys[id.Name+"/"+obj.String()] = ObjectKey(obj)
	}
	var sawFunc, sawMethod bool
	for desc, key := range keys {
		switch {
		case strings.HasPrefix(desc, "Bad/func x.Bad"):
			if key != "x.Bad" {
				t.Errorf("package func key = %q, want x.Bad", key)
			}
			sawFunc = true
		case strings.HasPrefix(desc, "Note/func (x.T).Note"):
			if key != "x.T.Note" {
				t.Errorf("method key = %q, want x.T.Note", key)
			}
			sawMethod = true
		case strings.HasPrefix(desc, "shadow/var shadow"):
			if key != "" {
				t.Errorf("local var got key %q, want none", key)
			}
		}
	}
	if !sawFunc || !sawMethod {
		t.Fatalf("fixture objects not found (func=%v method=%v); keys: %v", sawFunc, sawMethod, keys)
	}
}

// markAnalyzer is a toy interprocedural analyzer: package-level
// functions whose name starts with "Bad" export a NeedsGuard fact, and
// any call to a function carrying that fact is reported. Running it
// over two fixture packages proves a fact produced in package x is
// consumed by a finding in package y.
var markAnalyzer = &Analyzer{
	Name: "mark",
	Doc:  "test analyzer: flags calls to functions named Bad*, across packages",
	Run: func(pass *Pass) error {
		for _, file := range pass.NonTestFiles() {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil {
					continue
				}
				if strings.HasPrefix(fd.Name.Name, "Bad") {
					pass.Facts.ExportFunc(pass.TypesInfo.ObjectOf(fd.Name), func(f *FuncFact) {
						f.NeedsGuard = true
					})
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var obj types.Object
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					obj = pass.TypesInfo.ObjectOf(fun)
				case *ast.SelectorExpr:
					obj = pass.TypesInfo.ObjectOf(fun.Sel)
				}
				if f := pass.Facts.Func(obj); f != nil && f.NeedsGuard {
					pass.Reportf(call.Pos(), "call to flagged function %s", obj.Name())
				}
				return true
			})
		}
		return nil
	},
}

// TestMultiPackageFixtures runs the toy analyzer over testdata/src/x
// and testdata/src/y, where y imports x by directory name: the fact
// exported while analyzing x must resolve at y's call site.
func TestMultiPackageFixtures(t *testing.T) {
	RunTest(t, "testdata", markAnalyzer, "x", "y")
}
