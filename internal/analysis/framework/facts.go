package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer: per-function (and per-field)
// facts computed bottom-up over the module's package dependency graph.
// An analyzer running on package P records summaries of P's functions
// ("makes an unguarded UDF call", "parameter 0 flows into a make size",
// "result 1 carries a raw decoded length") in the pass's FactStore;
// when a dependent package Q is analyzed later, the same store resolves
// those summaries at Q's call sites, so claims that used to need a
// //fudjvet:ignore ("this helper only runs under the caller's guard")
// are checked instead of asserted.
//
// Facts cross package boundaries the same way types do: in standalone
// mode packages are analyzed in dependency order sharing one store; in
// `go vet -vettool` mode each package's facts are serialized to its
// .vetx file and the go command hands dependents the dependency vetx
// files alongside the gc export data (see cmd/fudjvet).

// FuncFact is the exported summary of one function.
type FuncFact struct {
	// NeedsGuard reports that calling this function may execute
	// user-defined join code with no deferred panic guard installed
	// between this function's entry and the UDF call. The guard
	// obligation attaches to the function's callers (udfcatch).
	NeedsGuard bool `json:"needs_guard,omitempty"`

	// GuardedFnParams is a bitmask over parameters: bit i set means
	// every invocation or onward pass of function-typed parameter i
	// inside this function is dominated by a deferred panic guard (or
	// forwarded to a callee that proves the same), so passing an
	// unguarded UDF-calling function value at position i is safe
	// (udfcatch).
	GuardedFnParams uint64 `json:"guarded_fn_params,omitempty"`

	// AllocParams is a bitmask over parameters: bit i set means
	// parameter i flows unchecked into an allocation size (a make call,
	// directly or through a callee with the same fact), so a raw
	// decoded length must not be passed at position i (boundedalloc).
	AllocParams uint64 `json:"alloc_params,omitempty"`

	// TaintedReturns is a bitmask over results: bit i set means result
	// i derives from a raw decoded length prefix and must be treated as
	// tainted at call sites (boundedalloc).
	TaintedReturns uint64 `json:"tainted_returns,omitempty"`
}

func (f FuncFact) empty() bool { return f == FuncFact{} }

// FieldFact is the exported summary of one struct field.
type FieldFact struct {
	// Tainted reports that a raw decoded length prefix is stored into
	// this field somewhere in the defining package, so reads of the
	// field are tainted everywhere (boundedalloc).
	Tainted bool `json:"tainted,omitempty"`
}

// FactStore accumulates facts across the packages of one analysis run.
// The zero value is not usable; call NewFactStore.
type FactStore struct {
	funcs  map[string]*FuncFact
	fields map[string]*FieldFact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		funcs:  make(map[string]*FuncFact),
		fields: make(map[string]*FieldFact),
	}
}

// ObjectKey renders a stable cross-package identifier for a function or
// field object: "pkgpath.Name" for package-level objects,
// "pkgpath.Recv.Name" for methods and fields. Packages re-imported from
// export data produce the same key as the source-checked original, which
// is what lets facts survive the gc-export-data boundary.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	path := obj.Pkg().Path()
	switch o := obj.(type) {
	case *types.Func:
		sig, ok := o.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			return path + "." + recvTypeName(sig.Recv().Type()) + "." + o.Name()
		}
		return path + "." + o.Name()
	case *types.Var:
		if o.IsField() {
			// Field keys embed only the field name plus package; the
			// owning struct type is not reachable from the field object,
			// so callers use FieldKey with the type name when they have
			// it. This bare form is the fallback.
			return path + ".." + o.Name()
		}
		// Locals, parameters, and closure variables are not addressable
		// across packages; giving them keys would collide with
		// package-level names.
		if o.Parent() != o.Pkg().Scope() {
			return ""
		}
		return path + "." + o.Name()
	}
	return path + "." + obj.Name()
}

// FieldKey renders the identifier for a named struct type's field.
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Alias:
		return n.Obj().Name()
	}
	return strings.ReplaceAll(t.String(), " ", "")
}

// Func returns the fact recorded for obj, or nil.
func (s *FactStore) Func(obj types.Object) *FuncFact {
	if key := ObjectKey(obj); key != "" {
		return s.funcs[key]
	}
	return nil
}

// FuncByKey returns the fact recorded under an explicit key, or nil.
func (s *FactStore) FuncByKey(key string) *FuncFact { return s.funcs[key] }

// ExportFunc merges a fact for obj into the store through update, which
// receives the (possibly fresh) fact to mutate.
func (s *FactStore) ExportFunc(obj types.Object, update func(*FuncFact)) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	s.ExportFuncKey(key, update)
}

// ExportFuncKey is ExportFunc with an explicit key.
func (s *FactStore) ExportFuncKey(key string, update func(*FuncFact)) {
	f := s.funcs[key]
	if f == nil {
		f = &FuncFact{}
		s.funcs[key] = f
	}
	update(f)
}

// Field returns the fact recorded under key, or nil.
func (s *FactStore) Field(key string) *FieldFact { return s.fields[key] }

// ExportField merges a field fact under key.
func (s *FactStore) ExportField(key string, update func(*FieldFact)) {
	if key == "" {
		return
	}
	f := s.fields[key]
	if f == nil {
		f = &FieldFact{}
		s.fields[key] = f
	}
	update(f)
}

// factFile is the on-disk (.vetx) shape of a store.
type factFile struct {
	Version int                   `json:"version"`
	Funcs   map[string]*FuncFact  `json:"funcs,omitempty"`
	Fields  map[string]*FieldFact `json:"fields,omitempty"`
}

const factVersion = 1

// MarshalFacts serializes the store for a .vetx file, dropping empty
// facts so the output stays stable and small.
func (s *FactStore) MarshalFacts() ([]byte, error) {
	out := factFile{Version: factVersion}
	for k, f := range s.funcs {
		if !f.empty() {
			if out.Funcs == nil {
				out.Funcs = make(map[string]*FuncFact)
			}
			out.Funcs[k] = f
		}
	}
	for k, f := range s.fields {
		if f.Tainted {
			if out.Fields == nil {
				out.Fields = make(map[string]*FieldFact)
			}
			out.Fields[k] = f
		}
	}
	return json.MarshalIndent(out, "", "\t")
}

// MergeFacts merges a serialized store (one dependency's .vetx) into s.
// Unknown versions and non-fudjvet vetx payloads are ignored rather
// than fatal: the go command hands every tool the same files, and an
// older fudjvet's placeholder must not break a newer one.
func (s *FactStore) MergeFacts(data []byte) error {
	var in factFile
	if err := json.Unmarshal(data, &in); err != nil {
		return nil // not a fudjvet fact file; nothing to merge
	}
	if in.Version != factVersion {
		return nil
	}
	for k, f := range in.Funcs {
		if f == nil {
			continue
		}
		fact := f
		s.ExportFuncKey(k, func(dst *FuncFact) { *dst = *fact })
	}
	for k, f := range in.Fields {
		if f == nil || !f.Tainted {
			continue
		}
		s.ExportField(k, func(dst *FieldFact) { dst.Tainted = true })
	}
	return nil
}

// String renders the store's non-empty facts sorted by key, for tests
// and debugging.
func (s *FactStore) String() string {
	var lines []string
	for k, f := range s.funcs {
		if !f.empty() {
			lines = append(lines, fmt.Sprintf("func %s needsGuard=%v guardedFnParams=%#x allocParams=%#x taintedReturns=%#x",
				k, f.NeedsGuard, f.GuardedFnParams, f.AllocParams, f.TaintedReturns))
		}
	}
	for k, f := range s.fields {
		if f.Tainted {
			lines = append(lines, fmt.Sprintf("field %s tainted", k))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
