package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//fudjvet:ignore rule1,rule2 -- why this is safe
//
// suppresses findings of the named rules (or every rule, with the
// special name "all") reported on the directive's own line or on the
// line immediately below it. The "-- reason" part is mandatory: an
// unexplained suppression is itself reported, so the escape hatch can
// never silently accumulate.
const ignorePrefix = "//fudjvet:ignore"

type ignoreDirective struct {
	rules  map[string]bool
	all    bool
	line   int // source line the directive sits on
	file   string
	reason string
}

type directiveSet struct {
	// byFileLine indexes directives by filename and the lines they
	// cover (the directive line and the next line).
	byFileLine map[string][]*ignoreDirective
}

// match reports whether d is suppressed, returning the directive's
// reason.
func (s directiveSet) match(d Diagnostic) (string, bool) {
	for _, dir := range s.byFileLine[d.Pos.Filename] {
		if d.Pos.Line != dir.line && d.Pos.Line != dir.line+1 {
			continue
		}
		if dir.all || dir.rules[d.Rule] {
			return dir.reason, true
		}
	}
	return "", false
}

// parseIgnoreDirectives scans every comment in files for fudjvet:ignore
// directives. Malformed directives (no rule list, or a missing
// "-- reason") are returned as diagnostics under the pseudo-rule
// "fudjvet" so they fail the build like any other finding.
func parseIgnoreDirectives(fset *token.FileSet, files []*ast.File) (directiveSet, []Diagnostic) {
	set := directiveSet{byFileLine: make(map[string][]*ignoreDirective)}
	var diags []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //fudjvet:ignoreXYZ — not ours
				}
				spec, reason, found := strings.Cut(rest, "--")
				spec = strings.TrimSpace(spec)
				reason = strings.TrimSpace(reason)
				if spec == "" {
					diags = append(diags, Diagnostic{
						Rule: "fudjvet", Pos: pos,
						Message: "ignore directive names no rule; write //fudjvet:ignore <rule> -- <reason>",
					})
					continue
				}
				if !found || reason == "" {
					diags = append(diags, Diagnostic{
						Rule: "fudjvet", Pos: pos,
						Message: "ignore directive is missing its \"-- reason\"; unexplained suppressions are not allowed",
					})
					continue
				}
				dir := &ignoreDirective{
					rules:  make(map[string]bool),
					line:   pos.Line,
					file:   pos.Filename,
					reason: reason,
				}
				for _, r := range strings.Split(spec, ",") {
					r = strings.TrimSpace(r)
					if r == "all" {
						dir.all = true
					} else if r != "" {
						dir.rules[r] = true
					}
				}
				set.byFileLine[dir.file] = append(set.byFileLine[dir.file], dir)
			}
		}
	}
	return set, diags
}
