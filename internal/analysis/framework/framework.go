// Package framework is a self-contained, stdlib-only re-implementation
// of the subset of golang.org/x/tools/go/analysis that the fudjvet
// analyzers need: an Analyzer/Pass/Diagnostic vocabulary, a loader that
// type-checks packages against gc export data, an analysistest-style
// fixture driver, and the `//fudjvet:ignore` escape-hatch machinery.
//
// The build environment intentionally carries no third-party modules,
// so the real x/tools framework is unavailable; this package keeps the
// same shape (an analyzer is a name, a doc string, and a Run function
// over a type-checked package) so the analyzers would port to the real
// framework nearly verbatim if the dependency ever lands.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the rule; it is what //fudjvet:ignore directives
	// name and what diagnostics are tagged with.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and
	// why the engine needs it.
	Doc string
	// Run inspects one type-checked package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the interprocedural store shared across the packages of
	// one run: analyzers read facts exported by the packages this one
	// imports and record facts about this package's own functions for
	// the packages analyzed after it. Never nil.
	Facts *FactStore

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether pos lies in a _test.go file. The fudjvet
// analyzers check production invariants, so they skip test code.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// NonTestFiles returns the pass's files excluding _test.go files.
func (p *Pass) NonTestFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}

// Diagnostic is one finding, positioned and tagged with its rule.
type Diagnostic struct {
	Rule    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic in the file:line:col style go vet uses.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Suppression records one diagnostic silenced by a //fudjvet:ignore
// directive, so the multichecker can count and report what the escape
// hatch is hiding.
type Suppression struct {
	Rule    string
	Pos     token.Position
	Message string // the silenced finding's text
	Reason  string // the directive's "-- reason"
}

// Result is the outcome of running a set of analyzers over one package.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by ignore directives.
	Suppressed []Suppression
}

// RunAnalyzers executes each analyzer over pkg and applies the ignore
// directives found in the package's files. Directive hygiene problems
// (missing reason) surface as ordinary diagnostics under the pseudo-rule
// "fudjvet".
//
// facts carries interprocedural function summaries across packages:
// pass nil for a fresh single-package run, or one shared store while
// analyzing a module in dependency order so facts exported by
// dependencies resolve at their dependents' call sites.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, facts *FactStore) (Result, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
		}
		pass.report = func(d Diagnostic) { raw = append(raw, d) }
		if err := a.Run(pass); err != nil {
			return Result{}, fmt.Errorf("%s: %w", a.Name, err)
		}
	}

	dirs, dirDiags := parseIgnoreDirectives(pkg.Fset, pkg.Files)
	res := Result{}
	for _, d := range raw {
		if reason, ok := dirs.match(d); ok {
			res.Suppressed = append(res.Suppressed, Suppression{Rule: d.Rule, Pos: d.Pos, Message: d.Message, Reason: reason})
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}
	res.Diagnostics = append(res.Diagnostics, dirDiags...)
	sort.Slice(res.Diagnostics, func(i, j int) bool { return posLess(res.Diagnostics[i].Pos, res.Diagnostics[j].Pos) })
	sort.Slice(res.Suppressed, func(i, j int) bool { return posLess(res.Suppressed[i].Pos, res.Suppressed[j].Pos) })
	return res, nil
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}
