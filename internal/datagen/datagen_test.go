package datagen

import (
	"strings"
	"testing"

	"fudj/internal/text"
	"fudj/internal/types"
)

func TestDeterminism(t *testing.T) {
	a := Wildfires(7, 100)
	b := Wildfires(7, 100)
	c := Wildfires(8, 100)
	if len(a.Records) != 100 || len(b.Records) != 100 {
		t.Fatal("wrong cardinality")
	}
	for i := range a.Records {
		for j := range a.Records[i] {
			if !a.Records[i][j].Equal(b.Records[i][j]) {
				t.Fatalf("same seed diverged at record %d", i)
			}
		}
	}
	diff := false
	for i := range a.Records {
		if !a.Records[i][1].Equal(c.Records[i][1]) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical data")
	}
}

func TestSchemasMatchRecords(t *testing.T) {
	sets := []*Dataset{
		Wildfires(1, 50), Parks(2, 50), NYCTaxi(3, 50), AmazonReview(4, 50),
	}
	for _, ds := range sets {
		if len(ds.Records) != 50 {
			t.Errorf("%s: %d records", ds.Name, len(ds.Records))
		}
		for i, rec := range ds.Records {
			if len(rec) != ds.Schema.Len() {
				t.Fatalf("%s record %d has %d fields, schema %d", ds.Name, i, len(rec), ds.Schema.Len())
			}
			for j, f := range ds.Schema.Fields {
				if rec[j].Kind() != f.Kind {
					t.Fatalf("%s record %d field %s: kind %v, want %v", ds.Name, i, f.Name, rec[j].Kind(), f.Kind)
				}
			}
		}
		if ds.SizeBytes() <= 0 {
			t.Errorf("%s: SizeBytes = %d", ds.Name, ds.SizeBytes())
		}
		if !strings.Contains(ds.String(), ds.Name) {
			t.Errorf("%s: String() = %q", ds.Name, ds.String())
		}
	}
}

func TestWildfiresClustered(t *testing.T) {
	ds := Wildfires(5, 2000)
	// Clustered data: the average pairwise distance of a sample should
	// be well below the uniform expectation (~0.52 * World).
	var sum float64
	count := 0
	for i := 0; i < 200; i += 2 {
		p1 := ds.Records[i][1].Point()
		p2 := ds.Records[i+1][1].Point()
		sum += p1.Distance(p2)
		count++
	}
	avg := sum / float64(count)
	if avg >= 0.52*World {
		t.Errorf("average pairwise distance %.1f suggests no clustering", avg)
	}
}

func TestParksHeavyTail(t *testing.T) {
	ds := Parks(6, 2000)
	var max, sum float64
	for _, rec := range ds.Records {
		a := rec[1].Polygon().MBR().Area()
		sum += a
		if a > max {
			max = a
		}
	}
	mean := sum / float64(len(ds.Records))
	if max < 10*mean {
		t.Errorf("max area %.1f vs mean %.1f: no heavy tail", max, mean)
	}
	// Polygons must be valid (>=3 vertices, nonempty MBR).
	for i, rec := range ds.Records {
		p := rec[1].Polygon()
		if len(p.Ring) < 3 || p.MBR().IsEmpty() {
			t.Fatalf("park %d has invalid polygon", i)
		}
	}
}

func TestNYCTaxiRushHours(t *testing.T) {
	ds := NYCTaxi(7, 5000)
	rush, total := 0, 0
	for _, rec := range ds.Records {
		iv := rec[3].Interval()
		if !iv.Valid() || iv.Duration() <= 0 {
			t.Fatal("invalid ride interval")
		}
		minute := iv.Start % dayTicks
		if (minute >= 7*60 && minute <= 9*60) || (minute >= 17*60 && minute <= 19*60) {
			rush++
		}
		total++
	}
	// Rush windows cover 1/6 of the day; bursts should push well past that.
	if float64(rush)/float64(total) < 0.3 {
		t.Errorf("rush-hour fraction %.2f too low for burst pattern", float64(rush)/float64(total))
	}
	// Vendor values are 1 or 2.
	for _, rec := range ds.Records[:100] {
		v := rec[1].Int64()
		if v != 1 && v != 2 {
			t.Fatalf("vendor = %d", v)
		}
	}
}

func TestAmazonReviewZipf(t *testing.T) {
	ds := AmazonReview(8, 5000)
	counts := map[string]int64{}
	for _, rec := range ds.Records {
		for _, tok := range text.Tokenize(rec[2].Str()) {
			counts[tok]++
		}
	}
	if len(counts) < 100 {
		t.Fatalf("vocabulary too small: %d", len(counts))
	}
	// Zipf: the most common token should dominate the median token.
	var max int64
	for _, n := range counts {
		if n > max {
			max = n
		}
	}
	if max < 50 {
		t.Errorf("top token count %d: no frequency skew", max)
	}
	// Ratings skew toward 5.
	var fives, total int64
	for _, rec := range ds.Records {
		if rec[1].Int64() == 5 {
			fives++
		}
		total++
	}
	if float64(fives)/float64(total) < 0.25 {
		t.Errorf("5-star fraction %.2f too low", float64(fives)/float64(total))
	}
}

func TestTrajectories(t *testing.T) {
	ds := Trajectories(13, 500)
	if len(ds.Records) != 500 || ds.KeyType != "LineString" {
		t.Fatalf("dataset = %v", ds)
	}
	for i, rec := range ds.Records {
		ls := rec[2].LineString()
		if len(ls.Points) < 2 {
			t.Fatalf("trajectory %d too short", i)
		}
		for _, p := range ls.Points {
			if p.X < 0 || p.X > World || p.Y < 0 || p.Y > World {
				t.Fatalf("trajectory %d leaves the world: %v", i, p)
			}
		}
		if c := rec[1].Int64(); c != 1 && c != 2 {
			t.Fatalf("class = %d", c)
		}
	}
	// Clustering: some pairs must approach closely, or the trajectory
	// join workload would be trivially empty.
	close := 0
	for i := 0; i < 100; i++ {
		a := ds.Records[i][2].LineString()
		b := ds.Records[i+100][2].LineString()
		if a.WithinDistance(b, 5) {
			close++
		}
	}
	if close == 0 {
		t.Error("no close trajectory pairs in the sample")
	}
}

func TestAmazonReviewHasNearDuplicates(t *testing.T) {
	ds := AmazonReview(9, 3000)
	// Count exact duplicate texts as a lower bound on near-duplicates;
	// the generator copies ~20% of reviews, half unmodified.
	seen := map[string]bool{}
	dups := 0
	for _, rec := range ds.Records {
		s := rec[2].Str()
		if seen[s] {
			dups++
		}
		seen[s] = true
	}
	if dups < len(ds.Records)/20 {
		t.Errorf("only %d duplicate reviews in %d; high-threshold joins would be empty", dups, len(ds.Records))
	}
}

func TestRecordsSurviveWireRoundTrip(t *testing.T) {
	for _, ds := range []*Dataset{Wildfires(1, 20), Parks(2, 20), NYCTaxi(3, 20), AmazonReview(4, 20)} {
		got, err := types.DecodeRecords(types.EncodeRecords(ds.Records))
		if err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		for i := range ds.Records {
			for j := range ds.Records[i] {
				if !got[i][j].Equal(ds.Records[i][j]) {
					t.Fatalf("%s record %d field %d mismatch", ds.Name, i, j)
				}
			}
		}
	}
}
