// Package datagen generates the four synthetic datasets standing in
// for the paper's real-world inputs (Table I): Wildfires (points),
// Parks (polygons), NYCTaxi (intervals), and AmazonReview (texts).
// Generators are seeded and deterministic, and preserve the statistical
// properties each join algorithm is sensitive to: spatial clustering,
// heavy-tailed polygon sizes, rush-hour interval bursts, and Zipfian
// token frequencies.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"fudj/internal/geo"
	"fudj/internal/interval"
	"fudj/internal/types"
)

// World is the square coordinate space shared by the spatial datasets.
const World = 1000.0

// Dataset bundles a generated dataset with its schema and metadata.
type Dataset struct {
	Name    string
	KeyType string // the join key type, as Table I reports it
	Schema  *types.Schema
	Records []types.Record
}

// SizeBytes reports the wire-encoded size of the dataset, the analogue
// of Table I's on-disk size column.
func (d *Dataset) SizeBytes() int {
	return len(types.EncodeRecords(d.Records))
}

// String renders a Table I style row.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s: %d records, %d bytes, key type %s",
		d.Name, len(d.Records), d.SizeBytes(), d.KeyType)
}

// clusterCenters places k cluster centers uniformly in the world.
func clusterCenters(rng *rand.Rand, k int) []geo.Point {
	out := make([]geo.Point, k)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64() * World, Y: rng.Float64() * World}
	}
	return out
}

// gaussianAround samples a point near a center with the given spread,
// clamped to the world.
func gaussianAround(rng *rand.Rand, c geo.Point, spread float64) geo.Point {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > World {
			return World
		}
		return v
	}
	return geo.Point{
		X: clamp(c.X + rng.NormFloat64()*spread),
		Y: clamp(c.Y + rng.NormFloat64()*spread),
	}
}

// Wildfires generates n fire reports: clustered ignition points (fires
// cluster in dry regions) with a year and a burn interval.
func Wildfires(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := clusterCenters(rng, 12)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "location", Kind: types.KindPoint},
		types.Field{Name: "year", Kind: types.KindInt64},
		types.Field{Name: "burn", Kind: types.KindInterval},
	)
	recs := make([]types.Record, n)
	for i := range recs {
		c := centers[rng.Intn(len(centers))]
		p := gaussianAround(rng, c, 25)
		start := rng.Int63n(100000)
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewPoint(p),
			types.NewInt64(2019 + int64(rng.Intn(5))),
			types.NewInterval(interval.Interval{Start: start, End: start + 1 + rng.Int63n(500)}),
		}
	}
	return &Dataset{Name: "Wildfires", KeyType: "Point", Schema: schema, Records: recs}
}

// Parks generates n park polygons with heavy-tailed sizes (a few huge
// parks, many small ones) and tag strings drawn from a skewed
// vocabulary.
func Parks(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "boundary", Kind: types.KindPolygon},
		types.Field{Name: "tags", Kind: types.KindString},
	)
	recs := make([]types.Record, n)
	for i := range recs {
		x, y := rng.Float64()*World, rng.Float64()*World
		// Pareto-ish extent: most parks are tiny, a few are enormous.
		extent := 0.5 + 3*math.Pow(1/(rng.Float64()+0.01), 0.6)
		if extent > World/10 {
			extent = World / 10
		}
		w := extent * (0.5 + rng.Float64())
		h := extent * (0.5 + rng.Float64())
		// Irregular hexagon inside the w×h box, counter-clockwise.
		jitter := func(f float64) float64 { return f * (0.8 + 0.2*rng.Float64()) }
		poly := geo.NewPolygon([]geo.Point{
			{X: x + jitter(w*0.3), Y: y},
			{X: x + jitter(w*0.9), Y: y + jitter(h*0.1)},
			{X: x + w, Y: y + jitter(h*0.6)},
			{X: x + jitter(w*0.7), Y: y + h},
			{X: x + jitter(w*0.2), Y: y + jitter(h*0.9)},
			{X: x, Y: y + jitter(h*0.4)},
		})
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewPolygon(poly),
			types.NewString(tagString(rng)),
		}
	}
	return &Dataset{Name: "Parks", KeyType: "Polygon", Schema: schema, Records: recs}
}

var parkTags = []string{
	"river", "scenic", "landscape", "camping", "backpacking", "trail",
	"lake", "mountain", "forest", "desert", "canyon", "wildlife",
	"fishing", "swimming", "historic", "monument", "beach", "waterfall",
	"climbing", "picnic",
}

func tagString(rng *rand.Rand) string {
	n := 2 + rng.Intn(5)
	tags := make([]string, n)
	for i := range tags {
		idx := rng.Intn(len(parkTags))
		if rng.Intn(2) == 0 { // skew toward popular tags
			idx = rng.Intn(len(parkTags) / 3)
		}
		tags[i] = parkTags[idx]
	}
	return strings.Join(tags, " ")
}

// dayTicks is the length of one simulated day in ticks.
const dayTicks = 24 * 60

// NYCTaxi generates n taxi rides: vendor 1 or 2, a pickup point near
// one of a few hotspots, and a ride interval whose start times burst at
// rush hours (8am and 6pm of a repeating day).
func NYCTaxi(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	hotspots := clusterCenters(rng, 5)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "vendor", Kind: types.KindInt64},
		types.Field{Name: "pickup", Kind: types.KindPoint},
		types.Field{Name: "ride_interval", Kind: types.KindInterval},
	)
	days := n/2000 + 1
	recs := make([]types.Record, n)
	for i := range recs {
		day := int64(rng.Intn(days))
		var minute int64
		if rng.Intn(3) > 0 {
			// Rush hour: normal around 8:00 or 18:00.
			center := int64(8 * 60)
			if rng.Intn(2) == 1 {
				center = 18 * 60
			}
			minute = center + int64(rng.NormFloat64()*45)
		} else {
			minute = rng.Int63n(dayTicks)
		}
		if minute < 0 {
			minute = 0
		}
		if minute >= dayTicks {
			minute = dayTicks - 1
		}
		start := day*dayTicks + minute
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(1 + int64(rng.Intn(2))),
			types.NewPoint(gaussianAround(rng, hotspots[rng.Intn(len(hotspots))], 15)),
			types.NewInterval(interval.Interval{Start: start, End: start + 3 + rng.Int63n(45)}),
		}
	}
	return &Dataset{Name: "NYCTaxi", KeyType: "Interval", Schema: schema, Records: recs}
}

// Trajectories generates n vehicle trajectories: random walks that
// start near one of a few hubs (so trajectories cluster and actually
// approach each other) with a vehicle class column for filtering.
func Trajectories(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	hubs := clusterCenters(rng, 8)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "class", Kind: types.KindInt64},
		types.Field{Name: "route", Kind: types.KindLineString},
	)
	recs := make([]types.Record, n)
	for i := range recs {
		steps := 4 + rng.Intn(8)
		pts := make([]geo.Point, steps)
		pts[0] = gaussianAround(rng, hubs[rng.Intn(len(hubs))], 20)
		for s := 1; s < steps; s++ {
			pts[s] = geo.Point{
				X: clampWorld(pts[s-1].X + rng.NormFloat64()*6),
				Y: clampWorld(pts[s-1].Y + rng.NormFloat64()*6),
			}
		}
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(1 + int64(rng.Intn(2))),
			types.NewLineString(geo.NewLineString(pts)),
		}
	}
	return &Dataset{Name: "Trajectories", KeyType: "LineString", Schema: schema, Records: recs}
}

func clampWorld(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > World {
		return World
	}
	return v
}

// reviewVocabSize is the vocabulary the Zipfian review generator draws
// from; word `w17` is the 17th most common word.
const reviewVocabSize = 4000

// AmazonReview generates n product reviews: an overall rating skewed
// toward 5 stars (as real review datasets are) and review text whose
// token frequencies follow a Zipf distribution, which is what prefix
// filtering exploits. Like real review corpora, the data contains
// near-duplicates: a fraction of reviews reuse an earlier review's
// wording with at most one word changed, so high-threshold similarity
// joins have nonempty answers.
func AmazonReview(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 4, reviewVocabSize-1)
	schema := types.NewSchema(
		types.Field{Name: "id", Kind: types.KindInt64},
		types.Field{Name: "overall", Kind: types.KindInt64},
		types.Field{Name: "review", Kind: types.KindString},
	)
	ratings := []int64{5, 5, 5, 4, 4, 3, 2, 1} // skewed distribution
	recs := make([]types.Record, n)
	texts := make([]string, n)
	var sb strings.Builder
	for i := range recs {
		var review string
		if i > 0 && rng.Intn(5) == 0 {
			// Near-duplicate: copy an earlier review, maybe swap one word.
			words := strings.Fields(texts[rng.Intn(i)])
			if len(words) > 0 && rng.Intn(2) == 0 {
				words[rng.Intn(len(words))] = fmt.Sprintf("w%d", zipf.Uint64())
			}
			review = strings.Join(words, " ")
		} else {
			sb.Reset()
			words := 5 + rng.Intn(12)
			for w := 0; w < words; w++ {
				if w > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "w%d", zipf.Uint64())
			}
			review = sb.String()
		}
		texts[i] = review
		recs[i] = types.Record{
			types.NewInt64(int64(i)),
			types.NewInt64(ratings[rng.Intn(len(ratings))]),
			types.NewString(review),
		}
	}
	return &Dataset{Name: "AmazonReview", KeyType: "Text", Schema: schema, Records: recs}
}
