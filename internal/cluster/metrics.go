package cluster

import (
	"sort"
	"sync"
	"time"
)

// MetricKind distinguishes the three metric flavours the registry
// stores.
type MetricKind uint8

const (
	// KindCounter is a monotonically increasing total.
	KindCounter MetricKind = iota
	// KindGauge is a current value with a recorded high-water mark.
	KindGauge
	// KindHistogram records observation count, sum, and max.
	KindHistogram
)

// Core metric names pre-registered by every cluster. The engine layers
// its own "join.*" metrics into the same registry at query end, so one
// Values() call sees the whole execution.
const (
	MetricShuffleBytes   = "shuffle.bytes"
	MetricShuffleRecords = "shuffle.records"
	MetricBroadcastBytes = "broadcast.bytes"
	MetricTasks          = "tasks"
	MetricRetries        = "retries"
	MetricRecovered      = "recovered"
	MetricSpeculative    = "speculative"
	MetricCorruptHealed  = "corruptions.healed"
	MetricMemReserved    = "mem.reserved"
	MetricMemInput       = "mem.input"
	MetricSpillBytes     = "spill.bytes"
	MetricSpillRuns      = "spill.runs"
	MetricBucketsSplit   = "buckets.split"
	MetricBackpressure   = "backpressure"
	MetricTaskBusy       = "task.busy"

	// Batched-execution counters (PR 9). Batches/BatchRows count the
	// columnar frames serialized across node boundaries and the rows
	// they carried; the pool gauges mirror the shuffle batch pool's
	// cumulative get/hit totals so a reuse ratio can be reported.
	MetricBatches       = "batch.count"
	MetricBatchRows     = "batch.rows"
	MetricBatchPoolGets = "batch.pool.gets"
	MetricBatchPoolHits = "batch.pool.hits"

	// Checkpoint/recovery counters (PR 5). CheckpointRecovered counts
	// partitions restored from a durable checkpoint instead of
	// recomputed; CheckpointDiscarded counts checkpoints that failed
	// their integrity check on reopen and were healed by recompute.
	MetricCheckpointBytes     = "checkpoint.bytes"
	MetricCheckpointRecovered = "checkpoint.partitions.recovered"
	MetricCheckpointDiscarded = "checkpoint.discarded"
	MetricBarrierKills        = "barrier.kills"
)

// Metrics is the cluster's metric registry: named counters, gauges,
// and histograms, plus the per-partition busy-time vector, all guarded
// by one mutex. Every read and write of registry state holds mu —
// the discipline Snapshot establishes and the metricslock analyzer
// enforces — so a mid-query observer can never mix epochs across
// metrics.
//
// Storage is columnar (parallel slices indexed by registration id) so
// handle operations are a lock, an indexed add, and an unlock — no map
// lookup on the hot path.
type Metrics struct {
	mu    sync.Mutex
	index map[string]int
	names []string
	kinds []MetricKind
	vals  []int64 // counter total / gauge current
	peaks []int64 // gauge high-water mark
	hcnt  []int64 // histogram observations
	hsum  []int64 // histogram sum
	hmax  []int64 // histogram max
	busy  []time.Duration
}

func newMetrics(parts int) *Metrics {
	m := &Metrics{index: make(map[string]int)}
	m.mu.Lock()
	for _, name := range []string{
		MetricShuffleBytes, MetricShuffleRecords, MetricBroadcastBytes,
		MetricTasks, MetricRetries, MetricRecovered, MetricSpeculative,
		MetricCorruptHealed, MetricSpillBytes, MetricSpillRuns,
		MetricBucketsSplit, MetricBackpressure,
		MetricCheckpointBytes, MetricCheckpointRecovered,
		MetricCheckpointDiscarded, MetricBarrierKills,
		MetricBatches, MetricBatchRows,
	} {
		m.slot(name, KindCounter)
	}
	m.slot(MetricMemReserved, KindGauge)
	m.slot(MetricMemInput, KindGauge)
	m.slot(MetricBatchPoolGets, KindGauge)
	m.slot(MetricBatchPoolHits, KindGauge)
	m.slot(MetricTaskBusy, KindHistogram)
	m.busy = make([]time.Duration, parts)
	m.mu.Unlock()
	return m
}

// slot returns the storage index for name, registering it under kind
// when absent. Callers must hold mu.
func (m *Metrics) slot(name string, kind MetricKind) int {
	if i, ok := m.index[name]; ok {
		return i
	}
	if m.index == nil {
		m.index = make(map[string]int)
	}
	i := len(m.names)
	m.names = append(m.names, name)
	m.kinds = append(m.kinds, kind)
	m.vals = append(m.vals, 0)
	m.peaks = append(m.peaks, 0)
	m.hcnt = append(m.hcnt, 0)
	m.hsum = append(m.hsum, 0)
	m.hmax = append(m.hmax, 0)
	m.index[name] = i
	return i
}

// Counter is a handle to one registered counter.
type Counter struct {
	m  *Metrics
	id int
}

// Gauge is a handle to one registered gauge.
type Gauge struct {
	m  *Metrics
	id int
}

// Histogram is a handle to one registered histogram.
type Histogram struct {
	m  *Metrics
	id int
}

// Counter returns a handle to the named counter, registering it on
// first use.
func (m *Metrics) Counter(name string) Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Counter{m: m, id: m.slot(name, KindCounter)}
}

// Gauge returns a handle to the named gauge, registering it on first
// use.
func (m *Metrics) Gauge(name string) Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Gauge{m: m, id: m.slot(name, KindGauge)}
}

// Histogram returns a handle to the named histogram, registering it on
// first use.
func (m *Metrics) Histogram(name string) Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Histogram{m: m, id: m.slot(name, KindHistogram)}
}

// Add increments the counter.
func (c Counter) Add(n int64) {
	c.m.mu.Lock()
	c.m.vals[c.id] += n
	c.m.mu.Unlock()
}

// Add moves the gauge by n (negative to release) and records the
// high-water mark.
func (g Gauge) Add(n int64) {
	g.m.mu.Lock()
	g.m.vals[g.id] += n
	if g.m.vals[g.id] > g.m.peaks[g.id] {
		g.m.peaks[g.id] = g.m.vals[g.id]
	}
	g.m.mu.Unlock()
}

// Set replaces the gauge's current value, keeping the high-water mark.
func (g Gauge) Set(v int64) {
	g.m.mu.Lock()
	g.m.vals[g.id] = v
	if v > g.m.peaks[g.id] {
		g.m.peaks[g.id] = v
	}
	g.m.mu.Unlock()
}

// Observe records one histogram observation.
func (h Histogram) Observe(v int64) {
	h.m.mu.Lock()
	h.m.hcnt[h.id]++
	h.m.hsum[h.id] += v
	if v > h.m.hmax[h.id] {
		h.m.hmax[h.id] = v
	}
	h.m.mu.Unlock()
}

// Names returns every registered metric name, sorted.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.names...)
	sort.Strings(out)
	return out
}

// Values returns one consistent name → value view of the whole
// registry, taken under a single lock acquisition. Gauges contribute
// their current value plus a ".peak" entry; histograms contribute
// ".count", ".sum", and ".max" entries.
func (m *Metrics) Values() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.names)*2)
	for i, name := range m.names {
		switch m.kinds[i] {
		case KindCounter:
			out[name] = m.vals[i]
		case KindGauge:
			out[name] = m.vals[i]
			out[name+".peak"] = m.peaks[i]
		case KindHistogram:
			out[name+".count"] = m.hcnt[i]
			out[name+".sum"] = m.hsum[i]
			out[name+".max"] = m.hmax[i]
		}
	}
	return out
}

// Snapshot is a consistent copy of the core execution counters, taken
// under one lock acquisition so a mid-query read cannot mix epochs
// across counters (e.g. observe a retry without its task).
type Snapshot struct {
	BytesShuffled   int64
	RecordsShuffled int64
	BytesBroadcast  int64
	MaxBusy         time.Duration
	TotalBusy       time.Duration
	Tasks           int64
	Retries         int64
	Recovered       int64
	Speculative     int64
	CorruptHealed   int64

	PeakMemory   int64
	PeakInput    int64
	BytesSpilled int64
	SpillRuns    int64
	BucketsSplit int64
	Backpressure int64

	CheckpointBytes     int64
	CheckpointRecovered int64
	CheckpointDiscarded int64
	BarrierKills        int64

	Batches       int64
	BatchRows     int64
	BatchPoolGets int64
	BatchPoolHits int64
}

// Snapshot reads the core counters atomically with respect to writers:
// one lock pass, so every field belongs to the same instant.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var maxBusy, totalBusy time.Duration
	for _, b := range m.busy {
		totalBusy += b
		if b > maxBusy {
			maxBusy = b
		}
	}
	val := func(name string) int64 {
		if i, ok := m.index[name]; ok {
			return m.vals[i]
		}
		return 0
	}
	peak := func(name string) int64 {
		if i, ok := m.index[name]; ok {
			return m.peaks[i]
		}
		return 0
	}
	return Snapshot{
		BytesShuffled:   val(MetricShuffleBytes),
		RecordsShuffled: val(MetricShuffleRecords),
		BytesBroadcast:  val(MetricBroadcastBytes),
		MaxBusy:         maxBusy,
		TotalBusy:       totalBusy,
		Tasks:           val(MetricTasks),
		Retries:         val(MetricRetries),
		Recovered:       val(MetricRecovered),
		Speculative:     val(MetricSpeculative),
		CorruptHealed:   val(MetricCorruptHealed),
		PeakMemory:      peak(MetricMemReserved),
		PeakInput:       peak(MetricMemInput),
		BytesSpilled:    val(MetricSpillBytes),
		SpillRuns:       val(MetricSpillRuns),
		BucketsSplit:    val(MetricBucketsSplit),
		Backpressure:    val(MetricBackpressure),

		CheckpointBytes:     val(MetricCheckpointBytes),
		CheckpointRecovered: val(MetricCheckpointRecovered),
		CheckpointDiscarded: val(MetricCheckpointDiscarded),
		BarrierKills:        val(MetricBarrierKills),

		Batches:       val(MetricBatches),
		BatchRows:     val(MetricBatchRows),
		BatchPoolGets: val(MetricBatchPoolGets),
		BatchPoolHits: val(MetricBatchPoolHits),
	}
}

// counterValue reads one registered metric's current value.
func (m *Metrics) counterValue(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i, ok := m.index[name]; ok {
		return m.vals[i]
	}
	return 0
}

// peakValue reads one gauge's high-water mark.
func (m *Metrics) peakValue(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i, ok := m.index[name]; ok {
		return m.peaks[i]
	}
	return 0
}

// BytesShuffled returns the bytes serialized across node boundaries.
func (m *Metrics) BytesShuffled() int64 { return m.counterValue(MetricShuffleBytes) }

// RecordsShuffled returns the records moved across node boundaries.
func (m *Metrics) RecordsShuffled() int64 { return m.counterValue(MetricShuffleRecords) }

// BytesBroadcast returns the bytes broadcast to all nodes (plans etc.).
func (m *Metrics) BytesBroadcast() int64 { return m.counterValue(MetricBroadcastBytes) }

// MaxBusy returns the largest accumulated per-partition busy time: the
// query's makespan on hardware with one real core per partition.
func (m *Metrics) MaxBusy() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var max time.Duration
	for _, b := range m.busy {
		if b > max {
			max = b
		}
	}
	return max
}

// TotalBusy returns the summed busy time over all partitions.
func (m *Metrics) TotalBusy() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum time.Duration
	for _, b := range m.busy {
		sum += b
	}
	return sum
}

// Tasks returns the number of partition tasks executed.
func (m *Metrics) Tasks() int64 { return m.counterValue(MetricTasks) }

// Retries returns how many partition task attempts were re-executed
// after a failure or speculative abandonment.
func (m *Metrics) Retries() int64 { return m.counterValue(MetricRetries) }

// Recovered returns how many partition tasks ultimately succeeded
// after at least one failed attempt.
func (m *Metrics) Recovered() int64 { return m.counterValue(MetricRecovered) }

// Speculative returns how many straggling task attempts were abandoned
// in favour of a speculative re-execution.
func (m *Metrics) Speculative() int64 { return m.counterValue(MetricSpeculative) }

// CorruptionsHealed returns how many corrupted shuffle payloads were
// recovered by resending.
func (m *Metrics) CorruptionsHealed() int64 { return m.counterValue(MetricCorruptHealed) }

// PeakMemory returns the high-water mark of budget-tracked memory
// (shuffle inboxes plus COMBINE build structures).
func (m *Metrics) PeakMemory() int64 { return m.peakValue(MetricMemReserved) }

// PeakInput returns the largest materialized per-partition input
// observed (tracked only when a budget is set).
func (m *Metrics) PeakInput() int64 { return m.peakValue(MetricMemInput) }

// BytesSpilled returns the bytes written to disk spill runs.
func (m *Metrics) BytesSpilled() int64 { return m.counterValue(MetricSpillBytes) }

// SpillRuns returns the number of spill runs written to disk.
func (m *Metrics) SpillRuns() int64 { return m.counterValue(MetricSpillRuns) }

// BucketsSplit returns how many spilled buckets were skew-split into
// sub-builds because their build side alone exceeded the budget.
func (m *Metrics) BucketsSplit() int64 { return m.counterValue(MetricBucketsSplit) }

// Backpressure returns how often senders stalled for inbox credit or
// had to split a batch to fit a receive window.
func (m *Metrics) Backpressure() int64 { return m.counterValue(MetricBackpressure) }

// addBusy accumulates one task's busy time into its partition's slot
// and the task-busy histogram.
func (m *Metrics) addBusy(part int, d time.Duration) {
	m.mu.Lock()
	for part >= len(m.busy) {
		m.busy = append(m.busy, 0)
	}
	m.busy[part] += d
	m.vals[m.slot(MetricTasks, KindCounter)]++
	i := m.slot(MetricTaskBusy, KindHistogram)
	m.hcnt[i]++
	m.hsum[i] += int64(d)
	if int64(d) > m.hmax[i] {
		m.hmax[i] = int64(d)
	}
	m.mu.Unlock()
}

func (m *Metrics) addTo(name string, n int64) {
	m.mu.Lock()
	m.vals[m.slot(name, KindCounter)] += n
	m.mu.Unlock()
}

func (m *Metrics) addShuffle(bytes, recs int64) {
	m.mu.Lock()
	m.vals[m.slot(MetricShuffleBytes, KindCounter)] += bytes
	m.vals[m.slot(MetricShuffleRecords, KindCounter)] += recs
	m.mu.Unlock()
}

// addBatch records one serialized columnar frame and the rows it
// carried.
func (m *Metrics) addBatch(rows int64) {
	m.mu.Lock()
	m.vals[m.slot(MetricBatches, KindCounter)]++
	m.vals[m.slot(MetricBatchRows, KindCounter)] += rows
	m.mu.Unlock()
}

// setBatchPool mirrors the batch pool's cumulative get/hit totals into
// the registry (the pool keeps its own counters; the registry holds
// the published copy a Snapshot reads consistently).
func (m *Metrics) setBatchPool(gets, hits int64) {
	m.mu.Lock()
	for _, kv := range [2]struct {
		name string
		v    int64
	}{{MetricBatchPoolGets, gets}, {MetricBatchPoolHits, hits}} {
		i := m.slot(kv.name, KindGauge)
		m.vals[i] = kv.v
		if kv.v > m.peaks[i] {
			m.peaks[i] = kv.v
		}
	}
	m.mu.Unlock()
}

// Batches returns the number of columnar frames serialized across node
// boundaries (including corruption resends).
func (m *Metrics) Batches() int64 { return m.counterValue(MetricBatches) }

// BatchRows returns the rows carried by those frames.
func (m *Metrics) BatchRows() int64 { return m.counterValue(MetricBatchRows) }

// CheckpointBytes returns the bytes written to durable checkpoints at
// phase barriers.
func (m *Metrics) CheckpointBytes() int64 { return m.counterValue(MetricCheckpointBytes) }

// CheckpointRecovered returns how many lost partitions were restored
// from a checkpoint instead of recomputed.
func (m *Metrics) CheckpointRecovered() int64 { return m.counterValue(MetricCheckpointRecovered) }

// CheckpointsDiscarded returns how many checkpoints failed their
// integrity check on reopen and were healed by recompute.
func (m *Metrics) CheckpointsDiscarded() int64 { return m.counterValue(MetricCheckpointDiscarded) }

// BarrierKillCount returns how many nodes were killed at phase
// barriers by fault injection.
func (m *Metrics) BarrierKillCount() int64 { return m.counterValue(MetricBarrierKills) }

func (m *Metrics) addBroadcast(bytes int64) { m.addTo(MetricBroadcastBytes, bytes) }
func (m *Metrics) addRetry()                { m.addTo(MetricRetries, 1) }
func (m *Metrics) addRecovered()            { m.addTo(MetricRecovered, 1) }
func (m *Metrics) addSpeculative()          { m.addTo(MetricSpeculative, 1) }
func (m *Metrics) addCorruptHealed()        { m.addTo(MetricCorruptHealed, 1) }
func (m *Metrics) addBackpressure()         { m.addTo(MetricBackpressure, 1) }

func (m *Metrics) addCheckpointBytes(n int64) { m.addTo(MetricCheckpointBytes, n) }
func (m *Metrics) addCheckpointRecovered()    { m.addTo(MetricCheckpointRecovered, 1) }
func (m *Metrics) addCheckpointDiscarded()    { m.addTo(MetricCheckpointDiscarded, 1) }
func (m *Metrics) addBarrierKills(n int64)    { m.addTo(MetricBarrierKills, n) }

// ReserveMemory charges bytes against the budget-tracked gauge and
// records the new high-water mark. The engine calls this for COMBINE
// build structures; the shuffle inboxes use it internally.
func (m *Metrics) ReserveMemory(bytes int64) { m.reserveMemory(bytes) }

// ReleaseMemory returns bytes to the budget-tracked gauge.
func (m *Metrics) ReleaseMemory(bytes int64) { m.releaseMemory(bytes) }

// AddSpill records one or more spill runs written to disk.
func (m *Metrics) AddSpill(bytes, runs int64) {
	m.mu.Lock()
	m.vals[m.slot(MetricSpillBytes, KindCounter)] += bytes
	m.vals[m.slot(MetricSpillRuns, KindCounter)] += runs
	m.mu.Unlock()
}

// AddBucketSplit records one skew-split spilled bucket.
func (m *Metrics) AddBucketSplit() { m.addTo(MetricBucketsSplit, 1) }

func (m *Metrics) reserveMemory(bytes int64) {
	m.mu.Lock()
	i := m.slot(MetricMemReserved, KindGauge)
	m.vals[i] += bytes
	if m.vals[i] > m.peaks[i] {
		m.peaks[i] = m.vals[i]
	}
	m.mu.Unlock()
}

func (m *Metrics) releaseMemory(bytes int64) {
	m.mu.Lock()
	m.vals[m.slot(MetricMemReserved, KindGauge)] -= bytes
	m.mu.Unlock()
}

func (m *Metrics) notePartitionInput(bytes int64) {
	m.mu.Lock()
	i := m.slot(MetricMemInput, KindGauge)
	if bytes > m.vals[i] {
		m.vals[i] = bytes
	}
	if bytes > m.peaks[i] {
		m.peaks[i] = bytes
	}
	m.mu.Unlock()
}
